// Microbench for the §3.4 / Appendix 9.2 claim: the cost of one MH
// walk-step is constant with respect to the database size, because only the
// factors touching the proposed change are evaluated.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "infer/metropolis_hastings.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

void BM_MhStep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), 17);
  // Warm the proposal's document batch.
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step();
  }
  state.SetLabel(std::to_string(n) + " tuples");
  // Drain the accumulated deltas so memory stays bounded.
  bench.tokens.pdb->DiscardDeltas();
}

void BM_MhStepLinearChain(benchmark::State& state) {
  // Ablation: without skip edges the per-step factor count is smaller.
  const size_t n = static_cast<size_t>(state.range(0));
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = n});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens, {.use_skip_edges = false});
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ie::DocumentBatchProposal proposal(&tokens.docs);
  auto sampler = tokens.pdb->MakeSampler(&proposal, 19);
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step();
  }
  tokens.pdb->DiscardDeltas();
}

void BM_MhStepPhases(benchmark::State& state) {
  // The hot-path breakdown: attaches the sampler's phase accumulator and
  // reports how a step splits into propose / score / apply / mirror —
  // the profile that picks which slice to attack next (ROADMAP).
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), 17);
  sampler->Run(100);
  infer::StepPhaseTotals totals;
  sampler->set_phase_totals(&totals);
  for (auto _ : state) {
    sampler->Step();
  }
  sampler->set_phase_totals(nullptr);
  bench.tokens.pdb->DiscardDeltas();
  const double steps = static_cast<double>(totals.steps);
  state.counters["propose_ns"] = totals.propose_seconds * 1e9 / steps;
  state.counters["score_ns"] = totals.score_seconds * 1e9 / steps;
  state.counters["apply_ns"] = totals.apply_seconds * 1e9 / steps;
  state.counters["mirror_ns"] = totals.mirror_seconds * 1e9 / steps;
  state.counters["propose_frac"] = totals.propose_seconds / totals.TotalSeconds();
  state.counters["score_frac"] = totals.score_seconds / totals.TotalSeconds();
  state.counters["apply_frac"] = totals.apply_seconds / totals.TotalSeconds();
  state.counters["mirror_frac"] = totals.mirror_seconds / totals.TotalSeconds();
  state.SetLabel(std::to_string(n) + " tuples, phase split");
}

// Fixture for the LogScoreDelta micros: a mixed (non-all-'O') world and a
// pool of pre-drawn §5.1 kernel changes, so the loop measures scoring and
// nothing else.
struct ScoreDeltaFixture {
  NerBench bench;
  factor::World world;
  std::vector<factor::Change> changes;

  explicit ScoreDeltaFixture(size_t num_tokens) : bench(num_tokens) {
    auto proposal = bench.MakeProposal();
    auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), 17);
    sampler->Run(50000);  // Mix off the all-'O' initialization.
    bench.tokens.pdb->DiscardDeltas();
    world = bench.tokens.pdb->world();
    Rng rng(271828);
    double log_ratio = 0.0;
    changes.resize(4096);
    for (auto& change : changes) {
      do {
        change = proposal->Propose(world, rng, &log_ratio);
      } while (change.empty());
    }
  }
};

void BM_LogScoreDelta(benchmark::State& state) {
  // The hot path in isolation: one compiled model scoring pre-drawn
  // changes through caller-owned scratch — zero hashing, zero allocation.
  const size_t n = static_cast<size_t>(state.range(0));
  ScoreDeltaFixture fixture(n);
  auto scratch = fixture.bench.model->MakeScratch();
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += fixture.bench.model->LogScoreDelta(fixture.world,
                                               fixture.changes[i],
                                               scratch.get());
    if (++i == fixture.changes.size()) i = 0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::to_string(n) + " tuples, compiled");
}

void BM_LogScoreDeltaNaive(benchmark::State& state) {
  // Ablation: identical model and change stream, scored through per-factor
  // Parameters::Get probes — what compilation buys.
  const size_t n = static_cast<size_t>(state.range(0));
  ScoreDeltaFixture fixture(n);
  ie::SkipChainNerModel naive(fixture.bench.tokens,
                              {.use_compiled_scoring = false});
  naive.InitializeFromCorpusStatistics(fixture.bench.tokens);
  auto scratch = naive.MakeScratch();
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += naive.LogScoreDelta(fixture.world, fixture.changes[i],
                                scratch.get());
    if (++i == fixture.changes.size()) i = 0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::to_string(n) + " tuples, naive Get()");
}

void BM_GibbsStep(benchmark::State& state) {
  // Gibbs resampling evaluates the local conditional for all 9 labels.
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  infer::GibbsProposal proposal(*bench.model);
  auto sampler = bench.tokens.pdb->MakeSampler(&proposal, 23);
  for (auto _ : state) {
    sampler->Step();
  }
  bench.tokens.pdb->DiscardDeltas();
}

}  // namespace

BENCHMARK(BM_MhStep)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepPhases)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_LogScoreDelta)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_LogScoreDeltaNaive)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepLinearChain)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_GibbsStep)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
