// Metropolis–Hastings random walk (paper §3.4, Algorithm 2).
//
// Each Step() draws w' ~ q(·|w), computes the acceptance probability
//
//   α(w', w) = min(1, [π(w')/π(w)] · [q(w|w')/q(w'|w)])     (Eq. 3)
//
// from the *local* factor delta (Appendix 9.2 — ZX and untouched factors
// cancel), and on acceptance applies the change to the world and notifies
// listeners. The pdb layer registers a listener that mirrors accepted
// changes into the relational tables and the Δ−/Δ+ buffers.
//
// Step(n) is the batched step kernel: n propose/score/apply transitions run
// against the in-memory world, and the accepted-jump stream crosses the
// listener (mirror/DeltaAccumulator) boundary once per flush instead of
// once per step. Listeners see the same assignments in the same order as n
// single Steps — the concatenation of the per-step applied records — so the
// database mirror, the coalesced deltas, and every downstream view and
// marginal are bitwise-identical; only the crossing count is amortized.
#ifndef FGPDB_INFER_METROPOLIS_HASTINGS_H_
#define FGPDB_INFER_METROPOLIS_HASTINGS_H_

#include <functional>
#include <memory>
#include <vector>

#include "factor/model.h"
#include "infer/proposal.h"
#include "util/rng.h"

namespace fgpdb {
namespace infer {

/// Cumulative wall-clock split of Step() into its four phases — the
/// hot-path profiling hook (ROADMAP: "breaks a step into propose / score /
/// apply / mirror and attack the biggest slice"):
///
///   propose — drawing w' ~ q(·|w) from the proposal kernel
///   score   — the local factor delta (Appendix 9.2) + the acceptance test
///   apply   — writing an accepted change into the World
///   mirror  — listener notification: table mirroring + delta accumulation
///
/// Rejected steps contribute to propose/score only; empty proposals
/// (self-transitions) to propose only. Under batched stepping the mirror
/// phase is paid per flush, not per step — `mirror_flushes` counts the
/// boundary crossings so per-step and per-crossing costs both fall out.
struct StepPhaseTotals {
  uint64_t steps = 0;
  uint64_t mirror_flushes = 0;
  double propose_seconds = 0.0;
  double score_seconds = 0.0;
  double apply_seconds = 0.0;
  double mirror_seconds = 0.0;

  double TotalSeconds() const {
    return propose_seconds + score_seconds + apply_seconds + mirror_seconds;
  }
};

class MetropolisHastings {
 public:
  /// Listener invoked after accepted changes are applied to the world.
  /// Under Step(n) one invocation may carry the assignments of many steps.
  using Listener =
      std::function<void(const std::vector<factor::AppliedAssignment>&)>;

  MetropolisHastings(const factor::Model& model, factor::World* world,
                     Proposal* proposal, uint64_t seed = 1);

  /// Registers a post-acceptance listener.
  void AddListener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// One propose/accept-or-reject transition. Returns true on acceptance.
  /// Listeners are notified before returning (the unbatched reference
  /// path — per-step granularity for tests and ablations).
  bool Step();

  /// The batched step kernel: runs `n` transitions, buffering the accepted
  /// non-noop assignments and crossing the listener boundary once every
  /// `mirror_batch_limit()` assignments (and once more for the tail), so
  /// the per-step mirror cost amortizes away. All buffered assignments are
  /// flushed before returning — after Step(n), listeners have seen exactly
  /// what n single Steps would have shown them, in the same order. Returns
  /// the number of accepted transitions.
  size_t Step(size_t n);

  /// Runs `n` transitions (Algorithm 2's random walk) through the batched
  /// kernel.
  void Run(size_t n) { Step(n); }

  uint64_t num_proposed() const { return num_proposed_; }
  uint64_t num_accepted() const { return num_accepted_; }
  double acceptance_rate() const {
    return num_proposed_ == 0
               ? 0.0
               : static_cast<double>(num_accepted_) /
                     static_cast<double>(num_proposed_);
  }

  factor::World& world() { return *world_; }
  Rng& rng() { return rng_; }

  /// Assignments buffered between listener flushes under Step(n). 1 makes
  /// the batched kernel notify per accepted step (the unbatched ablation);
  /// the default keeps the buffer well under a page while making the
  /// boundary crossing cost negligible per step.
  void set_mirror_batch_limit(size_t limit) {
    FGPDB_CHECK_GT(limit, 0u);
    mirror_batch_limit_ = limit;
  }
  size_t mirror_batch_limit() const { return mirror_batch_limit_; }

  /// Attaches a per-phase timing accumulator (nullptr detaches; the
  /// default). While attached, every Step() adds its phase wall-clock to
  /// `totals` — two clock reads per phase, so leave it off outside
  /// profiling runs. `totals` must outlive the attachment.
  void set_phase_totals(StepPhaseTotals* totals) { phase_totals_ = totals; }

  /// Row-driven Gibbs kernel (default on): when the proposal declares
  /// itself single-site Gibbs (Proposal::IsSingleSiteGibbs), Step(n)
  /// samples the candidate directly from the model's vectorized
  /// ConditionalRow inside the batch loop — one scoring pass per step
  /// instead of Propose's row fill plus a second LogScoreDelta for the
  /// acceptance test. The fused path replicates the reference pair
  /// (GibbsProposal::Propose + the two-call step) draw-for-draw and
  /// FP-op-for-FP-op, so accepted jumps, applied streams, and final worlds
  /// are bitwise-identical; false keeps the two-call path (the parity
  /// reference and ablation). Non-Gibbs proposals are unaffected.
  void set_row_gibbs(bool on) { row_gibbs_ = on; }
  bool row_gibbs() const { return row_gibbs_; }

  /// Software-prefetch pipelining in the fused Gibbs kernel (default off):
  /// predicts step t+1's site by peeking CLONED rngs down both acceptance
  /// branches (the real stream is never touched) and warms its hot lines
  /// via Model::PrefetchSite while site t scores, then deep-warms site t's
  /// operands. Purely a cache hint: trajectories are bitwise unchanged.
  void set_prefetch(bool on) { prefetch_ = on; }
  bool prefetch() const { return prefetch_; }

 private:
  const factor::Model& model_;
  factor::World* world_;
  Proposal* proposal_;
  Rng rng_;
  std::vector<Listener> listeners_;
  /// Per-chain scoring scratch (model.MakeScratch()): each sampler owns its
  /// buffers, so scoring allocates nothing per step and parallel chains
  /// sharing one model never share mutable state.
  std::unique_ptr<factor::ScoreScratch> score_scratch_;
  /// Step() body; kTimed compiles the phase clock reads in or out, so the
  /// detached (default) path pays nothing for the profiling hook.
  template <bool kTimed>
  bool StepImpl();
  /// Step(n) body under the same kTimed discipline.
  template <bool kTimed>
  size_t StepBatchImpl(size_t n);

  /// Reused proposal buffer: Propose writes into it every step, so the
  /// propose phase does zero allocation.
  factor::Change change_buf_;
  std::vector<factor::AppliedAssignment> applied_scratch_;
  /// Accepted-jump buffer for the batched kernel; flushed to listeners at
  /// mirror_batch_limit_ assignments and at the end of every Step(n).
  std::vector<factor::AppliedAssignment> batch_applied_;
  /// Fused-kernel buffers: the conditional row, its exponentiated probs
  /// (the allocation-free Rng::LogCategorical replica), and the Change
  /// reused by the per-candidate fallback fill.
  std::vector<double> row_buf_;
  std::vector<double> prob_buf_;
  factor::Change fused_change_;
  bool row_gibbs_ = true;
  bool prefetch_ = false;
  size_t mirror_batch_limit_ = 4096;
  uint64_t num_proposed_ = 0;
  uint64_t num_accepted_ = 0;
  StepPhaseTotals* phase_totals_ = nullptr;
};

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_METROPOLIS_HASTINGS_H_
