// Document-sharded execution plans for the TOKEN world (paper §5.1).
//
// docs[d] is the natural shard key: skip-chain factors are same-document by
// construction and the §5.1 proposal kernel batches whole documents, so a
// partition assigning each document's variables to one shard satisfies the
// Model locality contract — shard-local chains are exact, not approximate.
// BuildDocumentShardPlan blocks the documents into `num_shards` contiguous
// ranges, asks the model to certify the partition (FactorsRespectPartition),
// and falls back to the exact single-shard plan when it declines (e.g. a
// cross-document EntityResolutionModel standing in for the NER CRF).
#ifndef FGPDB_IE_SHARD_PLAN_H_
#define FGPDB_IE_SHARD_PLAN_H_

#include "ie/ner_proposal.h"
#include "ie/token_pdb.h"
#include "pdb/shard_plan.h"

namespace fgpdb {
namespace ie {

struct DocumentShardOptions {
  /// Requested shard count; clamped to the document count, and to 1 when
  /// the model does not certify the document partition.
  size_t num_shards = 1;
  /// Per-shard §5.1 proposal kernel configuration (each shard batches
  /// documents from its own block).
  NerProposalOptions proposal = {};
};

/// Builds a ShardPlan whose shard s owns the contiguous document block
/// [s·D/S, (s+1)·D/S) and proposes via a DocumentBatchProposal over that
/// block. The plan owns the per-shard document lists (the factory closure
/// keeps them alive), so it may outlive `tokens`' docs vector but NOT the
/// database/model. A single-shard plan (requested or fallen back to)
/// proposes over all documents — bitwise-identical to the serial kernel.
pdb::ShardPlan BuildDocumentShardPlan(const TokenPdb& tokens,
                                      const factor::Model& model,
                                      DocumentShardOptions options = {});

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_SHARD_PLAN_H_
