// In-memory row-store table with a stable row-id space, optional primary-key
// index, and secondary hash indexes.
//
// This (plus the executor in src/ra) plays the role the paper assigns to
// Apache Derby: a blackbox relational engine that always stores a single
// possible world. Uncertain fields are updated in place by the MCMC driver
// via UpdateField.
#ifndef FGPDB_STORAGE_TABLE_H_
#define FGPDB_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace fgpdb {

using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = ~0ULL;

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live (non-deleted) rows.
  size_t size() const { return live_rows_; }

  /// Upper bound of the row-id space (including tombstones).
  size_t row_capacity() const { return rows_.size(); }

  /// Inserts a row; returns its stable RowId. Enforces primary-key
  /// uniqueness when the schema declares one.
  RowId Insert(Tuple tuple);

  /// Marks a row deleted. Fatal on a dead or out-of-range row.
  void Delete(RowId row);

  /// True if `row` is live.
  bool IsLive(RowId row) const {
    return row < rows_.size() && !deleted_[row];
  }

  /// Returns the row contents. Fatal on dead rows.
  const Tuple& Get(RowId row) const;

  /// Overwrites one field; maintains all indexes. Returns the old value.
  Value UpdateField(RowId row, size_t column, Value value);

  /// Point lookup by primary key; kInvalidRowId if absent.
  RowId LookupByKey(const Value& key) const;

  /// Builds (or rebuilds) a secondary hash index on `column`.
  void CreateIndex(size_t column);

  /// True if a secondary index exists on `column`.
  bool HasIndex(size_t column) const {
    return secondary_indexes_.count(column) > 0;
  }

  /// Row-ids whose `column` equals `value`, via the secondary index.
  /// Fatal if no index exists on the column.
  const std::vector<RowId>& IndexLookup(size_t column, const Value& value) const;

  /// Invokes `fn` on every live row.
  void Scan(const std::function<void(RowId, const Tuple&)>& fn) const;

  /// Materializes all live rows (testing convenience).
  std::vector<Tuple> Rows() const;

  /// Deep copy (used to clone worlds for parallel chains, paper §5.4).
  std::unique_ptr<Table> Clone() const;

 private:
  void IndexInsert(size_t column, const Value& value, RowId row);
  void IndexErase(size_t column, const Value& value, RowId row);

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<bool> deleted_;
  size_t live_rows_ = 0;

  // Primary-key index: key value -> row id.
  std::unordered_map<Value, RowId, ValueHasher> pk_index_;
  // Secondary indexes: column -> (value -> row ids).
  std::unordered_map<size_t,
                     std::unordered_map<Value, std::vector<RowId>, ValueHasher>>
      secondary_indexes_;
  static const std::vector<RowId> kEmptyRowList;
};

}  // namespace fgpdb

#endif  // FGPDB_STORAGE_TABLE_H_
