#include "factor/feature_vector.h"

#include <algorithm>
#include <cmath>

namespace fgpdb {
namespace factor {

void SparseVector::Consolidate() {
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<FeatureId, double>> merged;
  merged.reserve(entries_.size());
  for (const auto& [id, value] : entries_) {
    if (!merged.empty() && merged.back().first == id) {
      merged.back().second += value;
    } else {
      merged.push_back({id, value});
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& e) { return e.second == 0.0; }),
               merged.end());
  entries_ = std::move(merged);
}

void Parameters::UpdateSparse(const SparseVector& features, double scale) {
  for (const auto& [id, value] : features.entries()) {
    weights_[id] += scale * value;
  }
}

double Parameters::Dot(const SparseVector& features) const {
  double total = 0.0;
  for (const auto& [id, value] : features.entries()) {
    total += Get(id) * value;
  }
  return total;
}

double Parameters::Norm() const {
  double total = 0.0;
  for (const auto& [id, w] : weights_) {
    (void)id;
    total += w * w;
  }
  return std::sqrt(total);
}

}  // namespace factor
}  // namespace fgpdb
