// Figure 4(a): scalability of query evaluation — time to halve the squared
// error of Query 1, naive (Alg. 3) vs materialized (Alg. 1), over a
// log-scale sweep of database sizes.
//
// Paper: 10k … 10M NYT tokens, k = 10,000, Apache Derby on disk; naive
// projected to 227 hours at 10M vs <2.5h materialized, and a crossover at
// 10k tuples (naive 19s vs materialized 21s) where diff-table overhead
// dominates. Here: an in-memory engine whose scans are ~1000x faster than
// Derby-on-disk, so k scales with size to keep query evaluation (the thing
// Fig. 4 measures) the naive path's bottleneck; all evaluators start from
// a burned-in world so the measurement is not dominated by the mixing
// transient of the all-'O' initialization. Expected shape: near-parity at
// the small end, materialized increasingly dominant as tuples grow.
//
// PR 8 appends the sharded-execution scalability sweep: step throughput of
// ONE logical chain driven by 1..32 document-shard sub-chains over a large
// corpus (default 1M tokens). Flags (after the common --seed=N):
//   --tokens=N        sweep corpus size (default 1,000,000 x FGPDB_BENCH_SCALE)
//   --shards=1,2,4    comma-separated shard counts (default 1,2,4,8,16,32)
//   --sweep_steps=N   proposals measured per shard count (default 2,000,000)
//   --shard_json=F    write the sweep as JSON (BENCH_pr8.json schema)
//   --sweep_only      skip the time-to-half-error section (CI smoke)
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "ie/shard_plan.h"
#include "pdb/shared_chain.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

// DeriveSeed streams: 4 per half-error size (corpus, burn, truth, chains)
// then a dedicated block for the shard sweep.
constexpr uint64_t kStreamSweepCorpus = 100;
constexpr uint64_t kStreamSweepChainBase = 101;

struct SweepRow {
  size_t shards = 1;
  size_t planned_shards = 1;  // Requested; differs if the plan clamped.
  uint64_t steps = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;   // MH proposals across all shard chains.
  double tokens_per_sec = 0.0;  // Accepted token-label updates mirrored
                                // into the TOKEN relation.
};

std::vector<size_t> ParseShardList(const std::string& csv) {
  std::vector<size_t> shards;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const size_t value = static_cast<size_t>(std::strtoull(item.c_str(), nullptr, 10));
    if (value > 0) shards.push_back(value);
  }
  return shards;
}

std::vector<SweepRow> RunShardSweep(uint64_t master, size_t num_tokens,
                                    const std::vector<size_t>& shard_counts,
                                    uint64_t sweep_steps) {
  std::cerr << "[fig4a] building " << HumanCount(static_cast<double>(num_tokens))
            << "-token sweep corpus...\n";
  NerBench bench(num_tokens, DeriveSeed(master, kStreamSweepCorpus));

  // Interval between shard-buffer merges: large enough that the fan-out
  // drain amortizes (mirrors production steps_per_sample), small enough
  // that a sweep sees many merge boundaries.
  const uint64_t interval = 8192;
  const uint64_t measure_samples = std::max<uint64_t>(8, sweep_steps / interval);

  std::vector<SweepRow> rows;
  for (size_t si = 0; si < shard_counts.size(); ++si) {
    const size_t requested = shard_counts[si];
    pdb::ShardPlan plan = ie::BuildDocumentShardPlan(
        bench.tokens, *bench.model, {.num_shards = requested});
    auto world = bench.tokens.pdb->Snapshot();
    // Every shard count gets its own seed stream: the sweep measures
    // throughput, not a differential, and distinct streams keep rows
    // independent.
    pdb::SharedChainEvaluator chain(
        world.get(), /*proposal=*/nullptr,
        {.steps_per_sample = interval,
         .burn_in = 0,
         .seed = DeriveSeed(master, kStreamSweepChainBase + si)},
        /*materialized=*/true);
    chain.EnableSharding(plan);
    chain.Initialize();
    chain.Run(4);  // Warm the shard chains, pool, and proposal batches.

    const uint64_t accepted_before = chain.num_accepted();
    Stopwatch timer;
    chain.Run(measure_samples);
    const double seconds = timer.ElapsedSeconds();
    const uint64_t accepted = chain.num_accepted() - accepted_before;

    SweepRow row;
    row.shards = chain.num_shards();
    row.planned_shards = requested;
    row.steps = measure_samples * interval;
    row.seconds = seconds;
    row.steps_per_sec = static_cast<double>(row.steps) / seconds;
    row.tokens_per_sec = static_cast<double>(accepted) / seconds;
    rows.push_back(row);
    std::cerr << "[fig4a] sweep shards=" << requested << " done ("
              << FormatDouble(row.steps_per_sec, 0) << " steps/s)\n";
  }
  return rows;
}

void PrintShardSweep(const std::vector<SweepRow>& rows) {
  TablePrinter table({"shards", "steps", "seconds", "steps/sec",
                      "tokens/sec (accepted)", "speedup vs 1"});
  const double base = rows.empty() ? 1.0 : rows.front().steps_per_sec;
  for (const SweepRow& row : rows) {
    table.AddRow({std::to_string(row.shards),
                  std::to_string(row.steps),
                  FormatDouble(row.seconds, 3),
                  HumanCount(row.steps_per_sec),
                  HumanCount(row.tokens_per_sec),
                  FormatDouble(row.steps_per_sec / base, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
}

void WriteShardJson(const std::string& path, uint64_t master,
                    size_t num_tokens, uint64_t sweep_steps,
                    const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[fig4a] cannot write " << path << "\n";
    return;
  }
  out << "{\n"
      << "  \"pr\": 8,\n"
      << "  \"bench\": \"fig4a_shard_sweep\",\n"
      << "  \"master_seed\": " << master << ",\n"
      << "  \"num_tokens\": " << num_tokens << ",\n"
      << "  \"sweep_steps\": " << sweep_steps << ",\n"
      << "  \"hardware\": {\"cores\": " << std::thread::hardware_concurrency()
      << "},\n"
      << "  \"max_regression_ratio\": 1.25,\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    out << "    {\"shards\": " << row.shards
        << ", \"requested_shards\": " << row.planned_shards
        << ", \"steps\": " << row.steps
        << ", \"seconds\": " << row.seconds
        << ", \"steps_per_sec\": " << row.steps_per_sec
        << ", \"tokens_per_sec\": " << row.tokens_per_sec << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "[fig4a] wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "fig4a");
  const double scale = BenchScale();

  size_t sweep_tokens = static_cast<size_t>(1000000 * scale);
  std::vector<size_t> shard_counts = {1, 2, 4, 8, 16, 32};
  uint64_t sweep_steps = 2000000;
  std::string shard_json;
  bool sweep_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tokens=", 0) == 0) {
      sweep_tokens = static_cast<size_t>(std::strtoull(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shard_counts = ParseShardList(arg.substr(9));
    } else if (arg.rfind("--sweep_steps=", 0) == 0) {
      sweep_steps = std::strtoull(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--shard_json=", 0) == 0) {
      shard_json = arg.substr(13);
    } else if (arg == "--sweep_only") {
      sweep_only = true;
    } else {
      std::cerr << "[fig4a] unknown flag " << arg << "\n";
      return 1;
    }
  }

  if (!sweep_only) {
    std::vector<size_t> sizes = {10000, 30000, 100000, 300000};
    if (scale > 1.0) {
      for (auto& s : sizes) s = static_cast<size_t>(s * scale);
    }

    std::cout << "=== Figure 4(a): Query 1 time-to-half-error vs #tuples "
              << "(master seed " << master << ") ===\n"
              << "query: " << ie::kQuery1 << "\n\n";
    // Both evaluators replay the *same* chain (same seed), so they produce
    // identical answers sample-for-sample (paper §5.3: "the two approaches
    // generate the same set of samples") and the wall-clock ratio equals the
    // per-sample cost ratio regardless of where the error target lands. The
    // run stops at half error or at the sample cap, whichever first; the
    // achieved error fraction is reported for transparency.
    TablePrinter table({"tuples", "k (steps/sample)", "naive (s)",
                        "materialized (s)", "speedup", "samples",
                        "err fraction reached"});

    for (size_t i = 0; i < sizes.size(); ++i) {
      const size_t n = sizes[i];
      // Four streams per size row: corpus, burn-in, truth, measured chains.
      const uint64_t row_stream = 4 * static_cast<uint64_t>(i);
      NerBench bench(n, DeriveSeed(master, row_stream));
      const uint64_t k = std::max<uint64_t>(100, n / 1000);

      // Burn the base world to stationarity once; evaluators and the truth
      // run all start from clones of it.
      {
        auto proposal = bench.MakeProposal();
        auto sampler = bench.tokens.pdb->MakeSampler(
            proposal.get(), DeriveSeed(master, row_stream + 1));
        sampler->Run(DefaultBurnIn(n));
        bench.tokens.pdb->DiscardDeltas();
      }
      const pdb::QueryAnswer truth =
          EstimateGroundTruth(bench, ie::kQuery1, /*samples=*/2500,
                              /*steps_per_sample=*/k,
                              DeriveSeed(master, row_stream + 2));

      const uint64_t max_samples = 500;
      auto measure = [&](bool materialized, uint64_t* samples_used,
                         double* error_fraction) {
        auto world = bench.tokens.pdb->Clone();
        ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, world->db());
        auto proposal = bench.MakeProposal();
        // The SAME derived seed for both evaluators: identical sample sets.
        const pdb::EvaluatorOptions options{
            .steps_per_sample = k,
            .burn_in = 0,
            .seed = DeriveSeed(master, row_stream + 3)};
        std::unique_ptr<pdb::QueryEvaluator> evaluator;
        if (materialized) {
          evaluator = std::make_unique<pdb::MaterializedQueryEvaluator>(
              world.get(), proposal.get(), plan.get(), options);
        } else {
          evaluator = std::make_unique<pdb::NaiveQueryEvaluator>(
              world.get(), proposal.get(), plan.get(), options);
        }
        Stopwatch timer;
        evaluator->Initialize();
        evaluator->DrawSample();
        const double initial = evaluator->answer().SquaredError(truth);
        uint64_t used = 1;
        double current = initial;
        while (used < max_samples && current > initial / 2.0) {
          evaluator->DrawSample();
          ++used;
          current = evaluator->answer().SquaredError(truth);
        }
        *samples_used = used;
        *error_fraction = initial > 0.0 ? current / initial : 0.0;
        return timer.ElapsedSeconds();
      };

      uint64_t naive_samples = 0, mat_samples = 0;
      double naive_fraction = 0.0, mat_fraction = 0.0;
      const double naive_seconds = measure(false, &naive_samples, &naive_fraction);
      const double mat_seconds = measure(true, &mat_samples, &mat_fraction);

      table.AddRow({HumanCount(static_cast<double>(n)), std::to_string(k),
                    FormatDouble(naive_seconds, 4), FormatDouble(mat_seconds, 4),
                    FormatDouble(naive_seconds / mat_seconds, 3),
                    std::to_string(naive_samples),
                    FormatDouble(mat_fraction, 3)});
      std::cerr << "[fig4a] finished n=" << n << "\n";
    }

    table.Print(std::cout);
    std::cout << "\nCSV:\n";
    table.PrintCsv(std::cout);
    std::cout << "\nPaper shape check: near-parity at the smallest size "
                 "(delta bookkeeping overhead vs cheap small scans), with the "
                 "materialized advantage growing steadily in #tuples — the "
                 "paper's 10k crossover and 10M-tuple orders-of-magnitude gap "
                 "at the respective extremes.\n\n";
  }

  // --- PR 8: sharded-execution step-throughput sweep ------------------------
  std::cout << "=== Sharded execution: step throughput vs shard count ("
            << HumanCount(static_cast<double>(sweep_tokens))
            << " tokens, " << std::thread::hardware_concurrency()
            << " cores, master seed " << master << ") ===\n\n";
  const std::vector<SweepRow> rows =
      RunShardSweep(master, sweep_tokens, shard_counts, sweep_steps);
  PrintShardSweep(rows);
  if (!shard_json.empty()) {
    WriteShardJson(shard_json, master, sweep_tokens, sweep_steps, rows);
  }
  std::cout << "\nShape check: steps/sec grows with the shard count up to "
               "the core count (shard chains are independent between merge "
               "boundaries), then flattens — on a single-core host all "
               "rows land within noise of each other and the interesting "
               "number is the overhead of S>1 vs S=1.\n";
  return 0;
}
