// Microbench for the Eq. 6 claim: maintaining a view through a bounded
// delta costs O(|Δ|), versus O(|w|) to re-run the query — "as high as a
// full degree of a polynomial" of savings (§4.2) — measured per operator
// shape (σπ, γ, ⋈) and including the delta-coalescing ablation.
//
// PR-3 additions: a join-heavy configuration (large per-round deltas, so
// the ΔL⋈ΔR cross term dominates) and a many-tables-few-touched
// configuration (an 8-way join chain where each round touches one base
// table — the case delta routing exists for).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ra/executor.h"
#include "ra/plan.h"
#include "util/rng.h"
#include "view/incremental.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

uint64_t g_master = 2004;

// Builds a DeltaSet of `updates` label flips, like a k-step MH round.
view::DeltaSet MakeLabelDeltas(NerBench& bench, size_t updates,
                               uint64_t seed) {
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), seed);
  bench.tokens.pdb->DiscardDeltas();
  size_t applied = 0;
  while (applied < updates) {
    if (sampler->Step()) ++applied;
  }
  return bench.tokens.pdb->TakeDeltas();
}

void BM_FullQueryExecution(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n, DeriveSeed(g_master, 0));
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, bench.tokens.pdb->db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::Execute(*plan, bench.tokens.pdb->db()));
  }
}

// Pre-generates a consistent sequence of delta rounds (each `flips` accepted
// label flips) so the timed loop measures only MaterializedView::Apply.
// The sequence comes from one continuous chain, so applying the rounds in
// order keeps the view consistent.
std::vector<view::DeltaSet> MakeDeltaSequence(NerBench& bench, size_t rounds,
                                              size_t flips, uint64_t seed) {
  std::vector<view::DeltaSet> out;
  out.reserve(rounds);
  for (size_t r = 0; r < rounds; ++r) {
    out.push_back(MakeLabelDeltas(bench, flips, seed + r));
  }
  return out;
}

// Each benchmark below is pinned to exactly `rounds` iterations (deltas
// replay consistently only once, in order, from the initial world).
constexpr size_t kDeltaRounds = 1000;

void ApplyDeltaBench(benchmark::State& state, const char* query,
                     size_t rounds, size_t flips) {
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n, DeriveSeed(g_master, 1));
  ra::PlanPtr plan = sql::PlanQuery(query, bench.tokens.pdb->db());
  view::MaterializedView view(*plan);
  view.Initialize(bench.tokens.pdb->db());
  // A few spare rounds in case the framework runs warm-up iterations.
  const auto deltas =
      MakeDeltaSequence(bench, rounds + 64, flips, DeriveSeed(g_master, 2));
  size_t i = 0;
  for (auto _ : state) {
    FGPDB_CHECK_LT(i, deltas.size());
    benchmark::DoNotOptimize(view.Apply(deltas[i++]));
  }
}

void BM_ViewApplyDelta(benchmark::State& state) {
  ApplyDeltaBench(state, ie::kQuery1, kDeltaRounds, 100);
}

void BM_ViewApplyDeltaJoin(benchmark::State& state) {
  // Query 4's self-join, maintained through deltas.
  ApplyDeltaBench(state, ie::kQuery4, kDeltaRounds, 100);
}

void BM_ViewApplyDeltaAggregate(benchmark::State& state) {
  // Query 3's grouped COUNT_IF + HAVING, maintained through deltas.
  ApplyDeltaBench(state, ie::kQuery3, kDeltaRounds, 100);
}

// Join-heavy configuration: long thinning intervals produce ~2000-entry
// deltas on both inputs of Query 4's self-join, so the ΔL⋈ΔR cross term
// dominates. A nested-loop cross term is O(|ΔL|·|ΔR|) tuple projections per
// round; hash-grouped probing is O(|Δ|·matches).
constexpr size_t kJoinHeavyRounds = 200;

void BM_ViewApplyDeltaJoinHeavy(benchmark::State& state) {
  ApplyDeltaBench(state, ie::kQuery4, kJoinHeavyRounds,
                  static_cast<size_t>(state.range(1)));
}

// --- Join cross term: ΔL⋈ΔR with unfiltered deltas -------------------------
//
// Query 4's selections shrink the deltas before they reach the join, so the
// cross term stays tiny there. This configuration feeds both join inputs
// raw deltas: per round, `flips` value updates on EACH side of L ⋈ R. A
// nested-loop cross term pays |ΔL|·|ΔR| tuple projections per round;
// hash-grouped probing pays O(|Δ|·matches).
constexpr size_t kCrossRows = 4096;
constexpr size_t kCrossKeys = 1024;  // 4 rows per join key.
constexpr size_t kCrossRounds = 200;

void BuildCrossTable(Database* db, const std::string& name, int64_t v_base) {
  Schema schema({Attribute{"K", ValueType::kInt64},
                 Attribute{"V", ValueType::kInt64}});
  Table* table = db->CreateTable(name, std::move(schema));
  for (size_t r = 0; r < kCrossRows; ++r) {
    table->Insert(Tuple{Value::Int(static_cast<int64_t>(r % kCrossKeys)),
                        Value::Int(v_base + static_cast<int64_t>(r))});
  }
}

std::vector<view::DeltaSet> MakeCrossDeltas(size_t rounds, size_t flips,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> shadow(2,
                                           std::vector<int64_t>(kCrossRows));
  for (size_t side = 0; side < 2; ++side) {
    for (size_t r = 0; r < kCrossRows; ++r) {
      shadow[side][r] = static_cast<int64_t>(side) * 1000000 +
                        static_cast<int64_t>(r);
    }
  }
  std::vector<view::DeltaSet> out;
  out.reserve(rounds);
  for (size_t round = 0; round < rounds; ++round) {
    view::DeltaSet deltas;
    for (size_t side = 0; side < 2; ++side) {
      view::DeltaMultiset& d = deltas.ForTable(side == 0 ? "L" : "R");
      for (size_t f = 0; f < flips; ++f) {
        const size_t r = rng.UniformInt(kCrossRows);
        const int64_t k = static_cast<int64_t>(r % kCrossKeys);
        d.Add(Tuple{Value::Int(k), Value::Int(shadow[side][r])}, -1);
        ++shadow[side][r];
        d.Add(Tuple{Value::Int(k), Value::Int(shadow[side][r])}, 1);
      }
    }
    out.push_back(std::move(deltas));
  }
  return out;
}

void BM_ViewApplyDeltaJoinCross(benchmark::State& state) {
  const size_t flips = static_cast<size_t>(state.range(0));
  Database db;
  BuildCrossTable(&db, "L", 0);
  BuildCrossTable(&db, "R", 1000000);
  ra::PlanPtr plan = std::make_unique<ra::JoinNode>(
      std::make_unique<ra::ScanNode>("L", db.RequireTable("L")->schema()),
      std::make_unique<ra::ScanNode>("R", db.RequireTable("R")->schema()),
      std::vector<size_t>{0}, std::vector<size_t>{0}, nullptr);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  const auto deltas =
      MakeCrossDeltas(kCrossRounds + 64, flips, DeriveSeed(g_master, 3));
  size_t i = 0;
  for (auto _ : state) {
    FGPDB_CHECK_LT(i, deltas.size());
    benchmark::DoNotOptimize(view.Apply(deltas[i++]));
  }
}

// --- Many-tables-few-touched: the routing win case -------------------------
//
// An 8-way join chain R0 ⋈ R1 ⋈ … ⋈ R7 on a shared key, with each delta
// round touching only `touched` of the 8 base tables. A router that knows
// which subtrees read which tables skips the untouched ones outright; an
// unrouted pipeline walks all 15 operators to discover their deltas are
// empty.
constexpr size_t kManyTables = 8;
constexpr size_t kManyTableRows = 512;
constexpr size_t kManyTableRounds = 1000;

std::string ManyTableName(size_t i) { return "R" + std::to_string(i); }

void BuildManyTableDb(Database* db) {
  for (size_t t = 0; t < kManyTables; ++t) {
    Schema schema({Attribute{"K", ValueType::kInt64},
                   Attribute{"V", ValueType::kInt64}});
    Table* table = db->CreateTable(ManyTableName(t), std::move(schema));
    for (size_t k = 0; k < kManyTableRows; ++k) {
      table->Insert(Tuple{Value::Int(static_cast<int64_t>(k)),
                          Value::Int(static_cast<int64_t>(t * 1000 + k))});
    }
  }
}

// ((R0 ⋈ R1) ⋈ R2) ⋈ … on K. The accumulated left side keeps K at column 0.
ra::PlanPtr BuildManyTableJoinPlan(const Database& db) {
  ra::PlanPtr plan = std::make_unique<ra::ScanNode>(
      ManyTableName(0), db.RequireTable(ManyTableName(0))->schema());
  for (size_t t = 1; t < kManyTables; ++t) {
    ra::PlanPtr right = std::make_unique<ra::ScanNode>(
        ManyTableName(t), db.RequireTable(ManyTableName(t))->schema());
    plan = std::make_unique<ra::JoinNode>(
        std::move(plan), std::move(right), std::vector<size_t>{0},
        std::vector<size_t>{0}, nullptr);
  }
  return plan;
}

// Synthesizes `rounds` delta rounds, each flipping V on `flips` rows of the
// first `touched` tables. Views never re-read tables after Initialize, so a
// shadow copy of the V column keeps the stream consistent without mutating
// the database.
std::vector<view::DeltaSet> MakeManyTableDeltas(size_t rounds, size_t touched,
                                                size_t flips, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> shadow(
      kManyTables, std::vector<int64_t>(kManyTableRows));
  for (size_t t = 0; t < kManyTables; ++t) {
    for (size_t k = 0; k < kManyTableRows; ++k) {
      shadow[t][k] = static_cast<int64_t>(t * 1000 + k);
    }
  }
  std::vector<view::DeltaSet> out;
  out.reserve(rounds);
  for (size_t r = 0; r < rounds; ++r) {
    view::DeltaSet deltas;
    for (size_t t = 0; t < touched; ++t) {
      view::DeltaMultiset& d = deltas.ForTable(ManyTableName(t));
      for (size_t f = 0; f < flips; ++f) {
        const size_t k = rng.UniformInt(kManyTableRows);
        const int64_t next = shadow[t][k] + 1;
        d.Add(Tuple{Value::Int(static_cast<int64_t>(k)),
                    Value::Int(shadow[t][k])},
              -1);
        d.Add(Tuple{Value::Int(static_cast<int64_t>(k)), Value::Int(next)}, 1);
        shadow[t][k] = next;
      }
    }
    out.push_back(std::move(deltas));
  }
  return out;
}

void BM_ViewApplyDeltaManyTables(benchmark::State& state) {
  const size_t touched = static_cast<size_t>(state.range(0));
  Database db;
  BuildManyTableDb(&db);
  ra::PlanPtr plan = BuildManyTableJoinPlan(db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  const auto deltas = MakeManyTableDeltas(kManyTableRounds + 64, touched,
                                          /*flips=*/4, DeriveSeed(g_master, 4));
  size_t i = 0;
  for (auto _ : state) {
    FGPDB_CHECK_LT(i, deltas.size());
    benchmark::DoNotOptimize(view.Apply(deltas[i++]));
  }
#ifdef FGPDB_VIEW_ROUTED_PIPELINE
  const view::ApplyStats& stats = view.stats();
  state.counters["ops_visited_per_round"] =
      static_cast<double>(stats.operators_visited) /
      static_cast<double>(stats.rounds);
  state.counters["ops_skipped_per_round"] =
      static_cast<double>(stats.operators_skipped) /
      static_cast<double>(stats.rounds);
#endif
}

void BM_DeltaCoalescing(benchmark::State& state) {
  // Ablation (DESIGN.md): per-row coalescing means a row flipped R times
  // between evaluations contributes at most 2 delta entries, not 2R.
  const size_t flips = static_cast<size_t>(state.range(0));
  NerBench bench(10000, DeriveSeed(g_master, 5));
  const auto domain = ie::LabelDomain();
  for (auto _ : state) {
    view::DeltaSet deltas;
    uint32_t current = ie::kLabelO;
    for (size_t i = 0; i < flips; ++i) {
      const uint32_t next = (current + 1) % ie::kNumLabels;
      bench.tokens.pdb->binding().ApplyToDatabase(
          {{0, current, next}}, &bench.tokens.pdb->db(), &deltas);
      current = next;
    }
    benchmark::DoNotOptimize(deltas.Get(ie::kTokenTable).distinct_size());
  }
}

#ifdef FGPDB_VIEW_ROUTED_PIPELINE
void BM_AccumulatorCoalescing(benchmark::State& state) {
  // Row-granular accumulation: a flip records one pre-image copy the first
  // time its row is touched; Flush emits at most one −/+ pair per changed
  // row. Compare with BM_DeltaCoalescing's tuple-multiset path.
  const size_t flips = static_cast<size_t>(state.range(0));
  NerBench bench(10000, DeriveSeed(g_master, 6));
  for (auto _ : state) {
    view::DeltaAccumulator acc;
    view::DeltaSet deltas;
    uint32_t current = ie::kLabelO;
    for (size_t i = 0; i < flips; ++i) {
      const uint32_t next = (current + 1) % ie::kNumLabels;
      bench.tokens.pdb->binding().ApplyToDatabase(
          {{0, current, next}}, &bench.tokens.pdb->db(), &acc);
      current = next;
    }
    acc.Flush(bench.tokens.pdb->db(), &deltas);
    benchmark::DoNotOptimize(deltas.Get(ie::kTokenTable).distinct_size());
  }
}
#endif

}  // namespace

BENCHMARK(BM_FullQueryExecution)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDelta)->Arg(10000)->Arg(100000)
    ->Iterations(kDeltaRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDeltaJoin)->Arg(10000)->Arg(50000)
    ->Iterations(kDeltaRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDeltaAggregate)->Arg(10000)->Arg(50000)
    ->Iterations(kDeltaRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDeltaJoinHeavy)->Args({20000, 500})->Args({20000, 2000})
    ->Iterations(kJoinHeavyRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDeltaJoinCross)->Arg(64)->Arg(256)
    ->Iterations(kCrossRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewApplyDeltaManyTables)->Arg(1)->Arg(8)
    ->Iterations(kManyTableRounds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeltaCoalescing)->Arg(10)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
#ifdef FGPDB_VIEW_ROUTED_PIPELINE
BENCHMARK(BM_AccumulatorCoalescing)->Arg(10)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
#endif

int main(int argc, char** argv) {
  g_master = InitBenchSeed(&argc, argv, "micro_view_maintenance");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
