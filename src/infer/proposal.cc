#include "infer/proposal.h"

#include <cmath>

#include "util/math_util.h"

namespace fgpdb {
namespace infer {

void GibbsProposal::Propose(const factor::World& world, Rng& rng,
                            factor::Change* change, double* log_ratio) {
  *log_ratio = 0.0;
  change->Clear();
  if (model_.num_variables() == 0) return;
  const factor::VarId var = DrawGibbsSite(world, rng);
  const size_t k = model_.domain_size(var);
  const uint32_t old_value = world.Get(var);

  // Conditional log-weights: delta of moving var to each candidate value
  // (the current value has delta 0 by definition). The vectorized
  // ConditionalRow computes the whole row in one call when the model
  // supports it; the per-candidate loop is the scalar reference path.
  std::vector<double>& log_weights = log_weights_;
  log_weights.resize(k);
  if (!model_.ConditionalRow(world, var, log_weights.data(), scratch_.get())) {
    std::fill(log_weights.begin(), log_weights.end(), 0.0);
    for (uint32_t v = 0; v < k; ++v) {
      if (v == old_value) continue;
      candidate_.Clear();
      candidate_.Set(var, v);
      log_weights[v] = model_.LogScoreDelta(world, candidate_, scratch_.get());
    }
  }
  const uint32_t new_value = static_cast<uint32_t>(rng.LogCategorical(log_weights));

  // q(w'|w) = p(new | rest), q(w|w') = p(old | rest); the correction
  // cancels the model ratio so acceptance is exactly 1.
  const double lse = LogSumExp(log_weights);
  const double log_q_forward = log_weights[new_value] - lse;
  const double log_q_backward = log_weights[old_value] - lse;
  *log_ratio = log_q_backward - log_q_forward;

  if (new_value != old_value) change->Set(var, new_value);
}

}  // namespace infer
}  // namespace fgpdb
