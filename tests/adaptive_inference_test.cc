// End-to-end tests of ExecutionPolicy::Until(confidence, eps) — the
// run-until-error-bound policy — against three oracles:
//
//   correctness   — the adaptive answer must land within the advertised ±eps
//                   of an exhaustive fixed-count run (Queries 1–4);
//   determinism   — stopping decisions are functions of the sample stream
//                   alone, so repeated runs at one seed (threaded included)
//                   are bitwise-identical, and enabling tracking with an
//                   unreachable eps cannot perturb the chain trajectory;
//   progress      — the escalation ladder doubles the chain count while the
//                   bound is unmet, and Snapshot() stays safe to call from
//                   another thread mid-run (TSan leg covers the
//                   ConcurrentSnapshot test).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/query_evaluator.h"
#include "storage/tuple.h"

namespace fgpdb {
namespace {

struct NerFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit NerFixture(size_t num_tokens, uint64_t seed = 21) {
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 60, .seed = seed});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  pdb::ProposalFactory MakeFactory() {
    return [this](pdb::ProbabilisticDatabase&)
               -> std::unique_ptr<infer::Proposal> {
      return std::make_unique<ie::DocumentBatchProposal>(
          &tokens.docs, ie::NerProposalOptions{.proposals_per_batch = 300});
    };
  }
};

const std::vector<const char*>& PaperQueries() {
  static const std::vector<const char*> kQueries = {
      ie::kQuery1, ie::kQuery2, ie::kQuery3, ie::kQuery4};
  return kQueries;
}

void ExpectBitwiseEqual(const pdb::QueryAnswer& got,
                        const pdb::QueryAnswer& want, const char* what) {
  EXPECT_EQ(got.num_samples(), want.num_samples()) << what;
  const auto got_sorted = got.Sorted();
  const auto want_sorted = want.Sorted();
  ASSERT_EQ(got_sorted.size(), want_sorted.size()) << what;
  for (size_t i = 0; i < got_sorted.size(); ++i) {
    EXPECT_EQ(got_sorted[i].first, want_sorted[i].first) << what;
    EXPECT_EQ(got_sorted[i].second, want_sorted[i].second)
        << what << " tuple " << got_sorted[i].first.ToString();
  }
}

// Largest |p_a - p_b| over the union of both answers' tuples.
double MaxMarginalGap(const pdb::QueryAnswer& a, const pdb::QueryAnswer& b) {
  double gap = 0.0;
  for (const auto& [tuple, p] : a.Sorted()) {
    gap = std::max(gap, std::abs(p - b.Probability(tuple)));
  }
  for (const auto& [tuple, p] : b.Sorted()) {
    gap = std::max(gap, std::abs(p - a.Probability(tuple)));
  }
  return gap;
}

// --- Differential oracle ----------------------------------------------------

TEST(AdaptiveInferenceTest, UntilMatchesExhaustiveRunWithinEps) {
  // until(0.95, 0.08) on the Query 1–4 bundle must reach the same marginals
  // an exhaustive fixed-count run reaches, within the advertised tolerance
  // (both sides carry Monte-Carlo error, so the gap budget is eps for the
  // adaptive side plus slack for the oracle's own noise).
  //
  // Burn-in is deliberately generous (the bench uses 40·tokens): every COW
  // chain starts from the same initial world, and bias shared by all chains
  // is exactly what a cross-chain standard error cannot see. The bound is a
  // sampling-noise bound, it only becomes an accuracy bound once the chains
  // actually reach stationarity.
  NerFixture fixture(250);
  const double eps = 0.08;
  const pdb::EvaluatorOptions chain_options{
      .steps_per_sample = 500, .burn_in = 10000, .seed = 1234};

  auto adaptive = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = chain_options,
       .policy = api::ExecutionPolicy::Until(0.95, eps, /*num_chains=*/4)});
  std::vector<api::ResultHandle> handles;
  for (const char* query : PaperQueries()) {
    handles.push_back(adaptive->Register(query));
  }
  adaptive->Run(/*budget=*/4000);
  EXPECT_TRUE(adaptive->converged());

  // Exhaustive oracle: one long serial chain over the same bundle.
  auto exhaustive = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = {.steps_per_sample = 500, .burn_in = 10000, .seed = 777}});
  std::vector<api::ResultHandle> oracle_handles;
  for (const char* query : PaperQueries()) {
    oracle_handles.push_back(exhaustive->Register(query));
  }
  exhaustive->Run(800);

  for (size_t q = 0; q < PaperQueries().size(); ++q) {
    const api::QueryProgress progress = handles[q].Snapshot();
    EXPECT_TRUE(progress.converged) << PaperQueries()[q];
    EXPECT_LE(progress.max_half_width, eps) << PaperQueries()[q];
    EXPECT_GE(progress.chains, 4u);
    // Every reported estimate carries a finite standard error and the
    // probability matches the merged answer's.
    for (const api::TupleEstimate& est : progress.estimates) {
      EXPECT_LT(est.standard_error, std::numeric_limits<double>::infinity());
      EXPECT_NEAR(est.probability, progress.answer.Probability(est.tuple),
                  1e-12);
    }
    const double gap =
        MaxMarginalGap(progress.answer, oracle_handles[q].Snapshot().answer);
    // eps covers the adaptive side at 95%; the 800-sample oracle's own
    // standard error adds the rest of the budget.
    EXPECT_LE(gap, eps + 0.07) << PaperQueries()[q] << " gap " << gap;
  }
}

// --- Determinism ------------------------------------------------------------

TEST(AdaptiveInferenceTest, ThreadedUntilRunsAreBitwiseReproducible) {
  // Two sessions, identical options, threaded multi-chain until policy:
  // answers, error estimates, stopping decisions, and the escalation-ladder
  // position must all agree bitwise. This is the property the integer-sum
  // cross-chain statistics exist for — completion order varies between the
  // two runs, the results may not.
  NerFixture fixture(300);
  const pdb::EvaluatorOptions chain_options{
      .steps_per_sample = 250, .burn_in = 500, .seed = 4321};

  auto run_once = [&](std::vector<api::QueryProgress>* out, bool* converged) {
    auto session = api::Session::Open(
        {.database = fixture.tokens.pdb.get(),
         .proposal_factory = fixture.MakeFactory(),
         .evaluator = chain_options,
         .policy = api::ExecutionPolicy::Until(0.95, 0.1, /*num_chains=*/3)});
    std::vector<api::ResultHandle> handles;
    for (const char* query : PaperQueries()) {
      handles.push_back(session->Register(query));
    }
    session->Run(1500);
    *converged = session->converged();
    for (const api::ResultHandle& h : handles) out->push_back(h.Snapshot());
  };

  std::vector<api::QueryProgress> first, second;
  bool first_converged = false, second_converged = false;
  run_once(&first, &first_converged);
  run_once(&second, &second_converged);

  EXPECT_EQ(first_converged, second_converged);
  ASSERT_EQ(first.size(), second.size());
  for (size_t q = 0; q < first.size(); ++q) {
    ExpectBitwiseEqual(first[q].answer, second[q].answer, PaperQueries()[q]);
    EXPECT_EQ(first[q].converged, second[q].converged);
    EXPECT_EQ(first[q].max_half_width, second[q].max_half_width);
    EXPECT_EQ(first[q].rounds, second[q].rounds);
    EXPECT_EQ(first[q].chains, second[q].chains);
    ASSERT_EQ(first[q].estimates.size(), second[q].estimates.size());
    for (size_t i = 0; i < first[q].estimates.size(); ++i) {
      EXPECT_EQ(first[q].estimates[i].tuple, second[q].estimates[i].tuple);
      EXPECT_EQ(first[q].estimates[i].probability,
                second[q].estimates[i].probability);
      EXPECT_EQ(first[q].estimates[i].standard_error,
                second[q].estimates[i].standard_error);
    }
  }
}

TEST(AdaptiveInferenceTest, SerialTrackingNeverPerturbsTheTrajectory) {
  // Convergence tracking observes the chain, it must not steer it: a serial
  // until session with an unreachable eps draws bitwise the same answers as
  // a plain serial session at the same seed.
  NerFixture fixture(300);
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 250, .burn_in = 500, .seed = 99};

  auto tracked = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = options,
       .policy = api::ExecutionPolicy::Until(0.95, /*eps=*/1e-12,
                                             /*num_chains=*/1)});
  auto plain = api::Session::Open({.database = fixture.tokens.pdb.get(),
                                   .proposal_factory = fixture.MakeFactory(),
                                   .evaluator = options});
  std::vector<api::ResultHandle> tracked_handles, plain_handles;
  for (const char* query : PaperQueries()) {
    tracked_handles.push_back(tracked->Register(query));
    plain_handles.push_back(plain->Register(query));
  }
  tracked->Run(40);  // eps unreachable → runs the full budget
  plain->Run(40);
  EXPECT_FALSE(tracked->converged());
  for (size_t q = 0; q < PaperQueries().size(); ++q) {
    const api::QueryProgress progress = tracked_handles[q].Snapshot();
    EXPECT_EQ(progress.samples, 40u);
    EXPECT_FALSE(progress.converged);
    ExpectBitwiseEqual(progress.answer, plain_handles[q].Snapshot().answer,
                       PaperQueries()[q]);
  }
}

// --- Serial freezing --------------------------------------------------------

TEST(AdaptiveInferenceTest, SerialUntilFreezesConvergedViews) {
  // Single-chain variant: a query whose answer meets the bound freezes —
  // it stops observing samples (and leaves the delta fan-out) while looser
  // queries keep running. With a generous eps everything converges well
  // inside the budget; the frozen sample counts stay put.
  NerFixture fixture(300);
  auto session = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = {.steps_per_sample = 250, .burn_in = 500, .seed = 11},
       .policy = api::ExecutionPolicy::Until(0.90, /*eps=*/0.2,
                                             /*num_chains=*/1)});
  std::vector<api::ResultHandle> handles;
  for (const char* query : PaperQueries()) {
    handles.push_back(session->Register(query));
  }
  const uint64_t budget = 3000;
  session->Run(budget);
  ASSERT_TRUE(session->converged());
  std::vector<uint64_t> frozen_samples;
  for (size_t q = 0; q < handles.size(); ++q) {
    const api::QueryProgress progress = handles[q].Snapshot();
    EXPECT_TRUE(progress.converged) << PaperQueries()[q];
    EXPECT_LE(progress.max_half_width, 0.2) << PaperQueries()[q];
    EXPECT_LT(progress.samples, budget) << PaperQueries()[q];
    EXPECT_EQ(progress.chains, 1u);
    frozen_samples.push_back(progress.samples);
  }
  // Frozen is frozen: further Run() calls cannot move a converged answer.
  session->Run(50);
  for (size_t q = 0; q < handles.size(); ++q) {
    EXPECT_EQ(handles[q].Snapshot().samples, frozen_samples[q]);
  }
}

// --- Escalation ladder ------------------------------------------------------

TEST(AdaptiveInferenceTest, EscalationDoublesChainsWhileBoundUnmet) {
  // eps = 1e-7 is unreachable, so every round ends unconverged and the
  // ladder climbs: 2 chains → 4 → 8, then the budget check stops the loop.
  // Round r adds chains·samples_per_round samples: 64, +128, +256 = 448
  // total ≥ the 300 budget after round 3. All deterministic, so the
  // assertions are exact.
  NerFixture fixture(300);
  auto session = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = {.steps_per_sample = 200, .burn_in = 400, .seed = 6},
       .policy = api::ExecutionPolicy::Until(0.95, /*eps=*/1e-7,
                                             /*num_chains=*/2)});
  api::ResultHandle handle = session->Register(ie::kQuery1);
  session->Run(/*budget=*/300);
  EXPECT_FALSE(session->converged());
  const api::QueryProgress progress = handle.Snapshot();
  EXPECT_FALSE(progress.converged);
  EXPECT_EQ(progress.rounds, 3u);
  EXPECT_EQ(progress.chains, 8u);
  EXPECT_EQ(progress.samples, 448u);
  EXPECT_GT(progress.max_half_width, 1e-7);
  // Cross-chain errors are estimable (≥2 chains) even though unconverged.
  ASSERT_FALSE(progress.estimates.empty());
  for (const api::TupleEstimate& est : progress.estimates) {
    EXPECT_LT(est.standard_error, std::numeric_limits<double>::infinity());
  }
  // The ladder persists across Run() calls: the next round starts at 8
  // chains and keeps climbing only if escalations remain (max was 3,
  // already spent at 2→4→8... one rung left from the default 3).
  session->Run(/*budget=*/1);
  EXPECT_EQ(handle.Snapshot().rounds, 4u);
  EXPECT_EQ(handle.Snapshot().samples, 448u + 8u * 32u);
}

// --- Concurrent snapshot reader ---------------------------------------------

TEST(AdaptiveInferenceTest, ConcurrentSnapshotReaderSeesConsistentProgress) {
  // Snapshot() is documented safe to call from another thread while a
  // multi-chain until Run() executes (round-granular consistency under
  // results_mu_). The TSan CI leg runs this test; the in-test assertions
  // check monotone sample counts and internally consistent snapshots.
  NerFixture fixture(300);
  auto session = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = {.steps_per_sample = 200, .burn_in = 400, .seed = 77},
       .policy = api::ExecutionPolicy::Until(0.95, /*eps=*/0.1,
                                             /*num_chains=*/3)});
  api::ResultHandle q1 = session->Register(ie::kQuery1);
  api::ResultHandle q3 = session->Register(ie::kQuery3);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    uint64_t last_samples = 0;
    uint64_t last_rounds = 0;
    while (!done.load(std::memory_order_acquire)) {
      const api::QueryProgress progress = q1.Snapshot();
      // Rounds fold atomically: samples and rounds only move forward.
      EXPECT_GE(progress.samples, last_samples);
      EXPECT_GE(progress.rounds, last_rounds);
      last_samples = progress.samples;
      last_rounds = progress.rounds;
      for (const api::TupleEstimate& est : progress.estimates) {
        EXPECT_GE(est.probability, 0.0);
        EXPECT_LE(est.probability, 1.0);
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  session->Run(2000);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(reads.load(), 0u);
  // Post-run snapshots from the main thread are complete and consistent.
  for (const api::ResultHandle& h : {q1, q3}) {
    const api::QueryProgress progress = h.Snapshot();
    EXPECT_GT(progress.samples, 0u);
    EXPECT_EQ(progress.samples, progress.answer.num_samples());
  }
}

}  // namespace
}  // namespace fgpdb
