#include "ie/token_hot_block.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

namespace fgpdb {
namespace ie {
namespace {

using factor::VarId;

bool IsCapitalized(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

}  // namespace

TokenHotBlock BuildTokenHotBlock(
    const Vocabulary& vocab, const std::vector<uint32_t>& string_ids,
    const std::vector<std::vector<VarId>>& docs, bool use_skip_edges,
    size_t max_skip_group) {
  const size_t n = string_ids.size();
  TokenHotBlock out;
  out.built_with_skip_edges = use_skip_edges;
  out.built_max_skip_group = max_skip_group;
  out.records.assign(n + 1, TokenHotBlock::Record{});
  for (size_t v = 0; v < n; ++v) out.records[v].string_id = string_ids[v];

  // Partner lists are accumulated per token, then flattened to CSR. The
  // temporary vector-of-vectors exists only during the build; steady state
  // holds just the two flat arrays.
  std::vector<std::vector<VarId>> partners(n);
  for (const auto& doc : docs) {
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
      out.records[doc[i]].next = static_cast<int32_t>(doc[i + 1]);
      out.records[doc[i + 1]].prev = static_cast<int32_t>(doc[i]);
    }
    if (!use_skip_edges) continue;
    // Group this document's capitalized tokens by string id.
    std::unordered_map<uint32_t, std::vector<VarId>> groups;
    for (VarId v : doc) {
      const uint32_t sid = string_ids[v];
      if (IsCapitalized(vocab.String(sid))) groups[sid].push_back(v);
    }
    for (const auto& [sid, group] : groups) {
      (void)sid;
      if (group.size() < 2) continue;
      if (group.size() <= max_skip_group) {
        // All pairs, as in the paper's Figure 3.
        for (size_t i = 0; i < group.size(); ++i) {
          for (size_t j = i + 1; j < group.size(); ++j) {
            partners[group[i]].push_back(group[j]);
            partners[group[j]].push_back(group[i]);
            ++out.num_skip_edges;
          }
        }
      } else {
        // Bounded fallback: consecutive occurrences only.
        for (size_t i = 0; i + 1 < group.size(); ++i) {
          partners[group[i]].push_back(group[i + 1]);
          partners[group[i + 1]].push_back(group[i]);
          ++out.num_skip_edges;
        }
      }
    }
  }

  // Flatten to CSR. Ascending spans keep a single variable's touched skip
  // pairs in sorted-pair order — the same order the general (sort + dedupe)
  // enumeration scores in, so the fast path's floating-point summation is
  // bitwise-identical to it.
  size_t total = 0;
  for (const auto& list : partners) total += list.size();
  out.skip_partners.reserve(total);
  for (size_t v = 0; v < n; ++v) {
    out.records[v].skip_begin =
        static_cast<uint32_t>(out.skip_partners.size());
    std::sort(partners[v].begin(), partners[v].end());
    out.skip_partners.insert(out.skip_partners.end(), partners[v].begin(),
                             partners[v].end());
  }
  out.records[n].skip_begin = static_cast<uint32_t>(out.skip_partners.size());
  FGPDB_CHECK_EQ(out.skip_partners.size(), total);
  return out;
}

}  // namespace ie
}  // namespace fgpdb
