#include "storage/database.h"

#include "util/logging.h"

namespace fgpdb {

Table* Database::CreateTable(const std::string& name, Schema schema) {
  FGPDB_CHECK(tables_.count(name) == 0) << "table exists: " << name;
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Table* Database::GetTable(const std::string& name) {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::RequireTable(const std::string& name) {
  Table* table = GetTable(name);
  FGPDB_CHECK(table != nullptr) << "no such table: " << name;
  return table;
}

const Table* Database::RequireTable(const std::string& name) const {
  const Table* table = GetTable(name);
  FGPDB_CHECK(table != nullptr) << "no such table: " << name;
  return table;
}

void Database::DropTable(const std::string& name) {
  const auto erased = tables_.erase(name);
  FGPDB_CHECK_EQ(erased, 1u) << "no such table: " << name;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

std::unique_ptr<Database> Database::Clone() const {
  auto copy = std::make_unique<Database>();
  for (const auto& [name, table] : tables_) {
    copy->tables_.emplace(name, table->Clone());
  }
  return copy;
}

std::unique_ptr<Database> Database::Snapshot() const {
  auto copy = std::make_unique<Database>();
  for (const auto& [name, table] : tables_) {
    copy->tables_.emplace(name, table->Snapshot());
  }
  return copy;
}

}  // namespace fgpdb
