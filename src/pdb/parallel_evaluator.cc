#include "pdb/parallel_evaluator.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace fgpdb {
namespace pdb {

QueryAnswer EvaluateParallel(const ProbabilisticDatabase& pdb,
                             const ra::PlanNode& plan,
                             const ProposalFactory& make_proposal,
                             const ParallelOptions& options) {
  FGPDB_CHECK_GT(options.num_chains, 0u);

  struct Chain {
    std::unique_ptr<ProbabilisticDatabase> world;
    std::unique_ptr<infer::Proposal> proposal;
    std::unique_ptr<QueryEvaluator> evaluator;
  };
  std::vector<Chain> chains(options.num_chains);
  for (size_t b = 0; b < options.num_chains; ++b) {
    Chain& chain = chains[b];
    chain.world = pdb.Clone();
    chain.proposal = make_proposal(*chain.world);
    EvaluatorOptions chain_options = options.chain_options;
    // Decorrelate chains: each gets its own seed stream.
    chain_options.seed =
        options.chain_options.seed + 0x9e3779b97f4a7c15ULL * (b + 1);
    if (options.materialized) {
      chain.evaluator = std::make_unique<MaterializedQueryEvaluator>(
          chain.world.get(), chain.proposal.get(), &plan, chain_options);
    } else {
      chain.evaluator = std::make_unique<NaiveQueryEvaluator>(
          chain.world.get(), chain.proposal.get(), &plan, chain_options);
    }
  }

  auto run_chain = [&](size_t b) {
    chains[b].evaluator->Run(options.samples_per_chain);
  };

  if (options.use_threads && options.num_chains > 1) {
    ThreadPool pool(options.num_chains);
    for (size_t b = 0; b < options.num_chains; ++b) {
      pool.Submit([&, b] { run_chain(b); });
    }
    pool.Wait();
  } else {
    for (size_t b = 0; b < options.num_chains; ++b) run_chain(b);
  }

  QueryAnswer merged;
  for (const Chain& chain : chains) merged.Merge(chain.evaluator->answer());
  return merged;
}

}  // namespace pdb
}  // namespace fgpdb
