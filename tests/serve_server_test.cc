// serve::Server — the multi-tenant loop's acceptance suite: open-loop
// completion without losing admitted work, cross-session plan-cache
// economics, bitwise scheduler/standalone parity, streaming snapshots
// against a live scheduler (run under TSan in CI), admission control, and
// the wire protocol's response shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace fgpdb {
namespace {

struct NerFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit NerFixture(size_t num_tokens, uint64_t seed = 31) {
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 60, .seed = seed});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  pdb::ProposalFactory MakeFactory() {
    return [this](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
      return std::make_unique<ie::DocumentBatchProposal>(
          &tokens.docs, ie::NerProposalOptions{.proposals_per_batch = 300});
    };
  }

  serve::ServerOptions MakeServerOptions() {
    serve::ServerOptions options;
    options.database = tokens.pdb.get();
    options.proposal_factory = MakeFactory();
    options.evaluator = {};
    options.evaluator.steps_per_sample = 50;
    options.evaluator.seed = 7;
    return options;
  }
};

const char* QueryPool(size_t i) {
  static const char* kPool[] = {ie::kQuery1, ie::kQuery2, ie::kQuery3,
                                ie::kQuery4};
  return kPool[i % 4];
}

bool SameAnswer(const pdb::QueryAnswer& a, const pdb::QueryAnswer& b) {
  const auto sa = a.Sorted();
  const auto sb = b.Sorted();
  if (sa.size() != sb.size()) return false;
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!(sa[i].first == sb[i].first) || sa[i].second != sb[i].second) {
      return false;
    }
  }
  return true;
}

// The ISSUE's acceptance pin: a 16-tenant open-loop run completes with zero
// rejected-then-lost queries — every submission eventually admitted (via
// retry), every admitted sample drawn or convergence-yielded, no pending
// residue after Drain.
TEST(ServeServerTest, SixteenTenantOpenLoopZeroLost) {
  NerFixture fixture(300);
  serve::ServerOptions options = fixture.MakeServerOptions();
  options.quantum_samples = 4;
  // Tight cap so the open-loop schedule actually triggers Overloaded.
  options.max_outstanding_samples = 16;
  serve::Server server(options);

  constexpr size_t kTenants = 16;
  constexpr uint64_t kRounds = 4;
  constexpr uint64_t kSamplesPerSubmit = 8;
  std::vector<serve::TenantId> tenants(kTenants, 0);
  for (size_t t = 0; t < kTenants; ++t) {
    serve::TenantOptions tenant_options;
    tenant_options.has_evaluator = true;
    tenant_options.evaluator = options.evaluator;
    tenant_options.evaluator.seed = 1000 + t;
    ASSERT_TRUE(server.CreateTenant(&tenants[t], tenant_options).ok());
    serve::QueryId query = 0;
    ASSERT_TRUE(server.RegisterQuery(tenants[t], QueryPool(t), &query).ok());
  }

  uint64_t retries = 0;
  for (uint64_t round = 0; round < kRounds; ++round) {
    for (size_t t = 0; t < kTenants; ++t) {
      serve::Status status = server.Submit(tenants[t], kSamplesPerSubmit);
      while (status.code == serve::StatusCode::kOverloaded) {
        ++retries;
        std::this_thread::yield();
        status = server.Submit(tenants[t], kSamplesPerSubmit);
      }
      ASSERT_TRUE(status.ok()) << status.message;
      api::QueryProgress progress;
      ASSERT_TRUE(server.Snapshot(tenants[t], 0, &progress).ok());
    }
  }
  server.Drain();

  for (size_t t = 0; t < kTenants; ++t) {
    serve::TenantStats stats;
    ASSERT_TRUE(server.GetTenantStats(tenants[t], &stats).ok());
    EXPECT_EQ(stats.submitted, kRounds * kSamplesPerSubmit);
    EXPECT_EQ(stats.pending, 0u);
    EXPECT_EQ(stats.samples_drawn + stats.yielded, stats.submitted)
        << "tenant " << t << " lost admitted work";
  }
  const serve::SchedulerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.submissions_admitted, kTenants * kRounds);
  EXPECT_EQ(metrics.submissions_rejected, retries);
  EXPECT_EQ(metrics.snapshots_served, kTenants * kRounds);
  EXPECT_GT(metrics.quanta_executed, 0u);
}

// The ISSUE's plan-cache pin: a repeated-query workload (16 tenants x the
// paper's four queries) binds each distinct text once — 60 of 64
// registrations hit the cross-session cache (93.75% > the 80% bar).
TEST(ServeServerTest, PlanCacheHitRateAboveEightyPercent) {
  NerFixture fixture(300);
  serve::Server server(fixture.MakeServerOptions());
  constexpr size_t kTenants = 16;
  for (size_t t = 0; t < kTenants; ++t) {
    serve::TenantId id = 0;
    ASSERT_TRUE(server.CreateTenant(&id).ok());
    for (size_t q = 0; q < 4; ++q) {
      serve::QueryId query = 0;
      ASSERT_TRUE(server.RegisterQuery(id, QueryPool(q), &query).ok());
      EXPECT_EQ(query, q);
    }
  }
  const api::PlanCache::Stats stats = server.plan_cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, kTenants * 4 - 4);
  EXPECT_GT(stats.HitRate(), 0.8);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 4u);
}

// Spelling variants (whitespace, case, comments) share one cache entry.
TEST(ServeServerTest, PlanCacheKeysOnNormalizedText) {
  NerFixture fixture(300);
  serve::Server server(fixture.MakeServerOptions());
  serve::TenantId a = 0, b = 0;
  ASSERT_TRUE(server.CreateTenant(&a).ok());
  ASSERT_TRUE(server.CreateTenant(&b).ok());
  serve::QueryId query = 0;
  ASSERT_TRUE(server.RegisterQuery(a, ie::kQuery1, &query).ok());
  ASSERT_TRUE(
      server
          .RegisterQuery(b,
                         "select STRING from TOKEN -- spelled differently\n"
                         "where /* block */ LABEL = 'B-PER'",
                         &query)
          .ok());
  const api::PlanCache::Stats stats = server.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

// The ISSUE's determinism pin: one tenant driven by the scheduler in
// bounded quanta answers bitwise-identically to the same Session run
// standalone at the same seed — slicing never perturbs a chain.
TEST(ServeServerTest, SchedulerBitwiseEqualsStandaloneSession) {
  constexpr uint64_t kSamples = 60;
  NerFixture fixture(300);

  auto standalone = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .proposal_factory = fixture.MakeFactory(),
       .evaluator = {.steps_per_sample = 50, .seed = 7}});
  api::ResultHandle reference = standalone->Register(ie::kQuery1);
  standalone->Run(kSamples);

  serve::ServerOptions options = fixture.MakeServerOptions();
  options.quantum_samples = 7;  // deliberately not a divisor of kSamples
  serve::Server server(options);
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id).ok());
  serve::QueryId query = 0;
  ASSERT_TRUE(server.RegisterQuery(id, ie::kQuery1, &query).ok());
  ASSERT_TRUE(server.Submit(id, kSamples).ok());
  server.Drain();

  api::QueryProgress scheduled;
  ASSERT_TRUE(server.Snapshot(id, query, &scheduled).ok());
  const api::QueryProgress direct = reference.Snapshot();
  EXPECT_EQ(scheduled.samples, direct.samples);
  EXPECT_TRUE(SameAnswer(scheduled.answer, direct.answer))
      << "scheduler quanta perturbed the chain";
}

// Streaming reads: concurrent Snapshot() callers race the scheduler's
// quanta on a live chain. Sample counts must be monotone per reader and
// the whole interleaving data-race-free (this test is in CI's TSan leg).
TEST(ServeServerTest, ConcurrentSnapshotsDuringScheduledRun) {
  NerFixture fixture(300);
  serve::ServerOptions options = fixture.MakeServerOptions();
  options.quantum_samples = 4;
  serve::Server server(options);
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id).ok());
  serve::QueryId query = 0;
  ASSERT_TRUE(server.RegisterQuery(id, ie::kQuery1, &query).ok());
  ASSERT_TRUE(server.Submit(id, 120).ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        api::QueryProgress progress;
        if (!server.Snapshot(id, 0, &progress).ok() ||
            progress.samples < last) {
          failures.fetch_add(1);
          return;
        }
        last = progress.samples;
      }
    });
  }
  server.Drain();
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  api::QueryProgress final_progress;
  ASSERT_TRUE(server.Snapshot(id, query, &final_progress).ok());
  EXPECT_EQ(final_progress.samples, 120u);
  EXPECT_GT(server.metrics().snapshots_served, 0u);
}

// Admission control: the outstanding cap rejects with a typed Overloaded,
// and the same submission is admitted after the backlog drains.
TEST(ServeServerTest, OverloadedRejectionThenRetryAfterDrainSucceeds) {
  NerFixture fixture(300);
  serve::ServerOptions options = fixture.MakeServerOptions();
  options.max_outstanding_samples = 32;
  serve::Server server(options);
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id).ok());
  serve::QueryId query = 0;
  ASSERT_TRUE(server.RegisterQuery(id, ie::kQuery1, &query).ok());

  ASSERT_TRUE(server.Submit(id, 32).ok());
  const serve::Status rejected = server.Submit(id, 32);
  // The first budget may already have partially drained; only a rejection
  // that names the cap is acceptable as the alternative to admission.
  if (!rejected.ok()) {
    EXPECT_EQ(rejected.code, serve::StatusCode::kOverloaded);
    EXPECT_NE(rejected.message.find("cap"), std::string::npos);
  }
  server.Drain();
  EXPECT_TRUE(server.Submit(id, 32).ok()) << "post-drain retry must admit";
  server.Drain();

  serve::TenantStats stats;
  ASSERT_TRUE(server.GetTenantStats(id, &stats).ok());
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.samples_drawn + stats.yielded, stats.submitted);
}

TEST(ServeServerTest, SubmitValidation) {
  NerFixture fixture(300);
  serve::Server server(fixture.MakeServerOptions());
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id).ok());

  EXPECT_EQ(server.Submit(id + 99, 8).code, serve::StatusCode::kNotFound);
  EXPECT_EQ(server.Submit(id, 0).code, serve::StatusCode::kInvalidArgument);
  // No registered queries yet: sampling would be unobservable work.
  EXPECT_EQ(server.Submit(id, 8).code, serve::StatusCode::kInvalidArgument);
  api::QueryProgress progress;
  EXPECT_EQ(server.Snapshot(id, 0, &progress).code,
            serve::StatusCode::kNotFound);
}

// A converged until-policy tenant yields its remaining budget: the
// scheduler retires it as served (PR 6's convergence state as the
// preemption signal) instead of burning quanta on a bounded answer.
TEST(ServeServerTest, ConvergedTenantYieldsRemainingBudget) {
  NerFixture fixture(300);
  serve::ServerOptions options = fixture.MakeServerOptions();
  options.quantum_samples = 32;
  serve::Server server(options);
  serve::TenantOptions tenant_options;
  // A loose bound over one resident chain converges within ~min_samples.
  tenant_options.policy = api::ExecutionPolicy::Until(0.9, 0.45,
                                                      /*num_chains=*/1);
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id, tenant_options).ok());
  serve::QueryId query = 0;
  ASSERT_TRUE(server.RegisterQuery(id, ie::kQuery1, &query).ok());
  ASSERT_TRUE(server.Submit(id, 4096).ok());
  server.Drain();

  serve::TenantStats stats;
  ASSERT_TRUE(server.GetTenantStats(id, &stats).ok());
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.yielded, 0u) << "converged tenant kept its slot";
  EXPECT_LT(stats.samples_drawn, 4096u);
  EXPECT_EQ(stats.samples_drawn + stats.yielded, 4096u);
  EXPECT_GE(server.metrics().converged_yields, 1u);

  api::QueryProgress progress;
  ASSERT_TRUE(server.Snapshot(id, query, &progress).ok());
  EXPECT_TRUE(progress.converged);
}

TEST(ServeServerTest, PlanCacheEvictsLruPastCapacity) {
  NerFixture fixture(300);
  serve::ServerOptions options = fixture.MakeServerOptions();
  options.plan_cache_capacity = 2;
  serve::Server server(options);
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id).ok());
  serve::QueryId query = 0;
  for (size_t q = 0; q < 3; ++q) {
    ASSERT_TRUE(server.RegisterQuery(id, QueryPool(q), &query).ok());
  }
  const api::PlanCache::Stats stats = server.plan_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(ServeServerTest, CloseTenantDrainsItsBacklogFirst) {
  NerFixture fixture(300);
  serve::ServerOptions options = fixture.MakeServerOptions();
  options.quantum_samples = 4;
  serve::Server server(options);
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id).ok());
  serve::QueryId query = 0;
  ASSERT_TRUE(server.RegisterQuery(id, ie::kQuery1, &query).ok());
  ASSERT_TRUE(server.Submit(id, 64).ok());
  ASSERT_TRUE(server.CloseTenant(id).ok());
  EXPECT_EQ(server.num_tenants(), 0u);
  EXPECT_EQ(server.Submit(id, 8).code, serve::StatusCode::kNotFound);
  EXPECT_EQ(server.CloseTenant(id).code, serve::StatusCode::kNotFound);
  // The backlog was drained, not dropped: 64/4 = 16 quanta ran.
  EXPECT_EQ(server.metrics().samples_drawn, 64u);
}

TEST(ServeServerTest, TenantLimitRejectsWithUnavailable) {
  NerFixture fixture(300);
  serve::ServerOptions options = fixture.MakeServerOptions();
  options.max_tenants = 2;
  serve::Server server(options);
  serve::TenantId id = 0;
  ASSERT_TRUE(server.CreateTenant(&id).ok());
  ASSERT_TRUE(server.CreateTenant(&id).ok());
  EXPECT_EQ(server.CreateTenant(&id).code, serve::StatusCode::kUnavailable);
}

// --- Wire protocol -----------------------------------------------------------

struct ProtocolFixture : NerFixture {
  ProtocolFixture() : NerFixture(300), server(MakeServerOptions()),
                      protocol(&server) {}
  serve::Server server;
  serve::LineProtocol protocol;

  std::string Send(const std::string& line) {
    return protocol.HandleLine(line).response;
  }
};

TEST(ServeProtocolTest, HappyPathResponses) {
  ProtocolFixture fx;
  EXPECT_EQ(fx.Send("TENANT NEW SERIAL SEED 42"), "OK tenant=1\n");
  EXPECT_EQ(fx.Send(std::string("QUERY 1 ") + ie::kQuery1), "OK query=0\n");
  EXPECT_EQ(fx.Send("RUN 1 20"), "OK admitted=20\n");
  EXPECT_EQ(fx.Send("DRAIN"), "OK drained\n");

  const std::string snapshot = fx.Send("SNAPSHOT 1 0 TOP 2");
  EXPECT_EQ(snapshot.rfind("SNAPSHOT samples=20 ", 0), 0u) << snapshot;
  EXPECT_NE(snapshot.find("rows="), std::string::npos);
  EXPECT_EQ(snapshot.substr(snapshot.size() - 4), "END\n");

  const std::string stats = fx.Send("STATS");
  EXPECT_EQ(stats.rfind("STATS\n", 0), 0u);
  EXPECT_NE(stats.find("tenants=1\n"), std::string::npos);
  EXPECT_NE(stats.find("samples_drawn=20\n"), std::string::npos);
  EXPECT_NE(stats.find("plan_cache_hit_rate="), std::string::npos);

  EXPECT_EQ(fx.Send("TENANT CLOSE 1"), "OK\n");
  const serve::LineProtocol::Result quit = fx.protocol.HandleLine("QUIT");
  EXPECT_EQ(quit.response, "OK bye\n");
  EXPECT_TRUE(quit.quit);
}

TEST(ServeProtocolTest, ErrorsAndBlankLines) {
  ProtocolFixture fx;
  EXPECT_EQ(fx.Send(""), "");
  EXPECT_EQ(fx.Send("# a comment line"), "");
  EXPECT_EQ(fx.Send("FROB 1"),
            "ERR INVALID_ARGUMENT unknown command 'FROB'\n");
  EXPECT_EQ(fx.Send("RUN 9 10"), "ERR NOT_FOUND no tenant 9\n");
  EXPECT_EQ(fx.Send("RUN 1"), "ERR INVALID_ARGUMENT RUN <tenant> <samples>\n");
  EXPECT_EQ(fx.Send("TENANT NEW WARP"),
            "ERR INVALID_ARGUMENT unknown TENANT NEW argument 'WARP'\n");
  EXPECT_EQ(fx.Send("SNAPSHOT 1 0").rfind("ERR NOT_FOUND", 0), 0u);
}

TEST(ServeProtocolTest, UntilTenantSpeaksConvergence) {
  ProtocolFixture fx;
  EXPECT_EQ(fx.Send("TENANT NEW UNTIL 0.9 0.45"), "OK tenant=1\n");
  EXPECT_EQ(fx.Send(std::string("QUERY 1 ") + ie::kQuery1), "OK query=0\n");
  EXPECT_EQ(fx.Send("RUN 1 4096"), "OK admitted=4096\n");
  EXPECT_EQ(fx.Send("DRAIN"), "OK drained\n");
  const std::string snapshot = fx.Send("SNAPSHOT 1 0 TOP 1");
  EXPECT_NE(snapshot.find(" converged=1 "), std::string::npos) << snapshot;
}

}  // namespace
}  // namespace fgpdb
