#include "util/table_printer.h"

#include <algorithm>
#include <iomanip>

#include "util/logging.h"

namespace fgpdb {

void TablePrinter::AddRow(std::vector<std::string> row) {
  FGPDB_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << "\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto csv_line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  csv_line(headers_);
  for (const auto& row : rows_) csv_line(row);
}

}  // namespace fgpdb
