// Belief propagation tests, reproducing the paper's §5.3 framing: exact on
// trees, approximate-or-worse on the loopy graphs skip chains induce, where
// MCMC keeps working.
#include <gtest/gtest.h>

#include <cmath>

#include "factor/factor_graph.h"
#include "infer/belief_propagation.h"
#include "infer/exact.h"
#include "infer/marginal_estimator.h"
#include "infer/metropolis_hastings.h"
#include "infer/proposal.h"
#include "util/rng.h"

namespace fgpdb {
namespace infer {
namespace {

using factor::Domain;
using factor::FactorGraph;
using factor::TableFactor;
using factor::VarId;

void AddUnary(FactorGraph& graph, VarId v, std::vector<double> scores) {
  const size_t k = scores.size();
  graph.AddFactor(std::make_unique<TableFactor>(
      std::vector<VarId>{v}, std::vector<size_t>{k}, std::move(scores)));
}

void AddPairwise(FactorGraph& graph, VarId a, VarId b, size_t k,
                 std::vector<double> scores) {
  graph.AddFactor(std::make_unique<TableFactor>(
      std::vector<VarId>{a, b}, std::vector<size_t>{k, k}, std::move(scores)));
}

TEST(BeliefPropagationTest, ExactOnSingleVariable) {
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(3));
  graph.AddVariable(domain);
  AddUnary(graph, 0, {0.0, 1.0, 2.0});
  const LoopyBpResult bp = LoopyBeliefPropagation(graph);
  const ExactResult exact = ExactInference(graph);
  EXPECT_TRUE(bp.converged);
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(bp.marginals[0][x], exact.marginals[0][x], 1e-9);
  }
}

TEST(BeliefPropagationTest, ExactOnChains) {
  // BP on a tree (here a chain) is exact.
  Rng rng(31);
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(3));
  for (int i = 0; i < 5; ++i) graph.AddVariable(domain);
  for (VarId v = 0; v < 5; ++v) {
    AddUnary(graph, v, {rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
  }
  for (VarId v = 0; v + 1 < 5; ++v) {
    std::vector<double> scores(9);
    for (auto& s : scores) s = rng.Gaussian();
    AddPairwise(graph, v, v + 1, 3, std::move(scores));
  }
  const LoopyBpResult bp = LoopyBeliefPropagation(graph);
  const ExactResult exact = ExactInference(graph);
  ASSERT_TRUE(bp.converged);
  for (size_t v = 0; v < 5; ++v) {
    for (size_t x = 0; x < 3; ++x) {
      EXPECT_NEAR(bp.marginals[v][x], exact.marginals[v][x], 1e-6)
          << "var " << v << " value " << x;
    }
  }
}

TEST(BeliefPropagationTest, ExactOnStarTrees) {
  Rng rng(37);
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(2));
  for (int i = 0; i < 6; ++i) graph.AddVariable(domain);
  for (VarId v = 0; v < 6; ++v) AddUnary(graph, v, {0.0, rng.Gaussian()});
  for (VarId leaf = 1; leaf < 6; ++leaf) {
    std::vector<double> scores(4);
    for (auto& s : scores) s = rng.Gaussian();
    AddPairwise(graph, 0, leaf, 2, std::move(scores));
  }
  const LoopyBpResult bp = LoopyBeliefPropagation(graph);
  const ExactResult exact = ExactInference(graph);
  ASSERT_TRUE(bp.converged);
  for (size_t v = 0; v < 6; ++v) {
    EXPECT_NEAR(bp.marginals[v][1], exact.marginals[v][1], 1e-6);
  }
}

// Frustrated loop: strong antiferromagnetic couplings around an odd cycle,
// with asymmetric fields so the marginals are informative. The classic BP
// failure mode (§5.3's "fail to converge for these types of graphs"):
// messages circulate the cycle and double-count evidence — and the MCMC
// sampler handles the same graph fine.
FactorGraph FrustratedTriangle(double coupling) {
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(2));
  for (int i = 0; i < 3; ++i) graph.AddVariable(domain);
  AddUnary(graph, 0, {0.0, 0.8});
  AddUnary(graph, 1, {0.0, -0.3});
  AddUnary(graph, 2, {0.0, 0.2});
  const std::vector<double> disagree = {-coupling, coupling, coupling,
                                        -coupling};
  AddPairwise(graph, 0, 1, 2, disagree);
  AddPairwise(graph, 1, 2, 2, disagree);
  AddPairwise(graph, 2, 0, 2, disagree);
  return graph;
}

TEST(BeliefPropagationTest, McmcBeatsBpOnFrustratedLoops) {
  FactorGraph graph = FrustratedTriangle(3.0);
  const ExactResult exact = ExactInference(graph);

  LoopyBpOptions options;
  options.max_iterations = 300;
  const LoopyBpResult bp = LoopyBeliefPropagation(graph, options);

  factor::World world = graph.MakeWorld();
  UniformSingleVariableProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, 7);
  MarginalEstimator estimator({2, 2, 2});
  sampler.Run(3000);
  for (int i = 0; i < 60000; ++i) {
    sampler.Step();
    estimator.Observe(world);
  }

  auto total_error = [&](const std::vector<std::vector<double>>& marginals) {
    double err = 0.0;
    for (size_t v = 0; v < 3; ++v) {
      for (size_t x = 0; x < 2; ++x) {
        const double d = marginals[v][x] - exact.marginals[v][x];
        err += d * d;
      }
    }
    return err;
  };
  std::vector<std::vector<double>> mcmc_marginals(3);
  for (size_t v = 0; v < 3; ++v) {
    mcmc_marginals[v] = estimator.Marginal(static_cast<VarId>(v));
  }
  const double mcmc_error = total_error(mcmc_marginals);
  EXPECT_LT(mcmc_error, 1e-3);
  // BP either fails to converge or (converged or not) is no better than
  // MCMC on this graph; on frustrated loops its messages oscillate.
  if (!bp.converged) {
    SUCCEED() << "BP failed to converge (the paper's observation)";
  } else {
    EXPECT_GE(total_error(bp.marginals) + 1e-9, mcmc_error)
        << "BP should not beat MCMC on a frustrated loop";
  }
}

TEST(BeliefPropagationTest, DampingHelpsConvergenceOnLoops) {
  FactorGraph graph = FrustratedTriangle(1.2);
  LoopyBpOptions raw;
  raw.max_iterations = 60;
  LoopyBpOptions damped = raw;
  damped.damping = 0.6;
  const LoopyBpResult undamped_result = LoopyBeliefPropagation(graph, raw);
  const LoopyBpResult damped_result = LoopyBeliefPropagation(graph, damped);
  // Damped BP should do at least as well at converging.
  EXPECT_GE(static_cast<int>(damped_result.converged),
            static_cast<int>(undamped_result.converged));
}

TEST(BeliefPropagationTest, ApproximateButReasonableOnWeakLoops) {
  // Weakly coupled loops: BP converges and is close (not exact).
  Rng rng(41);
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(2));
  for (int i = 0; i < 4; ++i) graph.AddVariable(domain);
  for (VarId v = 0; v < 4; ++v) {
    AddUnary(graph, v, {0.0, 0.5 * rng.Gaussian()});
  }
  for (VarId v = 0; v < 4; ++v) {
    std::vector<double> scores(4);
    for (auto& s : scores) s = 0.3 * rng.Gaussian();
    AddPairwise(graph, v, static_cast<VarId>((v + 1) % 4), 2,
                std::move(scores));
  }
  LoopyBpOptions options;
  options.damping = 0.3;
  const LoopyBpResult bp = LoopyBeliefPropagation(graph, options);
  const ExactResult exact = ExactInference(graph);
  ASSERT_TRUE(bp.converged);
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(bp.marginals[v][1], exact.marginals[v][1], 0.05);
  }
}

}  // namespace
}  // namespace infer
}  // namespace fgpdb
