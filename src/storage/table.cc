#include "storage/table.h"

#include <algorithm>

#include "util/logging.h"

namespace fgpdb {

const std::vector<RowId> Table::kEmptyRowList;

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

RowId Table::Insert(Tuple tuple) {
  FGPDB_CHECK_EQ(tuple.arity(), schema_.arity())
      << "arity mismatch inserting into " << name_;
  const RowId row = rows_.size();
  if (schema_.primary_key().has_value()) {
    const Value& key = tuple.at(*schema_.primary_key());
    const bool inserted = pk_index_.emplace(key, row).second;
    FGPDB_CHECK(inserted) << "duplicate primary key " << key.ToString()
                          << " in " << name_;
  }
  for (auto& [column, index] : secondary_indexes_) {
    (void)index;
    IndexInsert(column, tuple.at(column), row);
  }
  rows_.push_back(std::move(tuple));
  deleted_.push_back(false);
  ++live_rows_;
  return row;
}

void Table::Delete(RowId row) {
  FGPDB_CHECK(IsLive(row)) << "delete of dead row " << row << " in " << name_;
  const Tuple& tuple = rows_[row];
  if (schema_.primary_key().has_value()) {
    pk_index_.erase(tuple.at(*schema_.primary_key()));
  }
  for (auto& [column, index] : secondary_indexes_) {
    (void)index;
    IndexErase(column, tuple.at(column), row);
  }
  deleted_[row] = true;
  --live_rows_;
}

const Tuple& Table::Get(RowId row) const {
  FGPDB_CHECK(IsLive(row)) << "get of dead row " << row << " in " << name_;
  return rows_[row];
}

Value Table::UpdateField(RowId row, size_t column, Value value) {
  FGPDB_CHECK(IsLive(row)) << "update of dead row " << row << " in " << name_;
  FGPDB_CHECK_LT(column, schema_.arity());
  Tuple& tuple = rows_[row];
  Value old = tuple.at(column);
  if (old == value) return old;
  if (schema_.primary_key() == column) {
    pk_index_.erase(old);
    const bool inserted = pk_index_.emplace(value, row).second;
    FGPDB_CHECK(inserted) << "primary key collision updating " << name_;
  }
  if (secondary_indexes_.count(column) > 0) {
    IndexErase(column, old, row);
    IndexInsert(column, value, row);
  }
  tuple.at(column) = std::move(value);
  return old;
}

RowId Table::LookupByKey(const Value& key) const {
  const auto it = pk_index_.find(key);
  return it == pk_index_.end() ? kInvalidRowId : it->second;
}

void Table::CreateIndex(size_t column) {
  FGPDB_CHECK_LT(column, schema_.arity());
  auto& index = secondary_indexes_[column];
  index.clear();
  for (RowId row = 0; row < rows_.size(); ++row) {
    if (!deleted_[row]) index[rows_[row].at(column)].push_back(row);
  }
}

const std::vector<RowId>& Table::IndexLookup(size_t column,
                                             const Value& value) const {
  const auto index_it = secondary_indexes_.find(column);
  FGPDB_CHECK(index_it != secondary_indexes_.end())
      << "no index on column " << column << " of " << name_;
  const auto it = index_it->second.find(value);
  return it == index_it->second.end() ? kEmptyRowList : it->second;
}

void Table::Scan(const std::function<void(RowId, const Tuple&)>& fn) const {
  for (RowId row = 0; row < rows_.size(); ++row) {
    if (!deleted_[row]) fn(row, rows_[row]);
  }
}

std::vector<Tuple> Table::Rows() const {
  std::vector<Tuple> out;
  out.reserve(live_rows_);
  Scan([&](RowId, const Tuple& t) { out.push_back(t); });
  return out;
}

std::unique_ptr<Table> Table::Clone() const {
  auto copy = std::make_unique<Table>(name_, schema_);
  copy->rows_ = rows_;
  copy->deleted_ = deleted_;
  copy->live_rows_ = live_rows_;
  copy->pk_index_ = pk_index_;
  copy->secondary_indexes_ = secondary_indexes_;
  return copy;
}

void Table::IndexInsert(size_t column, const Value& value, RowId row) {
  secondary_indexes_[column][value].push_back(row);
}

void Table::IndexErase(size_t column, const Value& value, RowId row) {
  auto& index = secondary_indexes_[column];
  const auto it = index.find(value);
  FGPDB_CHECK(it != index.end());
  auto& rows = it->second;
  const auto pos = std::find(rows.begin(), rows.end(), row);
  FGPDB_CHECK(pos != rows.end());
  // Swap-and-pop: index postings are unordered.
  *pos = rows.back();
  rows.pop_back();
  if (rows.empty()) index.erase(it);
}

}  // namespace fgpdb
