// fgpdb::api::Session — the library's front door.
//
// The paper's architecture (§5) wires four pieces per query: a SQL plan, a
// proposal kernel, an MCMC sampler, and an evaluator. Session owns that
// wiring once per connection and lets N concurrent queries amortize one
// sampler:
//
//   auto session = api::Session::Open({.database = &pdb,
//                                      .proposal_factory = factory,
//                                      .evaluator = {.steps_per_sample = 1000}});
//   auto q1 = session->Register("SELECT STRING FROM TOKEN WHERE ...");
//   auto q2 = session->Register(session->Prepare("SELECT COUNT(*) ..."));
//   session->Run(500);                     // ONE chain maintains both views
//   for (auto& [t, p] : q1.Snapshot().answer.Sorted()) ...
//
// Prepare() binds and caches plans by normalized SQL text; Register()
// attaches a prepared query as a materialized view on the session's shared
// chain (the PR 3 delta drain fans out through the union of all registered
// views' table→scan subscriptions, so K queries cost one sampling pass plus
// only the subtrees their deltas touch); Run() advances the chain;
// ResultHandle::Snapshot() reads marginals, sample counts, and
// acceptance-rate progress per query mid-run.
//
// A single ExecutionPolicy replaces the previously divergent
// MaterializedQueryEvaluator / EvaluateParallel call paths (both remain as
// internals):
//
//   serial    — one shared chain, delta-maintained views (Alg. 1)
//   parallel  — num_chains COW-snapshot chains, each maintaining ALL
//               registered views; per-query answers merged as chains finish
//   naive     — one shared chain, full query per sample (Alg. 3 baseline)
//
// Thread-safety contract: a Session is externally synchronized — call it
// from one thread at a time (the parallel policy uses worker threads
// internally; the base database handed to Open() is never mutated by any
// policy, each session samples its own copy-on-write snapshot).
#ifndef FGPDB_API_SESSION_H_
#define FGPDB_API_SESSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdb/parallel_evaluator.h"
#include "pdb/probabilistic_database.h"
#include "pdb/query_evaluator.h"
#include "pdb/shared_chain.h"
#include "ra/plan.h"

namespace fgpdb {
namespace api {

struct ExecutionPolicy {
  enum class Mode { kSerial, kParallel, kNaive, kUntil };

  Mode mode = Mode::kSerial;
  /// kParallel: chain count. kUntil: the escalation ladder's FIRST rung
  /// (1 = single shared chain with batched-means errors, ≥2 = cross-chain
  /// errors with chain doubling). Threading fields apply to both.
  size_t num_chains = 4;
  /// Intra-chain sharding (requires SessionOptions::shard_plan when > 1):
  /// each logical chain is stepped by S shard-local sub-chains merged in
  /// fixed shard order — one delta stream, one set of views, bitwise-
  /// reproducible at a seed. Orthogonal to `num_chains` (replica chains):
  /// composes with every mode, including Until. The plan's own shard count
  /// is what actually runs (locality fallback may have clamped it to 1).
  size_t num_shards = 1;
  bool use_threads = true;
  size_t max_threads = 0;

  // kUntil only — run-until-error-bound (see Until()).
  /// Two-sided confidence level of the per-tuple bound.
  double confidence = 0.95;
  /// Absolute marginal-probability half-width target: stop when every
  /// tuple's marginal carries z(confidence)·SE ≤ eps.
  double eps = 0.01;
  /// Samples per chain per round between convergence checks. Constant
  /// across rounds (the cross-chain estimator needs equal-length chains);
  /// escalation doubles the chain count, not the round length.
  uint64_t samples_per_round = 32;
  /// Ladder height: how many times Run() may double the chain count after
  /// starting at num_chains (multi-chain variant only). 3 ⇒ B,2B,4B,8B.
  size_t max_escalations = 3;
  /// Samples a query must observe before it may be declared converged.
  uint64_t min_samples = 64;

  static ExecutionPolicy Serial() { return {}; }
  /// One logical chain stepped by `num_shards` shard-local chains running
  /// concurrently (the tentpole of document-sharded inference): serial-mode
  /// semantics — one world, one delta fan-out, one set of views — at
  /// near-linear step throughput in the shard count. Requires a
  /// SessionOptions::shard_plan (e.g. ie::BuildDocumentShardPlan); S = 1
  /// and every locality fallback are bitwise-identical to Serial().
  static ExecutionPolicy Sharded(size_t num_shards, size_t max_threads = 0) {
    ExecutionPolicy p;
    p.num_shards = num_shards;
    p.max_threads = max_threads;
    return p;
  }
  static ExecutionPolicy Parallel(size_t num_chains, size_t max_threads = 0) {
    ExecutionPolicy p;
    p.mode = Mode::kParallel;
    p.num_chains = num_chains;
    p.max_threads = max_threads;
    return p;
  }
  static ExecutionPolicy Naive() {
    ExecutionPolicy p;
    p.mode = Mode::kNaive;
    return p;
  }
  /// Run-until-error-bound: sample until every registered query's marginals
  /// are within ±eps at `confidence`, or the Run() budget runs out. With
  /// num_chains == 1 the session's shared chain tracks batched-means
  /// standard errors and converged views freeze (drained from the delta
  /// fan-out); with num_chains ≥ 2 rounds of COW chains feed a cross-chain
  /// estimator and the chain count doubles per escalation while the bound
  /// is unmet. All stopping decisions are functions of the sample stream
  /// alone — repeated runs at one seed are bitwise-identical.
  static ExecutionPolicy Until(double confidence, double eps,
                               size_t num_chains = 4,
                               size_t max_threads = 0) {
    ExecutionPolicy p;
    p.mode = Mode::kUntil;
    p.confidence = confidence;
    p.eps = eps;
    p.num_chains = num_chains;
    p.max_threads = max_threads;
    return p;
  }

  /// Composition: the same policy with intra-chain sharding, e.g.
  /// Parallel(4).WithShards(8) (4 replica chains, each stepped by 8 shard
  /// chains) or Until(0.95, 0.01, 1).WithShards(8) (run-until-error-bound
  /// on one sharded logical chain).
  ExecutionPolicy WithShards(size_t num_shards) const {
    ExecutionPolicy p = *this;
    p.num_shards = num_shards;
    return p;
  }
};

class PlanCache;

struct SessionOptions {
  /// The base world: tables, bindings, and (unless `model` overrides it)
  /// the factor-graph model. Borrowed; must outlive the session. Never
  /// mutated — the session samples its own copy-on-write snapshot.
  pdb::ProbabilisticDatabase* database = nullptr;

  /// Optional cross-session plan cache (api/plan_cache.h). Borrowed; must
  /// outlive the session. When set, Prepare() reads through it: the
  /// per-session map stays the L1, this cache the shared L2, and a query
  /// planned by ANY session over the same catalog shape is reused instead
  /// of re-bound. serve::Server wires one per server.
  PlanCache* plan_cache = nullptr;

  /// Optional model override; defaults to the base database's model.
  const factor::Model* model = nullptr;

  /// Produces a fresh proposal per chain (proposals hold chain-local
  /// state). Required unless `shard_plan` is set (the plan's per-shard
  /// factory then supplies every proposal). Must be callable from worker
  /// threads under the parallel policy.
  pdb::ProposalFactory proposal_factory = {};

  /// Sharded execution plan (partition + per-shard proposal factory), e.g.
  /// from ie::BuildDocumentShardPlan. When set, the session steps every
  /// logical chain through the plan's shard chains — required when
  /// policy.num_shards > 1, and used even at one shard (the single-shard
  /// plan replays the serial chain bitwise). The plan's factory closures
  /// are copied into the session, so the plan value need not outlive it.
  pdb::ShardPlan shard_plan = {};

  /// Chain schedule: thinning k, burn-in, seed, adaptive thinning.
  pdb::EvaluatorOptions evaluator = {};

  ExecutionPolicy policy = {};
};

/// A bound, immutable plan cached by the session. Shared: several
/// registrations (or sessions over the same catalog shape) may hold it.
class PreparedQuery {
 public:
  /// The cache key: whitespace-collapsed, keyword-case-normalized text.
  const std::string& normalized_sql() const { return normalized_sql_; }
  /// The text originally handed to Prepare().
  const std::string& sql() const { return sql_; }
  const ra::PlanNode& plan() const { return *plan_; }

 private:
  friend class Session;
  PreparedQuery(std::string normalized, std::string sql, ra::PlanPtr plan)
      : normalized_sql_(std::move(normalized)),
        sql_(std::move(sql)),
        plan_(std::move(plan)) {}

  std::string normalized_sql_;
  std::string sql_;
  ra::PlanPtr plan_;
};

using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// One tuple's marginal estimate with its Monte-Carlo standard error
/// (until policy; a ±z·standard_error interval is the reported bound).
struct TupleEstimate {
  Tuple tuple;
  double probability = 0.0;
  double standard_error = 0.0;
};

/// A point-in-time copy of one registered query's progress.
struct QueryProgress {
  pdb::QueryAnswer answer;
  /// Samples folded into `answer` so far (across all chains).
  uint64_t samples = 0;
  /// Current thinning interval (serial/naive; adaptive mode moves it).
  uint64_t steps_per_sample = 0;
  /// Acceptance rate of the chain(s) feeding this query.
  double acceptance_rate = 0.0;

  // --- until policy only (zero/empty under other policies) ---------------
  /// The error bound held: every tuple within ±eps at the configured
  /// confidence (serial variant: the view is frozen and drained).
  bool converged = false;
  /// z(confidence) · max-over-tuples standard error — the answer's current
  /// half-width. +inf while inestimable (too few batches/chains), 0 for an
  /// empty answer.
  double max_half_width = 0.0;
  /// Per-tuple marginal ± standard error, sorted by tuple.
  std::vector<TupleEstimate> estimates;
  /// Escalation-ladder position (multi-chain variant): rounds completed and
  /// the chain count of the most recent round.
  uint64_t rounds = 0;
  size_t chains = 0;
};

class Session;

/// Lightweight reference to a registered query. Valid while the session is
/// alive; copyable.
class ResultHandle {
 public:
  /// Stable copy of the query's progress — callable between Run() calls.
  QueryProgress Snapshot() const;

  const PreparedQueryPtr& query() const;
  size_t slot() const { return slot_; }

 private:
  friend class Session;
  ResultHandle(Session* session, size_t slot)
      : session_(session), slot_(slot) {}

  Session* session_;
  size_t slot_;
};

class Session {
 public:
  /// Opens a session over `options.database`: snapshots the base world,
  /// wires the model, and prepares the chain described by the policy.
  static std::unique_ptr<Session> Open(SessionOptions options);

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and binds `sql` against the session's catalog. Results are
  /// cached by normalized text: preparing the same query twice returns the
  /// same PreparedQuery instance.
  PreparedQueryPtr Prepare(const std::string& sql);

  /// Attaches a prepared query as a maintained view on the session's
  /// shared chain(s). Registration is cheap and allowed mid-run; a query
  /// registered after sampling started counts samples from that point.
  ResultHandle Register(const PreparedQueryPtr& prepared);
  ResultHandle Register(const std::string& sql) {
    return Register(Prepare(sql));
  }

  /// Advances the session by `samples` collected samples per registered
  /// query: one shared chain under serial/naive, `num_chains` chains each
  /// maintaining every view under parallel (merged as they finish).
  ///
  /// Under the until policy, `samples` is a BUDGET, not a target: sampling
  /// stops as soon as every registered query's marginals are within ±eps at
  /// the configured confidence, and a multi-chain round in flight finishes
  /// before the budget is re-checked (so the total may overshoot by up to
  /// one round). Escalation state persists across Run() calls.
  void Run(uint64_t samples);

  /// Scheduler entry point (the serve layer's quantum): advances the
  /// session by AT MOST `max_samples` collected samples and returns the
  /// count actually drawn this call. Resident-chain policies (serial,
  /// naive, until at one chain) advance sample by sample, so a sequence of
  /// quanta at a fixed seed is bitwise-identical to one Run() of their sum
  /// — interleaving many sessions' quanta cannot perturb any one session's
  /// chain. Multi-chain policies advance one round per call (`max_samples`
  /// per chain under parallel; `samples_per_round` — the estimator's fixed
  /// round length — under until, escalating the ladder after an unconverged
  /// round, so the return may exceed `max_samples`). Returns 0 when the
  /// until policy already holds its bound: a converged session has no work.
  uint64_t RunQuantum(uint64_t max_samples);

  /// Until policy: true once every registered query satisfied the bound.
  bool converged() const;

  size_t num_registered() const { return registered_.size(); }
  const ExecutionPolicy& policy() const { return options_.policy; }

  /// Shard chains stepping each logical chain: the shard plan's count
  /// (after any locality fallback), or 1 when the session is unsharded.
  size_t num_shards() const {
    return options_.shard_plan.has_plan() ? options_.shard_plan.num_shards
                                          : 1;
  }

  /// Prepared-statement cache size (distinct normalized texts).
  size_t prepared_cache_size() const { return prepared_cache_.size(); }

  /// Session-level union subscription map: base table → scan count across
  /// every registered view (serial/naive policies; parallel chains build
  /// their own per-chain copies).
  const std::unordered_map<std::string, size_t>& subscriptions() const;

  /// The cache key for `sql`: sql::NormalizeForCache, the one definition
  /// shared with the cross-session serve-layer plan cache. Whitespace and
  /// `--`/`/* */` comments between tokens vanish, keywords uppercase, `!=`
  /// canonicalizes to `<>`; identifiers and string literals are preserved
  /// verbatim (identifier resolution against the catalog is
  /// case-sensitive). Two texts share a cache entry exactly when they
  /// tokenize identically.
  static std::string NormalizeSql(const std::string& sql);

 private:
  friend class ResultHandle;

  explicit Session(SessionOptions options);

  struct Registered {
    PreparedQueryPtr query;
    /// Merged per-query answer (multi-chain policies; serial answers live
    /// in the shared-chain evaluator).
    pdb::QueryAnswer merged;
    /// Cross-chain error statistics (until policy, multi-chain variant).
    pdb::CrossChainStats chain_stats;
    /// The bound held as of the last completed round (monotone).
    bool converged = false;
  };

  QueryProgress SnapshotSlot(size_t slot) const;
  /// Cumulative sample count of the multi-chain result state (max across
  /// registered queries, under the results lock).
  uint64_t CurrentMultiSamples() const;
  /// One round of B COW chains folded into the session state (under the
  /// results lock); returns the per-query sample count after the fold.
  uint64_t RunParallelRound(uint64_t samples_per_chain, size_t num_chains,
                            bool track_stats);
  /// The until policy's multi-chain driver: rounds + escalation ladder.
  void RunUntilMultiChain(uint64_t max_samples);

  SessionOptions options_;
  /// The session's private copy-on-write world (serial/naive chains run on
  /// it; parallel chains snapshot the base again per Run).
  std::unique_ptr<pdb::ProbabilisticDatabase> world_;
  std::unique_ptr<infer::Proposal> proposal_;
  std::unique_ptr<pdb::SharedChainEvaluator> chain_;

  std::unordered_map<std::string, PreparedQueryPtr> prepared_cache_;
  std::vector<Registered> registered_;
  /// Union of every registered view's table→scan routes (ScannedTables
  /// counts; identical to the per-view subscription maps summed).
  std::unordered_map<std::string, size_t> subscriptions_;

  /// Parallel policy bookkeeping: Run() epochs get distinct seed salts so
  /// successive calls sample fresh, decorrelated chain batches.
  uint64_t parallel_epoch_ = 0;
  uint64_t parallel_proposed_ = 0;
  uint64_t parallel_accepted_ = 0;

  /// Guards the multi-chain result state (merged answers, chain stats,
  /// counters) so ResultHandle::Snapshot() may be called from another
  /// thread WHILE Run() executes under the parallel/until policies
  /// (round-granular consistency). Serial policies remain externally
  /// synchronized.
  mutable std::mutex results_mu_;

  // Until-policy ladder state (multi-chain variant); persists across Run().
  double until_z_ = 0.0;  // ZForConfidence(policy.confidence)
  size_t until_chains_ = 0;       // current rung (0 until first Run)
  size_t until_escalations_ = 0;  // rungs climbed so far
  uint64_t until_rounds_ = 0;     // completed rounds
};

}  // namespace api
}  // namespace fgpdb

#endif  // FGPDB_API_SESSION_H_
