#include "infer/marginal_estimator.h"

#include "util/logging.h"

namespace fgpdb {
namespace infer {

MarginalEstimator::MarginalEstimator(const std::vector<size_t>& domain_sizes) {
  counts_.reserve(domain_sizes.size());
  for (size_t s : domain_sizes) counts_.emplace_back(s, 0);
}

void MarginalEstimator::Observe(const factor::World& world) {
  FGPDB_CHECK_EQ(world.size(), counts_.size());
  for (size_t v = 0; v < counts_.size(); ++v) {
    const uint32_t value = world.Get(static_cast<factor::VarId>(v));
    FGPDB_CHECK_LT(value, counts_[v].size());
    ++counts_[v][value];
  }
  ++num_samples_;
}

void MarginalEstimator::Merge(const MarginalEstimator& other) {
  FGPDB_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t v = 0; v < counts_.size(); ++v) {
    FGPDB_CHECK_EQ(counts_[v].size(), other.counts_[v].size());
    for (size_t k = 0; k < counts_[v].size(); ++k) {
      counts_[v][k] += other.counts_[v][k];
    }
  }
  num_samples_ += other.num_samples_;
}

double MarginalEstimator::Estimate(factor::VarId var, uint32_t value) const {
  if (num_samples_ == 0) return 0.0;
  return static_cast<double>(counts_.at(var).at(value)) /
         static_cast<double>(num_samples_);
}

std::vector<double> MarginalEstimator::Marginal(factor::VarId var) const {
  std::vector<double> out(counts_.at(var).size(), 0.0);
  for (size_t k = 0; k < out.size(); ++k) {
    out[k] = Estimate(var, static_cast<uint32_t>(k));
  }
  return out;
}

double MarginalEstimator::SquaredErrorAgainst(
    const std::vector<std::vector<double>>& exact) const {
  FGPDB_CHECK_EQ(exact.size(), counts_.size());
  double total = 0.0;
  for (size_t v = 0; v < counts_.size(); ++v) {
    for (size_t k = 0; k < counts_[v].size(); ++k) {
      const double d =
          Estimate(static_cast<factor::VarId>(v), static_cast<uint32_t>(k)) -
          exact[v][k];
      total += d * d;
    }
  }
  return total;
}

}  // namespace infer
}  // namespace fgpdb
