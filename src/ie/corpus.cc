#include "ie/corpus.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"
#include "util/rng.h"

namespace fgpdb {
namespace ie {
namespace {

// --- Lexicons ---------------------------------------------------------------
// Strings appearing in more than one lexicon are deliberate: they make the
// truth genuinely ambiguous from surface form alone, which is what the
// paper's probabilistic queries are about ("Boston" Red Sox vs Boston MA).

const std::vector<std::string>& FirstNames() {
  static const auto* kNames = new std::vector<std::string>{
      "John",   "Mary",   "Robert", "Susan",  "David",  "Linda",  "Michael",
      "Karen",  "James",  "Nancy",  "Peter",  "Laura",  "Kevin",  "Sarah",
      "Manny",  "Theo",   "Eli",    "Jason",  "Carlos", "Pedro",  "Hillary",
      "Bill",   "George", "Jordan", "Tyler",  "Austin", "Madison"};
  return *kNames;
}

const std::vector<std::string>& Surnames() {
  static const auto* kNames = new std::vector<std::string>{
      "Smith",    "Johnson", "Williams", "Brown",   "Jones",   "Garcia",
      "Miller",   "Davis",   "Martinez", "Clinton", "Ramirez", "Beltran",
      "Ortiz",    "Chen",    "Kim",      "Nguyen",  "Patel",   "Washington",
      "Lincoln",  "Madison", "Jackson",  "Franklin"};
  return *kNames;
}

const std::vector<std::string>& OrgRoots() {
  static const auto* kNames = new std::vector<std::string>{
      "Acme",    "Global",   "Sterling", "Apex",    "Pinnacle", "Vertex",
      "Boston",  "Chicago",  "Houston",  "Quantum", "Atlas",    "Meridian",
      "Jackson", "Franklin", "Apple",    "Delta",   "Titan",    "Nova"};
  return *kNames;
}

const std::vector<std::string>& OrgSuffixes() {
  static const auto* kNames = new std::vector<std::string>{
      "Corp", "Inc", "Systems", "Group", "Bank", "Partners", "Labs",
      "Media", "Holdings"};
  return *kNames;
}

const std::vector<std::string>& Locations() {
  static const auto* kNames = new std::vector<std::string>{
      "Boston",     "Chicago",  "Houston",    "Springfield", "Denver",
      "Seattle",    "Portland", "Austin",     "Madison",     "Jackson",
      "Washington", "Dover",    "Manchester", "Cambridge",   "Oxford",
      "Kunming",    "Osaka",    "Nairobi",    "Lima",        "Quito"};
  return *kNames;
}

const std::vector<std::string>& MiscNames() {
  static const auto* kNames = new std::vector<std::string>{
      "Olympics", "Grammys",  "Oscars",  "French",  "German",  "Spanish",
      "Italian",  "Japanese", "Marathon", "Derby",  "Classic", "Mundial"};
  return *kNames;
}

const std::vector<std::string>& BackgroundWords() {
  static const auto* kWords = new std::vector<std::string>{
      "the",     "a",      "an",      "of",      "and",     "to",      "in",
      "that",    "said",   "for",     "on",      "with",    "as",
      "was",     "at",     "by",      "from",    "has",     "its",
      "but",     "this",   "have",    "or",      "had",     "not",
      "are",     "his",    "her",     "they",    "been",    "will",
      "would",   "about",  "there",   "spokesman", "company", "officials",
      "yesterday", "report", "market", "season",  "game",    "team",
      "city",    "week",   "million", "percent", "shares",  "announced",
      "according", "statement", "quarter", "analysts", "coach", "players"};
  return *kWords;
}

// --- Per-document entity pools ----------------------------------------------

struct Mention {
  std::vector<std::string> tokens;
  EntityType type = EntityType::kNone;
};

struct DocPool {
  std::vector<Mention> mentions;  // Sampled with repetition during the doc.
};

// Open-ended synthetic name space: 2-3 syllables, capitalized. ~15^3
// combinations, so a sampled name rarely recurs outside its own document —
// the Zipf tail of the entity distribution.
std::string MakeRareName(Rng& rng) {
  static const char* kSyllables[] = {"ka",  "ren", "mo",  "ta", "li",
                                     "sor", "ben", "du",  "ven", "pra",
                                     "nel", "ti",  "gar", "os",  "mir"};
  const size_t n = sizeof(kSyllables) / sizeof(kSyllables[0]);
  std::string name;
  const size_t parts = 2 + rng.UniformInt(2u);
  for (size_t i = 0; i < parts; ++i) name += kSyllables[rng.UniformInt(n)];
  name[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
  return name;
}

Mention MakePerson(Rng& rng, double rare_fraction) {
  Mention m;
  m.type = EntityType::kPer;
  if (rng.Bernoulli(rare_fraction)) {
    m.tokens.push_back(MakeRareName(rng));
    if (rng.Bernoulli(0.4)) {
      m.tokens.push_back(Surnames()[rng.UniformInt(Surnames().size())]);
    }
    return m;
  }
  m.tokens.push_back(FirstNames()[rng.UniformInt(FirstNames().size())]);
  if (rng.Bernoulli(0.6)) {
    m.tokens.push_back(Surnames()[rng.UniformInt(Surnames().size())]);
  }
  return m;
}

Mention MakeOrg(Rng& rng, double rare_fraction) {
  Mention m;
  m.type = EntityType::kOrg;
  if (rng.Bernoulli(rare_fraction)) {
    m.tokens.push_back(MakeRareName(rng));
  } else {
    m.tokens.push_back(OrgRoots()[rng.UniformInt(OrgRoots().size())]);
  }
  if (rng.Bernoulli(0.7)) {
    m.tokens.push_back(OrgSuffixes()[rng.UniformInt(OrgSuffixes().size())]);
  }
  return m;
}

Mention MakeLoc(Rng& rng, double rare_fraction) {
  Mention m;
  m.type = EntityType::kLoc;
  if (rng.Bernoulli(rare_fraction)) {
    m.tokens.push_back(MakeRareName(rng));
  } else {
    m.tokens.push_back(Locations()[rng.UniformInt(Locations().size())]);
  }
  return m;
}

Mention MakeMisc(Rng& rng) {
  Mention m;
  m.type = EntityType::kMisc;
  m.tokens.push_back(MiscNames()[rng.UniformInt(MiscNames().size())]);
  return m;
}

DocPool MakeDocPool(Rng& rng, double rare_fraction) {
  DocPool pool;
  const size_t n_per = 2 + rng.UniformInt(3);   // 2-4 people
  const size_t n_org = 1 + rng.UniformInt(3);   // 1-3 orgs
  const size_t n_loc = 1 + rng.UniformInt(2);   // 1-2 locations
  const size_t n_misc = rng.UniformInt(2);      // 0-1 misc
  for (size_t i = 0; i < n_per; ++i) {
    pool.mentions.push_back(MakePerson(rng, rare_fraction));
  }
  for (size_t i = 0; i < n_org; ++i) {
    pool.mentions.push_back(MakeOrg(rng, rare_fraction));
  }
  for (size_t i = 0; i < n_loc; ++i) {
    pool.mentions.push_back(MakeLoc(rng, rare_fraction));
  }
  for (size_t i = 0; i < n_misc; ++i) pool.mentions.push_back(MakeMisc(rng));
  return pool;
}

}  // namespace

SyntheticCorpus GenerateCorpus(const CorpusOptions& options) {
  FGPDB_CHECK_GT(options.num_tokens, 0u);
  FGPDB_CHECK_GT(options.tokens_per_doc, 10u);
  Rng rng(options.seed);
  SyntheticCorpus corpus;
  corpus.tokens.reserve(options.num_tokens + options.tokens_per_doc);

  int64_t doc_id = 0;
  while (corpus.tokens.size() < options.num_tokens) {
    const size_t doc_begin = corpus.tokens.size();
    // Document length varies ±50% around the mean.
    const size_t doc_len = options.tokens_per_doc / 2 +
                           rng.UniformInt(options.tokens_per_doc);
    const DocPool pool = MakeDocPool(rng, options.rare_entity_fraction);
    auto emit = [&](std::string text, uint32_t label) {
      TokenRecord record;
      record.tok_id = static_cast<int64_t>(corpus.tokens.size());
      record.doc_id = doc_id;
      record.text = std::move(text);
      record.truth_label = label;
      corpus.tokens.push_back(std::move(record));
    };
    while (corpus.tokens.size() - doc_begin < doc_len) {
      if (rng.Bernoulli(options.entity_density)) {
        // Emit a mention from the document's pool (repetition on purpose —
        // this is what gives skip edges their correlations).
        const Mention& m = pool.mentions[rng.UniformInt(pool.mentions.size())];
        for (size_t i = 0; i < m.tokens.size(); ++i) {
          emit(m.tokens[i],
               i == 0 ? BeginLabel(m.type) : InsideLabel(m.type));
        }
      } else {
        emit(BackgroundWords()[rng.UniformInt(BackgroundWords().size())],
             kLabelO);
      }
    }
    corpus.doc_ranges.emplace_back(doc_begin, corpus.tokens.size());
    ++doc_id;
  }
  corpus.num_docs = static_cast<size_t>(doc_id);
  return corpus;
}

}  // namespace ie
}  // namespace fgpdb
