#include "infer/diagnostics.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace fgpdb {
namespace infer {

double Autocorrelation(const std::vector<double>& series, size_t lag) {
  const size_t n = series.size();
  if (lag >= n) return 0.0;
  const double mu = Mean(series);
  double var = 0.0;
  for (double x : series) var += (x - mu) * (x - mu);
  if (var <= 0.0) return 0.0;
  double cov = 0.0;
  for (size_t i = 0; i + lag < n; ++i) {
    cov += (series[i] - mu) * (series[i + lag] - mu);
  }
  return cov / var;
}

double EffectiveSampleSize(const std::vector<double>& series) {
  const size_t n = series.size();
  if (n == 0) return 0.0;
  if (n == 1) return 1.0;
  // Initial positive sequence (Geyer): sum consecutive-lag pairs while the
  // pair sums stay positive.
  double rho_sum = 0.0;
  for (size_t lag = 1; lag + 1 < n; lag += 2) {
    const double pair =
        Autocorrelation(series, lag) + Autocorrelation(series, lag + 1);
    if (pair <= 0.0) break;
    rho_sum += pair;
  }
  const double ess = static_cast<double>(n) / (1.0 + 2.0 * rho_sum);
  return std::max(1.0, std::min(ess, static_cast<double>(n)));
}

double GelmanRubin(const std::vector<std::vector<double>>& chains) {
  const size_t m = chains.size();
  FGPDB_CHECK_GE(m, 2u) << "Gelman-Rubin needs at least two chains";
  const size_t n = chains[0].size();
  FGPDB_CHECK_GE(n, 4u) << "chains too short for Gelman-Rubin";
  for (const auto& chain : chains) FGPDB_CHECK_EQ(chain.size(), n);

  std::vector<double> chain_means(m);
  double grand_mean = 0.0;
  for (size_t c = 0; c < m; ++c) {
    chain_means[c] = Mean(chains[c]);
    grand_mean += chain_means[c];
  }
  grand_mean /= static_cast<double>(m);

  // Between-chain variance B/n and within-chain variance W.
  double b_over_n = 0.0;
  for (size_t c = 0; c < m; ++c) {
    b_over_n += (chain_means[c] - grand_mean) * (chain_means[c] - grand_mean);
  }
  b_over_n /= static_cast<double>(m - 1);

  double w = 0.0;
  for (size_t c = 0; c < m; ++c) {
    double s2 = 0.0;
    for (double x : chains[c]) {
      s2 += (x - chain_means[c]) * (x - chain_means[c]);
    }
    w += s2 / static_cast<double>(n - 1);
  }
  w /= static_cast<double>(m);
  if (w <= 0.0) return 1.0;  // Degenerate chains: identical constants.

  const double var_plus =
      (static_cast<double>(n - 1) / static_cast<double>(n)) * w + b_over_n;
  return std::sqrt(var_plus / w);
}

}  // namespace infer
}  // namespace fgpdb
