#include "infer/convergence.h"

#include <cmath>

#include "util/logging.h"

namespace fgpdb {
namespace infer {

namespace {

// Acklam's rational approximation of the standard normal quantile
// (inverse CDF), |relative error| < 1.15e-9 over (0, 1) — far below any
// tolerance a sampling-based bound could care about.
double NormalQuantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double ZForConfidence(double confidence) {
  FGPDB_CHECK(confidence > 0.0 && confidence < 1.0)
      << "confidence must be in (0, 1), got " << confidence;
  return NormalQuantile(0.5 + confidence / 2.0);
}

double WelfordAccumulator::StandardError() const {
  if (count_ < 2) return std::numeric_limits<double>::infinity();
  return std::sqrt(variance() / static_cast<double>(count_));
}

void BatchedMeansAccumulator::FlushBatch() {
  if (num_batches_ == kMaxBatches) {
    // Collapse adjacent pairs: 64 batches of size b become 32 of size 2b.
    // The batch in flight is NOT closed — under the doubled size it is now
    // half-full and keeps filling.
    for (size_t i = 0; i < kMaxBatches / 2; ++i) {
      batch_sums_[i] = batch_sums_[2 * i] + batch_sums_[2 * i + 1];
    }
    num_batches_ = kMaxBatches / 2;
    batch_size_ *= 2;
    return;
  }
  batch_sums_[num_batches_++] = current_sum_;
  current_sum_ = 0.0;
  current_fill_ = 0;
}

void BatchedMeansAccumulator::Add(double x) {
  current_sum_ += x;
  total_sum_ += x;
  ++count_;
  if (++current_fill_ == batch_size_) FlushBatch();
}

void BatchedMeansAccumulator::AddZeros(uint64_t n) {
  count_ += n;
  // Finish the batch in flight, then emit whole zero batches. After a
  // collapse the loop re-reads the doubled batch size, so the half-full
  // survivor simply keeps filling.
  while (n > 0) {
    const uint64_t room = batch_size_ - current_fill_;
    const uint64_t take = n < room ? n : room;
    current_fill_ += take;
    n -= take;
    if (current_fill_ == batch_size_) FlushBatch();
  }
}

double BatchedMeansAccumulator::StandardError() const {
  if (num_batches_ < kMinBatchesForEstimate) {
    return std::numeric_limits<double>::infinity();
  }
  const double b = static_cast<double>(batch_size_);
  const double k = static_cast<double>(num_batches_);
  double mean_of_means = 0.0;
  for (size_t i = 0; i < num_batches_; ++i) {
    mean_of_means += batch_sums_[i] / b;
  }
  mean_of_means /= k;
  double ss = 0.0;
  for (size_t i = 0; i < num_batches_; ++i) {
    const double d = batch_sums_[i] / b - mean_of_means;
    ss += d * d;
  }
  const double var_batch_means = ss / (k - 1.0);
  return std::sqrt(var_batch_means / k);
}

}  // namespace infer
}  // namespace fgpdb
