// SampleRank (Wick et al., 2009; paper §5.2): online parameter learning
// from atomic MCMC gradients.
//
// For every proposed jump w -> w', SampleRank compares the model's ranking
// of the pair (θ·Δφ) with the objective's ranking (accuracy delta). On
// disagreement it takes a perceptron step on the *local* feature delta —
// which is why it "learns all parameters in a matter of minutes" (§5.2):
// each update touches only the features of the factors the jump changed.
#ifndef FGPDB_LEARN_SAMPLERANK_H_
#define FGPDB_LEARN_SAMPLERANK_H_

#include <cstdint>
#include <memory>

#include "factor/model.h"
#include "infer/proposal.h"
#include "learn/objective.h"
#include "util/rng.h"

namespace fgpdb {
namespace learn {

struct SampleRankOptions {
  double learning_rate = 1.0;
  uint64_t seed = 7;
  /// How the training walk moves after each update:
  /// follow the objective (stay near truth) or follow the model (MH).
  enum class WalkPolicy { kFollowObjective, kFollowModel };
  WalkPolicy walk_policy = WalkPolicy::kFollowObjective;
};

struct SampleRankStats {
  uint64_t proposals = 0;
  uint64_t updates = 0;      // Perceptron steps taken (rank disagreements).
  uint64_t accepted = 0;     // Walk transitions taken.
};

class SampleRank {
 public:
  SampleRank(factor::FeatureModel* model, infer::Proposal* proposal,
             const Objective* objective, SampleRankOptions options = {});

  /// Runs `steps` proposals of training from the given world (mutated).
  SampleRankStats Train(factor::World* world, uint64_t steps);

  Rng& rng() { return rng_; }

 private:
  factor::FeatureModel* model_;
  infer::Proposal* proposal_;
  const Objective* objective_;
  SampleRankOptions options_;
  Rng rng_;
  /// The trainer's own scoring scratch (model->MakeScratch()), reused for
  /// every FeatureDelta so the training loop stops allocating per proposal.
  std::unique_ptr<factor::ScoreScratch> score_scratch_;
};

}  // namespace learn
}  // namespace fgpdb

#endif  // FGPDB_LEARN_SAMPLERANK_H_
