// Parallel multi-chain evaluation tests (paper §5.4).
#include <gtest/gtest.h>

#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/parallel_evaluator.h"
#include "sql/binder.h"

namespace fgpdb {
namespace pdb {
namespace {

struct ParallelFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  ParallelFixture() {
    const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = 500, .tokens_per_doc = 60, .seed = 31});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  ProposalFactory MakeFactory() {
    return [this](ProbabilisticDatabase&) {
      return std::make_unique<ie::DocumentBatchProposal>(
          &tokens.docs, ie::NerProposalOptions{.proposals_per_batch = 300});
    };
  }
};

TEST(ParallelEvaluatorTest, MergedSampleCountIsSumOfChains) {
  ParallelFixture fixture;
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, fixture.tokens.pdb->db());
  ParallelOptions options;
  options.num_chains = 3;
  options.samples_per_chain = 10;
  options.chain_options = {.steps_per_sample = 200, .burn_in = 500, .seed = 1};
  const QueryAnswer answer = EvaluateParallel(*fixture.tokens.pdb, *plan,
                                              fixture.MakeFactory(), options);
  EXPECT_EQ(answer.num_samples(), 30u);
}

TEST(ParallelEvaluatorTest, ThreadedAndSequentialAgree) {
  // Chains are seeded deterministically per-index, so running them on
  // threads or sequentially must give identical merged answers.
  ParallelFixture fixture;
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, fixture.tokens.pdb->db());
  ParallelOptions options;
  options.num_chains = 4;
  options.samples_per_chain = 8;
  options.chain_options = {.steps_per_sample = 150, .burn_in = 300, .seed = 2};
  options.use_threads = true;
  const QueryAnswer threaded = EvaluateParallel(*fixture.tokens.pdb, *plan,
                                                fixture.MakeFactory(), options);
  options.use_threads = false;
  const QueryAnswer sequential = EvaluateParallel(
      *fixture.tokens.pdb, *plan, fixture.MakeFactory(), options);
  EXPECT_EQ(threaded.SquaredError(sequential), 0.0);
}

TEST(ParallelEvaluatorTest, ChainsBeyondCoreCountQueueOnThePool) {
  // 16 chains on a hardware-sized pool (often far fewer workers): excess
  // chains queue, every chain still runs exactly once, and the streaming
  // merge must equal the sequential merge bitwise (integer counts).
  ParallelFixture fixture;
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, fixture.tokens.pdb->db());
  ParallelOptions options;
  options.num_chains = 16;
  options.samples_per_chain = 4;
  options.chain_options = {.steps_per_sample = 100, .burn_in = 100, .seed = 7};
  options.use_threads = true;
  const QueryAnswer threaded = EvaluateParallel(*fixture.tokens.pdb, *plan,
                                                fixture.MakeFactory(), options);
  EXPECT_EQ(threaded.num_samples(), 64u);
  options.use_threads = false;
  const QueryAnswer sequential = EvaluateParallel(
      *fixture.tokens.pdb, *plan, fixture.MakeFactory(), options);
  EXPECT_EQ(threaded.SquaredError(sequential), 0.0);
  EXPECT_EQ(threaded.Sorted(), sequential.Sorted());
}

TEST(ParallelEvaluatorTest, ExplicitThreadCapIsHonoredAndStable) {
  // max_threads = 2 with 6 chains: results must match the unlimited and
  // sequential runs — scheduling must never leak into answers.
  ParallelFixture fixture;
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, fixture.tokens.pdb->db());
  ParallelOptions options;
  options.num_chains = 6;
  options.samples_per_chain = 5;
  options.chain_options = {.steps_per_sample = 120, .burn_in = 120, .seed = 11};
  options.use_threads = true;
  options.max_threads = 2;
  const QueryAnswer capped = EvaluateParallel(*fixture.tokens.pdb, *plan,
                                              fixture.MakeFactory(), options);
  options.use_threads = false;
  const QueryAnswer sequential = EvaluateParallel(
      *fixture.tokens.pdb, *plan, fixture.MakeFactory(), options);
  EXPECT_EQ(capped.num_samples(), 30u);
  EXPECT_EQ(capped.SquaredError(sequential), 0.0);
}

TEST(ParallelEvaluatorTest, BaseWorldIsUntouchedByChains) {
  // Chains run on copy-on-write snapshots; the base database must come back
  // bit-identical (the §5.4 contract that lets one base serve many chains).
  ParallelFixture fixture;
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, fixture.tokens.pdb->db());
  const std::vector<Tuple> before =
      fixture.tokens.pdb->db().RequireTable(ie::kTokenTable)->Rows();
  ParallelOptions options;
  options.num_chains = 4;
  options.samples_per_chain = 5;
  options.chain_options = {.steps_per_sample = 100, .burn_in = 100, .seed = 5};
  EvaluateParallel(*fixture.tokens.pdb, *plan, fixture.MakeFactory(), options);
  const std::vector<Tuple> after =
      fixture.tokens.pdb->db().RequireTable(ie::kTokenTable)->Rows();
  EXPECT_EQ(before, after);
}

TEST(ParallelEvaluatorTest, MoreChainsReduceError) {
  // The Fig. 5 effect: with a fixed per-chain budget, more chains give
  // lower squared error against a long-run reference.
  ParallelFixture fixture;
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, fixture.tokens.pdb->db());

  // Reference: one long materialized run.
  ParallelOptions ref_options;
  ref_options.num_chains = 4;
  ref_options.samples_per_chain = 400;
  ref_options.chain_options = {.steps_per_sample = 200, .burn_in = 2000,
                               .seed = 777};
  ref_options.use_threads = false;
  const QueryAnswer reference = EvaluateParallel(
      *fixture.tokens.pdb, *plan, fixture.MakeFactory(), ref_options);

  auto error_with_chains = [&](size_t chains, uint64_t seed) {
    ParallelOptions options;
    options.num_chains = chains;
    options.samples_per_chain = 12;
    options.chain_options = {.steps_per_sample = 200, .burn_in = 200,
                             .seed = seed};
    options.use_threads = false;
    const QueryAnswer answer = EvaluateParallel(
        *fixture.tokens.pdb, *plan, fixture.MakeFactory(), options);
    return answer.SquaredError(reference);
  };

  // Average over a few seeds to damp noise.
  double err1 = 0.0, err8 = 0.0;
  for (uint64_t s = 0; s < 3; ++s) {
    err1 += error_with_chains(1, 100 + s);
    err8 += error_with_chains(8, 200 + s);
  }
  EXPECT_LT(err8, err1);
}

TEST(ParallelEvaluatorTest, NaivePathProducesSameAnswersAsMaterialized) {
  ParallelFixture fixture;
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery2, fixture.tokens.pdb->db());
  ParallelOptions options;
  options.num_chains = 2;
  options.samples_per_chain = 6;
  options.chain_options = {.steps_per_sample = 100, .burn_in = 100, .seed = 3};
  options.use_threads = false;
  options.materialized = true;
  const QueryAnswer mat = EvaluateParallel(*fixture.tokens.pdb, *plan,
                                           fixture.MakeFactory(), options);
  options.materialized = false;
  const QueryAnswer naive = EvaluateParallel(*fixture.tokens.pdb, *plan,
                                             fixture.MakeFactory(), options);
  EXPECT_EQ(mat.SquaredError(naive), 0.0);
}

}  // namespace
}  // namespace pdb
}  // namespace fgpdb
