#include "api/plan_cache.h"

#include <utility>

#include "util/logging.h"

namespace fgpdb {
namespace api {

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  FGPDB_CHECK_GT(capacity, 0u) << "PlanCache capacity must be positive";
}

PreparedQueryPtr PlanCache::Lookup(const std::string& normalized_sql) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(normalized_sql);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.prepared;
}

void PlanCache::Insert(const std::string& normalized_sql,
                       PreparedQueryPtr prepared) {
  FGPDB_CHECK(prepared != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(normalized_sql);
  if (it != entries_.end()) {
    // Concurrent preparers can race to insert the same text; keep the
    // first plan (all are equivalent) and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (entries_.size() >= capacity_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(normalized_sql);
  entries_.emplace(normalized_sql,
                   Entry{std::move(prepared), lru_.begin()});
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = entries_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace api
}  // namespace fgpdb
