#include "view/incremental.h"

#include <map>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace fgpdb {
namespace view {

uint64_t ViewRuntime::RegisterTable(const std::string& table) {
  const auto it = table_masks.find(table);
  if (it != table_masks.end()) return it->second;
  // Tables beyond 63 share the top bit: routing over-approximates ("maybe
  // touched") instead of widening the mask — never misses a delta.
  const size_t id = table_masks.size();
  const uint64_t mask = uint64_t{1} << (id < 64 ? id : 63);
  table_masks.emplace(table, mask);
  return mask;
}

uint64_t ViewRuntime::SubscribeScan(const std::string& table) {
  const uint64_t mask = RegisterTable(table);
  ++subscriptions[table];
  return mask;
}

uint64_t ViewRuntime::MaskOf(const std::string& table) const {
  const auto it = table_masks.find(table);
  return it == table_masks.end() ? 0 : it->second;
}

const DeltaMultiset* IncrementalOperator::ApplyDelta(const DeltaSet& deltas) {
  if ((reads_mask_ & runtime_->touched_mask) == 0) {
    // No table this subtree reads was touched this round: its input delta
    // is empty, so its output delta is empty and its state cannot change.
    runtime_->stats.operators_skipped += subtree_size_;
    return &DeltaMultiset::Empty();
  }
  ++runtime_->stats.operators_visited;
  return ApplyDeltaImpl(deltas);
}

namespace {

using ra::AggregateSpec;

// ---------------------------------------------------------------------------
// Scan: deltas for the base table pass straight through — by pointer, not by
// copy: the parent reads the DeltaSet's own multiset.
// ---------------------------------------------------------------------------
class IncScan final : public IncrementalOperator {
 public:
  IncScan(ViewRuntime* runtime, std::string table)
      : IncrementalOperator(runtime), table_(std::move(table)) {
    reads_mask_ = runtime_->SubscribeScan(table_);
  }

  DeltaMultiset Initialize(const Database& db) override {
    DeltaMultiset out;
    db.RequireTable(table_)->Scan(
        [&](RowId, const Tuple& t) { out.Add(t, 1); });
    return out;
  }

 protected:
  const DeltaMultiset* ApplyDeltaImpl(const DeltaSet& deltas) override {
    return &deltas.Get(table_);
  }

 private:
  std::string table_;
};

// ---------------------------------------------------------------------------
// Select: σ distributes over deltas — σ(w') = σ(w) − σ(Δ−) ∪ σ(Δ+).
// ---------------------------------------------------------------------------
class IncSelect final : public IncrementalOperator {
 public:
  IncSelect(ViewRuntime* runtime, IncrementalOperatorPtr child,
            ra::ExprPtr predicate)
      : IncrementalOperator(runtime),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {
    AbsorbChild(*child_);
  }

  DeltaMultiset Initialize(const Database& db) override {
    DeltaMultiset out;
    Filter(child_->Initialize(db), &out);
    return out;
  }

 protected:
  const DeltaMultiset* ApplyDeltaImpl(const DeltaSet& deltas) override {
    const DeltaMultiset* in = child_->ApplyDelta(deltas);
    out_.Clear();
    Filter(*in, &out_);
    return &out_;
  }

 private:
  void Filter(const DeltaMultiset& in, DeltaMultiset* out) const {
    in.ForEach([&](const Tuple& t, int64_t c) {
      if (predicate_->EvalBool(t)) out->Add(t, c);
    });
  }

  IncrementalOperatorPtr child_;
  ra::ExprPtr predicate_;
  DeltaMultiset out_;
};

// ---------------------------------------------------------------------------
// Project: π over signed multisets implements the paper's Remark — counters
// track how many input tuples map to each output tuple, so set-difference /
// union under projection stay correct.
// ---------------------------------------------------------------------------
class IncProject final : public IncrementalOperator {
 public:
  IncProject(ViewRuntime* runtime, IncrementalOperatorPtr child,
             std::vector<ra::ExprPtr> outputs)
      : IncrementalOperator(runtime),
        child_(std::move(child)),
        outputs_(std::move(outputs)) {
    AbsorbChild(*child_);
  }

  DeltaMultiset Initialize(const Database& db) override {
    DeltaMultiset out;
    Map(child_->Initialize(db), &out);
    return out;
  }

 protected:
  const DeltaMultiset* ApplyDeltaImpl(const DeltaSet& deltas) override {
    const DeltaMultiset* in = child_->ApplyDelta(deltas);
    out_.Clear();
    Map(*in, &out_);
    return &out_;
  }

 private:
  void Map(const DeltaMultiset& in, DeltaMultiset* out) const {
    in.ForEach([&](const Tuple& t, int64_t c) {
      std::vector<Value> values;
      values.reserve(outputs_.size());
      for (const auto& e : outputs_) values.push_back(e->Eval(t));
      out->Add(Tuple(std::move(values)), c);
    });
  }

  IncrementalOperatorPtr child_;
  std::vector<ra::ExprPtr> outputs_;
  DeltaMultiset out_;
};

// Signed counts keyed by interned tuple pointer. Join-key buckets are
// usually tiny (a handful of rows share a key), so entries live in an
// inline vector scanned by pointer equality — no hashing, no node
// allocations — spilling to a hash map only for hot keys.
class PtrBag {
 public:
  static constexpr size_t kInlineCapacity = 8;

  void Add(const Tuple* tuple, int64_t count) {
    if (!spilled_) {
      for (auto& entry : inline_) {
        if (entry.first == tuple) {
          entry.second += count;
          if (entry.second == 0) {
            entry = inline_.back();
            inline_.pop_back();
          }
          return;
        }
      }
      if (inline_.size() < kInlineCapacity) {
        inline_.emplace_back(tuple, count);
        return;
      }
      counts_.reserve(4 * kInlineCapacity);
      for (const auto& entry : inline_) {
        counts_.emplace(entry.first, entry.second);
      }
      inline_.clear();
      spilled_ = true;
    }
    const auto [it, inserted] = counts_.emplace(tuple, count);
    if (!inserted) {
      it->second += count;
      if (it->second == 0) counts_.erase(it);
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (!spilled_) {
      for (const auto& [tuple, count] : inline_) fn(tuple, count);
      return;
    }
    for (const auto& [tuple, count] : counts_) fn(tuple, count);
  }

 private:
  std::vector<std::pair<const Tuple*, int64_t>> inline_;
  std::unordered_map<const Tuple*, int64_t> counts_;
  bool spilled_ = false;
};

// ---------------------------------------------------------------------------
// Join: ⋈ is bilinear, so (L+ΔL)⋈(R+ΔR) = L⋈R + ΔL⋈R_old + (L+ΔL)⋈ΔR.
// Folding ΔL into the materialized left state *before* probing with ΔR
// makes the second term cover both L_old⋈ΔR and the ΔL⋈ΔR cross term, so
// every delta term is hash-grouped probing — there is no nested loop over
// ΔL×ΔR. State buckets hold pointers into the view's TupleArena, so a tuple
// materialized by both sides of a self-join is stored once. Empty key lists
// degrade to a Cartesian product (single bucket).
//
// The join condition is a list of key alternatives (plain equi-joins are a
// single alternative): each side keeps one keyed state per alternative, and
// a probe tuple matches the union of its per-alternative buckets. A state
// tuple reachable through several alternatives pairs with the probe once —
// matches are deduped by interned pointer, which is exact because every
// alternative's bucket holds the same (pointer, count) entry for it.
// ---------------------------------------------------------------------------
class IncJoin final : public IncrementalOperator {
 public:
  IncJoin(ViewRuntime* runtime, IncrementalOperatorPtr left,
          IncrementalOperatorPtr right,
          std::vector<ra::JoinKeyAlternative> alternatives,
          ra::ExprPtr residual)
      : IncrementalOperator(runtime),
        left_(std::move(left)),
        right_(std::move(right)),
        alternatives_(std::move(alternatives)),
        residual_(std::move(residual)) {
    FGPDB_CHECK(!alternatives_.empty());
    left_states_.resize(alternatives_.size());
    right_states_.resize(alternatives_.size());
    AbsorbChild(*left_);
    AbsorbChild(*right_);
  }

  DeltaMultiset Initialize(const Database& db) override {
    for (auto& state : left_states_) state.clear();
    for (auto& state : right_states_) state.clear();
    const DeltaMultiset l = left_->Initialize(db);
    const DeltaMultiset r = right_->Initialize(db);
    Fold(r, /*fold_left=*/false);
    DeltaMultiset out;
    JoinAgainst(l, /*probe_left=*/true, &out);
    Fold(l, /*fold_left=*/true);
    return out;
  }

 protected:
  const DeltaMultiset* ApplyDeltaImpl(const DeltaSet& deltas) override {
    out_.Clear();
    // ΔL ⋈ R_old, then fold ΔL so the ΔR probe below sees L_new = L + ΔL.
    const DeltaMultiset* dl = left_->ApplyDelta(deltas);
    if (!dl->empty()) {
      JoinAgainst(*dl, /*probe_left=*/true, &out_);
      Fold(*dl, /*fold_left=*/true);
    }
    // ΔR ⋈ L_new — absorbs the ΔL⋈ΔR cross term into the hash probes.
    const DeltaMultiset* dr = right_->ApplyDelta(deltas);
    if (!dr->empty()) {
      JoinAgainst(*dr, /*probe_left=*/false, &out_);
      Fold(*dr, /*fold_left=*/false);
    }
    return &out_;
  }

 private:
  // key tuple -> bucket of matching interned tuples.
  using KeyedState = std::unordered_map<Tuple, PtrBag, TupleHasher>;

  void Fold(const DeltaMultiset& delta, bool fold_left) {
    auto& states = fold_left ? left_states_ : right_states_;
    delta.ForEach([&](const Tuple& t, int64_t c) {
      const Tuple* interned = runtime_->arena.Intern(t);
      for (size_t a = 0; a < alternatives_.size(); ++a) {
        const auto& keys = fold_left ? alternatives_[a].left_keys
                                     : alternatives_[a].right_keys;
        t.ProjectInto(keys, &key_scratch_);
        // Leaves empty buckets in place; they are rare and harmless.
        states[a][key_scratch_].Add(interned, c);
      }
    });
  }

  void Emit(const Tuple& l, const Tuple& r, int64_t count,
            DeltaMultiset* out) const {
    Tuple joined = Tuple::Concat(l, r);
    if (residual_ == nullptr || residual_->EvalBool(joined)) {
      out->Add(joined, count);
    }
  }

  /// Emits probe tuple × state tuple in left-right order.
  void EmitOriented(const Tuple& pt, const Tuple& st, int64_t count,
                    bool probe_left, DeltaMultiset* out) const {
    if (probe_left) {
      Emit(pt, st, count, out);
    } else {
      Emit(st, pt, count, out);
    }
  }

  /// Joins `probe` against the opposite side's materialized state.
  void JoinAgainst(const DeltaMultiset& probe, bool probe_left,
                   DeltaMultiset* out) {
    const auto& states = probe_left ? right_states_ : left_states_;
    if (alternatives_.size() == 1) {
      // Single alternative (every plain equi-/cross join): one state
      // lookup per probe tuple, no cross-alternative dedup.
      const auto& keys = probe_left ? alternatives_[0].left_keys
                                    : alternatives_[0].right_keys;
      probe.ForEach([&](const Tuple& pt, int64_t pc) {
        pt.ProjectInto(keys, &key_scratch_);
        const auto it = states[0].find(key_scratch_);
        if (it == states[0].end()) return;
        it->second.ForEach([&](const Tuple* st, int64_t sc) {
          EmitOriented(pt, *st, pc * sc, probe_left, out);
        });
      });
      return;
    }
    probe.ForEach([&](const Tuple& pt, int64_t pc) {
      matches_.clear();
      for (size_t a = 0; a < alternatives_.size(); ++a) {
        pt.ProjectInto(probe_left ? alternatives_[a].left_keys
                                  : alternatives_[a].right_keys,
                       &key_scratch_);
        const auto it = states[a].find(key_scratch_);
        if (it == states[a].end()) continue;
        it->second.ForEach([&](const Tuple* st, int64_t sc) {
          for (const auto& [seen, count] : matches_) {
            (void)count;
            if (seen == st) return;
          }
          matches_.emplace_back(st, sc);
        });
      }
      for (const auto& [st, sc] : matches_) {
        EmitOriented(pt, *st, pc * sc, probe_left, out);
      }
    });
  }

  IncrementalOperatorPtr left_;
  IncrementalOperatorPtr right_;
  std::vector<ra::JoinKeyAlternative> alternatives_;
  ra::ExprPtr residual_;
  std::vector<KeyedState> left_states_;
  std::vector<KeyedState> right_states_;
  DeltaMultiset out_;
  // Reused key-projection and match scratch (a view is single-threaded).
  Tuple key_scratch_;
  std::vector<std::pair<const Tuple*, int64_t>> matches_;
};

// ---------------------------------------------------------------------------
// Aggregate: per-group running states folded with signed deltas. COUNT /
// COUNT_IF / SUM / AVG reverse exactly under deletion; MIN/MAX keep an
// ordered value multiset so deleted extrema can be recovered. Group keys are
// interned: the groups map and the per-round snapshot maps hash pointers.
// ---------------------------------------------------------------------------
class IncAggregate final : public IncrementalOperator {
 public:
  IncAggregate(ViewRuntime* runtime, IncrementalOperatorPtr child,
               std::vector<size_t> group_by,
               std::vector<AggregateSpec> aggregates)
      : IncrementalOperator(runtime),
        child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {
    AbsorbChild(*child_);
  }

  DeltaMultiset Initialize(const Database& db) override {
    groups_.clear();
    const DeltaMultiset in = child_->Initialize(db);
    FGPDB_CHECK(in.IsNonNegative());
    in.ForEach([&](const Tuple& t, int64_t c) { FoldTuple(t, c); });
    DeltaMultiset out;
    for (const auto& [key, state] : groups_) {
      out.Add(OutputRow(*key, state), 1);
    }
    if (group_by_.empty() && groups_.empty()) {
      out.Add(OutputRow(Tuple(), GroupState(aggregates_.size())), 1);
    }
    return out;
  }

 protected:
  const DeltaMultiset* ApplyDeltaImpl(const DeltaSet& deltas) override {
    const DeltaMultiset* din = child_->ApplyDelta(deltas);
    out_.Clear();
    if (din->empty()) return &out_;
    // Snapshot the old output row of every group the delta touches.
    old_rows_.clear();
    old_existed_.clear();
    din->ForEach([&](const Tuple& t, int64_t) {
      t.ProjectInto(group_by_, &key_scratch_);
      const Tuple* key = runtime_->arena.Intern(key_scratch_);
      if (old_existed_.count(key) > 0) return;
      const auto it = groups_.find(key);
      const bool existed = it != groups_.end() || group_by_.empty();
      old_existed_[key] = existed;
      if (it != groups_.end()) {
        old_rows_.emplace(key, OutputRow(*key, it->second));
      } else if (group_by_.empty()) {
        old_rows_.emplace(key, OutputRow(*key, GroupState(aggregates_.size())));
      }
    });
    din->ForEach([&](const Tuple& t, int64_t c) { FoldTuple(t, c); });
    for (const auto& [key, existed] : old_existed_) {
      if (existed) out_.Add(old_rows_.at(key), -1);
      const auto it = groups_.find(key);
      if (it != groups_.end()) {
        out_.Add(OutputRow(*key, it->second), 1);
      } else if (group_by_.empty()) {
        out_.Add(OutputRow(*key, GroupState(aggregates_.size())), 1);
      }
    }
    return &out_;
  }

 private:
  struct AggIncState {
    int64_t count = 0;  // Counted rows (COUNT/COUNT_IF) or non-null inputs.
    double sum = 0.0;
    bool sum_integral = true;
    std::map<Value, int64_t> values;  // MIN/MAX support multiset.
  };

  struct GroupState {
    explicit GroupState(size_t n) : support(0), aggs(n) {}
    int64_t support;
    std::vector<AggIncState> aggs;
  };

  void FoldTuple(const Tuple& t, int64_t c) {
    t.ProjectInto(group_by_, &key_scratch_);
    const Tuple* key = runtime_->arena.Intern(key_scratch_);
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      it = groups_.emplace(key, GroupState(aggregates_.size())).first;
    }
    GroupState& group = it->second;
    group.support += c;
    FGPDB_CHECK_GE(group.support, 0)
        << "negative group support — deltas out of order?";
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      FoldAggregate(aggregates_[a], t, c, group.aggs[a]);
    }
    if (group.support == 0) groups_.erase(it);
  }

  static void FoldAggregate(const AggregateSpec& spec, const Tuple& t,
                            int64_t c, AggIncState& state) {
    switch (spec.kind) {
      case AggregateSpec::Kind::kCount:
        if (spec.argument == nullptr || !spec.argument->Eval(t).is_null()) {
          state.count += c;
        }
        return;
      case AggregateSpec::Kind::kCountIf:
        if (spec.argument->EvalBool(t)) state.count += c;
        return;
      case AggregateSpec::Kind::kCountDistinct: {
        // Support multiset: distinct count = number of values with
        // positive support (exactly reversible under deletion).
        const Value v = spec.argument->Eval(t);
        if (v.is_null()) return;
        auto [it, inserted] = state.values.emplace(v, c);
        if (!inserted) {
          it->second += c;
          if (it->second == 0) state.values.erase(it);
        }
        return;
      }
      case AggregateSpec::Kind::kSum:
      case AggregateSpec::Kind::kAvg: {
        const Value v = spec.argument->Eval(t);
        if (v.is_null()) return;
        state.count += c;
        state.sum += static_cast<double>(c) * v.AsNumeric();
        if (v.type() != ValueType::kInt64) state.sum_integral = false;
        return;
      }
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        const Value v = spec.argument->Eval(t);
        if (v.is_null()) return;
        auto [it, inserted] = state.values.emplace(v, c);
        if (!inserted) {
          it->second += c;
          if (it->second == 0) state.values.erase(it);
        }
        return;
      }
    }
  }

  static Value FinalizeAggregate(const AggregateSpec& spec,
                                 const AggIncState& state) {
    switch (spec.kind) {
      case AggregateSpec::Kind::kCount:
      case AggregateSpec::Kind::kCountIf:
        return Value::Int(state.count);
      case AggregateSpec::Kind::kCountDistinct:
        return Value::Int(static_cast<int64_t>(state.values.size()));
      case AggregateSpec::Kind::kSum:
        if (state.count == 0) return Value::Null();
        return state.sum_integral
                   ? Value::Int(static_cast<int64_t>(state.sum))
                   : Value::Double(state.sum);
      case AggregateSpec::Kind::kAvg:
        if (state.count == 0) return Value::Null();
        return Value::Double(state.sum / static_cast<double>(state.count));
      case AggregateSpec::Kind::kMin:
        return state.values.empty() ? Value::Null()
                                    : state.values.begin()->first;
      case AggregateSpec::Kind::kMax:
        return state.values.empty() ? Value::Null()
                                    : state.values.rbegin()->first;
    }
    return Value::Null();
  }

  Tuple OutputRow(const Tuple& key, const GroupState& state) const {
    std::vector<Value> values;
    values.reserve(group_by_.size() + aggregates_.size());
    for (const Value& v : key.values()) values.push_back(v);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      values.push_back(FinalizeAggregate(aggregates_[a], state.aggs[a]));
    }
    return Tuple(std::move(values));
  }

  IncrementalOperatorPtr child_;
  std::vector<size_t> group_by_;
  std::vector<AggregateSpec> aggregates_;
  std::unordered_map<const Tuple*, GroupState> groups_;
  // Per-round scratch (reused so spilled hash storage survives rounds).
  std::unordered_map<const Tuple*, Tuple> old_rows_;
  std::unordered_map<const Tuple*, bool> old_existed_;
  DeltaMultiset out_;
  Tuple key_scratch_;
};

// ---------------------------------------------------------------------------
// Distinct: support counts over interned tuples; an output row appears on a
// 0→positive transition and disappears on positive→0.
// ---------------------------------------------------------------------------
class IncDistinct final : public IncrementalOperator {
 public:
  IncDistinct(ViewRuntime* runtime, IncrementalOperatorPtr child)
      : IncrementalOperator(runtime), child_(std::move(child)) {
    AbsorbChild(*child_);
  }

  DeltaMultiset Initialize(const Database& db) override {
    support_.clear();
    const DeltaMultiset in = child_->Initialize(db);
    DeltaMultiset out;
    in.ForEach([&](const Tuple& t, int64_t c) {
      const Tuple* key = runtime_->arena.Intern(t);
      int64_t& count = support_[key];
      if (count == 0 && c > 0) out.Add(t, 1);
      count += c;
    });
    return out;
  }

 protected:
  const DeltaMultiset* ApplyDeltaImpl(const DeltaSet& deltas) override {
    const DeltaMultiset* din = child_->ApplyDelta(deltas);
    out_.Clear();
    din->ForEach([&](const Tuple& t, int64_t c) {
      const Tuple* key = runtime_->arena.Intern(t);
      const auto it = support_.try_emplace(key, 0).first;
      const int64_t before = it->second;
      const int64_t after = before + c;
      FGPDB_CHECK_GE(after, 0) << "negative distinct support";
      if (before == 0 && after > 0) out_.Add(t, 1);
      if (before > 0 && after == 0) out_.Add(t, -1);
      if (after == 0) {
        support_.erase(it);
      } else {
        it->second = after;
      }
    });
    return &out_;
  }

 private:
  IncrementalOperatorPtr child_;
  std::unordered_map<const Tuple*, int64_t> support_;
  DeltaMultiset out_;
};

IncrementalOperatorPtr CompileNode(const ra::PlanNode& plan,
                                   ViewRuntime* runtime) {
  switch (plan.kind()) {
    case ra::PlanKind::kScan:
      return std::make_unique<IncScan>(
          runtime, static_cast<const ra::ScanNode&>(plan).table_name());
    case ra::PlanKind::kSelect: {
      const auto& node = static_cast<const ra::SelectNode&>(plan);
      return std::make_unique<IncSelect>(runtime,
                                         CompileNode(plan.child(0), runtime),
                                         node.predicate().Clone());
    }
    case ra::PlanKind::kProject: {
      const auto& node = static_cast<const ra::ProjectNode&>(plan);
      std::vector<ra::ExprPtr> outputs;
      for (const auto& e : node.outputs()) outputs.push_back(e->Clone());
      return std::make_unique<IncProject>(
          runtime, CompileNode(plan.child(0), runtime), std::move(outputs));
    }
    case ra::PlanKind::kJoin: {
      const auto& node = static_cast<const ra::JoinNode&>(plan);
      std::vector<ra::JoinKeyAlternative> alternatives = node.alternatives();
      if (alternatives.empty()) {
        alternatives.push_back({node.left_keys(), node.right_keys()});
      }
      return std::make_unique<IncJoin>(
          runtime, CompileNode(plan.child(0), runtime),
          CompileNode(plan.child(1), runtime), std::move(alternatives),
          node.residual() != nullptr ? node.residual()->Clone() : nullptr);
    }
    case ra::PlanKind::kAggregate: {
      const auto& node = static_cast<const ra::AggregateNode&>(plan);
      std::vector<AggregateSpec> specs;
      for (const auto& spec : node.aggregates()) specs.push_back(spec.Clone());
      return std::make_unique<IncAggregate>(
          runtime, CompileNode(plan.child(0), runtime), node.group_by(),
          std::move(specs));
    }
    case ra::PlanKind::kDistinct:
      return std::make_unique<IncDistinct>(
          runtime, CompileNode(plan.child(0), runtime));
    case ra::PlanKind::kOrderBy:
      // View contents are multisets; ordering is presentation-only.
      return CompileNode(plan.child(0), runtime);
    case ra::PlanKind::kLimit:
      FGPDB_FATAL() << "LIMIT is not incrementally maintainable";
  }
  FGPDB_FATAL() << "unknown plan kind";
  return nullptr;
}

}  // namespace

CompiledView::CompiledView(const ra::PlanNode& plan)
    : runtime_(std::make_unique<ViewRuntime>()) {
  // Register tables from the plan's scanned-table metadata first so routing
  // ids follow plan pre-order regardless of operator construction order.
  for (const std::string& table : plan.ScannedTables()) {
    runtime_->RegisterTable(table);
  }
  root_ = CompileNode(plan, runtime_.get());
}

CompiledView Compile(const ra::PlanNode& plan) { return CompiledView(plan); }

MaterializedView::MaterializedView(const ra::PlanNode& plan)
    : compiled_(plan) {}

void MaterializedView::Initialize(const Database& db) {
  contents_ = compiled_.root().Initialize(db);
  FGPDB_CHECK(contents_.IsNonNegative());
  initialized_ = true;
}

const DeltaMultiset& MaterializedView::Apply(const DeltaSet& deltas) {
  FGPDB_CHECK(initialized_) << "MaterializedView::Initialize not called";
  ViewRuntime& rt = compiled_.runtime();
  if (paused_) {
    // Convergence short-circuit: a drained view stops paying apply cost.
    // The tree is not entered and the contents freeze at their last state
    // (stale with respect to the chain until the view is resumed).
    ++rt.stats.rounds_short_circuited;
    paused_out_.Clear();
    return paused_out_;
  }
  ++rt.stats.rounds;
  // Route: mark the subscribed tables this round actually touched. Deltas
  // for unsubscribed tables never enter the tree. One pass over the
  // DeltaSet, O(|touched tables|), not over everything ever registered.
  rt.touched_mask = 0;
  deltas.ForEachTable([&](const std::string& table, const DeltaMultiset& d) {
    if (d.empty()) return;
    const uint64_t mask = rt.MaskOf(table);
    if (mask == 0) {
      ++rt.stats.tables_ignored;
    } else {
      rt.touched_mask |= mask;
      ++rt.stats.tables_routed;
    }
  });
  const DeltaMultiset* out = compiled_.root().ApplyDelta(deltas);
  contents_.Merge(*out);
  // Only entries the output delta touched can have gone negative, so the
  // Eq. 6 bookkeeping assertion costs O(|Δout|), not O(|view|).
  out->ForEach([&](const Tuple& t, int64_t) {
    FGPDB_CHECK_GE(contents_.Count(t), 0)
        << "view contents went negative — Eq. 6 bookkeeping violated";
  });
  return *out;
}

}  // namespace view
}  // namespace fgpdb
