// Binds a parsed SELECT statement against the catalog and lowers it to an
// executable ra:: plan: scans with pushed-down single-table filters, hash
// joins extracted from cross-table equality conjuncts, grouping/aggregation,
// HAVING, projection, DISTINCT, ORDER BY, LIMIT.
#ifndef FGPDB_SQL_BINDER_H_
#define FGPDB_SQL_BINDER_H_

#include <string>

#include "ra/plan.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace fgpdb {
namespace sql {

/// Lowers `stmt` to a plan. Fatal on unresolvable names or unsupported
/// shapes (e.g. aggregates nested inside aggregates).
ra::PlanPtr Bind(const SelectStatement& stmt, const Database& db);

/// Parse + bind in one step.
ra::PlanPtr PlanQuery(const std::string& query, const Database& db);

}  // namespace sql
}  // namespace fgpdb

#endif  // FGPDB_SQL_BINDER_H_
