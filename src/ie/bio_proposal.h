// BIO-constraint-preserving proposal (paper Appendix 9.3):
//
//   "Note that I-<T> can follow B-<U> if and only if T = U … This suggests
//    we could devise a more intelligent jump function that takes this
//    constraint into account."
//
// The kernel picks a variable from the current document batch and proposes
// uniformly among the labels that keep the BIO sequence *locally valid*
// with respect to both neighbors (the previous label must license the new
// one; the new one must license the unchanged next label). Because the
// neighbors don't move, the valid-candidate set is identical for the
// forward and reverse jump, so the kernel is symmetric. Starting from a
// valid world (e.g. all 'O'), the chain never leaves the valid-BIO region —
// the §3.4 constraint-preserving-proposal idea, without any deterministic
// constraint factors.
#ifndef FGPDB_IE_BIO_PROPOSAL_H_
#define FGPDB_IE_BIO_PROPOSAL_H_

#include <vector>

#include "ie/token_pdb.h"
#include "infer/proposal.h"

namespace fgpdb {
namespace ie {

class BioConstrainedProposal final : public infer::Proposal {
 public:
  /// `docs` as in DocumentBatchProposal; must outlive the proposal.
  BioConstrainedProposal(const std::vector<std::vector<factor::VarId>>* docs,
                         size_t proposals_per_batch = 2000,
                         size_t docs_per_batch = 5);

  using infer::Proposal::Propose;
  void Propose(const factor::World& world, Rng& rng, factor::Change* change,
               double* log_ratio) override;

  /// Labels valid at `var` given its neighbors' current labels. Exposed
  /// for tests.
  std::vector<uint32_t> ValidLabels(const factor::World& world,
                                    factor::VarId var) const;

 private:
  void ReloadBatch(Rng& rng);
  /// Allocation-free ValidLabels: fills the member candidate buffer.
  void FillValidLabels(const factor::World& world, factor::VarId var);

  const std::vector<std::vector<factor::VarId>>* docs_;
  size_t proposals_per_batch_;
  size_t docs_per_batch_;
  std::vector<factor::VarId> batch_;
  std::vector<factor::VarId> prev_;
  std::vector<factor::VarId> next_;
  /// Reused candidate-label buffer (≤ kNumLabels entries) — the proposal's
  /// hot loop touches no heap.
  std::vector<uint32_t> valid_buf_;
  size_t proposals_since_reload_ = 0;
  static constexpr factor::VarId kNoVar = ~0u;
};

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_BIO_PROPOSAL_H_
