// Aggregate queries over a probabilistic database (paper §5.5): sampling
// evaluation handles aggregates with no representation-system changes —
// the answer to an aggregate query is a distribution over values.
//
// Runs the paper's Query 2 (count of person mentions) and Query 3
// (documents with equal person and organization counts) plus a SUM/AVG
// GROUP BY query showing the general machinery.
//
//   ./examples/aggregate_queries [num_tokens]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/query_evaluator.h"
#include "sql/binder.h"

using namespace fgpdb;

int main(int argc, char** argv) {
  const size_t num_tokens =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = num_tokens});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  std::cout << "TOKEN relation: " << tokens.num_tokens() << " tuples, "
            << corpus.num_docs << " documents\n";

  auto evaluate = [&](const std::string& query, uint64_t samples) {
    auto world = tokens.pdb->Clone();
    ra::PlanPtr plan = sql::PlanQuery(query, world->db());
    ie::DocumentBatchProposal proposal(&tokens.docs);
    pdb::MaterializedQueryEvaluator evaluator(
        world.get(), &proposal, plan.get(),
        {.steps_per_sample = 1000,
         .burn_in = 40 * static_cast<uint64_t>(tokens.num_tokens()),
         .seed = 31});
    evaluator.Run(samples);
    return evaluator.answer().Sorted();
  };

  // --- Query 2: the answer is a distribution over counts ------------------
  std::cout << "\n== Query 2 ==\n" << ie::kQuery2 << "\n";
  auto q2 = evaluate(ie::kQuery2, 800);
  double mean = 0.0;
  for (const auto& [tuple, p] : q2) mean += tuple.at(0).AsNumeric() * p;
  std::cout << "answer: distribution over " << q2.size()
            << " count values, mean " << mean << "; most likely:\n";
  auto by_prob = q2;
  std::sort(by_prob.begin(), by_prob.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (size_t i = 0; i < by_prob.size() && i < 5; ++i) {
    std::cout << "  COUNT = " << by_prob[i].first.ToString() << "  Pr="
              << by_prob[i].second << "\n";
  }

  // --- Query 3: per-document aggregate comparison -------------------------
  std::cout << "\n== Query 3 ==\n" << ie::kQuery3 << "\n";
  auto q3 = evaluate(ie::kQuery3, 800);
  std::sort(q3.begin(), q3.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "documents whose PER count equals their ORG count ("
            << q3.size() << " candidates):\n";
  for (size_t i = 0; i < q3.size() && i < 5; ++i) {
    std::cout << "  DOC_ID = " << q3[i].first.ToString() << "  Pr="
              << q3[i].second << "\n";
  }

  // --- A richer aggregate: per-document entity statistics ------------------
  const char* kStatsQuery =
      "SELECT DOC_ID, COUNT_IF(LABEL = 'B-PER') AS PERSONS, "
      "COUNT_IF(LABEL = 'B-ORG') AS ORGS FROM TOKEN "
      "GROUP BY DOC_ID HAVING COUNT_IF(LABEL = 'B-PER') >= 8";
  std::cout << "\n== Grouped aggregate with HAVING ==\n" << kStatsQuery << "\n";
  auto stats = evaluate(kStatsQuery, 400);
  std::sort(stats.begin(), stats.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "(DOC_ID, PERSONS, ORGS) rows that are likely in the answer:\n";
  for (size_t i = 0; i < stats.size() && i < 5; ++i) {
    std::cout << "  " << stats[i].first.ToString() << "  Pr="
              << stats[i].second << "\n";
  }
  std::cout << "\nNote: every query above ran through the same incremental-"
               "view evaluator — aggregates need no special handling "
               "(paper §4, §5.5).\n";
  return 0;
}
