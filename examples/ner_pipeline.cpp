// Full NER pipeline (paper §5): generate a corpus, load the TOKEN relation,
// train the skip-chain CRF with SampleRank, then answer Queries 1 and 4
// with MCMC + view maintenance, reporting NER quality and probabilistic
// answers. Also runs the linear-chain ablation from DESIGN.md.
//
//   ./examples/ner_pipeline [num_tokens] [train_steps]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/metrics.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "learn/samplerank.h"
#include "util/stopwatch.h"

using namespace fgpdb;

namespace {

// Trains a model with SampleRank and reports the walk's final accuracy and
// mention-level F1 (the paper trains "in a matter of minutes"; this corpus
// takes seconds).
void TrainAndReport(ie::SkipChainNerModel& model, const ie::TokenPdb& tokens,
                    uint64_t steps, const char* name) {
  learn::LabelAccuracyObjective objective(tokens.truth);
  ie::DocumentBatchProposal proposal(&tokens.docs);
  learn::SampleRank trainer(&model, &proposal, &objective,
                            {.learning_rate = 1.0, .seed = 99});
  factor::World world(tokens.num_tokens());  // All 'O'.
  Stopwatch timer;
  const learn::SampleRankStats stats = trainer.Train(&world, steps);
  std::vector<uint32_t> predicted(tokens.num_tokens());
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    predicted[v] = world.Get(static_cast<factor::VarId>(v));
  }
  std::vector<size_t> doc_starts;
  for (const auto& doc : tokens.docs) doc_starts.push_back(doc.front());
  const ie::NerScores scores = ie::ScoreBio(predicted, tokens.truth, doc_starts);
  std::cout << "[" << name << "] trained " << steps << " steps in "
            << timer.ElapsedSeconds() << "s (" << stats.updates
            << " perceptron updates)\n"
            << "[" << name << "] token accuracy "
            << scores.token_accuracy << ", mention F1 " << scores.f1 << " (P "
            << scores.precision << " / R " << scores.recall << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  // 50k default: large enough that the ambiguous "Boston" appears in both
  // its ORG and LOC senses, so Query 4 has a non-empty probabilistic answer.
  const size_t num_tokens =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const uint64_t train_steps =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400000;

  std::cout << "== Corpus ==\n";
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = num_tokens});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  std::cout << tokens.num_tokens() << " tokens, " << corpus.num_docs
            << " docs, vocab " << tokens.vocab.size() << "\n\n";

  std::cout << "== Training (SampleRank, paper §5.2) ==\n";
  ie::SkipChainNerModel skip_model(tokens);
  TrainAndReport(skip_model, tokens, train_steps, "skip-chain");
  // Ablation: the tractable linear-chain model the paper improves upon.
  ie::SkipChainNerModel linear_model(tokens, {.use_skip_edges = false});
  TrainAndReport(linear_model, tokens, train_steps, "linear-chain");
  std::cout << "skip edges in model: " << skip_model.num_skip_edges() << "\n\n";

  std::cout << "== Query evaluation (Session, shared chain, Alg. 1) ==\n";
  tokens.pdb->set_model(&skip_model);
  // Queries 1 and 4 ride ONE chain: each sampling interval's deltas are
  // drained once and fanned out to both maintained views.
  auto session = api::Session::Open(
      {.database = tokens.pdb.get(),
       .proposal_factory =
           [&tokens](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
             return std::make_unique<ie::DocumentBatchProposal>(&tokens.docs);
           },
       .evaluator = {.steps_per_sample = 2000,
                     .burn_in = 40 * static_cast<uint64_t>(tokens.num_tokens()),
                     .seed = 5}});
  std::vector<api::ResultHandle> handles;
  for (const char* query : {ie::kQuery1, ie::kQuery4}) {
    handles.push_back(session->Register(query));
  }
  Stopwatch timer;
  session->Run(300);
  const double elapsed = timer.ElapsedSeconds();
  for (const api::ResultHandle& handle : handles) {
    auto sorted = handle.Snapshot().answer.Sorted();
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::cout << "\n" << handle.query()->sql() << "\n  -> " << sorted.size()
              << " tuples; top answers:\n";
    for (size_t i = 0; i < sorted.size() && i < 5; ++i) {
      std::cout << "     " << sorted[i].first.ToString() << "  Pr="
                << sorted[i].second << "\n";
    }
  }
  std::cout << "\nBoth queries answered by one shared chain in " << elapsed
            << "s.\n";
  return 0;
}
