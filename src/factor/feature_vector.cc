#include "factor/feature_vector.h"

#include <algorithm>
#include <cmath>

namespace fgpdb {
namespace factor {

void SparseVector::Consolidate() {
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // In-place run merge: sum each equal-id run left to right (the same
  // post-sort order the old copy-out implementation summed in), compact
  // non-zero sums toward the front, shrink. No allocation.
  size_t out = 0;
  const size_t n = entries_.size();
  for (size_t i = 0; i < n;) {
    const FeatureId id = entries_[i].first;
    double sum = entries_[i].second;
    for (++i; i < n && entries_[i].first == id; ++i) {
      sum += entries_[i].second;
    }
    if (sum != 0.0) entries_[out++] = {id, sum};
  }
  entries_.resize(out);
}

void Parameters::UpdateSparse(const SparseVector& features, double scale) {
  for (const auto& [id, value] : features.entries()) {
    weights_.Ref(id) += scale * value;
  }
  ++version_;
}

double Parameters::Dot(const SparseVector& features) const {
  double total = 0.0;
  for (const auto& [id, value] : features.entries()) {
    total += Get(id) * value;
  }
  return total;
}

double Parameters::Norm() const {
  double total = 0.0;
  weights_.ForEach([&total](uint64_t, const double& w) { total += w * w; });
  return std::sqrt(total);
}

}  // namespace factor
}  // namespace fgpdb
