// Figure 4(b): normalized squared-error loss versus wall-clock time for the
// naive and materialized evaluators on Query 1 (paper: 1M tuples; default
// here 100k, scaled by FGPDB_BENCH_SCALE).
//
// Expected shape: both decrease ~monotonically (the any-time property); the
// materialized curve reaches near-zero before the naive curve halves.
// Also prints the DESIGN.md thinning ablation: the materialized evaluator's
// convergence for several values of k.
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

struct LossPoint {
  double seconds;
  double loss;
};

std::vector<LossPoint> LossCurve(pdb::QueryEvaluator& evaluator,
                                 const pdb::QueryAnswer& truth,
                                 uint64_t samples) {
  std::vector<LossPoint> curve;
  Stopwatch timer;
  evaluator.Initialize();
  for (uint64_t i = 0; i < samples; ++i) {
    evaluator.DrawSample();
    curve.push_back({timer.ElapsedSeconds(),
                     evaluator.answer().SquaredError(truth)});
  }
  return curve;
}

}  // namespace

int main() {
  const size_t n = static_cast<size_t>(100000 * BenchScale());
  const uint64_t k = std::max<uint64_t>(100, n / 1000);
  const uint64_t samples = 200;

  std::cout << "=== Figure 4(b): loss vs time, Query 1, "
            << HumanCount(static_cast<double>(n)) << " tuples ===\n\n";
  NerBench bench(n);
  const pdb::QueryAnswer truth =
      EstimateGroundTruth(bench, ie::kQuery1, 600, k);

  const pdb::EvaluatorOptions options{.steps_per_sample = k, .burn_in = 0,
                                      .seed = 7};
  auto world_naive = bench.tokens.pdb->Clone();
  ra::PlanPtr plan_naive = sql::PlanQuery(ie::kQuery1, world_naive->db());
  auto prop_naive = bench.MakeProposal();
  pdb::NaiveQueryEvaluator naive(world_naive.get(), prop_naive.get(),
                                 plan_naive.get(), options);
  const auto naive_curve = LossCurve(naive, truth, samples);

  auto world_mat = bench.tokens.pdb->Clone();
  ra::PlanPtr plan_mat = sql::PlanQuery(ie::kQuery1, world_mat->db());
  auto prop_mat = bench.MakeProposal();
  pdb::MaterializedQueryEvaluator materialized(world_mat.get(), prop_mat.get(),
                                               plan_mat.get(), options);
  const auto mat_curve = LossCurve(materialized, truth, samples);

  const double norm = std::max(naive_curve.front().loss, 1e-12);
  TablePrinter table({"sample", "naive time (s)", "naive loss (norm)",
                      "mat time (s)", "mat loss (norm)"});
  for (uint64_t i = 0; i < samples; i += 10) {
    table.AddRow({std::to_string(i + 1),
                  FormatDouble(naive_curve[i].seconds, 4),
                  FormatDouble(naive_curve[i].loss / norm, 4),
                  FormatDouble(mat_curve[i].seconds, 4),
                  FormatDouble(mat_curve[i].loss / norm, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);

  std::cout << "\nTotal wall-clock for " << samples
            << " samples: naive " << FormatDouble(naive_curve.back().seconds, 4)
            << "s vs materialized "
            << FormatDouble(mat_curve.back().seconds, 4) << "s ("
            << FormatDouble(
                   naive_curve.back().seconds / mat_curve.back().seconds, 3)
            << "x)\n";

  // --- Ablation: thinning interval k (DESIGN.md) ---------------------------
  std::cout << "\n=== Ablation: thinning interval k (materialized) ===\n";
  TablePrinter ablation({"k", "samples to half error", "seconds"});
  for (uint64_t k_ab : {k / 4, k, k * 4}) {
    if (k_ab == 0) continue;
    auto world = bench.tokens.pdb->Clone();
    ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, world->db());
    auto proposal = bench.MakeProposal();
    pdb::MaterializedQueryEvaluator evaluator(
        world.get(), proposal.get(), plan.get(),
        {.steps_per_sample = k_ab, .burn_in = 0, .seed = 13});
    Stopwatch timer;
    evaluator.Initialize();
    evaluator.DrawSample();
    const double target = evaluator.answer().SquaredError(truth) / 2.0;
    uint64_t used = 1;
    while (used < 2000 &&
           evaluator.answer().SquaredError(truth) > target) {
      evaluator.DrawSample();
      ++used;
    }
    ablation.AddRow({std::to_string(k_ab), std::to_string(used),
                     FormatDouble(timer.ElapsedSeconds(), 4)});
  }
  ablation.Print(std::cout);
  std::cout << "\nPaper shape check: both evaluators trace the same "
               "monotonically decreasing (any-time) loss curve — they draw "
               "identical samples — but the materialized evaluator finishes "
               "the trajectory an order of magnitude sooner in wall-clock; "
               "larger k needs fewer samples (more independent) at more walk "
               "time per sample.\n";
  return 0;
}
