// SQL tokenizer for the query subset used by the paper's workloads
// (Queries 1-4 and the examples).
#ifndef FGPDB_SQL_LEXER_H_
#define FGPDB_SQL_LEXER_H_

#include <string>
#include <vector>

namespace fgpdb {
namespace sql {

enum class TokenType {
  kIdentifier,   // TOKEN, T1, doc_id
  kKeyword,      // SELECT, FROM, ... (uppercased)
  kString,       // 'B-PER'
  kInteger,      // 42
  kFloat,        // 3.5
  kSymbol,       // ( ) , . * = <> < <= > >= + - /
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // Keywords uppercased; identifiers/literals verbatim.
  size_t position = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes `input`; fatal (with position) on malformed input. The final
/// token is always kEnd.
std::vector<Token> Lex(const std::string& input);

}  // namespace sql
}  // namespace fgpdb

#endif  // FGPDB_SQL_LEXER_H_
