// World: a full assignment to the hidden variables — the paper's single
// possible world, mirrored into the relational database by the pdb layer.
#ifndef FGPDB_FACTOR_WORLD_H_
#define FGPDB_FACTOR_WORLD_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace fgpdb {
namespace factor {

using VarId = uint32_t;

/// One proposed variable re-assignment (new value index).
struct Assignment {
  VarId var = 0;
  uint32_t value = 0;
};

/// A hypothesized modification to the current world: the set of variables
/// the proposal touches, with their new values (old values live in World).
struct Change {
  std::vector<Assignment> assignments;

  bool empty() const { return assignments.empty(); }
  void Set(VarId var, uint32_t value) { assignments.push_back({var, value}); }
  /// Empties the change, keeping the assignment buffer's capacity — a
  /// proposal reusing one Change across millions of steps allocates once.
  void Clear() { assignments.clear(); }
};

/// An executed modification, with both old and new values — what the
/// database-synchronization listeners consume to build Δ−/Δ+.
struct AppliedAssignment {
  VarId var = 0;
  uint32_t old_value = 0;
  uint32_t new_value = 0;
};

class World {
 public:
  World() = default;
  explicit World(size_t num_variables) : values_(num_variables, 0) {}

  size_t size() const { return values_.size(); }

  /// Appends a variable initialized to `value`; returns its id.
  VarId Append(uint32_t value = 0) {
    values_.push_back(value);
    return static_cast<VarId>(values_.size() - 1);
  }

  uint32_t Get(VarId var) const {
    FGPDB_CHECK_LT(var, values_.size());
    return values_[var];
  }

  void Set(VarId var, uint32_t value) {
    FGPDB_CHECK_LT(var, values_.size());
    values_[var] = value;
  }

  /// Applies `change`, recording old values into `applied` (if non-null).
  void Apply(const Change& change,
             std::vector<AppliedAssignment>* applied = nullptr) {
    for (const auto& a : change.assignments) {
      const uint32_t old_value = Get(a.var);
      if (applied != nullptr) applied->push_back({a.var, old_value, a.value});
      Set(a.var, a.value);
    }
  }

  const std::vector<uint32_t>& values() const { return values_; }

 private:
  std::vector<uint32_t> values_;
};

/// Read-only overlay of a Change on top of a World: what the hypothesized
/// world w' looks like without mutating w. Used to evaluate factors on both
/// sides of the MH acceptance ratio. Holds references only (no copy, no
/// allocation — this sits on the sampler's hot path); both the world and
/// the change must outlive the overlay.
class PatchedWorld {
 public:
  PatchedWorld(const World& base, const Change& change)
      : base_(base), change_(change) {}
  // The overlay must not outlive the change: reject temporaries outright.
  PatchedWorld(const World& base, Change&& change) = delete;

  uint32_t Get(VarId var) const {
    // Reverse scan: if a change assigns the same variable twice, the last
    // assignment wins, matching World::Apply's sequential semantics.
    // Linear scan: proposals touch few vars.
    const auto& patch = change_.assignments;
    for (auto it = patch.rbegin(); it != patch.rend(); ++it) {
      if (it->var == var) return it->value;
    }
    return base_.Get(var);
  }

 private:
  const World& base_;
  const Change& change_;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_WORLD_H_
