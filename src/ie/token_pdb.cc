#include "ie/token_pdb.h"

#include "ie/labels.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {

TokenPdb BuildTokenPdb(const SyntheticCorpus& corpus) {
  TokenPdb out;
  out.pdb = std::make_unique<pdb::ProbabilisticDatabase>();
  Database& db = out.pdb->db();

  Schema schema(
      {
          Attribute{"TOK_ID", ValueType::kInt64},
          Attribute{"DOC_ID", ValueType::kInt64},
          Attribute{"STRING", ValueType::kString},
          Attribute{"LABEL", ValueType::kString},
          Attribute{"TRUTH", ValueType::kString},
      },
      /*primary_key=*/kColTokId);
  Table* table = db.CreateTable(kTokenTable, std::move(schema));

  const auto label_domain = LabelDomain();
  out.string_ids.reserve(corpus.tokens.size());
  out.truth.reserve(corpus.tokens.size());
  out.docs.resize(corpus.num_docs);

  for (const TokenRecord& record : corpus.tokens) {
    const RowId row = table->Insert(Tuple{
        Value::Int(record.tok_id),
        Value::Int(record.doc_id),
        Value::String(record.text),
        Value::String(LabelName(kLabelO)),  // §5.1: LABEL initialized to O.
        Value::String(LabelName(record.truth_label)),
    });
    const factor::VarId var =
        out.pdb->binding().Bind(kTokenTable, row, kColLabel, label_domain);
    FGPDB_CHECK_EQ(static_cast<int64_t>(var), record.tok_id)
        << "variable ids must align with TOK_ID";
    out.string_ids.push_back(out.vocab.Intern(record.text));
    out.truth.push_back(record.truth_label);
    out.docs.at(static_cast<size_t>(record.doc_id)).push_back(var);
  }
  out.pdb->SyncWorldFromDatabase();
  // All nine BIO labels fit a byte: attach the narrow label lane the step
  // kernel reads (write-through on every Set, survives SyncWorldFromDatabase).
  out.pdb->world().EnableLabelShadow();
  out.hot = std::make_unique<TokenHotBlock>(
      BuildTokenHotBlock(out.vocab, out.string_ids, out.docs));
  return out;
}

}  // namespace ie
}  // namespace fgpdb
