// Synthetic news-like corpus generator.
//
// The paper evaluates on ten million tokens of 2004 New York Times text
// with Stanford-NER reference labels — data we cannot redistribute. This
// generator is the documented substitution (DESIGN.md #1): a generative
// process that preserves the properties the experiments exercise:
//
//   * documents composed of sentences over a background vocabulary,
//   * PER/ORG/LOC/MISC mentions drawn from per-document entity pools, so
//     the same surface string recurs within a document (skip edges),
//   * deliberately ambiguous strings shared across lexicons ("Boston" the
//     city vs "Boston" the organization — the paper's Query 4 motivation),
//   * BIO ground-truth labels (the TRUTH column of the TOKEN relation),
//   * label sparsity (most tokens are O).
#ifndef FGPDB_IE_CORPUS_H_
#define FGPDB_IE_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ie/labels.h"

namespace fgpdb {
namespace ie {

struct TokenRecord {
  int64_t tok_id = 0;
  int64_t doc_id = 0;
  std::string text;
  uint32_t truth_label = kLabelO;
};

struct CorpusOptions {
  /// Approximate total tokens (generation stops at the first document
  /// boundary at or past this).
  size_t num_tokens = 10000;
  /// Mean document length (documents vary around this).
  size_t tokens_per_doc = 250;
  /// Probability a sentence slot starts an entity mention.
  double entity_density = 0.12;
  /// Fraction of pool entities drawn from an open-ended synthetic name
  /// space instead of the fixed head lexicons. Real text is Zipfian: a few
  /// very frequent entity strings plus a long tail seen once or twice. The
  /// tail is what keeps string-level query marginals from saturating at
  /// 0/1 (rare strings have weak emission statistics, so their labels stay
  /// genuinely uncertain — the regime the paper's figures live in).
  double rare_entity_fraction = 0.4;
  uint64_t seed = 2004;  // The corpus year, in the paper's honor.
};

struct SyntheticCorpus {
  std::vector<TokenRecord> tokens;
  size_t num_docs = 0;

  /// Token index ranges per document: docs[d] = [begin, end).
  std::vector<std::pair<size_t, size_t>> doc_ranges;
};

/// Deterministically generates a corpus from the options' seed.
SyntheticCorpus GenerateCorpus(const CorpusOptions& options);

/// The ambiguous city/organization string used by the paper's Query 4.
inline constexpr const char* kBostonString = "Boston";

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_CORPUS_H_
