// Cross-seed, cross-query equivalence sweep: the repository's strongest
// end-to-end property. For every (corpus seed × paper query), the
// materialized evaluator (Alg. 1) must produce exactly the marginals the
// naive evaluator (Alg. 3) produces on the same chain — across different
// proposal kernels, including the BIO-constrained one.
#include <gtest/gtest.h>

#include "ie/bio_proposal.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/query_evaluator.h"
#include "sql/binder.h"

namespace fgpdb {
namespace {

struct SweepCase {
  const char* query;
  uint64_t corpus_seed;
  bool bio_kernel;
};

class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int, bool>> {};

TEST_P(EquivalenceSweep, NaiveEqualsMaterializedOnIdenticalChains) {
  const auto& [query, seed, bio_kernel] = GetParam();
  ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = 400,
       .tokens_per_doc = 60,
       .seed = static_cast<uint64_t>(seed)});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);

  auto world_a = tokens.pdb->Clone();
  auto world_b = tokens.pdb->Clone();
  ra::PlanPtr plan_a = sql::PlanQuery(query, world_a->db());
  ra::PlanPtr plan_b = sql::PlanQuery(query, world_b->db());

  auto make_proposal = [&]() -> std::unique_ptr<infer::Proposal> {
    if (bio_kernel) {
      return std::make_unique<ie::BioConstrainedProposal>(
          &tokens.docs, /*proposals_per_batch=*/300);
    }
    return std::make_unique<ie::DocumentBatchProposal>(
        &tokens.docs, ie::NerProposalOptions{.proposals_per_batch = 300});
  };
  auto proposal_a = make_proposal();
  auto proposal_b = make_proposal();

  const pdb::EvaluatorOptions options{
      .steps_per_sample = 400,
      .burn_in = 800,
      .seed = 1000 + static_cast<uint64_t>(seed)};
  pdb::NaiveQueryEvaluator naive(world_a.get(), proposal_a.get(),
                                 plan_a.get(), options);
  pdb::MaterializedQueryEvaluator materialized(world_b.get(), proposal_b.get(),
                                               plan_b.get(), options);
  naive.Run(25);
  materialized.Run(25);
  EXPECT_EQ(naive.answer().SquaredError(materialized.answer()), 0.0)
      << "query " << query << " seed " << seed << " bio=" << bio_kernel;
}

INSTANTIATE_TEST_SUITE_P(
    QueriesTimesSeedsTimesKernels, EquivalenceSweep,
    ::testing::Combine(
        ::testing::Values(ie::kQuery1, ie::kQuery2, ie::kQuery3, ie::kQuery4,
                          // The extended-SQL shapes through the same path.
                          "SELECT COUNT(DISTINCT LABEL) FROM TOKEN",
                          "SELECT STRING FROM TOKEN WHERE LABEL LIKE 'B-%'",
                          "SELECT DOC_ID FROM TOKEN WHERE LABEL IN "
                          "('B-PER', 'B-ORG') GROUP BY DOC_ID "
                          "HAVING COUNT(*) BETWEEN 2 AND 12"),
        ::testing::Range(1, 4), ::testing::Bool()));

}  // namespace
}  // namespace fgpdb
