// Open-loop many-tenant serving bench (the acceptance bench for the serve
// layer): N tenants over one serve::Server, each submitting sampling work
// and polling mid-run snapshots on its own schedule, regardless of how far
// the scheduler has gotten — the open-loop discipline that exposes queueing
// tails closed-loop benches hide. Every Overloaded rejection is retried
// until admitted, so the run completes with ZERO rejected-then-lost
// queries; client-side snapshot latency lands in a util::LatencyHistogram
// and the JSON report carries queries/sec, p50/p95/p99, the server's
// scheduler counters, and the cross-session plan-cache hit rate (tenants
// draw from the paper's four-query pool, so all but the first four
// registrations should hit).
//
//   ./bench/bench_serve_multitenant [--tenants=16] [--rounds=32]
//       [--samples=32] [--json=FILE] [--seed=N]   (honors FGPDB_BENCH_SCALE)
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/server.h"
#include "util/latency_histogram.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "serve_multitenant");
  const size_t num_tenants =
      static_cast<size_t>(FlagU64(argc, argv, "tenants", 16));
  const uint64_t rounds = FlagU64(argc, argv, "rounds", 32);
  const uint64_t samples_per_submit = FlagU64(argc, argv, "samples", 32);
  const std::string json_path = FlagStr(argc, argv, "json", "");
  const size_t num_tokens = static_cast<size_t>(4000 * BenchScale());

  NerBench bench(num_tokens, DeriveSeed(master, 0));
  const std::vector<const char*> query_pool = {ie::kQuery1, ie::kQuery2,
                                               ie::kQuery3, ie::kQuery4};

  serve::ServerOptions options;
  options.database = bench.tokens.pdb.get();
  options.proposal_factory =
      [&bench](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
    return bench.MakeProposal();
  };
  // A serving chain, not an accuracy run: short thinning and burn-in keep
  // quanta cheap so the bench measures scheduling, not mixing.
  options.evaluator = {};
  options.evaluator.steps_per_sample = 200;
  options.evaluator.burn_in = 1000;
  // A deliberately tight admission cap so the open-loop schedule actually
  // drives tenants into Overloaded and the retry path gets measured.
  options.max_outstanding_samples = 4 * samples_per_submit;
  options.quantum_samples = 16;
  serve::Server server(options);

  std::printf("# serve_multitenant: %zu tokens, %zu tenants, %llu rounds x "
              "%llu samples, cap=%llu, quantum=%llu\n",
              num_tokens, num_tenants,
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(samples_per_submit),
              static_cast<unsigned long long>(options.max_outstanding_samples),
              static_cast<unsigned long long>(options.quantum_samples));

  // --- Setup: one tenant per client, decorrelated seeds, queries drawn
  // round-robin from the paper's four-query pool (the plan-cache workload).
  std::vector<serve::TenantId> tenants(num_tenants, 0);
  for (size_t t = 0; t < num_tenants; ++t) {
    serve::TenantOptions tenant_options;
    tenant_options.has_evaluator = true;
    tenant_options.evaluator = options.evaluator;
    tenant_options.evaluator.seed = DeriveSeed(master, 100 + t);
    serve::Status status = server.CreateTenant(&tenants[t], tenant_options);
    FGPDB_CHECK(status.ok()) << status.message;
    serve::QueryId query = 0;
    status = server.RegisterQuery(tenants[t], query_pool[t % query_pool.size()],
                                  &query);
    FGPDB_CHECK(status.ok()) << status.message;
  }

  // --- Open loop: every round, every tenant submits a fixed budget (retrying
  // Overloaded until admitted — nothing is lost) and immediately polls a
  // mid-run snapshot, client-timed. The scheduler drains concurrently.
  LatencyHistogram snapshot_latency;
  uint64_t retries = 0;
  uint64_t lost = 0;
  Stopwatch wall;
  for (uint64_t round = 0; round < rounds; ++round) {
    for (size_t t = 0; t < num_tenants; ++t) {
      serve::Status status = server.Submit(tenants[t], samples_per_submit);
      while (status.code == serve::StatusCode::kOverloaded) {
        ++retries;
        std::this_thread::yield();
        status = server.Submit(tenants[t], samples_per_submit);
      }
      if (!status.ok()) ++lost;

      Stopwatch timer;
      api::QueryProgress progress;
      status = server.Snapshot(tenants[t], 0, &progress);
      if (!status.ok()) ++lost;
      snapshot_latency.RecordSeconds(timer.ElapsedSeconds());
    }
  }
  server.Drain();
  const double seconds = wall.ElapsedSeconds();

  // Post-drain check: every admitted sample was drawn or yielded.
  uint64_t admitted_total = 0, drawn_total = 0, yielded_total = 0;
  for (size_t t = 0; t < num_tenants; ++t) {
    serve::TenantStats stats;
    FGPDB_CHECK(server.GetTenantStats(tenants[t], &stats).ok());
    admitted_total += stats.submitted;
    drawn_total += stats.samples_drawn;
    yielded_total += stats.yielded;
    if (stats.pending != 0) ++lost;
  }
  if (drawn_total + yielded_total < admitted_total) {
    lost += admitted_total - drawn_total - yielded_total;
  }

  const serve::SchedulerMetrics metrics = server.metrics();
  const api::PlanCache::Stats cache = server.plan_cache_stats();
  const uint64_t total_queries = rounds * num_tenants;
  const double qps = total_queries / seconds;

  std::printf("queries            %llu (%.0f/s)\n",
              static_cast<unsigned long long>(total_queries), qps);
  std::printf("snapshot latency   p50=%.0fns p95=%.0fns p99=%.0fns max=%lluns\n",
              snapshot_latency.P50Nanos(), snapshot_latency.P95Nanos(),
              snapshot_latency.P99Nanos(),
              static_cast<unsigned long long>(snapshot_latency.max_nanos()));
  std::printf("overload retries   %llu (rejected submissions %llu)\n",
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(metrics.submissions_rejected));
  std::printf("plan cache         %llu hits / %llu misses (rate %.3f)\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), cache.HitRate());
  std::printf("lost queries       %llu\n", static_cast<unsigned long long>(lost));

  std::string json;
  {
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"pr\": 9,\n"
        "  \"bench\": \"serve_multitenant\",\n"
        "  \"master_seed\": %llu,\n"
        "  \"num_tokens\": %zu,\n"
        "  \"tenants\": %zu,\n"
        "  \"rounds\": %llu,\n"
        "  \"samples_per_submit\": %llu,\n"
        "  \"hardware\": {\"cores\": %u},\n"
        "  \"max_regression_ratio\": 5.0,\n"
        "  \"queries\": %llu,\n"
        "  \"queries_per_sec\": %.1f,\n"
        "  \"snapshot_latency_ns\": {\"p50\": %.0f, \"p95\": %.0f, "
        "\"p99\": %.0f, \"max\": %llu, \"count\": %llu},\n"
        "  \"server\": {\"quanta\": %llu, \"samples_drawn\": %llu, "
        "\"converged_yields\": %llu, \"rejected\": %llu, \"retries\": %llu, "
        "\"lost\": %llu},\n"
        "  \"plan_cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"evictions\": %llu, \"hit_rate\": %.4f}\n"
        "}\n",
        static_cast<unsigned long long>(master), num_tokens, num_tenants,
        static_cast<unsigned long long>(rounds),
        static_cast<unsigned long long>(samples_per_submit),
        static_cast<unsigned>(std::thread::hardware_concurrency()),
        static_cast<unsigned long long>(total_queries), qps,
        snapshot_latency.P50Nanos(), snapshot_latency.P95Nanos(),
        snapshot_latency.P99Nanos(),
        static_cast<unsigned long long>(snapshot_latency.max_nanos()),
        static_cast<unsigned long long>(snapshot_latency.count()),
        static_cast<unsigned long long>(metrics.quanta_executed),
        static_cast<unsigned long long>(metrics.samples_drawn),
        static_cast<unsigned long long>(metrics.converged_yields),
        static_cast<unsigned long long>(metrics.submissions_rejected),
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(lost),
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.evictions), cache.HitRate());
    json = buf;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("%s", json.c_str());
  }
  return lost == 0 ? 0 : 1;
}
