// ShardPlan: how one world is split into shard-local chains.
//
// A plan names the partition (VarId → shard index), the shard count, and a
// factory for per-shard proposals. It is consumed by
// SharedChainEvaluator::EnableSharding, which builds one MetropolisHastings
// chain per shard over the SAME world (infer/shard_runner.h) and merges the
// shards' accepted-jump streams in fixed shard order into the one delta
// fan-out every view and statistic already consumes.
//
// The locality contract: sharding is only *exact* when no factor and no
// proposal crosses a part boundary. BuildShardPlan enforces the factor half
// by asking Model::FactorsRespectPartition and falling back to a single
// shard when the model declines (e.g. the cross-document pairwise
// affinities of EntityResolutionModel); the proposal half is the factory's
// responsibility (per-shard proposals must confine their moves to their
// shard — shard_runner checks this in debug builds).
#ifndef FGPDB_PDB_SHARD_PLAN_H_
#define FGPDB_PDB_SHARD_PLAN_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "factor/model.h"
#include "infer/proposal.h"

namespace fgpdb {
namespace pdb {

class ProbabilisticDatabase;

/// Threading knobs for shard-local stepping (how a plan runs, not what it
/// computes — results are bitwise-identical threaded or sequential).
struct ShardedExecution {
  bool use_threads = true;
  /// 0 = min(num_shards, hardware concurrency).
  size_t max_threads = 0;
};

struct ShardPlan {
  /// Produces the proposal for shard `shard` of a given world. Invoked once
  /// per shard per chain (replica chains under the parallel policy each
  /// build their own set, against their own COW snapshot). Must confine its
  /// proposals to the variables of `shard`'s part; with a single-shard plan
  /// (including every locality fallback) it is invoked only with shard 0
  /// and must cover the whole world.
  using ProposalFactory = std::function<std::unique_ptr<infer::Proposal>(
      ProbabilisticDatabase&, size_t shard)>;

  size_t num_shards = 1;
  /// VarId → shard index. Empty means single-shard (everything is shard 0).
  std::vector<uint32_t> partition;
  ProposalFactory make_proposal;

  /// A default-constructed ShardPlan (no factory) means "not sharded".
  bool has_plan() const { return static_cast<bool>(make_proposal); }
};

/// Validates `partition` against `model`'s locality contract and returns a
/// plan: `num_shards` shard-local chains when the model certifies that no
/// factor crosses the partition, otherwise the exact single-shard fallback
/// (one chain over the whole world — sharding silently degrades to the
/// serial trajectory rather than to an approximation).
inline ShardPlan BuildShardPlan(const factor::Model& model,
                                std::vector<uint32_t> partition,
                                size_t num_shards,
                                ShardPlan::ProposalFactory make_proposal) {
  ShardPlan plan;
  plan.make_proposal = std::move(make_proposal);
  if (num_shards > 1 && model.FactorsRespectPartition(partition)) {
    plan.num_shards = num_shards;
    plan.partition = std::move(partition);
  }
  return plan;
}

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_SHARD_PLAN_H_
