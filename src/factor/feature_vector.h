// Sparse feature vectors and the parameter (weight) store.
//
// Factors in log-linear models score as ψ(x,y) = exp(φ(x,y)·θ) (paper §3.1).
// Features are identified by 64-bit hashed ids; SampleRank (src/learn)
// updates weights through the same ids, so templates only have to emit
// feature deltas.
//
// Parameters carries a monotonically bumped version counter: every mutation
// moves it, so derived read-optimized structures (factor/compiled_weights.h)
// can cache aggressively and refresh lazily — SampleRank keeps training
// through the same Set/Update API and invalidation is automatic.
#ifndef FGPDB_FACTOR_FEATURE_VECTOR_H_
#define FGPDB_FACTOR_FEATURE_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/flat_map.h"
#include "util/hash.h"

namespace fgpdb {
namespace factor {

using FeatureId = uint64_t;

/// Feature id from a pre-hashed template-space name and up to three integer
/// roles. Hot call sites cache (or constant-fold) HashString(space) once
/// instead of re-hashing the string literal per feature id.
constexpr FeatureId MakeFeatureIdFromSpace(uint64_t space_hash, uint64_t a = 0,
                                           uint64_t b = 0, uint64_t c = 0) {
  uint64_t h = space_hash;
  h = HashCombine(h, Mix64(a ^ 0x9e3779b97f4a7c15ULL));
  h = HashCombine(h, Mix64(b ^ 0xc2b2ae3d27d4eb4fULL));
  h = HashCombine(h, Mix64(c ^ 0x165667b19e3779f9ULL));
  return h;
}

/// Stable feature id from a template name and up to three integer roles
/// (e.g. ("emission", string_id, label) or ("transition", from, to)).
constexpr FeatureId MakeFeatureId(std::string_view space, uint64_t a = 0,
                                  uint64_t b = 0, uint64_t c = 0) {
  return MakeFeatureIdFromSpace(HashString(space), a, b, c);
}

/// Sparse vector of (feature id, value); duplicate ids are allowed and are
/// summed by consumers.
class SparseVector {
 public:
  void Add(FeatureId id, double value) {
    if (value != 0.0) entries_.push_back({id, value});
  }

  void Clear() { entries_.clear(); }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Pre-sizes the entry buffer (capacity survives Clear, so a reused
  /// vector on the training loop stops reallocating after warm-up).
  void Reserve(size_t n) { entries_.reserve(n); }

  const std::vector<std::pair<FeatureId, double>>& entries() const {
    return entries_;
  }

  /// Appends all of `other` scaled by `scale` (e.g. -1 for "old" features).
  void AddScaled(const SparseVector& other, double scale) {
    entries_.reserve(entries_.size() + other.entries_.size());
    for (const auto& [id, value] : other.entries_) {
      Add(id, value * scale);
    }
  }

  /// Collapses duplicate ids in place (sums values, drops zeros). No
  /// allocation beyond the existing entry buffer.
  void Consolidate();

 private:
  std::vector<std::pair<FeatureId, double>> entries_;
};

/// Weight store θ. Reads of unknown features return 0 so models can be
/// scored before training. Backed by an open-addressed flat map, so even
/// the non-compiled paths (FeatureDelta dot products, SampleRank updates,
/// diagnostics) probe a contiguous table instead of chasing buckets.
class Parameters {
 public:
  Parameters() = default;

  // Copies transplant the weights but keep this object's version strictly
  // increasing, so compiled tables built against the previous weights are
  // correctly invalidated even if the source's counter happens to be low.
  Parameters(const Parameters& other)
      : weights_(other.weights_), version_(other.version_) {}
  Parameters& operator=(const Parameters& other) {
    if (this != &other) {
      weights_ = other.weights_;
      version_ = std::max(version_, other.version_) + 1;
    }
    return *this;
  }

  double Get(FeatureId id) const { return weights_.FindOr(id, 0.0); }

  void Set(FeatureId id, double value) {
    weights_.Set(id, value);
    ++version_;
  }

  void Update(FeatureId id, double delta) {
    weights_.Ref(id) += delta;
    ++version_;
  }

  /// θ += scale * features (a perceptron step).
  void UpdateSparse(const SparseVector& features, double scale);

  /// φ·θ.
  double Dot(const SparseVector& features) const;

  size_t size() const { return weights_.size(); }

  /// Pre-sizes the store for `n` features (bulk initialization).
  void Reserve(size_t n) { weights_.Reserve(n); }

  /// L2 norm of the weight vector (diagnostics).
  double Norm() const;

  /// Monotonic mutation counter: moves on every Set/Update/UpdateSparse
  /// and on copy-assignment. Equal versions imply unchanged weights.
  uint64_t version() const { return version_; }

 private:
  Flat64Map<double> weights_;
  uint64_t version_ = 1;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_FEATURE_VECTOR_H_
