// CoNLL entity labels in BIO encoding (paper §5.1 / Appendix 9.3).
//
// Nine labels: O plus B-/I- for PER, ORG, LOC, MISC. B-<T> begins a mention
// of type T, I-<T> continues one; I-<T> is only meaningful after B-<T> or
// I-<T> of the same type.
#ifndef FGPDB_IE_LABELS_H_
#define FGPDB_IE_LABELS_H_

#include <memory>
#include <string>
#include <vector>

#include "factor/domain.h"

namespace fgpdb {
namespace ie {

enum class EntityType { kNone = 0, kPer, kOrg, kLoc, kMisc };

inline constexpr size_t kNumLabels = 9;

/// Label indexes are stable: 0=O, then B-PER, I-PER, B-ORG, I-ORG, B-LOC,
/// I-LOC, B-MISC, I-MISC.
inline constexpr uint32_t kLabelO = 0;

/// Label name for an index ("O", "B-PER", ...).
const std::string& LabelName(uint32_t label);

/// Index for a label name; fatal on unknown names.
uint32_t LabelIndex(const std::string& name);

/// Entity type of a label (kNone for O).
EntityType LabelType(uint32_t label);

/// True for B-* labels.
bool IsBegin(uint32_t label);

/// True for I-* labels.
bool IsInside(uint32_t label);

/// B-label index for a type; fatal for kNone.
uint32_t BeginLabel(EntityType type);

/// I-label index for a type; fatal for kNone.
uint32_t InsideLabel(EntityType type);

/// True if `label` may follow `prev` under BIO semantics (I-<T> requires a
/// preceding B-<T> or I-<T>).
bool ValidTransition(uint32_t prev, uint32_t label);

/// The shared label domain (string values matching LabelName).
std::shared_ptr<const factor::Domain> LabelDomain();

/// All nine label names in index order.
const std::vector<std::string>& AllLabelNames();

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_LABELS_H_
