#include "pdb/query_evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "ra/executor.h"
#include "util/stopwatch.h"
#include "util/logging.h"

namespace fgpdb {
namespace pdb {

void QueryAnswer::ObserveSampleContaining(
    const std::vector<Tuple>& distinct_tuples) {
  for (const Tuple& t : distinct_tuples) ++counts_[t];
  ++num_samples_;
}

double QueryAnswer::Probability(const Tuple& tuple) const {
  if (num_samples_ == 0) return 0.0;
  const auto it = counts_.find(tuple);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(num_samples_);
}

std::vector<std::pair<Tuple, double>> QueryAnswer::Sorted() const {
  std::vector<std::pair<Tuple, double>> out;
  out.reserve(counts_.size());
  for (const auto& [tuple, count] : counts_) {
    out.emplace_back(tuple, static_cast<double>(count) /
                                static_cast<double>(num_samples_));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<Tuple, double>> QueryAnswer::TopK(size_t k) const {
  std::vector<std::pair<Tuple, double>> out = Sorted();
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void QueryAnswer::Merge(const QueryAnswer& other) {
  for (const auto& [tuple, count] : other.counts_) counts_[tuple] += count;
  num_samples_ += other.num_samples_;
}

double QueryAnswer::SquaredError(const QueryAnswer& truth) const {
  double total = 0.0;
  std::unordered_set<Tuple, TupleHasher> seen;
  for (const auto& [tuple, count] : counts_) {
    (void)count;
    const double d = Probability(tuple) - truth.Probability(tuple);
    total += d * d;
    seen.insert(tuple);
  }
  for (const auto& [tuple, count] : truth.counts_) {
    (void)count;
    if (seen.count(tuple) > 0) continue;
    const double d = truth.Probability(tuple);
    total += d * d;
  }
  return total;
}

void QueryEvaluator::Run(uint64_t n) {
  if (!initialized()) Initialize();
  for (uint64_t i = 0; i < n; ++i) DrawSample();
}

namespace {

std::vector<Tuple> DistinctTuples(const std::vector<Tuple>& bag) {
  std::unordered_set<Tuple, TupleHasher> seen;
  std::vector<Tuple> out;
  for (const Tuple& t : bag) {
    if (seen.insert(t).second) out.push_back(t);
  }
  return out;
}

}  // namespace

// --- Naive (Algorithm 3) ----------------------------------------------------

NaiveQueryEvaluator::NaiveQueryEvaluator(ProbabilisticDatabase* pdb,
                                         infer::Proposal* proposal,
                                         const ra::PlanNode* plan,
                                         EvaluatorOptions options)
    : pdb_(pdb), plan_(plan), options_(options) {
  FGPDB_CHECK(pdb_ != nullptr);
  FGPDB_CHECK(plan_ != nullptr);
  sampler_ = pdb_->MakeSampler(proposal, options_.seed);
}

void NaiveQueryEvaluator::Initialize() {
  FGPDB_CHECK(!initialized_);
  sampler_->Run(options_.burn_in);
  pdb_->DiscardDeltas();  // The naive path never consumes deltas.
  initialized_ = true;
}

void NaiveQueryEvaluator::DrawSample() {
  FGPDB_CHECK(initialized_);
  sampler_->Run(options_.steps_per_sample);
  pdb_->DiscardDeltas();
  // Full query over the sampled world — the expensive step Alg. 1 removes.
  answer_.ObserveSampleContaining(
      DistinctTuples(ra::Execute(*plan_, pdb_->db())));
}

std::vector<Tuple> NaiveQueryEvaluator::CurrentAnswerSet() const {
  return DistinctTuples(ra::Execute(*plan_, pdb_->db()));
}

// --- Materialized (Algorithm 1) ----------------------------------------------

MaterializedQueryEvaluator::MaterializedQueryEvaluator(
    ProbabilisticDatabase* pdb, infer::Proposal* proposal,
    const ra::PlanNode* plan, EvaluatorOptions options)
    : pdb_(pdb),
      options_(options),
      view_(*plan),
      steps_per_sample_(options.steps_per_sample) {
  FGPDB_CHECK(pdb_ != nullptr);
  sampler_ = pdb_->MakeSampler(proposal, options_.seed);
}

void MaterializedQueryEvaluator::Initialize() {
  FGPDB_CHECK(!initialized_);
  sampler_->Run(options_.burn_in);
  pdb_->DiscardDeltas();
  // The one exhaustive query over the initial world (Alg. 1 line 2).
  view_.Initialize(pdb_->db());
  initialized_ = true;
}

void MaterializedQueryEvaluator::DrawSample() {
  FGPDB_CHECK(initialized_);
  Stopwatch walk_timer;
  sampler_->Run(steps_per_sample_);
  const double walk_seconds = walk_timer.ElapsedSeconds();
  // Fold Δ−/Δ+ through the view instead of re-running the query
  // (Alg. 1 line 5: s ← s − Q'(w,Δ−) ∪ Q'(w,Δ+)). TakeDeltas drains the
  // row-granular accumulator into the reused buffer; Apply routes each
  // table's delta only to the subscribed subtrees.
  Stopwatch apply_timer;
  pdb_->TakeDeltas(&delta_buf_);
  view_.Apply(delta_buf_);
  last_apply_seconds_ = apply_timer.ElapsedSeconds();
  std::vector<Tuple> distinct;
  distinct.reserve(view_.contents().distinct_size());
  view_.contents().ForEach(
      [&](const Tuple& t, int64_t) { distinct.push_back(t); });
  answer_.ObserveSampleContaining(distinct);

  if (options_.adaptive_thinning) {
    // Steer the per-sample share of the routed delta path toward the
    // target: halve k when applying deltas is cheap relative to walking,
    // double it when expensive. Multiplicative updates keep the controller
    // stable under noisy timers.
    const double total = walk_seconds + last_apply_seconds_;
    if (total > 0.0) {
      const double fraction = last_apply_seconds_ / total;
      if (fraction < options_.target_eval_fraction / 2.0) {
        steps_per_sample_ = std::max(options_.min_steps_per_sample,
                                     steps_per_sample_ / 2);
      } else if (fraction > options_.target_eval_fraction * 2.0) {
        steps_per_sample_ = std::min(options_.max_steps_per_sample,
                                     steps_per_sample_ * 2);
      }
    }
  }
}

std::vector<Tuple> MaterializedQueryEvaluator::CurrentAnswerSet() const {
  std::vector<Tuple> distinct;
  view_.contents().ForEach(
      [&](const Tuple& t, int64_t) { distinct.push_back(t); });
  return distinct;
}

}  // namespace pdb
}  // namespace fgpdb
