// A Tuple is an ordered list of Values — one row of a relation, and also the
// unit tracked by the view-maintenance delta multisets.
#ifndef FGPDB_STORAGE_TUPLE_H_
#define FGPDB_STORAGE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "storage/value.h"

namespace fgpdb {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_.at(i); }
  Value& at(size_t i) { return values_.at(i); }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation of two tuples (used by joins / Cartesian products).
  static Tuple Concat(const Tuple& a, const Tuple& b);

  /// Projection onto the given column indexes.
  Tuple Project(const std::vector<size_t>& columns) const;

  /// Allocation-reusing projection for hot loops (view-maintenance key
  /// extraction): overwrites `out` with the projected values, keeping its
  /// vector capacity across calls.
  void ProjectInto(const std::vector<size_t>& columns, Tuple* out) const;

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

  bool operator==(const Tuple& other) const;
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  uint64_t Hash() const;

 private:
  std::vector<Value> values_;
};

struct TupleHasher {
  size_t operator()(const Tuple& t) const { return static_cast<size_t>(t.Hash()); }
};

}  // namespace fgpdb

#endif  // FGPDB_STORAGE_TUPLE_H_
