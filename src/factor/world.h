// World: a full assignment to the hidden variables — the paper's single
// possible world, mirrored into the relational database by the pdb layer.
#ifndef FGPDB_FACTOR_WORLD_H_
#define FGPDB_FACTOR_WORLD_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace fgpdb {
namespace factor {

using VarId = uint32_t;

/// One proposed variable re-assignment (new value index).
struct Assignment {
  VarId var = 0;
  uint32_t value = 0;
};

/// A hypothesized modification to the current world: the set of variables
/// the proposal touches, with their new values (old values live in World).
struct Change {
  std::vector<Assignment> assignments;

  bool empty() const { return assignments.empty(); }
  void Set(VarId var, uint32_t value) { assignments.push_back({var, value}); }
  /// Empties the change, keeping the assignment buffer's capacity — a
  /// proposal reusing one Change across millions of steps allocates once.
  void Clear() { assignments.clear(); }
};

/// An executed modification, with both old and new values — what the
/// database-synchronization listeners consume to build Δ−/Δ+.
struct AppliedAssignment {
  VarId var = 0;
  uint32_t old_value = 0;
  uint32_t new_value = 0;
};

class World {
 public:
  World() = default;
  explicit World(size_t num_variables) : values_(num_variables, 0) {}

  size_t size() const { return values_.size(); }

  /// Appends a variable initialized to `value`; returns its id.
  VarId Append(uint32_t value = 0) {
    values_.push_back(value);
    if (!shadow_.empty()) shadow_.push_back(static_cast<uint8_t>(value));
    return static_cast<VarId>(values_.size() - 1);
  }

  uint32_t Get(VarId var) const {
    FGPDB_CHECK_LT(var, values_.size());
    return values_[var];
  }

  void Set(VarId var, uint32_t value) {
    FGPDB_CHECK_LT(var, values_.size());
    values_[var] = value;
    // Write-through: the narrow shadow never lags the wide values, so a
    // scorer reading it mid-walk sees exactly the current assignment.
    if (!shadow_.empty()) shadow_[var] = static_cast<uint8_t>(value);
  }

  /// Maintains a dense uint8_t mirror of the assignment, written through on
  /// every Set/Apply. Models whose domains fit a byte (the 9 BIO labels)
  /// read neighbor/partner values at 4× the cache density of the uint32
  /// array — the step kernel's hot-block label lane. Every current value
  /// must fit in a byte; the caller guarantees all future values do too
  /// (the pdb layer enables this only for byte-sized domains). The shadow
  /// is part of the world's value: copies and snapshots carry their own.
  void EnableLabelShadow() {
    shadow_.resize(values_.size());
    for (size_t v = 0; v < values_.size(); ++v) {
      FGPDB_CHECK_LT(values_[v], 256u) << "label shadow needs byte domains";
      shadow_[v] = static_cast<uint8_t>(values_[v]);
    }
  }

  /// Drops the shadow (reference/ablation layout: scorers fall back to the
  /// uint32 array).
  void DisableLabelShadow() {
    shadow_.clear();
    shadow_.shrink_to_fit();
  }

  /// The narrow label lane, or nullptr when no shadow is attached. Entry v
  /// always equals Get(v) (write-through on Set).
  const uint8_t* label_shadow() const {
    return shadow_.empty() ? nullptr : shadow_.data();
  }

  bool has_label_shadow() const { return !shadow_.empty(); }

  /// Debug invariant: shadow and values agree on every variable. The step
  /// kernel asserts this after each mirror flush in debug builds.
  bool LabelShadowConsistent() const {
    if (shadow_.empty()) return true;
    if (shadow_.size() != values_.size()) return false;
    for (size_t v = 0; v < values_.size(); ++v) {
      if (shadow_[v] != values_[v]) return false;
    }
    return true;
  }

  /// Applies `change`, recording old values into `applied` (if non-null).
  void Apply(const Change& change,
             std::vector<AppliedAssignment>* applied = nullptr) {
    for (const auto& a : change.assignments) {
      const uint32_t old_value = Get(a.var);
      if (applied != nullptr) applied->push_back({a.var, old_value, a.value});
      Set(a.var, a.value);
    }
  }

  const std::vector<uint32_t>& values() const { return values_; }

 private:
  std::vector<uint32_t> values_;
  /// Optional narrow mirror of values_ (see EnableLabelShadow). Empty =
  /// detached. Copies naturally with the world, so COW/snapshot chains each
  /// carry their own shadow.
  std::vector<uint8_t> shadow_;
};

/// Read-only overlay of a Change on top of a World: what the hypothesized
/// world w' looks like without mutating w. Used to evaluate factors on both
/// sides of the MH acceptance ratio. Holds references only (no copy, no
/// allocation — this sits on the sampler's hot path); both the world and
/// the change must outlive the overlay.
class PatchedWorld {
 public:
  PatchedWorld(const World& base, const Change& change)
      : base_(base), change_(change) {}
  // The overlay must not outlive the change: reject temporaries outright.
  PatchedWorld(const World& base, Change&& change) = delete;

  uint32_t Get(VarId var) const {
    // Reverse scan: if a change assigns the same variable twice, the last
    // assignment wins, matching World::Apply's sequential semantics.
    // Linear scan: proposals touch few vars.
    const auto& patch = change_.assignments;
    for (auto it = patch.rbegin(); it != patch.rend(); ++it) {
      if (it->var == var) return it->value;
    }
    return base_.Get(var);
  }

 private:
  const World& base_;
  const Change& change_;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_WORLD_H_
