#include "ra/expr.h"

#include "util/logging.h"

namespace fgpdb {
namespace ra {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool Expr::EvalBool(const Tuple& tuple) const {
  Value scratch;
  const Value& v = *EvalInto(tuple, &scratch);
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return v.AsInt() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

Value Comparison::Eval(const Tuple& tuple) const {
  // EvalInto keeps column/constant operands by reference — no Value
  // (string) copies on the per-delta-tuple filtering path.
  Value lhs_scratch, rhs_scratch;
  const Value& a = *lhs_->EvalInto(tuple, &lhs_scratch);
  const Value& b = *rhs_->EvalInto(tuple, &rhs_scratch);
  // SQL three-valued logic collapsed to false on NULL operands.
  if (a.is_null() || b.is_null()) return Value::Int(0);
  const int c = a.Compare(b);
  bool result = false;
  switch (op_) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value::Int(result ? 1 : 0);
}

std::string Comparison::ToString() const {
  return "(" + lhs_->ToString() + " " + CompareOpName(op_) + " " +
         rhs_->ToString() + ")";
}

Value Logical::Eval(const Tuple& tuple) const {
  switch (op_) {
    case LogicalOp::kAnd:
      return Value::Int(lhs_->EvalBool(tuple) && rhs_->EvalBool(tuple) ? 1 : 0);
    case LogicalOp::kOr:
      return Value::Int(lhs_->EvalBool(tuple) || rhs_->EvalBool(tuple) ? 1 : 0);
    case LogicalOp::kNot:
      return Value::Int(lhs_->EvalBool(tuple) ? 0 : 1);
  }
  return Value::Int(0);
}

std::string Logical::ToString() const {
  switch (op_) {
    case LogicalOp::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case LogicalOp::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    case LogicalOp::kNot:
      return "(NOT " + lhs_->ToString() + ")";
  }
  return "?";
}

Value Arithmetic::Eval(const Tuple& tuple) const {
  Value lhs_scratch, rhs_scratch;
  const Value& a = *lhs_->EvalInto(tuple, &lhs_scratch);
  const Value& b = *rhs_->EvalInto(tuple, &rhs_scratch);
  if (a.is_null() || b.is_null()) return Value::Null();
  // Integer arithmetic when both sides are integers (except division).
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64 &&
      op_ != ArithmeticOp::kDiv) {
    switch (op_) {
      case ArithmeticOp::kAdd:
        return Value::Int(a.AsInt() + b.AsInt());
      case ArithmeticOp::kSub:
        return Value::Int(a.AsInt() - b.AsInt());
      case ArithmeticOp::kMul:
        return Value::Int(a.AsInt() * b.AsInt());
      default:
        break;
    }
  }
  const double x = a.AsNumeric();
  const double y = b.AsNumeric();
  switch (op_) {
    case ArithmeticOp::kAdd:
      return Value::Double(x + y);
    case ArithmeticOp::kSub:
      return Value::Double(x - y);
    case ArithmeticOp::kMul:
      return Value::Double(x * y);
    case ArithmeticOp::kDiv:
      return y == 0.0 ? Value::Null() : Value::Double(x / y);
  }
  return Value::Null();
}

std::string Arithmetic::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithmeticOp::kAdd:
      op = "+";
      break;
    case ArithmeticOp::kSub:
      op = "-";
      break;
    case ArithmeticOp::kMul:
      op = "*";
      break;
    case ArithmeticOp::kDiv:
      op = "/";
      break;
  }
  return "(" + lhs_->ToString() + " " + op + " " + rhs_->ToString() + ")";
}

Value Like::Eval(const Tuple& tuple) const {
  Value scratch;
  const Value& v = *operand_->EvalInto(tuple, &scratch);
  if (v.type() != ValueType::kString) return Value::Int(0);
  return Value::Int(Matches(v.AsString(), pattern_) ? 1 : 0);
}

bool Like::Matches(const std::string& text, const std::string& pattern) {
  // Iterative greedy match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

ExprPtr Col(size_t index, std::string name) {
  if (name.empty()) name = "$" + std::to_string(index);
  return std::make_unique<ColumnRef>(index, std::move(name));
}

ExprPtr Lit(Value value) { return std::make_unique<Constant>(std::move(value)); }

ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<Comparison>(CompareOp::kEq, std::move(lhs),
                                      std::move(rhs));
}

ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<Comparison>(op, std::move(lhs), std::move(rhs));
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<Logical>(LogicalOp::kAnd, std::move(lhs),
                                   std::move(rhs));
}

ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<Logical>(LogicalOp::kOr, std::move(lhs),
                                   std::move(rhs));
}

ExprPtr Not(ExprPtr operand) {
  return std::make_unique<Logical>(LogicalOp::kNot, std::move(operand), nullptr);
}

}  // namespace ra
}  // namespace fgpdb
