// Explicitly instantiated factor graph implementing the Model interface.
//
// Variable→factor adjacency makes LogScoreDelta local: only factors touching
// changed variables are evaluated, mirroring the cancellation in paper
// Appendix 9.2 (ZX and untouched factors cancel from the MH ratio).
#ifndef FGPDB_FACTOR_FACTOR_GRAPH_H_
#define FGPDB_FACTOR_FACTOR_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "factor/factor.h"
#include "factor/model.h"

namespace fgpdb {
namespace factor {

class FactorGraph : public Model {
 public:
  FactorGraph() = default;

  /// Adds a hidden variable over `domain` (shared; may be reused across
  /// variables). Returns its id, which indexes Worlds for this graph.
  VarId AddVariable(std::shared_ptr<const Domain> domain,
                    std::string name = "");

  /// Adds a factor; its variable ids must already exist.
  size_t AddFactor(std::unique_ptr<Factor> factor);

  size_t num_factors() const { return factors_.size(); }
  const Factor& factor(size_t i) const { return *factors_.at(i); }
  const Domain& domain(VarId var) const { return *domains_.at(var); }
  const std::string& name(VarId var) const { return names_.at(var); }

  /// Factor indexes touching `var`.
  const std::vector<uint32_t>& FactorsOf(VarId var) const {
    return factors_of_.at(var);
  }

  /// Creates a world with one slot per variable, all zeros.
  World MakeWorld() const { return World(num_variables()); }

  // --- Model ---------------------------------------------------------------
  /// Convenience overload backed by member scratch: allocation-free, but
  /// NOT safe for concurrent calls on a shared graph — concurrent callers
  /// must use the ScoreScratch overload with per-caller scratch.
  double LogScoreDelta(const World& world, const Change& change) const override;
  double LogScoreDelta(const World& world, const Change& change,
                       ScoreScratch* scratch) const override;
  std::unique_ptr<ScoreScratch> MakeScratch() const override;
  double LogScore(const World& world) const override;
  /// Exact answer from the explicit factor list: true iff no factor's
  /// argument set spans two parts of `partition`.
  bool FactorsRespectPartition(
      const std::vector<uint32_t>& partition) const override;
  size_t num_variables() const override { return domains_.size(); }
  size_t domain_size(VarId var) const override {
    return domains_.at(var)->size();
  }

 private:
  /// Reusable buffers for one LogScoreDelta call (touched-factor set and
  /// the two gathered argument tuples).
  struct Scratch final : ScoreScratch {
    std::vector<uint32_t> touched;
    std::vector<uint32_t> old_values;
    std::vector<uint32_t> new_values;
  };

  /// Gathers a factor's argument values from an accessor.
  template <typename GetFn>
  void GatherValues(const Factor& factor, const GetFn& get,
                    std::vector<uint32_t>* out) const {
    out->clear();
    for (VarId v : factor.variables()) out->push_back(get(v));
  }

  std::vector<std::shared_ptr<const Domain>> domains_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Factor>> factors_;
  std::vector<std::vector<uint32_t>> factors_of_;
  mutable Scratch member_scratch_;  // Backs the scratch-less overload.
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_FACTOR_GRAPH_H_
