// Exact marginal inference for linear-chain CRFs via forward–backward.
//
// The paper's skip-chain CRF is intractable (loopy), but its linear-chain
// reduction (emission + transition + bias only, paper §3.3) admits exact
// sum-product inference. Tests use this to validate MCMC on chains; the
// contrast "exact works on chains / only MCMC works on skip chains"
// reproduces the paper's motivation for sampling (§5).
#ifndef FGPDB_INFER_FORWARD_BACKWARD_H_
#define FGPDB_INFER_FORWARD_BACKWARD_H_

#include <cstddef>
#include <vector>

namespace fgpdb {
namespace infer {
using std::size_t;

struct ChainPotentials {
  /// node[t][y]: log score of label y at position t (emission + bias).
  std::vector<std::vector<double>> node;
  /// edge[y][y']: log score of transitioning y -> y' (position-independent).
  std::vector<std::vector<double>> edge;
};

struct ChainResult {
  double log_partition = 0.0;
  /// marginals[t][y] = P(Y_t = y).
  std::vector<std::vector<double>> marginals;
};

/// Runs forward–backward in log space. `potentials.node` must be non-empty
/// and rectangular; `edge` must be L x L for the same L.
ChainResult ForwardBackward(const ChainPotentials& potentials);

/// Viterbi decode (most probable label sequence) over the same potentials.
std::vector<size_t> ViterbiDecode(const ChainPotentials& potentials);

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_FORWARD_BACKWARD_H_
