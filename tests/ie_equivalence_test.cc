// Equivalence of the lazily-scored (templated) skip-chain model with an
// explicitly instantiated factor graph — the §3.3 "unrolling" correspondence
// — plus MCMC-vs-exact marginal convergence on a small document, which ties
// the whole inference stack to ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "factor/factor_graph.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "infer/exact.h"
#include "infer/marginal_estimator.h"
#include "infer/metropolis_hastings.h"

namespace fgpdb {
namespace {

// Builds the explicit factor graph corresponding to the templated model:
// unary (emission+bias) factors, chain transition factors, and skip factors,
// all reading the same Parameters store.
factor::FactorGraph UnrollModel(const ie::SkipChainNerModel& model,
                                const ie::TokenPdb& tokens) {
  factor::FactorGraph graph;
  auto domain = std::make_shared<factor::Domain>(
      factor::Domain::OfRange(static_cast<int64_t>(ie::kNumLabels)));
  const factor::Parameters& params = model.parameters();
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    graph.AddVariable(domain);
  }
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    const uint32_t sid = tokens.string_ids[v];
    graph.AddFactor(std::make_unique<factor::LambdaFactor>(
        std::vector<factor::VarId>{static_cast<factor::VarId>(v)},
        [&params, sid](const std::vector<uint32_t>& y) {
          return params.Get(factor::MakeFeatureId("emission", sid, y[0])) +
                 params.Get(factor::MakeFeatureId("bias", y[0]));
        }));
  }
  for (const auto& doc : tokens.docs) {
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
      graph.AddFactor(std::make_unique<factor::LambdaFactor>(
          std::vector<factor::VarId>{doc[i], doc[i + 1]},
          [&params](const std::vector<uint32_t>& y) {
            return params.Get(
                factor::MakeFeatureId("transition", y[0], y[1]));
          }));
    }
  }
  // Skip factors: one per unordered partner pair.
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    for (factor::VarId p : model.SkipPartners(static_cast<factor::VarId>(v))) {
      if (p <= v) continue;
      graph.AddFactor(std::make_unique<factor::LambdaFactor>(
          std::vector<factor::VarId>{static_cast<factor::VarId>(v), p},
          [&params](const std::vector<uint32_t>& y) {
            if (y[0] != y[1]) return 0.0;
            return params.Get(factor::MakeFeatureId("skip_same")) +
                   params.Get(
                       factor::MakeFeatureId("skip_same_label", y[0]));
          }));
    }
  }
  return graph;
}

struct SmallDoc {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit SmallDoc(size_t num_tokens, uint64_t seed = 23) {
    // One small document so exact inference stays feasible.
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = 1, .tokens_per_doc = 2 * num_tokens, .seed = seed});
    corpus.tokens.resize(std::min(corpus.tokens.size(), num_tokens));
    corpus.doc_ranges = {{0, corpus.tokens.size()}};
    corpus.num_docs = 1;
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens, /*skip_weight=*/0.8,
                                          /*emission_scale=*/1.0);
    tokens.pdb->set_model(model.get());
  }
};

TEST(ModelUnrollingTest, TemplatedAndExplicitScoresAgree) {
  SmallDoc doc(30);
  factor::FactorGraph graph = UnrollModel(*doc.model, doc.tokens);
  Rng rng(5);
  factor::World world(doc.tokens.num_tokens());
  for (int trial = 0; trial < 30; ++trial) {
    for (size_t v = 0; v < world.size(); ++v) {
      world.Set(static_cast<factor::VarId>(v),
                static_cast<uint32_t>(rng.UniformInt(ie::kNumLabels)));
    }
    ASSERT_NEAR(doc.model->LogScore(world), graph.LogScore(world), 1e-9)
        << "trial " << trial;
  }
}

TEST(ModelUnrollingTest, TemplatedAndExplicitDeltasAgree) {
  SmallDoc doc(30);
  factor::FactorGraph graph = UnrollModel(*doc.model, doc.tokens);
  Rng rng(7);
  factor::World world(doc.tokens.num_tokens());
  for (int trial = 0; trial < 60; ++trial) {
    factor::Change change;
    change.Set(
        static_cast<factor::VarId>(rng.UniformInt(doc.tokens.num_tokens())),
        static_cast<uint32_t>(rng.UniformInt(ie::kNumLabels)));
    ASSERT_NEAR(doc.model->LogScoreDelta(world, change),
                graph.LogScoreDelta(world, change), 1e-9);
    world.Apply(change);
  }
}

TEST(ModelUnrollingTest, McmcMatchesExactMarginalsOnTinyDocument) {
  // 6 label variables over 9 labels: 531441 worlds — brute-forceable.
  SmallDoc doc(6);
  factor::FactorGraph graph = UnrollModel(*doc.model, doc.tokens);
  const infer::ExactResult exact = infer::ExactInference(graph);

  ie::DocumentBatchProposal proposal(&doc.tokens.docs,
                                     {.proposals_per_batch = 1000000});
  auto sampler = doc.tokens.pdb->MakeSampler(&proposal, /*seed=*/11);
  infer::MarginalEstimator estimator(doc.tokens.pdb->binding().DomainSizes());
  sampler->Run(20000);
  for (int i = 0; i < 400000; ++i) {
    sampler->Step();
    if (i % 3 == 0) estimator.Observe(doc.tokens.pdb->world());
  }
  doc.tokens.pdb->DiscardDeltas();
  double max_err = 0.0;
  for (size_t v = 0; v < doc.tokens.num_tokens(); ++v) {
    for (uint32_t y = 0; y < ie::kNumLabels; ++y) {
      max_err = std::max(
          max_err,
          std::abs(estimator.Estimate(static_cast<factor::VarId>(v), y) -
                   exact.marginals[v][y]));
    }
  }
  EXPECT_LT(max_err, 0.02)
      << "sampler must converge to the unrolled graph's exact marginals";
}

TEST(ModelUnrollingTest, SkipEdgesCoupleLabels) {
  // The defining skip-chain behaviour: identical strings in a document pull
  // each other toward the same label. Compare the exact probability of
  // same-label configurations with and without skip factors.
  SmallDoc doc(6, /*seed=*/101);
  // Find a skip pair; if none, the corpus slice had no repeats — make one
  // artificially impossible: the test corpus is chosen to contain repeats.
  factor::VarId a = 0, b = 0;
  bool found = false;
  for (size_t v = 0; v < doc.tokens.num_tokens() && !found; ++v) {
    const auto& partners =
        doc.model->SkipPartners(static_cast<factor::VarId>(v));
    if (!partners.empty()) {
      a = static_cast<factor::VarId>(v);
      b = partners.front();
      found = true;
    }
  }
  if (!found) {
    GTEST_SKIP() << "corpus slice has no repeated capitalized strings";
  }
  auto same_label_probability = [&](bool use_skip) {
    ie::SkipChainNerModel model(doc.tokens, {.use_skip_edges = use_skip});
    model.parameters() = doc.model->parameters();
    factor::FactorGraph graph = UnrollModel(model, doc.tokens);
    const infer::ExactResult exact = infer::ExactInference(graph);
    // Sum over worlds where a and b agree.
    double p_same = 0.0;
    size_t index = 0;
    // Re-enumerate worlds in the same mixed-radix order as ExactInference.
    const size_t n = doc.tokens.num_tokens();
    std::vector<uint32_t> w(n, 0);
    while (true) {
      if (w[a] == w[b]) p_same += exact.world_probabilities[index];
      ++index;
      size_t i = n;
      bool done = true;
      while (i > 0) {
        --i;
        if (w[i] + 1 < ie::kNumLabels) {
          ++w[i];
          done = false;
          break;
        }
        w[i] = 0;
        if (i == 0) break;
      }
      if (done) break;
    }
    return p_same;
  };
  EXPECT_GT(same_label_probability(true), same_label_probability(false));
}

}  // namespace
}  // namespace fgpdb
