// Figure 4(b): normalized squared-error loss versus wall-clock time for the
// naive and materialized evaluators on Query 1 (paper: 1M tuples; default
// here 100k, scaled by FGPDB_BENCH_SCALE).
//
// Expected shape: both decrease ~monotonically (the any-time property); the
// materialized curve reaches near-zero before the naive curve halves.
// Also prints the DESIGN.md thinning ablation (the materialized evaluator's
// convergence for several k) and the adaptive run-until-error-bound rows:
// ExecutionPolicy::Until stopping on its own error estimate versus the same
// multi-chain evaluator provisioned with a conservative fixed sample count.
//
// Reproducibility: every stochastic stream (corpus, ground truth, each
// evaluator, each ablation row) derives from ONE master seed — settable via
// --seed=N or FGPDB_BENCH_SEED — through DeriveSeed. Rerunning with the
// printed seed reproduces every number bitwise.
#include <iostream>

#include "api/session.h"
#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

struct LossPoint {
  double seconds;
  double loss;
};

std::vector<LossPoint> LossCurve(pdb::QueryEvaluator& evaluator,
                                 const pdb::QueryAnswer& truth,
                                 uint64_t samples) {
  std::vector<LossPoint> curve;
  Stopwatch timer;
  evaluator.Initialize();
  for (uint64_t i = 0; i < samples; ++i) {
    evaluator.DrawSample();
    curve.push_back({timer.ElapsedSeconds(),
                     evaluator.answer().SquaredError(truth)});
  }
  return curve;
}

// Largest |p̂(t) − truth(t)| over the union of both answers' tuples — the
// per-tuple accuracy the until() bound advertises.
double MaxMarginalGap(const pdb::QueryAnswer& a, const pdb::QueryAnswer& b) {
  double gap = 0.0;
  for (const auto& [tuple, p] : a.Sorted()) {
    gap = std::max(gap, std::abs(p - b.Probability(tuple)));
  }
  for (const auto& [tuple, p] : b.Sorted()) {
    gap = std::max(gap, std::abs(p - a.Probability(tuple)));
  }
  return gap;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = static_cast<size_t>(100000 * BenchScale());
  const uint64_t k = std::max<uint64_t>(100, n / 1000);
  const uint64_t samples = 200;
  const uint64_t master = MasterSeed(argc, argv);
  const uint64_t corpus_seed = DeriveSeed(master, 0);
  const uint64_t truth_seed = DeriveSeed(master, 1);
  const uint64_t curve_seed = DeriveSeed(master, 2);
  const uint64_t ablation_seed = DeriveSeed(master, 3);

  std::cout << "=== Figure 4(b): loss vs time, Query 1, "
            << HumanCount(static_cast<double>(n))
            << " tuples (master seed " << master << ") ===\n\n";
  NerBench bench(n, corpus_seed);
  const auto make_proposal =
      [&bench](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
    return bench.MakeProposal();
  };

  // Ground truth: 8 independent post-burn-in chains at near-independence
  // thinning (2 proposals per token between samples), 400 samples each —
  // 3200 near-i.i.d. draws make the truth's AGGREGATE loss metric far
  // tighter than any curve compared against it. (Individual multimodal
  // tuples are a different story: their per-tuple error is set by the
  // cross-chain spread, ~0.5/sqrt(8) — which is why the adaptive section
  // below measures per-tuple gaps against a 256-chain reference instead.)
  Stopwatch truth_timer;
  auto truth_session = api::Session::Open(
      {.database = bench.tokens.pdb.get(),
       .proposal_factory = make_proposal,
       .evaluator = {.steps_per_sample = 2 * n,
                     .burn_in = DefaultBurnIn(n),
                     .seed = truth_seed},
       .policy = api::ExecutionPolicy::Parallel(8)});
  api::ResultHandle truth_handle = truth_session->Register(ie::kQuery1);
  truth_session->Run(400);
  const pdb::QueryAnswer truth = truth_handle.Snapshot().answer;
  std::cout << "(ground truth: 8 chains x 400 samples, "
            << FormatDouble(truth_timer.ElapsedSeconds(), 2) << "s)\n\n";

  const pdb::EvaluatorOptions options{.steps_per_sample = k, .burn_in = 0,
                                      .seed = curve_seed};
  auto world_naive = bench.tokens.pdb->Clone();
  ra::PlanPtr plan_naive = sql::PlanQuery(ie::kQuery1, world_naive->db());
  auto prop_naive = bench.MakeProposal();
  pdb::NaiveQueryEvaluator naive(world_naive.get(), prop_naive.get(),
                                 plan_naive.get(), options);
  const auto naive_curve = LossCurve(naive, truth, samples);

  auto world_mat = bench.tokens.pdb->Clone();
  ra::PlanPtr plan_mat = sql::PlanQuery(ie::kQuery1, world_mat->db());
  auto prop_mat = bench.MakeProposal();
  pdb::MaterializedQueryEvaluator materialized(world_mat.get(), prop_mat.get(),
                                               plan_mat.get(), options);
  const auto mat_curve = LossCurve(materialized, truth, samples);

  const double norm = std::max(naive_curve.front().loss, 1e-12);
  TablePrinter table({"sample", "naive time (s)", "naive loss (norm)",
                      "mat time (s)", "mat loss (norm)"});
  for (uint64_t i = 0; i < samples; i += 10) {
    table.AddRow({std::to_string(i + 1),
                  FormatDouble(naive_curve[i].seconds, 4),
                  FormatDouble(naive_curve[i].loss / norm, 4),
                  FormatDouble(mat_curve[i].seconds, 4),
                  FormatDouble(mat_curve[i].loss / norm, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);

  std::cout << "\nTotal wall-clock for " << samples
            << " samples: naive " << FormatDouble(naive_curve.back().seconds, 4)
            << "s vs materialized "
            << FormatDouble(mat_curve.back().seconds, 4) << "s ("
            << FormatDouble(
                   naive_curve.back().seconds / mat_curve.back().seconds, 3)
            << "x)\n";

  // --- Adaptive: run-until-error-bound vs the fixed sample count -----------
  // A production stopping rule only makes sense on mixed, decorrelated
  // chains, so this comparison runs post-burn-in at near-independence
  // thinning (2 proposals per token between samples) on the §5.4
  // multi-chain evaluator: B independent chains feed the cross-chain error
  // estimator. (At the figure's light thinning the per-tuple indicator
  // streams flip far too rarely for a few hundred samples to certify a
  // bound — which the estimators correctly report by never converging; run
  // with --seed to reproduce that regime at k.) The fixed baseline is the
  // same evaluator provisioned the way one provisions WITHOUT error bars: a
  // conservative guessed count. until() spends samples until its own bound
  // is met, escalating the chain count while it is not.
  const size_t base_chains = 4;
  const size_t fixed_chains = 256;  // 2x the default escalation cap's 128
  const uint64_t samples_per_round = 32;
  const uint64_t fixed_total = fixed_chains * samples_per_round;
  const pdb::EvaluatorOptions ad_options{.steps_per_sample = 2 * n,
                                         .burn_in = DefaultBurnIn(n),
                                         .seed = curve_seed};

  // The exhaustive reference: one round of 256 chains (no escalation), with
  // the same estimator tracking so it reports its own half-width — the
  // honest comparison band for the adaptive answers.
  api::ExecutionPolicy fixed_policy =
      api::ExecutionPolicy::Until(0.95, /*eps=*/1e-9, fixed_chains);
  fixed_policy.max_escalations = 0;
  auto fixed_session = api::Session::Open(
      {.database = bench.tokens.pdb.get(),
       .proposal_factory = make_proposal,
       .evaluator = ad_options,
       .policy = fixed_policy});
  api::ResultHandle fixed_handle = fixed_session->Register(ie::kQuery1);
  Stopwatch fixed_timer;
  fixed_session->Run(fixed_total);
  const double fixed_seconds = fixed_timer.ElapsedSeconds();
  const api::QueryProgress fixed_progress = fixed_handle.Snapshot();

  std::cout << "\n=== Adaptive: until(0.95, eps) vs fixed " << fixed_total
            << " samples (" << fixed_chains << " chains x "
            << samples_per_round
            << ", burn-in + near-independence thinning) ===\n";
  TablePrinter adaptive_table({"eps", "samples", "of fixed", "rounds",
                               "chains", "seconds", "converged",
                               "half-width", "max |p-fixed|", "loss (norm)"});
  for (const double eps : {0.10, 0.05}) {
    auto session = api::Session::Open(
        {.database = bench.tokens.pdb.get(),
         .proposal_factory = make_proposal,
         .evaluator = ad_options,
         .policy = api::ExecutionPolicy::Until(0.95, eps, base_chains)});
    api::ResultHandle handle = session->Register(ie::kQuery1);
    Stopwatch timer;
    session->Run(fixed_total);  // budget: never draw more than the fixed run
    const double seconds = timer.ElapsedSeconds();
    const api::QueryProgress progress = handle.Snapshot();
    adaptive_table.AddRow(
        {FormatDouble(eps, 2), std::to_string(progress.samples),
         FormatDouble(static_cast<double>(progress.samples) /
                          static_cast<double>(fixed_total), 3),
         std::to_string(progress.rounds), std::to_string(progress.chains),
         FormatDouble(seconds, 4), progress.converged ? "yes" : "no",
         FormatDouble(progress.max_half_width, 4),
         FormatDouble(MaxMarginalGap(progress.answer, fixed_progress.answer),
                      4),
         FormatDouble(progress.answer.SquaredError(truth) / norm, 4)});
  }
  adaptive_table.Print(std::cout);
  std::cout << "fixed-" << fixed_total << " reference: "
            << FormatDouble(fixed_seconds, 4) << "s, own half-width "
            << FormatDouble(fixed_progress.max_half_width, 4)
            << ", max |p-truth| "
            << FormatDouble(MaxMarginalGap(fixed_progress.answer, truth), 4)
            << ", loss (norm) "
            << FormatDouble(fixed_progress.answer.SquaredError(truth) / norm,
                            4)
            << "\n"
            << "(the per-tuple bound held when max |p-fixed| <= eps + the "
               "reference's own half-width; multimodal tuples put a floor "
               "under both sides' spread that only chain count lowers)\n";

  // --- Ablation: thinning interval k (DESIGN.md) ---------------------------
  std::cout << "\n=== Ablation: thinning interval k (materialized) ===\n";
  TablePrinter ablation({"k", "samples to half error", "seconds"});
  for (uint64_t k_ab : {k / 4, k, k * 4}) {
    if (k_ab == 0) continue;
    auto world = bench.tokens.pdb->Clone();
    ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, world->db());
    auto proposal = bench.MakeProposal();
    pdb::MaterializedQueryEvaluator evaluator(
        world.get(), proposal.get(), plan.get(),
        {.steps_per_sample = k_ab, .burn_in = 0, .seed = ablation_seed});
    Stopwatch timer;
    evaluator.Initialize();
    evaluator.DrawSample();
    const double target = evaluator.answer().SquaredError(truth) / 2.0;
    uint64_t used = 1;
    while (used < 2000 &&
           evaluator.answer().SquaredError(truth) > target) {
      evaluator.DrawSample();
      ++used;
    }
    ablation.AddRow({std::to_string(k_ab), std::to_string(used),
                     FormatDouble(timer.ElapsedSeconds(), 4)});
  }
  ablation.Print(std::cout);
  std::cout << "\nPaper shape check: both evaluators trace the same "
               "monotonically decreasing (any-time) loss curve — they draw "
               "identical samples — but the materialized evaluator finishes "
               "the trajectory an order of magnitude sooner in wall-clock; "
               "larger k needs fewer samples (more independent) at more walk "
               "time per sample. The adaptive rows stop the SAME chain when "
               "the batched-means bound is met instead of at a guessed count.\n";
  return 0;
}
