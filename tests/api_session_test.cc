// api::Session basics: prepared-query cache identity, SQL normalization,
// execution-policy parity, progress handles, and base-world isolation.
#include <gtest/gtest.h>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"

namespace fgpdb {
namespace {

struct NerFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit NerFixture(size_t num_tokens, uint64_t seed = 31) {
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 60, .seed = seed});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  pdb::ProposalFactory MakeFactory() {
    return [this](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
      return std::make_unique<ie::DocumentBatchProposal>(
          &tokens.docs, ie::NerProposalOptions{.proposals_per_batch = 300});
    };
  }

  std::unique_ptr<api::Session> OpenSession(
      pdb::EvaluatorOptions evaluator = {.steps_per_sample = 100, .seed = 4},
      api::ExecutionPolicy policy = {}) {
    return api::Session::Open({.database = tokens.pdb.get(),
                               .proposal_factory = MakeFactory(),
                               .evaluator = evaluator,
                               .policy = policy});
  }
};

TEST(SqlNormalizationTest, CollapsesWhitespaceAndKeywordCase) {
  EXPECT_EQ(api::Session::NormalizeSql("select *   from TOKEN\n where X=1"),
            api::Session::NormalizeSql("SELECT * FROM TOKEN WHERE X = 1"));
}

TEST(SqlNormalizationTest, PreservesStringLiteralsVerbatim) {
  EXPECT_NE(api::Session::NormalizeSql("SELECT X FROM T WHERE S = 'a b'"),
            api::Session::NormalizeSql("SELECT X FROM T WHERE S = 'A B'"));
  // Embedded quotes survive the round trip.
  EXPECT_EQ(api::Session::NormalizeSql("SELECT X FROM T WHERE S = 'it''s'"),
            "SELECT X FROM T WHERE S = 'it''s'");
}

TEST(SqlNormalizationTest, CanonicalizesOperatorSpelling) {
  EXPECT_EQ(api::Session::NormalizeSql("SELECT X FROM T WHERE X != 1"),
            api::Session::NormalizeSql("SELECT X FROM T WHERE X <> 1"));
}

TEST(SessionTest, PrepareCachesByNormalizedText) {
  NerFixture fixture(200);
  auto session = fixture.OpenSession();
  api::PreparedQueryPtr a = session->Prepare(ie::kQuery1);
  api::PreparedQueryPtr b =
      session->Prepare("select STRING from TOKEN\nwhere LABEL = 'B-PER'");
  EXPECT_EQ(a.get(), b.get()) << "same normalized text must share the plan";
  EXPECT_EQ(session->prepared_cache_size(), 1u);
  api::PreparedQueryPtr c = session->Prepare(ie::kQuery2);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(session->prepared_cache_size(), 2u);
}

TEST(SessionTest, RegisterSamePreparedTwiceGivesIndependentSlots) {
  NerFixture fixture(200);
  auto session = fixture.OpenSession();
  api::PreparedQueryPtr q = session->Prepare(ie::kQuery1);
  api::ResultHandle h1 = session->Register(q);
  api::ResultHandle h2 = session->Register(q);
  EXPECT_NE(h1.slot(), h2.slot());
  session->Run(5);
  // Same plan on the same chain: identical answers, separate bookkeeping.
  EXPECT_EQ(h1.Snapshot().answer.SquaredError(h2.Snapshot().answer), 0.0);
}

TEST(SessionTest, SnapshotReportsProgressMidRun) {
  NerFixture fixture(200);
  auto session = fixture.OpenSession({.steps_per_sample = 100, .seed = 8});
  api::ResultHandle handle = session->Register(ie::kQuery1);
  EXPECT_EQ(handle.Snapshot().samples, 0u);
  session->Run(3);
  api::QueryProgress p = handle.Snapshot();
  EXPECT_EQ(p.samples, 3u);
  EXPECT_EQ(p.steps_per_sample, 100u);
  EXPECT_GT(p.acceptance_rate, 0.0);
  session->Run(2);
  EXPECT_EQ(handle.Snapshot().samples, 5u);
}

TEST(SessionTest, BaseDatabaseIsNeverMutated) {
  NerFixture fixture(200);
  std::vector<uint32_t> before;
  for (size_t v = 0; v < fixture.tokens.num_tokens(); ++v) {
    before.push_back(
        fixture.tokens.pdb->world().Get(static_cast<factor::VarId>(v)));
  }
  auto session = fixture.OpenSession();
  session->Register(ie::kQuery1);
  session->Run(10);
  for (size_t v = 0; v < fixture.tokens.num_tokens(); ++v) {
    ASSERT_EQ(fixture.tokens.pdb->world().Get(static_cast<factor::VarId>(v)),
              before[v])
        << "session sampling leaked into the base world at var " << v;
  }
  EXPECT_EQ(fixture.tokens.pdb->pending_rows_touched(), 0u);
}

TEST(SessionTest, NaivePolicyMatchesSerialPolicyExactly) {
  // Alg. 3 and Alg. 1 on identical chains must agree — the paper's Fig. 4
  // premise, now expressed as an execution-policy swap on the same API.
  NerFixture fixture(300);
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 200, .burn_in = 400, .seed = 123};
  auto serial = fixture.OpenSession(options);
  auto naive = fixture.OpenSession(options, api::ExecutionPolicy::Naive());
  api::ResultHandle hs = serial->Register(ie::kQuery2);
  api::ResultHandle hn = naive->Register(ie::kQuery2);
  serial->Run(15);
  naive->Run(15);
  EXPECT_EQ(hs.Snapshot().answer.SquaredError(hn.Snapshot().answer), 0.0);
}

TEST(SessionTest, ParallelPolicyMergesAcrossRunEpochs) {
  NerFixture fixture(200);
  auto session = fixture.OpenSession(
      {.steps_per_sample = 100, .burn_in = 200, .seed = 6},
      api::ExecutionPolicy::Parallel(2));
  api::ResultHandle handle = session->Register(ie::kQuery1);
  session->Run(5);
  EXPECT_EQ(handle.Snapshot().samples, 2u * 5u);
  session->Run(5);
  EXPECT_EQ(handle.Snapshot().samples, 2u * 10u);
  EXPECT_GT(handle.Snapshot().acceptance_rate, 0.0);
}

TEST(SessionTest, PreparedQueriesSurviveAcrossPolicies) {
  NerFixture fixture(200);
  auto session = fixture.OpenSession(
      {.steps_per_sample = 50, .seed = 2},
      api::ExecutionPolicy::Parallel(2, /*max_threads=*/1));
  api::ResultHandle handle = session->Register(session->Prepare(ie::kQuery3));
  session->Run(4);
  EXPECT_EQ(handle.query()->normalized_sql(),
            api::Session::NormalizeSql(ie::kQuery3));
  EXPECT_GT(handle.Snapshot().samples, 0u);
}

}  // namespace
}  // namespace fgpdb
