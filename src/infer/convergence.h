// Monte-Carlo error estimation for run-until-error-bound inference.
//
// The paper evaluates inference as loss-versus-time (fig 4b); the production
// stopping rule that curve implies is "the marginal is within ±ε at the
// requested confidence", not a fixed sample count. The three estimators here
// supply the standard errors that rule needs:
//
//   WelfordAccumulator      — running mean/variance of an i.i.d. stream
//                             (one pass, no stored samples). Used for
//                             cross-chain means, where chains ARE
//                             independent by construction.
//   BatchedMeansAccumulator — standard error of the mean of a CORRELATED
//                             stream (successive thinned MCMC samples from
//                             one chain). Classic batched means: group the
//                             stream into contiguous batches, treat batch
//                             means as approximately independent, and double
//                             the batch size whenever the fixed-size batch
//                             table fills, so autocorrelation at any lag is
//                             eventually buried inside a batch.
//   ZForConfidence          — two-sided normal critical value, turning a
//                             standard error into a half-width.
//
// All state is fixed-size (the batch table is a std::array): per-observation
// updates never allocate, per the compiled-scoring scratch discipline.
// Everything is a pure function of the observation stream — no clocks, no
// global RNG — so stopping decisions driven by these values are exactly
// reproducible at a fixed seed.
#ifndef FGPDB_INFER_CONVERGENCE_H_
#define FGPDB_INFER_CONVERGENCE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace fgpdb {
namespace infer {

/// Two-sided normal critical value: the z with
/// P(|N(0,1)| <= z) = confidence. Requires confidence in (0, 1).
/// ZForConfidence(0.95) ≈ 1.9600, ZForConfidence(0.99) ≈ 2.5758.
double ZForConfidence(double confidence);

/// One-pass running mean and (sample) variance — Welford's update. Exact in
/// the usual numerically-stable sense; O(1) state, never allocates.
class WelfordAccumulator {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Folds `n` zero observations in closed form (merging a zero-mean,
  /// zero-variance group of size n): equivalent to n Add(0) calls up to
  /// rounding, in O(1).
  void AddZeros(uint64_t n) {
    if (n == 0) return;
    const double k = static_cast<double>(count_);
    const double m = static_cast<double>(n);
    m2_ += mean_ * mean_ * k * m / (k + m);
    mean_ = mean_ * k / (k + m);
    count_ += n;
  }

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance (n−1 denominator); 0 with fewer than two
  /// observations.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  /// Standard error of the mean under independence: sqrt(variance / n).
  /// +inf with fewer than two observations (no information about spread).
  double StandardError() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Standard error of the mean of a correlated stream by batched means.
///
/// The stream is grouped into contiguous batches of `batch_size()`
/// observations; when all kMaxBatches slots fill, adjacent batches merge
/// pairwise and the batch size doubles. With b large relative to the
/// stream's autocorrelation time the batch means are approximately
/// independent, so
///
///   SE(mean) ≈ sqrt( Var(batch means) / #complete batches ).
///
/// Only complete batches enter the variance; the trailing partial batch
/// contributes to the overall mean but not to the spread estimate.
/// StandardError() returns +inf until kMinBatchesForEstimate batches are
/// complete — "no bound yet" rather than an overconfident one.
class BatchedMeansAccumulator {
 public:
  static constexpr size_t kMaxBatches = 64;
  static constexpr size_t kMinBatchesForEstimate = 8;

  void Add(double x);

  /// Folds `n` zero observations (an indicator stream's absences) without
  /// per-observation work beyond batch boundaries: whole zero batches are
  /// emitted directly.
  void AddZeros(uint64_t n);

  uint64_t count() const { return count_; }

  /// Mean of ALL observations (including the trailing partial batch).
  double mean() const {
    return count_ == 0 ? 0.0 : total_sum_ / static_cast<double>(count_);
  }

  /// Batched-means standard error of mean(); +inf until enough complete
  /// batches exist.
  double StandardError() const;

  uint64_t batch_size() const { return batch_size_; }
  size_t num_complete_batches() const { return num_batches_; }

 private:
  /// Closes the current batch into the table, collapsing pairs when full.
  void FlushBatch();

  std::array<double, kMaxBatches> batch_sums_{};  // complete batches
  size_t num_batches_ = 0;
  uint64_t batch_size_ = 1;
  double current_sum_ = 0.0;   // trailing partial batch
  uint64_t current_fill_ = 0;
  double total_sum_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_CONVERGENCE_H_
