// String interner: token strings -> dense ids, shared by the corpus
// generator and the NER feature templates (emission features key on the
// interned id, not the raw string).
#ifndef FGPDB_IE_VOCABULARY_H_
#define FGPDB_IE_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace fgpdb {
namespace ie {

class Vocabulary {
 public:
  /// Returns the id of `token`, interning it if new.
  uint32_t Intern(const std::string& token) {
    const auto it = ids_.find(token);
    if (it != ids_.end()) return it->second;
    const uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.push_back(token);
    ids_.emplace(token, id);
    return id;
  }

  /// Id of `token` if already interned; fatal otherwise.
  uint32_t Require(const std::string& token) const {
    const auto it = ids_.find(token);
    FGPDB_CHECK(it != ids_.end()) << "unknown token " << token;
    return it->second;
  }

  /// True if `token` is interned.
  bool Contains(const std::string& token) const {
    return ids_.count(token) > 0;
  }

  const std::string& String(uint32_t id) const { return strings_.at(id); }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_VOCABULARY_H_
