// Randomized property tests for the storage primitives: hash/equality
// consistency of values and tuples, comparison total-order axioms, and
// table index invariants under random DML — the substrate everything above
// (delta multisets, view states, marginal maps) keys on.
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/database.h"
#include "util/rng.h"

namespace fgpdb {
namespace {

Value RandomValue(Rng& rng) {
  switch (rng.UniformInt(4u)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Int(rng.UniformInt(-5, 5));
    case 2:
      // Half-integral doubles exercise the cross-type equality path.
      return Value::Double(static_cast<double>(rng.UniformInt(-10, 10)) / 2.0);
    default: {
      static const std::vector<std::string> kStrings = {"", "a", "b", "ab",
                                                        "B-PER", "x"};
      return Value::String(kStrings[rng.UniformInt(kStrings.size())]);
    }
  }
}

class ValuePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ValuePropertyTest, HashRespectsEquality) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 300; ++i) {
    const Value a = RandomValue(rng);
    const Value b = RandomValue(rng);
    if (a == b) {
      ASSERT_EQ(a.Hash(), b.Hash())
          << a.ToString() << " == " << b.ToString() << " but hashes differ";
    }
  }
}

TEST_P(ValuePropertyTest, CompareIsATotalOrder) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 200; ++i) {
    const Value a = RandomValue(rng);
    const Value b = RandomValue(rng);
    const Value c = RandomValue(rng);
    // Antisymmetry.
    ASSERT_EQ(a.Compare(b), -b.Compare(a));
    // Reflexivity.
    ASSERT_EQ(a.Compare(a), 0);
    // Transitivity of <=.
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      ASSERT_LE(a.Compare(c), 0)
          << a.ToString() << " <= " << b.ToString() << " <= " << c.ToString();
    }
  }
}

TEST_P(ValuePropertyTest, TupleHashAndOrderConsistent) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> va, vb;
    const size_t arity = rng.UniformInt(4u);
    for (size_t k = 0; k < arity; ++k) {
      va.push_back(RandomValue(rng));
      vb.push_back(rng.Bernoulli(0.5) ? va.back() : RandomValue(rng));
    }
    const Tuple a(va);
    const Tuple b(vb);
    if (a == b) {
      ASSERT_EQ(a.Hash(), b.Hash());
      ASSERT_FALSE(a < b);
      ASSERT_FALSE(b < a);
    } else {
      ASSERT_TRUE((a < b) != (b < a)) << "exactly one must order first";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValuePropertyTest, ::testing::Range(1, 6));

TEST(TableInvariantTest, IndexesStayConsistentUnderRandomDml) {
  Database db;
  Schema schema(
      {
          Attribute{"ID", ValueType::kInt64},
          Attribute{"K", ValueType::kInt64},
      },
      0);
  Table* table = db.CreateTable("T", std::move(schema));
  table->CreateIndex(1);
  Rng rng(99);
  std::vector<RowId> live;
  int64_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    const double r = rng.Uniform();
    if (r < 0.45 || live.empty()) {
      live.push_back(table->Insert(
          Tuple{Value::Int(next_id++),
                Value::Int(static_cast<int64_t>(rng.UniformInt(6u)))}));
    } else if (r < 0.8) {
      const RowId row = live[rng.UniformInt(live.size())];
      table->UpdateField(row, 1,
                         Value::Int(static_cast<int64_t>(rng.UniformInt(6u))));
    } else {
      const size_t pick = rng.UniformInt(live.size());
      table->Delete(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  // Invariant: for every key value, the index postings equal the scan.
  for (int64_t key = 0; key < 6; ++key) {
    std::vector<RowId> from_scan;
    table->Scan([&](RowId row, const Tuple& t) {
      if (t.at(1) == Value::Int(key)) from_scan.push_back(row);
    });
    auto from_index = table->IndexLookup(1, Value::Int(key));
    std::sort(from_scan.begin(), from_scan.end());
    std::sort(from_index.begin(), from_index.end());
    ASSERT_EQ(from_scan, from_index) << "index drift for key " << key;
  }
  // Primary-key index covers exactly the live rows.
  table->Scan([&](RowId row, const Tuple& t) {
    ASSERT_EQ(table->LookupByKey(t.at(0)), row);
  });
  EXPECT_EQ(table->size(), live.size());
}

}  // namespace
}  // namespace fgpdb
