// Typed cell values for the relational engine.
//
// A Value is one of NULL, INT64, DOUBLE, or STRING. Fields of uncertain
// relations (paper §3.2) hold Values whose attribute domain doubles as the
// domain of the corresponding random variable.
#ifndef FGPDB_STORAGE_VALUE_H_
#define FGPDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "util/hash.h"

namespace fgpdb {

enum class ValueType : uint8_t { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

/// Human-readable type name ("NULL", "INT64", ...).
const char* ValueTypeName(ValueType type);

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const { return static_cast<ValueType>(data_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors; the caller must know the type (checked in debug builds via
  /// std::get's exception on mismatch).
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: INT64 and DOUBLE both convert; anything else is an error.
  double AsNumeric() const;

  /// SQL-style rendering; strings are quoted.
  std::string ToString() const;

  /// Total order across types (NULL < INT64/DOUBLE < STRING); numeric types
  /// compare by value so Int(2) == Double(2.0).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

}  // namespace fgpdb

#endif  // FGPDB_STORAGE_VALUE_H_
