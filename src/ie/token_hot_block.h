// The cache-resident per-token working set of the §5.1 step kernel.
//
// One MH proposal over the TOKEN relation touches a handful of per-token
// fields: the token's string id (node-table row selection), its sequence
// neighbors (transition factors), and its skip partners (the loopy factors).
// Stored as separate allocations — a string-id vector here, prev/next
// vectors there, a vector-of-vectors of partners with one heap node per
// token — a single proposal chases 4–6 unrelated cache lines, and at
// corpus scale the step cost is dominated by those misses, not compute.
//
// TokenHotBlock packs the hot fields into two cache-line-aligned flat
// arrays:
//
//   records[v]  — one 16-byte record per token {string id, prev, next,
//                 skip-CSR offset}; four records per 64-byte line, so the
//                 whole scalar working set of a proposal is ONE line.
//   skip_partners — the flattened partner lists in CSR form: token v's
//                 partners are skip_partners[records[v].skip_begin ..
//                 records[v+1].skip_begin), each span sorted ascending
//                 (the summation-order contract of the compiled scorer).
//                 records has num_tokens()+1 entries; the sentinel record
//                 carries the terminal CSR offset.
//
// Labels are NOT here: a label is per-world mutable state (parallel COW
// chains share one model but each advances its own world), so the narrow
// label array lives in factor::World as its write-through label shadow
// (World::EnableLabelShadow) and travels with world copies.
//
// Built once per TokenPdb by BuildTokenPdb (default skip structure) and
// reused by every SkipChainNerModel whose options produce the same
// structure; models with non-default skip options build a private block.
#ifndef FGPDB_IE_TOKEN_HOT_BLOCK_H_
#define FGPDB_IE_TOKEN_HOT_BLOCK_H_

#include <cstdint>
#include <vector>

#include "factor/world.h"
#include "ie/vocabulary.h"
#include "util/cacheline.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {

/// Structural defaults shared with SkipChainOptions (skip_chain_model.h):
/// BuildTokenPdb builds the default-structure block with these, and a model
/// whose options match reuses it instead of building its own.
inline constexpr bool kDefaultUseSkipEdges = true;
inline constexpr size_t kDefaultMaxSkipGroup = 24;

struct TokenHotBlock {
  /// Per-token hot record. 16 bytes — four per cache line.
  struct Record {
    uint32_t string_id = 0;
    int32_t prev = -1;  ///< Sequence predecessor VarId, -1 at doc start.
    int32_t next = -1;  ///< Sequence successor VarId, -1 at doc end.
    uint32_t skip_begin = 0;  ///< CSR offset into skip_partners.
  };
  static_assert(sizeof(Record) == 16, "four records per 64-byte line");

  /// num_tokens()+1 entries; records[n] is the CSR sentinel.
  CacheAlignedVector<Record> records;
  /// Flattened skip-partner lists; each token's span sorted ascending.
  CacheAlignedVector<factor::VarId> skip_partners;
  /// Skip edges instantiated (each pair counted once; diagnostics).
  size_t num_skip_edges = 0;

  // Structure-affecting options the block was built with.
  bool built_with_skip_edges = kDefaultUseSkipEdges;
  size_t built_max_skip_group = kDefaultMaxSkipGroup;

  size_t num_tokens() const {
    return records.empty() ? 0 : records.size() - 1;
  }

  /// Token v's skip-partner span (ascending VarIds).
  const factor::VarId* partners_begin(factor::VarId v) const {
    return skip_partners.data() + records[v].skip_begin;
  }
  const factor::VarId* partners_end(factor::VarId v) const {
    return skip_partners.data() + records[v + 1].skip_begin;
  }

  /// True when this block's structure matches what a model with the given
  /// skip options would build (so the model can share it).
  bool MatchesStructure(bool use_skip_edges, size_t max_skip_group) const {
    if (built_with_skip_edges != use_skip_edges) return false;
    // Without skip edges the group bound is irrelevant.
    return !use_skip_edges || built_max_skip_group == max_skip_group;
  }
};

/// Builds the packed block from the token stream: prev/next from each
/// document's sequence order, skip partners by grouping a document's
/// capitalized tokens by string id (all pairs up to max_skip_group, then a
/// bounded consecutive-occurrence fallback), each span sorted ascending —
/// structurally identical to what SkipChainNerModel historically built
/// into its separate per-field allocations.
TokenHotBlock BuildTokenHotBlock(
    const Vocabulary& vocab, const std::vector<uint32_t>& string_ids,
    const std::vector<std::vector<factor::VarId>>& docs,
    bool use_skip_edges = kDefaultUseSkipEdges,
    size_t max_skip_group = kDefaultMaxSkipGroup);

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_TOKEN_HOT_BLOCK_H_
