// Database: a named catalog of tables. One Database instance always holds a
// single deterministic possible world (paper §3).
#ifndef FGPDB_STORAGE_DATABASE_H_
#define FGPDB_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace fgpdb {

class Database {
 public:
  Database() = default;

  /// Creates an empty table; fatal if the name exists.
  Table* CreateTable(const std::string& name, Schema schema);

  /// Looks up a table; nullptr if absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Looks up a table; fatal if absent.
  Table* RequireTable(const std::string& name);
  const Table* RequireTable(const std::string& name) const;

  /// Drops a table; fatal if absent.
  void DropTable(const std::string& name);

  /// Names of all tables (unspecified order).
  std::vector<std::string> TableNames() const;

  /// Deep copy of the entire world: every table page and index duplicated
  /// eagerly (the baseline Snapshot() is measured against).
  std::unique_ptr<Database> Clone() const;

  /// Copy-on-write copy of the entire world: all tables snapshotted in
  /// O(#pages) total (see Table::Snapshot). Logically equivalent to Clone();
  /// this is how per-chain worlds are spawned for parallel evaluation
  /// (paper §5.4). Safe to call concurrently from several threads as long
  /// as the base database is not being mutated.
  std::unique_ptr<Database> Snapshot() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace fgpdb

#endif  // FGPDB_STORAGE_DATABASE_H_
