#include "ie/skip_chain_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "ie/ner_features.h"
#include "util/cacheline.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {
namespace {

using factor::VarId;

// Label accessors the hot scoring paths are templated over. Both return the
// identical value for every variable (write-through shadow invariant), so
// scores are bitwise-equal whichever layout a world carries; the shadow
// lane reads 1 byte per label instead of 4 and skips the bounds check.
struct ShadowLabels {
  const uint8_t* shadow;
  uint32_t operator()(VarId v) const { return shadow[v]; }
};
struct WorldLabels {
  const factor::World* world;
  uint32_t operator()(VarId v) const { return world->Get(v); }
};

}  // namespace

SkipChainNerModel::SkipChainNerModel(const TokenPdb& tokens,
                                     SkipChainOptions options)
    : options_(options) {
  if (tokens.hot != nullptr &&
      tokens.hot->MatchesStructure(options_.use_skip_edges,
                                   options_.max_skip_group)) {
    hot_ = tokens.hot.get();
  } else {
    // Non-default skip structure (or a TokenPdb assembled without the
    // shared block): build a private one.
    owned_hot_ = std::make_unique<TokenHotBlock>(
        BuildTokenHotBlock(tokens.vocab, tokens.string_ids, tokens.docs,
                           options_.use_skip_edges, options_.max_skip_group));
    hot_ = owned_hot_.get();
  }

  // Register the dense score tables. Entry values mirror Parameters::Get
  // sums term-by-term (see CompiledWeights), so compiled scores are
  // bitwise-equal to the naive path. Emission and bias fold into one node
  // table — the naive path adds them in exactly this order.
  const auto num_strings =
      static_cast<uint32_t>(std::max<size_t>(1, tokens.vocab.size()));
  const size_t node = compiled_.AddTable(
      num_strings, kNumLabels,
      {[](uint32_t sid, uint32_t y) { return EmissionFeature(sid, y); },
       [](uint32_t, uint32_t y) { return BiasFeature(y); }});
  const size_t trans = compiled_.AddTable(
      kNumLabels, kNumLabels,
      {[](uint32_t a, uint32_t b) { return TransitionFeature(a, b); }});
  // Transposed copy of the transition weights: row yn holds the weights of
  // arriving at yn from each label. Each entry is the same single
  // Parameters::Get value as its trans_table_ mirror, so reading either
  // table yields bitwise-identical scores.
  const size_t trans_t = compiled_.AddTable(
      kNumLabels, kNumLabels,
      {[](uint32_t b, uint32_t a) { return TransitionFeature(a, b); }});
  const size_t skip = compiled_.AddTable(
      1, kNumLabels,
      {[](uint32_t, uint32_t) { return SkipSameFeature(); },
       [](uint32_t, uint32_t y) { return SkipSameLabelFeature(y); }});
  node_table_ = compiled_.data(node);
  trans_table_ = compiled_.data(trans);
  trans_table_t_ = compiled_.data(trans_t);
  skip_table_ = compiled_.data(skip);
}

template <typename GetLabel>
double SkipChainNerModel::NodeScore(VarId v, const GetLabel& get) const {
  const uint32_t y = get(v);
  return params_.Get(EmissionFeature(hot_->records[v].string_id, y)) +
         params_.Get(BiasFeature(y));
}

template <typename GetLabel>
double SkipChainNerModel::EdgeScore(VarId a, VarId b,
                                    const GetLabel& get) const {
  return params_.Get(TransitionFeature(get(a), get(b)));
}

template <typename GetLabel>
double SkipChainNerModel::SkipScore(VarId a, VarId b,
                                    const GetLabel& get) const {
  const uint32_t ya = get(a);
  if (ya != get(b)) return 0.0;
  return params_.Get(SkipSameFeature()) +
         params_.Get(SkipSameLabelFeature(ya));
}

void SkipChainNerModel::CollectTouched(const factor::Change& change,
                                       TouchedScratch* out) const {
  out->nodes.clear();
  out->edges.clear();
  out->skips.clear();
  for (const auto& assignment : change.assignments) {
    const VarId v = assignment.var;
    out->nodes.push_back(v);
    const TokenHotBlock::Record& rec = hot_->records[v];
    if (options_.use_transitions) {
      if (rec.prev >= 0) {
        out->edges.emplace_back(static_cast<VarId>(rec.prev), v);
      }
      if (rec.next >= 0) {
        out->edges.emplace_back(v, static_cast<VarId>(rec.next));
      }
    }
    for (const VarId p : SkipPartners(v)) {
      out->skips.emplace_back(std::min(v, p), std::max(v, p));
    }
  }
  if (change.assignments.size() == 1) {
    // One variable's factors are distinct by construction and already in
    // sorted order (prev < v < next; partners ascending) — skip the sort.
    return;
  }
  // Deduplicate factors shared between changed variables (e.g. the edge
  // between two adjacent changed tokens) so they are scored exactly once.
  auto dedupe = [](auto& items) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
  };
  dedupe(out->nodes);
  dedupe(out->edges);
  dedupe(out->skips);
}

template <typename GetLabel>
double SkipChainNerModel::CompiledSingleDeltaImpl(VarId var,
                                                  uint32_t new_label,
                                                  const GetLabel& get) const {
  const TokenHotBlock::Record& rec = hot_->records[var];
  const uint32_t old_label = get(var);
  const double* node_row =
      node_table_ + static_cast<size_t>(rec.string_id) * kNumLabels;
  double delta = node_row[new_label] - node_row[old_label];
  if (options_.use_transitions) {
    if (rec.prev >= 0) {
      const double* row =
          trans_table_ +
          static_cast<size_t>(get(static_cast<VarId>(rec.prev))) * kNumLabels;
      delta += row[new_label] - row[old_label];
    }
    if (rec.next >= 0) {
      const uint32_t yn = get(static_cast<VarId>(rec.next));
      delta += trans_table_[static_cast<size_t>(new_label) * kNumLabels + yn] -
               trans_table_[static_cast<size_t>(old_label) * kNumLabels + yn];
    }
  }
  for (const VarId p : SkipPartners(var)) {
    const uint32_t yp = get(p);
    // The skip factor fires only on label agreement; agreement makes the
    // pair's first label equal to var's, so indexing by var's label reads
    // the same entry the pairwise enumeration does.
    const double score_new = new_label == yp ? skip_table_[new_label] : 0.0;
    const double score_old = old_label == yp ? skip_table_[old_label] : 0.0;
    delta += score_new - score_old;
  }
  return delta;
}

double SkipChainNerModel::CompiledSingleDelta(const factor::World& world,
                                              VarId var,
                                              uint32_t new_label) const {
  if (const uint8_t* shadow = world.label_shadow()) {
    return CompiledSingleDeltaImpl(var, new_label, ShadowLabels{shadow});
  }
  return CompiledSingleDeltaImpl(var, new_label, WorldLabels{&world});
}

template <typename GetLabel>
void SkipChainNerModel::ConditionalRowImpl(VarId var, double* out,
                                           const GetLabel& get) const {
  const TokenHotBlock::Record& rec = hot_->records[var];
  const uint32_t old_label = get(var);
  // Term-outer loops: lane v accumulates exactly the terms
  // CompiledSingleDelta(world, var, v) adds, in the same order — node, then
  // prev edge, then next edge, then skip partners ascending — so each lane
  // is bitwise-equal to the per-candidate delta. Lane old_label sums only
  // exact x−x = +0.0 terms, matching the candidate path's hard zero.
  const double* node_row =
      node_table_ + static_cast<size_t>(rec.string_id) * kNumLabels;
  const double node_old = node_row[old_label];
  for (uint32_t v = 0; v < kNumLabels; ++v) out[v] = node_row[v] - node_old;
  if (options_.use_transitions) {
    if (rec.prev >= 0) {
      const double* prow =
          trans_table_ +
          static_cast<size_t>(get(static_cast<VarId>(rec.prev))) * kNumLabels;
      const double prow_old = prow[old_label];
      for (uint32_t v = 0; v < kNumLabels; ++v) out[v] += prow[v] - prow_old;
    }
    if (rec.next >= 0) {
      // The next-edge weights form a column of trans_table_; the transposed
      // table exposes that column as a contiguous row.
      const double* ncol =
          trans_table_t_ +
          static_cast<size_t>(get(static_cast<VarId>(rec.next))) * kNumLabels;
      const double ncol_old = ncol[old_label];
      for (uint32_t v = 0; v < kNumLabels; ++v) out[v] += ncol[v] - ncol_old;
    }
  }
  for (const VarId p : SkipPartners(var)) {
    const uint32_t yp = get(p);
    const double score_old = old_label == yp ? skip_table_[old_label] : 0.0;
    for (uint32_t v = 0; v < kNumLabels; ++v) {
      out[v] += (v == yp ? skip_table_[yp] : 0.0) - score_old;
    }
  }
}

bool SkipChainNerModel::ConditionalRow(const factor::World& world,
                                       VarId var, double* out,
                                       factor::ScoreScratch* scratch) const {
  (void)scratch;  // Row gathers need no per-call working memory.
  if (!options_.use_compiled_scoring) return false;
  EnsureCompiled();
  if (const uint8_t* shadow = world.label_shadow()) {
    ConditionalRowImpl(var, out, ShadowLabels{shadow});
  } else {
    ConditionalRowImpl(var, out, WorldLabels{&world});
  }
  return true;
}

void SkipChainNerModel::PrefetchSite(const factor::World& world,
                                     VarId var) const {
  // Address arithmetic only — safe for a speculatively predicted future
  // site whose lines are still cold.
  PrefetchRead(hot_->records.data() + var);
  if (const uint8_t* shadow = world.label_shadow()) {
    PrefetchRead(shadow + var);
  }
}

void SkipChainNerModel::PrefetchSiteOperands(const factor::World& world,
                                             VarId var) const {
  (void)world;
  // Reads the (warmed) hot record to hint the dependent lines the scoring
  // call is about to chase: the node-table row (9 doubles — may straddle
  // two lines) and the head of the skip-partner span.
  const TokenHotBlock::Record& rec = hot_->records[var];
  const double* node_row =
      node_table_ + static_cast<size_t>(rec.string_id) * kNumLabels;
  PrefetchRead(node_row);
  PrefetchRead(node_row + kNumLabels - 1);
  const VarId* partners = hot_->partners_begin(var);
  if (partners != hot_->partners_end(var)) PrefetchRead(partners);
}

double SkipChainNerModel::CompiledLogScoreDelta(const factor::World& world,
                                                const factor::Change& change,
                                                TouchedScratch* scratch) const {
  CollectTouched(change, scratch);
  const factor::PatchedWorld patched(world, change);
  double delta = 0.0;
  for (VarId v : scratch->nodes) {
    const double* node_row =
        node_table_ +
        static_cast<size_t>(hot_->records[v].string_id) * kNumLabels;
    delta += node_row[patched.Get(v)] - node_row[world.Get(v)];
  }
  for (const auto& [a, b] : scratch->edges) {
    delta += trans_table_[static_cast<size_t>(patched.Get(a)) * kNumLabels +
                          patched.Get(b)] -
             trans_table_[static_cast<size_t>(world.Get(a)) * kNumLabels +
                          world.Get(b)];
  }
  for (const auto& [a, b] : scratch->skips) {
    const uint32_t na = patched.Get(a);
    const double score_new = na == patched.Get(b) ? skip_table_[na] : 0.0;
    const uint32_t oa = world.Get(a);
    const double score_old = oa == world.Get(b) ? skip_table_[oa] : 0.0;
    delta += score_new - score_old;
  }
  return delta;
}

double SkipChainNerModel::NaiveLogScoreDelta(const factor::World& world,
                                             const factor::Change& change,
                                             TouchedScratch* scratch) const {
  CollectTouched(change, scratch);
  const factor::PatchedWorld patched(world, change);
  const auto old_label = [&](VarId v) { return world.Get(v); };
  const auto new_label = [&](VarId v) { return patched.Get(v); };
  double delta = 0.0;
  for (VarId v : scratch->nodes) {
    delta += NodeScore(v, new_label) - NodeScore(v, old_label);
  }
  for (const auto& [a, b] : scratch->edges) {
    delta += EdgeScore(a, b, new_label) - EdgeScore(a, b, old_label);
  }
  for (const auto& [a, b] : scratch->skips) {
    delta += SkipScore(a, b, new_label) - SkipScore(a, b, old_label);
  }
  return delta;
}

double SkipChainNerModel::LogScoreDelta(const factor::World& world,
                                        const factor::Change& change) const {
  return LogScoreDelta(world, change, &member_scratch_);
}

double SkipChainNerModel::LogScoreDelta(const factor::World& world,
                                        const factor::Change& change,
                                        factor::ScoreScratch* scratch) const {
  TouchedScratch* s = scratch != nullptr
                          ? static_cast<TouchedScratch*>(scratch)
                          : &member_scratch_;
  if (!options_.use_compiled_scoring) {
    return NaiveLogScoreDelta(world, change, s);
  }
  EnsureCompiled();
  if (change.assignments.size() == 1) {
    const auto& a = change.assignments[0];
    return CompiledSingleDelta(world, a.var, a.value);
  }
  return CompiledLogScoreDelta(world, change, s);
}

std::unique_ptr<factor::ScoreScratch> SkipChainNerModel::MakeScratch() const {
  return std::make_unique<TouchedScratch>();
}

bool SkipChainNerModel::FactorsRespectPartition(
    const std::vector<uint32_t>& partition) const {
  if (partition.size() != num_variables()) return false;
  for (VarId v = 0; v < partition.size(); ++v) {
    const TokenHotBlock::Record& rec = hot_->records[v];
    if (options_.use_transitions && rec.next >= 0 &&
        partition[static_cast<VarId>(rec.next)] != partition[v]) {
      return false;
    }
    if (options_.use_skip_edges) {
      for (const VarId partner : SkipPartners(v)) {
        if (partition[partner] != partition[v]) return false;
      }
    }
  }
  return true;
}

double SkipChainNerModel::LogScore(const factor::World& world) const {
  const auto label = [&](VarId v) { return world.Get(v); };
  const size_t n = num_variables();
  double total = 0.0;
  if (!options_.use_compiled_scoring) {
    for (size_t i = 0; i < n; ++i) {
      const VarId v = static_cast<VarId>(i);
      const TokenHotBlock::Record& rec = hot_->records[v];
      total += NodeScore(v, label);
      if (options_.use_transitions && rec.next >= 0) {
        total += EdgeScore(v, static_cast<VarId>(rec.next), label);
      }
      for (VarId p : SkipPartners(v)) {
        if (p > v) total += SkipScore(v, p, label);  // Count each pair once.
      }
    }
    return total;
  }
  EnsureCompiled();
  for (size_t i = 0; i < n; ++i) {
    const VarId v = static_cast<VarId>(i);
    const TokenHotBlock::Record& rec = hot_->records[v];
    const uint32_t y = world.Get(v);
    total += node_table_[static_cast<size_t>(rec.string_id) * kNumLabels + y];
    if (options_.use_transitions && rec.next >= 0) {
      total += trans_table_[static_cast<size_t>(y) * kNumLabels +
                            world.Get(static_cast<VarId>(rec.next))];
    }
    for (VarId p : SkipPartners(v)) {
      if (p > v && y == world.Get(p)) total += skip_table_[y];
    }
  }
  return total;
}

void SkipChainNerModel::FeatureDelta(const factor::World& world,
                                     const factor::Change& change,
                                     factor::SparseVector* out) const {
  FeatureDelta(world, change, out, &member_scratch_);
}

void SkipChainNerModel::FeatureDelta(const factor::World& world,
                                     const factor::Change& change,
                                     factor::SparseVector* out,
                                     factor::ScoreScratch* scratch) const {
  TouchedScratch* s = scratch != nullptr
                          ? static_cast<TouchedScratch*>(scratch)
                          : &member_scratch_;
  CollectTouched(change, s);
  const factor::PatchedWorld patched(world, change);
  const auto old_label = [&](VarId v) { return world.Get(v); };
  const auto new_label = [&](VarId v) { return patched.Get(v); };

  for (VarId v : s->nodes) {
    const uint32_t sid = hot_->records[v].string_id;
    const uint32_t y_new = new_label(v);
    const uint32_t y_old = old_label(v);
    if (y_new == y_old) continue;
    out->Add(EmissionFeature(sid, y_new), 1.0);
    out->Add(BiasFeature(y_new), 1.0);
    out->Add(EmissionFeature(sid, y_old), -1.0);
    out->Add(BiasFeature(y_old), -1.0);
  }
  for (const auto& [a, b] : s->edges) {
    out->Add(TransitionFeature(new_label(a), new_label(b)), 1.0);
    out->Add(TransitionFeature(old_label(a), old_label(b)), -1.0);
  }
  for (const auto& [a, b] : s->skips) {
    const uint32_t na = new_label(a);
    if (na == new_label(b)) {
      out->Add(SkipSameFeature(), 1.0);
      out->Add(SkipSameLabelFeature(na), 1.0);
    }
    const uint32_t oa = old_label(a);
    if (oa == old_label(b)) {
      out->Add(SkipSameFeature(), -1.0);
      out->Add(SkipSameLabelFeature(oa), -1.0);
    }
  }
  out->Consolidate();
}

void SkipChainNerModel::InitializeFromCorpusStatistics(const TokenPdb& tokens,
                                                       double skip_weight,
                                                       double emission_scale) {
  // Smoothed per-string label log-odds from the TRUTH column, plus label
  // frequency biases and BIO-consistent transition preferences. This mimics
  // what SampleRank converges to without spending bench time on training.
  const double kSmoothing = 0.5;
  std::unordered_map<uint64_t, double> counts;  // (string, label) -> count
  std::vector<double> label_counts(kNumLabels, kSmoothing);
  for (size_t i = 0; i < tokens.num_tokens(); ++i) {
    const uint64_t key =
        (static_cast<uint64_t>(tokens.string_ids[i]) << 8) | tokens.truth[i];
    counts[key] += 1.0;
    label_counts[tokens.truth[i]] += 1.0;
  }
  std::unordered_map<uint32_t, double> string_totals;
  for (size_t i = 0; i < tokens.num_tokens(); ++i) {
    string_totals[tokens.string_ids[i]] += 1.0;
  }
  // One emission weight per (string, label), plus biases, transitions, and
  // the skip features — size the store once instead of growing through it.
  params_.Reserve(string_totals.size() * kNumLabels + kNumLabels +
                  kNumLabels * kNumLabels + 1 + kNumLabels);
  for (const auto& [sid, total] : string_totals) {
    for (uint32_t y = 0; y < kNumLabels; ++y) {
      const auto it = counts.find((static_cast<uint64_t>(sid) << 8) | y);
      const double c = (it == counts.end() ? 0.0 : it->second) + kSmoothing;
      params_.Set(EmissionFeature(sid, y),
                  emission_scale *
                      (std::log(c / (total + kSmoothing * kNumLabels)) -
                       std::log(kSmoothing /
                                (total + kSmoothing * kNumLabels))));
    }
  }
  double total_tokens = 0.0;
  for (double c : label_counts) total_tokens += c;
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    params_.Set(BiasFeature(y), std::log(label_counts[y] / total_tokens));
  }
  for (uint32_t a = 0; a < kNumLabels; ++a) {
    for (uint32_t b = 0; b < kNumLabels; ++b) {
      params_.Set(TransitionFeature(a, b), ValidTransition(a, b) ? 0.0 : -4.0);
    }
  }
  params_.Set(SkipSameFeature(), skip_weight);
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    params_.Set(SkipSameLabelFeature(y), y == kLabelO ? 0.0 : skip_weight);
  }
}

}  // namespace ie
}  // namespace fgpdb
