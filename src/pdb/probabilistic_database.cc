#include "pdb/probabilistic_database.h"

namespace fgpdb {
namespace pdb {

std::unique_ptr<infer::MetropolisHastings> ProbabilisticDatabase::MakeSampler(
    infer::Proposal* proposal, uint64_t seed) {
  auto sampler = std::make_unique<infer::MetropolisHastings>(model(), &world_,
                                                             proposal, seed);
  sampler->AddListener(
      [this](const std::vector<factor::AppliedAssignment>& applied) {
        MirrorApplied(applied);
      });
  return sampler;
}

std::unique_ptr<ProbabilisticDatabase> ProbabilisticDatabase::Snapshot() const {
  auto copy = std::make_unique<ProbabilisticDatabase>();
  copy->db_ = db_->Snapshot();
  copy->binding_ = binding_;  // O(1): the field list is shared (COW).
  copy->world_ = world_;      // Dense POD vector; each chain mutates it all.
  copy->model_ = model_;
  return copy;
}

}  // namespace pdb
}  // namespace fgpdb
