#include "ra/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace fgpdb {
namespace ra {
namespace {

std::vector<Tuple> ExecuteScan(const ScanNode& node, const Database& db) {
  const Table* table = db.RequireTable(node.table_name());
  std::vector<Tuple> out;
  out.reserve(table->size());
  table->Scan([&](RowId, const Tuple& t) { out.push_back(t); });
  return out;
}

std::vector<Tuple> ExecuteSelect(const SelectNode& node, const Database& db) {
  std::vector<Tuple> in = Execute(node.child(0), db);
  std::vector<Tuple> out;
  for (auto& t : in) {
    if (node.predicate().EvalBool(t)) out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tuple> ExecuteProject(const ProjectNode& node, const Database& db) {
  std::vector<Tuple> in = Execute(node.child(0), db);
  std::vector<Tuple> out;
  out.reserve(in.size());
  for (const auto& t : in) {
    std::vector<Value> values;
    values.reserve(node.outputs().size());
    for (const auto& e : node.outputs()) values.push_back(e->Eval(t));
    out.emplace_back(std::move(values));
  }
  return out;
}

std::vector<Tuple> ExecuteJoin(const JoinNode& node, const Database& db) {
  std::vector<Tuple> left = Execute(node.child(0), db);
  std::vector<Tuple> right = Execute(node.child(1), db);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& l, const Tuple& r) {
    Tuple joined = Tuple::Concat(l, r);
    if (node.residual() == nullptr || node.residual()->EvalBool(joined)) {
      out.push_back(std::move(joined));
    }
  };
  if (!node.alternatives().empty()) {
    // Disjunctive equi-join: one hash index per alternative, probed in turn.
    // A right tuple matching through several alternatives pairs with the
    // probe once, so matches are deduped by bag element (address) per probe.
    std::vector<std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHasher>>
        builds(node.alternatives().size());
    for (size_t a = 0; a < node.alternatives().size(); ++a) {
      builds[a].reserve(right.size());
      for (const auto& r : right) {
        builds[a][r.Project(node.alternatives()[a].right_keys)].push_back(&r);
      }
    }
    std::vector<const Tuple*> matches;
    for (const auto& l : left) {
      matches.clear();
      for (size_t a = 0; a < node.alternatives().size(); ++a) {
        const auto it =
            builds[a].find(l.Project(node.alternatives()[a].left_keys));
        if (it == builds[a].end()) continue;
        for (const Tuple* r : it->second) {
          if (std::find(matches.begin(), matches.end(), r) == matches.end()) {
            matches.push_back(r);
          }
        }
      }
      for (const Tuple* r : matches) emit(l, *r);
    }
    return out;
  }
  if (node.left_keys().empty()) {
    // Cartesian product with optional residual filter.
    for (const auto& l : left) {
      for (const auto& r : right) emit(l, r);
    }
    return out;
  }
  // Hash join: build on the smaller side for memory locality; here we build
  // on the right unconditionally since bags are already materialized.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHasher> build;
  build.reserve(right.size());
  for (const auto& r : right) {
    build[r.Project(node.right_keys())].push_back(&r);
  }
  for (const auto& l : left) {
    const auto it = build.find(l.Project(node.left_keys()));
    if (it == build.end()) continue;
    for (const Tuple* r : it->second) emit(l, *r);
  }
  return out;
}

struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_integral = true;
  bool has_extreme = false;
  Value extreme;
  std::unordered_set<Value, ValueHasher> distinct;
};

Value FinalizeAggregate(const AggregateSpec& spec, const AggState& state) {
  switch (spec.kind) {
    case AggregateSpec::Kind::kCount:
    case AggregateSpec::Kind::kCountIf:
      return Value::Int(state.count);
    case AggregateSpec::Kind::kCountDistinct:
      return Value::Int(static_cast<int64_t>(state.distinct.size()));
    case AggregateSpec::Kind::kSum:
      if (state.count == 0) return Value::Null();
      return state.sum_is_integral ? Value::Int(static_cast<int64_t>(state.sum))
                                   : Value::Double(state.sum);
    case AggregateSpec::Kind::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.sum / static_cast<double>(state.count));
    case AggregateSpec::Kind::kMin:
    case AggregateSpec::Kind::kMax:
      return state.has_extreme ? state.extreme : Value::Null();
  }
  return Value::Null();
}

void AccumulateAggregate(const AggregateSpec& spec, const Tuple& tuple,
                         AggState& state) {
  switch (spec.kind) {
    case AggregateSpec::Kind::kCount:
      if (spec.argument == nullptr || !spec.argument->Eval(tuple).is_null()) {
        ++state.count;
      }
      return;
    case AggregateSpec::Kind::kCountIf:
      FGPDB_CHECK(spec.argument != nullptr);
      if (spec.argument->EvalBool(tuple)) ++state.count;
      return;
    case AggregateSpec::Kind::kCountDistinct: {
      FGPDB_CHECK(spec.argument != nullptr);
      const Value v = spec.argument->Eval(tuple);
      if (!v.is_null()) state.distinct.insert(v);
      return;
    }
    case AggregateSpec::Kind::kSum:
    case AggregateSpec::Kind::kAvg: {
      FGPDB_CHECK(spec.argument != nullptr);
      const Value v = spec.argument->Eval(tuple);
      if (v.is_null()) return;
      ++state.count;
      state.sum += v.AsNumeric();
      if (v.type() != ValueType::kInt64) state.sum_is_integral = false;
      return;
    }
    case AggregateSpec::Kind::kMin:
    case AggregateSpec::Kind::kMax: {
      FGPDB_CHECK(spec.argument != nullptr);
      const Value v = spec.argument->Eval(tuple);
      if (v.is_null()) return;
      const bool replace =
          !state.has_extreme ||
          (spec.kind == AggregateSpec::Kind::kMin ? v < state.extreme
                                                  : v > state.extreme);
      if (replace) {
        state.extreme = v;
        state.has_extreme = true;
      }
      return;
    }
  }
}

std::vector<Tuple> ExecuteAggregate(const AggregateNode& node,
                                    const Database& db) {
  std::vector<Tuple> in = Execute(node.child(0), db);
  // Group key -> per-aggregate states. Insertion order retained for
  // deterministic output given deterministic input order.
  std::unordered_map<Tuple, size_t, TupleHasher> group_index;
  std::vector<Tuple> group_keys;
  std::vector<std::vector<AggState>> states;
  for (const auto& t : in) {
    Tuple key = t.Project(node.group_by());
    auto [it, inserted] = group_index.emplace(std::move(key), group_keys.size());
    if (inserted) {
      group_keys.push_back(it->first);
      states.emplace_back(node.aggregates().size());
    }
    auto& group_states = states[it->second];
    for (size_t a = 0; a < node.aggregates().size(); ++a) {
      AccumulateAggregate(node.aggregates()[a], t, group_states[a]);
    }
  }
  // Global aggregate over an empty input still yields one row (SQL
  // semantics for aggregates without GROUP BY).
  if (group_keys.empty() && node.group_by().empty()) {
    group_keys.emplace_back();
    states.emplace_back(node.aggregates().size());
  }
  std::vector<Tuple> out;
  out.reserve(group_keys.size());
  for (size_t g = 0; g < group_keys.size(); ++g) {
    std::vector<Value> values;
    values.reserve(node.group_by().size() + node.aggregates().size());
    for (const Value& v : group_keys[g].values()) values.push_back(v);
    for (size_t a = 0; a < node.aggregates().size(); ++a) {
      values.push_back(FinalizeAggregate(node.aggregates()[a], states[g][a]));
    }
    out.emplace_back(std::move(values));
  }
  return out;
}

std::vector<Tuple> ExecuteDistinct(const DistinctNode& node,
                                   const Database& db) {
  std::vector<Tuple> in = Execute(node.child(0), db);
  std::unordered_set<Tuple, TupleHasher> seen;
  std::vector<Tuple> out;
  for (auto& t : in) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tuple> ExecuteOrderBy(const OrderByNode& node, const Database& db) {
  std::vector<Tuple> in = Execute(node.child(0), db);
  std::stable_sort(in.begin(), in.end(), [&](const Tuple& a, const Tuple& b) {
    for (size_t k : node.keys()) {
      const int c = a.at(k).Compare(b.at(k));
      if (c != 0) return node.ascending() ? c < 0 : c > 0;
    }
    return false;
  });
  return in;
}

std::vector<Tuple> ExecuteLimit(const LimitNode& node, const Database& db) {
  std::vector<Tuple> in = Execute(node.child(0), db);
  if (in.size() > node.limit()) in.resize(node.limit());
  return in;
}

}  // namespace

std::vector<Tuple> Execute(const PlanNode& plan, const Database& db) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return ExecuteScan(static_cast<const ScanNode&>(plan), db);
    case PlanKind::kSelect:
      return ExecuteSelect(static_cast<const SelectNode&>(plan), db);
    case PlanKind::kProject:
      return ExecuteProject(static_cast<const ProjectNode&>(plan), db);
    case PlanKind::kJoin:
      return ExecuteJoin(static_cast<const JoinNode&>(plan), db);
    case PlanKind::kAggregate:
      return ExecuteAggregate(static_cast<const AggregateNode&>(plan), db);
    case PlanKind::kDistinct:
      return ExecuteDistinct(static_cast<const DistinctNode&>(plan), db);
    case PlanKind::kOrderBy:
      return ExecuteOrderBy(static_cast<const OrderByNode&>(plan), db);
    case PlanKind::kLimit:
      return ExecuteLimit(static_cast<const LimitNode&>(plan), db);
  }
  FGPDB_FATAL() << "unknown plan kind";
  return {};
}

}  // namespace ra
}  // namespace fgpdb
