// Per-tuple Monte-Carlo error tracking for query answers — the statistics
// behind ExecutionPolicy::until(confidence, eps).
//
// A query answer is a set of per-tuple marginals p̂(t) = count(t)/samples
// (paper Eq. 4/5). "Run until the answer is within ±ε at 95% confidence"
// needs a standard error for every p̂(t), and the right estimator depends on
// where the samples came from:
//
//   MarginalErrorStats — ONE chain's thinned sample stream. Successive
//       samples are correlated, so each tuple's 0/1 indicator stream feeds a
//       BatchedMeansAccumulator (infer/convergence.h). A tuple first seen at
//       sample s backfills s−1 zeros, so its stream always spans the full
//       observation window.
//   CrossChainStats — B independent chains, n samples each (the §5.4
//       parallel evaluator). The chain means are i.i.d., so
//       SE(p̂) = sd(chain means)/√B. State per tuple is the integer sum and
//       sum-of-squares of per-chain counts: integer addition commutes
//       exactly, so the estimate is BITWISE identical no matter what order
//       finished chains are folded in — stopping decisions stay reproducible
//       under the threaded streaming merge.
//
// Both refuse to report a bound before it is meaningful (too few batches /
// fewer than two chains): StandardError returns +inf, never an
// overconfident small number.
#ifndef FGPDB_PDB_CONVERGENCE_STATS_H_
#define FGPDB_PDB_CONVERGENCE_STATS_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "infer/convergence.h"
#include "storage/tuple.h"

namespace fgpdb {
namespace pdb {

class QueryAnswer;

/// The until(confidence, eps) stopping rule: every tracked tuple's marginal
/// must carry a two-sided confidence half-width z(confidence)·SE ≤ eps.
struct ConvergenceOptions {
  double confidence = 0.95;
  /// Absolute marginal-probability tolerance.
  double eps = 0.01;
  /// Samples a query must observe before it may be declared converged
  /// (guards against freezing on a lucky early window).
  uint64_t min_samples = 32;
};

/// Batched-means error tracking for one chain's answer stream. Feed it the
/// same distinct-tuple sets the QueryAnswer observes; read per-tuple
/// standard errors or the max half-width any time. Per-sample cost is
/// O(#tracked tuples) with no allocation except first-sighting inserts.
class MarginalErrorStats {
 public:
  /// Records one sample's answer set (distinct tuples only). Every tracked
  /// tuple absent from `present` observes a 0.
  void ObserveSample(const std::vector<Tuple>& present);

  uint64_t num_samples() const { return num_samples_; }
  size_t num_tracked() const { return entries_.size(); }

  /// Marginal estimate of `tuple` (0 if never seen).
  double Mean(const Tuple& tuple) const;

  /// Batched-means standard error of Mean(tuple); +inf until enough
  /// complete batches exist, 0 for never-seen tuples.
  double StandardError(const Tuple& tuple) const;

  /// max over tracked tuples of z·SE — the answer's confidence half-width.
  /// 0 when nothing is tracked (an empty answer is exactly itself); +inf
  /// while any tuple's SE is still inestimable.
  double MaxHalfWidth(double z) const;

  /// fn(tuple, mean, standard_error) per tracked tuple (unspecified order).
  void ForEach(const std::function<void(const Tuple&, double, double)>& fn)
      const;

 private:
  struct Entry {
    infer::BatchedMeansAccumulator acc;
    uint64_t last_seen = 0;  // sample index of last presence marking
  };
  std::unordered_map<Tuple, Entry, TupleHasher> entries_;
  uint64_t num_samples_ = 0;
};

/// Cross-chain standard errors over B independent chains of n samples each.
/// Fold order cannot change any reported value (integer sums), so the
/// threaded parallel evaluator's completion-order merge stays deterministic.
class CrossChainStats {
 public:
  /// Folds one finished chain's answer. Every chain must carry the same
  /// number of samples (the parallel evaluator guarantees it).
  void ObserveChain(const QueryAnswer& chain_answer);

  /// Pools another batch of chains (e.g. a later escalation round).
  void Merge(const CrossChainStats& other);

  size_t num_chains() const { return num_chains_; }
  uint64_t samples_per_chain() const { return samples_per_chain_; }

  /// Pooled marginal estimate of `tuple` (0 if never seen in any chain).
  double Mean(const Tuple& tuple) const;

  /// sd(chain means)/√B; +inf with fewer than two chains, 0 for never-seen
  /// tuples.
  double StandardError(const Tuple& tuple) const;

  /// max over tracked tuples of z·SE; 0 when nothing is tracked, +inf with
  /// fewer than two chains folded.
  double MaxHalfWidth(double z) const;

  /// fn(tuple, mean, standard_error) per tracked tuple (unspecified order).
  void ForEach(const std::function<void(const Tuple&, double, double)>& fn)
      const;

 private:
  struct Entry {
    uint64_t sum_counts = 0;     // Σ_b count_b(tuple)
    uint64_t sum_sq_counts = 0;  // Σ_b count_b(tuple)²
  };
  double StandardErrorOf(const Entry& e) const;

  std::unordered_map<Tuple, Entry, TupleHasher> entries_;
  size_t num_chains_ = 0;
  uint64_t samples_per_chain_ = 0;
};

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_CONVERGENCE_STATS_H_
