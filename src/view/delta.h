// Signed tuple multisets — the Δ−/Δ+ sets of paper §4.2 in one structure.
//
// A DeltaMultiset maps tuples to signed counts: negative entries are the
// paper's Δ− (tuples leaving the world/view) and positive entries are Δ+
// (tuples entering). Using one signed structure makes the Blakeley-style
// rewrites (Eq. 6) linear-algebraic: operators distribute over deltas, and
// the multiset counters required for projection (the paper's Remark after
// Eq. 6) fall out naturally.
#ifndef FGPDB_VIEW_DELTA_H_
#define FGPDB_VIEW_DELTA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "storage/tuple.h"

namespace fgpdb {
namespace view {

class DeltaMultiset {
 public:
  using Map = std::unordered_map<Tuple, int64_t, TupleHasher>;

  DeltaMultiset() = default;

  /// Adds `count` (may be negative) occurrences of `tuple`; entries whose
  /// count reaches zero are erased.
  void Add(const Tuple& tuple, int64_t count = 1);

  /// Signed count of `tuple` (0 if absent).
  int64_t Count(const Tuple& tuple) const;

  /// Merges another delta into this one (entry-wise addition).
  void Merge(const DeltaMultiset& other);

  /// Applies fn(tuple, count) to every non-zero entry.
  void ForEach(const std::function<void(const Tuple&, int64_t)>& fn) const;

  bool empty() const { return counts_.empty(); }
  size_t distinct_size() const { return counts_.size(); }

  /// Sum of positive counts (number of inserted tuple instances).
  int64_t PositiveTotal() const;

  /// Sum of |negative| counts (number of removed tuple instances).
  int64_t NegativeTotal() const;

  /// True if every count is >= 1 (a plain bag, e.g. a view's contents).
  bool IsNonNegative() const;

  const Map& entries() const { return counts_; }

  void Clear() { counts_.clear(); }

  bool operator==(const DeltaMultiset& other) const {
    return counts_ == other.counts_;
  }

  /// Diagnostic rendering, sorted for determinism.
  std::string ToString() const;

 private:
  Map counts_;
};

/// Per-base-table deltas accumulated between query (re-)evaluations — the
/// contents of the paper's auxiliary "added"/"deleted" tables.
class DeltaSet {
 public:
  DeltaMultiset& ForTable(const std::string& table) { return per_table_[table]; }

  /// Delta for `table`; a shared empty delta if none recorded.
  const DeltaMultiset& Get(const std::string& table) const;

  bool empty() const;

  /// Total tuple instances touched across tables (|Δ−| + |Δ+|).
  int64_t TotalMagnitude() const;

  void Clear() { per_table_.clear(); }

 private:
  std::unordered_map<std::string, DeltaMultiset> per_table_;
  static const DeltaMultiset kEmpty;
};

}  // namespace view
}  // namespace fgpdb

#endif  // FGPDB_VIEW_DELTA_H_
