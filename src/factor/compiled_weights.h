// Compiled weight tables: dense, read-optimized mirrors of Parameters.
//
// Templated models score by summing a handful of params.Get(feature_id)
// probes per factor (model.h). That is the whole hot path of MCMC inference
// — BENCH_pr4 put it at ~85% of an MH step — and each probe hashes three
// role integers and walks a hash table. Factorie-style systems compile
// templated factor scores into direct table lookups for exactly this
// reason; CompiledWeights is that facility.
//
// A model registers one dense table per factor template (emission
// [string × label], transition [label × label], ...), described by the
// feature-id generators of its terms. Rebuild() fills entry (i, j) with
//
//   Σ_t params.Get(terms[t](i, j))     (summed in registration order)
//
// i.e. the *same doubles in the same addition order* the naive Get()
// scoring produces, so compiled scores are bitwise-identical to uncompiled
// ones. Tables refresh lazily when Parameters::version() moves, so
// SampleRank training (which mutates weights through the normal API) keeps
// working: the first score after an update pays one rebuild, every
// subsequent score is pure array indexing.
//
// Thread-safety: EnsureFresh() is safe to call concurrently (double-checked
// version gate; rebuilds serialize on a mutex). Concurrent scoring is safe
// whenever concurrent *uncompiled* scoring would be, i.e. as long as nobody
// mutates Parameters mid-inference — the same contract the parallel COW
// chains already rely on.
#ifndef FGPDB_FACTOR_COMPILED_WEIGHTS_H_
#define FGPDB_FACTOR_COMPILED_WEIGHTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "factor/feature_vector.h"

namespace fgpdb {
namespace factor {

class CompiledWeights {
 public:
  /// Feature-id generator for one additive term of a table: (i, j) -> id.
  /// Terms for 1-D tables ignore j; constant terms ignore both.
  using FeatureFn = std::function<FeatureId(uint32_t i, uint32_t j)>;

  CompiledWeights() = default;
  CompiledWeights(const CompiledWeights&) = delete;
  CompiledWeights& operator=(const CompiledWeights&) = delete;

  /// Registers a rows×cols dense table whose (i, j) entry mirrors the sum
  /// of params.Get over `terms` (in order). Returns a table handle. The
  /// backing storage is allocated here and never reallocated, so data()
  /// pointers taken after registration stay valid across rebuilds.
  size_t AddTable(uint32_t rows, uint32_t cols, std::vector<FeatureFn> terms);

  /// Row-major entry pointer for `table`; entry (i, j) is data[i*cols + j].
  /// Zero-filled until the first EnsureFresh().
  const double* data(size_t table) const { return tables_[table].values.data(); }

  uint32_t rows(size_t table) const { return tables_[table].rows; }
  uint32_t cols(size_t table) const { return tables_[table].cols; }
  size_t num_tables() const { return tables_.size(); }

  /// Rebuilds every table iff `params` changed since the last rebuild
  /// (compared by version). The hot-path cost when fresh is one atomic
  /// load. Returns true if a rebuild happened.
  bool EnsureFresh(const Parameters& params);

  /// True if the tables mirror `params`' current version.
  bool fresh(const Parameters& params) const {
    return built_version_.load(std::memory_order_acquire) == params.version();
  }

 private:
  struct Table {
    uint32_t rows = 0;
    uint32_t cols = 0;
    std::vector<FeatureFn> terms;
    std::vector<double> values;  // rows*cols, row-major; sized at AddTable.
  };

  void Rebuild(const Parameters& params);

  std::vector<Table> tables_;
  // 0 = never built; Parameters versions start at 1, so registration-fresh
  // tables are always considered stale until the first EnsureFresh().
  std::atomic<uint64_t> built_version_{0};
  std::mutex rebuild_mu_;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_COMPILED_WEIGHTS_H_
