// Metropolis–Hastings random walk (paper §3.4, Algorithm 2).
//
// Each Step() draws w' ~ q(·|w), computes the acceptance probability
//
//   α(w', w) = min(1, [π(w')/π(w)] · [q(w|w')/q(w'|w)])     (Eq. 3)
//
// from the *local* factor delta (Appendix 9.2 — ZX and untouched factors
// cancel), and on acceptance applies the change to the world and notifies
// listeners. The pdb layer registers a listener that mirrors accepted
// changes into the relational tables and the Δ−/Δ+ buffers.
#ifndef FGPDB_INFER_METROPOLIS_HASTINGS_H_
#define FGPDB_INFER_METROPOLIS_HASTINGS_H_

#include <functional>
#include <memory>
#include <vector>

#include "factor/model.h"
#include "infer/proposal.h"
#include "util/rng.h"

namespace fgpdb {
namespace infer {

/// Cumulative wall-clock split of Step() into its four phases — the
/// hot-path profiling hook (ROADMAP: "breaks a step into propose / score /
/// apply / mirror and attack the biggest slice"):
///
///   propose — drawing w' ~ q(·|w) from the proposal kernel
///   score   — the local factor delta (Appendix 9.2) + the acceptance test
///   apply   — writing an accepted change into the World
///   mirror  — listener notification: table mirroring + delta accumulation
///
/// Rejected steps contribute to propose/score only; empty proposals
/// (self-transitions) to propose only.
struct StepPhaseTotals {
  uint64_t steps = 0;
  double propose_seconds = 0.0;
  double score_seconds = 0.0;
  double apply_seconds = 0.0;
  double mirror_seconds = 0.0;

  double TotalSeconds() const {
    return propose_seconds + score_seconds + apply_seconds + mirror_seconds;
  }
};

class MetropolisHastings {
 public:
  /// Listener invoked after an accepted change is applied to the world.
  using Listener =
      std::function<void(const std::vector<factor::AppliedAssignment>&)>;

  MetropolisHastings(const factor::Model& model, factor::World* world,
                     Proposal* proposal, uint64_t seed = 1);

  /// Registers a post-acceptance listener.
  void AddListener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// One propose/accept-or-reject transition. Returns true on acceptance.
  bool Step();

  /// Runs `n` transitions (Algorithm 2's random walk).
  void Run(size_t n) {
    for (size_t i = 0; i < n; ++i) Step();
  }

  uint64_t num_proposed() const { return num_proposed_; }
  uint64_t num_accepted() const { return num_accepted_; }
  double acceptance_rate() const {
    return num_proposed_ == 0
               ? 0.0
               : static_cast<double>(num_accepted_) /
                     static_cast<double>(num_proposed_);
  }

  factor::World& world() { return *world_; }
  Rng& rng() { return rng_; }

  /// Attaches a per-phase timing accumulator (nullptr detaches; the
  /// default). While attached, every Step() adds its phase wall-clock to
  /// `totals` — two clock reads per phase, so leave it off outside
  /// profiling runs. `totals` must outlive the attachment.
  void set_phase_totals(StepPhaseTotals* totals) { phase_totals_ = totals; }

 private:
  const factor::Model& model_;
  factor::World* world_;
  Proposal* proposal_;
  Rng rng_;
  std::vector<Listener> listeners_;
  /// Per-chain scoring scratch (model.MakeScratch()): each sampler owns its
  /// buffers, so scoring allocates nothing per step and parallel chains
  /// sharing one model never share mutable state.
  std::unique_ptr<factor::ScoreScratch> score_scratch_;
  /// Step() body; kTimed compiles the phase clock reads in or out, so the
  /// detached (default) path pays nothing for the profiling hook.
  template <bool kTimed>
  bool StepImpl();

  std::vector<factor::AppliedAssignment> applied_scratch_;
  uint64_t num_proposed_ = 0;
  uint64_t num_accepted_ = 0;
  StepPhaseTotals* phase_totals_ = nullptr;
};

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_METROPOLIS_HASTINGS_H_
