#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace fgpdb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string HumanCount(double n) {
  char buf[64];
  if (n >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gM", n / 1e6);
  } else if (n >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3gk", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", n);
  }
  return buf;
}

}  // namespace fgpdb
