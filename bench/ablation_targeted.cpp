// Ablation (paper §4.1 / §6 future work): query-targeted proposal
// distributions. Query 4 only reads documents containing the string
// 'Boston'; a proposal restricted to those documents' label variables
// spends every walk-step on query-relevant structure.
//
// Compares squared error vs truth after a fixed proposal budget for:
//   * the §5.1 document-batch proposal over the whole corpus, and
//   * SubsetUniformProposal over Boston-document variables only.
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "infer/subset_proposal.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "ablation_targeted");
  const size_t n = static_cast<size_t>(50000 * BenchScale());
  std::cout << "=== Ablation: query-targeted proposal (Query 4, "
            << HumanCount(static_cast<double>(n)) << " tuples, master seed "
            << master << ") ===\n\n";
  NerBench bench(n, DeriveSeed(master, 0));

  // Variables of documents containing 'Boston' — the subset Query 4 reads.
  std::vector<factor::VarId> targeted;
  {
    std::unordered_set<size_t> boston_docs;
    for (size_t v = 0; v < bench.tokens.num_tokens(); ++v) {
      if (bench.tokens.vocab.String(bench.tokens.string_ids[v]) == "Boston") {
        // docs[] is indexed by doc id; find this var's doc via binary scan.
        for (size_t d = 0; d < bench.tokens.docs.size(); ++d) {
          const auto& doc = bench.tokens.docs[d];
          if (v >= doc.front() && v <= doc.back()) {
            boston_docs.insert(d);
            break;
          }
        }
      }
    }
    for (size_t d : boston_docs) {
      const auto& doc = bench.tokens.docs[d];
      targeted.insert(targeted.end(), doc.begin(), doc.end());
    }
    std::cout << "targeted subset: " << boston_docs.size() << " documents, "
              << targeted.size() << " of " << bench.tokens.num_tokens()
              << " variables\n\n";
  }

  // Burn the base world so both kernels start from stationarity, then
  // estimate truth with the targeted kernel (it samples the conditional the
  // query depends on, with far better effective sample size).
  {
    auto proposal = bench.MakeProposal();
    auto sampler =
        bench.tokens.pdb->MakeSampler(proposal.get(), DeriveSeed(master, 1));
    sampler->Run(DefaultBurnIn(n));
    bench.tokens.pdb->DiscardDeltas();
  }
  const uint64_t k = std::max<uint64_t>(50, n / 500);
  pdb::QueryAnswer truth;
  {
    auto world = bench.tokens.pdb->Clone();
    ra::PlanPtr plan = sql::PlanQuery(ie::kQuery4, world->db());
    infer::SubsetUniformProposal proposal(*bench.model, targeted);
    pdb::MaterializedQueryEvaluator evaluator(
        world.get(), &proposal, plan.get(),
        {.steps_per_sample = k, .burn_in = 0, .seed = DeriveSeed(master, 2)});
    evaluator.Run(20000);
    truth = evaluator.answer();
  }

  // Both kernels deliberately share ONE derived stream per budget row, so
  // the comparison differs only in the proposal distribution.
  const uint64_t kernel_seed = DeriveSeed(master, 3);
  TablePrinter table({"proposal", "budget (steps)", "squared error"});
  for (const uint64_t budget :
       {static_cast<uint64_t>(2) * n, static_cast<uint64_t>(8) * n,
        static_cast<uint64_t>(32) * n}) {
    const uint64_t samples = budget / k;
    // Full-corpus §5.1 kernel.
    {
      auto world = bench.tokens.pdb->Clone();
      ra::PlanPtr plan = sql::PlanQuery(ie::kQuery4, world->db());
      auto proposal = bench.MakeProposal();
      pdb::MaterializedQueryEvaluator evaluator(
          world.get(), proposal.get(), plan.get(),
          {.steps_per_sample = k, .burn_in = 0, .seed = kernel_seed});
      evaluator.Run(samples);
      table.AddRow({"document-batch (whole DB)", std::to_string(budget),
                    FormatDouble(evaluator.answer().SquaredError(truth), 5)});
    }
    // Targeted kernel.
    {
      auto world = bench.tokens.pdb->Clone();
      ra::PlanPtr plan = sql::PlanQuery(ie::kQuery4, world->db());
      infer::SubsetUniformProposal proposal(*bench.model, targeted);
      pdb::MaterializedQueryEvaluator evaluator(
          world.get(), &proposal, plan.get(),
          {.steps_per_sample = k, .burn_in = 0, .seed = kernel_seed});
      evaluator.Run(samples);
      table.AddRow({"targeted (Boston docs)", std::to_string(budget),
                    FormatDouble(evaluator.answer().SquaredError(truth), 5)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the targeted proposal reaches a given error "
               "with a fraction of the walk budget — the gain the paper "
               "anticipates from query-specific jump functions (§4.1).\n";
  return 0;
}
