#include "pdb/parallel_evaluator.h"

#include <algorithm>
#include <mutex>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace fgpdb {
namespace pdb {

namespace {

// Builds, runs, and tears down one chain: a copy-on-write snapshot of the
// base world, a fresh proposal, and an evaluator. All chain state lives and
// dies inside this call, so a pool running T worker threads holds at most T
// worlds at a time no matter how many chains are requested.
//
// Materialized chains each compile their own view, which matters for the
// routed delta pipeline: the subscription map, routing masks, reusable
// operator buffers, and the TupleArena are per-view state owned by exactly
// one chain — nothing in the delta path is shared across threads, so chains
// apply deltas without synchronization.
QueryAnswer RunChain(const ProbabilisticDatabase& pdb, const ra::PlanNode& plan,
                     const ProposalFactory& make_proposal,
                     const ParallelOptions& options, size_t chain_index) {
  std::unique_ptr<ProbabilisticDatabase> world = pdb.Snapshot();
  std::unique_ptr<infer::Proposal> proposal = make_proposal(*world);
  EvaluatorOptions chain_options = options.chain_options;
  // Decorrelate chains: each gets its own seed stream, a function of the
  // chain index alone so scheduling cannot change results.
  chain_options.seed =
      options.chain_options.seed + 0x9e3779b97f4a7c15ULL * (chain_index + 1);
  std::unique_ptr<QueryEvaluator> evaluator;
  if (options.materialized) {
    evaluator = std::make_unique<MaterializedQueryEvaluator>(
        world.get(), proposal.get(), &plan, chain_options);
  } else {
    evaluator = std::make_unique<NaiveQueryEvaluator>(
        world.get(), proposal.get(), &plan, chain_options);
  }
  evaluator->Run(options.samples_per_chain);
  return evaluator->answer();
}

}  // namespace

QueryAnswer EvaluateParallel(const ProbabilisticDatabase& pdb,
                             const ra::PlanNode& plan,
                             const ProposalFactory& make_proposal,
                             const ParallelOptions& options) {
  FGPDB_CHECK_GT(options.num_chains, 0u);

  QueryAnswer merged;
  if (options.use_threads && options.num_chains > 1) {
    const size_t num_threads =
        options.max_threads > 0
            ? std::min(options.max_threads, options.num_chains)
            : ThreadPool::DefaultThreadCount(options.num_chains);
    std::mutex merge_mu;
    ThreadPool pool(num_threads);
    for (size_t b = 0; b < options.num_chains; ++b) {
      pool.Submit([&, b] {
        // Streaming merge: fold this chain in as soon as it finishes, while
        // other chains are still sampling. Counts are integers, so the
        // merge order cannot change the result.
        const QueryAnswer answer =
            RunChain(pdb, plan, make_proposal, options, b);
        std::lock_guard<std::mutex> lock(merge_mu);
        merged.Merge(answer);
      });
    }
    pool.Wait();
  } else {
    for (size_t b = 0; b < options.num_chains; ++b) {
      merged.Merge(RunChain(pdb, plan, make_proposal, options, b));
    }
  }
  return merged;
}

}  // namespace pdb
}  // namespace fgpdb
