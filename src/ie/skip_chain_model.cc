#include "ie/skip_chain_model.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_map>

#include "ie/ner_features.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {
namespace {

using factor::VarId;

bool IsCapitalized(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

}  // namespace

SkipChainNerModel::SkipChainNerModel(const TokenPdb& tokens,
                                     SkipChainOptions options)
    : string_ids_(&tokens.string_ids), options_(options) {
  const size_t n = tokens.num_tokens();
  prev_.assign(n, kNoVar);
  next_.assign(n, kNoVar);
  skip_partners_.assign(n, {});

  for (const auto& doc : tokens.docs) {
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
      next_[doc[i]] = doc[i + 1];
      prev_[doc[i + 1]] = doc[i];
    }
    if (!options_.use_skip_edges) continue;
    // Group this document's capitalized tokens by string id.
    std::unordered_map<uint32_t, std::vector<VarId>> groups;
    for (VarId v : doc) {
      const uint32_t sid = (*string_ids_)[v];
      if (IsCapitalized(tokens.vocab.String(sid))) groups[sid].push_back(v);
    }
    for (const auto& [sid, group] : groups) {
      (void)sid;
      if (group.size() < 2) continue;
      if (group.size() <= options_.max_skip_group) {
        // All pairs, as in the paper's Figure 3.
        for (size_t i = 0; i < group.size(); ++i) {
          for (size_t j = i + 1; j < group.size(); ++j) {
            skip_partners_[group[i]].push_back(group[j]);
            skip_partners_[group[j]].push_back(group[i]);
            ++num_skip_edges_;
          }
        }
      } else {
        // Bounded fallback: consecutive occurrences only.
        for (size_t i = 0; i + 1 < group.size(); ++i) {
          skip_partners_[group[i]].push_back(group[i + 1]);
          skip_partners_[group[i + 1]].push_back(group[i]);
          ++num_skip_edges_;
        }
      }
    }
  }
  // Ascending partner lists make a single variable's touched skip pairs
  // come out already in sorted-pair order — the same order the general
  // (sort + dedupe) enumeration scores in, which keeps the fast path's
  // floating-point summation bitwise-identical to it.
  for (auto& partners : skip_partners_) {
    std::sort(partners.begin(), partners.end());
  }

  // Register the dense score tables. Entry values mirror Parameters::Get
  // sums term-by-term (see CompiledWeights), so compiled scores are
  // bitwise-equal to the naive path. Emission and bias fold into one node
  // table — the naive path adds them in exactly this order.
  const auto num_strings =
      static_cast<uint32_t>(std::max<size_t>(1, tokens.vocab.size()));
  const size_t node = compiled_.AddTable(
      num_strings, kNumLabels,
      {[](uint32_t sid, uint32_t y) { return EmissionFeature(sid, y); },
       [](uint32_t, uint32_t y) { return BiasFeature(y); }});
  const size_t trans = compiled_.AddTable(
      kNumLabels, kNumLabels,
      {[](uint32_t a, uint32_t b) { return TransitionFeature(a, b); }});
  // Transposed copy of the transition weights: row yn holds the weights of
  // arriving at yn from each label. Each entry is the same single
  // Parameters::Get value as its trans_table_ mirror, so reading either
  // table yields bitwise-identical scores.
  const size_t trans_t = compiled_.AddTable(
      kNumLabels, kNumLabels,
      {[](uint32_t b, uint32_t a) { return TransitionFeature(a, b); }});
  const size_t skip = compiled_.AddTable(
      1, kNumLabels,
      {[](uint32_t, uint32_t) { return SkipSameFeature(); },
       [](uint32_t, uint32_t y) { return SkipSameLabelFeature(y); }});
  node_table_ = compiled_.data(node);
  trans_table_ = compiled_.data(trans);
  trans_table_t_ = compiled_.data(trans_t);
  skip_table_ = compiled_.data(skip);
}

template <typename GetLabel>
double SkipChainNerModel::NodeScore(VarId v, const GetLabel& get) const {
  const uint32_t y = get(v);
  return params_.Get(EmissionFeature((*string_ids_)[v], y)) +
         params_.Get(BiasFeature(y));
}

template <typename GetLabel>
double SkipChainNerModel::EdgeScore(VarId a, VarId b,
                                    const GetLabel& get) const {
  return params_.Get(TransitionFeature(get(a), get(b)));
}

template <typename GetLabel>
double SkipChainNerModel::SkipScore(VarId a, VarId b,
                                    const GetLabel& get) const {
  const uint32_t ya = get(a);
  if (ya != get(b)) return 0.0;
  return params_.Get(SkipSameFeature()) +
         params_.Get(SkipSameLabelFeature(ya));
}

void SkipChainNerModel::CollectTouched(const factor::Change& change,
                                       TouchedScratch* out) const {
  out->nodes.clear();
  out->edges.clear();
  out->skips.clear();
  auto add_edge = [&](VarId a, VarId b) {
    if (a == kNoVar || b == kNoVar) return;
    out->edges.emplace_back(a, b);
  };
  for (const auto& assignment : change.assignments) {
    const VarId v = assignment.var;
    out->nodes.push_back(v);
    if (options_.use_transitions) {
      add_edge(prev_[v], v);
      add_edge(v, next_[v]);
    }
    for (VarId p : skip_partners_[v]) {
      out->skips.emplace_back(std::min(v, p), std::max(v, p));
    }
  }
  if (change.assignments.size() == 1) {
    // One variable's factors are distinct by construction and already in
    // sorted order (prev < v < next; partners ascending) — skip the sort.
    return;
  }
  // Deduplicate factors shared between changed variables (e.g. the edge
  // between two adjacent changed tokens) so they are scored exactly once.
  auto dedupe = [](auto& items) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
  };
  dedupe(out->nodes);
  dedupe(out->edges);
  dedupe(out->skips);
}

double SkipChainNerModel::CompiledSingleDelta(const factor::World& world,
                                              VarId var,
                                              uint32_t new_label) const {
  const uint32_t old_label = world.Get(var);
  const double* node_row =
      node_table_ + static_cast<size_t>((*string_ids_)[var]) * kNumLabels;
  double delta = node_row[new_label] - node_row[old_label];
  if (options_.use_transitions) {
    const VarId p = prev_[var];
    if (p != kNoVar) {
      const double* row =
          trans_table_ + static_cast<size_t>(world.Get(p)) * kNumLabels;
      delta += row[new_label] - row[old_label];
    }
    const VarId nx = next_[var];
    if (nx != kNoVar) {
      const uint32_t yn = world.Get(nx);
      delta += trans_table_[static_cast<size_t>(new_label) * kNumLabels + yn] -
               trans_table_[static_cast<size_t>(old_label) * kNumLabels + yn];
    }
  }
  for (VarId p : skip_partners_[var]) {
    const uint32_t yp = world.Get(p);
    // The skip factor fires only on label agreement; agreement makes the
    // pair's first label equal to var's, so indexing by var's label reads
    // the same entry the pairwise enumeration does.
    const double score_new = new_label == yp ? skip_table_[new_label] : 0.0;
    const double score_old = old_label == yp ? skip_table_[old_label] : 0.0;
    delta += score_new - score_old;
  }
  return delta;
}

bool SkipChainNerModel::ConditionalRow(const factor::World& world,
                                       VarId var, double* out,
                                       factor::ScoreScratch* scratch) const {
  (void)scratch;  // Row gathers need no per-call working memory.
  if (!options_.use_compiled_scoring) return false;
  EnsureCompiled();
  const uint32_t old_label = world.Get(var);
  // Term-outer loops: lane v accumulates exactly the terms
  // CompiledSingleDelta(world, var, v) adds, in the same order — node, then
  // prev edge, then next edge, then skip partners ascending — so each lane
  // is bitwise-equal to the per-candidate delta. Lane old_label sums only
  // exact x−x = +0.0 terms, matching the candidate path's hard zero.
  const double* node_row =
      node_table_ + static_cast<size_t>((*string_ids_)[var]) * kNumLabels;
  const double node_old = node_row[old_label];
  for (uint32_t v = 0; v < kNumLabels; ++v) out[v] = node_row[v] - node_old;
  if (options_.use_transitions) {
    const VarId p = prev_[var];
    if (p != kNoVar) {
      const double* prow =
          trans_table_ + static_cast<size_t>(world.Get(p)) * kNumLabels;
      const double prow_old = prow[old_label];
      for (uint32_t v = 0; v < kNumLabels; ++v) out[v] += prow[v] - prow_old;
    }
    const VarId nx = next_[var];
    if (nx != kNoVar) {
      // The next-edge weights form a column of trans_table_; the transposed
      // table exposes that column as a contiguous row.
      const double* ncol =
          trans_table_t_ + static_cast<size_t>(world.Get(nx)) * kNumLabels;
      const double ncol_old = ncol[old_label];
      for (uint32_t v = 0; v < kNumLabels; ++v) out[v] += ncol[v] - ncol_old;
    }
  }
  for (VarId p : skip_partners_[var]) {
    const uint32_t yp = world.Get(p);
    const double score_old = old_label == yp ? skip_table_[old_label] : 0.0;
    for (uint32_t v = 0; v < kNumLabels; ++v) {
      out[v] += (v == yp ? skip_table_[yp] : 0.0) - score_old;
    }
  }
  return true;
}

double SkipChainNerModel::CompiledLogScoreDelta(const factor::World& world,
                                                const factor::Change& change,
                                                TouchedScratch* scratch) const {
  CollectTouched(change, scratch);
  const factor::PatchedWorld patched(world, change);
  double delta = 0.0;
  for (VarId v : scratch->nodes) {
    const double* node_row =
        node_table_ + static_cast<size_t>((*string_ids_)[v]) * kNumLabels;
    delta += node_row[patched.Get(v)] - node_row[world.Get(v)];
  }
  for (const auto& [a, b] : scratch->edges) {
    delta += trans_table_[static_cast<size_t>(patched.Get(a)) * kNumLabels +
                          patched.Get(b)] -
             trans_table_[static_cast<size_t>(world.Get(a)) * kNumLabels +
                          world.Get(b)];
  }
  for (const auto& [a, b] : scratch->skips) {
    const uint32_t na = patched.Get(a);
    const double score_new = na == patched.Get(b) ? skip_table_[na] : 0.0;
    const uint32_t oa = world.Get(a);
    const double score_old = oa == world.Get(b) ? skip_table_[oa] : 0.0;
    delta += score_new - score_old;
  }
  return delta;
}

double SkipChainNerModel::NaiveLogScoreDelta(const factor::World& world,
                                             const factor::Change& change,
                                             TouchedScratch* scratch) const {
  CollectTouched(change, scratch);
  const factor::PatchedWorld patched(world, change);
  const auto old_label = [&](VarId v) { return world.Get(v); };
  const auto new_label = [&](VarId v) { return patched.Get(v); };
  double delta = 0.0;
  for (VarId v : scratch->nodes) {
    delta += NodeScore(v, new_label) - NodeScore(v, old_label);
  }
  for (const auto& [a, b] : scratch->edges) {
    delta += EdgeScore(a, b, new_label) - EdgeScore(a, b, old_label);
  }
  for (const auto& [a, b] : scratch->skips) {
    delta += SkipScore(a, b, new_label) - SkipScore(a, b, old_label);
  }
  return delta;
}

double SkipChainNerModel::LogScoreDelta(const factor::World& world,
                                        const factor::Change& change) const {
  return LogScoreDelta(world, change, &member_scratch_);
}

double SkipChainNerModel::LogScoreDelta(const factor::World& world,
                                        const factor::Change& change,
                                        factor::ScoreScratch* scratch) const {
  TouchedScratch* s = scratch != nullptr
                          ? static_cast<TouchedScratch*>(scratch)
                          : &member_scratch_;
  if (!options_.use_compiled_scoring) {
    return NaiveLogScoreDelta(world, change, s);
  }
  EnsureCompiled();
  if (change.assignments.size() == 1) {
    const auto& a = change.assignments[0];
    return CompiledSingleDelta(world, a.var, a.value);
  }
  return CompiledLogScoreDelta(world, change, s);
}

std::unique_ptr<factor::ScoreScratch> SkipChainNerModel::MakeScratch() const {
  return std::make_unique<TouchedScratch>();
}

bool SkipChainNerModel::FactorsRespectPartition(
    const std::vector<uint32_t>& partition) const {
  if (partition.size() != num_variables()) return false;
  for (VarId v = 0; v < partition.size(); ++v) {
    if (options_.use_transitions && next_[v] != kNoVar &&
        partition[next_[v]] != partition[v]) {
      return false;
    }
    if (options_.use_skip_edges) {
      for (const VarId partner : skip_partners_[v]) {
        if (partition[partner] != partition[v]) return false;
      }
    }
  }
  return true;
}

double SkipChainNerModel::LogScore(const factor::World& world) const {
  const auto label = [&](VarId v) { return world.Get(v); };
  const size_t n = num_variables();
  double total = 0.0;
  if (!options_.use_compiled_scoring) {
    for (size_t i = 0; i < n; ++i) {
      const VarId v = static_cast<VarId>(i);
      total += NodeScore(v, label);
      if (options_.use_transitions && next_[v] != kNoVar) {
        total += EdgeScore(v, next_[v], label);
      }
      for (VarId p : skip_partners_[v]) {
        if (p > v) total += SkipScore(v, p, label);  // Count each pair once.
      }
    }
    return total;
  }
  EnsureCompiled();
  for (size_t i = 0; i < n; ++i) {
    const VarId v = static_cast<VarId>(i);
    const uint32_t y = world.Get(v);
    total += node_table_[static_cast<size_t>((*string_ids_)[v]) * kNumLabels + y];
    if (options_.use_transitions && next_[v] != kNoVar) {
      total += trans_table_[static_cast<size_t>(y) * kNumLabels +
                            world.Get(next_[v])];
    }
    for (VarId p : skip_partners_[v]) {
      if (p > v && y == world.Get(p)) total += skip_table_[y];
    }
  }
  return total;
}

void SkipChainNerModel::FeatureDelta(const factor::World& world,
                                     const factor::Change& change,
                                     factor::SparseVector* out) const {
  FeatureDelta(world, change, out, &member_scratch_);
}

void SkipChainNerModel::FeatureDelta(const factor::World& world,
                                     const factor::Change& change,
                                     factor::SparseVector* out,
                                     factor::ScoreScratch* scratch) const {
  TouchedScratch* s = scratch != nullptr
                          ? static_cast<TouchedScratch*>(scratch)
                          : &member_scratch_;
  CollectTouched(change, s);
  const factor::PatchedWorld patched(world, change);
  const auto old_label = [&](VarId v) { return world.Get(v); };
  const auto new_label = [&](VarId v) { return patched.Get(v); };

  for (VarId v : s->nodes) {
    const uint32_t sid = (*string_ids_)[v];
    const uint32_t y_new = new_label(v);
    const uint32_t y_old = old_label(v);
    if (y_new == y_old) continue;
    out->Add(EmissionFeature(sid, y_new), 1.0);
    out->Add(BiasFeature(y_new), 1.0);
    out->Add(EmissionFeature(sid, y_old), -1.0);
    out->Add(BiasFeature(y_old), -1.0);
  }
  for (const auto& [a, b] : s->edges) {
    out->Add(TransitionFeature(new_label(a), new_label(b)), 1.0);
    out->Add(TransitionFeature(old_label(a), old_label(b)), -1.0);
  }
  for (const auto& [a, b] : s->skips) {
    const uint32_t na = new_label(a);
    if (na == new_label(b)) {
      out->Add(SkipSameFeature(), 1.0);
      out->Add(SkipSameLabelFeature(na), 1.0);
    }
    const uint32_t oa = old_label(a);
    if (oa == old_label(b)) {
      out->Add(SkipSameFeature(), -1.0);
      out->Add(SkipSameLabelFeature(oa), -1.0);
    }
  }
  out->Consolidate();
}

void SkipChainNerModel::InitializeFromCorpusStatistics(const TokenPdb& tokens,
                                                       double skip_weight,
                                                       double emission_scale) {
  // Smoothed per-string label log-odds from the TRUTH column, plus label
  // frequency biases and BIO-consistent transition preferences. This mimics
  // what SampleRank converges to without spending bench time on training.
  const double kSmoothing = 0.5;
  std::unordered_map<uint64_t, double> counts;  // (string, label) -> count
  std::vector<double> label_counts(kNumLabels, kSmoothing);
  for (size_t i = 0; i < tokens.num_tokens(); ++i) {
    const uint64_t key =
        (static_cast<uint64_t>(tokens.string_ids[i]) << 8) | tokens.truth[i];
    counts[key] += 1.0;
    label_counts[tokens.truth[i]] += 1.0;
  }
  std::unordered_map<uint32_t, double> string_totals;
  for (size_t i = 0; i < tokens.num_tokens(); ++i) {
    string_totals[tokens.string_ids[i]] += 1.0;
  }
  // One emission weight per (string, label), plus biases, transitions, and
  // the skip features — size the store once instead of growing through it.
  params_.Reserve(string_totals.size() * kNumLabels + kNumLabels +
                  kNumLabels * kNumLabels + 1 + kNumLabels);
  for (const auto& [sid, total] : string_totals) {
    for (uint32_t y = 0; y < kNumLabels; ++y) {
      const auto it = counts.find((static_cast<uint64_t>(sid) << 8) | y);
      const double c = (it == counts.end() ? 0.0 : it->second) + kSmoothing;
      params_.Set(EmissionFeature(sid, y),
                  emission_scale *
                      (std::log(c / (total + kSmoothing * kNumLabels)) -
                       std::log(kSmoothing /
                                (total + kSmoothing * kNumLabels))));
    }
  }
  double total_tokens = 0.0;
  for (double c : label_counts) total_tokens += c;
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    params_.Set(BiasFeature(y), std::log(label_counts[y] / total_tokens));
  }
  for (uint32_t a = 0; a < kNumLabels; ++a) {
    for (uint32_t b = 0; b < kNumLabels; ++b) {
      params_.Set(TransitionFeature(a, b), ValidTransition(a, b) ? 0.0 : -4.0);
    }
  }
  params_.Set(SkipSameFeature(), skip_weight);
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    params_.Set(SkipSameLabelFeature(y), y == kLabelO ? 0.0 : skip_weight);
  }
}

}  // namespace ie
}  // namespace fgpdb
