// Figure 6: aggregate query evaluation — normalized squared-error loss over
// time for Query 2 (global COUNT of person mentions) and Query 3 (documents
// with equal person and organization mention counts).
//
// Paper: 1M tuples, truth from 5000 samples at k=10,000; Query 2 converges
// rapidly (its answer distribution is tightly peaked — Fig. 7), Query 3 at a
// "respectable rate". Default here: 100k tuples, scaled truth run.
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "fig6");
  const size_t n = static_cast<size_t>(100000 * BenchScale());
  const uint64_t k = std::max<uint64_t>(100, n / 1000);
  const uint64_t samples = 300;

  std::cout << "=== Figure 6: aggregate queries, loss over time ("
            << HumanCount(static_cast<double>(n)) << " tuples, master seed "
            << master << ") ===\n"
            << "Query 2: " << ie::kQuery2 << "\nQuery 3: " << ie::kQuery3
            << "\n\n";
  NerBench bench(n, DeriveSeed(master, 0));

  struct Series {
    std::vector<double> seconds;
    std::vector<double> loss;
  };
  // Two streams per query: its truth run and its measured chain.
  auto run_query = [&](const char* query, uint64_t stream) {
    const pdb::QueryAnswer truth =
        EstimateGroundTruth(bench, query, 1200, k, DeriveSeed(master, stream));
    auto world = bench.tokens.pdb->Clone();
    ra::PlanPtr plan = sql::PlanQuery(query, world->db());
    auto proposal = bench.MakeProposal();
    pdb::MaterializedQueryEvaluator evaluator(
        world.get(), proposal.get(), plan.get(),
        {.steps_per_sample = k,
         .burn_in = 0,
         .seed = DeriveSeed(master, stream + 1)});
    Series series;
    Stopwatch timer;
    evaluator.Initialize();
    for (uint64_t i = 0; i < samples; ++i) {
      evaluator.DrawSample();
      series.seconds.push_back(timer.ElapsedSeconds());
      series.loss.push_back(evaluator.answer().SquaredError(truth));
    }
    return series;
  };

  const Series q2 = run_query(ie::kQuery2, 1);
  std::cerr << "[fig6] Query 2 done\n";
  const Series q3 = run_query(ie::kQuery3, 3);
  std::cerr << "[fig6] Query 3 done\n";

  const double norm2 = std::max(q2.loss.front(), 1e-12);
  const double norm3 = std::max(q3.loss.front(), 1e-12);
  TablePrinter table({"sample", "q2 time (s)", "q2 loss (norm)", "q3 time (s)",
                      "q3 loss (norm)"});
  for (uint64_t i = 0; i < samples; i += 15) {
    table.AddRow({std::to_string(i + 1), FormatDouble(q2.seconds[i], 4),
                  FormatDouble(q2.loss[i] / norm2, 4),
                  FormatDouble(q3.seconds[i], 4),
                  FormatDouble(q3.loss[i] / norm3, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);

  // Convergence summary: fraction of the run needed to halve each loss.
  auto half_index = [](const Series& s) {
    const double target = s.loss.front() / 2.0;
    for (size_t i = 0; i < s.loss.size(); ++i) {
      if (s.loss[i] <= target) return i;
    }
    return s.loss.size();
  };
  std::cout << "\nSamples to half loss: Query 2 = " << half_index(q2) + 1
            << ", Query 3 = " << half_index(q3) + 1 << "\n";
  std::cout << "Paper shape check: Query 2 converges rapidly toward zero; "
               "Query 3 converges at a slower but steady rate.\n";
  return 0;
}
