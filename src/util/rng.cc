#include "util/rng.h"

#include <algorithm>

#include "util/math_util.h"

namespace fgpdb {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  FGPDB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FGPDB_CHECK_GE(w, 0.0);
    total += w;
  }
  FGPDB_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

size_t Rng::LogCategorical(const std::vector<double>& log_weights) {
  FGPDB_CHECK(!log_weights.empty());
  const double lse = LogSumExp(log_weights);
  std::vector<double> probs(log_weights.size());
  for (size_t i = 0; i < log_weights.size(); ++i) {
    probs[i] = std::exp(log_weights[i] - lse);
  }
  return Categorical(probs);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace fgpdb
