// Figure 7 (Appendix 9.1): the answer to aggregate Query 2 as a histogram —
// the distribution of person-mention counts across sampled worlds. The
// paper's observation: the mass is approximately normal and concentrated
// around a small subset of values, which is why MCMC converges quickly on
// such aggregates.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "pdb/aggregate_distribution.h"
#include "util/math_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "fig7");
  const size_t n = static_cast<size_t>(100000 * BenchScale());
  const uint64_t k = std::max<uint64_t>(100, n / 1000);

  std::cout << "=== Figure 7: distribution of Query 2 (person mention count) "
            << "over " << HumanCount(static_cast<double>(n))
            << " tuples (master seed " << master << ") ===\n\n";
  NerBench bench(n, DeriveSeed(master, 0));
  auto world = bench.tokens.pdb->Clone();
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery2, world->db());
  auto proposal = bench.MakeProposal();
  pdb::MaterializedQueryEvaluator evaluator(
      world.get(), proposal.get(), plan.get(),
      {.steps_per_sample = 10 * k,
       .burn_in = DefaultBurnIn(n),
       .seed = DeriveSeed(master, 1)});
  evaluator.Run(2000);

  // The answer: one tuple per observed count value, with probability —
  // summarized by the library's aggregate-distribution API.
  const pdb::AggregateDistribution dist(evaluator.answer());
  const auto bins = dist.Histogram(18);
  TablePrinter table({"count range", "probability", "bar"});
  double max_mass = 1e-12;
  for (const auto& bin : bins) max_mass = std::max(max_mass, bin.mass);
  for (const auto& bin : bins) {
    const size_t bar_len = static_cast<size_t>(40.0 * bin.mass / max_mass);
    table.AddRow({std::to_string(static_cast<int64_t>(bin.lo)) + "-" +
                      std::to_string(static_cast<int64_t>(bin.hi)),
                  FormatDouble(bin.mass, 4), std::string(bar_len, '#')});
  }
  table.Print(std::cout);

  // Shape summary: unimodality and concentration, the properties the paper
  // highlights.
  std::cout << "\nmean=" << FormatDouble(dist.Mean(), 6)
            << " stddev=" << FormatDouble(dist.StdDev(), 4)
            << " mode=" << FormatDouble(dist.Mode(), 6)
            << " median=" << FormatDouble(dist.Quantile(0.5), 6)
            << " mass within 2 stddev="
            << FormatDouble(dist.MassWithin(2 * dist.StdDev()), 4) << "\n";
  std::cout << "Paper shape check: unimodal, approximately normal, mass "
               "clustered around a small subset of the answer set.\n";
  return 0;
}
