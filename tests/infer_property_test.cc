// Property sweeps for the inference stack: forward-backward vs brute force
// on random chains, MH/Gibbs convergence on random graphs, and detailed-
// balance sanity of the proposal corrections.
#include <gtest/gtest.h>

#include <cmath>

#include "factor/factor_graph.h"
#include "infer/exact.h"
#include "infer/forward_backward.h"
#include "infer/marginal_estimator.h"
#include "infer/metropolis_hastings.h"
#include "infer/proposal.h"
#include "infer/subset_proposal.h"
#include "util/rng.h"

namespace fgpdb {
namespace infer {
namespace {

using factor::Domain;
using factor::FactorGraph;
using factor::TableFactor;
using factor::VarId;
using factor::World;

FactorGraph RandomGraph(size_t vars, size_t labels, double edge_prob,
                        uint64_t seed) {
  FactorGraph graph;
  auto domain =
      std::make_shared<Domain>(Domain::OfRange(static_cast<int64_t>(labels)));
  Rng rng(seed);
  for (size_t i = 0; i < vars; ++i) graph.AddVariable(domain);
  for (size_t i = 0; i < vars; ++i) {
    std::vector<double> scores(labels);
    for (auto& s : scores) s = rng.Gaussian();
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{static_cast<VarId>(i)}, std::vector<size_t>{labels},
        std::move(scores)));
  }
  for (size_t i = 0; i < vars; ++i) {
    for (size_t j = i + 1; j < vars; ++j) {
      if (!rng.Bernoulli(edge_prob)) continue;
      std::vector<double> scores(labels * labels);
      for (auto& s : scores) s = rng.Gaussian();
      graph.AddFactor(std::make_unique<TableFactor>(
          std::vector<VarId>{static_cast<VarId>(i), static_cast<VarId>(j)},
          std::vector<size_t>{labels, labels}, std::move(scores)));
    }
  }
  return graph;
}

class ChainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainPropertyTest, ForwardBackwardMatchesBruteForce) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const size_t n = 2 + rng.UniformInt(4u);      // 2-5 positions
  const size_t labels = 2 + rng.UniformInt(3u); // 2-4 labels
  ChainPotentials potentials;
  potentials.node.assign(n, std::vector<double>(labels));
  potentials.edge.assign(labels, std::vector<double>(labels));
  for (auto& row : potentials.node) {
    for (auto& x : row) x = 2.0 * rng.Gaussian();
  }
  for (auto& row : potentials.edge) {
    for (auto& x : row) x = 2.0 * rng.Gaussian();
  }

  FactorGraph graph;
  auto domain =
      std::make_shared<Domain>(Domain::OfRange(static_cast<int64_t>(labels)));
  for (size_t i = 0; i < n; ++i) graph.AddVariable(domain);
  for (size_t i = 0; i < n; ++i) {
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{static_cast<VarId>(i)}, std::vector<size_t>{labels},
        potentials.node[i]));
  }
  std::vector<double> flat;
  for (const auto& row : potentials.edge) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{static_cast<VarId>(i), static_cast<VarId>(i + 1)},
        std::vector<size_t>{labels, labels}, flat));
  }

  const ChainResult fb = ForwardBackward(potentials);
  const ExactResult exact = ExactInference(graph);
  ASSERT_NEAR(fb.log_partition, exact.log_partition, 1e-8);
  for (size_t t = 0; t < n; ++t) {
    for (size_t y = 0; y < labels; ++y) {
      ASSERT_NEAR(fb.marginals[t][y], exact.marginals[t][y], 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainPropertyTest, ::testing::Range(1, 13));

class McmcPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(McmcPropertyTest, UniformKernelConvergesOnRandomLoopyGraphs) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  FactorGraph graph = RandomGraph(4, 3, 0.6, seed);
  World world = graph.MakeWorld();
  UniformSingleVariableProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, seed * 13 + 1);
  MarginalEstimator estimator({3, 3, 3, 3});
  sampler.Run(3000);
  for (int i = 0; i < 60000; ++i) {
    sampler.Step();
    estimator.Observe(world);
  }
  const ExactResult exact = ExactInference(graph);
  EXPECT_LT(estimator.SquaredErrorAgainst(exact.marginals), 0.01)
      << "seed " << seed;
}

TEST_P(McmcPropertyTest, GibbsKernelConvergesOnRandomLoopyGraphs) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  FactorGraph graph = RandomGraph(4, 3, 0.6, seed + 100);
  World world = graph.MakeWorld();
  GibbsProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, seed * 17 + 5);
  MarginalEstimator estimator({3, 3, 3, 3});
  sampler.Run(1000);
  for (int i = 0; i < 40000; ++i) {
    sampler.Step();
    estimator.Observe(world);
  }
  const ExactResult exact = ExactInference(graph);
  EXPECT_LT(estimator.SquaredErrorAgainst(exact.marginals), 0.01)
      << "seed " << seed;
  EXPECT_DOUBLE_EQ(sampler.acceptance_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmcPropertyTest, ::testing::Range(1, 7));

TEST(SubsetProposalTest, SamplesConditionalOfSubset) {
  // Freeze variable 2 and sample {0,1} | y2: the subset chain must match
  // the conditional distribution computed by brute force.
  FactorGraph graph = RandomGraph(3, 2, 1.0, 77);
  World world = graph.MakeWorld();
  world.Set(2, 1);  // Condition on y2 = 1.
  SubsetUniformProposal proposal(graph, {0, 1});
  MetropolisHastings sampler(graph, &world, &proposal, 31);
  MarginalEstimator estimator({2, 2, 2});
  sampler.Run(2000);
  for (int i = 0; i < 60000; ++i) {
    sampler.Step();
    estimator.Observe(world);
  }
  EXPECT_EQ(world.Get(2), 1u) << "frozen variable must not move";

  // Brute-force conditional P(y0 | y2 = 1).
  double num = 0.0, den = 0.0;
  for (uint32_t y0 = 0; y0 < 2; ++y0) {
    for (uint32_t y1 = 0; y1 < 2; ++y1) {
      World w(3);
      w.Set(0, y0);
      w.Set(1, y1);
      w.Set(2, 1);
      const double p = std::exp(graph.LogScore(w));
      den += p;
      if (y0 == 1) num += p;
    }
  }
  EXPECT_NEAR(estimator.Estimate(0, 1), num / den, 0.02);
}

TEST(ProposalRatioTest, AsymmetricRatioPreservesStationaryDistribution) {
  // A deliberately biased kernel with the correct q-ratio correction must
  // still converge to the model distribution (Eq. 3's second factor).
  class BiasedProposal final : public Proposal {
   public:
    explicit BiasedProposal(const factor::Model& model) : model_(model) {}
    using Proposal::Propose;
    void Propose(const World& world, Rng& rng, factor::Change* change,
                 double* log_ratio) override {
      // Proposes value 1 with probability 0.8, value 0 with 0.2.
      const auto var =
          static_cast<VarId>(rng.UniformInt(model_.num_variables()));
      const uint32_t value = rng.Bernoulli(0.8) ? 1 : 0;
      const uint32_t old_value = world.Get(var);
      const auto q = [](uint32_t v) { return v == 1 ? 0.8 : 0.2; };
      *log_ratio = std::log(q(old_value)) - std::log(q(value));
      change->Clear();
      change->Set(var, value);
    }
   private:
    const factor::Model& model_;
  };

  FactorGraph graph = RandomGraph(3, 2, 1.0, 99);
  World world = graph.MakeWorld();
  BiasedProposal proposal(graph);
  MetropolisHastings sampler(graph, &world, &proposal, 71);
  MarginalEstimator estimator({2, 2, 2});
  sampler.Run(3000);
  for (int i = 0; i < 80000; ++i) {
    sampler.Step();
    estimator.Observe(world);
  }
  const ExactResult exact = ExactInference(graph);
  EXPECT_LT(estimator.SquaredErrorAgainst(exact.marginals), 0.01);
}

}  // namespace
}  // namespace infer
}  // namespace fgpdb
