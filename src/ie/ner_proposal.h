// The paper's §5.1 proposal distribution:
//
//   "first a label variable is selected uniformly at random from L, then
//    the label is randomly changed to one of the nine CoNLL labels. This
//    process is repeated for 2000 proposals before L is changed by loading
//    a new batch of variables from the database: up to five documents worth
//    of variables may be selected (uniformly at random)."
//
// The batch models the paper's disk-locality optimization (variables of a
// few documents are resident in memory at a time). The kernel is symmetric
// within a batch, so the proposal ratio is 1.
#ifndef FGPDB_IE_NER_PROPOSAL_H_
#define FGPDB_IE_NER_PROPOSAL_H_

#include <vector>

#include "ie/token_pdb.h"
#include "infer/proposal.h"

namespace fgpdb {
namespace ie {

struct NerProposalOptions {
  size_t proposals_per_batch = 2000;
  size_t docs_per_batch = 5;
};

class DocumentBatchProposal final : public infer::Proposal {
 public:
  /// `docs` is the document→variables structure of the TokenPdb; it must
  /// outlive the proposal.
  DocumentBatchProposal(const std::vector<std::vector<factor::VarId>>* docs,
                        NerProposalOptions options = {});

  using infer::Proposal::Propose;
  void Propose(const factor::World& world, Rng& rng, factor::Change* change,
               double* log_ratio) override;

  /// Enables cache-prefetch hints against `model` (nullptr disables, the
  /// default): after drawing a site, Propose predicts the NEXT proposal's
  /// site by peeking CLONED rngs down both acceptance branches (0 or 1
  /// intervening draws) and warms its hot record, then deep-warms the
  /// current site's scoring operands. Purely a hint — the real rng stream
  /// and the proposed change are bitwise unchanged, so trajectories are
  /// identical with prefetching on or off. `model` must outlive the
  /// proposal.
  void EnablePrefetch(const factor::Model* model) { prefetch_model_ = model; }

  /// Variables in the current batch (empty before the first proposal).
  const std::vector<factor::VarId>& batch() const { return batch_; }

 private:
  void ReloadBatch(Rng& rng);

  const std::vector<std::vector<factor::VarId>>* docs_;
  NerProposalOptions options_;
  const factor::Model* prefetch_model_ = nullptr;
  std::vector<factor::VarId> batch_;
  size_t proposals_since_reload_ = 0;
};

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_NER_PROPOSAL_H_
