#include "ie/metrics.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "ie/labels.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {
namespace {

// (start, end, type) mention spans decoded from a BIO sequence. An I-<T>
// without a matching B-<T> opens a new mention (conventional lenient
// decoding).
std::set<std::tuple<size_t, size_t, int>> DecodeMentions(
    const std::vector<uint32_t>& labels, const std::vector<size_t>& doc_starts) {
  std::set<std::tuple<size_t, size_t, int>> mentions;
  std::set<size_t> boundaries(doc_starts.begin(), doc_starts.end());
  size_t start = 0;
  EntityType open = EntityType::kNone;
  auto close = [&](size_t end) {
    if (open != EntityType::kNone) {
      mentions.emplace(start, end, static_cast<int>(open));
      open = EntityType::kNone;
    }
  };
  for (size_t i = 0; i < labels.size(); ++i) {
    const uint32_t y = labels[i];
    const bool at_boundary = boundaries.count(i) > 0;
    if (at_boundary) close(i);
    if (y == kLabelO) {
      close(i);
    } else if (IsBegin(y) || open != LabelType(y)) {
      close(i);
      open = LabelType(y);
      start = i;
    }
    // Otherwise: I-<T> continuing the open mention of the same type.
  }
  close(labels.size());
  return mentions;
}

}  // namespace

NerScores ScoreBio(const std::vector<uint32_t>& predicted,
                   const std::vector<uint32_t>& truth,
                   const std::vector<size_t>& doc_starts) {
  FGPDB_CHECK_EQ(predicted.size(), truth.size());
  NerScores scores;
  if (predicted.empty()) return scores;

  uint64_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == truth[i]) ++correct;
  }
  scores.token_accuracy =
      static_cast<double>(correct) / static_cast<double>(predicted.size());

  const auto pred_mentions = DecodeMentions(predicted, doc_starts);
  const auto true_mentions = DecodeMentions(truth, doc_starts);
  scores.predicted_mentions = pred_mentions.size();
  scores.truth_mentions = true_mentions.size();
  for (const auto& m : pred_mentions) {
    if (true_mentions.count(m) > 0) ++scores.matched_mentions;
  }
  scores.precision =
      pred_mentions.empty()
          ? 0.0
          : static_cast<double>(scores.matched_mentions) / pred_mentions.size();
  scores.recall =
      true_mentions.empty()
          ? 0.0
          : static_cast<double>(scores.matched_mentions) / true_mentions.size();
  scores.f1 = (scores.precision + scores.recall) == 0.0
                  ? 0.0
                  : 2.0 * scores.precision * scores.recall /
                        (scores.precision + scores.recall);
  return scores;
}

}  // namespace ie
}  // namespace fgpdb
