// Deterministic pseudo-random number generation.
//
// All stochastic components of fgpdb (MCMC proposals, acceptance tests,
// synthetic data generation, SampleRank) draw from Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded via SplitMix64, which is fast, high quality, and has
// a 2^256-1 period — ample for the 10^8-proposal runs in the paper.
#ifndef FGPDB_UTIL_RNG_H_
#define FGPDB_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace fgpdb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0xfeedc0ffee123456ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// rejection method.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    FGPDB_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box–Muller.
  double Gaussian();

  /// Gaussian with given mean/stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Samples an index proportionally to non-negative `weights`.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples an index from unnormalized log-weights (numerically stable).
  size_t LogCategorical(const std::vector<double>& log_weights);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Deterministically derives a child generator; used to give each parallel
  /// chain an independent stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fgpdb

#endif  // FGPDB_UTIL_RNG_H_
