#include "infer/metropolis_hastings.h"

#include <cmath>

#include "util/logging.h"

namespace fgpdb {
namespace infer {

MetropolisHastings::MetropolisHastings(const factor::Model& model,
                                       factor::World* world,
                                       Proposal* proposal, uint64_t seed)
    : model_(model), world_(world), proposal_(proposal), rng_(seed) {
  FGPDB_CHECK(world_ != nullptr);
  FGPDB_CHECK(proposal_ != nullptr);
}

bool MetropolisHastings::Step() {
  ++num_proposed_;
  double log_proposal_ratio = 0.0;
  const factor::Change change =
      proposal_->Propose(*world_, rng_, &log_proposal_ratio);
  if (change.empty()) {
    // Self-transition: counted as accepted (the chain stays put).
    ++num_accepted_;
    return true;
  }
  const double log_model_ratio = model_.LogScoreDelta(*world_, change);
  const double log_alpha = log_model_ratio + log_proposal_ratio;
  bool accept = log_alpha >= 0.0;
  if (!accept) accept = rng_.Uniform() < std::exp(log_alpha);
  if (!accept) return false;

  applied_scratch_.clear();
  world_->Apply(change, &applied_scratch_);
  // Drop no-op assignments (value unchanged) before notifying listeners so
  // delta buffers only see real modifications.
  auto& applied = applied_scratch_;
  applied.erase(std::remove_if(applied.begin(), applied.end(),
                               [](const factor::AppliedAssignment& a) {
                                 return a.old_value == a.new_value;
                               }),
                applied.end());
  ++num_accepted_;
  if (!applied.empty()) {
    for (const auto& listener : listeners_) listener(applied);
  }
  return true;
}

}  // namespace infer
}  // namespace fgpdb
