// Property tests for incremental view maintenance beyond label updates:
// random interleavings of INSERT / DELETE / UPDATE, delta batching
// invariance, and seed sweeps. These are the invariants Eq. 6 rests on.
#include <gtest/gtest.h>

#include "ra/executor.h"
#include "sql/binder.h"
#include "test_helpers.h"
#include "view/incremental.h"

namespace fgpdb {
namespace {

using testing::ToMultiset;

// A table of ORDERS(ID pk, CUST, ITEM, QTY) mutated by random DML.
Table* MakeOrdersTable(Database* db) {
  Schema schema(
      {
          Attribute{"ID", ValueType::kInt64},
          Attribute{"CUST", ValueType::kString},
          Attribute{"ITEM", ValueType::kString},
          Attribute{"QTY", ValueType::kInt64},
      },
      0);
  return db->CreateTable("ORDERS", std::move(schema));
}

class RandomDml {
 public:
  RandomDml(Table* table, uint64_t seed) : table_(table), rng_(seed) {}

  // Performs one random insert/update/delete, recording the delta.
  void Step(view::DeltaSet* deltas) {
    const double r = rng_.Uniform();
    if (r < 0.4 || live_rows_.empty()) {
      Insert(deltas);
    } else if (r < 0.8) {
      Update(deltas);
    } else {
      Delete(deltas);
    }
  }

 private:
  void Insert(view::DeltaSet* deltas) {
    Tuple t{Value::Int(next_id_++), RandomCust(), RandomItem(),
            Value::Int(1 + static_cast<int64_t>(rng_.UniformInt(5u)))};
    live_rows_.push_back(table_->Insert(t));
    deltas->ForTable("ORDERS").Add(t, 1);
  }

  void Update(view::DeltaSet* deltas) {
    const size_t pick = rng_.UniformInt(live_rows_.size());
    const RowId row = live_rows_[pick];
    const Tuple old_tuple = table_->Get(row);
    if (rng_.Bernoulli(0.5)) {
      table_->UpdateField(row, 1, RandomCust());
    } else {
      table_->UpdateField(
          row, 3, Value::Int(1 + static_cast<int64_t>(rng_.UniformInt(5u))));
    }
    deltas->ForTable("ORDERS").Add(old_tuple, -1);
    deltas->ForTable("ORDERS").Add(table_->Get(row), 1);
  }

  void Delete(view::DeltaSet* deltas) {
    const size_t pick = rng_.UniformInt(live_rows_.size());
    const RowId row = live_rows_[pick];
    deltas->ForTable("ORDERS").Add(table_->Get(row), -1);
    table_->Delete(row);
    live_rows_[pick] = live_rows_.back();
    live_rows_.pop_back();
  }

  Value RandomCust() {
    static const std::vector<std::string> kCusts = {"alice", "bob", "carol"};
    return Value::String(kCusts[rng_.UniformInt(kCusts.size())]);
  }
  Value RandomItem() {
    static const std::vector<std::string> kItems = {"nail", "bolt", "gear",
                                                    "cog"};
    return Value::String(kItems[rng_.UniformInt(kItems.size())]);
  }

  Table* table_;
  Rng rng_;
  std::vector<RowId> live_rows_;
  int64_t next_id_ = 0;
};

struct DmlCase {
  const char* query;
  uint64_t seed;
};

class DmlPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(DmlPropertyTest, IncrementalTracksRandomDml) {
  const auto& [query, seed] = GetParam();
  Database db;
  Table* table = MakeOrdersTable(&db);
  RandomDml dml(table, static_cast<uint64_t>(seed));

  // Start from a non-empty table.
  {
    view::DeltaSet ignored;
    for (int i = 0; i < 20; ++i) dml.Step(&ignored);
  }
  ra::PlanPtr plan = sql::PlanQuery(query, db);
  view::MaterializedView view(*plan);
  view.Initialize(db);

  Rng rng(static_cast<uint64_t>(seed) * 977 + 3);
  for (int round = 0; round < 120; ++round) {
    view::DeltaSet deltas;
    const int ops = 1 + static_cast<int>(rng.UniformInt(5u));
    for (int i = 0; i < ops; ++i) dml.Step(&deltas);
    view.Apply(deltas);
    ASSERT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)))
        << "round " << round << " query " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesTimesSeeds, DmlPropertyTest,
    ::testing::Combine(
        ::testing::Values(
            "SELECT ITEM FROM ORDERS WHERE QTY >= 3",
            "SELECT CUST, COUNT(*), SUM(QTY) FROM ORDERS GROUP BY CUST",
            "SELECT CUST FROM ORDERS GROUP BY CUST "
            "HAVING COUNT_IF(QTY >= 4) = COUNT_IF(QTY <= 2)",
            "SELECT DISTINCT CUST, ITEM FROM ORDERS",
            "SELECT A.ITEM, B.ITEM FROM ORDERS A, ORDERS B "
            "WHERE A.CUST = B.CUST AND A.QTY < B.QTY",
            "SELECT ITEM, MIN(QTY), MAX(QTY), AVG(QTY) FROM ORDERS "
            "GROUP BY ITEM"),
        ::testing::Range(1, 5)));

TEST(DeltaBatchingTest, SplitAndMergedDeltasGiveSameContents) {
  // Applying updates as one big delta round or as many small rounds must
  // produce identical view contents (associativity of Eq. 6 folding).
  const char* query =
      "SELECT CUST, COUNT(*) FROM ORDERS WHERE QTY >= 2 GROUP BY CUST";
  auto run = [&](size_t rounds_between_apply) {
    Database db;
    Table* table = MakeOrdersTable(&db);
    RandomDml dml(table, 42);
    {
      view::DeltaSet ignored;
      for (int i = 0; i < 15; ++i) dml.Step(&ignored);
    }
    ra::PlanPtr plan = sql::PlanQuery(query, db);
    view::MaterializedView view(*plan);
    view.Initialize(db);
    view::DeltaSet pending;
    for (int step = 0; step < 90; ++step) {
      dml.Step(&pending);
      if ((step + 1) % rounds_between_apply == 0) {
        view.Apply(pending);
        pending.Clear();
      }
    }
    view.Apply(pending);
    return view.contents();
  };
  const auto every_step = run(1);
  const auto every_ten = run(10);
  const auto one_shot = run(1000);
  EXPECT_EQ(every_step, every_ten);
  EXPECT_EQ(every_step, one_shot);
}

TEST(DeltaBatchingTest, CoalescedRoundTripsVanishThroughViews) {
  // An update immediately undone within one delta round must leave both the
  // delta and the view untouched.
  Database db;
  Table* table = MakeOrdersTable(&db);
  Tuple t{Value::Int(0), Value::String("alice"), Value::String("gear"),
          Value::Int(3)};
  const RowId row = table->Insert(t);
  ra::PlanPtr plan = sql::PlanQuery("SELECT CUST FROM ORDERS", db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  const auto before = view.contents();

  view::DeltaSet deltas;
  const Tuple old_tuple = table->Get(row);
  table->UpdateField(row, 3, Value::Int(5));
  deltas.ForTable("ORDERS").Add(old_tuple, -1);
  deltas.ForTable("ORDERS").Add(table->Get(row), 1);
  const Tuple mid_tuple = table->Get(row);
  table->UpdateField(row, 3, Value::Int(3));
  deltas.ForTable("ORDERS").Add(mid_tuple, -1);
  deltas.ForTable("ORDERS").Add(table->Get(row), 1);

  EXPECT_TRUE(deltas.empty());
  view.Apply(deltas);
  EXPECT_EQ(view.contents(), before);
}

}  // namespace
}  // namespace fgpdb
