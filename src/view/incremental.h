// Incremental (delta-maintained) query operators — the paper's §4.2.
//
// An IncrementalOperator tree is compiled from the same ra:: plan the full
// executor runs. Initialize() performs the one exhaustive evaluation of the
// initial world (the base case of Eq. 6); ApplyDelta() then consumes base-
// table deltas produced by MCMC and emits the view's output delta:
//
//   Q(w') = Q(w) − Q'(w, Δ−) ∪ Q'(w, Δ+)            (paper Eq. 6)
//
// realized operator-by-operator:
//   σ:  Δout = σ(Δin)                                (linear)
//   π:  Δout = π(Δin)  with signed multiset counts   (paper's Remark)
//   ⋈:  Δout = ΔL⋈R + L⋈ΔR + ΔL⋈ΔR                   (bilinear; the operator
//        materializes L and R with key indexes so each term costs O(|Δ|))
//   γ:  per-group running states updated by Δin; emits −old_row/+new_row
//   δ:  distinct via support counts (emit on 0→positive transitions)
//
// Operators never re-read the Database after Initialize(); all state needed
// for maintenance is carried internally, so the stored world may drift ahead
// as long as deltas arrive in order.
#ifndef FGPDB_VIEW_INCREMENTAL_H_
#define FGPDB_VIEW_INCREMENTAL_H_

#include <memory>
#include <string>
#include <vector>

#include "ra/plan.h"
#include "storage/database.h"
#include "view/delta.h"

namespace fgpdb {
namespace view {

class IncrementalOperator {
 public:
  virtual ~IncrementalOperator() = default;

  /// Full evaluation against the current world; (re)sets internal state.
  /// The result is a bag: every count >= 1.
  virtual DeltaMultiset Initialize(const Database& db) = 0;

  /// Consumes base-table deltas and returns this operator's output delta.
  virtual DeltaMultiset ApplyDelta(const DeltaSet& deltas) = 0;
};

using IncrementalOperatorPtr = std::unique_ptr<IncrementalOperator>;

/// Compiles a plan into an incremental operator tree. OrderBy nodes are
/// skipped (view contents are multisets); Limit/Distinct-with-Limit are
/// rejected as non-incremental. Fatal on unsupported shapes.
IncrementalOperatorPtr Compile(const ra::PlanNode& plan);

/// A maintained view: operator tree + its current materialized contents.
class MaterializedView {
 public:
  /// Compiles `plan`; call Initialize before reading contents.
  explicit MaterializedView(const ra::PlanNode& plan);

  /// Runs the one full evaluation of the initial world.
  void Initialize(const Database& db);

  /// Folds a round of base-table deltas into the view; returns the output
  /// delta (what changed in the answer).
  DeltaMultiset Apply(const DeltaSet& deltas);

  /// Current contents (bag: counts >= 1).
  const DeltaMultiset& contents() const { return contents_; }

  bool initialized() const { return initialized_; }

 private:
  IncrementalOperatorPtr root_;
  DeltaMultiset contents_;
  bool initialized_ = false;
};

}  // namespace view
}  // namespace fgpdb

#endif  // FGPDB_VIEW_INCREMENTAL_H_
