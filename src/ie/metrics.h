// NER evaluation metrics: token accuracy and mention-level precision /
// recall / F1 over BIO sequences.
#ifndef FGPDB_IE_METRICS_H_
#define FGPDB_IE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fgpdb {
namespace ie {
using std::size_t;

struct NerScores {
  double token_accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  uint64_t predicted_mentions = 0;
  uint64_t truth_mentions = 0;
  uint64_t matched_mentions = 0;
};

/// Scores a predicted BIO label sequence against the truth. Mentions match
/// when (start, end, type) agree exactly. Sequences are per-corpus; pass
/// document boundaries via `doc_starts` (token indexes that begin a new
/// document, so mentions cannot span documents).
NerScores ScoreBio(const std::vector<uint32_t>& predicted,
                   const std::vector<uint32_t>& truth,
                   const std::vector<size_t>& doc_starts = {});

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_METRICS_H_
