// Unit tests for utilities: RNG, math, strings, hashing, thread pool,
// table printer, latency histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/flat_map.h"
#include "util/hash.h"
#include "util/latency_histogram.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace fgpdb {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 14000; ++i) ++counts[rng.UniformInt(7u)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
  EXPECT_EQ(rng.UniformInt(1u), 0u);
  // Inclusive range overload.
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(RngTest, LogCategoricalMatchesCategorical) {
  Rng rng(13);
  std::vector<double> log_weights = {std::log(1.0), std::log(4.0)};
  int count1 = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.LogCategorical(log_weights) == 1) ++count1;
  }
  EXPECT_NEAR(count1 / 20000.0, 0.8, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto w = v;
  rng.Shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(MathTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({std::log(1.0), std::log(3.0)}), std::log(4.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(MathTest, LogAdd) {
  EXPECT_NEAR(LogAdd(std::log(2.0), std::log(6.0)), std::log(8.0), 1e-12);
  EXPECT_EQ(LogAdd(-std::numeric_limits<double>::infinity(), 1.5), 1.5);
}

TEST(MathTest, MeanVarianceSquaredError) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 1.0, 1.0}), 0.0);
  EXPECT_NEAR(Variance({1.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(SquaredError({1.0, 0.0}, {0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(SquaredError({1.0}, {1.0, 2.0}), 4.0);  // Missing = 0.
}

TEST(StringTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("B-PER", "B-"));
  EXPECT_FALSE(StartsWith("O", "B-"));
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
}

TEST(StringTest, Formatting) {
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(HumanCount(1200000), "1.2M");
  EXPECT_EQ(HumanCount(10000), "10k");
  EXPECT_EQ(HumanCount(42), "42");
}

TEST(HashTest, MixAndCombine) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));  // Order-dependent.
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(TablePrinterTest, AlignedOutputAndCsv) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"alpha", "1"});
  printer.AddRow({"b", "22"});
  std::ostringstream table;
  printer.Print(table);
  EXPECT_NE(table.str().find("| alpha | 1     |"), std::string::npos);
  std::ostringstream csv;
  printer.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1\nb,22\n");
}

TEST(TablePrinterTest, ArityMismatchIsFatal) {
  TablePrinter printer({"a", "b"});
  EXPECT_DEATH(printer.AddRow({"only-one"}), "");
}

TEST(Flat64MapTest, InsertFindUpdate) {
  Flat64Map<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.FindOr(42, -1.0), -1.0);
  map.Set(42, 0.5);
  map.Ref(7) = 2.0;
  map.Ref(7) += 1.0;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.FindOr(42, -1.0), 0.5);
  EXPECT_EQ(map.FindOr(7, -1.0), 3.0);
  EXPECT_TRUE(map.Contains(42));
  EXPECT_FALSE(map.Contains(43));
}

TEST(Flat64MapTest, ZeroKeyIsAValidKey) {
  Flat64Map<double> map;
  EXPECT_FALSE(map.Contains(0));
  map.Set(0, 9.0);
  EXPECT_TRUE(map.Contains(0));
  EXPECT_EQ(map.FindOr(0, -1.0), 9.0);
  EXPECT_EQ(map.size(), 1u);
  size_t visited = 0;
  map.ForEach([&](uint64_t key, const double& value) {
    EXPECT_EQ(key, 0u);
    EXPECT_EQ(value, 9.0);
    ++visited;
  });
  EXPECT_EQ(visited, 1u);
}

TEST(Flat64MapTest, SurvivesGrowthAndMatchesReference) {
  Flat64Map<uint64_t> map;
  Rng rng(99);
  std::vector<std::pair<uint64_t, uint64_t>> reference;
  for (int i = 0; i < 5000; ++i) {
    // Adversarially clustered keys: many share low bits.
    const uint64_t key = (rng.UniformInt(1000) << 40) | rng.UniformInt(64);
    const uint64_t value = rng.Next();
    map.Set(key, value);
    bool found = false;
    for (auto& [k, v] : reference) {
      if (k == key) {
        v = value;
        found = true;
        break;
      }
    }
    if (!found) reference.emplace_back(key, value);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [k, v] : reference) {
    EXPECT_EQ(map.FindOr(k, ~0ull), v);
  }
  size_t visited = 0;
  map.ForEach([&](uint64_t, const uint64_t&) { ++visited; });
  EXPECT_EQ(visited, reference.size());
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.FindOr(reference.front().first, ~0ull), ~0ull);
}

TEST(Flat64MapTest, CopyIsIndependent) {
  Flat64Map<double> a;
  a.Set(1, 1.0);
  Flat64Map<double> b = a;
  b.Set(1, 2.0);
  b.Set(2, 4.0);
  EXPECT_EQ(a.FindOr(1, 0.0), 1.0);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.FindOr(1, 0.0), 2.0);
  EXPECT_EQ(b.size(), 2u);
}

TEST(HashTest, ConstexprHashesMatchRuntime) {
  // The template-space constants in src/ie rely on compile-time HashString
  // agreeing with the runtime byte-loop (and the old Fnv1a).
  static_assert(HashString("emission") != HashString("transition"));
  constexpr uint64_t compile_time = HashString("emission");
  const std::string runtime = "emission";
  EXPECT_EQ(compile_time, HashString(runtime));
  EXPECT_EQ(compile_time, Fnv1a(runtime.data(), runtime.size()));
}

TEST(LatencyHistogramTest, EmptyAndSmallValuesAreExact) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileNanos(0.99), 0.0);
  // Values below kSubBuckets land in unit-width buckets: the midpoint
  // representative is value + 0.5.
  h.RecordNanos(3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_nanos(), 3u);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(0.5), 3.5);
}

TEST(LatencyHistogramTest, QuantilesTrackExactOrderStatistics) {
  // Log-uniform samples over six decades: every quantile must sit within
  // the documented 1/(2·kSubBuckets) relative error of the exact order
  // statistic (plus the half-unit from integer truncation at the bottom).
  Rng rng(99);
  LatencyHistogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const double log_ns = rng.Uniform() * 6.0 + 1.0;  // 10ns .. 10^7ns
    const uint64_t ns = static_cast<uint64_t>(std::pow(10.0, log_ns));
    values.push_back(ns);
    h.RecordNanos(ns);
  }
  std::sort(values.begin(), values.end());
  const double max_rel =
      1.0 / (2.0 * LatencyHistogram::kSubBuckets) + 1e-3;
  for (const double q : {0.50, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = static_cast<double>(values[rank - 1]);
    const double approx = h.QuantileNanos(q);
    EXPECT_NEAR(approx, exact, exact * max_rel + 1.0)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LatencyHistogramTest, MergeEqualsSingleHistogram) {
  Rng rng(7);
  LatencyHistogram merged, a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t ns = rng.UniformInt(1000000) + 1;
    all.RecordNanos(ns);
    (i % 2 == 0 ? a : b).RecordNanos(ns);
  }
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.max_nanos(), all.max_nanos());
  for (const double q : {0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.QuantileNanos(q), all.QuantileNanos(q)) << q;
  }
}

TEST(LatencyHistogramTest, OverflowClampsToTopBucketWithExactMax) {
  LatencyHistogram h;
  const uint64_t huge = uint64_t{1} << 60;  // beyond the bucketed range
  h.RecordNanos(huge);
  EXPECT_EQ(h.max_nanos(), huge);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(1.0), static_cast<double>(huge));
}

TEST(LatencyHistogramTest, RecordSecondsRoundsToNanos) {
  LatencyHistogram h;
  h.RecordSeconds(1e-6);  // 1000 ns
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_nanos(), 1000u);
  h.RecordSeconds(-1.0);  // negative clamps to zero, never UB
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.RecordNanos(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_nanos(), 0u);
  EXPECT_EQ(h.QuantileNanos(0.5), 0.0);
}

}  // namespace
}  // namespace fgpdb
