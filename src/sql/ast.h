// Parsed (unbound) SQL abstract syntax tree.
//
// Column names are unresolved strings here; the binder (binder.h) resolves
// them against the catalog and lowers the AST to an executable ra:: plan.
#ifndef FGPDB_SQL_AST_H_
#define FGPDB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ra/expr.h"
#include "storage/value.h"

namespace fgpdb {
namespace sql {

enum class AstKind {
  kColumn,      // [qualifier.]name
  kLiteral,     // constant
  kCompare,     // a op b
  kLogical,     // AND / OR / NOT
  kArithmetic,  // + - * /
  kAggregate,   // COUNT(*) / SUM(e) / COUNT_IF(p) / ...
  kIsNull,      // x IS [NOT] NULL
  kLike,        // x LIKE 'pattern'
};

enum class AggFunc { kCount, kCountIf, kCountDistinct, kSum, kMin, kMax, kAvg };

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  AstKind kind = AstKind::kLiteral;

  // kColumn
  std::string qualifier;  // may be empty
  std::string column;

  // kLiteral
  Value literal;

  // kCompare / kLogical / kArithmetic
  ra::CompareOp compare_op = ra::CompareOp::kEq;
  ra::LogicalOp logical_op = ra::LogicalOp::kAnd;
  ra::ArithmeticOp arithmetic_op = ra::ArithmeticOp::kAdd;
  AstExprPtr lhs;
  AstExprPtr rhs;  // null for NOT and unary

  // kAggregate
  AggFunc agg_func = AggFunc::kCount;
  AstExprPtr agg_argument;  // null for COUNT(*)

  // kIsNull
  bool negated = false;

  // kLike
  std::string like_pattern;

  /// True if any node in this subtree is an aggregate call.
  bool ContainsAggregate() const;

  /// Diagnostic rendering.
  std::string ToString() const;

  AstExprPtr Clone() const;
};

AstExprPtr MakeColumn(std::string qualifier, std::string column);
AstExprPtr MakeLiteral(Value v);
AstExprPtr MakeCompare(ra::CompareOp op, AstExprPtr lhs, AstExprPtr rhs);
AstExprPtr MakeLogical(ra::LogicalOp op, AstExprPtr lhs, AstExprPtr rhs);
AstExprPtr MakeArithmetic(ra::ArithmeticOp op, AstExprPtr lhs, AstExprPtr rhs);
AstExprPtr MakeAggregate(AggFunc func, AstExprPtr argument);
AstExprPtr MakeIsNull(AstExprPtr operand, bool negated);
AstExprPtr MakeLike(AstExprPtr operand, std::string pattern);

struct SelectItem {
  AstExprPtr expr;
  std::string alias;  // empty = derive from expression
};

struct TableRef {
  std::string table;
  std::string alias;  // empty = table name
};

struct OrderItem {
  std::string column;  // output-column name
};

/// One SELECT statement.
struct SelectStatement {
  bool distinct = false;
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  AstExprPtr where;  // may be null
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;  // may be null
  std::vector<OrderItem> order_by;
  bool order_ascending = true;
  std::optional<size_t> limit;
};

}  // namespace sql
}  // namespace fgpdb

#endif  // FGPDB_SQL_AST_H_
