// Unit tests for expressions, plan construction, and the bag executor.
#include <gtest/gtest.h>

#include "ra/executor.h"
#include "test_helpers.h"

namespace fgpdb {
namespace ra {
namespace {

using fgpdb::testing::MakeEmpTable;
using fgpdb::testing::ToMultiset;

TEST(ExprTest, ComparisonOperators) {
  const Tuple t{Value::Int(5), Value::String("abc")};
  EXPECT_TRUE(Cmp(CompareOp::kEq, Col(0), Lit(Value::Int(5)))->EvalBool(t));
  EXPECT_TRUE(Cmp(CompareOp::kNe, Col(0), Lit(Value::Int(4)))->EvalBool(t));
  EXPECT_TRUE(Cmp(CompareOp::kLt, Col(0), Lit(Value::Int(6)))->EvalBool(t));
  EXPECT_TRUE(Cmp(CompareOp::kLe, Col(0), Lit(Value::Int(5)))->EvalBool(t));
  EXPECT_FALSE(Cmp(CompareOp::kGt, Col(0), Lit(Value::Int(5)))->EvalBool(t));
  EXPECT_TRUE(Cmp(CompareOp::kGe, Col(0), Lit(Value::Int(5)))->EvalBool(t));
  EXPECT_TRUE(
      Cmp(CompareOp::kEq, Col(1), Lit(Value::String("abc")))->EvalBool(t));
}

TEST(ExprTest, NullComparisonsAreFalse) {
  const Tuple t{Value::Null()};
  EXPECT_FALSE(Cmp(CompareOp::kEq, Col(0), Lit(Value::Null()))->EvalBool(t));
  EXPECT_FALSE(Cmp(CompareOp::kNe, Col(0), Lit(Value::Int(1)))->EvalBool(t));
}

TEST(ExprTest, LogicalOperators) {
  const Tuple t{Value::Int(1)};
  auto yes = [] { return Lit(Value::Int(1)); };
  auto no = [] { return Lit(Value::Int(0)); };
  EXPECT_TRUE(And(yes(), yes())->EvalBool(t));
  EXPECT_FALSE(And(yes(), no())->EvalBool(t));
  EXPECT_TRUE(Or(no(), yes())->EvalBool(t));
  EXPECT_FALSE(Or(no(), no())->EvalBool(t));
  EXPECT_TRUE(Not(no())->EvalBool(t));
  EXPECT_FALSE(Not(yes())->EvalBool(t));
}

TEST(ExprTest, ArithmeticIntegerAndDouble) {
  const Tuple t;
  auto arith = [&](ArithmeticOp op, Value a, Value b) {
    return Arithmetic(op, Lit(std::move(a)), Lit(std::move(b))).Eval(t);
  };
  EXPECT_EQ(arith(ArithmeticOp::kAdd, Value::Int(2), Value::Int(3)),
            Value::Int(5));
  EXPECT_EQ(arith(ArithmeticOp::kMul, Value::Int(4), Value::Int(5)),
            Value::Int(20));
  EXPECT_EQ(arith(ArithmeticOp::kSub, Value::Double(1.5), Value::Int(1)),
            Value::Double(0.5));
  EXPECT_EQ(arith(ArithmeticOp::kDiv, Value::Int(7), Value::Int(2)),
            Value::Double(3.5));
  EXPECT_TRUE(
      arith(ArithmeticOp::kDiv, Value::Int(1), Value::Int(0)).is_null());
}

TEST(ExprTest, CloneIsDeep) {
  ExprPtr e = And(Cmp(CompareOp::kGt, Col(0, "X"), Lit(Value::Int(3))),
                  Not(Cmp(CompareOp::kEq, Col(1, "Y"), Lit(Value::Int(0)))));
  ExprPtr c = e->Clone();
  EXPECT_EQ(e->ToString(), c->ToString());
  const Tuple t{Value::Int(4), Value::Int(1)};
  EXPECT_EQ(e->EvalBool(t), c->EvalBool(t));
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { MakeEmpTable(&db_); }

  Schema emp_schema() { return db_.RequireTable("EMP")->schema(); }

  Database db_;
};

TEST_F(ExecutorTest, ScanReturnsAllRows) {
  ScanNode scan("EMP", emp_schema());
  EXPECT_EQ(Execute(scan, db_).size(), 5u);
}

TEST_F(ExecutorTest, SelectFilters) {
  auto plan = std::make_unique<SelectNode>(
      std::make_unique<ScanNode>("EMP", emp_schema()),
      Cmp(CompareOp::kEq, Col(1), Lit(Value::String("eng"))));
  EXPECT_EQ(Execute(*plan, db_).size(), 2u);
}

TEST_F(ExecutorTest, ProjectKeepsDuplicates) {
  std::vector<ExprPtr> outputs;
  outputs.push_back(Col(1));
  auto plan = std::make_unique<ProjectNode>(
      std::make_unique<ScanNode>("EMP", emp_schema()), std::move(outputs),
      std::vector<std::string>{"DEPT"});
  const auto rows = Execute(*plan, db_);
  EXPECT_EQ(rows.size(), 5u);  // Bag semantics: two eng, two ops, one hr.
  EXPECT_EQ(ToMultiset(rows).Count(Tuple{Value::String("eng")}), 2);
}

TEST_F(ExecutorTest, HashJoinMatchesNestedSemantics) {
  auto left = std::make_unique<ScanNode>("EMP", emp_schema());
  auto right = std::make_unique<ScanNode>("EMP", emp_schema());
  JoinNode join(std::move(left), std::move(right), {1}, {1}, nullptr);
  // eng:2, ops:2, hr:1 -> 4 + 4 + 1 = 9 joined rows.
  EXPECT_EQ(Execute(join, db_).size(), 9u);
  EXPECT_EQ(join.output_schema().arity(), 8u);
}

TEST_F(ExecutorTest, CrossProductWithResidual) {
  auto left = std::make_unique<ScanNode>("EMP", emp_schema());
  auto right = std::make_unique<ScanNode>("EMP", emp_schema());
  JoinNode cross(std::move(left), std::move(right), {}, {},
                 Cmp(CompareOp::kLt, Col(0), Col(4)));
  EXPECT_EQ(Execute(cross, db_).size(), 10u);  // C(5,2) ordered pairs.
}

TEST_F(ExecutorTest, AggregateGlobalOnEmptyInputYieldsOneRow) {
  auto scan = std::make_unique<ScanNode>("EMP", emp_schema());
  auto filtered = std::make_unique<SelectNode>(
      std::move(scan), Cmp(CompareOp::kEq, Col(1), Lit(Value::String("nope"))));
  std::vector<AggregateSpec> specs;
  specs.push_back(AggregateSpec{AggregateSpec::Kind::kCount, nullptr, "n"});
  AggregateNode agg(std::move(filtered), {}, std::move(specs));
  const auto rows = Execute(agg, db_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0), Value::Int(0));
}

TEST_F(ExecutorTest, GroupedAggregates) {
  auto scan = std::make_unique<ScanNode>("EMP", emp_schema());
  std::vector<AggregateSpec> specs;
  specs.push_back(AggregateSpec{AggregateSpec::Kind::kCount, nullptr, "n"});
  specs.push_back(AggregateSpec{AggregateSpec::Kind::kSum, Col(3), "s"});
  specs.push_back(AggregateSpec{AggregateSpec::Kind::kMin, Col(3), "lo"});
  specs.push_back(AggregateSpec{AggregateSpec::Kind::kMax, Col(3), "hi"});
  specs.push_back(AggregateSpec{AggregateSpec::Kind::kAvg, Col(3), "avg"});
  AggregateNode agg(std::move(scan), {1}, std::move(specs));
  const auto rows = Execute(agg, db_);
  ASSERT_EQ(rows.size(), 3u);
  const auto bag = ToMultiset(rows);
  EXPECT_EQ(bag.Count(Tuple{Value::String("eng"), Value::Int(2),
                            Value::Int(190), Value::Int(90), Value::Int(100),
                            Value::Double(95.0)}),
            1);
  EXPECT_EQ(bag.Count(Tuple{Value::String("hr"), Value::Int(1), Value::Int(70),
                            Value::Int(70), Value::Int(70),
                            Value::Double(70.0)}),
            1);
}

TEST_F(ExecutorTest, DistinctRemovesDuplicates) {
  std::vector<ExprPtr> outputs;
  outputs.push_back(Col(1));
  auto project = std::make_unique<ProjectNode>(
      std::make_unique<ScanNode>("EMP", emp_schema()), std::move(outputs),
      std::vector<std::string>{"DEPT"});
  DistinctNode distinct(std::move(project));
  EXPECT_EQ(Execute(distinct, db_).size(), 3u);
}

TEST_F(ExecutorTest, OrderByAndLimit) {
  auto scan = std::make_unique<ScanNode>("EMP", emp_schema());
  auto ordered =
      std::make_unique<OrderByNode>(std::move(scan), std::vector<size_t>{3},
                                    /*ascending=*/false);
  LimitNode limited(std::move(ordered), 2);
  const auto rows = Execute(limited, db_);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at(3), Value::Int(100));
  EXPECT_EQ(rows[1].at(3), Value::Int(90));
}

TEST_F(ExecutorTest, PlanToStringShowsTree) {
  auto plan = std::make_unique<SelectNode>(
      std::make_unique<ScanNode>("EMP", emp_schema()),
      Cmp(CompareOp::kEq, Col(1, "DEPT"), Lit(Value::String("eng"))));
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("Select"), std::string::npos);
  EXPECT_NE(s.find("Scan(EMP)"), std::string::npos);
}

}  // namespace
}  // namespace ra
}  // namespace fgpdb
