// The paper's central correctness claim (Eq. 6): a materialized view folded
// through Δ−/Δ+ must equal re-running the full query on the updated world —
// for selections, projections (multiset semantics), joins, aggregates, and
// distinct. These tests drive random update sequences against every query
// shape and compare against the full executor after every round.
#include <gtest/gtest.h>

#include "ra/executor.h"
#include "sql/binder.h"
#include "test_helpers.h"
#include "view/incremental.h"

namespace fgpdb {
namespace {

using testing::MakeEmpTable;
using testing::ToMultiset;

// Applies a random single-field update to EMP, recording deltas the way the
// TupleBinding does (old tuple −1, new tuple +1).
void RandomUpdate(Table* table, Rng& rng, view::DeltaSet* deltas) {
  const RowId row = rng.UniformInt(table->row_capacity());
  if (!table->IsLive(row)) return;
  const Tuple old_tuple = table->Get(row);
  // Mutate DEPT or SALARY (never the primary key).
  if (rng.Bernoulli(0.5)) {
    static const std::vector<std::string> kDepts = {"eng", "ops", "hr", "qa"};
    table->UpdateField(row, 1,
                       Value::String(kDepts[rng.UniformInt(kDepts.size())]));
  } else {
    table->UpdateField(row, 3, Value::Int(60 + 10 * rng.UniformInt(6)));
  }
  deltas->ForTable("EMP").Add(old_tuple, -1);
  deltas->ForTable("EMP").Add(table->Get(row), 1);
}

class IncrementalQueryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(IncrementalQueryTest, MatchesFullReexecutionUnderRandomUpdates) {
  Database db;
  Table* table = MakeEmpTable(&db);
  ra::PlanPtr plan = sql::PlanQuery(GetParam(), db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)))
      << "initialization mismatch";

  Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    view::DeltaSet deltas;
    const int updates = 1 + static_cast<int>(rng.UniformInt(4));
    for (int u = 0; u < updates; ++u) RandomUpdate(table, rng, &deltas);
    view.Apply(deltas);
    ASSERT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)))
        << "divergence at round " << round << " for query: " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueryShapes, IncrementalQueryTest,
    ::testing::Values(
        // Selection + projection (the paper's Query 1 shape).
        "SELECT NAME FROM EMP WHERE DEPT = 'eng'",
        // Projection with duplicates — exercises multiset counters.
        "SELECT DEPT FROM EMP",
        // Select-star (identity projection of the scan).
        "SELECT ID, DEPT, NAME, SALARY FROM EMP WHERE SALARY >= 80",
        // Global aggregate (Query 2 shape).
        "SELECT COUNT(*) FROM EMP WHERE DEPT = 'eng'",
        // Group-by with COUNT_IF + HAVING (Query 3 shape).
        "SELECT DEPT FROM EMP GROUP BY DEPT "
        "HAVING COUNT_IF(SALARY >= 90) = COUNT_IF(SALARY < 80)",
        // Self-join (Query 4 shape).
        "SELECT T2.NAME FROM EMP T1, EMP T2 "
        "WHERE T1.DEPT = 'eng' AND T1.DEPT = T2.DEPT AND T2.SALARY >= 90",
        // Join on a different key with residual-free equality.
        "SELECT T1.NAME, T2.NAME FROM EMP T1, EMP T2 "
        "WHERE T1.SALARY = T2.SALARY",
        // SUM / MIN / MAX / AVG aggregates per group.
        "SELECT DEPT, SUM(SALARY), MIN(SALARY), MAX(SALARY), AVG(SALARY) "
        "FROM EMP GROUP BY DEPT",
        // Distinct.
        "SELECT DISTINCT DEPT FROM EMP WHERE SALARY >= 70",
        // Arithmetic in projection and predicate.
        "SELECT NAME, SALARY * 2 FROM EMP WHERE SALARY + 10 >= 90",
        // Disjunctive predicate (not decomposable into join keys).
        "SELECT NAME FROM EMP WHERE DEPT = 'eng' OR SALARY < 75",
        // Aggregate over a join.
        "SELECT T1.DEPT, COUNT(*) FROM EMP T1, EMP T2 "
        "WHERE T1.DEPT = T2.DEPT GROUP BY T1.DEPT"));

TEST(MaterializedViewTest, RequiresInitialization) {
  Database db;
  MakeEmpTable(&db);
  ra::PlanPtr plan = sql::PlanQuery("SELECT NAME FROM EMP", db);
  view::MaterializedView view(*plan);
  EXPECT_FALSE(view.initialized());
  EXPECT_DEATH(view.Apply(view::DeltaSet{}), "Initialize");
}

TEST(MaterializedViewTest, EmptyDeltaIsNoOp) {
  Database db;
  MakeEmpTable(&db);
  ra::PlanPtr plan = sql::PlanQuery("SELECT NAME FROM EMP", db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  const auto before = view.contents();
  const auto out = view.Apply(view::DeltaSet{});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(view.contents(), before);
}

TEST(MaterializedViewTest, DeltaForUnrelatedTableIsIgnored) {
  Database db;
  MakeEmpTable(&db);
  Schema other({Attribute{"X", ValueType::kInt64}});
  db.CreateTable("OTHER", std::move(other));
  ra::PlanPtr plan = sql::PlanQuery("SELECT NAME FROM EMP", db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  const auto before = view.contents();
  view::DeltaSet deltas;
  deltas.ForTable("OTHER").Add(Tuple{Value::Int(1)}, 1);
  view.Apply(deltas);
  EXPECT_EQ(view.contents(), before);
}

TEST(MaterializedViewTest, InsertionsAndDeletionsFlowThroughJoin) {
  Database db;
  Table* table = MakeEmpTable(&db);
  ra::PlanPtr plan = sql::PlanQuery(
      "SELECT T1.NAME, T2.NAME FROM EMP T1, EMP T2 WHERE T1.DEPT = T2.DEPT",
      db);
  view::MaterializedView view(*plan);
  view.Initialize(db);

  // Insert a brand-new row.
  Tuple fresh{Value::Int(6), Value::String("eng"), Value::String("fred"),
              Value::Int(95)};
  const RowId row = table->Insert(fresh);
  view::DeltaSet insert_delta;
  insert_delta.ForTable("EMP").Add(fresh, 1);
  view.Apply(insert_delta);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)));

  // Delete it again.
  table->Delete(row);
  view::DeltaSet delete_delta;
  delete_delta.ForTable("EMP").Add(fresh, -1);
  view.Apply(delete_delta);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)));
}

TEST(IncrementalCompileTest, LimitIsRejected) {
  Database db;
  MakeEmpTable(&db);
  ra::PlanPtr plan = sql::PlanQuery("SELECT NAME FROM EMP LIMIT 2", db);
  EXPECT_DEATH(view::Compile(*plan), "LIMIT");
}

TEST(IncrementalCompileTest, OrderByIsStripped) {
  Database db;
  MakeEmpTable(&db);
  ra::PlanPtr plan =
      sql::PlanQuery("SELECT NAME FROM EMP ORDER BY NAME", db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  EXPECT_EQ(view.contents().distinct_size(), 5u);
}

TEST(IncrementalAggregateTest, GroupAppearsAndDisappears) {
  Database db;
  Table* table = MakeEmpTable(&db);
  ra::PlanPtr plan =
      sql::PlanQuery("SELECT DEPT, COUNT(*) FROM EMP GROUP BY DEPT", db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  // Move the only hr employee to eng: the hr group must vanish.
  const Tuple old_tuple = table->Get(4);
  table->UpdateField(4, 1, Value::String("eng"));
  view::DeltaSet deltas;
  deltas.ForTable("EMP").Add(old_tuple, -1);
  deltas.ForTable("EMP").Add(table->Get(4), 1);
  view.Apply(deltas);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)));
  EXPECT_EQ(view.contents().Count(Tuple{Value::String("eng"), Value::Int(3)}),
            1);
  EXPECT_EQ(view.contents().Count(Tuple{Value::String("hr"), Value::Int(1)}),
            0);
}

TEST(IncrementalAggregateTest, GlobalCountSurvivesEmptyInput) {
  Database db;
  Table* table = MakeEmpTable(&db);
  ra::PlanPtr plan =
      sql::PlanQuery("SELECT COUNT(*) FROM EMP WHERE DEPT = 'hr'", db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  EXPECT_EQ(view.contents().Count(Tuple{Value::Int(1)}), 1);
  // Move the hr employee away: COUNT drops to zero but the row remains.
  const Tuple old_tuple = table->Get(4);
  table->UpdateField(4, 1, Value::String("eng"));
  view::DeltaSet deltas;
  deltas.ForTable("EMP").Add(old_tuple, -1);
  deltas.ForTable("EMP").Add(table->Get(4), 1);
  view.Apply(deltas);
  EXPECT_EQ(view.contents().Count(Tuple{Value::Int(0)}), 1);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)));
}

TEST(IncrementalMinMaxTest, ExtremaRecoverAfterDeletion) {
  Database db;
  Table* table = MakeEmpTable(&db);
  ra::PlanPtr plan =
      sql::PlanQuery("SELECT MAX(SALARY), MIN(SALARY) FROM EMP", db);
  view::MaterializedView view(*plan);
  view.Initialize(db);
  EXPECT_EQ(view.contents().Count(Tuple{Value::Int(100), Value::Int(70)}), 1);
  // Lower the maximum: the view must find the next-highest value.
  const Tuple old_tuple = table->Get(0);
  table->UpdateField(0, 3, Value::Int(65));
  view::DeltaSet deltas;
  deltas.ForTable("EMP").Add(old_tuple, -1);
  deltas.ForTable("EMP").Add(table->Get(0), 1);
  view.Apply(deltas);
  EXPECT_EQ(view.contents().Count(Tuple{Value::Int(90), Value::Int(65)}), 1);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db)));
}

}  // namespace
}  // namespace fgpdb
