#include "api/session.h"

#include <algorithm>
#include <utility>

#include "api/plan_cache.h"
#include "infer/convergence.h"
#include "sql/binder.h"
#include "sql/normalize.h"
#include "util/logging.h"

namespace fgpdb {
namespace api {

// --- ResultHandle -----------------------------------------------------------

QueryProgress ResultHandle::Snapshot() const {
  return session_->SnapshotSlot(slot_);
}

const PreparedQueryPtr& ResultHandle::query() const {
  return session_->registered_.at(slot_).query;
}

// --- Session ----------------------------------------------------------------

std::string Session::NormalizeSql(const std::string& sql) {
  return sql::NormalizeForCache(sql);
}

std::unique_ptr<Session> Session::Open(SessionOptions options) {
  FGPDB_CHECK(options.database != nullptr) << "SessionOptions.database is required";
  FGPDB_CHECK(options.proposal_factory != nullptr ||
              options.shard_plan.has_plan())
      << "SessionOptions.proposal_factory is required (or set shard_plan)";
  FGPDB_CHECK(options.policy.num_shards <= 1 || options.shard_plan.has_plan())
      << "ExecutionPolicy requests shards but SessionOptions.shard_plan is "
         "unset (build one with ie::BuildDocumentShardPlan or "
         "pdb::BuildShardPlan)";
  return std::unique_ptr<Session>(new Session(std::move(options)));
}

Session::Session(SessionOptions options) : options_(std::move(options)) {
  // The session's world is a copy-on-write snapshot: serial/naive chains
  // mutate it freely and the caller's database stays pristine under every
  // policy (parallel chains snapshot the base again per batch).
  world_ = options_.database->Snapshot();
  if (options_.model != nullptr) world_->set_model(options_.model);
  const ExecutionPolicy& policy = options_.policy;
  if (policy.mode == ExecutionPolicy::Mode::kUntil) {
    FGPDB_CHECK_GT(policy.num_chains, 0u);
    FGPDB_CHECK_GT(policy.eps, 0.0);
    until_z_ = infer::ZForConfidence(policy.confidence);
    until_chains_ = policy.num_chains;
  }
  // Multi-chain policies (parallel, and until starting at ≥2 chains) build
  // fresh COW chain batches per round instead of a resident shared chain.
  const bool multi_chain =
      policy.mode == ExecutionPolicy::Mode::kParallel ||
      (policy.mode == ExecutionPolicy::Mode::kUntil && policy.num_chains > 1);
  if (!multi_chain) {
    // With a shard plan the resident chain steps through shard-local
    // sub-chains (a single-shard plan replays the serial chain bitwise);
    // otherwise the classic one-proposal serial sampler.
    const bool sharded = options_.shard_plan.has_plan();
    if (!sharded) proposal_ = options_.proposal_factory(*world_);
    chain_ = std::make_unique<pdb::SharedChainEvaluator>(
        world_.get(), proposal_.get(), options_.evaluator,
        /*materialized=*/policy.mode != ExecutionPolicy::Mode::kNaive);
    if (sharded) {
      chain_->EnableSharding(
          options_.shard_plan,
          pdb::ShardedExecution{policy.use_threads, policy.max_threads});
    }
    if (policy.mode == ExecutionPolicy::Mode::kUntil) {
      chain_->EnableConvergenceTracking({.confidence = policy.confidence,
                                         .eps = policy.eps,
                                         .min_samples = policy.min_samples});
    }
  }
}

Session::~Session() = default;

PreparedQueryPtr Session::Prepare(const std::string& sql) {
  const std::string normalized = NormalizeSql(sql);
  const auto it = prepared_cache_.find(normalized);
  if (it != prepared_cache_.end()) return it->second;
  // L1 miss: read through the shared cross-session cache (if wired) before
  // paying for parse + bind. Plans reference tables by name, so a plan
  // bound by a sibling session over the same catalog shape is valid here.
  if (options_.plan_cache != nullptr) {
    if (PreparedQueryPtr shared = options_.plan_cache->Lookup(normalized)) {
      prepared_cache_.emplace(normalized, shared);
      return shared;
    }
  }
  ra::PlanPtr plan = sql::PlanQuery(sql, world_->db());
  PreparedQueryPtr prepared(
      new PreparedQuery(normalized, sql, std::move(plan)));
  prepared_cache_.emplace(normalized, prepared);
  if (options_.plan_cache != nullptr) {
    options_.plan_cache->Insert(normalized, prepared);
  }
  return prepared;
}

ResultHandle Session::Register(const PreparedQueryPtr& prepared) {
  FGPDB_CHECK(prepared != nullptr);
  const size_t slot = registered_.size();
  if (chain_ != nullptr) {
    const size_t chain_slot = chain_->AddQuery(&prepared->plan());
    FGPDB_CHECK_EQ(chain_slot, slot);
  }
  for (const std::string& table : prepared->plan().ScannedTables()) {
    ++subscriptions_[table];
  }
  {
    // Registration may race with a concurrent Snapshot() under the
    // multi-chain policies (it reallocates the slot vector).
    std::lock_guard<std::mutex> lock(results_mu_);
    registered_.push_back(Registered{prepared, pdb::QueryAnswer{},
                                     pdb::CrossChainStats{},
                                     /*converged=*/false});
  }
  return ResultHandle(this, slot);
}

uint64_t Session::RunParallelRound(uint64_t samples_per_chain,
                                   size_t num_chains, bool track_stats) {
  // A fresh batch of COW chains, every chain maintaining ALL registered
  // views on its one sampler, per-query answers merged as chains finish.
  // Distinct epoch salts decorrelate successive batches (epoch 0 matches a
  // standalone EvaluateParallelMulti).
  std::vector<const ra::PlanNode*> plans;
  plans.reserve(registered_.size());
  for (const Registered& r : registered_) plans.push_back(&r.query->plan());
  pdb::ParallelOptions parallel;
  parallel.num_chains = num_chains;
  parallel.samples_per_chain = samples_per_chain;
  parallel.chain_options = options_.evaluator;
  parallel.materialized = true;
  parallel.use_threads = options_.policy.use_threads;
  parallel.max_threads = options_.policy.max_threads;
  parallel.track_chain_stats = track_stats;
  if (options_.shard_plan.has_plan()) {
    parallel.shard_plan = &options_.shard_plan;
  }
  pdb::MultiQueryAnswer batch =
      pdb::EvaluateParallelMulti(*world_, plans, options_.proposal_factory,
                                 parallel,
                                 /*seed_salt=*/parallel_epoch_ *
                                     0xbf58476d1ce4e5b9ULL);
  std::lock_guard<std::mutex> lock(results_mu_);
  ++parallel_epoch_;
  parallel_proposed_ += batch.total_proposed;
  parallel_accepted_ += batch.total_accepted;
  uint64_t samples_total = 0;
  for (size_t q = 0; q < registered_.size(); ++q) {
    Registered& reg = registered_[q];
    reg.merged.Merge(batch.answers[q]);
    if (track_stats) {
      reg.chain_stats.Merge(batch.stats[q]);
      if (!reg.converged &&
          reg.merged.num_samples() >= options_.policy.min_samples &&
          reg.chain_stats.num_chains() >= 2 &&
          reg.chain_stats.MaxHalfWidth(until_z_) <= options_.policy.eps) {
        reg.converged = true;
      }
    }
    samples_total = std::max(samples_total, reg.merged.num_samples());
  }
  if (track_stats) ++until_rounds_;
  return samples_total;
}

void Session::RunUntilMultiChain(uint64_t max_samples) {
  // The escalation ladder: rounds of `until_chains_` COW chains, each
  // samples_per_round long, feeding the cross-chain error estimator. While
  // the bound is unmet the chain count doubles (up to max_escalations rungs
  // above the starting width); the round length never changes, so every
  // chain ever folded carries the same sample count and the cross-chain SE
  // stays well-defined. The ladder position persists across Run() calls.
  const ExecutionPolicy& policy = options_.policy;
  while (true) {
    const uint64_t total =
        RunParallelRound(policy.samples_per_round, until_chains_,
                         /*track_stats=*/true);
    if (converged()) break;
    if (total >= max_samples) break;
    if (until_escalations_ < policy.max_escalations) {
      // Under results_mu_: concurrent Snapshot() readers report the ladder
      // position (QueryProgress::chains).
      std::lock_guard<std::mutex> lock(results_mu_);
      until_chains_ *= 2;
      ++until_escalations_;
    }
  }
}

void Session::Run(uint64_t samples) {
  FGPDB_CHECK(!registered_.empty())
      << "Register at least one query before Run()";
  switch (options_.policy.mode) {
    case ExecutionPolicy::Mode::kSerial:
    case ExecutionPolicy::Mode::kNaive:
      chain_->Run(samples);
      return;
    case ExecutionPolicy::Mode::kUntil:
      if (chain_ != nullptr) {
        // Single-chain variant: batched-means errors, converged views
        // freeze and leave the fan-out.
        chain_->RunUntilConverged(samples);
      } else {
        RunUntilMultiChain(samples);
      }
      return;
    case ExecutionPolicy::Mode::kParallel:
      RunParallelRound(samples, options_.policy.num_chains,
                       /*track_stats=*/false);
      return;
  }
}

uint64_t Session::CurrentMultiSamples() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  uint64_t total = 0;
  for (const Registered& reg : registered_) {
    total = std::max(total, reg.merged.num_samples());
  }
  return total;
}

uint64_t Session::RunQuantum(uint64_t max_samples) {
  FGPDB_CHECK(!registered_.empty())
      << "Register at least one query before RunQuantum()";
  if (max_samples == 0) return 0;
  const ExecutionPolicy& policy = options_.policy;
  switch (policy.mode) {
    case ExecutionPolicy::Mode::kSerial:
    case ExecutionPolicy::Mode::kNaive:
      return chain_->RunQuantum(max_samples);
    case ExecutionPolicy::Mode::kUntil: {
      if (chain_ != nullptr) return chain_->RunQuantum(max_samples);
      // Multi-chain variant: one estimator round per quantum — the round
      // length is the cross-chain SE's invariant, so the quantum cannot
      // shorten it. An unconverged round climbs the escalation ladder,
      // exactly as Run() does while its budget remains.
      if (converged()) return 0;
      const uint64_t before = CurrentMultiSamples();
      const uint64_t after = RunParallelRound(policy.samples_per_round,
                                              until_chains_,
                                              /*track_stats=*/true);
      if (!converged() && until_escalations_ < policy.max_escalations) {
        std::lock_guard<std::mutex> lock(results_mu_);
        until_chains_ *= 2;
        ++until_escalations_;
      }
      return after - before;
    }
    case ExecutionPolicy::Mode::kParallel: {
      const uint64_t before = CurrentMultiSamples();
      const uint64_t after = RunParallelRound(max_samples, policy.num_chains,
                                              /*track_stats=*/false);
      return after - before;
    }
  }
  return 0;
}

bool Session::converged() const {
  if (options_.policy.mode != ExecutionPolicy::Mode::kUntil) return false;
  if (chain_ != nullptr) return chain_->all_converged();
  std::lock_guard<std::mutex> lock(results_mu_);
  for (const Registered& reg : registered_) {
    if (!reg.converged) return false;
  }
  return !registered_.empty();
}

QueryProgress Session::SnapshotSlot(size_t slot) const {
  QueryProgress progress;
  const bool until = options_.policy.mode == ExecutionPolicy::Mode::kUntil;
  if (chain_ != nullptr) {
    progress.answer = chain_->answer(slot);
    progress.steps_per_sample = chain_->steps_per_sample();
    progress.acceptance_rate = chain_->acceptance_rate();
    if (until) {
      progress.converged = chain_->converged(slot);
      progress.max_half_width = chain_->MaxHalfWidth(slot);
      progress.chains = 1;
      const pdb::MarginalErrorStats* stats = chain_->error_stats(slot);
      stats->ForEach([&](const Tuple& t, double mean, double se) {
        progress.estimates.push_back(TupleEstimate{t, mean, se});
      });
    }
  } else {
    std::lock_guard<std::mutex> lock(results_mu_);
    const Registered& reg = registered_.at(slot);
    progress.answer = reg.merged;
    progress.steps_per_sample = options_.evaluator.steps_per_sample;
    progress.acceptance_rate =
        parallel_proposed_ == 0
            ? 0.0
            : static_cast<double>(parallel_accepted_) /
                  static_cast<double>(parallel_proposed_);
    if (until) {
      progress.converged = reg.converged;
      progress.max_half_width = reg.chain_stats.MaxHalfWidth(until_z_);
      progress.rounds = until_rounds_;
      progress.chains = until_chains_;
      reg.chain_stats.ForEach([&](const Tuple& t, double mean, double se) {
        progress.estimates.push_back(TupleEstimate{t, mean, se});
      });
    }
  }
  std::sort(progress.estimates.begin(), progress.estimates.end(),
            [](const TupleEstimate& a, const TupleEstimate& b) {
              return a.tuple < b.tuple;
            });
  progress.samples = progress.answer.num_samples();
  return progress;
}

const std::unordered_map<std::string, size_t>& Session::subscriptions() const {
  return subscriptions_;
}

}  // namespace api
}  // namespace fgpdb
