// Discrete variable domains (paper §3.1: DOM(Y_i)).
//
// A Domain is an ordered list of distinct Values; variables store *indexes*
// into their domain, so worlds are compact integer vectors and the tuple
// binding layer can translate index <-> field value both ways.
#ifndef FGPDB_FACTOR_DOMAIN_H_
#define FGPDB_FACTOR_DOMAIN_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace fgpdb {
namespace factor {

class Domain {
 public:
  explicit Domain(std::vector<Value> values);

  /// Convenience: a domain of string labels.
  static Domain OfStrings(const std::vector<std::string>& labels);

  /// Convenience: integers [0, n).
  static Domain OfRange(int64_t n);

  size_t size() const { return values_.size(); }
  const Value& value(size_t index) const { return values_.at(index); }

  /// Index of `v` in the domain, if present.
  std::optional<size_t> IndexOf(const Value& v) const;

  /// Index of `v`; fatal if absent.
  size_t RequireIndexOf(const Value& v) const;

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, size_t, ValueHasher> index_;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_DOMAIN_H_
