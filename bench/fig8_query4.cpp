// Figure 8 (Appendix 9.1): example probabilities for join Query 4 — person
// mentions co-occurring in a document with a token "Boston" labeled B-ORG.
// "Boston" is deliberately ambiguous between a location and an organization
// in our corpus generator (mirroring the Red Sox ambiguity the paper
// discusses), so the join's answer tuples carry genuinely intermediate
// probabilities.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "fig8");
  const size_t n = static_cast<size_t>(50000 * BenchScale());
  const uint64_t k = std::max<uint64_t>(100, n / 1000);

  std::cout << "=== Figure 8: Query 4 tuple probabilities ("
            << HumanCount(static_cast<double>(n)) << " tuples, master seed "
            << master << ") ===\n"
            << "query: " << ie::kQuery4 << "\n\n";
  NerBench bench(n, DeriveSeed(master, 0));
  auto world = bench.tokens.pdb->Clone();
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery4, world->db());
  auto proposal = bench.MakeProposal();
  pdb::MaterializedQueryEvaluator evaluator(
      world.get(), proposal.get(), plan.get(),
      {.steps_per_sample = 10 * k,
       .burn_in = DefaultBurnIn(n),
       .seed = DeriveSeed(master, 1)});
  evaluator.Run(1500);

  auto answer = evaluator.answer().Sorted();
  std::sort(answer.begin(), answer.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Show the full probability spread (the paper's chart mixes confident
  // and long-tail tuples): the 8 highest plus the 8 lowest marginals.
  TablePrinter table({"person mention", "Pr[t in answer]", "bar"});
  std::vector<size_t> shown;
  for (size_t i = 0; i < answer.size() && i < 8; ++i) shown.push_back(i);
  const size_t tail_start = answer.size() > 16 ? answer.size() - 8 : 8;
  for (size_t i = tail_start; i < answer.size(); ++i) shown.push_back(i);
  for (size_t i : shown) {
    const size_t bar_len = static_cast<size_t>(40.0 * answer[i].second);
    table.AddRow({answer[i].first.at(0).AsString(),
                  FormatDouble(answer[i].second, 4),
                  std::string(bar_len, '#')});
  }
  table.Print(std::cout);
  std::cout << "\n" << answer.size()
            << " distinct strings appeared in the answer across samples.\n";

  // At our corpus scale the string-level marginals saturate (every common
  // person name co-occurs with some confidently-ORG "Boston" in every
  // sample; the paper's 10M-token corpus made such co-occurrence rare).
  // The per-document refinement exposes the intermediate probabilities the
  // paper's figure shows: tuples gated on a genuinely ambiguous "Boston".
  const char* kQuery4PerDoc =
      "SELECT T1.DOC_ID, T2.STRING FROM TOKEN T1, TOKEN T2 "
      "WHERE T1.STRING = 'Boston' AND T1.LABEL = 'B-ORG' "
      "AND T1.DOC_ID = T2.DOC_ID AND T2.LABEL = 'B-PER'";
  auto world2 = bench.tokens.pdb->Clone();
  ra::PlanPtr plan2 = sql::PlanQuery(kQuery4PerDoc, world2->db());
  auto proposal2 = bench.MakeProposal();
  pdb::MaterializedQueryEvaluator evaluator2(
      world2.get(), proposal2.get(), plan2.get(),
      {.steps_per_sample = 10 * k,
       .burn_in = DefaultBurnIn(n),
       .seed = DeriveSeed(master, 2)});
  evaluator2.Run(1500);
  auto per_doc = evaluator2.answer().Sorted();
  std::sort(per_doc.begin(), per_doc.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "\nPer-document refinement (DOC_ID, STRING) — probability "
               "spread:\n";
  TablePrinter table2({"doc", "person mention", "Pr[t in answer]", "bar"});
  std::vector<size_t> shown2;
  for (size_t i = 0; i < per_doc.size() && i < 6; ++i) shown2.push_back(i);
  for (size_t i = per_doc.size() / 2;
       i < per_doc.size() && shown2.size() < 12; ++i) {
    shown2.push_back(i);
  }
  const size_t tail2 = per_doc.size() > 18 ? per_doc.size() - 6 : 12;
  for (size_t i = tail2; i < per_doc.size(); ++i) shown2.push_back(i);
  for (size_t i : shown2) {
    const size_t bar_len = static_cast<size_t>(40.0 * per_doc[i].second);
    table2.AddRow({per_doc[i].first.at(0).ToString(),
                   per_doc[i].first.at(1).AsString(),
                   FormatDouble(per_doc[i].second, 4),
                   std::string(bar_len, '#')});
  }
  table2.Print(std::cout);
  std::cout << "\nPaper shape check: a mix of high-confidence and long-tail "
               "tuples (the paper's Kunming/Ramirez/Theo/... bar chart), "
               "all gated on the ambiguous 'Boston'=B-ORG interpretation.\n";
  return 0;
}
