// Entity resolution (coreference) — the paper's second running example
// (Figure 1, bottom row; §3.4's split-merge discussion).
//
// Mentions carry a hidden cluster-id variable with domain [0, n). The model
// scores a world by summing pairwise affinities over co-clustered mentions
// (affine factors between mentions in the same cluster, Figure 1 Pane D);
// transitivity holds by construction, so no cubic number of deterministic
// constraint factors is needed — the §3.4 argument for constraint-
// preserving proposals.
#ifndef FGPDB_IE_ENTITY_RESOLUTION_H_
#define FGPDB_IE_ENTITY_RESOLUTION_H_

#include <string>
#include <vector>

#include "factor/model.h"
#include "infer/proposal.h"

namespace fgpdb {
namespace ie {

class EntityResolutionModel final : public factor::Model {
 public:
  /// Builds pairwise affinities from character-trigram Jaccard similarity:
  /// affinity(i,j) = scale * (2*sim(i,j) − threshold_shift), positive for
  /// similar strings, negative for dissimilar ones.
  explicit EntityResolutionModel(std::vector<std::string> mentions,
                                 double scale = 2.0,
                                 double threshold_shift = 0.7);

  size_t num_mentions() const { return mentions_.size(); }
  const std::string& mention(size_t i) const { return mentions_.at(i); }

  /// Symmetric pairwise affinity.
  double Affinity(size_t i, size_t j) const {
    return affinity_.at(i * mentions_.size() + j);
  }

  // --- factor::Model ---------------------------------------------------------
  /// Scratch-less convenience overload backed by member scratch:
  /// allocation-free, but NOT safe for concurrent calls on a shared model.
  double LogScoreDelta(const factor::World& world,
                       const factor::Change& change) const override;
  double LogScoreDelta(const factor::World& world,
                       const factor::Change& change,
                       factor::ScoreScratch* scratch) const override;
  /// Batched Gibbs conditional over cluster ids: one ascending pass over
  /// the affinity row scatters each pairwise term into the candidate lane
  /// it affects, in the same per-lane order as the per-candidate path —
  /// bitwise-identical rows at O(n + n·|cluster|) instead of O(n²).
  bool ConditionalRow(const factor::World& world, factor::VarId var,
                      double* out,
                      factor::ScoreScratch* scratch) const override;
  std::unique_ptr<factor::ScoreScratch> MakeScratch() const override;
  double LogScore(const factor::World& world) const override;
  size_t num_variables() const override { return mentions_.size(); }
  size_t domain_size(factor::VarId) const override { return mentions_.size(); }

  /// Clusters of the world: cluster id -> member mention indexes (only
  /// non-empty clusters, sorted by smallest member for determinism).
  std::vector<std::vector<size_t>> Clusters(const factor::World& world) const;

 private:
  /// Reusable buffers for one LogScoreDelta call: the changed-variable set
  /// (membership bitmap + sorted unique list) and their new values. The
  /// model's analog of the dense weight tables is the affinity matrix,
  /// which is compiled once at construction; scoring needs no hashing,
  /// only this scratch to stay allocation-free.
  struct DeltaScratch final : factor::ScoreScratch {
    std::vector<uint8_t> is_changed;   // [n] membership bitmap, reset per call.
    std::vector<uint32_t> new_value;   // [n] valid where is_changed.
    std::vector<factor::VarId> changed;  // Sorted unique changed vars.
  };

  std::vector<std::string> mentions_;
  std::vector<double> affinity_;  // Dense n*n symmetric matrix.
  mutable DeltaScratch member_scratch_;  // Backs the scratch-less overload.
};

/// Split–merge proposal (paper §3.4): picks a mention pair; co-clustered
/// pairs trigger an anchored random split, cross-cluster pairs a merge.
/// The proposal ratio (s−2)·log 2 makes the move exactly reversible.
class SplitMergeProposal final : public infer::Proposal {
 public:
  explicit SplitMergeProposal(const EntityResolutionModel& model)
      : model_(model) {}

  using infer::Proposal::Propose;
  void Propose(const factor::World& world, Rng& rng, factor::Change* change,
               double* log_ratio) override;

 private:
  const EntityResolutionModel& model_;
  // Reused split working buffers (cluster members, used cluster-id bitmap):
  // propose allocates nothing once their capacity is warm.
  std::vector<size_t> members_;
  std::vector<uint8_t> used_;
};

/// Baseline kernel: move one uniformly chosen mention to a uniformly chosen
/// cluster id. Symmetric; used for correctness tests against exact
/// inference.
class SingleMentionMoveProposal final : public infer::Proposal {
 public:
  explicit SingleMentionMoveProposal(const EntityResolutionModel& model)
      : model_(model) {}

  using infer::Proposal::Propose;
  void Propose(const factor::World& world, Rng& rng, factor::Change* change,
               double* log_ratio) override;

 private:
  const EntityResolutionModel& model_;
};

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_ENTITY_RESOLUTION_H_
