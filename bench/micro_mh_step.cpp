// Microbench for the §3.4 / Appendix 9.2 claim: the cost of one MH
// walk-step is constant with respect to the database size, because only the
// factors touching the proposed change are evaluated.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "infer/metropolis_hastings.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

void BM_MhStep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), 17);
  // Warm the proposal's document batch.
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step();
  }
  state.SetLabel(std::to_string(n) + " tuples");
  // Drain the accumulated deltas so memory stays bounded.
  bench.tokens.pdb->DiscardDeltas();
}

void BM_MhStepLinearChain(benchmark::State& state) {
  // Ablation: without skip edges the per-step factor count is smaller.
  const size_t n = static_cast<size_t>(state.range(0));
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = n});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens, {.use_skip_edges = false});
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ie::DocumentBatchProposal proposal(&tokens.docs);
  auto sampler = tokens.pdb->MakeSampler(&proposal, 19);
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step();
  }
  tokens.pdb->DiscardDeltas();
}

void BM_MhStepPhases(benchmark::State& state) {
  // The hot-path breakdown: attaches the sampler's phase accumulator and
  // reports how a step splits into propose / score / apply / mirror —
  // the profile that picks which slice to attack next (ROADMAP).
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), 17);
  sampler->Run(100);
  infer::StepPhaseTotals totals;
  sampler->set_phase_totals(&totals);
  for (auto _ : state) {
    sampler->Step();
  }
  sampler->set_phase_totals(nullptr);
  bench.tokens.pdb->DiscardDeltas();
  const double steps = static_cast<double>(totals.steps);
  state.counters["propose_ns"] = totals.propose_seconds * 1e9 / steps;
  state.counters["score_ns"] = totals.score_seconds * 1e9 / steps;
  state.counters["apply_ns"] = totals.apply_seconds * 1e9 / steps;
  state.counters["mirror_ns"] = totals.mirror_seconds * 1e9 / steps;
  state.counters["propose_frac"] = totals.propose_seconds / totals.TotalSeconds();
  state.counters["score_frac"] = totals.score_seconds / totals.TotalSeconds();
  state.counters["apply_frac"] = totals.apply_seconds / totals.TotalSeconds();
  state.counters["mirror_frac"] = totals.mirror_seconds / totals.TotalSeconds();
  state.SetLabel(std::to_string(n) + " tuples, phase split");
}

void BM_GibbsStep(benchmark::State& state) {
  // Gibbs resampling evaluates the local conditional for all 9 labels.
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n);
  infer::GibbsProposal proposal(*bench.model);
  auto sampler = bench.tokens.pdb->MakeSampler(&proposal, 23);
  for (auto _ : state) {
    sampler->Step();
  }
  bench.tokens.pdb->DiscardDeltas();
}

}  // namespace

BENCHMARK(BM_MhStep)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepPhases)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepLinearChain)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_GibbsStep)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
