// Aggregate queries over a probabilistic database (paper §5.5): sampling
// evaluation handles aggregates with no representation-system changes —
// the answer to an aggregate query is a distribution over values.
//
// Runs the paper's Query 2 (count of person mentions), Query 3 (documents
// with equal person and organization counts), and a SUM/AVG-style GROUP BY
// query — all three registered on ONE api::Session, so a single MCMC
// chain's delta stream maintains every view at once (the paper's central
// economy: K queries cost one sampling pass).
//
// Instead of guessing a sample count, the session runs under
// ExecutionPolicy::Until(0.95, eps): each view tracks batched-means
// standard errors, freezes the moment every tuple's marginal is within
// ±eps at 95% confidence, and the chain stops early when all three have —
// the sample budget is a ceiling, not a quota.
//
//   ./examples/aggregate_queries [num_tokens]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"

using namespace fgpdb;

int main(int argc, char** argv) {
  const size_t num_tokens =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = num_tokens});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  std::cout << "TOKEN relation: " << tokens.num_tokens() << " tuples, "
            << corpus.num_docs << " documents\n";

  // One session, one chain, three registered views, and a stopping rule:
  // run until every marginal is within ±eps at 95% confidence (or the
  // budget runs out). num_chains = 1 keeps the single shared chain — the
  // standard errors come from batched means over its own sample stream.
  const double kEps = 0.05;
  const uint64_t kBudget = 2000;  // the count one would have guessed
  auto session = api::Session::Open(
      {.database = tokens.pdb.get(),
       .proposal_factory =
           [&tokens](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
             return std::make_unique<ie::DocumentBatchProposal>(&tokens.docs);
           },
       .evaluator = {// ~2 proposals per token between samples: batched means
                     // converges in far fewer (near-independent) samples
                     // than it would at light thinning.
                     .steps_per_sample = 2 * static_cast<uint64_t>(
                                                 tokens.num_tokens()),
                     .burn_in = 40 * static_cast<uint64_t>(tokens.num_tokens()),
                     .seed = 31},
       .policy = api::ExecutionPolicy::Until(0.95, kEps, /*num_chains=*/1)});
  const char* kStatsQuery =
      "SELECT DOC_ID, COUNT_IF(LABEL = 'B-PER') AS PERSONS, "
      "COUNT_IF(LABEL = 'B-ORG') AS ORGS FROM TOKEN "
      "GROUP BY DOC_ID HAVING COUNT_IF(LABEL = 'B-PER') >= 8";
  api::ResultHandle q2 = session->Register(ie::kQuery2);
  api::ResultHandle q3 = session->Register(ie::kQuery3);
  api::ResultHandle stats = session->Register(kStatsQuery);
  session->Run(kBudget);

  // How far did each view actually have to sample? A frozen (converged)
  // view stopped accumulating the moment its bound was met; a view still
  // at +inf/above-eps ran to the budget — honestly reported, not forced.
  std::cout << "\n== until(0.95, eps=" << kEps << "), budget " << kBudget
            << " samples ==\n";
  const auto report = [&](const char* name, const api::ResultHandle& handle) {
    const api::QueryProgress p = handle.Snapshot();
    std::cout << "  " << name << ": " << p.samples << " samples ("
              << static_cast<int>(100.0 * static_cast<double>(p.samples) /
                                  static_cast<double>(kBudget))
              << "% of budget), "
              << (p.converged ? "converged" : "NOT converged")
              << ", half-width " << p.max_half_width << "\n";
  };
  report("Query 2        ", q2);
  report("Query 3        ", q3);
  report("grouped HAVING ", stats);

  auto sorted_answer = [](const api::ResultHandle& handle) {
    return handle.Snapshot().answer.Sorted();
  };

  // --- Query 2: the answer is a distribution over counts ------------------
  std::cout << "\n== Query 2 ==\n" << ie::kQuery2 << "\n";
  auto q2_answer = sorted_answer(q2);
  double mean = 0.0;
  for (const auto& [tuple, p] : q2_answer) mean += tuple.at(0).AsNumeric() * p;
  std::cout << "answer: distribution over " << q2_answer.size()
            << " count values, mean " << mean << "; most likely:\n";
  auto by_prob = q2_answer;
  std::sort(by_prob.begin(), by_prob.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (size_t i = 0; i < by_prob.size() && i < 5; ++i) {
    std::cout << "  COUNT = " << by_prob[i].first.ToString() << "  Pr="
              << by_prob[i].second << "\n";
  }

  // --- Query 3: per-document aggregate comparison -------------------------
  std::cout << "\n== Query 3 ==\n" << ie::kQuery3 << "\n";
  auto q3_answer = sorted_answer(q3);
  std::sort(q3_answer.begin(), q3_answer.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "documents whose PER count equals their ORG count ("
            << q3_answer.size() << " candidates):\n";
  for (size_t i = 0; i < q3_answer.size() && i < 5; ++i) {
    std::cout << "  DOC_ID = " << q3_answer[i].first.ToString() << "  Pr="
              << q3_answer[i].second << "\n";
  }

  // --- A richer aggregate: per-document entity statistics ------------------
  std::cout << "\n== Grouped aggregate with HAVING ==\n" << kStatsQuery << "\n";
  auto stats_answer = sorted_answer(stats);
  std::sort(stats_answer.begin(), stats_answer.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "(DOC_ID, PERSONS, ORGS) rows that are likely in the answer:\n";
  for (size_t i = 0; i < stats_answer.size() && i < 5; ++i) {
    std::cout << "  " << stats_answer[i].first.ToString() << "  Pr="
              << stats_answer[i].second << "\n";
  }
  std::cout << "\nNote: all three queries shared ONE chain — every sampling "
               "interval drained the delta accumulator once and fanned it "
               "out to the three maintained views (paper §4, §5.5); each "
               "view froze as soon as its own ±" << kEps << " bound was "
               "met instead of riding out a guessed sample count.\n";
  return 0;
}
