// Quickstart: build a probabilistic database over a small synthetic news
// corpus, attach a skip-chain CRF, and answer the paper's Query 1 with
// marginal probabilities through the Session front door (api::Session):
// Open wires the MCMC chain, Register attaches the query as a maintained
// view, Run samples, and the ResultHandle reads marginals.
//
//   ./examples/quickstart [num_tokens]
#include <cstdlib>
#include <iostream>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "util/stopwatch.h"

using namespace fgpdb;

int main(int argc, char** argv) {
  const size_t num_tokens = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  // 1. Generate a corpus and load it into the TOKEN relation. Every LABEL
  //    field becomes a hidden random variable initialized to 'O'.
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = num_tokens});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  std::cout << "Corpus: " << tokens.num_tokens() << " tokens, "
            << corpus.num_docs << " documents, vocabulary "
            << tokens.vocab.size() << "\n";

  // 2. Attach the skip-chain CRF (the external factor graph over the DB).
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  std::cout << "Model: " << model.num_skip_edges() << " skip edges\n";

  // 3. Open a Session: it owns the sampler wiring (and samples its own
  //    copy-on-write snapshot — `tokens.pdb` stays pristine).
  auto session = api::Session::Open(
      {.database = tokens.pdb.get(),
       .proposal_factory =
           [&tokens](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
             return std::make_unique<ie::DocumentBatchProposal>(&tokens.docs);
           },
       .evaluator = {.steps_per_sample = 2000, .burn_in = 10000, .seed = 17}});

  // 4. Register Query 1 as a materialized view on the session's chain and
  //    sample. The default policy is serial (Alg. 1, delta-maintained).
  std::cout << "Query: " << ie::kQuery1 << "\n";
  api::ResultHandle query = session->Register(ie::kQuery1);
  Stopwatch timer;
  session->Run(/*samples=*/200);
  api::QueryProgress progress = query.Snapshot();
  std::cout << "Drew " << progress.samples << " samples (k="
            << progress.steps_per_sample << ") in " << timer.ElapsedSeconds()
            << "s; MH acceptance rate " << progress.acceptance_rate << "\n\n";

  // 5. Report the marginal probability of each tuple being in the answer.
  auto sorted = progress.answer.Sorted();
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "Top person-mention strings (tuple, Pr[t in answer]):\n";
  for (size_t i = 0; i < sorted.size() && i < 10; ++i) {
    std::cout << "  " << sorted[i].first.ToString() << "  "
              << sorted[i].second << "\n";
  }
  std::cout << "(" << sorted.size() << " tuples total)\n";
  return 0;
}
