// Microbench for the §3.4 / Appendix 9.2 claim: the cost of one MH
// walk-step is constant with respect to the database size, because only the
// factors touching the proposed change are evaluated.
//
// Every stochastic stream derives from ONE master seed (printed at startup;
// override with --seed=N or FGPDB_BENCH_SEED) so any run is reproducible
// from its own output.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "infer/metropolis_hastings.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

uint64_t g_master = 2004;

// Distinct DeriveSeed streams per fixture so benchmarks never share (or
// silently decouple) generator states.
enum SeedStream : uint64_t {
  kStreamStepCorpus = 0,
  kStreamStepSampler,
  kStreamLinearCorpus,
  kStreamLinearSampler,
  kStreamPhasesCorpus,
  kStreamPhasesSampler,
  kStreamScoreCorpus,
  kStreamScoreSampler,
  kStreamScoreChanges,
  kStreamGibbsCorpus,
  kStreamGibbsSampler,
  kStreamBatchedCorpus,
  kStreamBatchedSampler,
  kStreamSweepCorpus,
  kStreamSweepSampler,
  kStreamRowGibbsCorpus,
  kStreamRowGibbsSampler,
};

void BM_MhStep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n, DeriveSeed(g_master, kStreamStepCorpus));
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(
      proposal.get(), DeriveSeed(g_master, kStreamStepSampler));
  // Warm the proposal's document batch.
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step();
  }
  state.SetLabel(std::to_string(n) + " tuples");
  // Drain the accumulated deltas so memory stays bounded.
  bench.tokens.pdb->DiscardDeltas();
}

void BM_MhStepBatched(benchmark::State& state) {
  // The batched kernel: Step(kBatch) crosses the mirror boundary once per
  // flush instead of once per accepted step. items/s is steps/s; compare
  // its inverse against BM_MhStep's ns/iteration.
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kBatch = 256;
  NerBench bench(n, DeriveSeed(g_master, kStreamBatchedCorpus));
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(
      proposal.get(), DeriveSeed(g_master, kStreamBatchedSampler));
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step(kBatch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
  state.SetLabel(std::to_string(n) + " tuples, Step(" +
                 std::to_string(kBatch) + ")");
  bench.tokens.pdb->DiscardDeltas();
}

void BM_MhStepLinearChain(benchmark::State& state) {
  // Ablation: without skip edges the per-step factor count is smaller.
  const size_t n = static_cast<size_t>(state.range(0));
  ie::SyntheticCorpus corpus = ie::GenerateCorpus(
      {.num_tokens = n, .seed = DeriveSeed(g_master, kStreamLinearCorpus)});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens, {.use_skip_edges = false});
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  ie::DocumentBatchProposal proposal(&tokens.docs);
  auto sampler = tokens.pdb->MakeSampler(
      &proposal, DeriveSeed(g_master, kStreamLinearSampler));
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step();
  }
  tokens.pdb->DiscardDeltas();
}

/// Converts a phase accumulator into per-step / fraction counters, guarded
/// against empty accumulators (zero steps or a clock too coarse to see any
/// elapsed time must report zeros, not NaNs).
void ReportPhases(benchmark::State& state,
                  const infer::StepPhaseTotals& totals) {
  const double steps = static_cast<double>(totals.steps);
  const double total = totals.TotalSeconds();
  const auto per_step = [&](double seconds) {
    return steps > 0.0 ? seconds * 1e9 / steps : 0.0;
  };
  const auto fraction = [&](double seconds) {
    return total > 0.0 ? seconds / total : 0.0;
  };
  state.counters["propose_ns"] = per_step(totals.propose_seconds);
  state.counters["score_ns"] = per_step(totals.score_seconds);
  state.counters["apply_ns"] = per_step(totals.apply_seconds);
  state.counters["mirror_ns"] = per_step(totals.mirror_seconds);
  state.counters["step_ns"] = per_step(total);
  state.counters["propose_frac"] = fraction(totals.propose_seconds);
  state.counters["score_frac"] = fraction(totals.score_seconds);
  state.counters["apply_frac"] = fraction(totals.apply_seconds);
  state.counters["mirror_frac"] = fraction(totals.mirror_seconds);
  state.counters["mirror_flushes"] = static_cast<double>(totals.mirror_flushes);
  state.counters["steps_per_flush"] =
      totals.mirror_flushes > 0
          ? steps / static_cast<double>(totals.mirror_flushes)
          : 0.0;
}

void BM_MhStepPhases(benchmark::State& state) {
  // The hot-path breakdown: attaches the sampler's phase accumulator and
  // reports how a step splits into propose / score / apply / mirror —
  // the profile that picks which slice to attack next (ROADMAP). range(1)
  // selects the kernel: 0 = unbatched Step() (per-step mirror crossings),
  // B > 0 = batched Step(B) — side-by-side rows showing what amortizing
  // the mirror boundary buys.
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  NerBench bench(n, DeriveSeed(g_master, kStreamPhasesCorpus));
  auto proposal = bench.MakeProposal();
  auto sampler = bench.tokens.pdb->MakeSampler(
      proposal.get(), DeriveSeed(g_master, kStreamPhasesSampler));
  sampler->Run(100);
  infer::StepPhaseTotals totals;
  sampler->set_phase_totals(&totals);
  if (batch == 0) {
    for (auto _ : state) {
      sampler->Step();
    }
  } else {
    for (auto _ : state) {
      sampler->Step(batch);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(batch));
  }
  sampler->set_phase_totals(nullptr);
  bench.tokens.pdb->DiscardDeltas();
  ReportPhases(state, totals);
  state.SetLabel(std::to_string(n) + " tuples, " +
                 (batch == 0 ? std::string("unbatched")
                             : "Step(" + std::to_string(batch) + ")") +
                 ", phase split");
}

// Fixture for the LogScoreDelta micros: a mixed (non-all-'O') world and a
// pool of pre-drawn §5.1 kernel changes, so the loop measures scoring and
// nothing else.
struct ScoreDeltaFixture {
  NerBench bench;
  factor::World world;
  std::vector<factor::Change> changes;

  explicit ScoreDeltaFixture(size_t num_tokens)
      : bench(num_tokens, DeriveSeed(g_master, kStreamScoreCorpus)) {
    auto proposal = bench.MakeProposal();
    auto sampler = bench.tokens.pdb->MakeSampler(
        proposal.get(), DeriveSeed(g_master, kStreamScoreSampler));
    sampler->Run(50000);  // Mix off the all-'O' initialization.
    bench.tokens.pdb->DiscardDeltas();
    world = bench.tokens.pdb->world();
    Rng rng(DeriveSeed(g_master, kStreamScoreChanges));
    double log_ratio = 0.0;
    changes.resize(4096);
    for (auto& change : changes) {
      do {
        change = proposal->Propose(world, rng, &log_ratio);
      } while (change.empty());
    }
  }
};

void BM_LogScoreDelta(benchmark::State& state) {
  // The hot path in isolation: one compiled model scoring pre-drawn
  // changes through caller-owned scratch — zero hashing, zero allocation.
  const size_t n = static_cast<size_t>(state.range(0));
  ScoreDeltaFixture fixture(n);
  auto scratch = fixture.bench.model->MakeScratch();
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += fixture.bench.model->LogScoreDelta(fixture.world,
                                               fixture.changes[i],
                                               scratch.get());
    if (++i == fixture.changes.size()) i = 0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::to_string(n) + " tuples, compiled");
}

void BM_LogScoreDeltaNaive(benchmark::State& state) {
  // Ablation: identical model and change stream, scored through per-factor
  // Parameters::Get probes — what compilation buys.
  const size_t n = static_cast<size_t>(state.range(0));
  ScoreDeltaFixture fixture(n);
  ie::SkipChainNerModel naive(fixture.bench.tokens,
                              {.use_compiled_scoring = false});
  naive.InitializeFromCorpusStatistics(fixture.bench.tokens);
  auto scratch = naive.MakeScratch();
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += naive.LogScoreDelta(fixture.world, fixture.changes[i],
                                scratch.get());
    if (++i == fixture.changes.size()) i = 0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::to_string(n) + " tuples, naive Get()");
}

void BM_ConditionalRow(benchmark::State& state) {
  // The vectorized Gibbs conditional: one contiguous reduction over the
  // dense tables fills all 9 candidate lanes.
  const size_t n = static_cast<size_t>(state.range(0));
  ScoreDeltaFixture fixture(n);
  auto scratch = fixture.bench.model->MakeScratch();
  double row[ie::kNumLabels];
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    const factor::VarId var = fixture.changes[i].assignments[0].var;
    fixture.bench.model->ConditionalRow(fixture.world, var, row,
                                        scratch.get());
    sink += row[ie::kNumLabels - 1];
    if (++i == fixture.changes.size()) i = 0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::to_string(n) + " tuples, all-label row");
}

void BM_MhStepWorkingSet(benchmark::State& state) {
  // Working-set sweep for the cache-resident layout: 10k tokens keep the
  // hot block inside L2, 2M tokens (32 MB of 16-byte records alone, plus
  // weights and the label shadow) spill far past LLC, so the per-step cost
  // becomes a pure memory-latency probe. range(1) arms the proposal's
  // speculative site prefetch — cloned-RNG peeks that warm step t+1's
  // record and shadow byte while step t scores — isolating how much of the
  // large-working-set slope the pipelining recovers. Trajectories are
  // bitwise-identical across both modes (pinned by
  // PrefetchedProposeIsBitwiseInvisible).
  const size_t n = static_cast<size_t>(state.range(0));
  const bool prefetch = state.range(1) != 0;
  NerBench bench(n, DeriveSeed(g_master, kStreamSweepCorpus));
  auto proposal = bench.MakeProposal(2000, prefetch);
  auto sampler = bench.tokens.pdb->MakeSampler(
      proposal.get(), DeriveSeed(g_master, kStreamSweepSampler));
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step();
  }
  state.counters["prefetch"] = prefetch ? 1.0 : 0.0;
  state.SetLabel(std::to_string(n) + " tuples, " +
                 (prefetch ? "prefetch" : "no prefetch"));
  bench.tokens.pdb->DiscardDeltas();
}

void BM_GibbsRowKernel(benchmark::State& state) {
  // Row-driven Gibbs ablation. Mode 0 is the two-call reference: Propose
  // fills the conditional row and draws, then the accept loop rescores the
  // chosen candidate with a second LogScoreDelta. Mode 1 fuses the two in
  // Step(n)'s row kernel (candidate sampled straight off ConditionalRow,
  // row[new] reused as the model ratio). Mode 2 adds the speculative site
  // prefetch on top. All three walk the same bitwise trajectory
  // (RowGibbsMatchesReferenceBitwise pins it); the rows price the fusion
  // and the pipelining separately.
  const size_t n = static_cast<size_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  constexpr size_t kBatch = 1024;
  NerBench bench(n, DeriveSeed(g_master, kStreamRowGibbsCorpus));
  infer::GibbsProposal proposal(*bench.model);
  auto sampler = bench.tokens.pdb->MakeSampler(
      &proposal, DeriveSeed(g_master, kStreamRowGibbsSampler));
  sampler->set_row_gibbs(mode >= 1);
  sampler->set_prefetch(mode >= 2);
  sampler->Run(100);
  for (auto _ : state) {
    sampler->Step(kBatch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
  state.counters["row_gibbs"] = mode >= 1 ? 1.0 : 0.0;
  state.counters["prefetch"] = mode >= 2 ? 1.0 : 0.0;
  static const char* kModeNames[] = {"reference two-call", "row kernel",
                                     "row kernel + prefetch"};
  state.SetLabel(std::to_string(n) + " tuples, " + kModeNames[mode]);
  bench.tokens.pdb->DiscardDeltas();
}

void BM_GibbsStep(benchmark::State& state) {
  // Gibbs resampling evaluates the local conditional for all 9 labels —
  // through ConditionalRow when the model offers it.
  const size_t n = static_cast<size_t>(state.range(0));
  NerBench bench(n, DeriveSeed(g_master, kStreamGibbsCorpus));
  infer::GibbsProposal proposal(*bench.model);
  auto sampler = bench.tokens.pdb->MakeSampler(
      &proposal, DeriveSeed(g_master, kStreamGibbsSampler));
  for (auto _ : state) {
    sampler->Step();
  }
  bench.tokens.pdb->DiscardDeltas();
}

}  // namespace

BENCHMARK(BM_MhStep)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepBatched)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepPhases)
    ->Args({10000, 0})->Args({10000, 1024})
    ->Args({100000, 0})->Args({100000, 1024})
    ->Args({200000, 0})->Args({200000, 1024})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_LogScoreDelta)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_LogScoreDeltaNaive)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ConditionalRow)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepLinearChain)->Arg(10000)->Arg(200000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_GibbsStep)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MhStepWorkingSet)
    ->Args({10000, 0})->Args({10000, 1})
    ->Args({50000, 0})->Args({50000, 1})
    ->Args({200000, 0})->Args({200000, 1})
    ->Args({500000, 0})->Args({500000, 1})
    ->Args({1000000, 0})->Args({1000000, 1})
    ->Args({2000000, 0})->Args({2000000, 1})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_GibbsRowKernel)
    ->Args({10000, 0})->Args({10000, 1})->Args({10000, 2})
    ->Args({200000, 0})->Args({200000, 1})->Args({200000, 2})
    ->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  g_master = InitBenchSeed(&argc, argv, "micro_mh_step");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
