#include "learn/samplerank.h"

#include <cmath>

#include "util/logging.h"

namespace fgpdb {
namespace learn {

SampleRank::SampleRank(factor::FeatureModel* model, infer::Proposal* proposal,
                       const Objective* objective, SampleRankOptions options)
    : model_(model),
      proposal_(proposal),
      objective_(objective),
      options_(options),
      rng_(options.seed),
      score_scratch_(model != nullptr ? model->MakeScratch() : nullptr) {
  FGPDB_CHECK(model_ != nullptr);
  FGPDB_CHECK(proposal_ != nullptr);
  FGPDB_CHECK(objective_ != nullptr);
}

SampleRankStats SampleRank::Train(factor::World* world, uint64_t steps) {
  FGPDB_CHECK(world != nullptr);
  SampleRankStats stats;
  factor::SparseVector delta_features;
  // A jump's feature delta is a few entries per touched factor; one
  // up-front reservation keeps the reused vector allocation-free. The
  // Change buffer is likewise reused across all training steps.
  delta_features.Reserve(64);
  factor::Change change;
  for (uint64_t i = 0; i < steps; ++i) {
    ++stats.proposals;
    double log_ratio = 0.0;
    proposal_->Propose(*world, rng_, &change, &log_ratio);
    if (change.empty()) continue;

    const double objective_delta = objective_->Delta(*world, change);
    delta_features.Clear();
    model_->FeatureDelta(*world, change, &delta_features,
                         score_scratch_.get());
    const double model_delta = model_->parameters().Dot(delta_features);

    // Perceptron step on rank disagreement (margin 0).
    if (objective_delta > 0.0 && model_delta <= 0.0) {
      model_->parameters().UpdateSparse(delta_features,
                                        options_.learning_rate);
      ++stats.updates;
    } else if (objective_delta < 0.0 && model_delta >= 0.0) {
      model_->parameters().UpdateSparse(delta_features,
                                        -options_.learning_rate);
      ++stats.updates;
    }

    // Advance the training walk.
    bool accept = false;
    switch (options_.walk_policy) {
      case SampleRankOptions::WalkPolicy::kFollowObjective:
        // Hill-climb the objective; break ties with the (updated) model.
        if (objective_delta > 0.0) {
          accept = true;
        } else if (objective_delta == 0.0) {
          const double updated_model_delta =
              model_->parameters().Dot(delta_features);
          accept = updated_model_delta > 0.0 || rng_.Bernoulli(0.5);
        }
        break;
      case SampleRankOptions::WalkPolicy::kFollowModel: {
        const double updated_model_delta =
            model_->parameters().Dot(delta_features);
        const double log_alpha = updated_model_delta + log_ratio;
        accept = log_alpha >= 0.0 || rng_.Uniform() < std::exp(log_alpha);
        break;
      }
    }
    if (accept) {
      world->Apply(change);
      ++stats.accepted;
    }
  }
  return stats;
}

}  // namespace learn
}  // namespace fgpdb
