// TupleBinding and ProbabilisticDatabase plumbing tests: world <-> table
// synchronization, Δ−/Δ+ accumulation and coalescing, cloning.
#include <gtest/gtest.h>

#include "ie/labels.h"
#include "pdb/probabilistic_database.h"

namespace fgpdb {
namespace pdb {
namespace {

struct BindingFixture {
  ProbabilisticDatabase pdb;
  Table* table = nullptr;

  BindingFixture() {
    Schema schema(
        {
            Attribute{"ID", ValueType::kInt64},
            Attribute{"LABEL", ValueType::kString},
        },
        0);
    table = pdb.db().CreateTable("T", std::move(schema));
    const auto domain = ie::LabelDomain();
    for (int64_t i = 0; i < 4; ++i) {
      const RowId row =
          table->Insert(Tuple{Value::Int(i), Value::String("O")});
      pdb.binding().Bind("T", row, 1, domain);
    }
    pdb.SyncWorldFromDatabase();
  }
};

TEST(TupleBindingTest, LoadWorldReadsStoredValues) {
  BindingFixture f;
  EXPECT_EQ(f.pdb.world().size(), 4u);
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(f.pdb.world().Get(static_cast<factor::VarId>(v)), ie::kLabelO);
  }
  // Change a field on disk, re-sync, world follows.
  f.table->UpdateField(2, 1, Value::String("B-PER"));
  f.pdb.SyncWorldFromDatabase();
  EXPECT_EQ(f.pdb.world().Get(2), ie::LabelIndex("B-PER"));
}

TEST(TupleBindingTest, StoreWorldWritesFields) {
  BindingFixture f;
  f.pdb.world().Set(1, ie::LabelIndex("B-ORG"));
  f.pdb.binding().StoreWorld(f.pdb.world(), &f.pdb.db());
  EXPECT_EQ(f.table->Get(1).at(1), Value::String("B-ORG"));
}

TEST(TupleBindingTest, ApplyToDatabaseRecordsDeltas) {
  BindingFixture f;
  view::DeltaSet deltas;
  std::vector<factor::AppliedAssignment> applied = {
      {1, ie::kLabelO, ie::LabelIndex("B-PER")}};
  f.pdb.binding().ApplyToDatabase(applied, &f.pdb.db(), &deltas);
  EXPECT_EQ(f.table->Get(1).at(1), Value::String("B-PER"));
  const auto& delta = deltas.Get("T");
  EXPECT_EQ(delta.Count(Tuple{Value::Int(1), Value::String("O")}), -1);
  EXPECT_EQ(delta.Count(Tuple{Value::Int(1), Value::String("B-PER")}), 1);
}

TEST(TupleBindingTest, RoundTripUpdatesCancelInDelta) {
  // A row changed A -> B -> A between query evaluations must contribute
  // nothing to Δ (the paper's coalescing of the auxiliary tables).
  BindingFixture f;
  view::DeltaSet deltas;
  const uint32_t b_per = ie::LabelIndex("B-PER");
  f.pdb.binding().ApplyToDatabase({{1, ie::kLabelO, b_per}}, &f.pdb.db(),
                                  &deltas);
  f.pdb.binding().ApplyToDatabase({{1, b_per, ie::kLabelO}}, &f.pdb.db(),
                                  &deltas);
  EXPECT_TRUE(deltas.Get("T").empty());
}

TEST(TupleBindingTest, IntermediateStatesCancelAcrossMultipleHops) {
  // A -> B -> C leaves exactly {-A, +C}.
  BindingFixture f;
  view::DeltaSet deltas;
  const uint32_t b_per = ie::LabelIndex("B-PER");
  const uint32_t b_org = ie::LabelIndex("B-ORG");
  f.pdb.binding().ApplyToDatabase({{0, ie::kLabelO, b_per}}, &f.pdb.db(),
                                  &deltas);
  f.pdb.binding().ApplyToDatabase({{0, b_per, b_org}}, &f.pdb.db(), &deltas);
  const auto& delta = deltas.Get("T");
  EXPECT_EQ(delta.distinct_size(), 2u);
  EXPECT_EQ(delta.Count(Tuple{Value::Int(0), Value::String("O")}), -1);
  EXPECT_EQ(delta.Count(Tuple{Value::Int(0), Value::String("B-ORG")}), 1);
}

TEST(TupleBindingTest, DomainSizes) {
  BindingFixture f;
  const auto sizes = f.pdb.binding().DomainSizes();
  ASSERT_EQ(sizes.size(), 4u);
  for (size_t s : sizes) EXPECT_EQ(s, ie::kNumLabels);
}

TEST(ProbabilisticDatabaseTest, TakeDeltasDrainsBuffer) {
  BindingFixture f;
  f.pdb.binding().ApplyToDatabase({{0, 0, 1}}, &f.pdb.db(),
                                  static_cast<view::DeltaSet*>(nullptr));
  // Direct ApplyToDatabase with nullptr doesn't buffer; use the internal path:
  view::DeltaSet manual;
  f.pdb.binding().ApplyToDatabase({{1, 0, 1}}, &f.pdb.db(), &manual);
  EXPECT_FALSE(manual.empty());
  // The pdb's own buffer is empty (no sampler ran).
  EXPECT_TRUE(f.pdb.TakeDeltas().empty());
}

TEST(ProbabilisticDatabaseTest, CloneIsIndependent) {
  BindingFixture f;
  auto clone = f.pdb.Clone();
  f.table->UpdateField(0, 1, Value::String("B-LOC"));
  f.pdb.world().Set(0, ie::LabelIndex("B-LOC"));
  EXPECT_EQ(clone->db().RequireTable("T")->Get(0).at(1), Value::String("O"));
  EXPECT_EQ(clone->world().Get(0), ie::kLabelO);
  EXPECT_EQ(clone->binding().num_variables(), 4u);
}

TEST(ProbabilisticDatabaseTest, SnapshotIsIndependentAndCheap) {
  BindingFixture f;
  auto snap = f.pdb.Snapshot();
  // Mutations flow in neither direction.
  snap->db().RequireTable("T")->UpdateField(1, 1, Value::String("B-PER"));
  f.table->UpdateField(0, 1, Value::String("B-LOC"));
  EXPECT_EQ(f.table->Get(1).at(1), Value::String("O"));
  EXPECT_EQ(snap->db().RequireTable("T")->Get(0).at(1), Value::String("O"));
  // The snapshot starts with every page shared (no tuples copied yet).
  auto fresh = f.pdb.Snapshot();
  EXPECT_EQ(fresh->db().RequireTable("T")->SharedPageCount(),
            fresh->db().RequireTable("T")->PageCount());
}

TEST(TupleBindingTest, BindAfterCopyKeepsCopiesIsolated) {
  // The field list is shared copy-on-write between binding copies; binding
  // a new variable on either side must not grow the other.
  BindingFixture f;
  TupleBinding copy = f.pdb.binding();
  EXPECT_EQ(copy.num_variables(), 4u);
  const RowId row = f.table->Insert(Tuple{Value::Int(99), Value::String("O")});
  f.pdb.binding().Bind("T", row, 1, ie::LabelDomain());
  EXPECT_EQ(f.pdb.binding().num_variables(), 5u);
  EXPECT_EQ(copy.num_variables(), 4u);
  copy.Bind("T", row, 1, ie::LabelDomain());
  EXPECT_EQ(copy.num_variables(), 5u);
  EXPECT_EQ(f.pdb.binding().num_variables(), 5u);
  EXPECT_EQ(copy.field(4).row, row);
}

TEST(ProbabilisticDatabaseTest, ModelRequiredForSampler) {
  BindingFixture f;
  EXPECT_DEATH(f.pdb.model(), "model not set");
}

}  // namespace
}  // namespace pdb
}  // namespace fgpdb
