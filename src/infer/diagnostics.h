// MCMC convergence diagnostics.
//
// The paper balances "traditional ergodic theorems of MCMC" against DBMS
// cost issues (§4.1) — choosing the thinning interval k needs an estimate of
// how correlated consecutive samples are. These utilities quantify that:
//
//   * EffectiveSampleSize: n / (1 + 2 Σ ρ_t) from the autocorrelation of a
//     scalar chain statistic (initial-positive-sequence truncation).
//   * GelmanRubin: the potential-scale-reduction factor R̂ across parallel
//     chains (§5.4's multi-chain setting); values near 1 indicate mixing.
#ifndef FGPDB_INFER_DIAGNOSTICS_H_
#define FGPDB_INFER_DIAGNOSTICS_H_

#include <cstddef>
#include <vector>

namespace fgpdb {
namespace infer {
using std::size_t;

/// Autocorrelation of `series` at `lag` (biased estimator; 0 for degenerate
/// series).
double Autocorrelation(const std::vector<double>& series, size_t lag);

/// Effective sample size of a scalar chain statistic. At least 1 for
/// non-empty input; equals n for white noise.
double EffectiveSampleSize(const std::vector<double>& series);

/// Gelman-Rubin potential scale reduction factor across >= 2 chains of
/// equal length (>= 4 samples each). Near 1.0 when chains have mixed.
double GelmanRubin(const std::vector<std::vector<double>>& chains);

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_DIAGNOSTICS_H_
