#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fgpdb {
namespace serve {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity) {
  FGPDB_CHECK(options_.database != nullptr)
      << "ServerOptions.database is required";
  FGPDB_CHECK(options_.proposal_factory != nullptr)
      << "ServerOptions.proposal_factory is required";
  FGPDB_CHECK_GT(options_.quantum_samples, 0u);
  FGPDB_CHECK_GT(options_.max_outstanding_samples, 0u);
  const size_t threads = options_.num_threads > 0
                             ? options_.num_threads
                             : ThreadPool::DefaultThreadCount(
                                   std::max<size_t>(options_.max_tenants, 1));
  pool_ = std::make_unique<ThreadPool>(threads);
}

Server::~Server() {
  // Finish admitted work first (the Drain contract), then refuse new
  // submissions and join the pool — after Drain no task is queued or
  // running, so the workers exit immediately.
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  pool_.reset();
}

Status Server::CreateTenant(TenantId* id, TenantOptions tenant_options) {
  FGPDB_CHECK(id != nullptr);
  auto tenant = std::make_shared<Tenant>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return Status::Unavailable("server is shutting down");
    if (tenants_.size() >= options_.max_tenants) {
      return Status::Unavailable("tenant limit reached (" +
                                 std::to_string(options_.max_tenants) + ")");
    }
    tenant->id = next_tenant_id_++;
  }
  tenant->name = tenant_options.name.empty()
                     ? "tenant-" + std::to_string(tenant->id)
                     : tenant_options.name;
  tenant->stats.name = tenant->name;
  // Session::Open snapshots the shared base world (COW) — tenant state
  // never touches the server's database or any sibling tenant.
  api::SessionOptions session_options;
  session_options.database = options_.database;
  session_options.model = options_.model;
  session_options.plan_cache = &plan_cache_;
  session_options.proposal_factory = options_.proposal_factory;
  session_options.evaluator = tenant_options.has_evaluator
                                  ? tenant_options.evaluator
                                  : options_.evaluator;
  session_options.policy = tenant_options.policy;
  tenant->session = api::Session::Open(std::move(session_options));
  {
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.emplace(tenant->id, tenant);
  }
  *id = tenant->id;
  return Status::Ok();
}

std::shared_ptr<Server::Tenant> Server::FindTenant(TenantId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

Status Server::CloseTenant(TenantId id) {
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(id));
  }
  std::unique_lock<std::mutex> lock(mu_);
  tenant->closing = true;
  idle_cv_.wait(lock, [&] { return !tenant->queued && tenant->pending == 0; });
  tenants_.erase(id);
  // The Session is destroyed when the last shared_ptr drops — possibly
  // here, possibly after an in-flight Snapshot holder releases.
  return Status::Ok();
}

Status Server::RegisterQuery(TenantId id, const std::string& sql,
                             QueryId* query) {
  FGPDB_CHECK(query != nullptr);
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(id));
  }
  std::lock_guard<std::mutex> chain_lock(tenant->chain_mu);
  // Prepare reads through the cross-session cache; Register attaches the
  // view to the tenant's chain (legal mid-run).
  api::ResultHandle handle = tenant->session->Register(sql);
  tenant->queries.push_back(handle);
  *query = tenant->queries.size() - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tenant->stats.num_queries = tenant->queries.size();
  }
  return Status::Ok();
}

void Server::ScheduleLocked(const std::shared_ptr<Tenant>& tenant) {
  // `closing` does NOT stop scheduling: CloseTenant's contract is to
  // drain the backlog, and that takes quanta. It only stops new Submits.
  if (tenant->queued || tenant->pending == 0) return;
  tenant->queued = true;
  // The pool queue is FIFO, and every task re-enqueues its tenant at the
  // BACK after one quantum — that queue discipline IS the fair scheduler.
  pool_->Submit([this, tenant] { RunQuantumTask(tenant); });
}

void Server::RunQuantumTask(std::shared_ptr<Tenant> tenant) {
  uint64_t quantum = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    quantum = std::min<uint64_t>(options_.quantum_samples, tenant->pending);
  }
  uint64_t drawn = 0;
  bool converged = false;
  Stopwatch timer;
  if (quantum > 0) {
    std::lock_guard<std::mutex> chain_lock(tenant->chain_mu);
    drawn = tenant->session->RunQuantum(quantum);
    converged = tenant->session->converged();
  }
  const double seconds = timer.ElapsedSeconds();

  std::lock_guard<std::mutex> lock(mu_);
  tenant->stats.samples_drawn += drawn;
  tenant->stats.quanta += 1;
  tenant->stats.converged = converged;
  metrics_.quanta_executed += 1;
  metrics_.samples_drawn += drawn;
  metrics_.quantum_latency.RecordSeconds(seconds);
  tenant->pending -= std::min(tenant->pending, drawn);
  if (tenant->pending > 0 && (converged || drawn == 0)) {
    // Convergence yield (PR 6's state as admission/preemption signal): the
    // tenant's bound holds, so its remaining budget is retired as served —
    // the slot goes to tenants that still need samples. (drawn == 0
    // without convergence cannot happen for any current policy; retiring
    // is the livelock-free response if a future one does it.)
    metrics_.converged_yields += 1;
    tenant->stats.yielded += tenant->pending;
    tenant->pending = 0;
  }
  tenant->queued = false;
  if (tenant->pending > 0) {
    ScheduleLocked(tenant);
  } else {
    idle_cv_.notify_all();
  }
}

Status Server::Submit(TenantId id, uint64_t samples) {
  if (samples == 0) {
    return Status::InvalidArgument("submission must request samples");
  }
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(id));
  }
  if (tenant->session->num_registered() == 0) {
    return Status::InvalidArgument("tenant has no registered queries");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant->closing || shutting_down_) {
    return Status::Unavailable("tenant is closing");
  }
  if (tenant->pending + samples > options_.max_outstanding_samples) {
    tenant->stats.rejected += 1;
    metrics_.submissions_rejected += 1;
    return Status::Overloaded(
        "outstanding " + std::to_string(tenant->pending) + " + " +
        std::to_string(samples) + " exceeds cap " +
        std::to_string(options_.max_outstanding_samples));
  }
  tenant->pending += samples;
  tenant->stats.submitted += samples;
  metrics_.submissions_admitted += 1;
  ScheduleLocked(tenant);
  return Status::Ok();
}

Status Server::Snapshot(TenantId id, QueryId query, api::QueryProgress* out) {
  FGPDB_CHECK(out != nullptr);
  Stopwatch timer;
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(id));
  }
  {
    // The streaming read: waits at most one quantum for the chain lock,
    // copies the progress, releases — the chain keeps running.
    std::lock_guard<std::mutex> chain_lock(tenant->chain_mu);
    if (query >= tenant->queries.size()) {
      return Status::NotFound("tenant " + std::to_string(id) + " has no query " +
                              std::to_string(query));
    }
    *out = tenant->queries[query].Snapshot();
  }
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.snapshots_served += 1;
  metrics_.snapshot_latency.RecordSeconds(timer.ElapsedSeconds());
  return Status::Ok();
}

void Server::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] {
    for (const auto& [id, tenant] : tenants_) {
      if (tenant->queued || tenant->pending > 0) return false;
    }
    return true;
  });
}

Status Server::GetTenantStats(TenantId id, TenantStats* out) const {
  FGPDB_CHECK(out != nullptr);
  std::shared_ptr<Tenant> tenant = FindTenant(id);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant " + std::to_string(id));
  }
  std::lock_guard<std::mutex> lock(mu_);
  *out = tenant->stats;
  out->pending = tenant->pending;
  return Status::Ok();
}

SchedulerMetrics Server::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

api::PlanCache::Stats Server::plan_cache_stats() const {
  return plan_cache_.stats();
}

size_t Server::num_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace serve
}  // namespace fgpdb
