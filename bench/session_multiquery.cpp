// Multi-query shared-chain economy (the acceptance bench for the Session
// front door): registering the paper's Queries 1–4 on ONE api::Session must
// (a) produce per-query answers bitwise-equal to four standalone
// single-query runs at the same seed, and (b) finish in measurably less
// total sampling wall-clock than the four standalone runs, because the
// bundle pays for one chain (one burn-in, one walk, one delta drain per
// interval) instead of four.
//
//   ./bench/bench_session_multiquery  (honors FGPDB_BENCH_SCALE)
#include <cstdio>
#include <vector>

#include "api/session.h"
#include "bench_common.h"
#include "pdb/query_evaluator.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

constexpr uint64_t kSamples = 200;

struct StandaloneResult {
  pdb::QueryAnswer answer;
  double seconds = 0.0;
};

StandaloneResult RunStandalone(const NerBench& bench, const char* query,
                               const pdb::EvaluatorOptions& options) {
  auto world = bench.tokens.pdb->Clone();
  ra::PlanPtr plan = sql::PlanQuery(query, world->db());
  auto proposal = bench.MakeProposal();
  pdb::MaterializedQueryEvaluator evaluator(world.get(), proposal.get(),
                                            plan.get(), options);
  Stopwatch timer;
  evaluator.Run(kSamples);
  StandaloneResult result;
  result.seconds = timer.ElapsedSeconds();
  result.answer = evaluator.answer();
  return result;
}

bool BitwiseEqual(const pdb::QueryAnswer& a, const pdb::QueryAnswer& b) {
  if (a.num_samples() != b.num_samples()) return false;
  const auto sa = a.Sorted();
  const auto sb = b.Sorted();
  if (sa.size() != sb.size()) return false;
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!(sa[i].first == sb[i].first) || sa[i].second != sb[i].second) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "session_multiquery");
  const size_t num_tokens =
      static_cast<size_t>(20000 * BenchScale());
  NerBench bench(num_tokens, DeriveSeed(master, 0));
  const std::vector<const char*> queries = {ie::kQuery1, ie::kQuery2,
                                            ie::kQuery3, ie::kQuery4};
  // ONE chain seed shared by the bundle and every standalone run — the
  // bitwise-equality check requires identical sample sets.
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 2000,
      .burn_in = DefaultBurnIn(num_tokens),
      .seed = DeriveSeed(master, 1)};

  std::printf("# session_multiquery: %zu tokens, %zu queries, %llu samples, "
              "k=%llu, burn_in=%llu, chain_seed=%llu\n",
              num_tokens, queries.size(),
              static_cast<unsigned long long>(kSamples),
              static_cast<unsigned long long>(options.steps_per_sample),
              static_cast<unsigned long long>(options.burn_in),
              static_cast<unsigned long long>(options.seed));

  // --- Four standalone single-query chains --------------------------------
  std::vector<StandaloneResult> standalone;
  double standalone_total = 0.0;
  for (const char* query : queries) {
    standalone.push_back(RunStandalone(bench, query, options));
    std::printf("standalone  q%zu  %8.3fs\n", standalone.size(),
                standalone.back().seconds);
    standalone_total += standalone.back().seconds;
  }

  // --- One Session, all four queries on the shared chain ------------------
  auto session = api::Session::Open(
      {.database = bench.tokens.pdb.get(),
       .proposal_factory =
           [&bench](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
             return bench.MakeProposal();
           },
       .evaluator = options});
  std::vector<api::ResultHandle> handles;
  for (const char* query : queries) handles.push_back(session->Register(query));
  Stopwatch bundle_timer;
  session->Run(kSamples);
  const double bundle_seconds = bundle_timer.ElapsedSeconds();

  bool all_bitwise = true;
  for (size_t q = 0; q < queries.size(); ++q) {
    const bool equal =
        BitwiseEqual(handles[q].Snapshot().answer, standalone[q].answer);
    if (!equal) {
      std::printf("MISMATCH on query %zu\n", q + 1);
      all_bitwise = false;
    }
  }

  std::printf("bundle (1 session, 4 views)  %8.3fs\n", bundle_seconds);
  std::printf("standalone total             %8.3fs\n", standalone_total);
  std::printf("speedup                      %8.2fx\n",
              standalone_total / bundle_seconds);
  std::printf("bitwise_equal                %s\n",
              all_bitwise ? "true" : "false");
  return all_bitwise ? 0 : 1;
}
