#include "storage/csv_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace fgpdb {
namespace {

void WriteField(const Value& v, std::ostream& os) {
  switch (v.type()) {
    case ValueType::kNull:
      return;  // Empty field.
    case ValueType::kInt64:
      os << v.AsInt();
      return;
    case ValueType::kDouble: {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << v.AsDouble();
      os << tmp.str();
      return;
    }
    case ValueType::kString: {
      os << '"';
      for (char c : v.AsString()) {
        if (c == '"') os << '"';
        os << c;
      }
      os << '"';
      return;
    }
  }
}

// Splits one CSV line honoring quoted fields.
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      std::vector<bool>* quoted) {
  std::vector<std::string> fields;
  quoted->clear();
  std::string field;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      quoted->push_back(was_quoted);
      field.clear();
      was_quoted = false;
    } else {
      field += c;
    }
  }
  FGPDB_CHECK(!in_quotes) << "unterminated quote in CSV line";
  fields.push_back(std::move(field));
  quoted->push_back(was_quoted);
  return fields;
}

Value ParseField(const std::string& text, bool quoted, ValueType type) {
  if (!quoted && text.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64:
      return Value::Int(std::stoll(text));
    case ValueType::kDouble:
      return Value::Double(std::stod(text));
    case ValueType::kString:
      return Value::String(text);
    case ValueType::kNull:
      // Columns typed NULL hold whatever the data says; infer int else str.
      if (!quoted) {
        try {
          size_t pos = 0;
          const int64_t v = std::stoll(text, &pos);
          if (pos == text.size()) return Value::Int(v);
        } catch (...) {
        }
      }
      return Value::String(text);
  }
  return Value::Null();
}

ValueType ParseTypeName(const std::string& name) {
  if (name == "INT64") return ValueType::kInt64;
  if (name == "DOUBLE") return ValueType::kDouble;
  if (name == "STRING") return ValueType::kString;
  if (name == "NULL") return ValueType::kNull;
  FGPDB_FATAL() << "unknown type name " << name;
  return ValueType::kNull;
}

}  // namespace

void WriteTableCsv(const Table& table, std::ostream& os) {
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) os << ",";
    os << schema.attribute(i).name << ":"
       << ValueTypeName(schema.attribute(i).type);
    if (schema.primary_key() == i) os << ":pk";
  }
  os << "\n";
  table.Scan([&](RowId, const Tuple& t) {
    for (size_t i = 0; i < t.arity(); ++i) {
      if (i > 0) os << ",";
      WriteField(t.at(i), os);
    }
    os << "\n";
  });
}

std::unique_ptr<Table> ReadTableCsv(const std::string& name,
                                    std::istream& is) {
  std::string header;
  FGPDB_CHECK(static_cast<bool>(std::getline(is, header)))
      << "empty CSV for table " << name;
  std::vector<Attribute> attrs;
  std::optional<size_t> pk;
  for (const std::string& column : Split(header, ',')) {
    const auto parts = Split(column, ':');
    FGPDB_CHECK_GE(parts.size(), 2u) << "bad CSV header field " << column;
    attrs.push_back(Attribute{parts[0], ParseTypeName(parts[1])});
    if (parts.size() >= 3 && parts[2] == "pk") pk = attrs.size() - 1;
  }
  auto table = std::make_unique<Table>(name, Schema(attrs, pk));
  std::string line;
  std::vector<bool> quoted;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line, &quoted);
    FGPDB_CHECK_EQ(fields.size(), attrs.size())
        << "row arity mismatch in table " << name;
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      values.push_back(ParseField(fields[i], quoted[i], attrs[i].type));
    }
    table->Insert(Tuple(std::move(values)));
  }
  return table;
}

void SaveDatabaseCsv(const Database& db, const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const std::string& name : db.TableNames()) {
    const std::string path = dir + "/" + name + ".csv";
    std::ofstream os(path);
    FGPDB_CHECK(os.good()) << "cannot write " << path;
    WriteTableCsv(*db.RequireTable(name), os);
    FGPDB_CHECK(os.good()) << "write failed for " << path;
  }
}

std::unique_ptr<Database> LoadDatabaseCsv(const std::string& dir) {
  auto db = std::make_unique<Database>();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".csv") continue;
    const std::string name = entry.path().stem().string();
    std::ifstream is(entry.path());
    FGPDB_CHECK(is.good()) << "cannot read " << entry.path().string();
    auto table = ReadTableCsv(name, is);
    // Move into the catalog via insert-preserving copy.
    Table* dest = db->CreateTable(name, table->schema());
    table->Scan([&](RowId, const Tuple& t) { dest->Insert(t); });
  }
  return db;
}

}  // namespace fgpdb
