#include "view/incremental.h"

#include <map>
#include <unordered_map>

#include "util/logging.h"

namespace fgpdb {
namespace view {
namespace {

using ra::AggregateSpec;

// ---------------------------------------------------------------------------
// Scan: deltas for the base table pass straight through.
// ---------------------------------------------------------------------------
class IncScan final : public IncrementalOperator {
 public:
  explicit IncScan(std::string table) : table_(std::move(table)) {}

  DeltaMultiset Initialize(const Database& db) override {
    DeltaMultiset out;
    db.RequireTable(table_)->Scan(
        [&](RowId, const Tuple& t) { out.Add(t, 1); });
    return out;
  }

  DeltaMultiset ApplyDelta(const DeltaSet& deltas) override {
    return deltas.Get(table_);
  }

 private:
  std::string table_;
};

// ---------------------------------------------------------------------------
// Select: σ distributes over deltas — σ(w') = σ(w) − σ(Δ−) ∪ σ(Δ+).
// ---------------------------------------------------------------------------
class IncSelect final : public IncrementalOperator {
 public:
  IncSelect(IncrementalOperatorPtr child, ra::ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  DeltaMultiset Initialize(const Database& db) override {
    return Filter(child_->Initialize(db));
  }

  DeltaMultiset ApplyDelta(const DeltaSet& deltas) override {
    return Filter(child_->ApplyDelta(deltas));
  }

 private:
  DeltaMultiset Filter(const DeltaMultiset& in) const {
    DeltaMultiset out;
    in.ForEach([&](const Tuple& t, int64_t c) {
      if (predicate_->EvalBool(t)) out.Add(t, c);
    });
    return out;
  }

  IncrementalOperatorPtr child_;
  ra::ExprPtr predicate_;
};

// ---------------------------------------------------------------------------
// Project: π over signed multisets implements the paper's Remark — counters
// track how many input tuples map to each output tuple, so set-difference /
// union under projection stay correct.
// ---------------------------------------------------------------------------
class IncProject final : public IncrementalOperator {
 public:
  IncProject(IncrementalOperatorPtr child, std::vector<ra::ExprPtr> outputs)
      : child_(std::move(child)), outputs_(std::move(outputs)) {}

  DeltaMultiset Initialize(const Database& db) override {
    return Map(child_->Initialize(db));
  }

  DeltaMultiset ApplyDelta(const DeltaSet& deltas) override {
    return Map(child_->ApplyDelta(deltas));
  }

 private:
  DeltaMultiset Map(const DeltaMultiset& in) const {
    DeltaMultiset out;
    in.ForEach([&](const Tuple& t, int64_t c) {
      std::vector<Value> values;
      values.reserve(outputs_.size());
      for (const auto& e : outputs_) values.push_back(e->Eval(t));
      out.Add(Tuple(std::move(values)), c);
    });
    return out;
  }

  IncrementalOperatorPtr child_;
  std::vector<ra::ExprPtr> outputs_;
};

// ---------------------------------------------------------------------------
// Join: ⋈ is bilinear, so (L+ΔL)⋈(R+ΔR) = L⋈R + ΔL⋈R + L⋈ΔR + ΔL⋈ΔR.
// Both inputs are materialized with hash indexes on the join key so each
// delta term costs O(|Δ| · matches) instead of a full re-join. Empty key
// lists degrade to a Cartesian product (single bucket).
// ---------------------------------------------------------------------------
class IncJoin final : public IncrementalOperator {
 public:
  IncJoin(IncrementalOperatorPtr left, IncrementalOperatorPtr right,
          std::vector<size_t> left_keys, std::vector<size_t> right_keys,
          ra::ExprPtr residual)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)) {}

  DeltaMultiset Initialize(const Database& db) override {
    left_state_.clear();
    right_state_.clear();
    const DeltaMultiset l = left_->Initialize(db);
    const DeltaMultiset r = right_->Initialize(db);
    Fold(r, right_keys_, right_state_);
    DeltaMultiset out = JoinAgainst(l, /*probe_left=*/true);
    Fold(l, left_keys_, left_state_);
    return out;
  }

  DeltaMultiset ApplyDelta(const DeltaSet& deltas) override {
    const DeltaMultiset dl = left_->ApplyDelta(deltas);
    const DeltaMultiset dr = right_->ApplyDelta(deltas);
    DeltaMultiset out;
    // ΔL ⋈ R_old.
    if (!dl.empty()) out.Merge(JoinAgainst(dl, /*probe_left=*/true));
    // L_old ⋈ ΔR.
    if (!dr.empty()) out.Merge(JoinAgainst(dr, /*probe_left=*/false));
    // ΔL ⋈ ΔR (both sides small).
    if (!dl.empty() && !dr.empty()) {
      dl.ForEach([&](const Tuple& lt, int64_t lc) {
        const Tuple key = lt.Project(left_keys_);
        dr.ForEach([&](const Tuple& rt, int64_t rc) {
          if (rt.Project(right_keys_) == key) Emit(lt, rt, lc * rc, out);
        });
      });
    }
    Fold(dl, left_keys_, left_state_);
    Fold(dr, right_keys_, right_state_);
    return out;
  }

 private:
  // key tuple -> (full tuple -> signed count)
  using KeyedState = std::unordered_map<Tuple, DeltaMultiset, TupleHasher>;

  void Fold(const DeltaMultiset& delta, const std::vector<size_t>& keys,
            KeyedState& state) {
    delta.ForEach([&](const Tuple& t, int64_t c) {
      DeltaMultiset& bucket = state[t.Project(keys)];
      bucket.Add(t, c);
      // Leave empty buckets in place; they are rare and harmless.
    });
  }

  void Emit(const Tuple& l, const Tuple& r, int64_t count,
            DeltaMultiset& out) const {
    Tuple joined = Tuple::Concat(l, r);
    if (residual_ == nullptr || residual_->EvalBool(joined)) {
      out.Add(joined, count);
    }
  }

  /// Joins `probe` against the opposite side's materialized state.
  DeltaMultiset JoinAgainst(const DeltaMultiset& probe, bool probe_left) const {
    const KeyedState& state = probe_left ? right_state_ : left_state_;
    const std::vector<size_t>& probe_keys =
        probe_left ? left_keys_ : right_keys_;
    DeltaMultiset out;
    probe.ForEach([&](const Tuple& pt, int64_t pc) {
      const auto it = state.find(pt.Project(probe_keys));
      if (it == state.end()) return;
      it->second.ForEach([&](const Tuple& st, int64_t sc) {
        if (probe_left) {
          Emit(pt, st, pc * sc, out);
        } else {
          Emit(st, pt, pc * sc, out);
        }
      });
    });
    return out;
  }

  IncrementalOperatorPtr left_;
  IncrementalOperatorPtr right_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ra::ExprPtr residual_;
  KeyedState left_state_;
  KeyedState right_state_;
};

// ---------------------------------------------------------------------------
// Aggregate: per-group running states folded with signed deltas. COUNT /
// COUNT_IF / SUM / AVG reverse exactly under deletion; MIN/MAX keep an
// ordered value multiset so deleted extrema can be recovered.
// ---------------------------------------------------------------------------
class IncAggregate final : public IncrementalOperator {
 public:
  IncAggregate(IncrementalOperatorPtr child, std::vector<size_t> group_by,
               std::vector<AggregateSpec> aggregates)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {}

  DeltaMultiset Initialize(const Database& db) override {
    groups_.clear();
    const DeltaMultiset in = child_->Initialize(db);
    FGPDB_CHECK(in.IsNonNegative());
    in.ForEach([&](const Tuple& t, int64_t c) { FoldTuple(t, c); });
    DeltaMultiset out;
    for (const auto& [key, state] : groups_) {
      out.Add(OutputRow(key, state), 1);
    }
    if (group_by_.empty() && groups_.empty()) {
      out.Add(OutputRow(Tuple(), GroupState(aggregates_.size())), 1);
    }
    return out;
  }

  DeltaMultiset ApplyDelta(const DeltaSet& deltas) override {
    const DeltaMultiset din = child_->ApplyDelta(deltas);
    if (din.empty()) return {};
    // Snapshot the old output row of every group the delta touches.
    std::unordered_map<Tuple, Tuple, TupleHasher> old_rows;
    std::unordered_map<Tuple, bool, TupleHasher> old_existed;
    din.ForEach([&](const Tuple& t, int64_t) {
      Tuple key = t.Project(group_by_);
      if (old_rows.count(key) > 0) return;
      const auto it = groups_.find(key);
      const bool existed = it != groups_.end() || group_by_.empty();
      old_existed[key] = existed;
      if (it != groups_.end()) {
        old_rows.emplace(key, OutputRow(key, it->second));
      } else if (group_by_.empty()) {
        old_rows.emplace(key, OutputRow(key, GroupState(aggregates_.size())));
      }
    });
    din.ForEach([&](const Tuple& t, int64_t c) { FoldTuple(t, c); });
    DeltaMultiset out;
    for (const auto& [key, existed] : old_existed) {
      if (existed) out.Add(old_rows.at(key), -1);
      const auto it = groups_.find(key);
      if (it != groups_.end()) {
        out.Add(OutputRow(key, it->second), 1);
      } else if (group_by_.empty()) {
        out.Add(OutputRow(key, GroupState(aggregates_.size())), 1);
      }
    }
    return out;
  }

 private:
  struct AggIncState {
    int64_t count = 0;  // Counted rows (COUNT/COUNT_IF) or non-null inputs.
    double sum = 0.0;
    bool sum_integral = true;
    std::map<Value, int64_t> values;  // MIN/MAX support multiset.
  };

  struct GroupState {
    explicit GroupState(size_t n) : support(0), aggs(n) {}
    int64_t support;
    std::vector<AggIncState> aggs;
  };

  void FoldTuple(const Tuple& t, int64_t c) {
    Tuple key = t.Project(group_by_);
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      it = groups_.emplace(std::move(key), GroupState(aggregates_.size())).first;
    }
    GroupState& group = it->second;
    group.support += c;
    FGPDB_CHECK_GE(group.support, 0)
        << "negative group support — deltas out of order?";
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      FoldAggregate(aggregates_[a], t, c, group.aggs[a]);
    }
    if (group.support == 0) groups_.erase(it);
  }

  static void FoldAggregate(const AggregateSpec& spec, const Tuple& t,
                            int64_t c, AggIncState& state) {
    switch (spec.kind) {
      case AggregateSpec::Kind::kCount:
        if (spec.argument == nullptr || !spec.argument->Eval(t).is_null()) {
          state.count += c;
        }
        return;
      case AggregateSpec::Kind::kCountIf:
        if (spec.argument->EvalBool(t)) state.count += c;
        return;
      case AggregateSpec::Kind::kCountDistinct: {
        // Support multiset: distinct count = number of values with
        // positive support (exactly reversible under deletion).
        const Value v = spec.argument->Eval(t);
        if (v.is_null()) return;
        auto [it, inserted] = state.values.emplace(v, c);
        if (!inserted) {
          it->second += c;
          if (it->second == 0) state.values.erase(it);
        }
        return;
      }
      case AggregateSpec::Kind::kSum:
      case AggregateSpec::Kind::kAvg: {
        const Value v = spec.argument->Eval(t);
        if (v.is_null()) return;
        state.count += c;
        state.sum += static_cast<double>(c) * v.AsNumeric();
        if (v.type() != ValueType::kInt64) state.sum_integral = false;
        return;
      }
      case AggregateSpec::Kind::kMin:
      case AggregateSpec::Kind::kMax: {
        const Value v = spec.argument->Eval(t);
        if (v.is_null()) return;
        auto [it, inserted] = state.values.emplace(v, c);
        if (!inserted) {
          it->second += c;
          if (it->second == 0) state.values.erase(it);
        }
        return;
      }
    }
  }

  static Value FinalizeAggregate(const AggregateSpec& spec,
                                 const AggIncState& state) {
    switch (spec.kind) {
      case AggregateSpec::Kind::kCount:
      case AggregateSpec::Kind::kCountIf:
        return Value::Int(state.count);
      case AggregateSpec::Kind::kCountDistinct:
        return Value::Int(static_cast<int64_t>(state.values.size()));
      case AggregateSpec::Kind::kSum:
        if (state.count == 0) return Value::Null();
        return state.sum_integral
                   ? Value::Int(static_cast<int64_t>(state.sum))
                   : Value::Double(state.sum);
      case AggregateSpec::Kind::kAvg:
        if (state.count == 0) return Value::Null();
        return Value::Double(state.sum / static_cast<double>(state.count));
      case AggregateSpec::Kind::kMin:
        return state.values.empty() ? Value::Null()
                                    : state.values.begin()->first;
      case AggregateSpec::Kind::kMax:
        return state.values.empty() ? Value::Null()
                                    : state.values.rbegin()->first;
    }
    return Value::Null();
  }

  Tuple OutputRow(const Tuple& key, const GroupState& state) const {
    std::vector<Value> values;
    values.reserve(group_by_.size() + aggregates_.size());
    for (const Value& v : key.values()) values.push_back(v);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      values.push_back(FinalizeAggregate(aggregates_[a], state.aggs[a]));
    }
    return Tuple(std::move(values));
  }

  IncrementalOperatorPtr child_;
  std::vector<size_t> group_by_;
  std::vector<AggregateSpec> aggregates_;
  std::unordered_map<Tuple, GroupState, TupleHasher> groups_;
};

// ---------------------------------------------------------------------------
// Distinct: support counts; an output row appears on a 0→positive transition
// and disappears on positive→0.
// ---------------------------------------------------------------------------
class IncDistinct final : public IncrementalOperator {
 public:
  explicit IncDistinct(IncrementalOperatorPtr child)
      : child_(std::move(child)) {}

  DeltaMultiset Initialize(const Database& db) override {
    support_.Clear();
    const DeltaMultiset in = child_->Initialize(db);
    DeltaMultiset out;
    in.ForEach([&](const Tuple& t, int64_t c) {
      if (support_.Count(t) == 0 && c > 0) out.Add(t, 1);
      support_.Add(t, c);
    });
    return out;
  }

  DeltaMultiset ApplyDelta(const DeltaSet& deltas) override {
    const DeltaMultiset din = child_->ApplyDelta(deltas);
    DeltaMultiset out;
    din.ForEach([&](const Tuple& t, int64_t c) {
      const int64_t before = support_.Count(t);
      const int64_t after = before + c;
      FGPDB_CHECK_GE(after, 0) << "negative distinct support";
      if (before == 0 && after > 0) out.Add(t, 1);
      if (before > 0 && after == 0) out.Add(t, -1);
      support_.Add(t, c);
    });
    return out;
  }

 private:
  IncrementalOperatorPtr child_;
  DeltaMultiset support_;
};

}  // namespace

IncrementalOperatorPtr Compile(const ra::PlanNode& plan) {
  switch (plan.kind()) {
    case ra::PlanKind::kScan:
      return std::make_unique<IncScan>(
          static_cast<const ra::ScanNode&>(plan).table_name());
    case ra::PlanKind::kSelect: {
      const auto& node = static_cast<const ra::SelectNode&>(plan);
      return std::make_unique<IncSelect>(Compile(plan.child(0)),
                                         node.predicate().Clone());
    }
    case ra::PlanKind::kProject: {
      const auto& node = static_cast<const ra::ProjectNode&>(plan);
      std::vector<ra::ExprPtr> outputs;
      for (const auto& e : node.outputs()) outputs.push_back(e->Clone());
      return std::make_unique<IncProject>(Compile(plan.child(0)),
                                          std::move(outputs));
    }
    case ra::PlanKind::kJoin: {
      const auto& node = static_cast<const ra::JoinNode&>(plan);
      return std::make_unique<IncJoin>(
          Compile(plan.child(0)), Compile(plan.child(1)), node.left_keys(),
          node.right_keys(),
          node.residual() != nullptr ? node.residual()->Clone() : nullptr);
    }
    case ra::PlanKind::kAggregate: {
      const auto& node = static_cast<const ra::AggregateNode&>(plan);
      std::vector<AggregateSpec> specs;
      for (const auto& spec : node.aggregates()) specs.push_back(spec.Clone());
      return std::make_unique<IncAggregate>(Compile(plan.child(0)),
                                            node.group_by(), std::move(specs));
    }
    case ra::PlanKind::kDistinct:
      return std::make_unique<IncDistinct>(Compile(plan.child(0)));
    case ra::PlanKind::kOrderBy:
      // View contents are multisets; ordering is presentation-only.
      return Compile(plan.child(0));
    case ra::PlanKind::kLimit:
      FGPDB_FATAL() << "LIMIT is not incrementally maintainable";
  }
  FGPDB_FATAL() << "unknown plan kind";
  return nullptr;
}

MaterializedView::MaterializedView(const ra::PlanNode& plan)
    : root_(Compile(plan)) {}

void MaterializedView::Initialize(const Database& db) {
  contents_ = root_->Initialize(db);
  FGPDB_CHECK(contents_.IsNonNegative());
  initialized_ = true;
}

DeltaMultiset MaterializedView::Apply(const DeltaSet& deltas) {
  FGPDB_CHECK(initialized_) << "MaterializedView::Initialize not called";
  DeltaMultiset out = root_->ApplyDelta(deltas);
  contents_.Merge(out);
  FGPDB_CHECK(contents_.IsNonNegative())
      << "view contents went negative — Eq. 6 bookkeeping violated";
  return out;
}

}  // namespace view
}  // namespace fgpdb
