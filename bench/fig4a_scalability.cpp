// Figure 4(a): scalability of query evaluation — time to halve the squared
// error of Query 1, naive (Alg. 3) vs materialized (Alg. 1), over a
// log-scale sweep of database sizes.
//
// Paper: 10k … 10M NYT tokens, k = 10,000, Apache Derby on disk; naive
// projected to 227 hours at 10M vs <2.5h materialized, and a crossover at
// 10k tuples (naive 19s vs materialized 21s) where diff-table overhead
// dominates. Here: an in-memory engine whose scans are ~1000x faster than
// Derby-on-disk, so k scales with size to keep query evaluation (the thing
// Fig. 4 measures) the naive path's bottleneck; all evaluators start from
// a burned-in world so the measurement is not dominated by the mixing
// transient of the all-'O' initialization. Expected shape: near-parity at
// the small end, materialized increasingly dominant as tuples grow.
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

int main() {
  const double scale = BenchScale();
  std::vector<size_t> sizes = {10000, 30000, 100000, 300000};
  if (scale > 1.0) {
    for (auto& s : sizes) s = static_cast<size_t>(s * scale);
  }

  std::cout << "=== Figure 4(a): Query 1 time-to-half-error vs #tuples ===\n"
            << "query: " << ie::kQuery1 << "\n\n";
  // Both evaluators replay the *same* chain (same seed), so they produce
  // identical answers sample-for-sample (paper §5.3: "the two approaches
  // generate the same set of samples") and the wall-clock ratio equals the
  // per-sample cost ratio regardless of where the error target lands. The
  // run stops at half error or at the sample cap, whichever first; the
  // achieved error fraction is reported for transparency.
  TablePrinter table({"tuples", "k (steps/sample)", "naive (s)",
                      "materialized (s)", "speedup", "samples",
                      "err fraction reached"});

  for (size_t n : sizes) {
    NerBench bench(n);
    const uint64_t k = std::max<uint64_t>(100, n / 1000);

    // Burn the base world to stationarity once; evaluators and the truth
    // run all start from clones of it.
    {
      auto proposal = bench.MakeProposal();
      auto sampler = bench.tokens.pdb->MakeSampler(proposal.get(), 161803);
      sampler->Run(DefaultBurnIn(n));
      bench.tokens.pdb->DiscardDeltas();
    }
    const pdb::QueryAnswer truth =
        EstimateGroundTruth(bench, ie::kQuery1, /*samples=*/2500,
                            /*steps_per_sample=*/k);

    const uint64_t max_samples = 500;
    auto measure = [&](bool materialized, uint64_t* samples_used,
                       double* error_fraction) {
      auto world = bench.tokens.pdb->Clone();
      ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, world->db());
      auto proposal = bench.MakeProposal();
      const pdb::EvaluatorOptions options{.steps_per_sample = k,
                                          .burn_in = 0,
                                          .seed = 12};
      std::unique_ptr<pdb::QueryEvaluator> evaluator;
      if (materialized) {
        evaluator = std::make_unique<pdb::MaterializedQueryEvaluator>(
            world.get(), proposal.get(), plan.get(), options);
      } else {
        evaluator = std::make_unique<pdb::NaiveQueryEvaluator>(
            world.get(), proposal.get(), plan.get(), options);
      }
      Stopwatch timer;
      evaluator->Initialize();
      evaluator->DrawSample();
      const double initial = evaluator->answer().SquaredError(truth);
      uint64_t used = 1;
      double current = initial;
      while (used < max_samples && current > initial / 2.0) {
        evaluator->DrawSample();
        ++used;
        current = evaluator->answer().SquaredError(truth);
      }
      *samples_used = used;
      *error_fraction = initial > 0.0 ? current / initial : 0.0;
      return timer.ElapsedSeconds();
    };

    uint64_t naive_samples = 0, mat_samples = 0;
    double naive_fraction = 0.0, mat_fraction = 0.0;
    const double naive_seconds = measure(false, &naive_samples, &naive_fraction);
    const double mat_seconds = measure(true, &mat_samples, &mat_fraction);

    table.AddRow({HumanCount(static_cast<double>(n)), std::to_string(k),
                  FormatDouble(naive_seconds, 4), FormatDouble(mat_seconds, 4),
                  FormatDouble(naive_seconds / mat_seconds, 3),
                  std::to_string(naive_samples),
                  FormatDouble(mat_fraction, 3)});
    std::cerr << "[fig4a] finished n=" << n << "\n";
  }

  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  std::cout << "\nPaper shape check: near-parity at the smallest size "
               "(delta bookkeeping overhead vs cheap small scans), with the "
               "materialized advantage growing steadily in #tuples — the "
               "paper's 10k crossover and 10M-tuple orders-of-magnitude gap "
               "at the respective extremes.\n";
  return 0;
}
