// Binds a parsed SELECT statement against the catalog and lowers it to an
// executable ra:: plan: scans with pushed-down single-table filters, hash
// joins extracted from cross-table equality conjuncts, grouping/aggregation,
// HAVING, projection, DISTINCT, ORDER BY, LIMIT.
#ifndef FGPDB_SQL_BINDER_H_
#define FGPDB_SQL_BINDER_H_

#include <string>

#include "ra/plan.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace fgpdb {
namespace sql {

/// Lowers `stmt` to a plan. Fatal on unresolvable names or unsupported
/// shapes (e.g. aggregates nested inside aggregates).
ra::PlanPtr Bind(const SelectStatement& stmt, const Database& db);

/// Parse + bind in one step.
ra::PlanPtr PlanQuery(const std::string& query, const Database& db);

/// Algebraic simplification run by Bind() before plan construction:
/// comparisons, arithmetic, and logical connectives whose operands are all
/// literals are constant-folded (by evaluating the equivalent ra:: node, so
/// folding matches runtime semantics bit for bit), and in predicate context
/// (`boolean_context`, i.e. WHERE / HAVING / COUNT_IF arguments, where only
/// truth value matters) TRUE AND x / FALSE OR x collapse to x, FALSE AND x
/// to FALSE, and TRUE OR x to TRUE. Exposed for tests.
AstExprPtr SimplifyExpr(AstExprPtr expr, bool boolean_context);

}  // namespace sql
}  // namespace fgpdb

#endif  // FGPDB_SQL_BINDER_H_
