// Relation schemas: named, typed attributes with an optional primary key.
#ifndef FGPDB_STORAGE_SCHEMA_H_
#define FGPDB_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace fgpdb {

struct Attribute {
  std::string name;
  ValueType type = ValueType::kNull;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes,
                  std::optional<size_t> primary_key = std::nullopt);

  size_t arity() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_.at(i); }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Index of the attribute named `name`; fatal if absent.
  size_t RequireIndexOf(const std::string& name) const;

  /// Column index of the primary key, if declared.
  std::optional<size_t> primary_key() const { return primary_key_; }

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, size_t> by_name_;
  std::optional<size_t> primary_key_;
};

}  // namespace fgpdb

#endif  // FGPDB_STORAGE_SCHEMA_H_
