// Logical/physical query plans with bag (multiset) semantics.
//
// Plans are trees of PlanNode. The executor (executor.h) evaluates them
// bottom-up into materialized bags of tuples; the incremental engine
// (src/view) compiles the same trees into delta-maintainable operators,
// which is what makes the paper's Eq. 6 rewrites apply to arbitrary queries.
#ifndef FGPDB_RA_PLAN_H_
#define FGPDB_RA_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ra/expr.h"
#include "storage/schema.h"

namespace fgpdb {
namespace ra {

enum class PlanKind {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kAggregate,
  kDistinct,
  kOrderBy,
  kLimit,
};

class PlanNode {
 public:
  virtual ~PlanNode() = default;

  PlanKind kind() const { return kind_; }
  const Schema& output_schema() const { return output_schema_; }

  size_t num_children() const { return children_.size(); }
  const PlanNode& child(size_t i) const { return *children_.at(i); }

  /// Indented plan rendering for EXPLAIN-style output.
  std::string ToString(int indent = 0) const;

  /// Appends the name of every base table scanned in this subtree, in
  /// pre-order and with duplicates (a self-join lists its table twice).
  /// This is the scanned-table metadata the incremental engine builds its
  /// delta-routing subscription maps from (src/view/incremental.h).
  void CollectScannedTables(std::vector<std::string>* out) const;
  std::vector<std::string> ScannedTables() const;

 protected:
  /// Derived constructors must call set_output_schema() in their body (after
  /// children are stored) — computing the schema from a child in the
  /// member-initializer list is an evaluation-order trap with the moved
  /// children argument.
  PlanNode(PlanKind kind, std::vector<std::unique_ptr<PlanNode>> children)
      : kind_(kind), children_(std::move(children)) {}

  void set_output_schema(Schema schema) { output_schema_ = std::move(schema); }

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

 private:
  PlanKind kind_;
  Schema output_schema_;
  std::vector<std::unique_ptr<PlanNode>> children_;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Leaf: full scan of a stored table.
class ScanNode final : public PlanNode {
 public:
  ScanNode(std::string table_name, Schema schema)
      : PlanNode(PlanKind::kScan, {}), table_name_(std::move(table_name)) {
    set_output_schema(std::move(schema));
  }

  const std::string& table_name() const { return table_name_; }

 protected:
  std::string Describe() const override { return "Scan(" + table_name_ + ")"; }

 private:
  std::string table_name_;
};

/// σ: keeps tuples satisfying the predicate.
class SelectNode final : public PlanNode {
 public:
  SelectNode(PlanPtr child, ExprPtr predicate);

  const Expr& predicate() const { return *predicate_; }

 protected:
  std::string Describe() const override {
    return "Select(" + predicate_->ToString() + ")";
  }

 private:
  ExprPtr predicate_;
};

/// π: generalized projection; bag semantics (duplicates preserved).
class ProjectNode final : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ExprPtr> outputs,
              std::vector<std::string> names);

  const std::vector<ExprPtr>& outputs() const { return outputs_; }

 protected:
  std::string Describe() const override;

 private:
  std::vector<ExprPtr> outputs_;
};

/// One disjunct of a disjunctive equi-join condition: the pair lists are
/// conjunctive within the alternative (all pairs must match), alternatives
/// are OR-ed across the list.
struct JoinKeyAlternative {
  std::vector<size_t> left_keys;
  std::vector<size_t> right_keys;
};

/// ⋈: equi-join on (left_keys[i] == right_keys[i]) plus an optional residual
/// predicate over the concatenated tuple. Empty key lists give a Cartesian
/// product (paper §4.2 rewrites products and σ to build joins).
///
/// The disjunctive form joins on an OR of equality alternatives (the SQL
/// binder extracts `a.k = b.k OR a.k = b.j` into one): a left/right pair
/// matches when *any* alternative's key pairs all agree. Each alternative is
/// hash-routable on its own, so both the executor and the incremental engine
/// probe per-alternative indexes instead of degenerating to a filtered
/// Cartesian product. When alternatives are present, left_keys/right_keys
/// are empty and unused.
class JoinNode final : public PlanNode {
 public:
  JoinNode(PlanPtr left, PlanPtr right, std::vector<size_t> left_keys,
           std::vector<size_t> right_keys, ExprPtr residual);
  JoinNode(PlanPtr left, PlanPtr right,
           std::vector<JoinKeyAlternative> alternatives, ExprPtr residual);

  const std::vector<size_t>& left_keys() const { return left_keys_; }
  const std::vector<size_t>& right_keys() const { return right_keys_; }
  /// Disjunctive key alternatives; empty for plain equi-/cross joins.
  const std::vector<JoinKeyAlternative>& alternatives() const {
    return alternatives_;
  }
  const Expr* residual() const { return residual_.get(); }

 protected:
  std::string Describe() const override;

 private:
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  std::vector<JoinKeyAlternative> alternatives_;
  ExprPtr residual_;
};

/// Aggregate function specification.
struct AggregateSpec {
  enum class Kind { kCount, kCountIf, kCountDistinct, kSum, kMin, kMax, kAvg };

  Kind kind = Kind::kCount;
  /// Argument expression; nullptr for COUNT(*). For kCountIf this is the
  /// predicate counted when true.
  ExprPtr argument;
  std::string output_name;

  AggregateSpec Clone() const {
    return AggregateSpec{kind, argument ? argument->Clone() : nullptr,
                         output_name};
  }
  std::string ToString() const;
};

/// γ: grouping + aggregation. Output = group-by columns then aggregates.
class AggregateNode final : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<size_t> group_by,
                std::vector<AggregateSpec> aggregates);

  const std::vector<size_t>& group_by() const { return group_by_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }

 protected:
  std::string Describe() const override;

 private:
  std::vector<size_t> group_by_;
  std::vector<AggregateSpec> aggregates_;
};

/// δ: duplicate elimination.
class DistinctNode final : public PlanNode {
 public:
  explicit DistinctNode(PlanPtr child);

 protected:
  std::string Describe() const override { return "Distinct"; }
};

/// Sort for deterministic output; `ascending` applies to all keys.
class OrderByNode final : public PlanNode {
 public:
  OrderByNode(PlanPtr child, std::vector<size_t> keys, bool ascending = true);

  const std::vector<size_t>& keys() const { return keys_; }
  bool ascending() const { return ascending_; }

 protected:
  std::string Describe() const override;

 private:
  std::vector<size_t> keys_;
  bool ascending_;
};

/// LIMIT n.
class LimitNode final : public PlanNode {
 public:
  LimitNode(PlanPtr child, size_t limit);

  size_t limit() const { return limit_; }

 protected:
  std::string Describe() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }

 private:
  size_t limit_;
};

}  // namespace ra
}  // namespace fgpdb

#endif  // FGPDB_RA_PLAN_H_
