// Incremental (delta-maintained) query operators — the paper's §4.2.
//
// An IncrementalOperator tree is compiled from the same ra:: plan the full
// executor runs. Initialize() performs the one exhaustive evaluation of the
// initial world (the base case of Eq. 6); ApplyDelta() then consumes base-
// table deltas produced by MCMC and emits the view's output delta:
//
//   Q(w') = Q(w) − Q'(w, Δ−) ∪ Q'(w, Δ+)            (paper Eq. 6)
//
// realized operator-by-operator:
//   σ:  Δout = σ(Δin)                                (linear)
//   π:  Δout = π(Δin)  with signed multiset counts   (paper's Remark)
//   ⋈:  Δout = ΔL⋈R_old + ΔR⋈L_new                   (bilinear; folding ΔL
//        into the materialized left state before probing ΔR absorbs the
//        ΔL⋈ΔR cross term into hash lookups — no nested loop)
//   γ:  per-group running states updated by Δin; emits −old_row/+new_row
//   δ:  distinct via support counts (emit on 0→positive transitions)
//
// The PR-3 routed pipeline wraps the tree in three mechanisms:
//
//   * Subscriptions — compilation records which base tables each subtree
//     scans (bitmask per operator, built from the plan's scanned-table
//     metadata). Apply() routes a round's deltas by computing the set of
//     touched tables once; a subtree whose mask misses every touched table
//     is skipped outright and contributes an empty delta without being
//     visited.
//   * Reusable buffers — ApplyDelta returns a pointer to the operator's
//     internal output buffer (or to the DeltaSet's own per-table multiset
//     for scans, or the shared empty delta when skipped) instead of a
//     freshly allocated DeltaMultiset per call. Buffers retain their hash
//     storage across rounds.
//   * Tuple interning — all stateful operators of one view (join sides,
//     aggregate groups, distinct support) reference tuples interned in a
//     per-view TupleArena instead of holding private deep copies; a tuple
//     materialized by both sides of a self-join is stored once.
//
// Operators never re-read the Database after Initialize(); all state needed
// for maintenance is carried internally, so the stored world may drift ahead
// as long as deltas arrive in order. A view (and its arena) belongs to one
// thread; parallel chains each compile their own view.
#ifndef FGPDB_VIEW_INCREMENTAL_H_
#define FGPDB_VIEW_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ra/plan.h"
#include "storage/database.h"
#include "view/delta.h"

namespace fgpdb {
namespace view {

/// Append-only interning pool for the tuples a view's operators keep alive.
/// Interned pointers are stable for the arena's lifetime (node-based set),
/// so operator state can hold `const Tuple*` instead of tuple copies.
/// Entries are never evicted: the pool grows with the number of distinct
/// tuples ever materialized, which MCMC workloads bound by (rows × domain).
class TupleArena {
 public:
  const Tuple* Intern(const Tuple& tuple) {
    return &*pool_.insert(tuple).first;
  }
  const Tuple* Intern(Tuple&& tuple) {
    return &*pool_.insert(std::move(tuple)).first;
  }

  /// Distinct tuples interned so far.
  size_t size() const { return pool_.size(); }

 private:
  std::unordered_set<Tuple, TupleHasher> pool_;
};

/// Counters describing how Apply() rounds were routed (diagnostics, benches,
/// and the adaptive-thinning cost model).
struct ApplyStats {
  uint64_t rounds = 0;
  /// Apply() rounds short-circuited because the view was paused (its answer
  /// converged, so the caller drained it from the fan-out).
  uint64_t rounds_short_circuited = 0;
  /// Operators actually entered across all rounds.
  uint64_t operators_visited = 0;
  /// Operators skipped because no table of their subtree was touched
  /// (counted per skipped node, so visited + skipped = rounds × tree size).
  uint64_t operators_skipped = 0;
  /// Non-empty per-table deltas routed into the tree.
  uint64_t tables_routed = 0;
  /// Non-empty per-table deltas for tables no scan subscribes to.
  uint64_t tables_ignored = 0;
};

/// Per-view shared state: the interning arena, the subscription map built at
/// compile time, the routing mask for the round in flight, and counters.
struct ViewRuntime {
  TupleArena arena;
  ApplyStats stats;

  /// Bit i set ⇔ table with id i has a non-empty delta this round. Set by
  /// MaterializedView::Apply before walking the tree.
  uint64_t touched_mask = 0;

  /// Table name → routing bit, assigned in first-registration (plan
  /// pre-order) order. Tables past 63 share the last bit — routing
  /// degrades to "maybe touched" there, never to a missed delta.
  std::unordered_map<std::string, uint64_t> table_masks;
  /// Subscription map: table name → number of scan operators reading it.
  std::unordered_map<std::string, size_t> subscriptions;

  /// Assigns (or looks up) the routing bit for `table`.
  uint64_t RegisterTable(const std::string& table);
  /// RegisterTable plus a subscription count — called by each compiled scan.
  uint64_t SubscribeScan(const std::string& table);
  /// Routing bit for `table`; 0 if no scan subscribes to it.
  uint64_t MaskOf(const std::string& table) const;
};

class IncrementalOperator {
 public:
  explicit IncrementalOperator(ViewRuntime* runtime) : runtime_(runtime) {}
  virtual ~IncrementalOperator() = default;

  /// Full evaluation against the current world; (re)sets internal state.
  /// The result is a bag: every count >= 1.
  virtual DeltaMultiset Initialize(const Database& db) = 0;

  /// Consumes base-table deltas and returns this operator's output delta.
  /// The result points at a reusable internal buffer (or the DeltaSet's own
  /// per-table delta for scans, or the shared empty delta when the routing
  /// mask proves this subtree untouched) and is valid until the next
  /// ApplyDelta call on this operator.
  const DeltaMultiset* ApplyDelta(const DeltaSet& deltas);

  /// Base tables read by this subtree, as a routing bitmask.
  uint64_t reads_mask() const { return reads_mask_; }
  /// Number of operators in this subtree (including this one).
  size_t subtree_size() const { return subtree_size_; }

 protected:
  /// The operator body; only called when the routing mask says some table
  /// of this subtree was touched this round.
  virtual const DeltaMultiset* ApplyDeltaImpl(const DeltaSet& deltas) = 0;

  /// Folds a child's routing metadata into this operator's (call once per
  /// child in the derived constructor).
  void AbsorbChild(const IncrementalOperator& child) {
    reads_mask_ |= child.reads_mask();
    subtree_size_ += child.subtree_size();
  }

  ViewRuntime* runtime_;
  uint64_t reads_mask_ = 0;
  size_t subtree_size_ = 1;
};

using IncrementalOperatorPtr = std::unique_ptr<IncrementalOperator>;

/// A compiled operator tree plus the runtime (arena, subscriptions, stats)
/// its operators reference. Movable; the runtime address is stable.
class CompiledView {
 public:
  explicit CompiledView(const ra::PlanNode& plan);

  IncrementalOperator& root() { return *root_; }
  ViewRuntime& runtime() { return *runtime_; }
  const ViewRuntime& runtime() const { return *runtime_; }

 private:
  std::unique_ptr<ViewRuntime> runtime_;
  IncrementalOperatorPtr root_;
};

/// Compiles a plan into an incremental operator tree with its subscription
/// map. OrderBy nodes are skipped (view contents are multisets);
/// Limit/Distinct-with-Limit are rejected as non-incremental. Fatal on
/// unsupported shapes.
CompiledView Compile(const ra::PlanNode& plan);

/// A maintained view: operator tree + its current materialized contents.
class MaterializedView {
 public:
  /// Compiles `plan`; call Initialize before reading contents.
  explicit MaterializedView(const ra::PlanNode& plan);

  /// Runs the one full evaluation of the initial world.
  void Initialize(const Database& db);

  /// Folds a round of base-table deltas into the view; returns the output
  /// delta (what changed in the answer). Each table's delta is routed only
  /// to the subtrees subscribed to it; untouched subtrees are skipped. The
  /// returned reference is valid until the next Apply.
  const DeltaMultiset& Apply(const DeltaSet& deltas);

  /// Current contents (bag: counts >= 1).
  const DeltaMultiset& contents() const { return contents_; }

  bool initialized() const { return initialized_; }

  /// Convergence short-circuit: while paused, Apply() returns an empty
  /// delta without entering the operator tree and the contents freeze.
  /// Deltas skipped while paused are NOT replayed on resume — a resumed
  /// view is stale and must be re-Initialized to catch up. Intended for
  /// views whose marginal estimates have converged (run-until-error-bound):
  /// they stop paying apply cost while the chain keeps serving other views.
  void set_paused(bool paused) { paused_ = paused; }
  bool paused() const { return paused_; }

  /// Subscription map: base table → number of scan operators reading it.
  const std::unordered_map<std::string, size_t>& subscriptions() const {
    return compiled_.runtime().subscriptions;
  }

  /// Routing/visit counters accumulated over all Apply rounds.
  const ApplyStats& stats() const { return compiled_.runtime().stats; }

  /// Distinct tuples interned by this view's operators (diagnostics).
  size_t arena_size() const { return compiled_.runtime().arena.size(); }

 private:
  CompiledView compiled_;
  DeltaMultiset contents_;
  // Reused empty output for short-circuited rounds (keeps the "valid until
  // the next Apply" contract without touching operator buffers).
  DeltaMultiset paused_out_;
  bool initialized_ = false;
  bool paused_ = false;
};

}  // namespace view
}  // namespace fgpdb

#endif  // FGPDB_VIEW_INCREMENTAL_H_
