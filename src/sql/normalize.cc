#include "sql/normalize.h"

#include "sql/lexer.h"

namespace fgpdb {
namespace sql {

std::string NormalizeForCache(const std::string& sql) {
  std::string out;
  for (const Token& token : Lex(sql)) {
    if (token.type == TokenType::kEnd) break;
    if (!out.empty()) out += ' ';
    if (token.type == TokenType::kString) {
      out += '\'';
      for (const char c : token.text) {
        out += c;
        if (c == '\'') out += c;  // Re-escape embedded quotes.
      }
      out += '\'';
    } else {
      out += token.text;
    }
  }
  return out;
}

}  // namespace sql
}  // namespace fgpdb
