#include "infer/belief_propagation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace fgpdb {
namespace infer {
namespace {

using factor::FactorGraph;
using factor::VarId;

// Normalizes a log-message so its log-sum-exp is 0 (keeps values bounded).
void NormalizeLog(std::vector<double>& message) {
  const double lse = LogSumExp(message);
  for (double& x : message) x -= lse;
}

double MaxAbsDifference(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double out = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    out = std::max(out, std::abs(a[i] - b[i]));
  }
  return out;
}

}  // namespace

LoopyBpResult LoopyBeliefPropagation(const FactorGraph& graph,
                                     const LoopyBpOptions& options) {
  const size_t num_vars = graph.num_variables();
  const size_t num_factors = graph.num_factors();

  // Edge (factor f, slot i) where slot i is the position of the variable in
  // f's argument list. Messages live per edge, both directions.
  struct Edge {
    size_t factor;
    size_t slot;
    VarId var;
  };
  std::vector<Edge> edges;
  // Per-variable and per-factor edge indexes.
  std::vector<std::vector<size_t>> var_edges(num_vars);
  std::vector<std::vector<size_t>> factor_edges(num_factors);
  for (size_t f = 0; f < num_factors; ++f) {
    const auto& vars = graph.factor(f).variables();
    for (size_t slot = 0; slot < vars.size(); ++slot) {
      var_edges[vars[slot]].push_back(edges.size());
      factor_edges[f].push_back(edges.size());
      edges.push_back(Edge{f, slot, vars[slot]});
    }
  }

  // Messages in log space, initialized uniform (zeros).
  std::vector<std::vector<double>> var_to_factor(edges.size());
  std::vector<std::vector<double>> factor_to_var(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    const size_t domain = graph.domain_size(edges[e].var);
    var_to_factor[e].assign(domain, 0.0);
    factor_to_var[e].assign(domain, 0.0);
  }

  LoopyBpResult result;
  std::vector<double> scratch;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double max_change = 0.0;

    // Variable -> factor messages.
    for (size_t e = 0; e < edges.size(); ++e) {
      const Edge& edge = edges[e];
      const size_t domain = graph.domain_size(edge.var);
      std::vector<double> message(domain, 0.0);
      for (size_t other : var_edges[edge.var]) {
        if (other == e) continue;
        for (size_t x = 0; x < domain; ++x) {
          message[x] += factor_to_var[other][x];
        }
      }
      NormalizeLog(message);
      if (options.damping > 0.0) {
        for (size_t x = 0; x < domain; ++x) {
          message[x] = options.damping * var_to_factor[e][x] +
                       (1.0 - options.damping) * message[x];
        }
      }
      max_change =
          std::max(max_change, MaxAbsDifference(message, var_to_factor[e]));
      var_to_factor[e] = std::move(message);
    }

    // Factor -> variable messages: marginalize the factor over every other
    // argument, weighting by their incoming messages.
    for (size_t f = 0; f < num_factors; ++f) {
      const auto& fac = graph.factor(f);
      const auto& vars = fac.variables();
      const size_t arity = vars.size();
      // Enumerate joint assignments (mixed radix, last slot fastest).
      std::vector<uint32_t> assignment(arity, 0);
      std::vector<std::vector<std::vector<double>>> accum(arity);
      for (size_t slot = 0; slot < arity; ++slot) {
        accum[slot].assign(graph.domain_size(vars[slot]), {});
      }
      while (true) {
        double weight = fac.LogScore(assignment);
        for (size_t slot = 0; slot < arity; ++slot) {
          weight += var_to_factor[factor_edges[f][slot]][assignment[slot]];
        }
        // Credit this joint weight to each slot's output bucket, excluding
        // that slot's own incoming message.
        for (size_t slot = 0; slot < arity; ++slot) {
          const double without_self =
              weight -
              var_to_factor[factor_edges[f][slot]][assignment[slot]];
          accum[slot][assignment[slot]].push_back(without_self);
        }
        // Increment.
        size_t i = arity;
        bool done = true;
        while (i > 0) {
          --i;
          if (assignment[i] + 1 < graph.domain_size(vars[i])) {
            ++assignment[i];
            done = false;
            break;
          }
          assignment[i] = 0;
        }
        if (done) break;
      }
      for (size_t slot = 0; slot < arity; ++slot) {
        const size_t e = factor_edges[f][slot];
        const size_t domain = graph.domain_size(vars[slot]);
        std::vector<double> message(domain);
        for (size_t x = 0; x < domain; ++x) {
          message[x] = LogSumExp(accum[slot][x]);
        }
        NormalizeLog(message);
        if (options.damping > 0.0) {
          for (size_t x = 0; x < domain; ++x) {
            message[x] = options.damping * factor_to_var[e][x] +
                         (1.0 - options.damping) * message[x];
          }
        }
        max_change =
            std::max(max_change, MaxAbsDifference(message, factor_to_var[e]));
        factor_to_var[e] = std::move(message);
      }
    }

    result.iterations = iter + 1;
    if (max_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Beliefs.
  result.marginals.resize(num_vars);
  for (size_t v = 0; v < num_vars; ++v) {
    const size_t domain = graph.domain_size(static_cast<VarId>(v));
    std::vector<double> belief(domain, 0.0);
    for (size_t e : var_edges[v]) {
      for (size_t x = 0; x < domain; ++x) belief[x] += factor_to_var[e][x];
    }
    const double lse = LogSumExp(belief);
    result.marginals[v].resize(domain);
    for (size_t x = 0; x < domain; ++x) {
      result.marginals[v][x] = std::exp(belief[x] - lse);
    }
  }
  return result;
}

}  // namespace infer
}  // namespace fgpdb
