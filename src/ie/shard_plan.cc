#include "ie/shard_plan.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace fgpdb {
namespace ie {

pdb::ShardPlan BuildDocumentShardPlan(const TokenPdb& tokens,
                                      const factor::Model& model,
                                      DocumentShardOptions options) {
  const size_t num_docs = tokens.docs.size();
  size_t num_shards =
      std::min(std::max<size_t>(1, options.num_shards),
               std::max<size_t>(1, num_docs));

  std::vector<uint32_t> partition;
  if (num_shards > 1) {
    partition.assign(tokens.num_tokens(), 0);
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = s * num_docs / num_shards;
      const size_t end = (s + 1) * num_docs / num_shards;
      for (size_t d = begin; d < end; ++d) {
        for (const factor::VarId v : tokens.docs[d]) {
          partition[v] = static_cast<uint32_t>(s);
        }
      }
    }
    // The locality gate: a model whose factors can cross documents (or a
    // partition that splits one) degrades to the exact single-shard plan
    // instead of an approximate sharded one.
    if (!model.FactorsRespectPartition(partition)) {
      num_shards = 1;
      partition.clear();
    }
  }

  // Per-shard document lists, owned by the factory closure so the plan is
  // self-contained (replica chains may invoke it long after this returns).
  auto shard_docs = std::make_shared<
      std::vector<std::vector<std::vector<factor::VarId>>>>(num_shards);
  if (num_shards == 1) {
    (*shard_docs)[0] = tokens.docs;
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = s * num_docs / num_shards;
      const size_t end = (s + 1) * num_docs / num_shards;
      (*shard_docs)[s].assign(tokens.docs.begin() + begin,
                              tokens.docs.begin() + end);
    }
  }

  pdb::ShardPlan plan;
  plan.num_shards = num_shards;
  plan.partition = std::move(partition);
  const NerProposalOptions proposal_options = options.proposal;
  plan.make_proposal = [shard_docs, proposal_options](
                           pdb::ProbabilisticDatabase&, size_t shard) {
    return std::make_unique<DocumentBatchProposal>(&(*shard_docs)[shard],
                                                   proposal_options);
  };
  return plan;
}

}  // namespace ie
}  // namespace fgpdb
