// TupleBinding: the bridge between random variables and database fields
// (paper §3.2: "each field in the database is a random variable").
//
// Every hidden variable is bound to one (table, row, column) slot; observed
// fields simply stay constant. The binding translates in both directions:
// loading a World from the stored world, and mirroring accepted MCMC
// changes back into tables while accumulating the Δ−/Δ+ auxiliary sets the
// materialized evaluator consumes (paper §4.2's "added"/"deleted" tables).
//
// The field list sits behind a shared pointer with copy-on-write on Bind():
// copying a TupleBinding is O(1), so spawning a per-chain world (paper
// §5.4) does not re-copy one FieldRef per variable. Bindings are append-
// only during setup and read-only during inference, so chains can share
// one field list safely across threads.
#ifndef FGPDB_PDB_BINDING_H_
#define FGPDB_PDB_BINDING_H_

#include <memory>
#include <string>
#include <vector>

#include "factor/domain.h"
#include "factor/world.h"
#include "storage/database.h"
#include "view/delta.h"

namespace fgpdb {
namespace pdb {

class TupleBinding {
 public:
  struct FieldRef {
    std::string table;
    RowId row = kInvalidRowId;
    size_t column = 0;
    std::shared_ptr<const factor::Domain> domain;
  };

  TupleBinding() : fields_(std::make_shared<std::vector<FieldRef>>()) {}

  /// Binds the next variable id (they must be registered in order 0,1,2,…)
  /// to a field slot. Returns the variable id. Copies the field list
  /// privately first if it is shared with another binding.
  factor::VarId Bind(std::string table, RowId row, size_t column,
                     std::shared_ptr<const factor::Domain> domain);

  size_t num_variables() const { return fields_->size(); }
  const FieldRef& field(factor::VarId var) const { return fields_->at(var); }

  /// Builds a world whose variable values are the domain indexes of the
  /// currently stored field values.
  factor::World LoadWorld(const Database& db) const;

  /// Writes the world's values into the database (full synchronization; no
  /// delta tracking). Used to initialize clones and reset worlds.
  void StoreWorld(const factor::World& world, Database* db) const;

  /// Mirrors accepted MCMC assignments into the database and accumulates
  /// the old/new tuples into `deltas` (Δ− as −1 entries, Δ+ as +1).
  /// Intermediate states of a row updated twice cancel automatically.
  void ApplyToDatabase(const std::vector<factor::AppliedAssignment>& applied,
                       Database* db, view::DeltaSet* deltas) const;

  /// Hot-path variant: mirrors assignments and records only each touched
  /// row's pre-image in `accumulator` (first touch copies the tuple; repeat
  /// flips are one hash probe). The −/+ multisets are produced later by
  /// DeltaAccumulator::Flush, so oscillation coalesces at insert time.
  void ApplyToDatabase(const std::vector<factor::AppliedAssignment>& applied,
                       Database* db,
                       view::DeltaAccumulator* accumulator) const;

  /// Domain sizes per variable (for samplers/estimators).
  std::vector<size_t> DomainSizes() const;

 private:
  // Shared across copies (per-chain worlds); copied privately on Bind().
  std::shared_ptr<std::vector<FieldRef>> fields_;
};

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_BINDING_H_
