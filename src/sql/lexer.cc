#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace fgpdb {
namespace sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE",    "GROUP",  "BY",    "HAVING", "ORDER",
      "LIMIT",  "AND",   "OR",       "NOT",    "AS",    "COUNT",  "SUM",
      "MIN",    "MAX",   "AVG",      "COUNT_IF", "DISTINCT", "ASC", "DESC",
      "NULL",   "TRUE",  "FALSE", "BETWEEN", "IN", "IS", "LIKE",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments are token separators, exactly like whitespace: `-- ...` to
    // end of line, `/* ... */` (non-nesting) anywhere. Skipping them here
    // makes commented queries both parse and share a normalized cache key
    // with their uncommented spelling (sql::NormalizeForCache).
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      i += 2;
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      const size_t open = i;
      i += 2;
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) ++i;
      FGPDB_CHECK(i + 1 < n) << "unterminated /* comment at " << open;
      i += 2;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tokens.push_back({TokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') is_float = true;
        ++j;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // Escaped quote ''.
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += input[j++];
      }
      FGPDB_CHECK(closed) << "unterminated string literal at " << start;
      tokens.push_back({TokenType::kString, std::move(text), start});
      i = j;
      continue;
    }
    // Multi-char operators first.
    auto two = [&](const char* sym) {
      tokens.push_back({TokenType::kSymbol, sym, start});
      i += 2;
    };
    if (i + 1 < n) {
      const char d = input[i + 1];
      if (c == '<' && d == '>') {
        two("<>");
        continue;
      }
      if (c == '<' && d == '=') {
        two("<=");
        continue;
      }
      if (c == '>' && d == '=') {
        two(">=");
        continue;
      }
      if (c == '!' && d == '=') {
        two("<>");
        continue;
      }
    }
    static const std::string kSingles = "(),.*=<>+-/";
    FGPDB_CHECK(kSingles.find(c) != std::string::npos)
        << "unexpected character '" << c << "' at " << start;
    tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
    ++i;
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace sql
}  // namespace fgpdb
