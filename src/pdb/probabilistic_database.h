// ProbabilisticDatabase: the paper's representation (§3) assembled.
//
//   * a Database holding the single current possible world,
//   * a World of hidden-variable assignments mirrored into it,
//   * a TupleBinding connecting the two,
//   * an external factor-graph Model scoring worlds, and
//   * a delta accumulator recording Δ−/Δ+ between query evaluations.
//
// MakeSampler() wires a Metropolis–Hastings chain so that every accepted
// jump updates the tables and the delta buffer — inference runs in memory,
// the DBMS stays a blackbox, exactly the architecture of §5.
#ifndef FGPDB_PDB_PROBABILISTIC_DATABASE_H_
#define FGPDB_PDB_PROBABILISTIC_DATABASE_H_

#include <memory>

#include "factor/model.h"
#include "infer/metropolis_hastings.h"
#include "pdb/binding.h"
#include "storage/database.h"
#include "view/delta.h"

namespace fgpdb {
namespace pdb {

class ProbabilisticDatabase {
 public:
  ProbabilisticDatabase() : db_(std::make_unique<Database>()) {}

  Database& db() { return *db_; }
  const Database& db() const { return *db_; }

  TupleBinding& binding() { return binding_; }
  const TupleBinding& binding() const { return binding_; }

  factor::World& world() { return world_; }
  const factor::World& world() const { return world_; }

  /// The factor-graph model over this database's hidden variables. Not
  /// owned; must outlive the ProbabilisticDatabase.
  void set_model(const factor::Model* model) { model_ = model; }
  const factor::Model& model() const {
    FGPDB_CHECK(model_ != nullptr) << "model not set";
    return *model_;
  }

  /// Loads the world from the stored field values (call after populating
  /// tables and bindings). A label shadow, if attached, is re-enabled on
  /// the freshly loaded world so the narrow lane survives re-syncs.
  void SyncWorldFromDatabase() {
    const bool shadowed = world_.has_label_shadow();
    world_ = binding_.LoadWorld(*db_);
    if (shadowed) world_.EnableLabelShadow();
  }

  /// Creates an MH sampler over this database's world: accepted changes are
  /// mirrored into the tables and coalesced into the row-granular delta
  /// accumulator (one pre-image per touched row, however often it flips).
  std::unique_ptr<infer::MetropolisHastings> MakeSampler(
      infer::Proposal* proposal, uint64_t seed);

  /// Mirrors an already-applied assignment stream into the tables and the
  /// delta accumulator — exactly what MakeSampler's listener does per
  /// flush. The sharded executor uses this as its merge sink: shard-local
  /// chains advance the world privately, then their buffered streams drain
  /// through here in fixed shard order. Mirroring depends only on the
  /// stream's content and order, so deferred (per-interval) mirroring is
  /// bitwise-identical to the sampler's incremental (per-flush) mirroring.
  void MirrorApplied(const std::vector<factor::AppliedAssignment>& applied) {
    binding_.ApplyToDatabase(applied, db_.get(), &pending_rows_);
  }

  /// Drains the deltas accumulated since the last TakeDeltas (the paper's
  /// auxiliary tables, consumed at each query evaluation) into `out` as
  /// per-base-table Δ−/Δ+ multisets. `out` is cleared first; its table
  /// buckets are reused, so a caller passing the same DeltaSet every
  /// interval recycles all hash storage. Oscillating rows coalesce to at
  /// most one −/+ pair; reverted rows vanish.
  void TakeDeltas(view::DeltaSet* out) {
    out->Clear();
    pending_rows_.Flush(*db_, out);
  }

  /// Convenience overload returning a fresh DeltaSet.
  view::DeltaSet TakeDeltas() {
    view::DeltaSet out;
    pending_rows_.Flush(*db_, &out);
    return out;
  }

  /// Discards pending deltas (e.g. after a full re-evaluation).
  void DiscardDeltas() { pending_rows_.Clear(); }

  /// Distinct rows touched since the last TakeDeltas (diagnostics).
  size_t pending_rows_touched() const { return pending_rows_.rows_touched(); }

  /// Copy-on-write copy of the database, world, and binding for an
  /// independent chain (paper §5.4): table pages, indexes, and the field
  /// binding are shared until written (see Database::Snapshot), so spawning
  /// chain B+1 is O(#pages) rather than O(|DB|). The model pointer is
  /// shared — models are read-only during inference. Safe to call
  /// concurrently as long as this database is not being mutated.
  std::unique_ptr<ProbabilisticDatabase> Snapshot() const;

  /// Logical deep copy for an independent chain. Backed by Snapshot():
  /// isolation semantics are identical, only the cost model changed (lazy
  /// per-page copies instead of an eager O(|DB|) copy).
  std::unique_ptr<ProbabilisticDatabase> Clone() const { return Snapshot(); }

 private:
  std::unique_ptr<Database> db_;
  TupleBinding binding_;
  factor::World world_;
  const factor::Model* model_ = nullptr;
  view::DeltaAccumulator pending_rows_;
};

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_PROBABILISTIC_DATABASE_H_
