// Entity resolution example (paper Figure 1, bottom row; §3.4): cluster
// name mentions with a pairwise factor model, sampling partitions with the
// constraint-preserving split-merge proposal. The MENTION relation stores
// the single current clustering; Metropolis-Hastings recovers the posterior
// over co-reference decisions.
//
// The pairwise match probabilities are answered as a SQL query through the
// Session front door — a self-join on the uncertain CLUSTER attribute whose
// maintained view IS the coreference matrix:
//
//   SELECT M1.NAME, M2.NAME FROM MENTION M1, MENTION M2
//   WHERE M1.CLUSTER = M2.CLUSTER AND M1.ID < M2.ID
//
//   ./examples/entity_resolution
#include <iomanip>
#include <iostream>

#include "api/session.h"
#include "ie/entity_resolution.h"
#include "infer/metropolis_hastings.h"
#include "pdb/probabilistic_database.h"
#include "util/stopwatch.h"

using namespace fgpdb;

int main() {
  // The paper's own example mentions (Figure 1 Pane C) plus a few more.
  const std::vector<std::string> mentions = {
      "John Smith",  "J. Smith",   "J. Simms",  "Jon Smith",
      "Acme Corp",   "Acme",       "Acme Inc",  "Global Partners",
      "G. Partners", "Kunming",
  };
  ie::EntityResolutionModel model(mentions);

  // Store the single world in a MENTION(ID, NAME, CLUSTER) relation, as the
  // paper stores clusterings (Figure 1 Pane C).
  pdb::ProbabilisticDatabase db;
  Schema schema(
      {Attribute{"ID", ValueType::kInt64},
       Attribute{"NAME", ValueType::kString},
       Attribute{"CLUSTER", ValueType::kInt64}},
      0);
  Table* table = db.db().CreateTable("MENTION", std::move(schema));
  auto cluster_domain = std::make_shared<factor::Domain>(
      factor::Domain::OfRange(static_cast<int64_t>(mentions.size())));
  for (size_t i = 0; i < mentions.size(); ++i) {
    const RowId row = table->Insert(
        Tuple{Value::Int(static_cast<int64_t>(i)), Value::String(mentions[i]),
              Value::Int(static_cast<int64_t>(i))});  // Singleton clusters.
    db.binding().Bind("MENTION", row, 2, cluster_domain);
  }
  db.SyncWorldFromDatabase();
  db.set_model(&model);

  // The pairwise-coreference query: its sampled marginals are exactly
  // Pr[mention i and mention j share a cluster].
  const char* kCoreferenceQuery =
      "SELECT M1.NAME, M2.NAME FROM MENTION M1, MENTION M2 "
      "WHERE M1.CLUSTER = M2.CLUSTER AND M1.ID < M2.ID";

  auto session = api::Session::Open(
      {.database = &db,
       .proposal_factory =
           [&model](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
             return std::make_unique<ie::SplitMergeProposal>(model);
           },
       .evaluator = {.steps_per_sample = 1, .burn_in = 20000, .seed = 7}});
  api::ResultHandle pairs = session->Register(kCoreferenceQuery);

  Stopwatch timer;
  const uint64_t kSamples = 50000;  // One collected sample per MH step.
  session->Run(kSamples);
  const api::QueryProgress progress = pairs.Snapshot();
  std::cout << "Sampled " << progress.samples << " partitions in "
            << timer.ElapsedSeconds() << "s (acceptance rate "
            << progress.acceptance_rate << ")\n\n";

  std::cout << "Pairwise coreference probabilities (>= 0.05):\n";
  for (const auto& [pair, p] : progress.answer.Sorted()) {
    if (p < 0.05) continue;
    std::cout << "  " << std::setw(16) << pair.at(0).AsString() << " ~ "
              << std::setw(16) << pair.at(1).AsString() << "  " << p << "\n";
  }

  // Under the facade the same machinery is available directly: sample a
  // final clustering with a raw chain on the base world and show it.
  ie::SplitMergeProposal proposal(model);
  auto sampler = db.MakeSampler(&proposal, /*seed=*/7);
  sampler->Run(70000);
  db.DiscardDeltas();
  std::cout << "\nFinal sampled clustering (stored in the MENTION relation):\n";
  for (const auto& cluster : model.Clusters(db.world())) {
    std::cout << "  {";
    for (size_t m = 0; m < cluster.size(); ++m) {
      std::cout << (m > 0 ? ", " : "") << mentions[cluster[m]];
    }
    std::cout << "}\n";
  }
  // Confirm the relation mirrors the world (the §3 invariant).
  table->Scan([&](RowId row, const Tuple& t) {
    FGPDB_CHECK_EQ(static_cast<uint32_t>(t.at(2).AsInt()),
                   db.world().Get(static_cast<factor::VarId>(row)));
  });
  std::cout << "\nMENTION relation verified in sync with the sampled world.\n";
  return 0;
}
