#include "factor/factor_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace fgpdb {
namespace factor {

VarId FactorGraph::AddVariable(std::shared_ptr<const Domain> domain,
                               std::string name) {
  FGPDB_CHECK(domain != nullptr);
  FGPDB_CHECK_GT(domain->size(), 0u);
  const VarId id = static_cast<VarId>(domains_.size());
  if (name.empty()) name = "y" + std::to_string(id);
  domains_.push_back(std::move(domain));
  names_.push_back(std::move(name));
  factors_of_.emplace_back();
  return id;
}

size_t FactorGraph::AddFactor(std::unique_ptr<Factor> factor) {
  FGPDB_CHECK(factor != nullptr);
  const uint32_t index = static_cast<uint32_t>(factors_.size());
  for (VarId v : factor->variables()) {
    FGPDB_CHECK_LT(v, domains_.size()) << "factor references unknown variable";
    factors_of_[v].push_back(index);
  }
  factors_.push_back(std::move(factor));
  return index;
}

double FactorGraph::LogScoreDelta(const World& world,
                                  const Change& change) const {
  return LogScoreDelta(world, change, &member_scratch_);
}

double FactorGraph::LogScoreDelta(const World& world, const Change& change,
                                  ScoreScratch* scratch) const {
  Scratch* s = scratch != nullptr ? static_cast<Scratch*>(scratch)
                                  : &member_scratch_;
  // Collect the factors adjacent to any changed variable, deduplicated.
  std::vector<uint32_t>& touched = s->touched;
  touched.clear();
  for (const auto& a : change.assignments) {
    const auto& fs = factors_of_.at(a.var);
    touched.insert(touched.end(), fs.begin(), fs.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  const PatchedWorld patched(world, change);
  double delta = 0.0;
  for (uint32_t f : touched) {
    const Factor& factor = *factors_[f];
    GatherValues(factor, [&](VarId v) { return world.Get(v); },
                 &s->old_values);
    GatherValues(factor, [&](VarId v) { return patched.Get(v); },
                 &s->new_values);
    delta += factor.LogScore(s->new_values) - factor.LogScore(s->old_values);
  }
  return delta;
}

std::unique_ptr<ScoreScratch> FactorGraph::MakeScratch() const {
  return std::make_unique<Scratch>();
}

bool FactorGraph::FactorsRespectPartition(
    const std::vector<uint32_t>& partition) const {
  if (partition.size() != num_variables()) return false;
  for (const auto& factor : factors_) {
    const auto& vars = factor->variables();
    if (vars.empty()) continue;
    const uint32_t part = partition.at(vars.front());
    for (const VarId v : vars) {
      if (partition.at(v) != part) return false;
    }
  }
  return true;
}

double FactorGraph::LogScore(const World& world) const {
  FGPDB_CHECK_EQ(world.size(), num_variables());
  std::vector<uint32_t> values;
  double total = 0.0;
  for (const auto& factor : factors_) {
    GatherValues(*factor, [&](VarId v) { return world.Get(v); }, &values);
    total += factor->LogScore(values);
  }
  return total;
}

}  // namespace factor
}  // namespace fgpdb
