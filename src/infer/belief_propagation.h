// Loopy belief propagation (sum-product) over explicit factor graphs.
//
// Included to reproduce the paper's §5.3 motivation: "approximate methods
// such as loopy belief propagation fail to converge for these types of
// graphs [27]" — BP is exact on trees, but on the loopy, tightly-coupled
// graphs skip-chains create it may oscillate or settle on biased marginals,
// which is precisely why the paper reaches for MCMC. Tests compare BP
// against exact inference on trees (must match) and on frustrated loops
// (shows the failure mode).
#ifndef FGPDB_INFER_BELIEF_PROPAGATION_H_
#define FGPDB_INFER_BELIEF_PROPAGATION_H_

#include <vector>

#include "factor/factor_graph.h"

namespace fgpdb {
namespace infer {

struct LoopyBpOptions {
  size_t max_iterations = 200;
  /// New message = damping * old + (1-damping) * computed (in log space).
  double damping = 0.0;
  /// Convergence threshold on the max absolute message change.
  double tolerance = 1e-8;
};

struct LoopyBpResult {
  bool converged = false;
  size_t iterations = 0;
  /// marginals[var][value] — beliefs (exact on trees, approximate on loops).
  std::vector<std::vector<double>> marginals;
};

/// Runs flooding-schedule sum-product message passing.
LoopyBpResult LoopyBeliefPropagation(const factor::FactorGraph& graph,
                                     const LoopyBpOptions& options = {});

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_BELIEF_PROPAGATION_H_
