// Unit tests for the storage engine: values, tuples, schemas, tables,
// indexes, and the database catalog.
#include <gtest/gtest.h>

#include "storage/database.h"
#include "test_helpers.h"

namespace fgpdb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Double(3.0).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
  EXPECT_GT(Value::Double(3.1), Value::Int(3));
}

TEST(ValueTest, CrossTypeEqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_NE(Value::Int(2).Hash(), Value::Int(3).Hash());
}

TEST(ValueTest, StringOrderingAndEquality) {
  EXPECT_LT(Value::String("apple"), Value::String("banana"));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
  EXPECT_NE(Value::String("x"), Value::String("y"));
}

TEST(ValueTest, NullSortsFirstAndEqualsItself) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("abc").ToString(), "'abc'");
}

TEST(ValueTest, AsNumericFatalOnString) {
  EXPECT_DEATH(Value::String("x").AsNumeric(), "non-numeric");
}

TEST(TupleTest, ConcatProjectEquality) {
  Tuple a{Value::Int(1), Value::String("x")};
  Tuple b{Value::Double(2.0)};
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c.at(2), Value::Double(2.0));
  Tuple p = c.Project({2, 0});
  EXPECT_EQ(p, (Tuple{Value::Double(2.0), Value::Int(1)}));
  EXPECT_EQ(c.ToString(), "(1, 'x', 2)");
}

TEST(TupleTest, OrderingIsLexicographic) {
  EXPECT_LT((Tuple{Value::Int(1), Value::Int(2)}),
            (Tuple{Value::Int(1), Value::Int(3)}));
  EXPECT_LT((Tuple{Value::Int(1)}), (Tuple{Value::Int(1), Value::Int(0)}));
}

TEST(TupleTest, HashConsistentWithEquality) {
  Tuple a{Value::Int(7), Value::String("q")};
  Tuple b{Value::Int(7), Value::String("q")};
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(SchemaTest, NameResolution) {
  Schema s({Attribute{"A", ValueType::kInt64}, Attribute{"B", ValueType::kString}},
           0);
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.RequireIndexOf("B"), 1u);
  EXPECT_FALSE(s.IndexOf("C").has_value());
  EXPECT_EQ(*s.primary_key(), 0u);
  EXPECT_DEATH(s.RequireIndexOf("C"), "unknown attribute");
}

TEST(SchemaTest, DuplicateAttributeIsFatal) {
  EXPECT_DEATH(Schema({Attribute{"A", ValueType::kInt64},
                       Attribute{"A", ValueType::kInt64}}),
               "duplicate attribute");
}

TEST(TableTest, InsertGetUpdateDelete) {
  Database db;
  Table* t = testing::MakeEmpTable(&db);
  EXPECT_EQ(t->size(), 5u);
  EXPECT_EQ(t->Get(0).at(2), Value::String("ann"));

  const Value old = t->UpdateField(0, 3, Value::Int(120));
  EXPECT_EQ(old, Value::Int(100));
  EXPECT_EQ(t->Get(0).at(3), Value::Int(120));

  t->Delete(1);
  EXPECT_EQ(t->size(), 4u);
  EXPECT_FALSE(t->IsLive(1));
  EXPECT_DEATH(t->Get(1), "dead row");
  EXPECT_DEATH(t->Delete(1), "dead row");
}

TEST(TableTest, PrimaryKeyLookupAndUniqueness) {
  Database db;
  Table* t = testing::MakeEmpTable(&db);
  EXPECT_EQ(t->LookupByKey(Value::Int(3)), 2u);
  EXPECT_EQ(t->LookupByKey(Value::Int(99)), kInvalidRowId);
  EXPECT_DEATH(t->Insert(Tuple{Value::Int(1), Value::String("x"),
                               Value::String("y"), Value::Int(0)}),
               "duplicate primary key");
}

TEST(TableTest, SecondaryIndexTracksUpdates) {
  Database db;
  Table* t = testing::MakeEmpTable(&db);
  t->CreateIndex(1);  // DEPT
  EXPECT_EQ(t->IndexLookup(1, Value::String("eng")).size(), 2u);
  EXPECT_EQ(t->IndexLookup(1, Value::String("qa")).size(), 0u);
  t->UpdateField(0, 1, Value::String("qa"));
  EXPECT_EQ(t->IndexLookup(1, Value::String("eng")).size(), 1u);
  ASSERT_EQ(t->IndexLookup(1, Value::String("qa")).size(), 1u);
  EXPECT_EQ(t->IndexLookup(1, Value::String("qa"))[0], 0u);
  t->Delete(0);
  EXPECT_EQ(t->IndexLookup(1, Value::String("qa")).size(), 0u);
}

TEST(TableTest, ScanSkipsDeletedRows) {
  Database db;
  Table* t = testing::MakeEmpTable(&db);
  t->Delete(2);
  size_t visited = 0;
  t->Scan([&](RowId row, const Tuple&) {
    EXPECT_NE(row, 2u);
    ++visited;
  });
  EXPECT_EQ(visited, 4u);
}

TEST(TableTest, CloneIsDeepAndIndependent) {
  Database db;
  Table* t = testing::MakeEmpTable(&db);
  t->CreateIndex(1);
  auto copy = t->Clone();
  t->UpdateField(0, 3, Value::Int(1));
  EXPECT_EQ(copy->Get(0).at(3), Value::Int(100));
  EXPECT_EQ(copy->IndexLookup(1, Value::String("eng")).size(), 2u);
  EXPECT_EQ(copy->LookupByKey(Value::Int(5)), 4u);
}

TEST(TableTest, UpdateOfPrimaryKeyReindexes) {
  Database db;
  Table* t = testing::MakeEmpTable(&db);
  t->UpdateField(0, 0, Value::Int(100));
  EXPECT_EQ(t->LookupByKey(Value::Int(100)), 0u);
  EXPECT_EQ(t->LookupByKey(Value::Int(1)), kInvalidRowId);
}

TEST(DatabaseTest, CatalogOperations) {
  Database db;
  testing::MakeEmpTable(&db);
  EXPECT_NE(db.GetTable("EMP"), nullptr);
  EXPECT_EQ(db.GetTable("NOPE"), nullptr);
  EXPECT_DEATH(db.RequireTable("NOPE"), "no such table");
  EXPECT_DEATH(db.CreateTable("EMP", Schema(std::vector<Attribute>{})),
               "table exists");
  EXPECT_EQ(db.TableNames().size(), 1u);
  db.DropTable("EMP");
  EXPECT_EQ(db.GetTable("EMP"), nullptr);
}

TEST(DatabaseTest, CloneIsDeep) {
  Database db;
  Table* t = testing::MakeEmpTable(&db);
  auto copy = db.Clone();
  t->UpdateField(0, 2, Value::String("zed"));
  EXPECT_EQ(copy->RequireTable("EMP")->Get(0).at(2), Value::String("ann"));
}

}  // namespace
}  // namespace fgpdb
