#include "pdb/convergence_stats.h"

#include <cmath>
#include <limits>

#include "pdb/query_evaluator.h"
#include "util/logging.h"

namespace fgpdb {
namespace pdb {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// --- MarginalErrorStats -----------------------------------------------------

void MarginalErrorStats::ObserveSample(const std::vector<Tuple>& present) {
  ++num_samples_;
  for (const Tuple& t : present) {
    Entry& entry = entries_[t];
    if (entry.acc.count() == 0 && num_samples_ > 1) {
      // First sighting mid-run: the tuple was absent from every earlier
      // sample of this answer's window.
      entry.acc.AddZeros(num_samples_ - 1);
    }
    entry.acc.Add(1.0);
    entry.last_seen = num_samples_;
  }
  for (auto& [tuple, entry] : entries_) {
    if (entry.last_seen != num_samples_) entry.acc.Add(0.0);
  }
}

double MarginalErrorStats::Mean(const Tuple& tuple) const {
  const auto it = entries_.find(tuple);
  return it == entries_.end() ? 0.0 : it->second.acc.mean();
}

double MarginalErrorStats::StandardError(const Tuple& tuple) const {
  const auto it = entries_.find(tuple);
  return it == entries_.end() ? 0.0 : it->second.acc.StandardError();
}

double MarginalErrorStats::MaxHalfWidth(double z) const {
  double max_hw = 0.0;
  for (const auto& [tuple, entry] : entries_) {
    const double hw = z * entry.acc.StandardError();
    if (hw > max_hw) max_hw = hw;
  }
  return max_hw;
}

void MarginalErrorStats::ForEach(
    const std::function<void(const Tuple&, double, double)>& fn) const {
  for (const auto& [tuple, entry] : entries_) {
    fn(tuple, entry.acc.mean(), entry.acc.StandardError());
  }
}

// --- CrossChainStats --------------------------------------------------------

void CrossChainStats::ObserveChain(const QueryAnswer& chain_answer) {
  if (num_chains_ == 0) {
    samples_per_chain_ = chain_answer.num_samples();
    FGPDB_CHECK_GT(samples_per_chain_, 0u)
        << "cross-chain stats need non-empty chains";
  } else {
    FGPDB_CHECK_EQ(samples_per_chain_, chain_answer.num_samples())
        << "cross-chain SE requires equal per-chain sample counts";
  }
  ++num_chains_;
  chain_answer.ForEachCount([this](const Tuple& tuple, uint64_t count) {
    Entry& entry = entries_[tuple];
    entry.sum_counts += count;
    entry.sum_sq_counts += count * count;
  });
}

void CrossChainStats::Merge(const CrossChainStats& other) {
  if (other.num_chains_ == 0) return;
  if (num_chains_ == 0) {
    samples_per_chain_ = other.samples_per_chain_;
  } else {
    FGPDB_CHECK_EQ(samples_per_chain_, other.samples_per_chain_)
        << "cross-chain SE requires equal per-chain sample counts";
  }
  num_chains_ += other.num_chains_;
  for (const auto& [tuple, entry] : other.entries_) {
    Entry& mine = entries_[tuple];
    mine.sum_counts += entry.sum_counts;
    mine.sum_sq_counts += entry.sum_sq_counts;
  }
}

double CrossChainStats::Mean(const Tuple& tuple) const {
  if (num_chains_ == 0) return 0.0;
  const auto it = entries_.find(tuple);
  if (it == entries_.end()) return 0.0;
  return static_cast<double>(it->second.sum_counts) /
         static_cast<double>(num_chains_ * samples_per_chain_);
}

double CrossChainStats::StandardErrorOf(const Entry& e) const {
  if (num_chains_ < 2) return kInf;
  // Chain b's mean is count_b/n; with S1 = Σ count_b and S2 = Σ count_b²,
  //   Var(chain means) = (S2/n² − B·(S1/(B·n))²) / (B−1)
  // computed from integers, so fold order cannot perturb a single bit.
  const double b = static_cast<double>(num_chains_);
  const double n = static_cast<double>(samples_per_chain_);
  const double s1 = static_cast<double>(e.sum_counts);
  const double s2 = static_cast<double>(e.sum_sq_counts);
  const double grand_mean = s1 / (b * n);
  double var = (s2 / (n * n) - b * grand_mean * grand_mean) / (b - 1.0);
  if (var < 0.0) var = 0.0;  // rounding guard
  return std::sqrt(var / b);
}

double CrossChainStats::StandardError(const Tuple& tuple) const {
  const auto it = entries_.find(tuple);
  if (it == entries_.end()) return 0.0;
  return StandardErrorOf(it->second);
}

double CrossChainStats::MaxHalfWidth(double z) const {
  double max_hw = 0.0;
  for (const auto& [tuple, entry] : entries_) {
    const double hw = z * StandardErrorOf(entry);
    if (hw > max_hw) max_hw = hw;
  }
  return max_hw;
}

void CrossChainStats::ForEach(
    const std::function<void(const Tuple&, double, double)>& fn) const {
  for (const auto& [tuple, entry] : entries_) {
    fn(tuple,
       num_chains_ == 0
           ? 0.0
           : static_cast<double>(entry.sum_counts) /
                 static_cast<double>(num_chains_ * samples_per_chain_),
       StandardErrorOf(entry));
  }
}

}  // namespace pdb
}  // namespace fgpdb
