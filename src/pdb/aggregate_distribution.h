// Summaries of aggregate query answers (paper §5.5 / Figure 7).
//
// The answer to an aggregate query under possible-worlds semantics is a
// *distribution over values* — each sampled world contributes one value.
// AggregateDistribution turns a QueryAnswer whose tuples are single numeric
// values into the statistics the paper reports: mean, spread, mode,
// concentration, and a histogram.
#ifndef FGPDB_PDB_AGGREGATE_DISTRIBUTION_H_
#define FGPDB_PDB_AGGREGATE_DISTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdb/query_evaluator.h"

namespace fgpdb {
namespace pdb {

class AggregateDistribution {
 public:
  /// Builds from an answer whose tuples have one numeric column (e.g.
  /// Query 2's COUNT). Fatal if any tuple has a different shape. `column`
  /// selects the value column for multi-column answers.
  explicit AggregateDistribution(const QueryAnswer& answer, size_t column = 0);

  bool empty() const { return values_.empty(); }
  size_t support_size() const { return values_.size(); }

  double Mean() const { return mean_; }
  double Variance() const { return variance_; }
  double StdDev() const;

  /// Most probable value.
  double Mode() const;

  /// Smallest value v such that P(X <= v) >= q, for q in [0, 1].
  double Quantile(double q) const;

  /// Probability mass within `radius` of the mean (the paper's
  /// concentration-of-measure observation).
  double MassWithin(double radius) const;

  struct HistogramBin {
    double lo = 0.0;
    double hi = 0.0;  // Exclusive except for the last bin.
    double mass = 0.0;
  };

  /// Equal-width histogram over the observed support.
  std::vector<HistogramBin> Histogram(size_t bins) const;

  /// The (value, probability) support, sorted by value.
  const std::vector<std::pair<double, double>>& support() const {
    return values_;
  }

 private:
  std::vector<std::pair<double, double>> values_;  // Sorted by value.
  double mean_ = 0.0;
  double variance_ = 0.0;
  double total_mass_ = 0.0;
};

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_AGGREGATE_DISTRIBUTION_H_
