// Information-extraction layer tests: corpus generation, the TOKEN PDB,
// the skip-chain CRF's local-scoring identities, BIO metrics, and the §5.1
// proposal distribution.
#include <gtest/gtest.h>

#include "ie/corpus.h"
#include "ie/entity_resolution.h"
#include "ie/metrics.h"
#include "ie/ner_proposal.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "infer/exact.h"
#include "infer/metropolis_hastings.h"

namespace fgpdb {
namespace ie {
namespace {

TEST(LabelsTest, RoundTripAndStructure) {
  EXPECT_EQ(kNumLabels, 9u);
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    EXPECT_EQ(LabelIndex(LabelName(y)), y);
  }
  EXPECT_EQ(LabelName(kLabelO), "O");
  EXPECT_TRUE(IsBegin(LabelIndex("B-ORG")));
  EXPECT_TRUE(IsInside(LabelIndex("I-LOC")));
  EXPECT_FALSE(IsBegin(kLabelO));
  EXPECT_EQ(LabelType(LabelIndex("I-PER")), EntityType::kPer);
  EXPECT_EQ(InsideLabel(EntityType::kMisc), LabelIndex("I-MISC"));
}

TEST(LabelsTest, BioTransitionValidity) {
  const uint32_t b_per = LabelIndex("B-PER");
  const uint32_t i_per = LabelIndex("I-PER");
  const uint32_t i_org = LabelIndex("I-ORG");
  EXPECT_TRUE(ValidTransition(b_per, i_per));
  EXPECT_TRUE(ValidTransition(i_per, i_per));
  EXPECT_FALSE(ValidTransition(b_per, i_org));
  EXPECT_FALSE(ValidTransition(kLabelO, i_per));
  EXPECT_TRUE(ValidTransition(kLabelO, b_per));
  EXPECT_TRUE(ValidTransition(i_org, kLabelO));
}

TEST(CorpusTest, DeterministicFromSeed) {
  const CorpusOptions options{.num_tokens = 500, .tokens_per_doc = 80, .seed = 3};
  const SyntheticCorpus a = GenerateCorpus(options);
  const SyntheticCorpus b = GenerateCorpus(options);
  ASSERT_EQ(a.tokens.size(), b.tokens.size());
  for (size_t i = 0; i < a.tokens.size(); ++i) {
    EXPECT_EQ(a.tokens[i].text, b.tokens[i].text);
    EXPECT_EQ(a.tokens[i].truth_label, b.tokens[i].truth_label);
  }
}

TEST(CorpusTest, TruthLabelsAreValidBio) {
  const SyntheticCorpus corpus =
      GenerateCorpus({.num_tokens = 2000, .tokens_per_doc = 100, .seed = 5});
  for (const auto& [begin, end] : corpus.doc_ranges) {
    uint32_t prev = kLabelO;
    for (size_t i = begin; i < end; ++i) {
      EXPECT_TRUE(ValidTransition(prev, corpus.tokens[i].truth_label))
          << "invalid BIO at token " << i;
      prev = corpus.tokens[i].truth_label;
    }
  }
}

TEST(CorpusTest, MostTokensAreO) {
  const SyntheticCorpus corpus = GenerateCorpus({.num_tokens = 3000, .seed = 7});
  size_t o_count = 0;
  for (const auto& t : corpus.tokens) {
    if (t.truth_label == kLabelO) ++o_count;
  }
  const double frac = static_cast<double>(o_count) / corpus.tokens.size();
  EXPECT_GT(frac, 0.6);  // Label sparsity, like real news text.
  EXPECT_LT(frac, 0.95);  // But entities do occur.
}

TEST(CorpusTest, StringsRepeatWithinDocuments) {
  // The property skip edges rely on: entity strings recur within documents.
  const SyntheticCorpus corpus =
      GenerateCorpus({.num_tokens = 4000, .tokens_per_doc = 200, .seed = 9});
  size_t docs_with_repeats = 0;
  for (const auto& [begin, end] : corpus.doc_ranges) {
    std::unordered_map<std::string, int> entity_counts;
    for (size_t i = begin; i < end; ++i) {
      if (corpus.tokens[i].truth_label != kLabelO) {
        ++entity_counts[corpus.tokens[i].text];
      }
    }
    for (const auto& [text, count] : entity_counts) {
      (void)text;
      if (count >= 2) {
        ++docs_with_repeats;
        break;
      }
    }
  }
  EXPECT_GT(docs_with_repeats, corpus.doc_ranges.size() / 2);
}

TEST(CorpusTest, DocRangesPartitionTokens) {
  const SyntheticCorpus corpus = GenerateCorpus({.num_tokens = 1000, .seed = 11});
  size_t expected_begin = 0;
  for (const auto& [begin, end] : corpus.doc_ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, corpus.tokens.size());
  EXPECT_EQ(corpus.doc_ranges.size(), corpus.num_docs);
}

TEST(TokenPdbTest, SchemaAndInitialization) {
  const SyntheticCorpus corpus = GenerateCorpus({.num_tokens = 300, .seed = 13});
  TokenPdb tokens = BuildTokenPdb(corpus);
  const Table* table = tokens.pdb->db().RequireTable(kTokenTable);
  EXPECT_EQ(table->size(), corpus.tokens.size());
  EXPECT_EQ(table->schema().RequireIndexOf("LABEL"), kColLabel);
  // All labels initialized to O (paper §5.1).
  table->Scan([&](RowId, const Tuple& t) {
    EXPECT_EQ(t.at(kColLabel), Value::String("O"));
  });
  // World mirrors the O initialization.
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    EXPECT_EQ(tokens.pdb->world().Get(static_cast<factor::VarId>(v)), kLabelO);
  }
  // Bindings point at the LABEL column.
  EXPECT_EQ(tokens.pdb->binding().num_variables(), corpus.tokens.size());
  EXPECT_EQ(tokens.pdb->binding().field(0).column, kColLabel);
}

TEST(SkipChainModelTest, SkipPartnersAreSymmetricAndSameString) {
  const SyntheticCorpus corpus =
      GenerateCorpus({.num_tokens = 1500, .tokens_per_doc = 150, .seed = 17});
  TokenPdb tokens = BuildTokenPdb(corpus);
  SkipChainNerModel model(tokens);
  EXPECT_GT(model.num_skip_edges(), 0u);
  for (size_t v = 0; v < tokens.num_tokens(); ++v) {
    for (factor::VarId p : model.SkipPartners(static_cast<factor::VarId>(v))) {
      EXPECT_EQ(tokens.string_ids[v], tokens.string_ids[p]);
      const auto& back = model.SkipPartners(p);
      EXPECT_NE(std::find(back.begin(), back.end(),
                          static_cast<factor::VarId>(v)),
                back.end())
          << "skip edge not symmetric";
    }
  }
}

TEST(SkipChainModelTest, DeltaMatchesFullScoreDifference) {
  const SyntheticCorpus corpus =
      GenerateCorpus({.num_tokens = 400, .tokens_per_doc = 80, .seed = 19});
  TokenPdb tokens = BuildTokenPdb(corpus);
  SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  factor::World world = tokens.pdb->world();
  Rng rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    factor::Change change;
    const size_t k = 1 + rng.UniformInt(3u);
    for (size_t i = 0; i < k; ++i) {
      change.Set(static_cast<factor::VarId>(rng.UniformInt(tokens.num_tokens())),
                 static_cast<uint32_t>(rng.UniformInt(kNumLabels)));
    }
    const double local = model.LogScoreDelta(world, change);
    factor::World after = world;
    after.Apply(change);
    const double full = model.LogScore(after) - model.LogScore(world);
    ASSERT_NEAR(local, full, 1e-9) << "trial " << trial;
    world = after;
  }
}

TEST(SkipChainModelTest, FeatureDeltaDotEqualsScoreDelta) {
  // The log-linear identity: θ·Δφ == Δ(θ·φ) (paper §3.1's ψ = exp(φ·θ)).
  const SyntheticCorpus corpus =
      GenerateCorpus({.num_tokens = 300, .tokens_per_doc = 60, .seed = 29});
  TokenPdb tokens = BuildTokenPdb(corpus);
  SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  factor::World world = tokens.pdb->world();
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    factor::Change change;
    change.Set(static_cast<factor::VarId>(rng.UniformInt(tokens.num_tokens())),
               static_cast<uint32_t>(rng.UniformInt(kNumLabels)));
    factor::SparseVector features;
    model.FeatureDelta(world, change, &features);
    ASSERT_NEAR(model.parameters().Dot(features),
                model.LogScoreDelta(world, change), 1e-9);
    world.Apply(change);
  }
}

TEST(SkipChainModelTest, LinearChainAblationHasNoSkipEdges) {
  const SyntheticCorpus corpus = GenerateCorpus({.num_tokens = 600, .seed = 37});
  TokenPdb tokens = BuildTokenPdb(corpus);
  SkipChainNerModel linear(tokens, {.use_skip_edges = false});
  EXPECT_EQ(linear.num_skip_edges(), 0u);
  SkipChainNerModel skip(tokens);
  EXPECT_GT(skip.num_skip_edges(), 0u);
}

TEST(NerProposalTest, FlipsOneLabelVariableWithinBatch) {
  const SyntheticCorpus corpus =
      GenerateCorpus({.num_tokens = 500, .tokens_per_doc = 60, .seed = 41});
  TokenPdb tokens = BuildTokenPdb(corpus);
  DocumentBatchProposal proposal(&tokens.docs,
                                 {.proposals_per_batch = 100, .docs_per_batch = 2});
  Rng rng(43);
  for (int i = 0; i < 500; ++i) {
    double log_ratio = 1.0;
    const factor::Change change =
        proposal.Propose(tokens.pdb->world(), rng, &log_ratio);
    EXPECT_EQ(log_ratio, 0.0);  // Symmetric.
    ASSERT_EQ(change.assignments.size(), 1u);
    EXPECT_LT(change.assignments[0].value, kNumLabels);
    // The proposed variable must be inside the current batch.
    const auto& batch = proposal.batch();
    EXPECT_NE(std::find(batch.begin(), batch.end(), change.assignments[0].var),
              batch.end());
  }
}

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<uint32_t> truth = {0, 1, 2, 0, 3, 0};
  const NerScores s = ScoreBio(truth, truth);
  EXPECT_DOUBLE_EQ(s.token_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_EQ(s.truth_mentions, 2u);
}

TEST(MetricsTest, PartialCredit) {
  const uint32_t O = 0, B_PER = 1, I_PER = 2, B_ORG = 3;
  // Truth: [B-PER I-PER O B-ORG]; prediction gets the PER mention right but
  // misses the ORG and hallucinates one at position 2.
  const std::vector<uint32_t> truth = {B_PER, I_PER, O, B_ORG};
  const std::vector<uint32_t> pred = {B_PER, I_PER, B_ORG, O};
  const NerScores s = ScoreBio(pred, truth);
  EXPECT_DOUBLE_EQ(s.token_accuracy, 0.5);
  EXPECT_EQ(s.truth_mentions, 2u);
  EXPECT_EQ(s.predicted_mentions, 2u);
  EXPECT_EQ(s.matched_mentions, 1u);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
}

TEST(MetricsTest, MentionsCannotSpanDocuments) {
  const uint32_t B_PER = 1, I_PER = 2;
  const std::vector<uint32_t> labels = {B_PER, I_PER, I_PER, I_PER};
  // Without a boundary: one mention. With a boundary at 2: two mentions.
  EXPECT_EQ(ScoreBio(labels, labels).truth_mentions, 1u);
  EXPECT_EQ(ScoreBio(labels, labels, {0, 2}).truth_mentions, 2u);
}

TEST(EntityResolutionTest, AffinityReflectsStringSimilarity) {
  EntityResolutionModel model({"John Smith", "J. Smith", "J. Simms", "Acme"});
  EXPECT_GT(model.Affinity(0, 1), model.Affinity(0, 3));
  EXPECT_GT(model.Affinity(1, 2), model.Affinity(0, 3));
  EXPECT_DOUBLE_EQ(model.Affinity(0, 1), model.Affinity(1, 0));
}

TEST(EntityResolutionTest, DeltaMatchesFullScoreDifference) {
  EntityResolutionModel model(
      {"John Smith", "J. Smith", "J. Simms", "Acme Corp", "Acme"});
  factor::World world(model.num_variables());
  Rng rng(47);
  for (int trial = 0; trial < 60; ++trial) {
    factor::Change change;
    const size_t k = 1 + rng.UniformInt(3u);
    for (size_t i = 0; i < k; ++i) {
      change.Set(static_cast<factor::VarId>(rng.UniformInt(5u)),
                 static_cast<uint32_t>(rng.UniformInt(5u)));
    }
    const double local = model.LogScoreDelta(world, change);
    factor::World after = world;
    after.Apply(change);
    ASSERT_NEAR(local, model.LogScore(after) - model.LogScore(world), 1e-9);
    world = after;
  }
}

TEST(EntityResolutionTest, MhClustersSimilarMentions) {
  // "John Smith"/"J. Smith" should co-cluster; "Acme Corp" should not join.
  EntityResolutionModel model({"John Smith", "J. Smith", "Acme Corp"});
  factor::World world(3);
  world.Set(0, 0);
  world.Set(1, 1);
  world.Set(2, 2);
  SplitMergeProposal proposal(model);
  infer::MetropolisHastings sampler(model, &world, &proposal, /*seed=*/51);
  size_t together = 0, with_acme = 0;
  const int kSamples = 4000;
  sampler.Run(1000);
  for (int i = 0; i < kSamples; ++i) {
    sampler.Step();
    if (world.Get(0) == world.Get(1)) ++together;
    if (world.Get(0) == world.Get(2)) ++with_acme;
  }
  EXPECT_GT(together, with_acme);
  EXPECT_GT(static_cast<double>(together) / kSamples, 0.5);
}

TEST(EntityResolutionTest, SplitMergeMatchesExactPairwiseMarginals) {
  // Detailed-balance check: split-merge must converge to the same
  // co-clustering marginals as the (symmetric, trivially correct)
  // single-mention-move kernel.
  EntityResolutionModel model({"ab", "abc", "xyz"});
  auto run = [&](infer::Proposal* proposal, uint64_t seed) {
    factor::World world(3);
    world.Set(0, 0);
    world.Set(1, 1);
    world.Set(2, 2);
    infer::MetropolisHastings sampler(model, &world, proposal, seed);
    sampler.Run(2000);
    double together01 = 0;
    const int kSamples = 60000;
    for (int i = 0; i < kSamples; ++i) {
      sampler.Step();
      if (world.Get(0) == world.Get(1)) together01 += 1;
    }
    return together01 / kSamples;
  };
  SplitMergeProposal split_merge(model);
  SingleMentionMoveProposal single_move(model);
  const double p_sm = run(&split_merge, 61);
  const double p_single = run(&single_move, 67);
  EXPECT_NEAR(p_sm, p_single, 0.03);
}

TEST(EntityResolutionTest, ClustersPartitionMentions) {
  EntityResolutionModel model({"a", "b", "c", "d"});
  factor::World world(4);
  world.Set(0, 2);
  world.Set(1, 2);
  world.Set(2, 0);
  world.Set(3, 1);
  const auto clusters = model.Clusters(world);
  ASSERT_EQ(clusters.size(), 3u);
  size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(clusters[0], (std::vector<size_t>{0, 1}));
}

}  // namespace
}  // namespace ie
}  // namespace fgpdb
