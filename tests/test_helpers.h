// Shared helpers for the fgpdb test suite.
#ifndef FGPDB_TESTS_TEST_HELPERS_H_
#define FGPDB_TESTS_TEST_HELPERS_H_

#include <string>
#include <vector>

#include "storage/database.h"
#include "util/rng.h"
#include "view/delta.h"

namespace fgpdb {
namespace testing {

/// Builds a small EMP(ID pk, DEPT, NAME, SALARY) table.
inline Table* MakeEmpTable(Database* db) {
  Schema schema(
      {
          Attribute{"ID", ValueType::kInt64},
          Attribute{"DEPT", ValueType::kString},
          Attribute{"NAME", ValueType::kString},
          Attribute{"SALARY", ValueType::kInt64},
      },
      /*primary_key=*/0);
  Table* t = db->CreateTable("EMP", std::move(schema));
  t->Insert(Tuple{Value::Int(1), Value::String("eng"), Value::String("ann"),
                  Value::Int(100)});
  t->Insert(Tuple{Value::Int(2), Value::String("eng"), Value::String("bob"),
                  Value::Int(90)});
  t->Insert(Tuple{Value::Int(3), Value::String("ops"), Value::String("cat"),
                  Value::Int(80)});
  t->Insert(Tuple{Value::Int(4), Value::String("ops"), Value::String("dan"),
                  Value::Int(80)});
  t->Insert(Tuple{Value::Int(5), Value::String("hr"), Value::String("eve"),
                  Value::Int(70)});
  return t;
}

/// Converts a bag of tuples into a count multiset for order-insensitive
/// comparison.
inline view::DeltaMultiset ToMultiset(const std::vector<Tuple>& bag) {
  view::DeltaMultiset out;
  for (const Tuple& t : bag) out.Add(t, 1);
  return out;
}

}  // namespace testing
}  // namespace fgpdb

#endif  // FGPDB_TESTS_TEST_HELPERS_H_
