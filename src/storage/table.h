// In-memory row-store table with a stable row-id space, optional primary-key
// index, and secondary hash indexes.
//
// This (plus the executor in src/ra) plays the role the paper assigns to
// Apache Derby: a blackbox relational engine that always stores a single
// possible world. Uncertain fields are updated in place by the MCMC driver
// via UpdateField.
//
// Rows live in fixed-size copy-on-write pages and the indexes behind shared
// pointers, so Snapshot() produces a logically independent table in
// O(row_capacity / kPageSize): both sides keep reading the shared state and
// privately copy a page (or an index) the first time they write to it. This
// is what makes per-chain worlds cheap for the §5.4 parallel evaluator —
// chain B+1 no longer pays O(|DB|) up front, only for the pages it actually
// touches while sampling.
//
// Thread-safety: distinct Table objects that share pages via Snapshot() may
// be used from different threads concurrently (copy-up never mutates shared
// state; reference counts are atomic). A single Table object is not
// internally synchronized, and snapshotting a table concurrently with
// mutating it is a data race.
#ifndef FGPDB_STORAGE_TABLE_H_
#define FGPDB_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace fgpdb {

using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = ~0ULL;

class Table {
 public:
  /// Rows per copy-on-write page. A write to a shared page copies this many
  /// tuples once; snapshot creation copies one shared_ptr per page.
  static constexpr size_t kPageSize = 256;

  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live (non-deleted) rows.
  size_t size() const { return live_rows_; }

  /// Upper bound of the row-id space (including tombstones).
  size_t row_capacity() const { return deleted_.size(); }

  /// Inserts a row; returns its stable RowId. Enforces primary-key
  /// uniqueness when the schema declares one.
  RowId Insert(Tuple tuple);

  /// Marks a row deleted. Fatal on a dead or out-of-range row.
  void Delete(RowId row);

  /// True if `row` is live.
  bool IsLive(RowId row) const {
    return row < deleted_.size() && !deleted_[row];
  }

  /// Returns the row contents. Fatal on dead rows.
  const Tuple& Get(RowId row) const;

  /// Overwrites one field; maintains all indexes. Returns the old value.
  Value UpdateField(RowId row, size_t column, Value value);

  /// Point lookup by primary key; kInvalidRowId if absent.
  RowId LookupByKey(const Value& key) const;

  /// Builds (or rebuilds) a secondary hash index on `column`.
  void CreateIndex(size_t column);

  /// True if a secondary index exists on `column`.
  bool HasIndex(size_t column) const {
    return secondary_indexes_.count(column) > 0;
  }

  /// Row-ids whose `column` equals `value`, via the secondary index.
  /// Fatal if no index exists on the column.
  const std::vector<RowId>& IndexLookup(size_t column, const Value& value) const;

  /// Invokes `fn` on every live row.
  void Scan(const std::function<void(RowId, const Tuple&)>& fn) const;

  /// Materializes all live rows (testing convenience).
  std::vector<Tuple> Rows() const;

  /// Deep copy: every page and index is duplicated eagerly. Kept as the
  /// baseline Snapshot() is measured against (bench/micro_clone.cpp).
  std::unique_ptr<Table> Clone() const;

  /// Copy-on-write copy: shares row pages and indexes with this table.
  /// Logically equivalent to Clone() — writes on either side are invisible
  /// to the other — but costs O(#pages) instead of O(#rows). Used to spawn
  /// per-chain worlds for parallel evaluation (paper §5.4).
  std::unique_ptr<Table> Snapshot() const;

  /// Number of row pages (diagnostics).
  size_t PageCount() const { return pages_.size(); }

  /// Pages whose storage is currently shared with another table — i.e. not
  /// yet privately copied by a write (diagnostics/tests).
  size_t SharedPageCount() const;

 private:
  using Page = std::vector<Tuple>;
  using PkIndex = std::unordered_map<Value, RowId, ValueHasher>;
  using ColumnIndex =
      std::unordered_map<Value, std::vector<RowId>, ValueHasher>;

  static size_t PageOf(RowId row) { return row / kPageSize; }
  static size_t SlotOf(RowId row) { return row % kPageSize; }

  const Tuple& RowRef(RowId row) const {
    return (*pages_[PageOf(row)])[SlotOf(row)];
  }

  /// Copy-up accessors: clone the page/index privately if it is shared.
  Tuple& MutableRow(RowId row);
  Page& MutableLastPage();
  PkIndex& MutablePkIndex();
  ColumnIndex& MutableColumnIndex(size_t column);

  void IndexInsert(size_t column, const Value& value, RowId row);
  void IndexErase(size_t column, const Value& value, RowId row);

  std::string name_;
  Schema schema_;
  // Row storage: pages_[row / kPageSize] holds slot row % kPageSize. Only
  // the final page may be partially filled. Pages are shared across
  // snapshots and copied privately before the first write.
  std::vector<std::shared_ptr<Page>> pages_;
  std::vector<bool> deleted_;
  size_t live_rows_ = 0;

  // Primary-key index: key value -> row id. Shared across snapshots; copied
  // privately before the first key mutation. Never null.
  std::shared_ptr<PkIndex> pk_index_;
  // Secondary indexes: column -> (value -> row ids), one shared pointer per
  // column so writes copy only the index they touch.
  std::unordered_map<size_t, std::shared_ptr<ColumnIndex>> secondary_indexes_;
  static const std::vector<RowId> kEmptyRowList;
};

}  // namespace fgpdb

#endif  // FGPDB_STORAGE_TABLE_H_
