#include "infer/forward_backward.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/math_util.h"

namespace fgpdb {
namespace infer {

ChainResult ForwardBackward(const ChainPotentials& potentials) {
  const size_t n = potentials.node.size();
  FGPDB_CHECK_GT(n, 0u);
  const size_t labels = potentials.node[0].size();
  FGPDB_CHECK_EQ(potentials.edge.size(), labels);
  for (const auto& row : potentials.edge) FGPDB_CHECK_EQ(row.size(), labels);

  // alpha[t][y] = log sum over prefixes ending in y at t.
  std::vector<std::vector<double>> alpha(n, std::vector<double>(labels));
  std::vector<std::vector<double>> beta(n, std::vector<double>(labels));
  alpha[0] = potentials.node[0];
  std::vector<double> scratch(labels);
  for (size_t t = 1; t < n; ++t) {
    FGPDB_CHECK_EQ(potentials.node[t].size(), labels);
    for (size_t y = 0; y < labels; ++y) {
      for (size_t yp = 0; yp < labels; ++yp) {
        scratch[yp] = alpha[t - 1][yp] + potentials.edge[yp][y];
      }
      alpha[t][y] = LogSumExp(scratch) + potentials.node[t][y];
    }
  }
  for (size_t y = 0; y < labels; ++y) beta[n - 1][y] = 0.0;
  for (size_t t = n - 1; t > 0; --t) {
    for (size_t y = 0; y < labels; ++y) {
      for (size_t yn = 0; yn < labels; ++yn) {
        scratch[yn] =
            potentials.edge[y][yn] + potentials.node[t][yn] + beta[t][yn];
      }
      beta[t - 1][y] = LogSumExp(scratch);
    }
  }

  ChainResult result;
  result.log_partition = LogSumExp(alpha[n - 1]);
  result.marginals.assign(n, std::vector<double>(labels));
  for (size_t t = 0; t < n; ++t) {
    for (size_t y = 0; y < labels; ++y) {
      result.marginals[t][y] =
          std::exp(alpha[t][y] + beta[t][y] - result.log_partition);
    }
  }
  return result;
}

std::vector<size_t> ViterbiDecode(const ChainPotentials& potentials) {
  const size_t n = potentials.node.size();
  FGPDB_CHECK_GT(n, 0u);
  const size_t labels = potentials.node[0].size();
  std::vector<std::vector<double>> best(n, std::vector<double>(labels));
  std::vector<std::vector<size_t>> back(n, std::vector<size_t>(labels, 0));
  best[0] = potentials.node[0];
  for (size_t t = 1; t < n; ++t) {
    for (size_t y = 0; y < labels; ++y) {
      double best_score = -std::numeric_limits<double>::infinity();
      size_t best_prev = 0;
      for (size_t yp = 0; yp < labels; ++yp) {
        const double score = best[t - 1][yp] + potentials.edge[yp][y];
        if (score > best_score) {
          best_score = score;
          best_prev = yp;
        }
      }
      best[t][y] = best_score + potentials.node[t][y];
      back[t][y] = best_prev;
    }
  }
  std::vector<size_t> path(n);
  path[n - 1] = static_cast<size_t>(
      std::max_element(best[n - 1].begin(), best[n - 1].end()) -
      best[n - 1].begin());
  for (size_t t = n - 1; t > 0; --t) path[t - 1] = back[t][path[t]];
  return path;
}

}  // namespace infer
}  // namespace fgpdb
