// Quickstart: build a probabilistic database over a small synthetic news
// corpus, attach a skip-chain CRF, and answer the paper's Query 1 with
// marginal probabilities — as a CLIENT of the serve layer. The program
// boots a serve::Server over the shared base world, then drives it through
// the same newline-delimited wire protocol a remote client would speak
// (serve/protocol.h): open a tenant, register the query, submit sampling
// work, stream a mid-run snapshot while the chain keeps running, and read
// the final answer after DRAIN.
//
//   ./examples/quickstart [num_tokens]
#include <cstdlib>
#include <iostream>
#include <string>

#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/stopwatch.h"

using namespace fgpdb;

namespace {

/// One protocol round-trip, echoed like a terminal session.
std::string Send(serve::LineProtocol& protocol, const std::string& line) {
  std::cout << "> " << line << "\n";
  const serve::LineProtocol::Result result = protocol.HandleLine(line);
  std::cout << result.response;
  return result.response;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_tokens = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  // 1. Generate a corpus and load it into the TOKEN relation. Every LABEL
  //    field becomes a hidden random variable initialized to 'O'.
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = num_tokens});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  std::cout << "Corpus: " << tokens.num_tokens() << " tokens, "
            << corpus.num_docs << " documents, vocabulary "
            << tokens.vocab.size() << "\n";

  // 2. Attach the skip-chain CRF (the external factor graph over the DB).
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);
  std::cout << "Model: " << model.num_skip_edges() << " skip edges\n";

  // 3. Start the server. It owns the tenant registry, the cross-session
  //    plan cache, and the fair scheduler; every tenant Session samples its
  //    own copy-on-write snapshot — `tokens.pdb` stays pristine.
  serve::ServerOptions options;
  options.database = tokens.pdb.get();
  options.proposal_factory =
      [&tokens](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
    return std::make_unique<ie::DocumentBatchProposal>(&tokens.docs);
  };
  options.evaluator = {};
  options.evaluator.steps_per_sample = 2000;
  options.evaluator.burn_in = 10000;
  options.evaluator.seed = 17;
  serve::Server server(options);
  serve::LineProtocol protocol(&server);

  // 4. Speak the wire protocol: tenant, query, sampling budget. The first
  //    tenant is id 1 and the first registered query is id 0.
  Stopwatch timer;
  Send(protocol, "TENANT NEW SERIAL");
  Send(protocol, std::string("QUERY 1 ") + ie::kQuery1);
  Send(protocol, "RUN 1 200");

  // 5. Streaming read: SNAPSHOT answers from the live chain without
  //    stopping it — this is what a dashboard polls mid-run.
  Send(protocol, "SNAPSHOT 1 0 TOP 3");

  // 6. Wait for the full budget, then read the final top-10 marginals
  //    (tuple, Pr[t in answer]) and the server's scheduler counters.
  Send(protocol, "DRAIN");
  std::cout << "(drained in " << timer.ElapsedSeconds() << "s)\n";
  Send(protocol, "SNAPSHOT 1 0 TOP 10");
  Send(protocol, "STATS");
  Send(protocol, "QUIT");
  return 0;
}
