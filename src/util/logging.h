// Lightweight logging and assertion macros for fgpdb.
//
// CHECK-style macros abort with a message on failure; they are active in all
// build types because the library's correctness invariants (e.g. multiset
// counts never going negative during view maintenance) must hold even in
// release benchmarking runs.
#ifndef FGPDB_UTIL_LOGGING_H_
#define FGPDB_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fgpdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level actually emitted. Controlled by
/// the FGPDB_LOG_LEVEL environment variable (0=debug .. 3=error); defaults
/// to kInfo.
LogLevel MinLogLevel();

/// Sets the process-wide minimum log level (overrides the environment).
void SetMinLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Aborts the process after streaming the message.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Converts a streamed expression to void so CHECK macros can appear in
// ternary expressions ( `&` binds looser than `<<` ).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace fgpdb

#define FGPDB_LOG(level)                                                    \
  ::fgpdb::internal::LogMessage(::fgpdb::LogLevel::k##level, __FILE__,      \
                                __LINE__)                                   \
      .stream()

#define FGPDB_CHECK(cond)                                                   \
  (cond) ? (void)0                                                          \
         : ::fgpdb::internal::Voidify() &                                   \
               ::fgpdb::internal::FatalLogMessage(__FILE__, __LINE__, #cond) \
                   .stream()

#define FGPDB_CHECK_OP(op, a, b) FGPDB_CHECK((a)op(b))
#define FGPDB_CHECK_EQ(a, b) FGPDB_CHECK_OP(==, a, b)
#define FGPDB_CHECK_NE(a, b) FGPDB_CHECK_OP(!=, a, b)
#define FGPDB_CHECK_LT(a, b) FGPDB_CHECK_OP(<, a, b)
#define FGPDB_CHECK_LE(a, b) FGPDB_CHECK_OP(<=, a, b)
#define FGPDB_CHECK_GT(a, b) FGPDB_CHECK_OP(>, a, b)
#define FGPDB_CHECK_GE(a, b) FGPDB_CHECK_OP(>=, a, b)

#define FGPDB_FATAL()                                                       \
  ::fgpdb::internal::FatalLogMessage(__FILE__, __LINE__, "FATAL").stream()

#endif  // FGPDB_UTIL_LOGGING_H_
