#include "infer/shard_runner.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace fgpdb {
namespace infer {

ShardRunner::ShardRunner(const factor::Model& model, factor::World* world,
                         std::vector<std::unique_ptr<Proposal>> proposals,
                         std::vector<uint32_t> partition,
                         ShardRunnerOptions options)
    : partition_(std::move(partition)) {
  FGPDB_CHECK(world != nullptr);
  FGPDB_CHECK(!proposals.empty());
  const size_t num_shards = proposals.size();
  if (!partition_.empty()) {
    FGPDB_CHECK_EQ(partition_.size(), world->size());
  } else {
    FGPDB_CHECK_EQ(num_shards, 1u);
  }
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.proposal = std::move(proposals[s]);
    FGPDB_CHECK(shard.proposal != nullptr);
    // S == 1 replays the serial sampler verbatim; S > 1 gives every shard
    // its own stream as a pure function of (seed, shard index).
    const uint64_t shard_seed =
        num_shards == 1 ? options.seed : DeriveSeed(options.seed, s);
    shard.chain = std::make_unique<MetropolisHastings>(
        model, world, shard.proposal.get(), shard_seed);
    // Pre-size the accepted-assignment buffer to the chain's flush quantum
    // so interval stepping never grows it mid-walk (appends stay
    // allocation-free until an interval exceeds one mirror batch).
    shard.buffer.reserve(shard.chain->mirror_batch_limit());
    shards_.push_back(std::move(shard));
  }
  // Listeners registered after the moves above so the captured Shard
  // addresses are final (shards_ never reallocates again).
  for (size_t s = 0; s < num_shards; ++s) {
    Shard* shard = &shards_[s];
    shard->chain->AddListener(
        [this, shard, s](const std::vector<factor::AppliedAssignment>& applied) {
          if (!recording_) return;
#ifndef NDEBUG
          // A proposal that leaves its shard breaks both exactness and the
          // race-freedom argument; catch it where it happens.
          if (!partition_.empty()) {
            for (const factor::AppliedAssignment& a : applied) {
              FGPDB_CHECK_EQ(partition_[a.var], s)
                  << "shard-local proposal touched a foreign shard";
            }
          }
#else
          (void)s;
#endif
          shard->buffer.insert(shard->buffer.end(), applied.begin(),
                               applied.end());
        });
  }
  if (options.use_threads && num_shards > 1) {
    const size_t threads =
        options.max_threads > 0
            ? std::min(options.max_threads, num_shards)
            : ThreadPool::DefaultThreadCount(num_shards);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  }
}

size_t ShardRunner::StepShards(size_t n) {
  const size_t num_shards = shards_.size();
  // Per-shard accepted counts: each slot is written by exactly one task
  // (disjoint elements), summed after the barrier — an integer fold whose
  // value cannot depend on completion order.
  std::vector<size_t> accepted(num_shards, 0);
  if (pool_ != nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t steps = ShardSteps(n, s, num_shards);
      if (steps == 0) continue;
      pool_->Submit(
          [this, s, steps, &accepted] { accepted[s] = shards_[s].chain->Step(steps); });
    }
    // The pool barrier is the happens-before edge: every shard's world
    // writes, buffer appends, and accepted counts are visible to the
    // coordinator after Wait.
    pool_->Wait();
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t steps = ShardSteps(n, s, num_shards);
      if (steps > 0) accepted[s] = shards_[s].chain->Step(steps);
    }
  }
  size_t total = 0;
  for (const size_t a : accepted) total += a;
  return total;
}

size_t ShardRunner::Step(size_t n, const Sink& sink) {
  recording_ = true;
  const size_t accepted = StepShards(n);
  // Fixed-order drain: shard 0's stream, then shard 1's, … — the merged
  // stream is a function of the shard trajectories alone, so downstream
  // deltas are bitwise-reproducible regardless of thread interleaving.
  for (Shard& shard : shards_) {
    if (!shard.buffer.empty()) {
      sink(shard.buffer);
      shard.buffer.clear();
    }
  }
  return accepted;
}

void ShardRunner::RunBurnIn(size_t n) {
  recording_ = false;
  StepShards(n);
  recording_ = true;
}

uint64_t ShardRunner::num_proposed() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.chain->num_proposed();
  return total;
}

uint64_t ShardRunner::num_accepted() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.chain->num_accepted();
  return total;
}

}  // namespace infer
}  // namespace fgpdb
