// Minimal fixed-size thread pool. Used by the parallel multi-chain query
// evaluator (paper §5.4) to run independent MCMC chains concurrently.
#ifndef FGPDB_UTIL_THREAD_POOL_H_
#define FGPDB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fgpdb {

class ThreadPool {
 public:
  /// Worker count for `num_tasks` independent CPU-bound tasks: capped at
  /// the hardware concurrency so oversubmitting (e.g. 32 MCMC chains on 8
  /// cores) queues work instead of oversubscribing threads. At least 1.
  static size_t DefaultThreadCount(size_t num_tasks);

  /// Starts `num_threads` worker threads (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace fgpdb

#endif  // FGPDB_UTIL_THREAD_POOL_H_
