// Signed tuple multisets — the Δ−/Δ+ sets of paper §4.2 in one structure.
//
// A DeltaMultiset maps tuples to signed counts: negative entries are the
// paper's Δ− (tuples leaving the world/view) and positive entries are Δ+
// (tuples entering). Using one signed structure makes the Blakeley-style
// rewrites (Eq. 6) linear-algebraic: operators distribute over deltas, and
// the multiset counters required for projection (the paper's Remark after
// Eq. 6) fall out naturally.
//
// Representation: deltas on the MCMC hot path are tiny — one accepted step
// contributes a −old/+new pair, and per-operator output deltas are usually
// a handful of tuples — so small multisets live in a flat vector scanned
// linearly (no per-entry node allocations, no hashing). Only when a delta
// outgrows the inline capacity does it spill into an unordered_map, which
// is pre-reserved so growth does not rehash entry by entry.
#ifndef FGPDB_VIEW_DELTA_H_
#define FGPDB_VIEW_DELTA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace fgpdb {
namespace view {

class DeltaMultiset {
 public:
  using Map = std::unordered_map<Tuple, int64_t, TupleHasher>;

  /// Distinct tuples held inline (flat vector) before spilling to the map.
  static constexpr size_t kInlineCapacity = 8;

  DeltaMultiset() = default;

  /// Adds `count` (may be negative) occurrences of `tuple`; entries whose
  /// count reaches zero are erased.
  void Add(const Tuple& tuple, int64_t count = 1);

  /// Signed count of `tuple` (0 if absent).
  int64_t Count(const Tuple& tuple) const;

  /// Merges another delta into this one (entry-wise addition).
  void Merge(const DeltaMultiset& other);

  /// Applies fn(tuple, count) to every non-zero entry.
  void ForEach(const std::function<void(const Tuple&, int64_t)>& fn) const;

  bool empty() const { return inline_entries_.empty() && counts_.empty(); }
  size_t distinct_size() const {
    return spilled_ ? counts_.size() : inline_entries_.size();
  }

  /// Sum of positive counts (number of inserted tuple instances).
  int64_t PositiveTotal() const;

  /// Sum of |negative| counts (number of removed tuple instances).
  int64_t NegativeTotal() const;

  /// True if every count is >= 1 (a plain bag, e.g. a view's contents).
  bool IsNonNegative() const;

  void Clear() {
    inline_entries_.clear();
    counts_.clear();
    spilled_ = false;
  }

  bool operator==(const DeltaMultiset& other) const;

  /// Diagnostic rendering, sorted for determinism.
  std::string ToString() const;

 private:
  using Entry = std::pair<Tuple, int64_t>;

  /// Moves the inline entries into the map representation, reserving room
  /// for growth so the fill that follows does not rehash repeatedly.
  void Spill();

  // Small representation: unsorted entries, linear equality scan. Empty
  // once spilled_ is set.
  std::vector<Entry> inline_entries_;
  // Large representation, used once distinct tuples exceed kInlineCapacity.
  Map counts_;
  bool spilled_ = false;
};

/// Per-base-table deltas accumulated between query (re-)evaluations — the
/// contents of the paper's auxiliary "added"/"deleted" tables.
class DeltaSet {
 public:
  DeltaMultiset& ForTable(const std::string& table) { return per_table_[table]; }

  /// Delta for `table`; a shared empty delta if none recorded.
  const DeltaMultiset& Get(const std::string& table) const;

  bool empty() const;

  /// Total tuple instances touched across tables (|Δ−| + |Δ+|).
  int64_t TotalMagnitude() const;

  void Clear() { per_table_.clear(); }

 private:
  std::unordered_map<std::string, DeltaMultiset> per_table_;
  static const DeltaMultiset kEmpty;
};

}  // namespace view
}  // namespace fgpdb

#endif  // FGPDB_VIEW_DELTA_H_
