// Signed tuple multisets — the Δ−/Δ+ sets of paper §4.2 in one structure.
//
// A DeltaMultiset maps tuples to signed counts: negative entries are the
// paper's Δ− (tuples leaving the world/view) and positive entries are Δ+
// (tuples entering). Using one signed structure makes the Blakeley-style
// rewrites (Eq. 6) linear-algebraic: operators distribute over deltas, and
// the multiset counters required for projection (the paper's Remark after
// Eq. 6) fall out naturally.
//
// Representation: deltas on the MCMC hot path are tiny — one accepted step
// contributes a −old/+new pair, and per-operator output deltas are usually
// a handful of tuples — so small multisets live in a flat vector scanned
// linearly (no per-entry node allocations, no hashing). Only when a delta
// outgrows the inline capacity does it spill into an unordered_map, which
// is pre-reserved so growth does not rehash entry by entry.
//
// DeltaAccumulator is the producer-side companion: it coalesces in-place
// row updates at insert time (row-granular pre-images) and only expands
// into per-table −/+ multisets when the consumer drains it.
#ifndef FGPDB_VIEW_DELTA_H_
#define FGPDB_VIEW_DELTA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/tuple.h"

// Feature-test macro for the PR-3 routed delta pipeline (subscription-based
// routing, row-granular accumulation, reusable operator buffers). Lets the
// benches report routing statistics while staying compilable against the
// pre-refactor API for before/after measurements.
#define FGPDB_VIEW_ROUTED_PIPELINE 1

namespace fgpdb {
namespace view {

class DeltaMultiset {
 public:
  using Map = std::unordered_map<Tuple, int64_t, TupleHasher>;

  /// Distinct tuples held inline (flat vector) before spilling to the map.
  static constexpr size_t kInlineCapacity = 8;

  DeltaMultiset() = default;

  /// Adds `count` (may be negative) occurrences of `tuple`; entries whose
  /// count reaches zero are erased.
  void Add(const Tuple& tuple, int64_t count = 1);

  /// Signed count of `tuple` (0 if absent).
  int64_t Count(const Tuple& tuple) const;

  /// Merges another delta into this one (entry-wise addition).
  void Merge(const DeltaMultiset& other);

  /// Applies fn(tuple, count) to every non-zero entry.
  void ForEach(const std::function<void(const Tuple&, int64_t)>& fn) const;

  bool empty() const { return inline_entries_.empty() && counts_.empty(); }
  size_t distinct_size() const {
    return spilled_ ? counts_.size() : inline_entries_.size();
  }

  /// Sum of positive counts (number of inserted tuple instances).
  int64_t PositiveTotal() const;

  /// Sum of |negative| counts (number of removed tuple instances).
  int64_t NegativeTotal() const;

  /// True if every count is >= 1 (a plain bag, e.g. a view's contents).
  bool IsNonNegative() const;

  /// Empties the multiset. Spilled bucket storage is kept so a multiset
  /// reused round after round (operator output buffers, drained DeltaSets)
  /// does not re-grow its hash table from scratch.
  void Clear() {
    inline_entries_.clear();
    counts_.clear();
    spilled_ = false;
  }

  /// The shared empty multiset (what skipped operators and absent tables
  /// hand out without allocating).
  static const DeltaMultiset& Empty();

  bool operator==(const DeltaMultiset& other) const;

  /// Diagnostic rendering, sorted for determinism.
  std::string ToString() const;

 private:
  using Entry = std::pair<Tuple, int64_t>;

  /// Moves the inline entries into the map representation, reserving room
  /// for growth so the fill that follows does not rehash repeatedly.
  void Spill();

  // Small representation: unsorted entries, linear equality scan. Empty
  // once spilled_ is set.
  std::vector<Entry> inline_entries_;
  // Large representation, used once distinct tuples exceed kInlineCapacity.
  Map counts_;
  bool spilled_ = false;
};

/// Per-base-table deltas accumulated between query (re-)evaluations — the
/// contents of the paper's auxiliary "added"/"deleted" tables.
class DeltaSet {
 public:
  DeltaMultiset& ForTable(const std::string& table) { return per_table_[table]; }

  /// Delta for `table`; a shared empty delta if none recorded.
  const DeltaMultiset& Get(const std::string& table) const;

  bool empty() const;

  /// Total tuple instances touched across tables (|Δ−| + |Δ+|).
  int64_t TotalMagnitude() const;

  /// Applies fn(table, delta) to every recorded table, including tables
  /// whose delta is currently empty.
  void ForEachTable(
      const std::function<void(const std::string&, const DeltaMultiset&)>& fn)
      const;

  /// Empties every per-table delta. Table buckets (and their spilled hash
  /// storage) are retained, so a DeltaSet drained once per thinning
  /// interval reuses its allocations instead of rebuilding them.
  void Clear() {
    for (auto& [table, delta] : per_table_) {
      (void)table;
      delta.Clear();
    }
  }

 private:
  std::unordered_map<std::string, DeltaMultiset> per_table_;
};

/// Insert-time coalescing accumulator for in-place row updates — the hot
/// producer feeding the materialized evaluator (paper §4.2's auxiliary
/// tables, bucketed per base table).
///
/// The MCMC driver overwrites one field of one live row per accepted jump,
/// and rows oscillate: over a thinning interval of k steps a row may flip
/// many times, or flip and revert. Recording −old/+new tuple pairs per flip
/// costs two tuple hashes per step and leaves the cancellation work to the
/// multiset. This accumulator instead records one *pre-image* per touched
/// row — the first call per (table, row) copies the tuple, later calls are
/// a single hash-map probe — and expands to −pre-image/+current pairs only
/// at Flush(), reading the current tuple from the table. A row flipped R
/// times costs O(1) amortized per flip and contributes at most one −/+
/// pair; a reverted row contributes nothing.
///
/// Constraint: rows recorded here must still be live at Flush() time (the
/// binding path only updates in place, never deletes).
class DeltaAccumulator {
 public:
  /// Records that `row` of `table` is about to be overwritten; `pre_image`
  /// is its current (pre-update) contents. Only the first call per row
  /// copies the tuple.
  void RecordPreImage(const std::string& table, RowId row,
                      const Tuple& pre_image);

  /// Expands the recorded rows against their current table contents in
  /// `db`, adding −pre-image/+current to `out` for every row whose tuple
  /// actually changed. Clears the accumulator (retaining bucket storage).
  void Flush(const Database& db, DeltaSet* out);

  bool empty() const;

  /// Distinct rows currently tracked (diagnostics / adaptive thinning).
  size_t rows_touched() const;

  void Clear();

 private:
  using RowMap = std::unordered_map<RowId, Tuple>;
  std::unordered_map<std::string, RowMap> per_table_;
};

}  // namespace view
}  // namespace fgpdb

#endif  // FGPDB_VIEW_DELTA_H_
