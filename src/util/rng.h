// Deterministic pseudo-random number generation.
//
// All stochastic components of fgpdb (MCMC proposals, acceptance tests,
// synthetic data generation, SampleRank) draw from Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded via SplitMix64, which is fast, high quality, and has
// a 2^256-1 period — ample for the 10^8-proposal runs in the paper.
#ifndef FGPDB_UTIL_RNG_H_
#define FGPDB_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace fgpdb {

/// Deterministically derives the seed for logical stream `stream` of a
/// master seed (SplitMix64 finalizer over master ⊕ stream). Distinct
/// streams yield decorrelated generator states even for adjacent stream
/// indices — this is how every fan-out in the system (parallel replica
/// chains, per-shard chains, bench sub-streams) gets an independent RNG
/// stream that is a pure function of (master, stream), never of thread
/// scheduling. bench_common.h's DeriveSeed delegates here; the math must
/// never change or committed bench baselines stop reproducing.
inline uint64_t DeriveSeed(uint64_t master, uint64_t stream) {
  uint64_t z = master + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0xfeedc0ffee123456ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  // Next/Uniform/UniformInt are the MH step kernel's inner draws (two to
  // three per proposal); defined in the header so they inline into the hot
  // loop instead of paying a cross-TU call each. Same arithmetic as always
  // — streams are bitwise-unchanged.

  /// Returns the next raw 64-bit output.
  uint64_t Next() {
    // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    // 53-bit mantissa in [0, 1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// rejection method.
  uint64_t UniformInt(uint64_t n) {
    FGPDB_CHECK_GT(n, 0u);
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < n) {
      uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    FGPDB_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box–Muller.
  double Gaussian();

  /// Gaussian with given mean/stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Samples an index proportionally to non-negative `weights`.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples an index from unnormalized log-weights (numerically stable).
  size_t LogCategorical(const std::vector<double>& log_weights);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Deterministically derives a child generator; used to give each parallel
  /// chain an independent stream.
  Rng Fork();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fgpdb

#endif  // FGPDB_UTIL_RNG_H_
