// Figure 5: parallelizing query evaluation — squared error after a fixed
// per-chain sample budget, for 1…32 parallel MCMC chains, against the ideal
// linear (error/B) line.
//
// Paper: eight copies of a 10M-tuple world, 100 samples per chain, ground
// truth from 8 chains x 10k samples; observes ~linear and sometimes
// super-linear error reduction (cross-chain samples are more independent).
// Here: scaled world (default 50k tuples), same protocol, pushed past the
// paper's 8 chains — per-chain worlds are copy-on-write snapshots and
// chains queue on a hardware-sized pool, so 32 chains are as safe as 2.
#include <iostream>

#include "bench_common.h"
#include "pdb/parallel_evaluator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace fgpdb;
using namespace fgpdb::bench;

int main(int argc, char** argv) {
  const uint64_t master = InitBenchSeed(&argc, argv, "fig5");
  const size_t n = static_cast<size_t>(50000 * BenchScale());
  const uint64_t k = std::max<uint64_t>(100, n / 100);

  std::cout << "=== Figure 5: parallelizing query evaluation ("
            << HumanCount(static_cast<double>(n)) << " tuples, master seed "
            << master << ") ===\n"
            << "query: " << ie::kQuery1 << "\n\n";
  NerBench bench(n, DeriveSeed(master, 0));

  // The paper copies an existing 10M-tuple world eight times; the copies
  // start at the chain's current state, not at the all-'O' initialization.
  // Mirror that: burn the base world to stationarity once, then clone.
  // Without this, every chain shares the same transient *bias* and
  // averaging cannot reduce it — the Fig. 5 effect is variance reduction.
  {
    auto proposal = bench.MakeProposal();
    auto sampler =
        bench.tokens.pdb->MakeSampler(proposal.get(), DeriveSeed(master, 1));
    sampler->Run(DefaultBurnIn(n));
    bench.tokens.pdb->DiscardDeltas();
  }

  pdb::ProposalFactory factory = [&](pdb::ProbabilisticDatabase&) {
    return std::unique_ptr<infer::Proposal>(bench.MakeProposal().release());
  };

  // Ground truth: eight chains of 1500 samples each — mirroring the paper's
  // 8 x 10k protocol. The truth's own sampling noise must sit far below the
  // per-chain error being measured, or it becomes the visible floor.
  std::cerr << "[fig5] estimating ground truth (8 x 1500 samples)...\n";
  ra::PlanPtr truth_plan = sql::PlanQuery(ie::kQuery1, bench.tokens.pdb->db());
  pdb::ParallelOptions truth_options;
  truth_options.num_chains = 8;
  truth_options.samples_per_chain = 1500;
  truth_options.chain_options = {.steps_per_sample = k,
                                 .burn_in = DefaultBurnIn(n),
                                 .seed = DeriveSeed(master, 2)};
  const pdb::QueryAnswer truth = pdb::EvaluateParallel(
      *bench.tokens.pdb, *truth_plan, factory, truth_options);

  TablePrinter table({"chains", "squared error", "ideal (err1/B)",
                      "improvement", "samples total", "setup ms"});
  double err1 = 0.0;
  // Average each branch count over a few seeds to smooth chain noise.
  const int kRepeats = 2;
  for (size_t chains : {1u, 2u, 4u, 8u, 16u, 32u}) {
    double err = 0.0;
    uint64_t total_samples = 0;
    for (int r = 0; r < kRepeats; ++r) {
      pdb::ParallelOptions options;
      options.num_chains = chains;
      options.samples_per_chain = 100;
      // Full per-chain burn-in: each copy must forget the shared clone
      // before samples count, otherwise all chains carry the same bias and
      // averaging cannot reduce it.
      options.chain_options = {.steps_per_sample = k,
                               .burn_in = DefaultBurnIn(n),
                               .seed = DeriveSeed(master,
                                                  3 + static_cast<uint64_t>(r))};
      options.use_threads = true;
      const pdb::QueryAnswer answer =
          pdb::EvaluateParallel(*bench.tokens.pdb,
                                *sql::PlanQuery(ie::kQuery1,
                                                bench.tokens.pdb->db()),
                                factory, options);
      err += answer.SquaredError(truth);
      total_samples = answer.num_samples();
    }
    err /= kRepeats;
    if (chains == 1) err1 = err;
    // Per-sweep world setup: B copy-on-write snapshots of the base (what the
    // evaluator pays before sampling; used to be B deep copies).
    double setup_ms = 0.0;
    {
      std::vector<std::unique_ptr<pdb::ProbabilisticDatabase>> worlds;
      worlds.reserve(chains);
      Stopwatch setup_timer;
      for (size_t b = 0; b < chains; ++b) {
        worlds.push_back(bench.tokens.pdb->Snapshot());
      }
      setup_ms = setup_timer.ElapsedSeconds() * 1e3;
    }
    table.AddRow({std::to_string(chains), FormatDouble(err, 5),
                  FormatDouble(err1 / static_cast<double>(chains), 5),
                  FormatDouble(err1 / err, 3), std::to_string(total_samples),
                  FormatDouble(setup_ms, 3)});
    std::cerr << "[fig5] finished chains=" << chains << "\n";
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  std::cout << "\nPaper shape check: error falls roughly linearly in the "
               "number of chains (improvement ~= B, occasionally better — "
               "cross-chain samples are more independent).\n";
  return 0;
}
