#include "pdb/probabilistic_database.h"

namespace fgpdb {
namespace pdb {

std::unique_ptr<infer::MetropolisHastings> ProbabilisticDatabase::MakeSampler(
    infer::Proposal* proposal, uint64_t seed) {
  auto sampler = std::make_unique<infer::MetropolisHastings>(model(), &world_,
                                                             proposal, seed);
  sampler->AddListener(
      [this](const std::vector<factor::AppliedAssignment>& applied) {
        binding_.ApplyToDatabase(applied, db_.get(), &pending_deltas_);
      });
  return sampler;
}

std::unique_ptr<ProbabilisticDatabase> ProbabilisticDatabase::Clone() const {
  auto copy = std::make_unique<ProbabilisticDatabase>();
  copy->db_ = db_->Clone();
  copy->binding_ = binding_;
  copy->world_ = world_;
  copy->model_ = model_;
  return copy;
}

}  // namespace pdb
}  // namespace fgpdb
