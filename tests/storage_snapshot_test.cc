// Copy-on-write snapshot semantics (the storage layer under the §5.4
// parallel evaluator): snapshots must behave exactly like deep clones —
// writes on either side invisible to the other — while sharing pages until
// first write, including when many snapshots of one base are mutated from
// concurrent threads (run under TSan in CI).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/database.h"
#include "test_helpers.h"

namespace fgpdb {
namespace {

// Applies the same mutation script to two logically equal tables and
// asserts their externally visible state stays identical.
void ExpectSameState(const Table& a, const Table& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.row_capacity(), b.row_capacity());
  for (RowId row = 0; row < a.row_capacity(); ++row) {
    ASSERT_EQ(a.IsLive(row), b.IsLive(row)) << "row " << row;
    if (a.IsLive(row)) {
      EXPECT_EQ(a.Get(row), b.Get(row)) << "row " << row;
    }
  }
}

TEST(TableSnapshotTest, SharesAllPagesUntilFirstWrite) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  EXPECT_EQ(base->SharedPageCount(), 0u);
  auto snap = base->Snapshot();
  EXPECT_EQ(base->PageCount(), 1u);
  EXPECT_EQ(base->SharedPageCount(), 1u);
  EXPECT_EQ(snap->SharedPageCount(), 1u);
  snap->UpdateField(0, 3, Value::Int(1));
  // The write copied the page privately on the snapshot side only.
  EXPECT_EQ(snap->SharedPageCount(), 0u);
  EXPECT_EQ(base->SharedPageCount(), 0u);
}

TEST(TableSnapshotTest, SnapshotWriteIsInvisibleToBaseAndSiblings) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  auto left = base->Snapshot();
  auto right = base->Snapshot();
  left->UpdateField(0, 2, Value::String("zed"));
  EXPECT_EQ(left->Get(0).at(2), Value::String("zed"));
  EXPECT_EQ(base->Get(0).at(2), Value::String("ann"));
  EXPECT_EQ(right->Get(0).at(2), Value::String("ann"));
}

TEST(TableSnapshotTest, BaseWriteIsInvisibleToSnapshot) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  auto snap = base->Snapshot();
  base->UpdateField(1, 3, Value::Int(9999));
  base->Delete(2);
  EXPECT_EQ(snap->Get(1).at(3), Value::Int(90));
  EXPECT_TRUE(snap->IsLive(2));
  EXPECT_EQ(snap->size(), 5u);
}

TEST(TableSnapshotTest, InsertAndDeleteStayPrivate) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  auto snap = base->Snapshot();
  const RowId added = snap->Insert(Tuple{Value::Int(6), Value::String("eng"),
                                         Value::String("fox"), Value::Int(60)});
  snap->Delete(0);
  EXPECT_EQ(snap->size(), 5u);
  EXPECT_EQ(base->size(), 5u);
  EXPECT_FALSE(base->IsLive(added));
  EXPECT_TRUE(base->IsLive(0));
  // Primary-key index diverged privately in both directions.
  EXPECT_EQ(snap->LookupByKey(Value::Int(6)), added);
  EXPECT_EQ(base->LookupByKey(Value::Int(6)), kInvalidRowId);
  EXPECT_EQ(snap->LookupByKey(Value::Int(1)), kInvalidRowId);
  EXPECT_EQ(base->LookupByKey(Value::Int(1)), 0u);
}

TEST(TableSnapshotTest, SecondaryIndexCopiesOnWrite) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  base->CreateIndex(1);  // DEPT
  auto snap = base->Snapshot();
  ASSERT_TRUE(snap->HasIndex(1));
  snap->UpdateField(0, 1, Value::String("qa"));
  EXPECT_EQ(snap->IndexLookup(1, Value::String("eng")).size(), 1u);
  EXPECT_EQ(snap->IndexLookup(1, Value::String("qa")).size(), 1u);
  EXPECT_EQ(base->IndexLookup(1, Value::String("eng")).size(), 2u);
  EXPECT_EQ(base->IndexLookup(1, Value::String("qa")).size(), 0u);
}

TEST(TableSnapshotTest, SnapshotOfSnapshotIsIndependent) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  auto mid = base->Snapshot();
  mid->UpdateField(0, 3, Value::Int(111));
  auto leaf = mid->Snapshot();
  leaf->UpdateField(0, 3, Value::Int(222));
  EXPECT_EQ(base->Get(0).at(3), Value::Int(100));
  EXPECT_EQ(mid->Get(0).at(3), Value::Int(111));
  EXPECT_EQ(leaf->Get(0).at(3), Value::Int(222));
}

TEST(TableSnapshotTest, SnapshotMatchesCloneUnderSameMutations) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  base->CreateIndex(1);
  auto clone = base->Clone();
  auto snap = base->Snapshot();
  ExpectSameState(*clone, *snap);

  const auto mutate = [](Table* t) {
    t->UpdateField(0, 3, Value::Int(7));
    t->UpdateField(0, 1, Value::String("qa"));
    t->Delete(3);
    t->Insert(Tuple{Value::Int(42), Value::String("eng"),
                    Value::String("gil"), Value::Int(55)});
    t->UpdateField(4, 0, Value::Int(500));  // Primary-key update.
  };
  mutate(clone.get());
  mutate(snap.get());
  ExpectSameState(*clone, *snap);
  EXPECT_EQ(clone->LookupByKey(Value::Int(500)),
            snap->LookupByKey(Value::Int(500)));
  EXPECT_EQ(clone->IndexLookup(1, Value::String("qa")).size(),
            snap->IndexLookup(1, Value::String("qa")).size());
  // The base saw none of it.
  EXPECT_EQ(base->size(), 5u);
  EXPECT_EQ(base->Get(0).at(3), Value::Int(100));
}

TEST(TableSnapshotTest, ScanSeesSnapshotStateExactly) {
  Database db;
  Table* base = testing::MakeEmpTable(&db);
  auto snap = base->Snapshot();
  snap->UpdateField(2, 2, Value::String("carol"));
  base->Delete(2);
  EXPECT_EQ(testing::ToMultiset(snap->Rows()).Count(base->Get(0)), 1);
  size_t snap_rows = 0;
  bool saw_update = false;
  snap->Scan([&](RowId row, const Tuple& t) {
    ++snap_rows;
    if (row == 2) saw_update = (t.at(2) == Value::String("carol"));
  });
  EXPECT_EQ(snap_rows, 5u);
  EXPECT_TRUE(saw_update);
}

TEST(DatabaseSnapshotTest, SnapshotIsolatesEveryTable) {
  Database db;
  Table* emp = testing::MakeEmpTable(&db);
  Schema extra({Attribute{"X", ValueType::kInt64}});
  Table* other = db.CreateTable("OTHER", std::move(extra));
  other->Insert(Tuple{Value::Int(1)});

  auto snap = db.Snapshot();
  emp->UpdateField(0, 2, Value::String("zed"));
  snap->RequireTable("OTHER")->Insert(Tuple{Value::Int(2)});

  EXPECT_EQ(snap->RequireTable("EMP")->Get(0).at(2), Value::String("ann"));
  EXPECT_EQ(other->size(), 1u);
  EXPECT_EQ(snap->RequireTable("OTHER")->size(), 2u);
}

// Many snapshots of one base mutated from concurrent threads while the base
// is read — the §5.4 sharing pattern. Run under -DFGPDB_SANITIZE=thread to
// prove copy-up never races (CI's TSan leg runs exactly this test).
TEST(ConcurrentSnapshotTest, ChainsMutatePrivatelyWhileSharingBase) {
  Database db;
  Schema schema(
      {Attribute{"ID", ValueType::kInt64}, Attribute{"VAL", ValueType::kInt64}},
      /*primary_key=*/0);
  Table* base = db.CreateTable("T", std::move(schema));
  const size_t kRows = 4 * Table::kPageSize + 17;  // Several pages + a stub.
  for (size_t i = 0; i < kRows; ++i) {
    base->Insert(Tuple{Value::Int(static_cast<int64_t>(i)), Value::Int(0)});
  }

  constexpr size_t kThreads = 4;
  std::vector<std::unique_ptr<Database>> worlds;
  worlds.reserve(kThreads);
  for (size_t c = 0; c < kThreads; ++c) worlds.push_back(db.Snapshot());

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t c = 0; c < kThreads; ++c) {
    threads.emplace_back([&, c] {
      Table* mine = worlds[c]->RequireTable("T");
      for (RowId row = 0; row < kRows; ++row) {
        mine->UpdateField(row, 1, Value::Int(static_cast<int64_t>(c + 1)));
        // Interleave reads of the shared base pages.
        EXPECT_EQ(base->Get((row * 7) % kRows).at(1), Value::Int(0));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (size_t c = 0; c < kThreads; ++c) {
    const Table* mine = worlds[c]->RequireTable("T");
    for (RowId row = 0; row < kRows; row += 97) {
      EXPECT_EQ(mine->Get(row).at(1), Value::Int(static_cast<int64_t>(c + 1)));
    }
  }
  for (RowId row = 0; row < kRows; row += 97) {
    EXPECT_EQ(base->Get(row).at(1), Value::Int(0));
  }
}

}  // namespace
}  // namespace fgpdb
