// Unit tests for the signed delta multisets (paper §4.2's Δ−/Δ+ structure).
#include <gtest/gtest.h>

#include "view/delta.h"

namespace fgpdb {
namespace view {
namespace {

Tuple T(int64_t x) { return Tuple{Value::Int(x)}; }

TEST(DeltaMultisetTest, AddAndCount) {
  DeltaMultiset d;
  EXPECT_TRUE(d.empty());
  d.Add(T(1), 2);
  d.Add(T(2), -1);
  EXPECT_EQ(d.Count(T(1)), 2);
  EXPECT_EQ(d.Count(T(2)), -1);
  EXPECT_EQ(d.Count(T(3)), 0);
  EXPECT_EQ(d.distinct_size(), 2u);
}

TEST(DeltaMultisetTest, ZeroCountsAreErased) {
  DeltaMultiset d;
  d.Add(T(1), 3);
  d.Add(T(1), -3);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.distinct_size(), 0u);
  d.Add(T(1), 0);  // Adding zero is a no-op.
  EXPECT_TRUE(d.empty());
}

TEST(DeltaMultisetTest, MergeIsEntrywiseAddition) {
  DeltaMultiset a, b;
  a.Add(T(1), 2);
  a.Add(T(2), -1);
  b.Add(T(1), -2);
  b.Add(T(3), 5);
  a.Merge(b);
  EXPECT_EQ(a.Count(T(1)), 0);
  EXPECT_EQ(a.Count(T(2)), -1);
  EXPECT_EQ(a.Count(T(3)), 5);
}

TEST(DeltaMultisetTest, PositiveAndNegativeTotals) {
  DeltaMultiset d;
  d.Add(T(1), 3);
  d.Add(T(2), -2);
  d.Add(T(3), 1);
  EXPECT_EQ(d.PositiveTotal(), 4);
  EXPECT_EQ(d.NegativeTotal(), 2);
  EXPECT_FALSE(d.IsNonNegative());
  d.Add(T(2), 2);
  EXPECT_TRUE(d.IsNonNegative());
}

TEST(DeltaMultisetTest, EqualityIsOrderInsensitive) {
  DeltaMultiset a, b;
  a.Add(T(1), 1);
  a.Add(T(2), 2);
  b.Add(T(2), 2);
  b.Add(T(1), 1);
  EXPECT_EQ(a, b);
  b.Add(T(3), 1);
  EXPECT_FALSE(a == b);
}

TEST(DeltaMultisetTest, ForEachVisitsEveryEntry) {
  DeltaMultiset d;
  d.Add(T(1), 1);
  d.Add(T(2), -4);
  int64_t sum = 0;
  size_t visits = 0;
  d.ForEach([&](const Tuple&, int64_t c) {
    sum += c;
    ++visits;
  });
  EXPECT_EQ(sum, -3);
  EXPECT_EQ(visits, 2u);
}

TEST(DeltaMultisetTest, ToStringIsSortedAndStable) {
  DeltaMultiset d;
  d.Add(T(2), -1);
  d.Add(T(1), 2);
  EXPECT_EQ(d.ToString(), "{(1):2, (2):-1}");
}

TEST(DeltaSetTest, PerTableIsolation) {
  DeltaSet set;
  set.ForTable("A").Add(T(1), 1);
  set.ForTable("B").Add(T(2), -1);
  EXPECT_EQ(set.Get("A").Count(T(1)), 1);
  EXPECT_EQ(set.Get("B").Count(T(2)), -1);
  EXPECT_EQ(set.Get("C").Count(T(1)), 0);  // Unknown table: empty delta.
  EXPECT_EQ(set.TotalMagnitude(), 2);
  EXPECT_FALSE(set.empty());
  set.Clear();
  EXPECT_TRUE(set.empty());
}

TEST(DeltaSetTest, EmptyAfterCancellation) {
  DeltaSet set;
  set.ForTable("A").Add(T(1), 1);
  set.ForTable("A").Add(T(1), -1);
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace view
}  // namespace fgpdb
