// Sample-based marginal estimation (paper Eq. 5): averages indicator counts
// across thinned MCMC samples.
#ifndef FGPDB_INFER_MARGINAL_ESTIMATOR_H_
#define FGPDB_INFER_MARGINAL_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "factor/world.h"

namespace fgpdb {
namespace infer {

class MarginalEstimator {
 public:
  /// `domain_sizes[v]` = domain size of variable v.
  explicit MarginalEstimator(const std::vector<size_t>& domain_sizes);

  /// Records one sampled world.
  void Observe(const factor::World& world);

  /// Merges counts from another estimator over the same variables —
  /// averaging across parallel chains (paper §5.4).
  void Merge(const MarginalEstimator& other);

  /// Estimated P(Y_var = value) = count / samples.
  double Estimate(factor::VarId var, uint32_t value) const;

  /// Full marginal vector of a variable.
  std::vector<double> Marginal(factor::VarId var) const;

  uint64_t num_samples() const { return num_samples_; }

  /// Element-wise squared error against exact marginals (tests/benches).
  double SquaredErrorAgainst(
      const std::vector<std::vector<double>>& exact) const;

 private:
  std::vector<std::vector<uint64_t>> counts_;  // [var][value]
  uint64_t num_samples_ = 0;
};

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_MARGINAL_ESTIMATOR_H_
