#include "infer/metropolis_hastings.h"

#include <cmath>
#include <optional>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fgpdb {
namespace infer {

MetropolisHastings::MetropolisHastings(const factor::Model& model,
                                       factor::World* world,
                                       Proposal* proposal, uint64_t seed)
    : model_(model),
      world_(world),
      proposal_(proposal),
      rng_(seed),
      score_scratch_(model.MakeScratch()) {
  FGPDB_CHECK(world_ != nullptr);
  FGPDB_CHECK(proposal_ != nullptr);
}

bool MetropolisHastings::Step() {
  // Phase timing is opt-in (set_phase_totals); the detached path is the
  // untimed template instantiation — no clock reads at all.
  return phase_totals_ != nullptr ? StepImpl<true>() : StepImpl<false>();
}

size_t MetropolisHastings::Step(size_t n) {
  return phase_totals_ != nullptr ? StepBatchImpl<true>(n)
                                  : StepBatchImpl<false>(n);
}

template <bool kTimed>
bool MetropolisHastings::StepImpl() {
  std::optional<Stopwatch> phase_timer;
  if constexpr (kTimed) {
    phase_timer.emplace();
    ++phase_totals_->steps;
  }

  ++num_proposed_;
  double log_proposal_ratio = 0.0;
  proposal_->Propose(*world_, rng_, &change_buf_, &log_proposal_ratio);
  const factor::Change& change = change_buf_;
  if constexpr (kTimed) {
    phase_totals_->propose_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (change.empty()) {
    // Self-transition: counted as accepted (the chain stays put).
    ++num_accepted_;
    return true;
  }
  const double log_model_ratio =
      model_.LogScoreDelta(*world_, change, score_scratch_.get());
  const double log_alpha = log_model_ratio + log_proposal_ratio;
  bool accept = log_alpha >= 0.0;
  if (!accept) accept = rng_.Uniform() < std::exp(log_alpha);
  if constexpr (kTimed) {
    phase_totals_->score_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (!accept) return false;

  applied_scratch_.clear();
  world_->Apply(change, &applied_scratch_);
  // Drop no-op assignments (value unchanged) before notifying listeners so
  // delta buffers only see real modifications.
  auto& applied = applied_scratch_;
  applied.erase(std::remove_if(applied.begin(), applied.end(),
                               [](const factor::AppliedAssignment& a) {
                                 return a.old_value == a.new_value;
                               }),
                applied.end());
  ++num_accepted_;
  if constexpr (kTimed) {
    phase_totals_->apply_seconds += phase_timer->ElapsedSeconds();
    phase_timer->Reset();
  }
  if (!applied.empty()) {
    for (const auto& listener : listeners_) listener(applied);
  }
  if constexpr (kTimed) {
    phase_totals_->mirror_seconds += phase_timer->ElapsedSeconds();
    ++phase_totals_->mirror_flushes;
  }
  return true;
}

template <bool kTimed>
size_t MetropolisHastings::StepBatchImpl(size_t n) {
  // Listener notifications carry concatenated per-step applied records, so
  // a flush is exactly what the same steps would have reported one at a
  // time: same assignments, same order, same coalesced deltas. Without
  // listeners the applied stream has no consumer and is not recorded.
  const bool record = !listeners_.empty();
  batch_applied_.clear();
  size_t accepted = 0;

  std::optional<Stopwatch> phase_timer;
  if constexpr (kTimed) phase_timer.emplace();

  auto flush = [&]() {
    if (batch_applied_.empty()) return;
    if constexpr (kTimed) phase_timer->Reset();
    for (const auto& listener : listeners_) listener(batch_applied_);
    batch_applied_.clear();
    if constexpr (kTimed) {
      phase_totals_->mirror_seconds += phase_timer->ElapsedSeconds();
      ++phase_totals_->mirror_flushes;
    }
  };

  for (size_t i = 0; i < n; ++i) {
    if constexpr (kTimed) {
      phase_timer->Reset();
      ++phase_totals_->steps;
    }
    ++num_proposed_;
    double log_proposal_ratio = 0.0;
    proposal_->Propose(*world_, rng_, &change_buf_, &log_proposal_ratio);
    if constexpr (kTimed) {
      phase_totals_->propose_seconds += phase_timer->ElapsedSeconds();
      phase_timer->Reset();
    }
    if (change_buf_.empty()) {
      ++num_accepted_;
      ++accepted;
      continue;
    }
    const double log_model_ratio =
        model_.LogScoreDelta(*world_, change_buf_, score_scratch_.get());
    const double log_alpha = log_model_ratio + log_proposal_ratio;
    bool accept = log_alpha >= 0.0;
    if (!accept) accept = rng_.Uniform() < std::exp(log_alpha);
    if constexpr (kTimed) {
      phase_totals_->score_seconds += phase_timer->ElapsedSeconds();
      phase_timer->Reset();
    }
    if (!accept) continue;

    // Apply in assignment order, keeping only real modifications — the
    // in-place equivalent of World::Apply + the no-op filter, appending
    // straight onto the batch buffer.
    for (const auto& a : change_buf_.assignments) {
      const uint32_t old_value = world_->Get(a.var);
      world_->Set(a.var, a.value);
      if (record && old_value != a.value) {
        batch_applied_.push_back({a.var, old_value, a.value});
      }
    }
    ++num_accepted_;
    ++accepted;
    if constexpr (kTimed) {
      phase_totals_->apply_seconds += phase_timer->ElapsedSeconds();
    }
    if (batch_applied_.size() >= mirror_batch_limit_) flush();
  }
  flush();
  return accepted;
}

}  // namespace infer
}  // namespace fgpdb
