#!/usr/bin/env python3
"""Fail CI when the MH step kernel regresses against BENCH_pr7.json.

Usage: check_step_regression.py <benchmark_out.json> <BENCH_pr7.json>

Compares each BM_MhStep/<n> real_time in the Google Benchmark JSON output
against regression_gate.baseline[<n>] in the committed baseline file and
fails (exit 1) when measured > baseline * max_regression_ratio * slack.

The committed baseline was measured on the dev VM; CI runners are at least
as fast, and the gate ratio is deliberately generous (default 1.25) so only
genuine step-kernel regressions trip it. If a runner class is structurally
slower, set STEP_BENCH_SLACK (a multiplier, e.g. 1.5) rather than loosening
the committed ratio.
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        measured = json.load(f)
    with open(sys.argv[2]) as f:
        gate = json.load(f)["regression_gate"]

    baseline = gate["baseline"]
    limit_ratio = float(gate["max_regression_ratio"])
    slack = float(os.environ.get("STEP_BENCH_SLACK", "1.0"))

    failures = []
    checked = 0
    for bench in measured.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_MhStep/"):
            continue
        size = name.split("/")[1]
        if size not in baseline:
            continue
        checked += 1
        ns = float(bench["real_time"])
        limit = baseline[size] * limit_ratio * slack
        status = "OK" if ns <= limit else "REGRESSION"
        print(f"{name}: {ns:.1f} ns (baseline {baseline[size]:.1f}, "
              f"limit {limit:.1f}) {status}")
        if ns > limit:
            failures.append(name)

    if checked == 0:
        print("error: no BM_MhStep results found in benchmark output")
        return 1
    if failures:
        print(f"step kernel regressed: {', '.join(failures)}")
        return 1
    print(f"step kernel within budget ({checked} sizes checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
