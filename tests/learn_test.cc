// SampleRank training tests (paper §5.2): weights learned from atomic
// gradients must raise labeling accuracy and rank truth-ward jumps higher.
#include <gtest/gtest.h>

#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "infer/metropolis_hastings.h"
#include "learn/objective.h"
#include "learn/samplerank.h"

namespace fgpdb {
namespace learn {
namespace {

TEST(LabelAccuracyObjectiveTest, DeltaAndScore) {
  LabelAccuracyObjective objective({1, 0, 2});
  factor::World world(3);  // All zeros: position 1 correct.
  EXPECT_DOUBLE_EQ(objective.Score(world), 1.0);
  factor::Change toward;
  toward.Set(0, 1);  // Fixes position 0.
  EXPECT_DOUBLE_EQ(objective.Delta(world, toward), 1.0);
  factor::Change away;
  away.Set(1, 2);  // Breaks position 1.
  EXPECT_DOUBLE_EQ(objective.Delta(world, away), -1.0);
  factor::Change neutral;
  neutral.Set(2, 1);  // 2 was wrong, still wrong.
  EXPECT_DOUBLE_EQ(objective.Delta(world, neutral), 0.0);
}

struct TrainFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;
  std::unique_ptr<LabelAccuracyObjective> objective;

  TrainFixture() {
    const ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = 2000, .tokens_per_doc = 100, .seed = 77});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    objective = std::make_unique<LabelAccuracyObjective>(tokens.truth);
  }
};

TEST(SampleRankTest, LearnsToLabelTokens) {
  TrainFixture fixture;
  ie::DocumentBatchProposal proposal(&fixture.tokens.docs,
                                     {.proposals_per_batch = 500});
  SampleRank trainer(fixture.model.get(), &proposal, fixture.objective.get(),
                     {.learning_rate = 1.0, .seed = 5});
  factor::World world = fixture.tokens.pdb->world();  // All O.
  const double accuracy_before =
      fixture.objective->Score(world) / fixture.tokens.num_tokens();

  const SampleRankStats stats = trainer.Train(&world, 60000);
  EXPECT_GT(stats.updates, 0u);
  EXPECT_GT(stats.accepted, 0u);

  // Decode greedily with the trained model from scratch via MH at the mode:
  // just measure the training walk's end state accuracy.
  const double accuracy_after =
      fixture.objective->Score(world) / fixture.tokens.num_tokens();
  EXPECT_GT(accuracy_after, accuracy_before + 0.05);
  EXPECT_GT(accuracy_after, 0.9);
}

TEST(SampleRankTest, TrainedModelRanksTruthwardJumpsHigher) {
  TrainFixture fixture;
  ie::DocumentBatchProposal proposal(&fixture.tokens.docs,
                                     {.proposals_per_batch = 500});
  SampleRank trainer(fixture.model.get(), &proposal, fixture.objective.get(),
                     {.learning_rate = 1.0, .seed = 9});
  factor::World world = fixture.tokens.pdb->world();
  trainer.Train(&world, 60000);

  // From a fresh all-O world, jumps that set a token to its true label
  // should mostly have positive model delta.
  factor::World fresh(fixture.tokens.num_tokens());
  size_t positive = 0, total = 0;
  for (size_t v = 0; v < fixture.tokens.num_tokens(); ++v) {
    const uint32_t truth = fixture.tokens.truth[v];
    if (truth == ie::kLabelO) continue;
    factor::Change change;
    change.Set(static_cast<factor::VarId>(v), truth);
    if (fixture.model->LogScoreDelta(fresh, change) > 0.0) ++positive;
    ++total;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(positive) / static_cast<double>(total), 0.8);
}

TEST(SampleRankTest, FollowModelPolicyAlsoLearns) {
  TrainFixture fixture;
  ie::DocumentBatchProposal proposal(&fixture.tokens.docs,
                                     {.proposals_per_batch = 500});
  SampleRank trainer(fixture.model.get(), &proposal, fixture.objective.get(),
                     {.learning_rate = 1.0,
                      .seed = 11,
                      .walk_policy = SampleRankOptions::WalkPolicy::kFollowModel});
  factor::World world = fixture.tokens.pdb->world();
  const SampleRankStats stats = trainer.Train(&world, 40000);
  EXPECT_GT(stats.updates, 0u);
  // Model should at least rank most truthward flips positively.
  factor::World fresh(fixture.tokens.num_tokens());
  size_t positive = 0, total = 0;
  for (size_t v = 0; v < fixture.tokens.num_tokens(); ++v) {
    if (fixture.tokens.truth[v] == ie::kLabelO) continue;
    factor::Change change;
    change.Set(static_cast<factor::VarId>(v), fixture.tokens.truth[v]);
    if (fixture.model->LogScoreDelta(fresh, change) > 0.0) ++positive;
    ++total;
  }
  EXPECT_GT(static_cast<double>(positive) / static_cast<double>(total), 0.6);
}

TEST(SampleRankTest, NoUpdatesWhenModelAlreadyRanksCorrectly) {
  // With a model pre-set to (scaled) truth statistics, most proposals are
  // already ranked consistently, so updates are rare relative to proposals.
  TrainFixture fixture;
  fixture.model->InitializeFromCorpusStatistics(fixture.tokens, 1.0, 4.0);
  ie::DocumentBatchProposal proposal(&fixture.tokens.docs,
                                     {.proposals_per_batch = 500});
  SampleRank trainer(fixture.model.get(), &proposal, fixture.objective.get(),
                     {.learning_rate = 0.1, .seed = 13});
  factor::World world = fixture.tokens.pdb->world();
  const SampleRankStats stats = trainer.Train(&world, 20000);
  EXPECT_LT(static_cast<double>(stats.updates),
            0.2 * static_cast<double>(stats.proposals));
}

}  // namespace
}  // namespace learn
}  // namespace fgpdb
