#include "sql/binder.h"

#include <map>
#include <unordered_map>

#include "sql/parser.h"
#include "util/logging.h"

namespace fgpdb {
namespace sql {
namespace {

// Name-resolution scope over the concatenation of the FROM tables.
class Scope {
 public:
  void AddTable(const std::string& alias, const Schema& schema) {
    const size_t offset = total_arity_;
    tables_.push_back({alias, &schema, offset});
    total_arity_ += schema.arity();
  }

  /// Resolves [qualifier.]column to a global column index; fatal if
  /// ambiguous or unknown.
  size_t Resolve(const std::string& qualifier, const std::string& column,
                 std::string* display_name) const {
    std::optional<size_t> found;
    for (const auto& entry : tables_) {
      if (!qualifier.empty() && entry.alias != qualifier) continue;
      const auto idx = entry.schema->IndexOf(column);
      if (!idx.has_value()) continue;
      FGPDB_CHECK(!found.has_value())
          << "ambiguous column " << column << " (qualify with table alias)";
      found = entry.offset + *idx;
      if (display_name != nullptr) {
        *display_name =
            tables_.size() > 1 ? entry.alias + "." + column : column;
      }
    }
    FGPDB_CHECK(found.has_value())
        << "unknown column " << (qualifier.empty() ? "" : qualifier + ".")
        << column;
    return *found;
  }

  /// Which table (index into FROM order) owns global column `index`.
  size_t TableOf(size_t index) const {
    for (size_t t = 0; t < tables_.size(); ++t) {
      if (index >= tables_[t].offset &&
          index < tables_[t].offset + tables_[t].schema->arity()) {
        return t;
      }
    }
    FGPDB_FATAL() << "column index out of range";
    return 0;
  }

  size_t table_offset(size_t t) const { return tables_[t].offset; }
  size_t num_tables() const { return tables_.size(); }
  size_t total_arity() const { return total_arity_; }

 private:
  struct Entry {
    std::string alias;
    const Schema* schema;
    size_t offset;
  };
  std::vector<Entry> tables_;
  size_t total_arity_ = 0;
};

// Lowers a scalar (aggregate-free) AST expression over the scope; column
// indexes are offset by `shift` (used to rebase single-table predicates onto
// the table's own tuple layout).
ra::ExprPtr LowerScalar(const AstExpr& ast, const Scope& scope,
                        int64_t shift = 0) {
  switch (ast.kind) {
    case AstKind::kColumn: {
      std::string display;
      const size_t index = scope.Resolve(ast.qualifier, ast.column, &display);
      const int64_t rebased = static_cast<int64_t>(index) + shift;
      FGPDB_CHECK_GE(rebased, 0);
      return ra::Col(static_cast<size_t>(rebased), display);
    }
    case AstKind::kLiteral:
      return ra::Lit(ast.literal);
    case AstKind::kCompare:
      return ra::Cmp(ast.compare_op, LowerScalar(*ast.lhs, scope, shift),
                     LowerScalar(*ast.rhs, scope, shift));
    case AstKind::kLogical:
      if (ast.logical_op == ra::LogicalOp::kNot) {
        return ra::Not(LowerScalar(*ast.lhs, scope, shift));
      }
      return std::make_unique<ra::Logical>(
          ast.logical_op, LowerScalar(*ast.lhs, scope, shift),
          LowerScalar(*ast.rhs, scope, shift));
    case AstKind::kArithmetic:
      return std::make_unique<ra::Arithmetic>(
          ast.arithmetic_op, LowerScalar(*ast.lhs, scope, shift),
          LowerScalar(*ast.rhs, scope, shift));
    case AstKind::kIsNull:
      return std::make_unique<ra::IsNull>(LowerScalar(*ast.lhs, scope, shift),
                                          ast.negated);
    case AstKind::kLike:
      return std::make_unique<ra::Like>(LowerScalar(*ast.lhs, scope, shift),
                                        ast.like_pattern);
    case AstKind::kAggregate:
      FGPDB_FATAL() << "aggregate call " << ast.ToString()
                    << " is not allowed here";
  }
  return nullptr;
}

// Collects the set of FROM-tables referenced by an expression.
void CollectTables(const AstExpr& ast, const Scope& scope,
                   std::vector<bool>& used) {
  if (ast.kind == AstKind::kColumn) {
    std::string display;
    const size_t index = scope.Resolve(ast.qualifier, ast.column, &display);
    used[scope.TableOf(index)] = true;
  }
  if (ast.lhs != nullptr) CollectTables(*ast.lhs, scope, used);
  if (ast.rhs != nullptr) CollectTables(*ast.rhs, scope, used);
  if (ast.agg_argument != nullptr) CollectTables(*ast.agg_argument, scope, used);
}

// Splits an AND-tree into conjuncts (borrowed pointers into the AST).
void SplitConjuncts(const AstExpr& ast, std::vector<const AstExpr*>& out) {
  if (ast.kind == AstKind::kLogical && ast.logical_op == ra::LogicalOp::kAnd) {
    SplitConjuncts(*ast.lhs, out);
    SplitConjuncts(*ast.rhs, out);
    return;
  }
  out.push_back(&ast);
}

// Splits an OR-tree into disjuncts (borrowed pointers into the AST).
void SplitDisjuncts(const AstExpr& ast, std::vector<const AstExpr*>& out) {
  if (ast.kind == AstKind::kLogical && ast.logical_op == ra::LogicalOp::kOr) {
    SplitDisjuncts(*ast.lhs, out);
    SplitDisjuncts(*ast.rhs, out);
    return;
  }
  out.push_back(&ast);
}

// Gathers all aggregate calls in an expression tree.
void CollectAggregates(const AstExpr& ast, std::vector<const AstExpr*>& out) {
  if (ast.kind == AstKind::kAggregate) {
    out.push_back(&ast);
    FGPDB_CHECK(ast.agg_argument == nullptr ||
                !ast.agg_argument->ContainsAggregate())
        << "nested aggregates are not supported";
    return;
  }
  if (ast.lhs != nullptr) CollectAggregates(*ast.lhs, out);
  if (ast.rhs != nullptr) CollectAggregates(*ast.rhs, out);
}

// Post-aggregation lowering: rewrites an expression over the aggregate
// node's output, mapping group-by columns and aggregate calls to output
// positions.
ra::ExprPtr LowerOverAggregate(
    const AstExpr& ast, const Scope& scope,
    const std::unordered_map<std::string, size_t>& agg_slots,
    const std::map<size_t, size_t>& group_slots) {
  if (ast.kind == AstKind::kAggregate) {
    const auto it = agg_slots.find(ast.ToString());
    FGPDB_CHECK(it != agg_slots.end());
    return ra::Col(it->second, ast.ToString());
  }
  switch (ast.kind) {
    case AstKind::kColumn: {
      std::string display;
      const size_t index = scope.Resolve(ast.qualifier, ast.column, &display);
      const auto it = group_slots.find(index);
      FGPDB_CHECK(it != group_slots.end())
          << "column " << ast.ToString()
          << " must appear in GROUP BY or inside an aggregate";
      return ra::Col(it->second, display);
    }
    case AstKind::kLiteral:
      return ra::Lit(ast.literal);
    case AstKind::kCompare:
      return ra::Cmp(ast.compare_op,
                     LowerOverAggregate(*ast.lhs, scope, agg_slots, group_slots),
                     LowerOverAggregate(*ast.rhs, scope, agg_slots, group_slots));
    case AstKind::kLogical:
      if (ast.logical_op == ra::LogicalOp::kNot) {
        return ra::Not(
            LowerOverAggregate(*ast.lhs, scope, agg_slots, group_slots));
      }
      return std::make_unique<ra::Logical>(
          ast.logical_op,
          LowerOverAggregate(*ast.lhs, scope, agg_slots, group_slots),
          LowerOverAggregate(*ast.rhs, scope, agg_slots, group_slots));
    case AstKind::kArithmetic:
      return std::make_unique<ra::Arithmetic>(
          ast.arithmetic_op,
          LowerOverAggregate(*ast.lhs, scope, agg_slots, group_slots),
          LowerOverAggregate(*ast.rhs, scope, agg_slots, group_slots));
    case AstKind::kIsNull:
      return std::make_unique<ra::IsNull>(
          LowerOverAggregate(*ast.lhs, scope, agg_slots, group_slots),
          ast.negated);
    case AstKind::kLike:
      return std::make_unique<ra::Like>(
          LowerOverAggregate(*ast.lhs, scope, agg_slots, group_slots),
          ast.like_pattern);
    case AstKind::kAggregate:
      break;  // Handled before the switch.
  }
  return nullptr;
}

ra::AggregateSpec::Kind ToSpecKind(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return ra::AggregateSpec::Kind::kCount;
    case AggFunc::kCountIf:
      return ra::AggregateSpec::Kind::kCountIf;
    case AggFunc::kCountDistinct:
      return ra::AggregateSpec::Kind::kCountDistinct;
    case AggFunc::kSum:
      return ra::AggregateSpec::Kind::kSum;
    case AggFunc::kMin:
      return ra::AggregateSpec::Kind::kMin;
    case AggFunc::kMax:
      return ra::AggregateSpec::Kind::kMax;
    case AggFunc::kAvg:
      return ra::AggregateSpec::Kind::kAvg;
  }
  return ra::AggregateSpec::Kind::kCount;
}

std::string DeriveName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == AstKind::kColumn) {
    return item.expr->qualifier.empty()
               ? item.expr->column
               : item.expr->qualifier + "." + item.expr->column;
  }
  return item.expr->ToString();
}

// Output-attribute names must be unique; suffix duplicates with #2, #3, …
void DedupeNames(std::vector<std::string>* names) {
  for (size_t i = 0; i < names->size(); ++i) {
    int suffix = 2;
    std::string& name = (*names)[i];
    auto taken = [&](const std::string& candidate) {
      for (size_t j = 0; j < i; ++j) {
        if ((*names)[j] == candidate) return true;
      }
      return false;
    };
    std::string candidate = name;
    while (taken(candidate)) {
      candidate = name + "#" + std::to_string(suffix++);
    }
    name = std::move(candidate);
  }
}

// --- Expression simplification ---------------------------------------------

bool IsLiteral(const AstExprPtr& e) {
  return e != nullptr && e->kind == AstKind::kLiteral;
}

// Evaluates a node whose operands are all literals by building the exact
// ra:: expression the binder would lower it to and running it on an empty
// tuple — folding therefore shares the runtime's NULL collapsing, numeric
// coercion, and 0/1 boolean rendering bit for bit.
Value FoldAgainstRuntime(const AstExpr& e) {
  const Tuple empty;
  switch (e.kind) {
    case AstKind::kCompare:
      return ra::Comparison(e.compare_op, ra::Lit(e.lhs->literal),
                            ra::Lit(e.rhs->literal))
          .Eval(empty);
    case AstKind::kArithmetic:
      return ra::Arithmetic(e.arithmetic_op, ra::Lit(e.lhs->literal),
                            ra::Lit(e.rhs->literal))
          .Eval(empty);
    case AstKind::kLogical:
      return ra::Logical(e.logical_op, ra::Lit(e.lhs->literal),
                         e.rhs != nullptr ? ra::Lit(e.rhs->literal) : nullptr)
          .Eval(empty);
    case AstKind::kIsNull:
      return ra::IsNull(ra::Lit(e.lhs->literal), e.negated).Eval(empty);
    case AstKind::kLike:
      return ra::Like(ra::Lit(e.lhs->literal), e.like_pattern).Eval(empty);
    default:
      FGPDB_FATAL() << "not foldable: " << e.ToString();
      return Value::Null();
  }
}

// Truth value of a literal under the runtime's EvalBool rules.
bool LiteralTruth(const Value& v) {
  return ra::Constant(v).EvalBool(Tuple{});
}

}  // namespace

AstExprPtr SimplifyExpr(AstExprPtr expr, bool boolean_context) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind) {
    case AstKind::kColumn:
    case AstKind::kLiteral:
      return expr;
    case AstKind::kAggregate:
      // The argument of COUNT_IF is a predicate; other aggregates consume
      // the argument's value.
      if (expr->agg_argument != nullptr) {
        expr->agg_argument = SimplifyExpr(std::move(expr->agg_argument),
                                          expr->agg_func == AggFunc::kCountIf);
      }
      return expr;
    case AstKind::kCompare:
    case AstKind::kArithmetic:
      expr->lhs = SimplifyExpr(std::move(expr->lhs), false);
      expr->rhs = SimplifyExpr(std::move(expr->rhs), false);
      if (IsLiteral(expr->lhs) && IsLiteral(expr->rhs)) {
        return MakeLiteral(FoldAgainstRuntime(*expr));
      }
      return expr;
    case AstKind::kIsNull:
      expr->lhs = SimplifyExpr(std::move(expr->lhs), false);
      if (IsLiteral(expr->lhs)) return MakeLiteral(FoldAgainstRuntime(*expr));
      return expr;
    case AstKind::kLike:
      expr->lhs = SimplifyExpr(std::move(expr->lhs), false);
      if (IsLiteral(expr->lhs)) return MakeLiteral(FoldAgainstRuntime(*expr));
      return expr;
    case AstKind::kLogical: {
      // Operands of AND/OR/NOT only ever contribute their truth value
      // (Logical::Eval runs EvalBool on them), so they are always in
      // boolean context regardless of where this node sits.
      expr->lhs = SimplifyExpr(std::move(expr->lhs), true);
      if (expr->rhs != nullptr) {
        expr->rhs = SimplifyExpr(std::move(expr->rhs), true);
      }
      if (IsLiteral(expr->lhs) &&
          (expr->logical_op == ra::LogicalOp::kNot || IsLiteral(expr->rhs))) {
        return MakeLiteral(FoldAgainstRuntime(*expr));
      }
      // One-sided collapses. FALSE AND x and TRUE OR x produce exactly the
      // Int(0)/Int(1) the runtime would, so they are exact in any context;
      // TRUE AND x → x and FALSE OR x → x only preserve truth value, so
      // they need boolean context.
      const bool lhs_lit = IsLiteral(expr->lhs);
      const bool rhs_lit = IsLiteral(expr->rhs);
      if (expr->logical_op == ra::LogicalOp::kAnd && (lhs_lit || rhs_lit)) {
        const bool truth = LiteralTruth(lhs_lit ? expr->lhs->literal
                                                : expr->rhs->literal);
        if (!truth) return MakeLiteral(Value::Int(0));
        if (boolean_context) return lhs_lit ? std::move(expr->rhs)
                                            : std::move(expr->lhs);
      }
      if (expr->logical_op == ra::LogicalOp::kOr && (lhs_lit || rhs_lit)) {
        const bool truth = LiteralTruth(lhs_lit ? expr->lhs->literal
                                                : expr->rhs->literal);
        if (truth) return MakeLiteral(Value::Int(1));
        if (boolean_context) return lhs_lit ? std::move(expr->rhs)
                                            : std::move(expr->lhs);
      }
      return expr;
    }
  }
  return expr;
}

ra::PlanPtr Bind(const SelectStatement& stmt, const Database& db) {
  FGPDB_CHECK(!stmt.from.empty()) << "FROM clause required";
  Scope scope;
  std::vector<const Table*> tables;
  for (const auto& ref : stmt.from) {
    const Table* table = db.RequireTable(ref.table);
    tables.push_back(table);
    scope.AddTable(ref.alias, table->schema());
  }

  // --- Expression simplification -------------------------------------------
  // Fold literal subtrees and collapse TRUE AND x / FALSE OR x before any
  // plan construction, so downstream decomposition sees the minimal tree
  // (a WHERE that folds to TRUE disappears entirely).
  AstExprPtr where =
      stmt.where != nullptr ? SimplifyExpr(stmt.where->Clone(), true) : nullptr;
  if (where != nullptr && where->kind == AstKind::kLiteral &&
      LiteralTruth(where->literal)) {
    where = nullptr;
  }
  AstExprPtr having = stmt.having != nullptr
                          ? SimplifyExpr(stmt.having->Clone(), true)
                          : nullptr;
  if (having != nullptr && having->kind == AstKind::kLiteral &&
      LiteralTruth(having->literal)) {
    having = nullptr;
  }
  std::vector<SelectItem> items;
  items.reserve(stmt.items.size());
  for (const auto& item : stmt.items) {
    items.push_back(
        SelectItem{SimplifyExpr(item.expr->Clone(), false), item.alias});
  }

  // --- WHERE decomposition ------------------------------------------------
  std::vector<const AstExpr*> conjuncts;
  if (where != nullptr) SplitConjuncts(*where, conjuncts);

  // Per-table pushed-down predicates, cross-table equi-join keys, residual.
  std::vector<std::vector<const AstExpr*>> table_filters(stmt.from.size());
  struct JoinKey {
    size_t left_table, left_col;    // global column indexes
    size_t right_table, right_col;
  };
  std::vector<JoinKey> join_keys;
  std::vector<const AstExpr*> residual;
  // Disjunctive join alternatives extracted from OR-of-equality conjuncts,
  // bucketed by the join level (highest referenced table) they attach to.
  // Pairs are (left global column, right global column in that table).
  std::vector<std::vector<std::pair<size_t, size_t>>> or_join_alts(
      stmt.from.size());

  for (const AstExpr* conjunct : conjuncts) {
    std::vector<bool> used(stmt.from.size(), false);
    CollectTables(*conjunct, scope, used);
    const size_t num_used =
        static_cast<size_t>(std::count(used.begin(), used.end(), true));
    if (num_used <= 1) {
      size_t t = 0;
      while (t < used.size() && !used[t]) ++t;
      if (t == used.size()) t = 0;  // Constant predicate: attach to table 0.
      table_filters[t].push_back(conjunct);
      continue;
    }
    // col = col across exactly two tables becomes a hash-join key.
    if (num_used == 2 && conjunct->kind == AstKind::kCompare &&
        conjunct->compare_op == ra::CompareOp::kEq &&
        conjunct->lhs->kind == AstKind::kColumn &&
        conjunct->rhs->kind == AstKind::kColumn) {
      const size_t li =
          scope.Resolve(conjunct->lhs->qualifier, conjunct->lhs->column, nullptr);
      const size_t ri =
          scope.Resolve(conjunct->rhs->qualifier, conjunct->rhs->column, nullptr);
      size_t lt = scope.TableOf(li);
      size_t rt = scope.TableOf(ri);
      size_t lc = li, rc = ri;
      if (lt > rt) {
        std::swap(lt, rt);
        std::swap(lc, rc);
      }
      join_keys.push_back({lt, lc, rt, rc});
      continue;
    }
    // OR of cross-table equalities (a.k = b.k OR a.k = b.j): every disjunct
    // must equate a column of the highest referenced table with a column of
    // an earlier one. Such a conjunct becomes the disjunctive key list of
    // that join — hash-routable per alternative — instead of a filter over
    // a Cartesian product. One per join level; extras stay residual.
    // NULL keys follow this binder's existing join-extraction convention:
    // hash-join key matching uses Value::Compare, under which NULL = NULL
    // matches (unlike a residual Comparison, which collapses NULL to
    // false) — the same trade the plain `a.k = b.k` extraction above
    // already makes.
    if (conjunct->kind == AstKind::kLogical &&
        conjunct->logical_op == ra::LogicalOp::kOr) {
      std::vector<const AstExpr*> disjuncts;
      SplitDisjuncts(*conjunct, disjuncts);
      std::vector<std::pair<size_t, size_t>> pairs;  // (global col, global col)
      bool extractable = true;
      size_t target = 0;
      for (const AstExpr* d : disjuncts) {
        if (d->kind != AstKind::kCompare ||
            d->compare_op != ra::CompareOp::kEq ||
            d->lhs->kind != AstKind::kColumn ||
            d->rhs->kind != AstKind::kColumn) {
          extractable = false;
          break;
        }
        const size_t a = scope.Resolve(d->lhs->qualifier, d->lhs->column, nullptr);
        const size_t b = scope.Resolve(d->rhs->qualifier, d->rhs->column, nullptr);
        if (scope.TableOf(a) == scope.TableOf(b)) {
          extractable = false;  // Same-table equality cannot key a join.
          break;
        }
        pairs.emplace_back(a, b);
        target = std::max({target, scope.TableOf(a), scope.TableOf(b)});
      }
      if (extractable) {
        // Orient every pair as (earlier-table column, target-table column);
        // a disjunct not touching the target table cannot be a key there.
        std::vector<std::pair<size_t, size_t>> oriented;
        for (auto [a, b] : pairs) {
          if (scope.TableOf(a) == target) std::swap(a, b);
          if (scope.TableOf(b) != target) {
            extractable = false;
            break;
          }
          oriented.emplace_back(a, b);
        }
        if (extractable && or_join_alts[target].empty()) {
          or_join_alts[target] = std::move(oriented);
          continue;
        }
      }
    }
    residual.push_back(conjunct);
  }

  // --- Base scans with pushed filters --------------------------------------
  std::vector<ra::PlanPtr> inputs;
  for (size_t t = 0; t < stmt.from.size(); ++t) {
    ra::PlanPtr node = std::make_unique<ra::ScanNode>(stmt.from[t].table,
                                                      tables[t]->schema());
    for (const AstExpr* filter : table_filters[t]) {
      // Rebase global column indexes onto this table's local layout.
      const int64_t shift = -static_cast<int64_t>(scope.table_offset(t));
      node = std::make_unique<ra::SelectNode>(
          std::move(node), LowerScalar(*filter, scope, shift));
    }
    inputs.push_back(std::move(node));
  }

  // --- Left-deep joins in FROM order ---------------------------------------
  ra::PlanPtr plan = std::move(inputs[0]);
  size_t joined_arity = tables[0]->schema().arity();
  for (size_t t = 1; t < inputs.size(); ++t) {
    std::vector<size_t> left_keys, right_keys;
    for (const auto& key : join_keys) {
      if (key.right_table == t && key.left_table < t) {
        // Left side of the join tree preserves global indexes for tables
        // 0..t-1 because joins concatenate in FROM order.
        left_keys.push_back(key.left_col);
        right_keys.push_back(key.right_col - scope.table_offset(t));
      }
    }
    if (!or_join_alts[t].empty()) {
      // Disjunctive join: each alternative is the conjunctive keys plus one
      // OR-disjunct's column pair.
      std::vector<ra::JoinKeyAlternative> alternatives;
      for (const auto& [lc, rc] : or_join_alts[t]) {
        ra::JoinKeyAlternative alt{left_keys, right_keys};
        alt.left_keys.push_back(lc);
        alt.right_keys.push_back(rc - scope.table_offset(t));
        alternatives.push_back(std::move(alt));
      }
      plan = std::make_unique<ra::JoinNode>(
          std::move(plan), std::move(inputs[t]), std::move(alternatives),
          nullptr);
    } else {
      plan = std::make_unique<ra::JoinNode>(
          std::move(plan), std::move(inputs[t]), std::move(left_keys),
          std::move(right_keys), nullptr);
    }
    joined_arity += tables[t]->schema().arity();
  }
  (void)joined_arity;

  // --- Residual cross-table predicates --------------------------------------
  for (const AstExpr* pred : residual) {
    plan = std::make_unique<ra::SelectNode>(std::move(plan),
                                            LowerScalar(*pred, scope));
  }

  // --- Aggregation ----------------------------------------------------------
  // Detection uses the *original* HAVING: one that folded to TRUE still
  // forces the aggregation a bare HAVING clause implies.
  bool has_aggregate = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const auto& item : items) {
    if (item.expr->ContainsAggregate()) has_aggregate = true;
  }

  if (has_aggregate) {
    FGPDB_CHECK(!stmt.select_star) << "SELECT * with aggregation unsupported";
    // Group-by columns (must be plain column refs).
    std::vector<size_t> group_cols;
    std::map<size_t, size_t> group_slots;  // global col -> output slot
    for (const auto& g : stmt.group_by) {
      FGPDB_CHECK(g->kind == AstKind::kColumn)
          << "GROUP BY supports plain columns, got " << g->ToString();
      const size_t index = scope.Resolve(g->qualifier, g->column, nullptr);
      group_slots[index] = group_cols.size();
      group_cols.push_back(index);
    }
    // Unique aggregate calls from SELECT and HAVING.
    std::vector<const AstExpr*> agg_calls;
    for (const auto& item : items) CollectAggregates(*item.expr, agg_calls);
    if (having != nullptr) CollectAggregates(*having, agg_calls);
    std::unordered_map<std::string, size_t> agg_slots;
    std::vector<ra::AggregateSpec> specs;
    for (const AstExpr* call : agg_calls) {
      const std::string key = call->ToString();
      if (agg_slots.count(key) > 0) continue;
      ra::AggregateSpec spec;
      spec.kind = ToSpecKind(call->agg_func);
      if (call->agg_argument != nullptr) {
        spec.argument = LowerScalar(*call->agg_argument, scope);
      }
      spec.output_name = key;
      agg_slots[key] = group_cols.size() + specs.size();
      specs.push_back(std::move(spec));
    }
    plan = std::make_unique<ra::AggregateNode>(std::move(plan), group_cols,
                                               std::move(specs));
    // HAVING over the aggregate output.
    if (having != nullptr) {
      plan = std::make_unique<ra::SelectNode>(
          std::move(plan),
          LowerOverAggregate(*having, scope, agg_slots, group_slots));
    }
    // SELECT list over the aggregate output. Display names come from the
    // original (unsimplified) expressions so folding cannot rename columns.
    std::vector<ra::ExprPtr> outputs;
    std::vector<std::string> names;
    for (size_t i = 0; i < items.size(); ++i) {
      outputs.push_back(
          LowerOverAggregate(*items[i].expr, scope, agg_slots, group_slots));
      names.push_back(DeriveName(stmt.items[i]));
    }
    DedupeNames(&names);
    plan = std::make_unique<ra::ProjectNode>(std::move(plan),
                                             std::move(outputs), names);
  } else if (!stmt.select_star) {
    std::vector<ra::ExprPtr> outputs;
    std::vector<std::string> names;
    for (size_t i = 0; i < items.size(); ++i) {
      outputs.push_back(LowerScalar(*items[i].expr, scope));
      names.push_back(DeriveName(stmt.items[i]));
    }
    DedupeNames(&names);
    plan = std::make_unique<ra::ProjectNode>(std::move(plan),
                                             std::move(outputs), names);
  }

  if (stmt.distinct) plan = std::make_unique<ra::DistinctNode>(std::move(plan));

  if (!stmt.order_by.empty()) {
    std::vector<size_t> keys;
    for (const auto& item : stmt.order_by) {
      keys.push_back(plan->output_schema().RequireIndexOf(item.column));
    }
    plan = std::make_unique<ra::OrderByNode>(std::move(plan), std::move(keys),
                                             stmt.order_ascending);
  }
  if (stmt.limit.has_value()) {
    plan = std::make_unique<ra::LimitNode>(std::move(plan), *stmt.limit);
  }
  return plan;
}

ra::PlanPtr PlanQuery(const std::string& query, const Database& db) {
  return Bind(Parse(query), db);
}

}  // namespace sql
}  // namespace fgpdb
