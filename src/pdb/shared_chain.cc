#include "pdb/shared_chain.h"

#include <algorithm>
#include <unordered_set>

#include "ra/executor.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fgpdb {
namespace pdb {

namespace {

std::vector<Tuple> DistinctTuples(const std::vector<Tuple>& bag) {
  std::unordered_set<Tuple, TupleHasher> seen;
  std::vector<Tuple> out;
  for (const Tuple& t : bag) {
    if (seen.insert(t).second) out.push_back(t);
  }
  return out;
}

}  // namespace

SharedChainEvaluator::SharedChainEvaluator(ProbabilisticDatabase* pdb,
                                           infer::Proposal* proposal,
                                           EvaluatorOptions options,
                                           bool materialized)
    : pdb_(pdb),
      options_(options),
      materialized_(materialized),
      steps_per_sample_(options.steps_per_sample) {
  FGPDB_CHECK(pdb_ != nullptr);
  // A null proposal defers chain construction to EnableSharding (which
  // builds per-shard proposals from the plan's factory).
  if (proposal != nullptr) sampler_ = pdb_->MakeSampler(proposal, options_.seed);
}

void SharedChainEvaluator::EnableSharding(const ShardPlan& plan,
                                          ShardedExecution exec) {
  FGPDB_CHECK(!initialized_) << "EnableSharding must precede Initialize()";
  FGPDB_CHECK(sampler_ == nullptr)
      << "construct with a nullptr proposal to enable sharding";
  FGPDB_CHECK(runner_ == nullptr);
  FGPDB_CHECK(plan.has_plan()) << "ShardPlan has no proposal factory";
  FGPDB_CHECK_GT(plan.num_shards, 0u);
  std::vector<std::unique_ptr<infer::Proposal>> proposals;
  proposals.reserve(plan.num_shards);
  for (size_t s = 0; s < plan.num_shards; ++s) {
    proposals.push_back(plan.make_proposal(*pdb_, s));
  }
  runner_ = std::make_unique<infer::ShardRunner>(
      pdb_->model(), &pdb_->world(), std::move(proposals), plan.partition,
      infer::ShardRunnerOptions{options_.seed, exec.use_threads,
                                exec.max_threads});
}

void SharedChainEvaluator::StepChain(size_t n) {
  if (runner_ != nullptr) {
    // Shard chains advance the world privately, then their buffered
    // accepted-jump streams drain in shard order into the same mirror +
    // accumulator path the serial sampler's listener feeds.
    runner_->Step(n, [this](const std::vector<factor::AppliedAssignment>&
                                applied) { pdb_->MirrorApplied(applied); });
  } else {
    sampler_->Run(n);
  }
}

size_t SharedChainEvaluator::AddQuery(const ra::PlanNode* plan) {
  FGPDB_CHECK(plan != nullptr);
  Slot slot;
  slot.plan = plan;
  if (tracking_) slot.stats = std::make_unique<MarginalErrorStats>();
  if (materialized_) {
    slot.view = std::make_unique<view::MaterializedView>(*plan);
    for (const auto& [table, scans] : slot.view->subscriptions()) {
      subscriptions_[table] += scans;
    }
    if (initialized_) {
      // Bring the chain's existing views current (the accumulator may hold
      // deltas from steps taken since the last drain), then evaluate the
      // new view against the same world. No sample is observed here —
      // registration never advances any query's marginals.
      pdb_->TakeDeltas(&delta_buf_);
      for (Slot& existing : slots_) existing.view->Apply(delta_buf_);
      slot.view->Initialize(pdb_->db());
    }
  }
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void SharedChainEvaluator::Initialize() {
  FGPDB_CHECK(!initialized_);
  FGPDB_CHECK(sampler_ != nullptr || runner_ != nullptr)
      << "construct with a proposal or call EnableSharding first";
  if (runner_ != nullptr) {
    // Detached burn-in: the world advances without buffering its ~40·n
    // accepted jumps, then one full StoreWorld resynchronizes the tables.
    // End state is identical to a mirrored burn-in + DiscardDeltas (the
    // discarded deltas were never observable).
    runner_->RunBurnIn(options_.burn_in);
    pdb_->binding().StoreWorld(pdb_->world(), &pdb_->db());
  } else {
    sampler_->Run(options_.burn_in);
  }
  pdb_->DiscardDeltas();
  if (materialized_) {
    // The one exhaustive query per view over the initial world (Alg. 1
    // line 2) — K queries share the burn-in above.
    for (Slot& slot : slots_) slot.view->Initialize(pdb_->db());
  }
  initialized_ = true;
}

bool SharedChainEvaluator::ViewTouched(const view::MaterializedView& view,
                                       const view::DeltaSet& deltas) {
  bool touched = false;
  deltas.ForEachTable([&](const std::string& table,
                          const view::DeltaMultiset& delta) {
    if (touched || delta.empty()) return;
    if (view.subscriptions().count(table) > 0) touched = true;
  });
  return touched;
}

void SharedChainEvaluator::ObserveSample(Slot* slot) {
  std::vector<Tuple> distinct;
  if (materialized_) {
    distinct.reserve(slot->view->contents().distinct_size());
    slot->view->contents().ForEach(
        [&](const Tuple& t, int64_t) { distinct.push_back(t); });
  } else {
    distinct = DistinctTuples(ra::Execute(*slot->plan, pdb_->db()));
  }
  slot->answer.ObserveSampleContaining(distinct);
  if (slot->stats != nullptr) slot->stats->ObserveSample(distinct);
}

void SharedChainEvaluator::MaybeFreeze(Slot* slot) {
  if (!tracking_ || slot->converged) return;
  if (slot->answer.num_samples() < convergence_.min_samples) return;
  if (slot->stats->MaxHalfWidth(z_) > convergence_.eps) return;
  // The bound holds: freeze the slot. Its view is paused (Apply becomes a
  // short-circuit) and its tables leave the chain-level union map, so the
  // routed fan-out stops paying for this query entirely.
  slot->converged = true;
  ++num_converged_;
  if (slot->view != nullptr) {
    slot->view->set_paused(true);
    for (const auto& [table, scans] : slot->view->subscriptions()) {
      const auto it = subscriptions_.find(table);
      if (it == subscriptions_.end()) continue;
      it->second -= std::min(it->second, scans);
      if (it->second == 0) subscriptions_.erase(it);
    }
  }
}

void SharedChainEvaluator::EnableConvergenceTracking(
    const ConvergenceOptions& options) {
  FGPDB_CHECK(!initialized_)
      << "EnableConvergenceTracking must precede Initialize()";
  FGPDB_CHECK_GT(options.eps, 0.0);
  tracking_ = true;
  convergence_ = options;
  z_ = infer::ZForConfidence(options.confidence);
  for (Slot& slot : slots_) {
    if (slot.stats == nullptr) {
      slot.stats = std::make_unique<MarginalErrorStats>();
    }
  }
}

double SharedChainEvaluator::MaxHalfWidth(size_t slot) const {
  FGPDB_CHECK(tracking_);
  return slots_.at(slot).stats->MaxHalfWidth(z_);
}

uint64_t SharedChainEvaluator::RunUntilConverged(uint64_t max_samples) {
  FGPDB_CHECK(tracking_)
      << "RunUntilConverged requires EnableConvergenceTracking";
  return RunQuantum(max_samples);
}

uint64_t SharedChainEvaluator::RunQuantum(uint64_t max_samples) {
  if (!initialized_) Initialize();
  uint64_t drawn = 0;
  while (drawn < max_samples) {
    if (tracking_ && all_converged()) break;
    DrawSample();
    ++drawn;
  }
  return drawn;
}

void SharedChainEvaluator::DrawSample() {
  FGPDB_CHECK(initialized_);
  Stopwatch walk_timer;
  StepChain(steps_per_sample_);
  const double walk_seconds = walk_timer.ElapsedSeconds();

  if (!materialized_) {
    pdb_->DiscardDeltas();
    for (Slot& slot : slots_) {
      if (slot.converged) continue;  // frozen: answer already within ±eps
      ObserveSample(&slot);
      MaybeFreeze(&slot);
    }
    return;
  }

  // One drain, K views: the accumulator expands to per-table Δ−/Δ+ once
  // and the same DeltaSet is routed through every registered view. A view
  // none of whose subscribed tables were touched is skipped without being
  // entered at all.
  Stopwatch apply_timer;
  pdb_->TakeDeltas(&delta_buf_);
  for (Slot& slot : slots_) {
    if (slot.converged) continue;  // drained: paused view, no apply cost
    if (ViewTouched(*slot.view, delta_buf_)) {
      slot.view->Apply(delta_buf_);
    } else {
      ++views_skipped_;
    }
  }
  last_apply_seconds_ = apply_timer.ElapsedSeconds();
  for (Slot& slot : slots_) {
    if (slot.converged) continue;
    ObserveSample(&slot);
    MaybeFreeze(&slot);
  }

  if (options_.adaptive_thinning) {
    // Same multiplicative controller as the single-query evaluator, fed by
    // the fanned-out apply cost: halve k when the delta path is cheap
    // relative to walking, double it when expensive.
    const double total = walk_seconds + last_apply_seconds_;
    if (total > 0.0) {
      const double fraction = last_apply_seconds_ / total;
      if (fraction < options_.target_eval_fraction / 2.0) {
        steps_per_sample_ = std::max(options_.min_steps_per_sample,
                                     steps_per_sample_ / 2);
      } else if (fraction > options_.target_eval_fraction * 2.0) {
        steps_per_sample_ = std::min(options_.max_steps_per_sample,
                                     steps_per_sample_ * 2);
      }
    }
  }
}

void SharedChainEvaluator::Run(uint64_t n) {
  if (!initialized_) Initialize();
  for (uint64_t i = 0; i < n; ++i) DrawSample();
}

std::vector<Tuple> SharedChainEvaluator::CurrentAnswerSet(size_t slot) const {
  const Slot& s = slots_.at(slot);
  if (materialized_) {
    std::vector<Tuple> distinct;
    s.view->contents().ForEach(
        [&](const Tuple& t, int64_t) { distinct.push_back(t); });
    return distinct;
  }
  return DistinctTuples(ra::Execute(*s.plan, pdb_->db()));
}

const view::MaterializedView& SharedChainEvaluator::materialized_view(
    size_t slot) const {
  FGPDB_CHECK(materialized_);
  return *slots_.at(slot).view;
}

}  // namespace pdb
}  // namespace fgpdb
