// SQL front-end tests: lexer, parser, binder, and end-to-end execution of
// the paper's query shapes against a toy table.
#include <gtest/gtest.h>

#include "ra/executor.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_helpers.h"

namespace fgpdb {
namespace sql {
namespace {

using fgpdb::testing::MakeEmpTable;
using fgpdb::testing::ToMultiset;

TEST(LexerTest, TokenKinds) {
  const auto tokens = Lex("SELECT x, COUNT(*) FROM t WHERE a='it''s' AND b >= 3.5");
  ASSERT_GT(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_TRUE(tokens[2].IsSymbol(","));
  EXPECT_TRUE(tokens[3].IsKeyword("COUNT"));
  // The escaped quote literal.
  bool found_string = false;
  for (const auto& t : tokens) {
    if (t.type == TokenType::kString) {
      EXPECT_EQ(t.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, OperatorsAndNumbers) {
  const auto tokens = Lex("a <> b <= c >= d != e 42 3.14");
  size_t symbols = 0;
  for (const auto& t : tokens) {
    if (t.type == TokenType::kSymbol) ++symbols;
  }
  EXPECT_EQ(symbols, 4u);  // <>, <=, >=, <> (from !=).
  EXPECT_EQ(tokens[tokens.size() - 3].type, TokenType::kInteger);
  EXPECT_EQ(tokens[tokens.size() - 2].type, TokenType::kFloat);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  const auto tokens = Lex("select From wHeRe");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[2].IsKeyword("WHERE"));
}

TEST(LexerTest, UnterminatedStringIsFatal) {
  EXPECT_DEATH(Lex("SELECT 'oops"), "unterminated string");
}

TEST(ParserTest, BasicSelect) {
  const auto stmt = Parse("SELECT STRING FROM TOKEN WHERE LABEL = 'B-PER'");
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].expr->column, "STRING");
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].table, "TOKEN");
  EXPECT_EQ(stmt.from[0].alias, "TOKEN");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->ToString(), "(LABEL = 'B-PER')");
}

TEST(ParserTest, AliasesAndQualifiedColumns) {
  const auto stmt = Parse(
      "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.DOC_ID = T2.DOC_ID");
  ASSERT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.from[0].alias, "T1");
  EXPECT_EQ(stmt.items[0].expr->qualifier, "T2");
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  const auto stmt = Parse(
      "SELECT DEPT, COUNT(*) AS N FROM EMP GROUP BY DEPT "
      "HAVING COUNT(*) > 1 ORDER BY DEPT DESC LIMIT 3");
  EXPECT_EQ(stmt.items[1].alias, "N");
  ASSERT_EQ(stmt.group_by.size(), 1u);
  ASSERT_NE(stmt.having, nullptr);
  EXPECT_TRUE(stmt.having->ContainsAggregate());
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_FALSE(stmt.order_ascending);
  EXPECT_EQ(*stmt.limit, 3u);
}

TEST(ParserTest, OperatorPrecedence) {
  const auto stmt = Parse("SELECT A FROM T WHERE A = 1 OR B = 2 AND C = 3");
  // AND binds tighter than OR.
  EXPECT_EQ(stmt.where->ToString(),
            "((A = 1) OR ((B = 2) AND (C = 3)))");
}

TEST(ParserTest, ArithmeticPrecedence) {
  const auto stmt = Parse("SELECT A + B * 2 FROM T");
  EXPECT_EQ(stmt.items[0].expr->ToString(), "(A + (B * 2))");
}

TEST(ParserTest, CountIfExtension) {
  const auto stmt = Parse(
      "SELECT DOC_ID FROM TOKEN GROUP BY DOC_ID "
      "HAVING COUNT_IF(LABEL = 'B-PER') = COUNT_IF(LABEL = 'B-ORG')");
  ASSERT_NE(stmt.having, nullptr);
  EXPECT_EQ(stmt.having->lhs->kind, AstKind::kAggregate);
  EXPECT_EQ(stmt.having->lhs->agg_func, AggFunc::kCountIf);
}

TEST(ParserTest, TrailingGarbageIsFatal) {
  EXPECT_DEATH(Parse("SELECT A FROM T zzz yyy"), "trailing input");
}

TEST(ParserTest, MissingFromIsFatal) {
  EXPECT_DEATH(Parse("SELECT A"), "expected FROM");
}

// --- Binder + executor end-to-end -------------------------------------------

class SqlEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override { MakeEmpTable(&db_); }

  std::vector<Tuple> Run(const std::string& query) {
    return ra::Execute(*PlanQuery(query, db_), db_);
  }

  Database db_;
};

TEST_F(SqlEndToEndTest, SelectProject) {
  const auto rows = Run("SELECT NAME FROM EMP WHERE DEPT = 'eng'");
  EXPECT_EQ(ToMultiset(rows).Count(Tuple{Value::String("ann")}), 1);
  EXPECT_EQ(ToMultiset(rows).Count(Tuple{Value::String("bob")}), 1);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, SelectStar) {
  const auto rows = Run("SELECT * FROM EMP WHERE SALARY > 85");
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].arity(), 4u);
}

TEST_F(SqlEndToEndTest, GlobalCount) {
  const auto rows = Run("SELECT COUNT(*) FROM EMP WHERE DEPT = 'ops'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0), Value::Int(2));
}

TEST_F(SqlEndToEndTest, GroupByHaving) {
  const auto rows = Run(
      "SELECT DEPT, COUNT(*) FROM EMP GROUP BY DEPT HAVING COUNT(*) >= 2");
  EXPECT_EQ(rows.size(), 2u);  // eng and ops.
}

TEST_F(SqlEndToEndTest, CountIfEquality) {
  // Departments where the number of 80+-salary employees equals the number
  // of sub-80 employees: ops has two at 80 (2 vs 0 -> no), hr 1 at 70
  // (0 vs 1 -> no), eng both >= 80 (2 vs 0 -> no). Adjust: >= 90 vs < 90.
  const auto rows = Run(
      "SELECT DEPT FROM EMP GROUP BY DEPT "
      "HAVING COUNT_IF(SALARY >= 90) = COUNT_IF(SALARY < 90)");
  // eng: 2 vs 0 -> no; ops: 0 vs 2 -> no; hr: 0 vs 1 -> no.
  EXPECT_TRUE(rows.empty());
}

TEST_F(SqlEndToEndTest, SelfJoinWithPushdown) {
  const auto rows = Run(
      "SELECT T2.NAME FROM EMP T1, EMP T2 "
      "WHERE T1.NAME = 'ann' AND T1.DEPT = T2.DEPT AND T2.NAME <> 'ann'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0), Value::String("bob"));
}

TEST_F(SqlEndToEndTest, JoinKeyExtractionProducesHashJoinPlan) {
  const auto plan = PlanQuery(
      "SELECT T1.NAME FROM EMP T1, EMP T2 WHERE T1.DEPT = T2.DEPT", db_);
  EXPECT_NE(plan->ToString().find("HashJoin"), std::string::npos);
}

TEST_F(SqlEndToEndTest, SingleTablePredicatesArePushedBelowJoin) {
  const auto plan = PlanQuery(
      "SELECT T1.NAME FROM EMP T1, EMP T2 "
      "WHERE T1.DEPT = T2.DEPT AND T1.SALARY > 80 AND T2.SALARY > 80",
      db_);
  // Each Select must sit below the join (on the scan side).
  const std::string s = plan->ToString();
  const size_t join_pos = s.find("HashJoin");
  ASSERT_NE(join_pos, std::string::npos);
  EXPECT_GT(s.find("Select", join_pos), join_pos);
}

TEST_F(SqlEndToEndTest, OrderByDescLimit) {
  const auto rows =
      Run("SELECT NAME, SALARY FROM EMP ORDER BY SALARY DESC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at(0), Value::String("ann"));
}

TEST_F(SqlEndToEndTest, Distinct) {
  const auto rows = Run("SELECT DISTINCT DEPT FROM EMP");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlEndToEndTest, AggregateArithmeticInSelect) {
  const auto rows =
      Run("SELECT DEPT, SUM(SALARY) / COUNT(*) FROM EMP GROUP BY DEPT");
  ASSERT_EQ(rows.size(), 3u);
  const auto bag = ToMultiset(rows);
  EXPECT_EQ(bag.Count(Tuple{Value::String("eng"), Value::Double(95.0)}), 1);
}

TEST_F(SqlEndToEndTest, UnknownColumnIsFatal) {
  EXPECT_DEATH(Run("SELECT BOGUS FROM EMP"), "unknown column");
}

TEST_F(SqlEndToEndTest, AmbiguousColumnIsFatal) {
  EXPECT_DEATH(Run("SELECT NAME FROM EMP T1, EMP T2"), "ambiguous column");
}

TEST_F(SqlEndToEndTest, NonGroupedColumnIsFatal) {
  EXPECT_DEATH(Run("SELECT NAME, COUNT(*) FROM EMP"),
               "must appear in GROUP BY");
}

}  // namespace
}  // namespace sql
}  // namespace fgpdb
