// Entity resolution example (paper Figure 1, bottom row; §3.4): cluster
// name mentions with a pairwise factor model, sampling partitions with the
// constraint-preserving split-merge proposal. The MENTION relation stores
// the single current clustering; Metropolis-Hastings recovers the posterior
// over co-reference decisions, reported as pairwise match probabilities.
//
//   ./examples/entity_resolution
#include <iomanip>
#include <iostream>

#include "ie/entity_resolution.h"
#include "infer/metropolis_hastings.h"
#include "pdb/probabilistic_database.h"
#include "util/stopwatch.h"

using namespace fgpdb;

int main() {
  // The paper's own example mentions (Figure 1 Pane C) plus a few more.
  const std::vector<std::string> mentions = {
      "John Smith",  "J. Smith",   "J. Simms",  "Jon Smith",
      "Acme Corp",   "Acme",       "Acme Inc",  "Global Partners",
      "G. Partners", "Kunming",
  };
  ie::EntityResolutionModel model(mentions);

  // Store the single world in a MENTION(ID, CLUSTER) relation, as the paper
  // stores clusterings (Figure 1 Pane C).
  pdb::ProbabilisticDatabase db;
  Schema schema(
      {Attribute{"ID", ValueType::kInt64},
       Attribute{"NAME", ValueType::kString},
       Attribute{"CLUSTER", ValueType::kInt64}},
      0);
  Table* table = db.db().CreateTable("MENTION", std::move(schema));
  auto cluster_domain = std::make_shared<factor::Domain>(
      factor::Domain::OfRange(static_cast<int64_t>(mentions.size())));
  for (size_t i = 0; i < mentions.size(); ++i) {
    const RowId row = table->Insert(
        Tuple{Value::Int(static_cast<int64_t>(i)), Value::String(mentions[i]),
              Value::Int(static_cast<int64_t>(i))});  // Singleton clusters.
    db.binding().Bind("MENTION", row, 2, cluster_domain);
  }
  db.SyncWorldFromDatabase();
  db.set_model(&model);

  // Sample partitions with split-merge.
  ie::SplitMergeProposal proposal(model);
  auto sampler = db.MakeSampler(&proposal, /*seed=*/7);
  Stopwatch timer;
  sampler->Run(20000);  // Burn-in.
  db.DiscardDeltas();

  // Pairwise co-reference marginals.
  std::vector<std::vector<double>> together(
      mentions.size(), std::vector<double>(mentions.size(), 0.0));
  const int kSamples = 50000;
  for (int s = 0; s < kSamples; ++s) {
    sampler->Step();
    for (size_t i = 0; i < mentions.size(); ++i) {
      for (size_t j = i + 1; j < mentions.size(); ++j) {
        if (db.world().Get(static_cast<factor::VarId>(i)) ==
            db.world().Get(static_cast<factor::VarId>(j))) {
          together[i][j] += 1.0;
        }
      }
    }
  }
  db.DiscardDeltas();
  std::cout << "Sampled " << kSamples << " partitions in "
            << timer.ElapsedSeconds() << "s (acceptance rate "
            << sampler->acceptance_rate() << ")\n\n";

  std::cout << "Pairwise coreference probabilities (>= 0.05):\n";
  for (size_t i = 0; i < mentions.size(); ++i) {
    for (size_t j = i + 1; j < mentions.size(); ++j) {
      const double p = together[i][j] / kSamples;
      if (p >= 0.05) {
        std::cout << "  " << std::setw(16) << mentions[i] << " ~ "
                  << std::setw(16) << mentions[j] << "  " << p << "\n";
      }
    }
  }

  // The maximum-probability clustering seen in the final state.
  std::cout << "\nFinal sampled clustering (stored in the MENTION relation):\n";
  for (const auto& cluster : model.Clusters(db.world())) {
    std::cout << "  {";
    for (size_t m = 0; m < cluster.size(); ++m) {
      std::cout << (m > 0 ? ", " : "") << mentions[cluster[m]];
    }
    std::cout << "}\n";
  }
  // Confirm the relation mirrors the world (the §3 invariant).
  table->Scan([&](RowId row, const Tuple& t) {
    FGPDB_CHECK_EQ(static_cast<uint32_t>(t.at(2).AsInt()),
                   db.world().Get(static_cast<factor::VarId>(row)));
  });
  std::cout << "\nMENTION relation verified in sync with the sampled world.\n";
  return 0;
}
