// Hashing utilities used by tuple keys, multiset maps, and feature vectors.
//
// Everything here is constexpr so that hashes of compile-time-known inputs
// (e.g. the feature-template space names in src/ie) fold to constants.
#ifndef FGPDB_UTIL_HASH_H_
#define FGPDB_UTIL_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace fgpdb {

/// 64-bit FNV-1a over a string view (constexpr-friendly byte loop).
constexpr uint64_t HashString(std::string_view s,
                              uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// 64-bit FNV-1a over raw bytes.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t seed = 0xcbf29ce484222325ULL) {
  return HashString(
      std::string_view(static_cast<const char*>(data), len), seed);
}

/// Mixes a 64-bit value (finalizer from MurmurHash3).
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combination of two hashes.
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace fgpdb

#endif  // FGPDB_UTIL_HASH_H_
