#include "util/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace fgpdb {

void LatencyHistogram::BucketBounds(uint32_t index, uint64_t* lower,
                                    uint64_t* upper) {
  const uint32_t octave = index / kSubBuckets;
  const uint32_t sub = index % kSubBuckets;
  if (octave == 0) {
    *lower = sub;
    *upper = sub + 1;
    return;
  }
  const uint64_t width = uint64_t{1} << (octave - 1);
  *lower = (uint64_t{kSubBuckets} + sub) * width;
  *upper = *lower + width;
}

double LatencyHistogram::QuantileNanos(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the order statistic we report: ceil(q·count), at least 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      uint64_t lower = 0, upper = 0;
      BucketBounds(i, &lower, &upper);
      // The top bucket is open-ended under clamping; the exact max is a
      // tighter (and honest) representative there.
      if (i == kNumBuckets - 1 && max_nanos_ >= upper) {
        return static_cast<double>(max_nanos_);
      }
      return (static_cast<double>(lower) + static_cast<double>(upper)) / 2.0;
    }
  }
  return static_cast<double>(max_nanos_);  // Unreachable: counts_ covers all.
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (uint32_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  max_nanos_ = std::max(max_nanos_, other.max_nanos_);
}

void LatencyHistogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  max_nanos_ = 0;
}

}  // namespace fgpdb
