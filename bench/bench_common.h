// Shared fixtures for the figure-reproduction benches.
//
// Scale: every bench honors FGPDB_BENCH_SCALE (default 1.0) so the suite
// finishes in minutes on one core by default but can be pushed toward the
// paper's 10M-tuple runs (e.g. FGPDB_BENCH_SCALE=10). See EXPERIMENTS.md
// for the mapping between default sizes and the paper's.
#ifndef FGPDB_BENCH_BENCH_COMMON_H_
#define FGPDB_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/query_evaluator.h"
#include "sql/binder.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace fgpdb {
namespace bench {

inline double BenchScale() {
  const char* env = std::getenv("FGPDB_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

/// The ONE seed a bench run is reproducible from: `--seed=N` on the command
/// line beats the FGPDB_BENCH_SEED environment variable beats `fallback`.
/// Every stochastic stream in a bench (corpus, ground truth, each evaluator,
/// each ablation row) must derive its own seed from this value via
/// DeriveSeed — never hardcode a second literal, or two streams silently
/// share (or silently decouple) and the run stops being reproducible from
/// the printed master seed.
inline uint64_t MasterSeed(int argc, char** argv, uint64_t fallback = 2004) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      return std::strtoull(arg.c_str() + 7, nullptr, 10);
    }
  }
  const char* env = std::getenv("FGPDB_BENCH_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

// Stream-seed derivation lives in util/rng.h (fgpdb::DeriveSeed): one
// definition of the math for benches and the sharded/parallel execution
// layers alike, so printed master seeds reproduce everything. Unqualified
// DeriveSeed in benches resolves to it through the enclosing namespace.

/// Bench-binary preamble: resolves the master seed, prints the one line a
/// run is reproducible from, and strips `--seed=N` out of argv (Google
/// Benchmark rejects flags it does not know). Call first thing in main.
inline uint64_t InitBenchSeed(int* argc, char** argv, const char* tag) {
  const uint64_t master = MasterSeed(*argc, argv);
  std::cout << "[" << tag << "] master seed " << master
            << " (reproduce with --seed=" << master << ")\n";
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]).rfind("--seed=", 0) == 0) continue;
    argv[out++] = argv[i];
  }
  *argc = out;
  return master;
}

/// A ready-to-sample NER probabilistic database: corpus, TOKEN relation,
/// skip-chain CRF with corpus-statistics weights (standing in for the
/// SampleRank-trained weights so benches skip training time — §5.2 puts
/// training at minutes, orthogonal to query-evaluation cost).
struct NerBench {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit NerBench(size_t num_tokens, uint64_t seed = 2004) {
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 250, .seed = seed});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  /// `prefetch` arms the proposal's speculative site prefetch against this
  /// bench's model (bitwise-invisible to the trajectory; ablation knob).
  std::unique_ptr<ie::DocumentBatchProposal> MakeProposal(
      size_t proposals_per_batch = 2000, bool prefetch = false) const {
    auto proposal = std::make_unique<ie::DocumentBatchProposal>(
        &tokens.docs,
        ie::NerProposalOptions{.proposals_per_batch = proposals_per_batch});
    if (prefetch) proposal->EnablePrefetch(model.get());
    return proposal;
  }
};

/// Walk-steps needed to mix away from the all-'O' initialization. The §5.1
/// kernel proposes a uniform label on a uniform batch variable, so a
/// mislabeled token gets its correct label proposed with probability ~1/9
/// per visit; reaching stationarity needs a few dozen passes over the
/// corpus. ~40 proposals per token is comfortably past the transient.
inline uint64_t DefaultBurnIn(size_t num_tokens) {
  return static_cast<uint64_t>(40) * num_tokens;
}

/// Estimates the ground-truth answer by a long materialized run on a clone
/// (the paper estimates truth the same way: a much longer sampling run).
inline pdb::QueryAnswer EstimateGroundTruth(const NerBench& bench,
                                            const std::string& query,
                                            uint64_t samples,
                                            uint64_t steps_per_sample,
                                            uint64_t seed = 314159) {
  auto world = bench.tokens.pdb->Clone();
  ra::PlanPtr plan = sql::PlanQuery(query, world->db());
  auto proposal = bench.MakeProposal();
  pdb::MaterializedQueryEvaluator evaluator(
      world.get(), proposal.get(), plan.get(),
      {.steps_per_sample = steps_per_sample,
       .burn_in = DefaultBurnIn(bench.tokens.num_tokens()),
       .seed = seed});
  evaluator.Run(samples);
  return evaluator.answer();
}

/// Runs `evaluator` until its answer halves the squared error of the first
/// (single-sample) approximation against `truth` — the paper's Fig. 4(a)
/// "query evaluation time" metric. Returns elapsed seconds; gives up after
/// `max_samples` (returns the elapsed time, flagging *converged=false).
inline double TimeToHalfError(pdb::QueryEvaluator& evaluator,
                              const pdb::QueryAnswer& truth,
                              uint64_t max_samples, bool* converged) {
  Stopwatch timer;
  evaluator.Initialize();
  evaluator.DrawSample();
  const double initial_error = evaluator.answer().SquaredError(truth);
  const double target = initial_error / 2.0;
  *converged = false;
  for (uint64_t i = 1; i < max_samples; ++i) {
    evaluator.DrawSample();
    if (evaluator.answer().SquaredError(truth) <= target) {
      *converged = true;
      break;
    }
  }
  return timer.ElapsedSeconds();
}

}  // namespace bench
}  // namespace fgpdb

#endif  // FGPDB_BENCH_BENCH_COMMON_H_
