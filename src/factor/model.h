// Model: the scoring interface MCMC inference runs against.
//
// The key operation is LogScoreDelta — log π(w')/π(w) for a hypothesized
// Change — which by the cancellation argument of paper Appendix 9.2 only
// needs the factors whose arguments the change touches. Explicitly
// instantiated FactorGraphs implement it via variable→factor adjacency;
// templated models (e.g. the skip-chain CRF in src/ie) implement it lazily
// without ever materializing the graph, exactly as §3.4 prescribes.
//
// Scratch-reuse protocol: a walk takes millions of steps, and the touched-
// factor enumeration needs working buffers whose contents never outlive one
// call. Models expose an opaque per-caller ScoreScratch (MakeScratch());
// the *caller* — one MetropolisHastings chain, one SampleRank trainer —
// owns it and passes it to every scoring call, so buffers are reused
// allocation-free across steps while a model shared by parallel COW chains
// stays race-free (each chain brings its own scratch).
#ifndef FGPDB_FACTOR_MODEL_H_
#define FGPDB_FACTOR_MODEL_H_

#include <memory>
#include <vector>

#include "factor/feature_vector.h"
#include "factor/world.h"

namespace fgpdb {
namespace factor {

/// Opaque reusable working memory for a model's scoring calls. Concrete
/// models define their own subtype; a scratch may only be passed back to
/// the model that created it. Scratch contents carry no state between
/// calls — it is purely an allocation cache.
class ScoreScratch {
 public:
  virtual ~ScoreScratch() = default;
};

class Model {
 public:
  virtual ~Model() = default;

  /// log π(w') − log π(w) for world w and hypothesized change to w'.
  /// ZX cancels (Eq. 3), so this is a plain factor-score difference.
  virtual double LogScoreDelta(const World& world, const Change& change) const = 0;

  /// Allocation-free variant: `scratch` must come from this model's
  /// MakeScratch() (nullptr is allowed and falls back to the plain
  /// overload). Hot loops — the MH sampler, Gibbs conditionals — call
  /// this; the default forwards for models without scratch needs.
  virtual double LogScoreDelta(const World& world, const Change& change,
                               ScoreScratch* scratch) const {
    (void)scratch;
    return LogScoreDelta(world, change);
  }

  /// Creates reusable scoring scratch for one caller (one chain). Returns
  /// nullptr for models whose scoring needs no working buffers.
  virtual std::unique_ptr<ScoreScratch> MakeScratch() const { return nullptr; }

  /// Batched Gibbs conditional: fills `out[v]` with
  /// LogScoreDelta(world, {var ← v}) for every candidate value
  /// v ∈ [0, domain_size(var)) as ONE contiguous reduction, instead of
  /// domain_size separate delta calls. Each out[v] must be bitwise-equal to
  /// the per-candidate path (so out[world.Get(var)] == 0), which keeps a
  /// Gibbs chain's trajectory independent of which path computed the row.
  /// Returns false when the model has no fast path (the default); callers
  /// then fall back to per-candidate LogScoreDelta. `scratch` follows the
  /// LogScoreDelta contract (nullptr allowed).
  virtual bool ConditionalRow(const World& world, VarId var, double* out,
                              ScoreScratch* scratch) const {
    (void)world;
    (void)var;
    (void)out;
    (void)scratch;
    return false;
  }

  /// Cache warm-up hints for an upcoming scoring call at `var`. Both are
  /// best-effort and semantically no-ops: they may issue non-binding
  /// prefetches but never change any result, so callers are free to hint
  /// speculatively (e.g. for a *predicted* next site — a wrong prediction
  /// just wastes one prefetch). The contract splits in two because hints
  /// differ in what they may dereference:
  ///
  ///   PrefetchSite(var)        — address arithmetic only; never loads
  ///                              through memory that might be cold. Safe
  ///                              for sites that will be visited a step in
  ///                              the future (their lines are still cold).
  ///   PrefetchSiteOperands(var) — may read the site's (already-warmed)
  ///                              primary record to hint its dependent
  ///                              lines: weight-table rows, adjacency
  ///                              spans. Call it for the site about to be
  ///                              scored, after PrefetchSite had a step of
  ///                              lead time.
  virtual void PrefetchSite(const World& world, VarId var) const {
    (void)world;
    (void)var;
  }
  virtual void PrefetchSiteOperands(const World& world, VarId var) const {
    (void)world;
    (void)var;
  }

  /// Unnormalized log π(w) over the *entire* graph. Potentially expensive —
  /// used by exact inference, tests, and diagnostics, never by the sampler.
  virtual double LogScore(const World& world) const = 0;

  /// Locality contract for sharded execution: returns true iff EVERY factor
  /// of this model scores variables of a single part of `partition`
  /// (partition[v] = part index of variable v; partition.size() must equal
  /// num_variables()). When this holds, part-local MCMC chains are *exact* —
  /// a change confined to one part has a score delta computable from that
  /// part alone, so shard-local walks compose into one valid chain. Models
  /// whose factors can cross arbitrary parts (e.g. pairwise coreference
  /// affinities) keep the conservative default and force the sharded
  /// executor to fall back to a single shard.
  virtual bool FactorsRespectPartition(
      const std::vector<uint32_t>& partition) const {
    (void)partition;
    return false;
  }

  /// Number of hidden variables this model scores.
  virtual size_t num_variables() const = 0;

  /// Domain size of variable `var` (candidate values are [0, size)).
  virtual size_t domain_size(VarId var) const = 0;
};

/// A model whose score is φ(w)·θ for a sparse feature map φ and trainable
/// weights θ. SampleRank trains anything implementing this.
class FeatureModel : public Model {
 public:
  /// φ(w') − φ(w) restricted to factors touched by `change`.
  virtual void FeatureDelta(const World& world, const Change& change,
                            SparseVector* out) const = 0;

  /// Allocation-free variant; same scratch contract as LogScoreDelta.
  virtual void FeatureDelta(const World& world, const Change& change,
                            SparseVector* out, ScoreScratch* scratch) const {
    (void)scratch;
    FeatureDelta(world, change, out);
  }

  /// The trainable weights.
  virtual Parameters& parameters() = 0;
  virtual const Parameters& parameters() const = 0;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_MODEL_H_
