// Cache-line-conscious allocation for hot-path SoA blocks.
//
// The step kernel's working set (ie/token_hot_block.h) is packed into flat
// arrays whose base addresses must sit on cache-line boundaries, so that
// "one record = one line" arithmetic holds and hardware/software prefetch
// of a record never straddles two lines. std::vector's default allocator
// only guarantees alignof(std::max_align_t) (16 on x86-64); this allocator
// upgrades that to the line size via C++17 aligned operator new.
#ifndef FGPDB_UTIL_CACHELINE_H_
#define FGPDB_UTIL_CACHELINE_H_

#include <cstddef>
#include <new>
#include <vector>

namespace fgpdb {

/// The alignment the hot-block arrays are allocated at. 64 bytes is the
/// line size of every x86-64 and most AArch64 parts; over-aligning on
/// exotic hardware costs nothing but padding.
inline constexpr size_t kCacheLineBytes = 64;

/// Minimal std::allocator replacement returning cache-line-aligned blocks.
/// Equality is stateless: any two instances are interchangeable.
template <typename T>
class CacheLineAllocator {
 public:
  using value_type = T;

  CacheLineAllocator() = default;
  template <typename U>
  CacheLineAllocator(const CacheLineAllocator<U>&) {}

  T* allocate(size_t n) {
    constexpr std::align_val_t kAlign{
        alignof(T) > kCacheLineBytes ? alignof(T) : kCacheLineBytes};
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }

  void deallocate(T* p, size_t) noexcept {
    constexpr std::align_val_t kAlign{
        alignof(T) > kCacheLineBytes ? alignof(T) : kCacheLineBytes};
    ::operator delete(p, kAlign);
  }

  template <typename U>
  bool operator==(const CacheLineAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const CacheLineAllocator<U>&) const {
    return false;
  }
};

/// A std::vector whose backing storage starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, CacheLineAllocator<T>>;

/// Best-effort non-binding hint that `addr` will be read soon. A wrong or
/// null address is harmless (prefetch faults are suppressed by hardware),
/// which is what makes speculative next-site prefetching safe.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace fgpdb

#endif  // FGPDB_UTIL_CACHELINE_H_
