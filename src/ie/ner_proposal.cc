#include "ie/ner_proposal.h"

#include "ie/labels.h"
#include "util/logging.h"

namespace fgpdb {
namespace ie {

DocumentBatchProposal::DocumentBatchProposal(
    const std::vector<std::vector<factor::VarId>>* docs,
    NerProposalOptions options)
    : docs_(docs), options_(options) {
  FGPDB_CHECK(docs_ != nullptr);
  FGPDB_CHECK(!docs_->empty());
  FGPDB_CHECK_GT(options_.proposals_per_batch, 0u);
  FGPDB_CHECK_GT(options_.docs_per_batch, 0u);
}

void DocumentBatchProposal::ReloadBatch(Rng& rng) {
  batch_.clear();
  for (size_t i = 0; i < options_.docs_per_batch; ++i) {
    const auto& doc = (*docs_)[rng.UniformInt(docs_->size())];
    batch_.insert(batch_.end(), doc.begin(), doc.end());
  }
  proposals_since_reload_ = 0;
}

void DocumentBatchProposal::Propose(const factor::World& world, Rng& rng,
                                    factor::Change* change,
                                    double* log_ratio) {
  *log_ratio = 0.0;
  change->Clear();
  if (batch_.empty() || proposals_since_reload_ >= options_.proposals_per_batch) {
    ReloadBatch(rng);
  }
  ++proposals_since_reload_;
  // The batch IS the dense variable addressing: sites resolve by one index
  // into the preloaded VarId array, no hashing, and the caller's Change
  // buffer is reused — propose allocates only on the (rare) batch reload.
  const factor::VarId var = batch_[rng.UniformInt(batch_.size())];
  const uint32_t label = static_cast<uint32_t>(rng.UniformInt(kNumLabels));
  if (prefetch_model_ != nullptr) {
    // Pipeline the next proposal's site: between this draw pair and the
    // next site draw the sampler consumes 0 draws (accepted outright or
    // rejected at log_alpha >= 0) or 1 (the acceptance Uniform). Peek
    // cloned rngs down both branches and warm the predicted records while
    // the current site scores; a mispredicted branch — or a batch reload
    // landing in between — just wastes one prefetch. The real stream is
    // never advanced.
    Rng peek0 = rng;
    prefetch_model_->PrefetchSite(world,
                                  batch_[peek0.UniformInt(batch_.size())]);
    Rng peek1 = rng;
    peek1.Next();
    prefetch_model_->PrefetchSite(world,
                                  batch_[peek1.UniformInt(batch_.size())]);
    // The current site's record was warmed one proposal ago; chase it one
    // level deeper (weight row, partner span) before the scoring call.
    prefetch_model_->PrefetchSiteOperands(world, var);
  }
  change->Set(var, label);
}

}  // namespace ie
}  // namespace fgpdb
