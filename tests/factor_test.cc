// Factor graph library tests: domains, factors, graphs, and the key local-
// scoring property (Appendix 9.2): LogScoreDelta equals the full-score
// difference for arbitrary changes.
#include <gtest/gtest.h>

#include "factor/factor_graph.h"
#include "util/rng.h"

namespace fgpdb {
namespace factor {
namespace {

TEST(DomainTest, ConstructionAndLookup) {
  const Domain d = Domain::OfStrings({"a", "b", "c"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.value(1), Value::String("b"));
  EXPECT_EQ(*d.IndexOf(Value::String("c")), 2u);
  EXPECT_FALSE(d.IndexOf(Value::String("z")).has_value());
  EXPECT_DEATH(d.RequireIndexOf(Value::String("z")), "not in domain");
  const Domain r = Domain::OfRange(4);
  EXPECT_EQ(r.RequireIndexOf(Value::Int(3)), 3u);
}

TEST(DomainTest, DuplicateValueIsFatal) {
  EXPECT_DEATH(Domain::OfStrings({"a", "a"}), "duplicate domain value");
}

TEST(TableFactorTest, MixedRadixIndexing) {
  TableFactor f({0, 1}, {2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(f.LogScore({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(f.LogScore({0, 2}), 2.0);
  EXPECT_DOUBLE_EQ(f.LogScore({1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(f.LogScore({1, 2}), 5.0);
  f.SetLogScore({1, 2}, -7.0);
  EXPECT_DOUBLE_EQ(f.LogScore({1, 2}), -7.0);
}

TEST(TableFactorTest, SizeMismatchIsFatal) {
  EXPECT_DEATH(TableFactor({0}, {2}, {1.0, 2.0, 3.0}), "");
}

TEST(LambdaFactorTest, ClosureScoring) {
  LambdaFactor f({0, 1}, [](const std::vector<uint32_t>& v) {
    return v[0] == v[1] ? 1.5 : -0.5;
  });
  EXPECT_DOUBLE_EQ(f.LogScore({2, 2}), 1.5);
  EXPECT_DOUBLE_EQ(f.LogScore({0, 1}), -0.5);
}

FactorGraph MakeChainGraph(size_t n, size_t labels, uint64_t seed) {
  FactorGraph graph;
  auto domain = std::make_shared<Domain>(
      Domain::OfRange(static_cast<int64_t>(labels)));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) graph.AddVariable(domain);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> scores(labels);
    for (auto& s : scores) s = rng.Gaussian();
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{static_cast<VarId>(i)}, std::vector<size_t>{labels},
        std::move(scores)));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    std::vector<double> scores(labels * labels);
    for (auto& s : scores) s = rng.Gaussian();
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{static_cast<VarId>(i), static_cast<VarId>(i + 1)},
        std::vector<size_t>{labels, labels}, std::move(scores)));
  }
  return graph;
}

TEST(FactorGraphTest, AdjacencyTracksFactors) {
  FactorGraph graph = MakeChainGraph(4, 3, 1);
  // Middle variables touch one unary + two binary factors.
  EXPECT_EQ(graph.FactorsOf(1).size(), 3u);
  EXPECT_EQ(graph.FactorsOf(0).size(), 2u);
  EXPECT_EQ(graph.num_factors(), 4u + 3u);
  EXPECT_EQ(graph.num_variables(), 4u);
}

// Property: LogScoreDelta must equal the full-score difference for random
// single- and multi-variable changes (this is the identity that lets MH
// evaluate only touched factors — Appendix 9.2).
class ScoreDeltaProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScoreDeltaProperty, LocalDeltaEqualsFullDifference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  FactorGraph graph = MakeChainGraph(6, 4, seed);
  Rng rng(seed * 31 + 7);
  World world = graph.MakeWorld();
  for (size_t v = 0; v < world.size(); ++v) {
    world.Set(static_cast<VarId>(v), static_cast<uint32_t>(rng.UniformInt(4u)));
  }
  for (int trial = 0; trial < 50; ++trial) {
    Change change;
    const size_t num_changed = 1 + rng.UniformInt(3u);
    for (size_t c = 0; c < num_changed; ++c) {
      change.Set(static_cast<VarId>(rng.UniformInt(6u)),
                 static_cast<uint32_t>(rng.UniformInt(4u)));
    }
    const double local = graph.LogScoreDelta(world, change);
    World after = world;
    after.Apply(change);
    const double full = graph.LogScore(after) - graph.LogScore(world);
    ASSERT_NEAR(local, full, 1e-9) << "trial " << trial;
    world = after;  // Walk on.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreDeltaProperty, ::testing::Range(1, 9));

TEST(WorldTest, ApplyRecordsOldValues) {
  World world(3);
  world.Set(1, 5);
  Change change;
  change.Set(1, 7);
  change.Set(2, 9);
  std::vector<AppliedAssignment> applied;
  world.Apply(change, &applied);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0].old_value, 5u);
  EXPECT_EQ(applied[0].new_value, 7u);
  EXPECT_EQ(world.Get(1), 7u);
  EXPECT_EQ(world.Get(2), 9u);
}

TEST(WorldTest, PatchedWorldOverlaysWithoutMutation) {
  World world(2);
  world.Set(0, 1);
  Change change;
  change.Set(0, 3);
  PatchedWorld patched(world, change);
  EXPECT_EQ(patched.Get(0), 3u);
  EXPECT_EQ(patched.Get(1), 0u);
  EXPECT_EQ(world.Get(0), 1u);  // Base untouched.
}

TEST(SparseVectorTest, ConsolidateMergesAndDropsZeros) {
  SparseVector v;
  v.Add(5, 1.0);
  v.Add(3, 2.0);
  v.Add(5, -1.0);
  v.Add(3, 0.5);
  v.Consolidate();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.entries()[0].first, 3u);
  EXPECT_DOUBLE_EQ(v.entries()[0].second, 2.5);
}

TEST(ParametersTest, DotAndUpdate) {
  Parameters params;
  EXPECT_DOUBLE_EQ(params.Get(42), 0.0);  // Unknown features read as 0.
  SparseVector v;
  v.Add(1, 2.0);
  v.Add(2, -1.0);
  params.Set(1, 3.0);
  params.Set(2, 4.0);
  EXPECT_DOUBLE_EQ(params.Dot(v), 2.0 * 3.0 - 4.0);
  params.UpdateSparse(v, 0.5);
  EXPECT_DOUBLE_EQ(params.Get(1), 4.0);
  EXPECT_DOUBLE_EQ(params.Get(2), 3.5);
}

TEST(FeatureIdTest, DistinctSpacesAndRoles) {
  EXPECT_NE(MakeFeatureId("emission", 1, 2), MakeFeatureId("transition", 1, 2));
  EXPECT_NE(MakeFeatureId("emission", 1, 2), MakeFeatureId("emission", 2, 1));
  EXPECT_EQ(MakeFeatureId("bias", 7), MakeFeatureId("bias", 7));
}

}  // namespace
}  // namespace factor
}  // namespace fgpdb
