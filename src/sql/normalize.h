// The ONE normalization both plan caches key on.
//
// api::Session's per-instance prepared-statement cache and the
// cross-session serve::Server plan cache must agree on what "the same
// query" means, or a query prepared through one layer misses in the other.
// NormalizeForCache is that shared definition: two texts share a cache
// entry exactly when they tokenize identically — whitespace between tokens
// collapses to single spaces, keywords uppercase, `!=` canonicalizes to
// `<>`, and `--`/`/* */` comments vanish (the lexer treats them as token
// separators), while identifiers and string literals are preserved
// verbatim (identifier resolution against the catalog is case-sensitive).
#ifndef FGPDB_SQL_NORMALIZE_H_
#define FGPDB_SQL_NORMALIZE_H_

#include <string>

namespace fgpdb {
namespace sql {

/// The plan-cache key for `sql`. Fatal on malformed input (unterminated
/// string literal or block comment), like the lexer it is built on.
std::string NormalizeForCache(const std::string& sql);

}  // namespace sql
}  // namespace fgpdb

#endif  // FGPDB_SQL_NORMALIZE_H_
