#include "sql/ast.h"

#include "util/logging.h"

namespace fgpdb {
namespace sql {
namespace {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kCountIf:
      return "COUNT_IF";
    case AggFunc::kCountDistinct:
      return "COUNT_DISTINCT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

}  // namespace

bool AstExpr::ContainsAggregate() const {
  if (kind == AstKind::kAggregate) return true;
  if (lhs != nullptr && lhs->ContainsAggregate()) return true;
  if (rhs != nullptr && rhs->ContainsAggregate()) return true;
  return false;
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstKind::kColumn:
      return qualifier.empty() ? column : qualifier + "." + column;
    case AstKind::kLiteral:
      return literal.ToString();
    case AstKind::kCompare:
      return "(" + lhs->ToString() + " " + ra::CompareOpName(compare_op) +
             " " + rhs->ToString() + ")";
    case AstKind::kLogical:
      if (logical_op == ra::LogicalOp::kNot) {
        return "(NOT " + lhs->ToString() + ")";
      }
      return "(" + lhs->ToString() +
             (logical_op == ra::LogicalOp::kAnd ? " AND " : " OR ") +
             rhs->ToString() + ")";
    case AstKind::kArithmetic: {
      const char* op = "?";
      switch (arithmetic_op) {
        case ra::ArithmeticOp::kAdd:
          op = "+";
          break;
        case ra::ArithmeticOp::kSub:
          op = "-";
          break;
        case ra::ArithmeticOp::kMul:
          op = "*";
          break;
        case ra::ArithmeticOp::kDiv:
          op = "/";
          break;
      }
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
    }
    case AstKind::kAggregate:
      return std::string(AggFuncName(agg_func)) + "(" +
             (agg_argument ? agg_argument->ToString() : "*") + ")";
    case AstKind::kIsNull:
      return "(" + lhs->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
             ")";
    case AstKind::kLike:
      return "(" + lhs->ToString() + " LIKE '" + like_pattern + "')";
  }
  return "?";
}

AstExprPtr AstExpr::Clone() const {
  auto out = std::make_unique<AstExpr>();
  out->kind = kind;
  out->qualifier = qualifier;
  out->column = column;
  out->literal = literal;
  out->compare_op = compare_op;
  out->logical_op = logical_op;
  out->arithmetic_op = arithmetic_op;
  out->agg_func = agg_func;
  out->negated = negated;
  out->like_pattern = like_pattern;
  if (lhs != nullptr) out->lhs = lhs->Clone();
  if (rhs != nullptr) out->rhs = rhs->Clone();
  if (agg_argument != nullptr) out->agg_argument = agg_argument->Clone();
  return out;
}

AstExprPtr MakeColumn(std::string qualifier, std::string column) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kColumn;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

AstExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

AstExprPtr MakeCompare(ra::CompareOp op, AstExprPtr lhs, AstExprPtr rhs) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kCompare;
  e->compare_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

AstExprPtr MakeLogical(ra::LogicalOp op, AstExprPtr lhs, AstExprPtr rhs) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kLogical;
  e->logical_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

AstExprPtr MakeArithmetic(ra::ArithmeticOp op, AstExprPtr lhs, AstExprPtr rhs) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kArithmetic;
  e->arithmetic_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

AstExprPtr MakeAggregate(AggFunc func, AstExprPtr argument) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kAggregate;
  e->agg_func = func;
  e->agg_argument = std::move(argument);
  return e;
}

AstExprPtr MakeIsNull(AstExprPtr operand, bool negated) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kIsNull;
  e->lhs = std::move(operand);
  e->negated = negated;
  return e;
}

AstExprPtr MakeLike(AstExprPtr operand, std::string pattern) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstKind::kLike;
  e->lhs = std::move(operand);
  e->like_pattern = std::move(pattern);
  return e;
}

}  // namespace sql
}  // namespace fgpdb
