#include "pdb/shared_chain.h"

#include <algorithm>
#include <unordered_set>

#include "ra/executor.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fgpdb {
namespace pdb {

namespace {

std::vector<Tuple> DistinctTuples(const std::vector<Tuple>& bag) {
  std::unordered_set<Tuple, TupleHasher> seen;
  std::vector<Tuple> out;
  for (const Tuple& t : bag) {
    if (seen.insert(t).second) out.push_back(t);
  }
  return out;
}

}  // namespace

SharedChainEvaluator::SharedChainEvaluator(ProbabilisticDatabase* pdb,
                                           infer::Proposal* proposal,
                                           EvaluatorOptions options,
                                           bool materialized)
    : pdb_(pdb),
      options_(options),
      materialized_(materialized),
      steps_per_sample_(options.steps_per_sample) {
  FGPDB_CHECK(pdb_ != nullptr);
  sampler_ = pdb_->MakeSampler(proposal, options_.seed);
}

size_t SharedChainEvaluator::AddQuery(const ra::PlanNode* plan) {
  FGPDB_CHECK(plan != nullptr);
  Slot slot;
  slot.plan = plan;
  if (materialized_) {
    slot.view = std::make_unique<view::MaterializedView>(*plan);
    for (const auto& [table, scans] : slot.view->subscriptions()) {
      subscriptions_[table] += scans;
    }
    if (initialized_) {
      // Bring the chain's existing views current (the accumulator may hold
      // deltas from steps taken since the last drain), then evaluate the
      // new view against the same world. No sample is observed here —
      // registration never advances any query's marginals.
      pdb_->TakeDeltas(&delta_buf_);
      for (Slot& existing : slots_) existing.view->Apply(delta_buf_);
      slot.view->Initialize(pdb_->db());
    }
  }
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void SharedChainEvaluator::Initialize() {
  FGPDB_CHECK(!initialized_);
  sampler_->Run(options_.burn_in);
  pdb_->DiscardDeltas();
  if (materialized_) {
    // The one exhaustive query per view over the initial world (Alg. 1
    // line 2) — K queries share the burn-in above.
    for (Slot& slot : slots_) slot.view->Initialize(pdb_->db());
  }
  initialized_ = true;
}

bool SharedChainEvaluator::ViewTouched(const view::MaterializedView& view,
                                       const view::DeltaSet& deltas) {
  bool touched = false;
  deltas.ForEachTable([&](const std::string& table,
                          const view::DeltaMultiset& delta) {
    if (touched || delta.empty()) return;
    if (view.subscriptions().count(table) > 0) touched = true;
  });
  return touched;
}

void SharedChainEvaluator::ObserveSample(Slot* slot) {
  if (materialized_) {
    std::vector<Tuple> distinct;
    distinct.reserve(slot->view->contents().distinct_size());
    slot->view->contents().ForEach(
        [&](const Tuple& t, int64_t) { distinct.push_back(t); });
    slot->answer.ObserveSampleContaining(distinct);
    return;
  }
  slot->answer.ObserveSampleContaining(
      DistinctTuples(ra::Execute(*slot->plan, pdb_->db())));
}

void SharedChainEvaluator::DrawSample() {
  FGPDB_CHECK(initialized_);
  Stopwatch walk_timer;
  sampler_->Run(steps_per_sample_);
  const double walk_seconds = walk_timer.ElapsedSeconds();

  if (!materialized_) {
    pdb_->DiscardDeltas();
    for (Slot& slot : slots_) ObserveSample(&slot);
    return;
  }

  // One drain, K views: the accumulator expands to per-table Δ−/Δ+ once
  // and the same DeltaSet is routed through every registered view. A view
  // none of whose subscribed tables were touched is skipped without being
  // entered at all.
  Stopwatch apply_timer;
  pdb_->TakeDeltas(&delta_buf_);
  for (Slot& slot : slots_) {
    if (ViewTouched(*slot.view, delta_buf_)) {
      slot.view->Apply(delta_buf_);
    } else {
      ++views_skipped_;
    }
  }
  last_apply_seconds_ = apply_timer.ElapsedSeconds();
  for (Slot& slot : slots_) ObserveSample(&slot);

  if (options_.adaptive_thinning) {
    // Same multiplicative controller as the single-query evaluator, fed by
    // the fanned-out apply cost: halve k when the delta path is cheap
    // relative to walking, double it when expensive.
    const double total = walk_seconds + last_apply_seconds_;
    if (total > 0.0) {
      const double fraction = last_apply_seconds_ / total;
      if (fraction < options_.target_eval_fraction / 2.0) {
        steps_per_sample_ = std::max(options_.min_steps_per_sample,
                                     steps_per_sample_ / 2);
      } else if (fraction > options_.target_eval_fraction * 2.0) {
        steps_per_sample_ = std::min(options_.max_steps_per_sample,
                                     steps_per_sample_ * 2);
      }
    }
  }
}

void SharedChainEvaluator::Run(uint64_t n) {
  if (!initialized_) Initialize();
  for (uint64_t i = 0; i < n; ++i) DrawSample();
}

std::vector<Tuple> SharedChainEvaluator::CurrentAnswerSet(size_t slot) const {
  const Slot& s = slots_.at(slot);
  if (materialized_) {
    std::vector<Tuple> distinct;
    s.view->contents().ForEach(
        [&](const Tuple& t, int64_t) { distinct.push_back(t); });
    return distinct;
  }
  return DistinctTuples(ra::Execute(*s.plan, pdb_->db()));
}

const view::MaterializedView& SharedChainEvaluator::materialized_view(
    size_t slot) const {
  FGPDB_CHECK(materialized_);
  return *slots_.at(slot).view;
}

}  // namespace pdb
}  // namespace fgpdb
