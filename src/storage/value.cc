#include "storage/value.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace fgpdb {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      FGPDB_FATAL() << "non-numeric value " << ToString();
  }
  return 0.0;  // Unreachable.
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

namespace {

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (IsNumericType(a) && IsNumericType(b)) {
    const double x = AsNumeric();
    const double y = other.AsNumeric();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a != b) return a < b ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // Unreachable: numeric handled above.
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(AsInt()) ^ 0x1ULL);
    case ValueType::kDouble: {
      // Hash doubles through their integral value when exact so that
      // Int(2) and Double(2.0) (which compare equal) hash identically.
      const double d = AsDouble();
      const int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        return Mix64(static_cast<uint64_t>(i) ^ 0x1ULL);
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x2ULL);
    }
    case ValueType::kString:
      return HashString(AsString());
  }
  return 0;
}

}  // namespace fgpdb
