// Skip-chain conditional random field for NER (paper §5.1, Figure 3).
//
// Factor templates over the TOKEN relation's LABEL variables:
//   emission:   ψ(string_i, y_i)          — string/label compatibility
//   transition: ψ(y_i, y_{i+1})           — 1st-order Markov dependency
//   bias:       ψ(y_i)                    — label frequency
//   skip:       ψ(y_i, y_j) for same-string token pairs within a document
//               (capitalized strings only, following Sutton & McCallum) —
//               this is what makes the graph loopy and exact inference
//               intractable, the paper's central difficulty.
//
// The model is *templated*: no factor objects are instantiated. Score and
// feature deltas are computed lazily from the variables a Change touches
// (paper §3.4 / Appendix 9.2), so an MH step costs O(1) w.r.t. corpus size.
#ifndef FGPDB_IE_SKIP_CHAIN_MODEL_H_
#define FGPDB_IE_SKIP_CHAIN_MODEL_H_

#include <vector>

#include "factor/model.h"
#include "ie/token_pdb.h"

namespace fgpdb {
namespace ie {

struct SkipChainOptions {
  /// Include skip factors (false = plain linear-chain CRF; the ablation of
  /// DESIGN.md and the tractable baseline for exact-inference tests).
  bool use_skip_edges = true;
  /// Include transition factors.
  bool use_transitions = true;
  /// Skip groups larger than this fall back to consecutive-occurrence
  /// chaining to bound the quadratic pair count.
  size_t max_skip_group = 24;
};

class SkipChainNerModel final : public factor::FeatureModel {
 public:
  /// The model keeps pointers into `tokens` (string ids, doc structure);
  /// `tokens` must outlive the model. Thread-safe for concurrent scoring
  /// once constructed (parameters are read-only during inference).
  SkipChainNerModel(const TokenPdb& tokens, SkipChainOptions options = {});

  // --- factor::Model --------------------------------------------------------
  double LogScoreDelta(const factor::World& world,
                       const factor::Change& change) const override;
  double LogScore(const factor::World& world) const override;
  size_t num_variables() const override { return string_ids_->size(); }
  size_t domain_size(factor::VarId) const override { return kNumLabels; }

  // --- factor::FeatureModel --------------------------------------------------
  void FeatureDelta(const factor::World& world, const factor::Change& change,
                    factor::SparseVector* out) const override;
  factor::Parameters& parameters() override { return params_; }
  const factor::Parameters& parameters() const override { return params_; }

  /// Skip partners of a variable (same-document, same-string tokens).
  const std::vector<factor::VarId>& SkipPartners(factor::VarId var) const {
    return skip_partners_.at(var);
  }

  /// Number of skip edges instantiated (diagnostics; each edge counted once).
  size_t num_skip_edges() const { return num_skip_edges_; }

  /// Seeds emission/bias/transition weights from simple corpus statistics
  /// (log-odds of TRUTH labels). Gives a usable model without running
  /// SampleRank — benches use this to skip training time.
  void InitializeFromCorpusStatistics(const TokenPdb& tokens,
                                      double skip_weight = 1.0,
                                      double emission_scale = 2.0);

 private:
  static constexpr factor::VarId kNoVar = ~0u;

  // Per-factor log scores under a label accessor.
  template <typename GetLabel>
  double NodeScore(factor::VarId v, const GetLabel& get) const;
  template <typename GetLabel>
  double EdgeScore(factor::VarId a, factor::VarId b, const GetLabel& get) const;
  template <typename GetLabel>
  double SkipScore(factor::VarId a, factor::VarId b, const GetLabel& get) const;

  // Enumerates the factor instances touched by `change`, deduplicated:
  // nodes, chain edges, skip edges.
  struct TouchedFactors {
    std::vector<factor::VarId> nodes;
    std::vector<std::pair<factor::VarId, factor::VarId>> edges;
    std::vector<std::pair<factor::VarId, factor::VarId>> skips;
  };
  TouchedFactors CollectTouched(const factor::Change& change) const;

  const std::vector<uint32_t>* string_ids_;
  SkipChainOptions options_;
  factor::Parameters params_;
  std::vector<factor::VarId> prev_;
  std::vector<factor::VarId> next_;
  std::vector<std::vector<factor::VarId>> skip_partners_;
  size_t num_skip_edges_ = 0;
};

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_SKIP_CHAIN_MODEL_H_
