// Microbench for the copy-on-write world snapshots behind the §5.4 parallel
// evaluator: spinning up chain B+1 must be (nearly) free, not O(|DB|).
//
//   DatabaseDeepClone   — the old per-chain cost: every page + index copied.
//   DatabaseSnapshot    — the new per-chain cost: one shared_ptr per page.
//   PdbSnapshot         — full per-chain world (tables + binding + world).
//   SnapshotTouchRows   — copy-up amortization: snapshot + write K rows, so
//                         the lazily-paid page copies are visible too.
//
// Acceptance target (ISSUE 2): snapshot >= 10x cheaper than deep clone at
// 100k tuples.
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace fgpdb;
using namespace fgpdb::bench;

namespace {

uint64_t g_master = 2004;

// The TOKEN relation alone (no model/factor graph): clone cost is a pure
// storage-layer property.
ie::TokenPdb MakeTokens(size_t num_tokens) {
  return ie::BuildTokenPdb(ie::GenerateCorpus({.num_tokens = num_tokens,
                                               .tokens_per_doc = 250,
                                               .seed = DeriveSeed(g_master, 0)}));
}

void BM_DatabaseDeepClone(benchmark::State& state) {
  const ie::TokenPdb tokens = MakeTokens(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokens.pdb->db().Clone());
  }
}

void BM_DatabaseSnapshot(benchmark::State& state) {
  const ie::TokenPdb tokens = MakeTokens(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokens.pdb->db().Snapshot());
  }
}

void BM_PdbSnapshot(benchmark::State& state) {
  const ie::TokenPdb tokens = MakeTokens(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokens.pdb->Snapshot());
  }
}

void BM_SnapshotTouchRows(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t touched = static_cast<size_t>(state.range(1));
  const ie::TokenPdb tokens = MakeTokens(n);
  const Value label = Value::String("B-PER");
  for (auto _ : state) {
    auto world = tokens.pdb->db().Snapshot();
    Table* table = world->RequireTable(ie::kTokenTable);
    // Stride across the table so the touched rows spread over many pages —
    // the worst case for copy-up (one page copy per write).
    const size_t stride = std::max<size_t>(1, n / touched);
    for (size_t i = 0; i < touched; ++i) {
      table->UpdateField((i * stride) % n, ie::kColLabel, label);
    }
    benchmark::DoNotOptimize(table->SharedPageCount());
  }
}

}  // namespace

BENCHMARK(BM_DatabaseDeepClone)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DatabaseSnapshot)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PdbSnapshot)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotTouchRows)
    ->Args({100000, 100})
    ->Args({100000, 10000})
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  g_master = InitBenchSeed(&argc, argv, "micro_clone");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
