// fgpdb_serve — the multi-tenant server front end (serve::LineProtocol on
// stdin/stdout).
//
// Boots the demo NER world (synthetic news corpus + skip-chain CRF, the
// same fixture as examples/quickstart), starts a serve::Server over it, and
// answers one protocol line per input line until QUIT or EOF. Pipe a script
// in, drive it from a terminal, or fork it from a client speaking the
// grammar documented in serve/protocol.h:
//
//   $ ./tools/fgpdb_serve --tokens=2000 <<'EOF'
//   TENANT NEW SERIAL SEED 17
//   QUERY 1 SELECT STRING FROM TOKEN WHERE LABEL = 'PER'
//   RUN 1 200
//   DRAIN
//   SNAPSHOT 1 0 TOP 5
//   STATS
//   QUIT
//   EOF
//
// Flags (all --key=value):
//   --tokens=N           corpus size (default 2000)
//   --quantum=N          scheduler slice in samples (default 16)
//   --cache=N            cross-session plan-cache capacity (default 128)
//   --max-outstanding=N  per-tenant admission cap in samples (default 4096)
//   --threads=N          scheduler threads (default: hardware concurrency)
//   --steps=N            MH steps per sample (default 2000)
//   --burn-in=N          MH burn-in steps (default 10000)
//   --seed=N             default chain seed (default 17)
//   --script=FILE        read commands from FILE instead of stdin
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace fgpdb;

namespace {

uint64_t FlagU64(const std::string& arg, const std::string& name,
                 uint64_t fallback) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return fallback;
  return std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_tokens = 2000, quantum = 16, cache = 128, outstanding = 4096;
  uint64_t threads = 0, steps = 2000, burn_in = 10000, seed = 17;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    num_tokens = FlagU64(arg, "tokens", num_tokens);
    quantum = FlagU64(arg, "quantum", quantum);
    cache = FlagU64(arg, "cache", cache);
    outstanding = FlagU64(arg, "max-outstanding", outstanding);
    threads = FlagU64(arg, "threads", threads);
    steps = FlagU64(arg, "steps", steps);
    burn_in = FlagU64(arg, "burn-in", burn_in);
    seed = FlagU64(arg, "seed", seed);
    if (arg.rfind("--script=", 0) == 0) script = arg.substr(9);
  }

  // The shared base world every tenant snapshots (COW): TOKEN relation +
  // skip-chain CRF. Never mutated by any tenant.
  ie::SyntheticCorpus corpus = ie::GenerateCorpus({.num_tokens = num_tokens});
  ie::TokenPdb tokens = ie::BuildTokenPdb(corpus);
  ie::SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);
  tokens.pdb->set_model(&model);

  serve::ServerOptions options;
  options.database = tokens.pdb.get();
  options.proposal_factory =
      [&tokens](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
    return std::make_unique<ie::DocumentBatchProposal>(&tokens.docs);
  };
  options.evaluator = {};
  options.evaluator.steps_per_sample = steps;
  options.evaluator.burn_in = burn_in;
  options.evaluator.seed = seed;
  options.plan_cache_capacity = cache;
  options.quantum_samples = quantum;
  options.max_outstanding_samples = outstanding;
  options.num_threads = threads;
  serve::Server server(options);
  serve::LineProtocol protocol(&server);

  std::ifstream script_file;
  if (!script.empty()) {
    script_file.open(script);
    if (!script_file) {
      std::cerr << "cannot open --script=" << script << "\n";
      return 1;
    }
  }
  std::istream& in = script.empty() ? std::cin : script_file;

  std::cout << "# fgpdb serve: " << tokens.num_tokens() << " tokens, "
            << corpus.num_docs << " documents, quantum=" << quantum
            << ", plan-cache=" << cache << "\n"
            << std::flush;
  std::string line;
  while (std::getline(in, line)) {
    const serve::LineProtocol::Result result = protocol.HandleLine(line);
    std::cout << result.response << std::flush;
    if (result.quit) break;
  }
  server.Drain();
  return 0;
}
