#include "api/session.h"

#include <utility>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "util/logging.h"

namespace fgpdb {
namespace api {

// --- ResultHandle -----------------------------------------------------------

QueryProgress ResultHandle::Snapshot() const {
  return session_->SnapshotSlot(slot_);
}

const PreparedQueryPtr& ResultHandle::query() const {
  return session_->registered_.at(slot_).query;
}

// --- Session ----------------------------------------------------------------

std::string Session::NormalizeSql(const std::string& sql) {
  // Lexer-backed normalization: keywords come back uppercased, whitespace
  // and comments between tokens vanish, and `!=` canonicalizes to `<>`.
  // Identifier case and string literals are preserved verbatim, so two
  // texts share a cache entry exactly when they tokenize identically.
  std::string out;
  for (const sql::Token& token : sql::Lex(sql)) {
    if (token.type == sql::TokenType::kEnd) break;
    if (!out.empty()) out += ' ';
    if (token.type == sql::TokenType::kString) {
      out += '\'';
      for (const char c : token.text) {
        out += c;
        if (c == '\'') out += c;  // Re-escape embedded quotes.
      }
      out += '\'';
    } else {
      out += token.text;
    }
  }
  return out;
}

std::unique_ptr<Session> Session::Open(SessionOptions options) {
  FGPDB_CHECK(options.database != nullptr) << "SessionOptions.database is required";
  FGPDB_CHECK(options.proposal_factory != nullptr)
      << "SessionOptions.proposal_factory is required";
  return std::unique_ptr<Session>(new Session(std::move(options)));
}

Session::Session(SessionOptions options) : options_(std::move(options)) {
  // The session's world is a copy-on-write snapshot: serial/naive chains
  // mutate it freely and the caller's database stays pristine under every
  // policy (parallel chains snapshot the base again per batch).
  world_ = options_.database->Snapshot();
  if (options_.model != nullptr) world_->set_model(options_.model);
  if (options_.policy.mode != ExecutionPolicy::Mode::kParallel) {
    proposal_ = options_.proposal_factory(*world_);
    chain_ = std::make_unique<pdb::SharedChainEvaluator>(
        world_.get(), proposal_.get(), options_.evaluator,
        /*materialized=*/options_.policy.mode != ExecutionPolicy::Mode::kNaive);
  }
}

Session::~Session() = default;

PreparedQueryPtr Session::Prepare(const std::string& sql) {
  const std::string normalized = NormalizeSql(sql);
  const auto it = prepared_cache_.find(normalized);
  if (it != prepared_cache_.end()) return it->second;
  ra::PlanPtr plan = sql::PlanQuery(sql, world_->db());
  PreparedQueryPtr prepared(
      new PreparedQuery(normalized, sql, std::move(plan)));
  prepared_cache_.emplace(normalized, prepared);
  return prepared;
}

ResultHandle Session::Register(const PreparedQueryPtr& prepared) {
  FGPDB_CHECK(prepared != nullptr);
  const size_t slot = registered_.size();
  if (chain_ != nullptr) {
    const size_t chain_slot = chain_->AddQuery(&prepared->plan());
    FGPDB_CHECK_EQ(chain_slot, slot);
  }
  for (const std::string& table : prepared->plan().ScannedTables()) {
    ++subscriptions_[table];
  }
  registered_.push_back(Registered{prepared, pdb::QueryAnswer{}});
  return ResultHandle(this, slot);
}

void Session::Run(uint64_t samples) {
  FGPDB_CHECK(!registered_.empty())
      << "Register at least one query before Run()";
  if (options_.policy.mode != ExecutionPolicy::Mode::kParallel) {
    chain_->Run(samples);
    return;
  }
  // Parallel policy: a fresh batch of COW chains per Run() epoch, every
  // chain maintaining ALL registered views on its one sampler, per-query
  // answers merged as chains finish. Distinct epoch salts decorrelate
  // successive batches (epoch 0 matches a standalone EvaluateParallel).
  std::vector<const ra::PlanNode*> plans;
  plans.reserve(registered_.size());
  for (const Registered& r : registered_) plans.push_back(&r.query->plan());
  pdb::ParallelOptions parallel;
  parallel.num_chains = options_.policy.num_chains;
  parallel.samples_per_chain = samples;
  parallel.chain_options = options_.evaluator;
  parallel.materialized = true;
  parallel.use_threads = options_.policy.use_threads;
  parallel.max_threads = options_.policy.max_threads;
  pdb::MultiQueryAnswer batch =
      pdb::EvaluateParallelMulti(*world_, plans, options_.proposal_factory,
                                 parallel,
                                 /*seed_salt=*/parallel_epoch_ *
                                     0xbf58476d1ce4e5b9ULL);
  ++parallel_epoch_;
  parallel_proposed_ += batch.total_proposed;
  parallel_accepted_ += batch.total_accepted;
  for (size_t q = 0; q < registered_.size(); ++q) {
    registered_[q].merged.Merge(batch.answers[q]);
  }
}

QueryProgress Session::SnapshotSlot(size_t slot) const {
  QueryProgress progress;
  if (options_.policy.mode != ExecutionPolicy::Mode::kParallel) {
    progress.answer = chain_->answer(slot);
    progress.steps_per_sample = chain_->steps_per_sample();
    progress.acceptance_rate = chain_->sampler().acceptance_rate();
  } else {
    progress.answer = registered_.at(slot).merged;
    progress.steps_per_sample = options_.evaluator.steps_per_sample;
    progress.acceptance_rate =
        parallel_proposed_ == 0
            ? 0.0
            : static_cast<double>(parallel_accepted_) /
                  static_cast<double>(parallel_proposed_);
  }
  progress.samples = progress.answer.num_samples();
  return progress;
}

const std::unordered_map<std::string, size_t>& Session::subscriptions() const {
  return subscriptions_;
}

}  // namespace api
}  // namespace fgpdb
