#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/logging.h"

namespace fgpdb {
namespace sql {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& query) : tokens_(Lex(query)) {}

  SelectStatement ParseStatement() {
    SelectStatement stmt;
    Expect("SELECT");
    if (Accept("DISTINCT")) stmt.distinct = true;
    if (AcceptSymbol("*")) {
      stmt.select_star = true;
    } else {
      do {
        SelectItem item;
        item.expr = ParseExpr();
        if (Accept("AS")) item.alias = ExpectIdentifier();
        stmt.items.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    Expect("FROM");
    do {
      TableRef ref;
      ref.table = ExpectIdentifier();
      if (Peek().type == TokenType::kIdentifier) {
        ref.alias = ExpectIdentifier();
      } else {
        ref.alias = ref.table;
      }
      stmt.from.push_back(std::move(ref));
    } while (AcceptSymbol(","));
    if (Accept("WHERE")) stmt.where = ParseExpr();
    if (Accept("GROUP")) {
      Expect("BY");
      do {
        stmt.group_by.push_back(ParseExpr());
      } while (AcceptSymbol(","));
    }
    if (Accept("HAVING")) stmt.having = ParseExpr();
    if (Accept("ORDER")) {
      Expect("BY");
      do {
        OrderItem item;
        item.column = ExpectIdentifier();
        stmt.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
      if (Accept("DESC")) {
        stmt.order_ascending = false;
      } else {
        Accept("ASC");
      }
    }
    if (Accept("LIMIT")) {
      const Token t = Next();
      FGPDB_CHECK(t.type == TokenType::kInteger) << "LIMIT expects an integer";
      stmt.limit = static_cast<size_t>(std::stoll(t.text));
    }
    FGPDB_CHECK(Peek().type == TokenType::kEnd)
        << "trailing input at position " << Peek().position << ": '"
        << Peek().text << "'";
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  Token Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool Accept(const char* keyword) {
    if (Peek().IsKeyword(keyword)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(const char* keyword) {
    FGPDB_CHECK(Accept(keyword)) << "expected " << keyword << " at position "
                                 << Peek().position << ", got '" << Peek().text
                                 << "'";
  }

  void ExpectSymbol(const char* sym) {
    FGPDB_CHECK(AcceptSymbol(sym)) << "expected '" << sym << "' at position "
                                   << Peek().position << ", got '"
                                   << Peek().text << "'";
  }

  std::string ExpectIdentifier() {
    const Token t = Next();
    FGPDB_CHECK(t.type == TokenType::kIdentifier)
        << "expected identifier at position " << t.position << ", got '"
        << t.text << "'";
    return t.text;
  }

  // expr := or
  AstExprPtr ParseExpr() { return ParseOr(); }

  AstExprPtr ParseOr() {
    AstExprPtr lhs = ParseAnd();
    while (Accept("OR")) {
      lhs = MakeLogical(ra::LogicalOp::kOr, std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  AstExprPtr ParseAnd() {
    AstExprPtr lhs = ParseNot();
    while (Accept("AND")) {
      lhs = MakeLogical(ra::LogicalOp::kAnd, std::move(lhs), ParseNot());
    }
    return lhs;
  }

  AstExprPtr ParseNot() {
    if (Accept("NOT")) {
      return MakeLogical(ra::LogicalOp::kNot, ParseNot(), nullptr);
    }
    return ParseComparison();
  }

  AstExprPtr ParseComparison() {
    AstExprPtr lhs = ParseAdditive();
    // Postfix predicates: IS [NOT] NULL, [NOT] LIKE, [NOT] IN, BETWEEN.
    if (Accept("IS")) {
      const bool negated = Accept("NOT");
      Expect("NULL");
      return MakeIsNull(std::move(lhs), negated);
    }
    bool negate_postfix = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("IN") ||
         Peek(1).IsKeyword("BETWEEN"))) {
      Next();
      negate_postfix = true;
    }
    if (Accept("LIKE")) {
      const Token t = Next();
      FGPDB_CHECK(t.type == TokenType::kString)
          << "LIKE expects a string pattern";
      AstExprPtr like = MakeLike(std::move(lhs), t.text);
      return negate_postfix
                 ? MakeLogical(ra::LogicalOp::kNot, std::move(like), nullptr)
                 : std::move(like);
    }
    if (Accept("IN")) {
      // Sugar: x IN (a, b, c)  ->  (x=a OR x=b OR x=c).
      ExpectSymbol("(");
      AstExprPtr disjunction;
      do {
        AstExprPtr candidate = ParseExpr();
        AstExprPtr eq =
            MakeCompare(ra::CompareOp::kEq, lhs->Clone(), std::move(candidate));
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : MakeLogical(ra::LogicalOp::kOr,
                                        std::move(disjunction), std::move(eq));
      } while (AcceptSymbol(","));
      ExpectSymbol(")");
      return negate_postfix ? MakeLogical(ra::LogicalOp::kNot,
                                          std::move(disjunction), nullptr)
                            : std::move(disjunction);
    }
    if (Accept("BETWEEN")) {
      // Sugar: x BETWEEN a AND b  ->  (x >= a AND x <= b).
      AstExprPtr low = ParseAdditive();
      Expect("AND");
      AstExprPtr high = ParseAdditive();
      // Sequence the clone before any move of lhs (argument evaluation
      // order is unspecified).
      AstExprPtr lhs_copy = lhs->Clone();
      AstExprPtr range = MakeLogical(
          ra::LogicalOp::kAnd,
          MakeCompare(ra::CompareOp::kGe, std::move(lhs_copy), std::move(low)),
          MakeCompare(ra::CompareOp::kLe, std::move(lhs), std::move(high)));
      return negate_postfix ? MakeLogical(ra::LogicalOp::kNot,
                                          std::move(range), nullptr)
                            : std::move(range);
    }
    ra::CompareOp op;
    if (AcceptSymbol("=")) {
      op = ra::CompareOp::kEq;
    } else if (AcceptSymbol("<>")) {
      op = ra::CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = ra::CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = ra::CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = ra::CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = ra::CompareOp::kGt;
    } else {
      return lhs;
    }
    return MakeCompare(op, std::move(lhs), ParseAdditive());
  }

  AstExprPtr ParseAdditive() {
    AstExprPtr lhs = ParseMultiplicative();
    while (true) {
      if (AcceptSymbol("+")) {
        lhs = MakeArithmetic(ra::ArithmeticOp::kAdd, std::move(lhs),
                             ParseMultiplicative());
      } else if (AcceptSymbol("-")) {
        lhs = MakeArithmetic(ra::ArithmeticOp::kSub, std::move(lhs),
                             ParseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  AstExprPtr ParseMultiplicative() {
    AstExprPtr lhs = ParsePrimary();
    while (true) {
      if (AcceptSymbol("*")) {
        lhs = MakeArithmetic(ra::ArithmeticOp::kMul, std::move(lhs),
                             ParsePrimary());
      } else if (AcceptSymbol("/")) {
        lhs = MakeArithmetic(ra::ArithmeticOp::kDiv, std::move(lhs),
                             ParsePrimary());
      } else {
        return lhs;
      }
    }
  }

  AstExprPtr ParsePrimary() {
    const Token& t = Peek();
    // Aggregate calls.
    if (t.type == TokenType::kKeyword) {
      AggFunc func;
      bool is_agg = true;
      if (t.text == "COUNT") {
        func = AggFunc::kCount;
      } else if (t.text == "COUNT_IF") {
        func = AggFunc::kCountIf;
      } else if (t.text == "SUM") {
        func = AggFunc::kSum;
      } else if (t.text == "MIN") {
        func = AggFunc::kMin;
      } else if (t.text == "MAX") {
        func = AggFunc::kMax;
      } else if (t.text == "AVG") {
        func = AggFunc::kAvg;
      } else {
        is_agg = false;
      }
      if (is_agg) {
        Next();
        ExpectSymbol("(");
        AstExprPtr argument;
        if (AcceptSymbol("*")) {
          FGPDB_CHECK(func == AggFunc::kCount) << "only COUNT(*) supports *";
        } else {
          if (func == AggFunc::kCount && Accept("DISTINCT")) {
            func = AggFunc::kCountDistinct;
          }
          argument = ParseExpr();
        }
        ExpectSymbol(")");
        return MakeAggregate(func, std::move(argument));
      }
      if (Accept("NULL")) return MakeLiteral(Value::Null());
      if (Accept("TRUE")) return MakeLiteral(Value::Int(1));
      if (Accept("FALSE")) return MakeLiteral(Value::Int(0));
    }
    if (t.type == TokenType::kIdentifier) {
      std::string first = ExpectIdentifier();
      if (AcceptSymbol(".")) {
        std::string second = ExpectIdentifier();
        return MakeColumn(std::move(first), std::move(second));
      }
      return MakeColumn("", std::move(first));
    }
    if (t.type == TokenType::kString) {
      Next();
      return MakeLiteral(Value::String(t.text));
    }
    if (t.type == TokenType::kInteger) {
      Next();
      return MakeLiteral(Value::Int(std::stoll(t.text)));
    }
    if (t.type == TokenType::kFloat) {
      Next();
      return MakeLiteral(Value::Double(std::stod(t.text)));
    }
    if (AcceptSymbol("(")) {
      AstExprPtr inner = ParseExpr();
      ExpectSymbol(")");
      return inner;
    }
    if (AcceptSymbol("-")) {  // Unary minus via 0 - x.
      return MakeArithmetic(ra::ArithmeticOp::kSub, MakeLiteral(Value::Int(0)),
                            ParsePrimary());
    }
    FGPDB_FATAL() << "unexpected token '" << t.text << "' at position "
                  << t.position;
    return nullptr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

SelectStatement Parse(const std::string& query) {
  Parser parser(query);
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace fgpdb
