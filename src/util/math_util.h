// Small numeric helpers shared across inference and learning code.
#ifndef FGPDB_UTIL_MATH_UTIL_H_
#define FGPDB_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace fgpdb {

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
inline double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

/// Stable log(exp(a) + exp(b)).
inline double LogAdd(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/// Element-wise squared error between two equally sized vectors.
inline double SquaredError(const std::vector<double>& a,
                           const std::vector<double>& b) {
  double total = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  // Treat missing entries as zeros (an absent tuple has probability 0).
  for (size_t i = n; i < a.size(); ++i) total += a[i] * a[i];
  for (size_t i = n; i < b.size(); ++i) total += b[i] * b[i];
  return total;
}

/// Mean of a vector; 0 for empty input.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Population variance of a vector; 0 for fewer than two elements.
inline double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mu) * (x - mu);
  return sum / static_cast<double>(xs.size());
}

}  // namespace fgpdb

#endif  // FGPDB_UTIL_MATH_UTIL_H_
