#include "factor/domain.h"

#include "util/logging.h"

namespace fgpdb {
namespace factor {

Domain::Domain(std::vector<Value> values) : values_(std::move(values)) {
  for (size_t i = 0; i < values_.size(); ++i) {
    const bool inserted = index_.emplace(values_[i], i).second;
    FGPDB_CHECK(inserted) << "duplicate domain value " << values_[i].ToString();
  }
}

Domain Domain::OfStrings(const std::vector<std::string>& labels) {
  std::vector<Value> values;
  values.reserve(labels.size());
  for (const auto& label : labels) values.push_back(Value::String(label));
  return Domain(std::move(values));
}

Domain Domain::OfRange(int64_t n) {
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) values.push_back(Value::Int(i));
  return Domain(std::move(values));
}

std::optional<size_t> Domain::IndexOf(const Value& v) const {
  const auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

size_t Domain::RequireIndexOf(const Value& v) const {
  const auto idx = IndexOf(v);
  FGPDB_CHECK(idx.has_value()) << "value " << v.ToString() << " not in domain";
  return *idx;
}

}  // namespace factor
}  // namespace fgpdb
