// The compiled scoring layer's contract (factor/compiled_weights.h): dense
// tables return bit-for-bit the doubles the naive Parameters::Get scoring
// computes, tables refresh lazily when the parameter version moves, and the
// scratch-reuse protocol changes no results.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "factor/compiled_weights.h"
#include "ie/corpus.h"
#include "ie/entity_resolution.h"
#include "ie/ner_features.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "infer/metropolis_hastings.h"
#include "learn/objective.h"
#include "learn/samplerank.h"
#include "pdb/shared_chain.h"
#include "sql/binder.h"
#include "util/rng.h"

namespace fgpdb {
namespace ie {
namespace {

struct CompiledVsNaive {
  TokenPdb tokens;
  std::unique_ptr<SkipChainNerModel> compiled;
  std::unique_ptr<SkipChainNerModel> naive;
  factor::World world;

  explicit CompiledVsNaive(size_t num_tokens, uint64_t seed) {
    const SyntheticCorpus corpus = GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 60, .seed = seed});
    tokens = BuildTokenPdb(corpus);
    compiled = std::make_unique<SkipChainNerModel>(tokens);
    naive = std::make_unique<SkipChainNerModel>(
        tokens, SkipChainOptions{.use_compiled_scoring = false});
    compiled->InitializeFromCorpusStatistics(tokens);
    naive->InitializeFromCorpusStatistics(tokens);
    world = factor::World(tokens.num_tokens());
  }

  /// Randomizes the world's labels in place.
  void ShuffleWorld(Rng& rng) {
    for (size_t v = 0; v < world.size(); ++v) {
      world.Set(static_cast<factor::VarId>(v),
                static_cast<uint32_t>(rng.UniformInt(kNumLabels)));
    }
  }

  /// A random change touching 1..4 variables (duplicates allowed, so the
  /// last-assignment-wins overlay semantics get exercised too).
  factor::Change RandomChange(Rng& rng) const {
    factor::Change change;
    const size_t k = 1 + rng.UniformInt(4);
    for (size_t i = 0; i < k; ++i) {
      change.Set(
          static_cast<factor::VarId>(rng.UniformInt(tokens.num_tokens())),
          static_cast<uint32_t>(rng.UniformInt(kNumLabels)));
    }
    return change;
  }
};

// The randomized parity oracle: compiled scoring must equal the naive
// Parameters::Get path bitwise over ~1k random changes, with and without
// caller-provided scratch.
TEST(CompiledScoringTest, RandomizedParityOracle) {
  CompiledVsNaive fixture(1200, 71);
  Rng rng(2024);
  auto compiled_scratch = fixture.compiled->MakeScratch();
  ASSERT_NE(compiled_scratch, nullptr);
  for (int round = 0; round < 1000; ++round) {
    if (round % 50 == 0) fixture.ShuffleWorld(rng);
    const factor::Change change = fixture.RandomChange(rng);
    const double naive = fixture.naive->LogScoreDelta(fixture.world, change);
    // Bitwise equality, not ASSERT_NEAR: the tables must hold the *same
    // doubles* Get() returns, added in the same order.
    ASSERT_EQ(naive, fixture.compiled->LogScoreDelta(fixture.world, change))
        << "scratch-less parity broke at round " << round;
    ASSERT_EQ(naive, fixture.compiled->LogScoreDelta(fixture.world, change,
                                                     compiled_scratch.get()))
        << "scratch parity broke at round " << round;
  }
}

TEST(CompiledScoringTest, FullLogScoreParity) {
  CompiledVsNaive fixture(800, 13);
  Rng rng(5);
  for (int round = 0; round < 5; ++round) {
    fixture.ShuffleWorld(rng);
    ASSERT_NEAR(fixture.naive->LogScore(fixture.world),
                fixture.compiled->LogScore(fixture.world), 1e-9);
  }
}

TEST(CompiledScoringTest, FeatureDeltaDotEqualsCompiledScoreDelta) {
  CompiledVsNaive fixture(600, 29);
  Rng rng(17);
  fixture.ShuffleWorld(rng);
  auto scratch = fixture.compiled->MakeScratch();
  factor::SparseVector features;
  for (int round = 0; round < 200; ++round) {
    const factor::Change change = fixture.RandomChange(rng);
    features.Clear();
    fixture.compiled->FeatureDelta(fixture.world, change, &features,
                                   scratch.get());
    ASSERT_NEAR(fixture.compiled->parameters().Dot(features),
                fixture.compiled->LogScoreDelta(fixture.world, change,
                                                scratch.get()),
                1e-9);
  }
}

// Weight mutations move Parameters::version(); the next scoring call must
// rebuild the tables and agree with the naive path again — the invariant
// that lets SampleRank training and compiled inference compose.
TEST(CompiledScoringTest, ParameterUpdateInvalidatesTables) {
  CompiledVsNaive fixture(500, 43);
  Rng rng(99);
  fixture.ShuffleWorld(rng);

  // Warm the tables.
  const factor::Change probe = fixture.RandomChange(rng);
  (void)fixture.compiled->LogScoreDelta(fixture.world, probe);
  ASSERT_TRUE(fixture.compiled->compiled_fresh());

  // A direct perceptron-style update through the Parameters API.
  const uint64_t before = fixture.compiled->parameters().version();
  fixture.compiled->parameters().Update(
      EmissionFeature(fixture.tokens.string_ids[0], 3), 0.75);
  fixture.naive->parameters().Update(
      EmissionFeature(fixture.tokens.string_ids[0], 3), 0.75);
  EXPECT_GT(fixture.compiled->parameters().version(), before);
  EXPECT_FALSE(fixture.compiled->compiled_fresh());

  for (int round = 0; round < 100; ++round) {
    const factor::Change change = fixture.RandomChange(rng);
    ASSERT_EQ(fixture.naive->LogScoreDelta(fixture.world, change),
              fixture.compiled->LogScoreDelta(fixture.world, change));
  }
  EXPECT_TRUE(fixture.compiled->compiled_fresh());
}

// End-to-end invalidation: run real SampleRank steps on the compiled model
// (training goes through UpdateSparse), then check parity against a naive
// model handed the trained weights.
TEST(CompiledScoringTest, SampleRankTrainingRefreshesTables) {
  CompiledVsNaive fixture(400, 57);
  learn::LabelAccuracyObjective objective(fixture.tokens.truth);
  DocumentBatchProposal proposal(&fixture.tokens.docs,
                                 {.proposals_per_batch = 50});
  learn::SampleRank trainer(fixture.compiled.get(), &proposal, &objective,
                            {.learning_rate = 0.5, .seed = 11});
  factor::World train_world(fixture.tokens.num_tokens());
  // Interleave training (version bumps) with compiled scoring (rebuilds).
  Rng rng(303);
  for (int phase = 0; phase < 4; ++phase) {
    const learn::SampleRankStats stats = trainer.Train(&train_world, 500);
    EXPECT_GT(stats.proposals, 0u);
    fixture.naive->parameters() = fixture.compiled->parameters();
    fixture.ShuffleWorld(rng);
    for (int round = 0; round < 100; ++round) {
      const factor::Change change = fixture.RandomChange(rng);
      ASSERT_EQ(fixture.naive->LogScoreDelta(fixture.world, change),
                fixture.compiled->LogScoreDelta(fixture.world, change));
    }
  }
}

// The ER model's scratch rewrite must keep the local/global identity for
// multi-variable changes (split-merge moves touch whole clusters).
TEST(CompiledScoringTest, EntityResolutionDeltaMatchesGlobalDifference) {
  const std::vector<std::string> mentions = {
      "John Smith", "J. Smith",  "Smith",     "Acme Corp", "ACME",
      "Acme Inc",   "Boston",    "Boston MA", "J Smith",   "Acme"};
  EntityResolutionModel model(mentions);
  factor::World world(mentions.size());
  Rng rng(7);
  auto scratch = model.MakeScratch();
  ASSERT_NE(scratch, nullptr);
  for (int round = 0; round < 500; ++round) {
    for (size_t v = 0; v < world.size(); ++v) {
      world.Set(static_cast<factor::VarId>(v),
                static_cast<uint32_t>(rng.UniformInt(mentions.size())));
    }
    factor::Change change;
    const size_t k = 1 + rng.UniformInt(5);
    for (size_t i = 0; i < k; ++i) {
      change.Set(static_cast<factor::VarId>(rng.UniformInt(mentions.size())),
                 static_cast<uint32_t>(rng.UniformInt(mentions.size())));
    }
    const double local = model.LogScoreDelta(world, change, scratch.get());
    ASSERT_EQ(local, model.LogScoreDelta(world, change));  // Scratch parity.
    factor::World applied = world;
    applied.Apply(change);
    ASSERT_NEAR(local, model.LogScore(applied) - model.LogScore(world), 1e-9);
  }
}

// The vectorized Gibbs-conditional fast path: ConditionalRow must fill
// every candidate lane with the exact bits the per-candidate single-flip
// delta computes, across ≥1k randomized sites, and the no-move lane must
// be a clean zero (out[old] == +0.0, the candidate path's hard zero).
TEST(CompiledScoringTest, ConditionalRowMatchesPerCandidateBitwise) {
  CompiledVsNaive fixture(1200, 83);
  Rng rng(909);
  auto scratch = fixture.compiled->MakeScratch();
  double row[kNumLabels];
  // The uncompiled reference model offers no fast path: callers must fall
  // back to per-candidate scoring.
  EXPECT_FALSE(fixture.naive->ConditionalRow(fixture.world, 0, row, nullptr));

  size_t sites = 0;
  for (int round = 0; round < 2; ++round) {
    fixture.ShuffleWorld(rng);
    for (size_t v = 0; v < fixture.tokens.num_tokens(); ++v) {
      const auto var = static_cast<factor::VarId>(v);
      ASSERT_TRUE(fixture.compiled->ConditionalRow(fixture.world, var, row,
                                                   scratch.get()));
      const uint32_t old_label = fixture.world.Get(var);
      ASSERT_EQ(row[old_label], 0.0) << "site " << v;
      ASSERT_FALSE(std::signbit(row[old_label])) << "site " << v;
      factor::Change change;
      for (uint32_t y = 0; y < kNumLabels; ++y) {
        if (y == old_label) continue;
        change.Clear();
        change.Set(var, y);
        // Bitwise against both the compiled per-candidate path (the lane's
        // summation-order contract) and the naive Parameters::Get path.
        ASSERT_EQ(row[y], fixture.compiled->LogScoreDelta(fixture.world,
                                                          change))
            << "site " << v << " label " << y;
        ASSERT_EQ(row[y], fixture.naive->LogScoreDelta(fixture.world, change))
            << "site " << v << " label " << y;
      }
      ++sites;
    }
  }
  EXPECT_GE(sites, 1000u);
}

// Same contract for the entity-resolution model's scatter-based rows.
TEST(CompiledScoringTest, EntityResolutionConditionalRowMatchesPerCandidate) {
  const std::vector<std::string> mentions = {
      "John Smith", "J. Smith",  "Smith",     "Acme Corp", "ACME",
      "Acme Inc",   "Boston",    "Boston MA", "J Smith",   "Acme"};
  EntityResolutionModel model(mentions);
  const size_t n = mentions.size();
  factor::World world(n);
  Rng rng(4242);
  std::vector<double> row(n);
  factor::Change change;
  for (int round = 0; round < 150; ++round) {
    for (size_t v = 0; v < n; ++v) {
      world.Set(static_cast<factor::VarId>(v),
                static_cast<uint32_t>(rng.UniformInt(n)));
    }
    for (size_t v = 0; v < n; ++v) {
      const auto var = static_cast<factor::VarId>(v);
      ASSERT_TRUE(model.ConditionalRow(world, var, row.data(), nullptr));
      const uint32_t cur = world.Get(var);
      ASSERT_EQ(row[cur], 0.0);
      for (uint32_t c = 0; c < n; ++c) {
        if (c == cur) continue;
        change.Clear();
        change.Set(var, c);
        ASSERT_EQ(row[c], model.LogScoreDelta(world, change))
            << "round " << round << " var " << v << " cluster " << c;
      }
    }
  }
}

// The batched kernel's seed-schedule contract: Step(n) must land on the
// same world as n single Steps at the same seed, accept the same count,
// and show listeners the same applied stream in the same order — both at
// the default flush interval and at the per-step (limit=1) ablation.
TEST(CompiledScoringTest, BatchedStepMatchesSingleStepsBitwise) {
  CompiledVsNaive fixture(600, 31);
  const size_t kSteps = 6000;
  const uint64_t kSeed = 123;

  struct Runner {
    factor::World world;
    DocumentBatchProposal proposal;
    infer::MetropolisHastings sampler;
    std::vector<factor::AppliedAssignment> stream;

    Runner(const CompiledVsNaive& f, uint64_t seed)
        : world(f.tokens.num_tokens()),
          proposal(&f.tokens.docs, {.proposals_per_batch = 250}),
          sampler(*f.compiled, &world, &proposal, seed) {
      sampler.AddListener([this](
          const std::vector<factor::AppliedAssignment>& applied) {
        stream.insert(stream.end(), applied.begin(), applied.end());
      });
    }
  };

  Runner single(fixture, kSeed);
  Runner batched(fixture, kSeed);
  Runner per_step(fixture, kSeed);
  per_step.sampler.set_mirror_batch_limit(1);

  size_t accepted_single = 0;
  for (size_t i = 0; i < kSteps; ++i) {
    if (single.sampler.Step()) ++accepted_single;
  }
  const size_t accepted_batched = batched.sampler.Step(kSteps);
  const size_t accepted_per_step = per_step.sampler.Step(kSteps);

  EXPECT_EQ(accepted_single, accepted_batched);
  EXPECT_EQ(accepted_single, accepted_per_step);
  EXPECT_EQ(single.sampler.num_accepted(), batched.sampler.num_accepted());
  for (size_t v = 0; v < single.world.size(); ++v) {
    const auto var = static_cast<factor::VarId>(v);
    ASSERT_EQ(single.world.Get(var), batched.world.Get(var)) << "var " << v;
    ASSERT_EQ(single.world.Get(var), per_step.world.Get(var)) << "var " << v;
  }
  ASSERT_EQ(single.stream.size(), batched.stream.size());
  ASSERT_EQ(single.stream.size(), per_step.stream.size());
  for (size_t i = 0; i < single.stream.size(); ++i) {
    ASSERT_EQ(single.stream[i].var, batched.stream[i].var) << "record " << i;
    ASSERT_EQ(single.stream[i].old_value, batched.stream[i].old_value);
    ASSERT_EQ(single.stream[i].new_value, batched.stream[i].new_value);
    ASSERT_EQ(single.stream[i].var, per_step.stream[i].var) << "record " << i;
    ASSERT_EQ(single.stream[i].old_value, per_step.stream[i].old_value);
    ASSERT_EQ(single.stream[i].new_value, per_step.stream[i].new_value);
  }
}

// The row-driven Gibbs kernel (PR 10): with a single-site Gibbs proposal,
// Step(n)'s fused path — candidate sampled straight from ConditionalRow,
// row[new] reused as the acceptance's model ratio — must replay the
// reference two-call path (GibbsProposal::Propose + LogScoreDelta) exactly:
// same accepted count, same applied stream, same final world, bitwise,
// over ≥1k steps. Prefetch pipelining must change nothing either. Runs on
// shadow-carrying worlds so the narrow label lane is exercised end to end.
TEST(CompiledScoringTest, RowGibbsMatchesReferenceBitwise) {
  CompiledVsNaive fixture(800, 47);
  const size_t kSteps = 4000;
  const uint64_t kSeed = 777;

  struct Runner {
    factor::World world;
    infer::GibbsProposal proposal;
    infer::MetropolisHastings sampler;
    std::vector<factor::AppliedAssignment> stream;

    Runner(const CompiledVsNaive& f, uint64_t seed)
        : world(f.tokens.pdb->world()),  // Carries the label shadow.
          proposal(*f.compiled),
          sampler(*f.compiled, &world, &proposal, seed) {
      sampler.AddListener(
          [this](const std::vector<factor::AppliedAssignment>& applied) {
            stream.insert(stream.end(), applied.begin(), applied.end());
          });
    }
  };

  Runner fused(fixture, kSeed);
  ASSERT_TRUE(fused.sampler.row_gibbs());  // The default.
  ASSERT_TRUE(fused.world.has_label_shadow());
  Runner fused_prefetch(fixture, kSeed);
  fused_prefetch.sampler.set_prefetch(true);
  Runner reference(fixture, kSeed);
  reference.sampler.set_row_gibbs(false);
  Runner single(fixture, kSeed);
  single.sampler.set_row_gibbs(false);

  const size_t accepted_fused = fused.sampler.Step(kSteps);
  const size_t accepted_fused_prefetch = fused_prefetch.sampler.Step(kSteps);
  const size_t accepted_reference = reference.sampler.Step(kSteps);
  size_t accepted_single = 0;
  for (size_t i = 0; i < kSteps; ++i) {
    if (single.sampler.Step()) ++accepted_single;
  }

  EXPECT_EQ(accepted_fused, accepted_reference);
  EXPECT_EQ(accepted_fused, accepted_fused_prefetch);
  EXPECT_EQ(accepted_fused, accepted_single);
  ASSERT_EQ(fused.stream.size(), reference.stream.size());
  ASSERT_EQ(fused.stream.size(), fused_prefetch.stream.size());
  ASSERT_EQ(fused.stream.size(), single.stream.size());
  EXPECT_GT(fused.stream.size(), 0u);
  for (size_t i = 0; i < fused.stream.size(); ++i) {
    ASSERT_EQ(fused.stream[i].var, reference.stream[i].var) << "record " << i;
    ASSERT_EQ(fused.stream[i].old_value, reference.stream[i].old_value);
    ASSERT_EQ(fused.stream[i].new_value, reference.stream[i].new_value);
    ASSERT_EQ(fused.stream[i].var, fused_prefetch.stream[i].var);
    ASSERT_EQ(fused.stream[i].new_value, fused_prefetch.stream[i].new_value);
    ASSERT_EQ(fused.stream[i].var, single.stream[i].var);
    ASSERT_EQ(fused.stream[i].new_value, single.stream[i].new_value);
  }
  for (size_t v = 0; v < fused.world.size(); ++v) {
    const auto var = static_cast<factor::VarId>(v);
    ASSERT_EQ(fused.world.Get(var), reference.world.Get(var)) << "var " << v;
    ASSERT_EQ(fused.world.Get(var), fused_prefetch.world.Get(var));
    ASSERT_EQ(fused.world.Get(var), single.world.Get(var));
  }
  EXPECT_TRUE(fused.world.LabelShadowConsistent());

  // The fallback (non-compiled) row fill must fuse identically too: the
  // naive model has no ConditionalRow, so the fused kernel's per-candidate
  // fill is exercised against the reference pair.
  factor::World naive_fused_world = fixture.tokens.pdb->world();
  factor::World naive_reference_world = fixture.tokens.pdb->world();
  infer::GibbsProposal naive_prop_a(*fixture.naive);
  infer::GibbsProposal naive_prop_b(*fixture.naive);
  infer::MetropolisHastings naive_fused_chain(*fixture.naive,
                                              &naive_fused_world,
                                              &naive_prop_a, kSeed);
  infer::MetropolisHastings naive_reference_chain(*fixture.naive,
                                                  &naive_reference_world,
                                                  &naive_prop_b, kSeed);
  naive_reference_chain.set_row_gibbs(false);
  EXPECT_EQ(naive_fused_chain.Step(1000), naive_reference_chain.Step(1000));
  for (size_t v = 0; v < naive_fused_world.size(); ++v) {
    const auto var = static_cast<factor::VarId>(v);
    ASSERT_EQ(naive_fused_world.Get(var), naive_reference_world.Get(var))
        << "var " << v;
  }
}

// Label-layout parity (PR 10): a world carrying the uint8 shadow lane and
// a shadow-less world must walk identical trajectories — the shadow is a
// write-through mirror, never a second source of truth. Also pins the
// shared-vs-private hot block equivalence: a model that builds its own
// block (TokenPdb without one) scores bitwise like one sharing the pdb's.
TEST(CompiledScoringTest, HotBlockLayoutsWalkIdenticalTrajectories) {
  const SyntheticCorpus corpus =
      GenerateCorpus({.num_tokens = 900, .tokens_per_doc = 60, .seed = 53});
  TokenPdb tokens = BuildTokenPdb(corpus);
  SkipChainNerModel model(tokens);
  model.InitializeFromCorpusStatistics(tokens);

  factor::World shadowed = tokens.pdb->world();
  ASSERT_TRUE(shadowed.has_label_shadow());
  factor::World plain = tokens.pdb->world();
  plain.DisableLabelShadow();
  ASSERT_FALSE(plain.has_label_shadow());

  DocumentBatchProposal proposal_a(&tokens.docs, {.proposals_per_batch = 200});
  DocumentBatchProposal proposal_b(&tokens.docs, {.proposals_per_batch = 200});
  infer::MetropolisHastings chain_a(model, &shadowed, &proposal_a, 99);
  infer::MetropolisHastings chain_b(model, &plain, &proposal_b, 99);
  EXPECT_EQ(chain_a.Step(5000), chain_b.Step(5000));
  for (size_t v = 0; v < shadowed.size(); ++v) {
    const auto var = static_cast<factor::VarId>(v);
    ASSERT_EQ(shadowed.Get(var), plain.Get(var)) << "var " << v;
  }
  EXPECT_TRUE(shadowed.LabelShadowConsistent());

  // Shared vs private hot block: strip the pdb-owned block from a second
  // TokenPdb over the same corpus; the model then builds its own, which
  // must be structurally identical and score bitwise the same.
  TokenPdb tokens2 = BuildTokenPdb(corpus);
  tokens2.hot.reset();
  SkipChainNerModel private_model(tokens2);
  private_model.InitializeFromCorpusStatistics(tokens2);
  EXPECT_EQ(model.num_skip_edges(), private_model.num_skip_edges());
  Rng rng(2718);
  factor::World world(tokens.num_tokens());
  factor::Change change;
  for (int round = 0; round < 300; ++round) {
    const auto var =
        static_cast<factor::VarId>(rng.UniformInt(tokens.num_tokens()));
    change.Clear();
    change.Set(var, static_cast<uint32_t>(rng.UniformInt(kNumLabels)));
    ASSERT_EQ(model.LogScoreDelta(world, change),
              private_model.LogScoreDelta(world, change));
    const auto span_a = model.SkipPartners(var);
    const auto span_b = private_model.SkipPartners(var);
    ASSERT_EQ(span_a.size(), span_b.size());
    for (size_t i = 0; i < span_a.size(); ++i) {
      ASSERT_EQ(span_a[i], span_b[i]);
    }
  }
}

// Prefetched propose (PR 10): DocumentBatchProposal with prefetch hints
// enabled must draw the identical rng stream and produce the identical
// trajectory — the hints peek only CLONED rngs. Covers the §5.1 kernel
// path the step benches measure.
TEST(CompiledScoringTest, PrefetchedProposeIsBitwiseInvisible) {
  CompiledVsNaive fixture(700, 37);
  const uint64_t kSeed = 456;

  factor::World world_a = fixture.tokens.pdb->world();
  factor::World world_b = fixture.tokens.pdb->world();
  DocumentBatchProposal proposal_a(&fixture.tokens.docs,
                                   {.proposals_per_batch = 150});
  DocumentBatchProposal proposal_b(&fixture.tokens.docs,
                                   {.proposals_per_batch = 150});
  proposal_b.EnablePrefetch(fixture.compiled.get());
  infer::MetropolisHastings chain_a(*fixture.compiled, &world_a, &proposal_a,
                                    kSeed);
  infer::MetropolisHastings chain_b(*fixture.compiled, &world_b, &proposal_b,
                                    kSeed);
  EXPECT_EQ(chain_a.Step(6000), chain_b.Step(6000));
  EXPECT_EQ(chain_a.rng().Next(), chain_b.rng().Next());  // Streams aligned.
  for (size_t v = 0; v < world_a.size(); ++v) {
    const auto var = static_cast<factor::VarId>(v);
    ASSERT_EQ(world_a.Get(var), world_b.Get(var)) << "var " << v;
  }
  EXPECT_TRUE(world_b.LabelShadowConsistent());
}

// End-to-end across the mirror boundary: Queries 1–4 evaluated on one
// shared chain must answer bitwise-identically whether the accepted-jump
// stream crosses into the DB mirror once per batch (default) or once per
// accepted step (mirror_batch_limit = 1, the unbatched ablation).
TEST(CompiledScoringTest, SharedChainBatchedMirrorMatchesPerStepOnQueries) {
  CompiledVsNaive fixture(400, 61);
  fixture.tokens.pdb->set_model(fixture.compiled.get());
  auto clone = fixture.tokens.pdb->Clone();
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 300, .burn_in = 600, .seed = 2026};
  const std::vector<const char*> queries = {kQuery1, kQuery2, kQuery3,
                                            kQuery4};

  DocumentBatchProposal batched_proposal(&fixture.tokens.docs,
                                         {.proposals_per_batch = 300});
  DocumentBatchProposal per_step_proposal(&fixture.tokens.docs,
                                          {.proposals_per_batch = 300});
  pdb::SharedChainEvaluator batched(fixture.tokens.pdb.get(),
                                    &batched_proposal, options);
  pdb::SharedChainEvaluator per_step(clone.get(), &per_step_proposal, options);
  per_step.sampler().set_mirror_batch_limit(1);

  std::vector<ra::PlanPtr> plans;
  for (const char* query : queries) {
    plans.push_back(sql::PlanQuery(query, fixture.tokens.pdb->db()));
    batched.AddQuery(plans.back().get());
    plans.push_back(sql::PlanQuery(query, clone->db()));
    per_step.AddQuery(plans.back().get());
  }
  batched.Run(12);
  per_step.Run(12);

  for (size_t q = 0; q < queries.size(); ++q) {
    const pdb::QueryAnswer& a = batched.answer(q);
    const pdb::QueryAnswer& b = per_step.answer(q);
    EXPECT_EQ(a.num_samples(), b.num_samples()) << queries[q];
    const auto a_sorted = a.Sorted();
    const auto b_sorted = b.Sorted();
    ASSERT_EQ(a_sorted.size(), b_sorted.size()) << queries[q];
    for (size_t i = 0; i < a_sorted.size(); ++i) {
      EXPECT_EQ(a_sorted[i].first, b_sorted[i].first) << queries[q];
      EXPECT_EQ(a_sorted[i].second, b_sorted[i].second)
          << queries[q] << " tuple " << a_sorted[i].first.ToString();
    }
    EXPECT_EQ(a.SquaredError(b), 0.0) << queries[q];
  }
}

// CompiledWeights in isolation: registration-order term sums, lazy refresh
// semantics, and the stability of data() pointers across rebuilds.
TEST(CompiledWeightsTest, TableMirrorsParametersLazily) {
  factor::Parameters params;
  factor::CompiledWeights compiled;
  const size_t t = compiled.AddTable(
      3, 4,
      {[](uint32_t i, uint32_t j) { return factor::MakeFeatureId("a", i, j); },
       [](uint32_t, uint32_t j) { return factor::MakeFeatureId("b", j); }});
  const double* data = compiled.data(t);
  EXPECT_FALSE(compiled.fresh(params));

  params.Set(factor::MakeFeatureId("a", 1, 2), 0.25);
  params.Set(factor::MakeFeatureId("b", 2), -1.5);
  EXPECT_TRUE(compiled.EnsureFresh(params));
  EXPECT_FALSE(compiled.EnsureFresh(params));  // Fresh: no rebuild.
  EXPECT_EQ(compiled.data(t), data);           // Storage never moves.
  EXPECT_EQ(data[1 * 4 + 2], 0.25 + -1.5);
  EXPECT_EQ(data[0 * 4 + 2], -1.5);  // "a" term absent, "b" term present.
  EXPECT_EQ(data[1 * 4 + 3], 0.0);

  params.Update(factor::MakeFeatureId("a", 1, 2), 1.0);
  EXPECT_FALSE(compiled.fresh(params));
  EXPECT_TRUE(compiled.EnsureFresh(params));
  EXPECT_EQ(data[1 * 4 + 2], 1.25 + -1.5);
}

TEST(CompiledWeightsTest, CopiedParametersAlwaysInvalidate) {
  factor::Parameters a;
  a.Set(factor::MakeFeatureId("w", 1), 2.0);
  factor::Parameters b;
  b.Set(factor::MakeFeatureId("w", 1), 5.0);

  factor::CompiledWeights compiled;
  const size_t t = compiled.AddTable(
      1, 2,
      {[](uint32_t, uint32_t j) { return factor::MakeFeatureId("w", j); }});
  compiled.EnsureFresh(a);
  EXPECT_EQ(compiled.data(t)[1], 2.0);
  // Even if the source's counter is not ahead of ours, assignment must
  // leave the version moved so stale tables cannot be read.
  a = b;
  EXPECT_FALSE(compiled.fresh(a));
  compiled.EnsureFresh(a);
  EXPECT_EQ(compiled.data(t)[1], 5.0);
}

}  // namespace
}  // namespace ie
}  // namespace fgpdb
