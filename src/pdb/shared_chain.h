// Multi-query evaluation on ONE MCMC chain — the paper's central economy.
//
// One chain's delta stream can maintain many materialized views at once
// (§4.2): the sampler walks k steps, the row-granular accumulator is
// drained ONCE, and the resulting DeltaSet fans out to every registered
// view. K queries therefore cost one sampling pass plus only the subtrees
// their deltas touch — the per-view subscription maps (PR 3) mean a query
// whose base tables were untouched this round is skipped outright via the
// chain-level union subscription map.
//
// SharedChainEvaluator generalizes MaterializedQueryEvaluator /
// NaiveQueryEvaluator (query_evaluator.h) from one plan to a set of plans;
// with a single query its per-sample schedule — and therefore its answer —
// is bitwise-identical to the single-query evaluators at a fixed seed. It
// is the engine under both api::Session (the public front door) and the
// parallel evaluator's per-chain bodies.
#ifndef FGPDB_PDB_SHARED_CHAIN_H_
#define FGPDB_PDB_SHARED_CHAIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "infer/shard_runner.h"
#include "pdb/convergence_stats.h"
#include "pdb/query_evaluator.h"
#include "pdb/shard_plan.h"
#include "util/logging.h"

namespace fgpdb {
namespace pdb {

class SharedChainEvaluator {
 public:
  /// `materialized` selects Alg. 1 (delta-maintained views, the default)
  /// or Alg. 3 (full query per sample) for every registered query.
  /// `proposal` may be nullptr ONLY when EnableSharding() follows before
  /// Initialize() — sharded chains build per-shard proposals from the plan.
  SharedChainEvaluator(ProbabilisticDatabase* pdb, infer::Proposal* proposal,
                       EvaluatorOptions options, bool materialized = true);

  /// Switches the chain to sharded execution (call before Initialize(),
  /// with a nullptr ctor proposal): S = plan.num_shards shard-local chains
  /// advance this evaluator's world concurrently, each under its own RNG
  /// stream derived from options.seed (S == 1: options.seed verbatim), and
  /// each interval their accepted-jump buffers drain in fixed shard order
  /// into the ONE delta fan-out — views, marginals, and convergence stats
  /// see a single logical chain, bitwise-reproducible at a fixed seed
  /// regardless of thread interleaving. A single-shard plan replays the
  /// serial chain bitwise (same RNG stream, same assignment stream, and
  /// the row-granular accumulator depends only on stream order — deferred
  /// per-interval mirroring coalesces identically to per-flush mirroring).
  void EnableSharding(const ShardPlan& plan, ShardedExecution exec = {});

  /// Registers a query; returns its slot index. Callable before or after
  /// Initialize(): a view registered mid-run is brought current against
  /// the chain's world (pending deltas are folded into the existing views
  /// first, without observing a sample) and starts counting samples from
  /// its registration.
  size_t AddQuery(const ra::PlanNode* plan);

  /// Runs burn-in and the one exhaustive evaluation per registered view.
  void Initialize();
  bool initialized() const { return initialized_; }

  /// Advances the chain k steps, drains the delta accumulator once, fans
  /// the DeltaSet out to every subscribed view, and folds each view's
  /// answer set into its marginal counts.
  void DrawSample();

  /// Initialize (if needed) plus `n` samples.
  void Run(uint64_t n);

  /// Scheduler entry point (serve layer): initialize if needed, then draw
  /// at most `max_samples` samples, stopping early only when convergence
  /// tracking is enabled and every query's bound holds. Returns the samples
  /// actually drawn. The chain advances exactly as Run() would — a sequence
  /// of quanta at a fixed seed is bitwise-identical to one call of their
  /// sum, which is what lets a fair scheduler interleave many tenants'
  /// chains without perturbing any single tenant's trajectory.
  uint64_t RunQuantum(uint64_t max_samples);

  /// Switches the chain to run-until-error-bound mode: every registered
  /// query tracks per-tuple batched-means standard errors, and a query
  /// whose answer is within ±eps at the requested confidence freezes — its
  /// view is paused (drained from the delta fan-out, stops paying apply
  /// cost) and its marginals stop moving. Tracking never perturbs the chain
  /// trajectory: with an unreachable eps the answers are bitwise-identical
  /// to an untracked run. Call before Initialize().
  void EnableConvergenceTracking(const ConvergenceOptions& options);
  bool tracking_convergence() const { return tracking_; }

  /// Initialize (if needed) plus samples until every query converged or
  /// `max_samples` were drawn. Returns the samples actually drawn — the
  /// fig4b "samples used" number. Requires EnableConvergenceTracking.
  uint64_t RunUntilConverged(uint64_t max_samples);

  /// Whether `slot`'s answer satisfied the error bound and froze.
  bool converged(size_t slot) const { return slots_.at(slot).converged; }
  size_t num_converged() const { return num_converged_; }
  bool all_converged() const {
    return tracking_ && num_converged_ == slots_.size();
  }

  /// Per-tuple error stats for `slot`; null unless tracking is enabled.
  const MarginalErrorStats* error_stats(size_t slot) const {
    return slots_.at(slot).stats.get();
  }

  /// z(confidence)·max-SE for `slot` — +inf until estimable, 0 for an
  /// empty answer. Requires tracking.
  double MaxHalfWidth(size_t slot) const;

  size_t num_queries() const { return slots_.size(); }
  const QueryAnswer& answer(size_t slot) const { return slots_.at(slot).answer; }

  /// Distinct tuples in the current world's answer for `slot`.
  std::vector<Tuple> CurrentAnswerSet(size_t slot) const;

  /// The maintained view for `slot` (materialized mode only).
  const view::MaterializedView& materialized_view(size_t slot) const;

  /// The serial sampler. Unavailable under sharding (the chain is S
  /// samplers — use the counter accessors below, which cover both modes).
  infer::MetropolisHastings& sampler() {
    FGPDB_CHECK(sampler_ != nullptr) << "no serial sampler under sharding";
    return *sampler_;
  }
  const infer::MetropolisHastings& sampler() const {
    FGPDB_CHECK(sampler_ != nullptr) << "no serial sampler under sharding";
    return *sampler_;
  }

  bool sharded() const { return runner_ != nullptr; }
  size_t num_shards() const {
    return runner_ != nullptr ? runner_->num_shards() : 1;
  }

  /// Proposal/acceptance counters of the logical chain: the serial
  /// sampler's counters, or the order-independent sum over shard chains.
  uint64_t num_proposed() const {
    return runner_ != nullptr ? runner_->num_proposed()
                              : sampler_->num_proposed();
  }
  uint64_t num_accepted() const {
    return runner_ != nullptr ? runner_->num_accepted()
                              : sampler_->num_accepted();
  }
  double acceptance_rate() const {
    const uint64_t proposed = num_proposed();
    return proposed == 0 ? 0.0
                         : static_cast<double>(num_accepted()) /
                               static_cast<double>(proposed);
  }

  /// Current thinning interval (changes over time under adaptive mode).
  uint64_t steps_per_sample() const { return steps_per_sample_; }

  /// Wall-clock seconds the last DrawSample spent on the routed delta path
  /// (TakeDeltas + Apply across every view) — what adaptive thinning
  /// steers by.
  double last_apply_seconds() const { return last_apply_seconds_; }

  /// Chain-level union subscription map: base table → number of scan
  /// operators across ALL registered views reading it. A delta for a table
  /// absent here is invisible to every registered query.
  const std::unordered_map<std::string, size_t>& subscriptions() const {
    return subscriptions_;
  }

  /// Views skipped entirely (no subscribed table touched) across all
  /// DrawSample rounds — the chain-level routing win.
  uint64_t views_skipped() const { return views_skipped_; }

 private:
  struct Slot {
    const ra::PlanNode* plan = nullptr;
    std::unique_ptr<view::MaterializedView> view;  // null in naive mode
    QueryAnswer answer;
    /// Batched-means error tracking; null unless tracking is enabled.
    std::unique_ptr<MarginalErrorStats> stats;
    /// Set once the error bound held: the slot stops observing samples and
    /// its view is paused. Monotone — a frozen slot never thaws.
    bool converged = false;
  };

  /// Folds `slot`'s current answer set into its marginal counts (and the
  /// error tracker when tracking).
  void ObserveSample(Slot* slot);
  /// Freezes `slot` if the error bound holds; updates the union map.
  void MaybeFreeze(Slot* slot);
  /// True if any table with a non-empty delta in `deltas` is subscribed to
  /// by `view`.
  static bool ViewTouched(const view::MaterializedView& view,
                          const view::DeltaSet& deltas);

  /// Advances the logical chain `n` transitions: the serial sampler (which
  /// mirrors per flush), or the shard runner followed by its fixed-order
  /// merge into the database mirror + delta accumulator.
  void StepChain(size_t n);

  ProbabilisticDatabase* pdb_;
  EvaluatorOptions options_;
  const bool materialized_;
  std::vector<Slot> slots_;
  std::unique_ptr<infer::MetropolisHastings> sampler_;
  /// Sharded execution (EnableSharding); null on the serial path.
  std::unique_ptr<infer::ShardRunner> runner_;
  uint64_t steps_per_sample_;
  // Reused every interval: TakeDeltas recycles its table buckets.
  view::DeltaSet delta_buf_;
  double last_apply_seconds_ = 0.0;
  std::unordered_map<std::string, size_t> subscriptions_;
  uint64_t views_skipped_ = 0;
  bool initialized_ = false;

  // Run-until-error-bound state.
  bool tracking_ = false;
  ConvergenceOptions convergence_;
  double z_ = 0.0;  // ZForConfidence(convergence_.confidence)
  size_t num_converged_ = 0;
};

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_SHARED_CHAIN_H_
