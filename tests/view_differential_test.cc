// Randomized differential test for the routed delta pipeline: drive
// MaterializedViews with ~1k-batch random insert/delete/update delta
// streams over a two-table schema and assert, after every batch, that the
// maintained contents equal a full ra::Executor re-run. Batches randomly
// touch one table, both tables, or neither, so routing (skipping subtrees
// whose base tables saw no delta) and coalescing are exercised by
// construction — any routing bug that drops or double-applies a delta
// diverges from the oracle within a few rounds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ra/executor.h"
#include "sql/binder.h"
#include "test_helpers.h"
#include "view/incremental.h"

namespace fgpdb {
namespace {

using testing::ToMultiset;

// R(ID pk, K, A) and S(ID pk, K, C): joinable on K, with numeric payloads
// for aggregates and low-cardinality values for distinct/grouping.
struct TwoTableDb {
  Database db;
  Table* r = nullptr;
  Table* s = nullptr;

  TwoTableDb() {
    Schema r_schema(
        {
            Attribute{"ID", ValueType::kInt64},
            Attribute{"K", ValueType::kInt64},
            Attribute{"A", ValueType::kInt64},
        },
        /*primary_key=*/0);
    Schema s_schema(
        {
            Attribute{"ID", ValueType::kInt64},
            Attribute{"K", ValueType::kInt64},
            Attribute{"C", ValueType::kInt64},
        },
        /*primary_key=*/0);
    r = db.CreateTable("R", std::move(r_schema));
    s = db.CreateTable("S", std::move(s_schema));
  }
};

// Random DML driver for one table, recording every change as a −/+ delta.
// Keys are drawn from a small domain so joins and groups collide often.
class TableDriver {
 public:
  TableDriver(Table* table, const std::string& name, int64_t id_base)
      : table_(table), name_(name), next_id_(id_base) {}

  void Step(Rng& rng, view::DeltaSet* deltas) {
    const double r = rng.Uniform();
    if (r < 0.45 || live_.empty()) {
      Insert(rng, deltas);
    } else if (r < 0.8) {
      Update(rng, deltas);
    } else {
      Delete(rng, deltas);
    }
  }

 private:
  Value RandomKey(Rng& rng) {
    return Value::Int(static_cast<int64_t>(rng.UniformInt(5u)));
  }
  Value RandomPayload(Rng& rng) {
    return Value::Int(static_cast<int64_t>(rng.UniformInt(4u)));
  }

  void Insert(Rng& rng, view::DeltaSet* deltas) {
    Tuple t{Value::Int(next_id_++), RandomKey(rng), RandomPayload(rng)};
    live_.push_back(table_->Insert(t));
    deltas->ForTable(name_).Add(t, 1);
  }

  void Update(Rng& rng, view::DeltaSet* deltas) {
    const size_t pick = rng.UniformInt(live_.size());
    const RowId row = live_[pick];
    const Tuple old_tuple = table_->Get(row);
    // Mutate K or the payload (never the primary key).
    table_->UpdateField(row, rng.Bernoulli(0.5) ? 1 : 2, RandomPayload(rng));
    deltas->ForTable(name_).Add(old_tuple, -1);
    deltas->ForTable(name_).Add(table_->Get(row), 1);
  }

  void Delete(Rng& rng, view::DeltaSet* deltas) {
    const size_t pick = rng.UniformInt(live_.size());
    const RowId row = live_[pick];
    deltas->ForTable(name_).Add(table_->Get(row), -1);
    table_->Delete(row);
    live_[pick] = live_.back();
    live_.pop_back();
  }

  Table* table_;
  std::string name_;
  std::vector<RowId> live_;
  int64_t next_id_;
};

class DifferentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DifferentialTest, RoutedPipelineMatchesExecutorOnRandomStreams) {
  TwoTableDb fixture;
  TableDriver dr(fixture.r, "R", 0);
  TableDriver ds(fixture.s, "S", 10000);
  Rng rng(20260728);

  // Seed both tables before compiling the view.
  {
    view::DeltaSet ignored;
    for (int i = 0; i < 25; ++i) {
      dr.Step(rng, &ignored);
      ds.Step(rng, &ignored);
    }
  }
  ra::PlanPtr plan = sql::PlanQuery(GetParam(), fixture.db);
  view::MaterializedView view(*plan);
  view.Initialize(fixture.db);
  ASSERT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, fixture.db)));

  constexpr int kRounds = 1000;
  for (int round = 0; round < kRounds; ++round) {
    view::DeltaSet deltas;
    // Touch R only / S only / both / neither, with a bias toward single-
    // table rounds (the routing case) and occasional empty rounds.
    const double which = rng.Uniform();
    const int ops = 1 + static_cast<int>(rng.UniformInt(3u));
    if (which < 0.4) {
      for (int i = 0; i < ops; ++i) dr.Step(rng, &deltas);
    } else if (which < 0.8) {
      for (int i = 0; i < ops; ++i) ds.Step(rng, &deltas);
    } else if (which < 0.95) {
      for (int i = 0; i < ops; ++i) {
        dr.Step(rng, &deltas);
        ds.Step(rng, &deltas);
      }
    }  // else: empty round.
    view.Apply(deltas);
    ASSERT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, fixture.db)))
        << "divergence at round " << round << " for query: " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorShapes, DifferentialTest,
    ::testing::Values(
        // Selection + projection over one table (S deltas must be ignored).
        "SELECT A FROM R WHERE K >= 2",
        // Join on K — deltas on either side, plus both-sides rounds that
        // exercise the ΔL⋈ΔR cross term.
        "SELECT R.A, S.C FROM R, S WHERE R.K = S.K",
        // Join with a residual predicate.
        "SELECT R.ID FROM R, S WHERE R.K = S.K AND R.A < S.C",
        // Aggregate over a join.
        "SELECT R.K, COUNT(*), SUM(S.C) FROM R, S WHERE R.K = S.K "
        "GROUP BY R.K",
        // Grouped aggregates over one table.
        "SELECT K, COUNT(*), SUM(A), MIN(A), MAX(A) FROM R GROUP BY K",
        // Distinct over a projection.
        "SELECT DISTINCT K, A FROM R",
        // Self-join: one table's delta feeds both scan subtrees.
        "SELECT T1.A, T2.A FROM R T1, R T2 WHERE T1.K = T2.K"));

TEST(DifferentialAccumulatorTest, AccumulatorDrivenStreamMatchesExecutor) {
  // Same oracle, but deltas are produced by the insert-time coalescing
  // DeltaAccumulator over in-place updates — including rows flipped many
  // times and rows reverted within one interval, which must net out.
  TwoTableDb fixture;
  Rng rng(42);
  for (int64_t i = 0; i < 30; ++i) {
    fixture.r->Insert(Tuple{Value::Int(i),
                            Value::Int(static_cast<int64_t>(rng.UniformInt(5u))),
                            Value::Int(static_cast<int64_t>(rng.UniformInt(4u)))});
  }
  ra::PlanPtr plan = sql::PlanQuery(
      "SELECT K, COUNT(*), SUM(A) FROM R GROUP BY K", fixture.db);
  view::MaterializedView view(*plan);
  view.Initialize(fixture.db);

  view::DeltaAccumulator acc;
  view::DeltaSet deltas;
  for (int round = 0; round < 1000; ++round) {
    // Several in-place updates per round, deliberately hammering few rows.
    const int updates = 1 + static_cast<int>(rng.UniformInt(6u));
    for (int u = 0; u < updates; ++u) {
      const RowId row = rng.UniformInt(30u);
      acc.RecordPreImage("R", row, fixture.r->Get(row));
      fixture.r->UpdateField(
          row, rng.Bernoulli(0.5) ? 1 : 2,
          Value::Int(static_cast<int64_t>(rng.UniformInt(4u))));
    }
    acc.Flush(fixture.db, &deltas);
    EXPECT_TRUE(acc.empty());
    view.Apply(deltas);
    deltas.Clear();
    ASSERT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, fixture.db)))
        << "divergence at round " << round;
  }
}

TEST(DeltaAccumulatorTest, OscillationCoalescesAtInsertTime) {
  TwoTableDb fixture;
  const RowId row =
      fixture.r->Insert(Tuple{Value::Int(1), Value::Int(2), Value::Int(3)});
  view::DeltaAccumulator acc;
  // Flip A through several values and back to the original.
  for (int64_t v : {7, 9, 11, 3}) {
    acc.RecordPreImage("R", row, fixture.r->Get(row));
    fixture.r->UpdateField(row, 2, Value::Int(v));
  }
  EXPECT_EQ(acc.rows_touched(), 1u);  // One pre-image despite four flips.
  view::DeltaSet deltas;
  acc.Flush(fixture.db, &deltas);
  // Net change is zero: the flush emits nothing.
  EXPECT_TRUE(deltas.empty());
  EXPECT_TRUE(acc.empty());

  // A non-reverting run emits exactly one −pre-image/+current pair.
  for (int64_t v : {5, 8}) {
    acc.RecordPreImage("R", row, fixture.r->Get(row));
    fixture.r->UpdateField(row, 2, Value::Int(v));
  }
  acc.Flush(fixture.db, &deltas);
  const view::DeltaMultiset& d = deltas.Get("R");
  EXPECT_EQ(d.distinct_size(), 2u);
  EXPECT_EQ(d.Count(Tuple{Value::Int(1), Value::Int(2), Value::Int(3)}), -1);
  EXPECT_EQ(d.Count(Tuple{Value::Int(1), Value::Int(2), Value::Int(8)}), 1);
}

TEST(RoutingTest, SubscriptionsExposeScannedTables) {
  TwoTableDb fixture;
  ra::PlanPtr plan = sql::PlanQuery(
      "SELECT T1.A, T2.A FROM R T1, R T2 WHERE T1.K = T2.K", fixture.db);
  // Plan metadata: the self-join scans R twice.
  const std::vector<std::string> scanned = plan->ScannedTables();
  EXPECT_EQ(scanned, (std::vector<std::string>{"R", "R"}));

  view::MaterializedView view(*plan);
  const auto& subs = view.subscriptions();
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs.at("R"), 2u);
}

TEST(RoutingTest, UntouchedSubtreesAreSkippedWithoutVisits) {
  TwoTableDb fixture;
  for (int64_t i = 0; i < 5; ++i) {
    fixture.r->Insert(Tuple{Value::Int(i), Value::Int(i % 2), Value::Int(i)});
    fixture.s->Insert(
        Tuple{Value::Int(100 + i), Value::Int(i % 2), Value::Int(i)});
  }
  ra::PlanPtr plan =
      sql::PlanQuery("SELECT R.A, S.C FROM R, S WHERE R.K = S.K", fixture.db);
  view::MaterializedView view(*plan);
  view.Initialize(fixture.db);
  const auto before = view.contents();

  // A delta for an unsubscribed table is ignored without entering the tree.
  view::DeltaSet unrelated;
  unrelated.ForTable("ZZZ").Add(Tuple{Value::Int(1)}, 1);
  view.Apply(unrelated);
  EXPECT_EQ(view.contents(), before);
  const view::ApplyStats& s1 = view.stats();
  EXPECT_EQ(s1.rounds, 1u);
  EXPECT_EQ(s1.operators_visited, 0u);
  EXPECT_EQ(s1.tables_routed, 0u);
  EXPECT_EQ(s1.tables_ignored, 1u);

  // A delta touching only R must skip S's scan subtree entirely.
  view::DeltaSet r_only;
  const Tuple fresh{Value::Int(50), Value::Int(0), Value::Int(9)};
  fixture.r->Insert(fresh);
  r_only.ForTable("R").Add(fresh, 1);
  view.Apply(r_only);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, fixture.db)));
  const view::ApplyStats& s2 = view.stats();
  EXPECT_EQ(s2.rounds, 2u);
  EXPECT_EQ(s2.tables_routed, 1u);
  // At least S's scan was skipped this round.
  EXPECT_GE(s2.operators_skipped, 1u);
  EXPECT_GT(s2.operators_visited, 0u);
}

TEST(JoinCrossTermTest, BothSidesLargeSameKeyDeltasStayConsistent) {
  // The ΔL⋈ΔR term with every delta tuple sharing one join key — the shape
  // that was quadratic under the nested-loop cross term. Correctness here
  // guards the fold-before-probe rewrite (ΔL⋈R_old then ΔR⋈L_new).
  TwoTableDb fixture;
  ra::PlanPtr plan =
      sql::PlanQuery("SELECT R.A, S.C FROM R, S WHERE R.K = S.K", fixture.db);
  view::MaterializedView view(*plan);
  view.Initialize(fixture.db);

  view::DeltaSet deltas;
  for (int64_t i = 0; i < 100; ++i) {
    const Tuple rt{Value::Int(i), Value::Int(7), Value::Int(i)};
    const Tuple st{Value::Int(1000 + i), Value::Int(7), Value::Int(-i)};
    fixture.r->Insert(rt);
    fixture.s->Insert(st);
    deltas.ForTable("R").Add(rt, 1);
    deltas.ForTable("S").Add(st, 1);
  }
  view.Apply(deltas);  // One round: 100×100 same-key pairs cross sides.
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, fixture.db)));

  // Now delete half of each side in one round.
  view::DeltaSet removal;
  for (int64_t i = 0; i < 50; ++i) {
    removal.ForTable("R").Add(Tuple{Value::Int(i), Value::Int(7), Value::Int(i)},
                              -1);
    removal.ForTable("S").Add(
        Tuple{Value::Int(1000 + i), Value::Int(7), Value::Int(-i)}, -1);
  }
  for (RowId row = 0; row < 50; ++row) {
    fixture.r->Delete(row);
    fixture.s->Delete(row);
  }
  view.Apply(removal);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, fixture.db)));
}

}  // namespace
}  // namespace fgpdb
