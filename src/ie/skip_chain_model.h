// Skip-chain conditional random field for NER (paper §5.1, Figure 3).
//
// Factor templates over the TOKEN relation's LABEL variables:
//   emission:   ψ(string_i, y_i)          — string/label compatibility
//   transition: ψ(y_i, y_{i+1})           — 1st-order Markov dependency
//   bias:       ψ(y_i)                    — label frequency
//   skip:       ψ(y_i, y_j) for same-string token pairs within a document
//               (capitalized strings only, following Sutton & McCallum) —
//               this is what makes the graph loopy and exact inference
//               intractable, the paper's central difficulty.
//
// The model is *templated*: no factor objects are instantiated. Score and
// feature deltas are computed lazily from the variables a Change touches
// (paper §3.4 / Appendix 9.2), so an MH step costs O(1) w.r.t. corpus size.
//
// Scoring is *compiled* (factor/compiled_weights.h): the per-template
// weights are materialized into dense tables — node [string × label]
// (emission + bias folded), transition [label × label], skip-agreement
// [label] — so a walk step is pure array indexing: zero hashing, zero
// allocation. Tables hold the same doubles Parameters::Get returns and
// refresh lazily when the parameter version moves, so SampleRank training
// and compiled inference compose; scores are bitwise-identical to the
// uncompiled path (kept available via use_compiled_scoring=false as the
// parity reference and ablation).
//
// The per-token structure (string ids, sequence neighbors, skip partners)
// is read from a packed, cache-line-aligned ie::TokenHotBlock rather than
// separate per-field allocations, and variable labels are read from the
// world's narrow uint8 shadow when one is attached (factor::World::
// EnableLabelShadow) — together these keep a step's whole working set in a
// handful of cache lines. Shadow reads are value-identical to World::Get
// by the write-through invariant, so scores are bitwise-equal either way.
#ifndef FGPDB_IE_SKIP_CHAIN_MODEL_H_
#define FGPDB_IE_SKIP_CHAIN_MODEL_H_

#include <memory>
#include <vector>

#include "factor/compiled_weights.h"
#include "factor/model.h"
#include "ie/token_hot_block.h"
#include "ie/token_pdb.h"

namespace fgpdb {
namespace ie {

struct SkipChainOptions {
  /// Include skip factors (false = plain linear-chain CRF; the ablation of
  /// DESIGN.md and the tractable baseline for exact-inference tests).
  bool use_skip_edges = true;
  /// Include transition factors.
  bool use_transitions = true;
  /// Skip groups larger than this fall back to consecutive-occurrence
  /// chaining to bound the quadratic pair count.
  size_t max_skip_group = 24;
  /// Score from the compiled dense tables (the default). false = probe
  /// Parameters::Get per factor side — the reference implementation the
  /// compiled layer is tested bitwise against, and the ablation measuring
  /// what compilation buys.
  bool use_compiled_scoring = true;
};

class SkipChainNerModel final : public factor::FeatureModel {
 public:
  /// The model scores against a TokenHotBlock: `tokens.hot` when its
  /// structure matches `options` (the default — every default-structure
  /// model shares the one block BuildTokenPdb built), otherwise a private
  /// block built here from `tokens`. In the shared case the block lives in
  /// `tokens`, so `tokens` must outlive the model. Thread-safe for
  /// concurrent scoring once constructed (parameters are read-only during
  /// inference), as long as concurrent callers pass their own
  /// MakeScratch() scratch.
  SkipChainNerModel(const TokenPdb& tokens, SkipChainOptions options = {});

  // --- factor::Model --------------------------------------------------------
  /// Scratch-less convenience overload backed by member scratch:
  /// allocation-free, but NOT safe for concurrent calls on a shared model.
  double LogScoreDelta(const factor::World& world,
                       const factor::Change& change) const override;
  double LogScoreDelta(const factor::World& world,
                       const factor::Change& change,
                       factor::ScoreScratch* scratch) const override;
  /// Whole Gibbs conditional over the label axis as one contiguous pass:
  /// a node-row gather, a prev-row gather, a next-column gather (via the
  /// transposed transition table), and a skip-partner scatter — each a
  /// length-kNumLabels loop the compiler can vectorize. Every lane adds
  /// the same terms in the same order as CompiledSingleDelta, so rows are
  /// bitwise-equal to the per-candidate path (kept as the ablation
  /// reference). Returns false when compiled scoring is off.
  bool ConditionalRow(const factor::World& world, factor::VarId var,
                      double* out,
                      factor::ScoreScratch* scratch) const override;
  /// Cache hints (see factor::Model): PrefetchSite touches the variable's
  /// 16-byte hot record and its label-shadow byte (address arithmetic
  /// only — safe for a speculatively predicted future site);
  /// PrefetchSiteOperands reads the warmed record to hint the node-table
  /// row and the skip-partner span for the variable about to be scored.
  void PrefetchSite(const factor::World& world,
                    factor::VarId var) const override;
  void PrefetchSiteOperands(const factor::World& world,
                            factor::VarId var) const override;
  std::unique_ptr<factor::ScoreScratch> MakeScratch() const override;
  double LogScore(const factor::World& world) const override;
  /// Locality for sharded execution: node factors are single-variable,
  /// chain edges link sequence neighbors, and skip partners are
  /// same-document by construction — so any partition that keeps each
  /// document whole is certified exact. Checked against the instantiated
  /// templates (hot-block next/skip spans), honoring the enabled factor
  /// types.
  bool FactorsRespectPartition(
      const std::vector<uint32_t>& partition) const override;
  size_t num_variables() const override { return hot_->num_tokens(); }
  size_t domain_size(factor::VarId) const override { return kNumLabels; }

  // --- factor::FeatureModel --------------------------------------------------
  void FeatureDelta(const factor::World& world, const factor::Change& change,
                    factor::SparseVector* out) const override;
  void FeatureDelta(const factor::World& world, const factor::Change& change,
                    factor::SparseVector* out,
                    factor::ScoreScratch* scratch) const override;
  factor::Parameters& parameters() override { return params_; }
  const factor::Parameters& parameters() const override { return params_; }

  /// Lightweight view over one token's skip partners in the hot block's
  /// CSR array — iterable like the vector the model historically stored.
  struct PartnerSpan {
    const factor::VarId* first;
    const factor::VarId* last;
    const factor::VarId* begin() const { return first; }
    const factor::VarId* end() const { return last; }
    size_t size() const { return static_cast<size_t>(last - first); }
    bool empty() const { return first == last; }
    factor::VarId front() const { return *first; }
    factor::VarId operator[](size_t i) const { return first[i]; }
  };

  /// Skip partners of a variable (same-document, same-string tokens),
  /// sorted ascending.
  PartnerSpan SkipPartners(factor::VarId var) const {
    return {hot_->partners_begin(var), hot_->partners_end(var)};
  }

  /// The hot block this model scores against (shared or private).
  const TokenHotBlock& hot_block() const { return *hot_; }

  /// Number of skip edges instantiated (diagnostics; each edge counted once).
  size_t num_skip_edges() const { return hot_->num_skip_edges; }

  /// True if the compiled tables mirror the current parameters (they
  /// refresh lazily on the next scoring call after a weight update).
  bool compiled_fresh() const { return compiled_.fresh(params_); }

  /// Seeds emission/bias/transition weights from simple corpus statistics
  /// (log-odds of TRUTH labels). Gives a usable model without running
  /// SampleRank — benches use this to skip training time.
  void InitializeFromCorpusStatistics(const TokenPdb& tokens,
                                      double skip_weight = 1.0,
                                      double emission_scale = 2.0);

 private:
  // Per-factor log scores under a label accessor (the uncompiled reference
  // path; the compiled path reads the same values from the dense tables).
  template <typename GetLabel>
  double NodeScore(factor::VarId v, const GetLabel& get) const;
  template <typename GetLabel>
  double EdgeScore(factor::VarId a, factor::VarId b, const GetLabel& get) const;
  template <typename GetLabel>
  double SkipScore(factor::VarId a, factor::VarId b, const GetLabel& get) const;

  /// Reusable buffers for the factor instances one change touches:
  /// nodes, chain edges, skip edges. Purely an allocation cache.
  struct TouchedScratch final : factor::ScoreScratch {
    std::vector<factor::VarId> nodes;
    std::vector<std::pair<factor::VarId, factor::VarId>> edges;
    std::vector<std::pair<factor::VarId, factor::VarId>> skips;
  };

  // Enumerates the touched factor instances into `out`, deduplicated so
  // factors shared between changed variables are scored exactly once.
  void CollectTouched(const factor::Change& change, TouchedScratch* out) const;

  /// Rebuilds the dense tables if the parameter version moved.
  void EnsureCompiled() const { compiled_.EnsureFresh(params_); }

  /// Single-assignment fast path: the §5.1 kernel flips one label per
  /// step, and for one variable the touched enumeration is already sorted
  /// and duplicate-free (skip partners are kept ascending), so this skips
  /// scratch, sorting, and patched-world scans outright. Dispatches on the
  /// world's label layout (shadow lane vs uint32 array); both read the
  /// same values, so the delta is layout-independent bitwise.
  double CompiledSingleDelta(const factor::World& world, factor::VarId var,
                             uint32_t new_label) const;
  template <typename GetLabel>
  double CompiledSingleDeltaImpl(factor::VarId var, uint32_t new_label,
                                 const GetLabel& get) const;
  template <typename GetLabel>
  void ConditionalRowImpl(factor::VarId var, double* out,
                          const GetLabel& get) const;

  double CompiledLogScoreDelta(const factor::World& world,
                               const factor::Change& change,
                               TouchedScratch* scratch) const;
  double NaiveLogScoreDelta(const factor::World& world,
                            const factor::Change& change,
                            TouchedScratch* scratch) const;

  SkipChainOptions options_;
  factor::Parameters params_;
  /// The packed per-token structure this model scores against. Points at
  /// the TokenPdb's shared block when the skip options match it, else at
  /// owned_hot_.
  const TokenHotBlock* hot_ = nullptr;
  std::unique_ptr<TokenHotBlock> owned_hot_;

  // Compiled scoring state. The tables' backing storage never moves, so
  // the raw row pointers below stay valid across lazy rebuilds. mutable:
  // refreshed from const scoring paths (thread-safe, see CompiledWeights).
  mutable factor::CompiledWeights compiled_;
  const double* node_table_ = nullptr;   // [num_strings × kNumLabels]
  const double* trans_table_ = nullptr;  // [kNumLabels × kNumLabels]
  // Transposed transitions: entry (yn, v) = Get(TransitionFeature(v, yn)),
  // bitwise-equal to trans_table_[v*K+yn]. Gives ConditionalRow contiguous
  // access to the next-edge column that is strided in trans_table_.
  const double* trans_table_t_ = nullptr;  // [kNumLabels × kNumLabels]
  const double* skip_table_ = nullptr;   // [kNumLabels], both-labels-agree
  mutable TouchedScratch member_scratch_;  // Backs the scratch-less overload.
};

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_SKIP_CHAIN_MODEL_H_
