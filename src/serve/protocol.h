// The serve layer's wire protocol: newline-delimited text commands.
//
// One request per line, one response per request; multi-line responses
// (SNAPSHOT rows, STATS) end with a line reading "END". The grammar is
// deliberately small enough to drive by hand from a terminal, from a
// script file, or from a client program printing lines down a pipe —
// tools/fgpdb_serve is the stdin/stdout front end, and examples/ drive the
// same protocol in-process.
//
//   TENANT NEW [SERIAL | NAIVE | UNTIL <confidence> <eps>] [SEED <n>]
//                                  → OK tenant=<id>
//   TENANT CLOSE <id>              → OK
//   QUERY <tenant> <sql...>        → OK query=<qid>   (SQL = rest of line)
//   RUN <tenant> <samples>         → OK admitted=<samples>
//   SNAPSHOT <tenant> <qid> [TOP <k>]
//                                  → SNAPSHOT samples=<n> converged=<0|1>
//                                      half_width=<w> rows=<r>
//                                    <probability> <tuple>   × r
//                                    END
//   DRAIN                          → OK drained
//   STATS                          → STATS ... key=value lines ... END
//   QUIT                           → OK bye
//
// Failures answer `ERR <CODE> <message>` with CODE from StatusCodeName
// (OVERLOADED, NOT_FOUND, INVALID_ARGUMENT, UNAVAILABLE) — admission
// rejections are ordinary responses, not connection errors, so an
// open-loop client can retry them.
#ifndef FGPDB_SERVE_PROTOCOL_H_
#define FGPDB_SERVE_PROTOCOL_H_

#include <string>

#include "serve/server.h"

namespace fgpdb {
namespace serve {

class LineProtocol {
 public:
  struct Result {
    std::string response;  // Complete response text, '\n'-terminated.
    bool quit = false;     // QUIT was requested.
  };

  /// Borrows `server`; one LineProtocol per client connection (the parser
  /// itself is stateless between lines, so this is cheap).
  explicit LineProtocol(Server* server);

  /// Executes one request line (without trailing newline) and returns the
  /// full response. Blank lines and `#` comment lines answer "".
  Result HandleLine(const std::string& line);

 private:
  Server* server_;
};

}  // namespace serve
}  // namespace fgpdb

#endif  // FGPDB_SERVE_PROTOCOL_H_
