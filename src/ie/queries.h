// The paper's four evaluation queries (§5.3–§5.5, Appendix 9.1), verbatim
// except Query 3, which the paper writes with correlated subqueries; our
// SQL subset expresses the identical answer with COUNT_IF + HAVING
// (see DESIGN.md).
#ifndef FGPDB_IE_QUERIES_H_
#define FGPDB_IE_QUERIES_H_

namespace fgpdb {
namespace ie {

/// Query 1 (§5.3): every string labeled B-PER, with marginals.
inline constexpr const char* kQuery1 =
    "SELECT STRING FROM TOKEN WHERE LABEL = 'B-PER'";

/// Query 2 (§5.5): the number of person mentions (an aggregate whose answer
/// is a distribution over counts — Figure 7).
inline constexpr const char* kQuery2 =
    "SELECT COUNT(*) FROM TOKEN WHERE LABEL = 'B-PER'";

/// Query 3 (§5.5): documents whose person-mention count equals their
/// organization-mention count.
inline constexpr const char* kQuery3 =
    "SELECT DOC_ID FROM TOKEN GROUP BY DOC_ID "
    "HAVING COUNT_IF(LABEL = 'B-PER') = COUNT_IF(LABEL = 'B-ORG')";

/// Query 4 (Appendix 9.1): person mentions co-occurring (same document)
/// with a token 'Boston' labeled as an organization.
inline constexpr const char* kQuery4 =
    "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 "
    "WHERE T1.STRING = 'Boston' AND T1.LABEL = 'B-ORG' "
    "AND T1.DOC_ID = T2.DOC_ID AND T2.LABEL = 'B-PER'";

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_QUERIES_H_
