#!/usr/bin/env python3
"""Fail CI when the MH step kernel or sharded step throughput regresses.

Legacy (PR 7) step-kernel mode:

    check_step_regression.py <benchmark_out.json> <BENCH_pr7.json>

Compares each BM_MhStep/<n> real_time in the Google Benchmark JSON output
against regression_gate.baseline[<n>] in the committed baseline file and
fails (exit 1) when measured > baseline * max_regression_ratio * slack.

Sharded-throughput (PR 8) mode:

    check_step_regression.py --sharded <sweep_out.json> <BENCH_pr8.json>

Compares steps_per_sec per shard count in a fresh fig4a shard-sweep JSON
(bench_fig4a_scalability --sweep_only --shard_json=...) against the
committed baseline's results and fails when

    measured_steps_per_sec < baseline_steps_per_sec / (ratio * slack)

for any shard count present in BOTH files (the smoke sweep may cover a
subset of the committed shard counts). Corpus sizes need not match — the
per-step cost is size-independent (the §3.4 claim the PR 7 gate pins), so
steps/sec comparisons transfer; the committed sweep_steps/num_tokens are
printed for transparency.

Serve-latency (PR 9) mode:

    check_step_regression.py --serve <serve_out.json> <BENCH_pr9.json>

Compares the p99 (and p50) client-side snapshot latency in a fresh
bench_serve_multitenant JSON against the committed baseline and fails when

    measured_p99 > baseline_p99 * ratio * slack

Also fails when the fresh run reports any lost queries (server.lost != 0)
— the zero-rejected-then-lost invariant is part of the gate, not just the
bench's exit code. Latency tails are noisy on shared runners, so the
committed ratio is wide (5.0); workload shape (tenants/rounds) need not
match the baseline since p99 is per-operation.

Cache-layout (PR 10) mode:

    check_step_regression.py --layout <benchmark_out.json> <BENCH_pr10.json>

Gates the cache-resident step kernel: every BM_MhStep/<n> and
BM_ConditionalRow/<n> real_time in the Google Benchmark JSON with a size
present in layout_gate is checked against layout_gate.<family>[<n>] and
fails when measured > baseline * max_regression_ratio * slack. This is
the PR-7 gate's shape re-pinned on the SoA hot-block numbers: the raw
200k step (where the layout win is largest) plus the vectorized
conditional row that the fused row-Gibbs kernel samples from. It reuses
the same benchmark artifact (step_phases.json) the PR-7 gate consumes.

The committed baselines were measured on the dev VM; CI runners are at
least as fast, and the gate ratio is deliberately generous (default 1.25)
so only genuine regressions trip it. If a runner class is structurally
slower, set STEP_BENCH_SLACK (a multiplier, e.g. 1.5) rather than
loosening the committed ratio.
"""

import json
import os
import sys


def check_step_kernel(measured_path: str, baseline_path: str) -> int:
    with open(measured_path) as f:
        measured = json.load(f)
    with open(baseline_path) as f:
        gate = json.load(f)["regression_gate"]

    baseline = gate["baseline"]
    limit_ratio = float(gate["max_regression_ratio"])
    slack = float(os.environ.get("STEP_BENCH_SLACK", "1.0"))

    failures = []
    checked = 0
    for bench in measured.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_MhStep/"):
            continue
        size = name.split("/")[1]
        if size not in baseline:
            continue
        checked += 1
        ns = float(bench["real_time"])
        limit = baseline[size] * limit_ratio * slack
        status = "OK" if ns <= limit else "REGRESSION"
        print(f"{name}: {ns:.1f} ns (baseline {baseline[size]:.1f}, "
              f"limit {limit:.1f}) {status}")
        if ns > limit:
            failures.append(name)

    if checked == 0:
        print("error: no BM_MhStep results found in benchmark output")
        return 1
    if failures:
        print(f"step kernel regressed: {', '.join(failures)}")
        return 1
    print(f"step kernel within budget ({checked} sizes checked)")
    return 0


def check_sharded(measured_path: str, baseline_path: str) -> int:
    with open(measured_path) as f:
        measured = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    limit_ratio = float(baseline.get("max_regression_ratio", 1.25))
    slack = float(os.environ.get("STEP_BENCH_SLACK", "1.0"))
    base_by_shards = {
        int(row["shards"]): float(row["steps_per_sec"])
        for row in baseline.get("results", [])
    }
    print(f"baseline: {baseline.get('num_tokens', '?')} tokens, "
          f"{baseline.get('sweep_steps', '?')} steps/row, "
          f"{baseline.get('hardware', {}).get('cores', '?')} cores, "
          f"ratio {limit_ratio} x slack {slack}")

    failures = []
    checked = 0
    for row in measured.get("results", []):
        shards = int(row["shards"])
        if shards not in base_by_shards:
            continue
        checked += 1
        got = float(row["steps_per_sec"])
        floor = base_by_shards[shards] / (limit_ratio * slack)
        status = "OK" if got >= floor else "REGRESSION"
        print(f"shards={shards}: {got:,.0f} steps/s "
              f"(baseline {base_by_shards[shards]:,.0f}, floor {floor:,.0f}) "
              f"{status}")
        if got < floor:
            failures.append(f"shards={shards}")

    if checked == 0:
        print("error: no overlapping shard counts between sweep and baseline")
        return 1
    if failures:
        print(f"sharded step throughput regressed: {', '.join(failures)}")
        return 1
    print(f"sharded throughput within budget ({checked} shard counts checked)")
    return 0


def check_serve(measured_path: str, baseline_path: str) -> int:
    with open(measured_path) as f:
        measured = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    limit_ratio = float(baseline.get("max_regression_ratio", 5.0))
    slack = float(os.environ.get("STEP_BENCH_SLACK", "1.0"))
    base_lat = baseline["snapshot_latency_ns"]
    got_lat = measured["snapshot_latency_ns"]
    print(f"baseline: {baseline.get('tenants', '?')} tenants, "
          f"{baseline.get('queries', '?')} queries, "
          f"ratio {limit_ratio} x slack {slack}")

    failures = []
    lost = int(measured.get("server", {}).get("lost", 0))
    if lost != 0:
        print(f"lost queries: {lost} (must be 0) REGRESSION")
        failures.append("lost-queries")
    for quantile in ("p50", "p99"):
        got = float(got_lat[quantile])
        limit = float(base_lat[quantile]) * limit_ratio * slack
        status = "OK" if got <= limit else "REGRESSION"
        print(f"snapshot {quantile}: {got:,.0f} ns "
              f"(baseline {float(base_lat[quantile]):,.0f}, "
              f"limit {limit:,.0f}) {status}")
        if got > limit:
            failures.append(quantile)

    if failures:
        print(f"serve snapshot latency regressed: {', '.join(failures)}")
        return 1
    print("serve snapshot latency within budget")
    return 0


def check_layout(measured_path: str, baseline_path: str) -> int:
    with open(measured_path) as f:
        measured = json.load(f)
    with open(baseline_path) as f:
        gate = json.load(f)["layout_gate"]

    limit_ratio = float(gate["max_regression_ratio"])
    slack = float(os.environ.get("STEP_BENCH_SLACK", "1.0"))
    families = ("BM_MhStep", "BM_ConditionalRow")

    failures = []
    checked = 0
    for bench in measured.get("benchmarks", []):
        name = bench.get("name", "")
        for family in families:
            if not name.startswith(family + "/"):
                continue
            size = name.split("/")[1]
            baseline = gate.get(family, {})
            if size not in baseline:
                continue
            checked += 1
            ns = float(bench["real_time"])
            limit = float(baseline[size]) * limit_ratio * slack
            status = "OK" if ns <= limit else "REGRESSION"
            print(f"{name}: {ns:.1f} ns (baseline {float(baseline[size]):.1f}, "
                  f"limit {limit:.1f}) {status}")
            if ns > limit:
                failures.append(name)

    if checked == 0:
        print("error: no BM_MhStep/BM_ConditionalRow results matched "
              "the layout gate")
        return 1
    if failures:
        print(f"cache-resident layout regressed: {', '.join(failures)}")
        return 1
    print(f"cache-resident layout within budget ({checked} rows checked)")
    return 0


def main() -> int:
    args = sys.argv[1:]
    if len(args) == 3 and args[0] == "--sharded":
        return check_sharded(args[1], args[2])
    if len(args) == 3 and args[0] == "--serve":
        return check_serve(args[1], args[2])
    if len(args) == 3 and args[0] == "--layout":
        return check_layout(args[1], args[2])
    if len(args) == 2:
        return check_step_kernel(args[0], args[1])
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main())
