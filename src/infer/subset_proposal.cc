#include "infer/subset_proposal.h"

#include "util/logging.h"

namespace fgpdb {
namespace infer {

SubsetUniformProposal::SubsetUniformProposal(
    const factor::Model& model, std::vector<factor::VarId> variables)
    : model_(model), variables_(std::move(variables)) {
  FGPDB_CHECK(!variables_.empty()) << "empty proposal subset";
  for (factor::VarId v : variables_) {
    FGPDB_CHECK_LT(v, model_.num_variables());
  }
}

void SubsetUniformProposal::Propose(const factor::World& /*world*/, Rng& rng,
                                    factor::Change* change,
                                    double* log_ratio) {
  *log_ratio = 0.0;  // Symmetric within the subset.
  change->Clear();
  const factor::VarId var = variables_[rng.UniformInt(variables_.size())];
  change->Set(var,
              static_cast<uint32_t>(rng.UniformInt(model_.domain_size(var))));
}

}  // namespace infer
}  // namespace fgpdb
