#include "storage/tuple.h"

#include "util/string_util.h"

namespace fgpdb {

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<Value> values;
  values.reserve(a.arity() + b.arity());
  values.insert(values.end(), a.values_.begin(), a.values_.end());
  values.insert(values.end(), b.values_.begin(), b.values_.end());
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<size_t>& columns) const {
  std::vector<Value> values;
  values.reserve(columns.size());
  for (size_t c : columns) values.push_back(at(c));
  return Tuple(std::move(values));
}

void Tuple::ProjectInto(const std::vector<size_t>& columns, Tuple* out) const {
  out->values_.clear();
  out->values_.reserve(columns.size());
  for (size_t c : columns) out->values_.push_back(at(c));
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != other.values_[i]) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c < 0;
  }
  return values_.size() < other.values_.size();
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0x61c8864680b583ebULL;
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

}  // namespace fgpdb
