// Shard-local Metropolis–Hastings stepping with a deterministic merge.
//
// The NER workload's factor graph is embarrassingly partitionable: skip-
// chain factors and the §5.1 proposal kernel never leave a document, so a
// partition of the variables into per-document shards admits S *exact*
// shard-local chains — a change confined to shard s has a score delta
// computable from shard s alone (the Model::FactorsRespectPartition
// contract), so the shard walks compose into one valid chain over the full
// world. This is intra-chain parallelism: unlike the §5.4 replica chains
// (parallel_evaluator), all S shard chains advance ONE world and their
// accepted-jump streams merge into ONE logical delta stream.
//
// Determinism discipline (PR 6's merge rules, applied within a chain):
//   * shard s draws from its own RNG stream, DeriveSeed(seed, s) — a pure
//     function of (master seed, shard index), never of scheduling. S == 1
//     uses `seed` verbatim, so a one-shard runner replays the serial
//     sampler's exact trajectory bitwise.
//   * Step(n) splits the n transitions over shards by fixed arithmetic
//     (shard s gets n/S plus one of the first n%S remainders).
//   * each shard buffers its accepted assignments privately while stepping;
//     after the pool barrier the coordinator drains the buffers in fixed
//     shard order 0..S-1 through one sink. Downstream consumers (database
//     mirror, delta accumulator, views, convergence stats) therefore see a
//     single assignment stream whose content is independent of thread
//     interleaving — threaded and sequential runs agree bitwise.
//
// Safety: while stepping, shard chains write only World slots of their own
// shard (disjoint scalar objects — race-free by the C++ memory model) and
// read only their shard's slots for scoring (the locality contract again).
// This covers the world's label shadow too: World::Set writes through to
// shadow byte `var`, and distinct array bytes are distinct memory
// locations, so shard-disjoint writes stay race-free with the narrow lane
// attached. The database is untouched until the coordinator's
// single-threaded drain.
#ifndef FGPDB_INFER_SHARD_RUNNER_H_
#define FGPDB_INFER_SHARD_RUNNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "factor/model.h"
#include "infer/metropolis_hastings.h"
#include "infer/proposal.h"
#include "util/thread_pool.h"

namespace fgpdb {
namespace infer {

struct ShardRunnerOptions {
  /// Master seed. Shard s steps under DeriveSeed(seed, s) when S > 1;
  /// a single-shard runner uses `seed` verbatim (bitwise parity with a
  /// serial MetropolisHastings at the same seed).
  uint64_t seed = 1;
  /// Step shards on a thread pool; false = sequential in shard order
  /// (bitwise-identical results either way).
  bool use_threads = true;
  /// Worker threads when use_threads. 0 = min(S, hardware concurrency).
  size_t max_threads = 0;
};

class ShardRunner {
 public:
  /// Consumes one interval's merged assignment stream (the fixed-order
  /// concatenation of the shard buffers).
  using Sink =
      std::function<void(const std::vector<factor::AppliedAssignment>&)>;

  /// One chain per element of `proposals` (so S = proposals.size()), all
  /// advancing `world` in place. `partition` maps VarId → shard index and
  /// may be empty when S == 1 (everything is shard 0); when non-empty the
  /// caller vouches — normally via pdb::BuildShardPlan, which asks the
  /// model's FactorsRespectPartition — that factors and proposals respect
  /// it. `model` and `world` must outlive the runner.
  ShardRunner(const factor::Model& model, factor::World* world,
              std::vector<std::unique_ptr<Proposal>> proposals,
              std::vector<uint32_t> partition, ShardRunnerOptions options);

  size_t num_shards() const { return shards_.size(); }

  /// Runs `n` transitions split over the shards, then drains every shard's
  /// accepted-assignment buffer through `sink` in shard order 0..S-1 (one
  /// sink call per non-empty shard buffer). Returns accepted transitions.
  size_t Step(size_t n, const Sink& sink);

  /// Burn-in: `n` transitions split over shards with recording off — the
  /// world advances, nothing is buffered or merged. The split keeps the
  /// per-variable proposal density of a serial burn-in of length n (each
  /// shard holds ~1/S of the variables and takes ~n/S of the steps). The
  /// caller is responsible for resynchronizing any external mirror of the
  /// world afterwards (TupleBinding::StoreWorld).
  void RunBurnIn(size_t n);

  /// Sampler counters summed over shards (order-independent integer folds).
  uint64_t num_proposed() const;
  uint64_t num_accepted() const;
  double acceptance_rate() const {
    const uint64_t proposed = num_proposed();
    return proposed == 0 ? 0.0
                         : static_cast<double>(num_accepted()) /
                               static_cast<double>(proposed);
  }

  /// Transitions shard `shard` takes out of `n` total: the fixed
  /// n/S-plus-remainder split Step() uses.
  static size_t ShardSteps(size_t n, size_t shard, size_t num_shards) {
    return n / num_shards + (shard < n % num_shards ? 1 : 0);
  }

 private:
  struct Shard {
    std::unique_ptr<Proposal> proposal;
    std::unique_ptr<MetropolisHastings> chain;
    /// Accepted assignments since the last drain (listener-fed).
    std::vector<factor::AppliedAssignment> buffer;
  };

  /// Steps every shard (pool or sequential) without draining; returns the
  /// accepted-transition total.
  size_t StepShards(size_t n);

  std::vector<Shard> shards_;
  std::vector<uint32_t> partition_;
  /// False during burn-in: shard listeners drop instead of buffering.
  bool recording_ = true;
  /// Reused across intervals so Step() never pays thread spawn; null when
  /// sequential (one shard, use_threads off, or a single-thread cap).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_SHARD_RUNNER_H_
