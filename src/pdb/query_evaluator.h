// Sampling-based query evaluation (paper §4).
//
// Both evaluators estimate Pr[t ∈ Q(W)] (Eq. 4) by the sample average of
// Eq. 5 with thinning k between collected samples:
//
//   NaiveQueryEvaluator        — Algorithm 3: run the full query over every
//                                sampled world.
//   MaterializedQueryEvaluator — Algorithm 1: run the full query once, then
//                                maintain the answer through the Δ−/Δ+ sets
//                                with the Eq. 6 rewrites (src/view). Several
//                                orders of magnitude faster at scale (§5.3).
//
// Evaluators are stepwise (Initialize + DrawSample) so callers can record
// loss-versus-time series — exactly how the paper's figures are measured.
#ifndef FGPDB_PDB_QUERY_EVALUATOR_H_
#define FGPDB_PDB_QUERY_EVALUATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "infer/metropolis_hastings.h"
#include "pdb/probabilistic_database.h"
#include "ra/plan.h"
#include "view/incremental.h"

namespace fgpdb {
namespace pdb {

/// Marginal tuple probabilities: count of samples containing each tuple,
/// normalized by the number of samples (paper Alg. 1 lines m, z).
class QueryAnswer {
 public:
  /// Records one sample's answer set (distinct tuples only; a tuple's
  /// multiplicity within one world does not change membership).
  void ObserveSampleContaining(const std::vector<Tuple>& distinct_tuples);

  /// Marginal probability of `tuple` being in the answer.
  double Probability(const Tuple& tuple) const;

  /// All tuples with their marginals, sorted by tuple for determinism.
  std::vector<std::pair<Tuple, double>> Sorted() const;

  /// The `k` most probable tuples, ties broken by tuple order — the
  /// MystiQ-style top-k ranking the related work estimates by sampling.
  std::vector<std::pair<Tuple, double>> TopK(size_t k) const;

  uint64_t num_samples() const { return num_samples_; }

  /// Merges counts from another answer over the same query — used to
  /// average parallel chains (paper §5.4).
  void Merge(const QueryAnswer& other);

  /// Applies fn(tuple, count) to every tuple's raw sample count (the
  /// integer numerator of Probability). Iteration order is unspecified.
  void ForEachCount(
      const std::function<void(const Tuple&, uint64_t)>& fn) const {
    for (const auto& [tuple, count] : counts_) fn(tuple, count);
  }

  /// Element-wise squared error against another answer (the paper's
  /// evaluation loss). Tuples absent from one side count as probability 0.
  double SquaredError(const QueryAnswer& truth) const;

 private:
  std::unordered_map<Tuple, uint64_t, TupleHasher> counts_;
  uint64_t num_samples_ = 0;
};

struct EvaluatorOptions {
  /// MH walk-steps between collected samples (the paper's k; §5.2 uses
  /// 10,000 on the 10M-tuple corpus).
  uint64_t steps_per_sample = 1000;
  /// Walk-steps of burn-in before the first collected sample.
  uint64_t burn_in = 0;
  uint64_t seed = 42;

  /// §4.1's adaptive-k optimization: "Adaptively adjusting k to respond to
  /// these various issues". When enabled, the materialized evaluator
  /// adjusts k after each sample so that the measured routed-apply cost
  /// (draining the delta accumulator + routing it through the view) stays
  /// near `target_eval_fraction` of per-sample wall-clock: if the delta
  /// path is cheap relative to walking, k shrinks (collect counts more
  /// often — the ergodic theorems say every sample helps); if it is
  /// expensive, k grows (walk further between costly evaluations).
  /// Answer-set bookkeeping is deliberately excluded from the measured
  /// cost: it scales with the answer size, not with k, so including it
  /// would bias the controller toward over-thinning small-delta rounds.
  bool adaptive_thinning = false;
  double target_eval_fraction = 0.25;
  uint64_t min_steps_per_sample = 16;
  uint64_t max_steps_per_sample = 1 << 22;
};

class QueryEvaluator {
 public:
  virtual ~QueryEvaluator() = default;

  /// Prepares the evaluator (runs burn-in and any initial full query).
  virtual void Initialize() = 0;

  /// Advances the chain k steps and folds the new world's answer into the
  /// marginal counts.
  virtual void DrawSample() = 0;

  /// Runs Initialize (if needed) plus `n` samples.
  void Run(uint64_t n);

  const QueryAnswer& answer() const { return answer_; }

  /// Distinct tuples in the *current* world's answer (diagnostics).
  virtual std::vector<Tuple> CurrentAnswerSet() const = 0;

  bool initialized() const { return initialized_; }

 protected:
  QueryAnswer answer_;
  bool initialized_ = false;
};

/// Algorithm 3: full query per sample.
class NaiveQueryEvaluator final : public QueryEvaluator {
 public:
  NaiveQueryEvaluator(ProbabilisticDatabase* pdb, infer::Proposal* proposal,
                      const ra::PlanNode* plan, EvaluatorOptions options = {});

  void Initialize() override;
  void DrawSample() override;
  std::vector<Tuple> CurrentAnswerSet() const override;

  infer::MetropolisHastings& sampler() { return *sampler_; }

 private:
  ProbabilisticDatabase* pdb_;
  const ra::PlanNode* plan_;
  EvaluatorOptions options_;
  std::unique_ptr<infer::MetropolisHastings> sampler_;
};

/// Algorithm 1: query once, then maintain through deltas.
class MaterializedQueryEvaluator final : public QueryEvaluator {
 public:
  MaterializedQueryEvaluator(ProbabilisticDatabase* pdb,
                             infer::Proposal* proposal,
                             const ra::PlanNode* plan,
                             EvaluatorOptions options = {});

  void Initialize() override;
  void DrawSample() override;
  std::vector<Tuple> CurrentAnswerSet() const override;

  infer::MetropolisHastings& sampler() { return *sampler_; }

  /// The maintained view (for inspection / tests).
  const view::MaterializedView& materialized_view() const { return view_; }

  /// Current thinning interval (changes over time under adaptive mode).
  uint64_t steps_per_sample() const { return steps_per_sample_; }

  /// Wall-clock seconds the last DrawSample spent on the routed delta path
  /// (TakeDeltas + MaterializedView::Apply) — the cost adaptive thinning
  /// steers by.
  double last_apply_seconds() const { return last_apply_seconds_; }

 private:
  ProbabilisticDatabase* pdb_;
  EvaluatorOptions options_;
  view::MaterializedView view_;
  std::unique_ptr<infer::MetropolisHastings> sampler_;
  uint64_t steps_per_sample_ = 0;
  // Reused every interval: TakeDeltas recycles its table buckets.
  view::DeltaSet delta_buf_;
  double last_apply_seconds_ = 0.0;
};

}  // namespace pdb
}  // namespace fgpdb

#endif  // FGPDB_PDB_QUERY_EVALUATOR_H_
