#include "util/thread_pool.h"

#include <algorithm>

namespace fgpdb {

size_t ThreadPool::DefaultThreadCount(size_t num_tasks) {
  const size_t hardware = std::thread::hardware_concurrency();  // May be 0.
  return std::max<size_t>(1, std::min(num_tasks, hardware));
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace fgpdb
