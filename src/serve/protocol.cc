#include "serve/protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/logging.h"

namespace fgpdb {
namespace serve {
namespace {

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string UpperCopy(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

std::string Err(StatusCode code, const std::string& message) {
  return std::string("ERR ") + StatusCodeName(code) + " " + message + "\n";
}

std::string Err(const Status& status) {
  return Err(status.code, status.message);
}

/// The SQL payload of a QUERY line: everything after the tenant-id token.
std::string RestOfLine(const std::string& line, size_t num_lead_tokens) {
  size_t pos = 0;
  for (size_t t = 0; t < num_lead_tokens; ++t) {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    while (pos < line.size() && !std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  }
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  return line.substr(pos);
}

}  // namespace

LineProtocol::LineProtocol(Server* server) : server_(server) {
  FGPDB_CHECK(server != nullptr);
}

LineProtocol::Result LineProtocol::HandleLine(const std::string& line) {
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty() || tokens[0][0] == '#') return {"", false};
  const std::string cmd = UpperCopy(tokens[0]);

  if (cmd == "QUIT") return {"OK bye\n", true};

  if (cmd == "DRAIN") {
    server_->Drain();
    return {"OK drained\n", false};
  }

  if (cmd == "TENANT") {
    if (tokens.size() < 2) {
      return {Err(StatusCode::kInvalidArgument, "TENANT NEW|CLOSE ..."), false};
    }
    const std::string sub = UpperCopy(tokens[1]);
    if (sub == "NEW") {
      TenantOptions opts;
      size_t t = 2;
      while (t < tokens.size()) {
        const std::string word = UpperCopy(tokens[t]);
        if (word == "SERIAL") {
          opts.policy = api::ExecutionPolicy::Serial();
          ++t;
        } else if (word == "NAIVE") {
          opts.policy = api::ExecutionPolicy::Naive();
          ++t;
        } else if (word == "UNTIL" && t + 2 < tokens.size()) {
          double confidence = 0.0, eps = 0.0;
          if (!ParseDouble(tokens[t + 1], &confidence) ||
              !ParseDouble(tokens[t + 2], &eps) || eps <= 0.0) {
            return {Err(StatusCode::kInvalidArgument,
                        "UNTIL needs <confidence> <eps>"),
                    false};
          }
          // The resident-chain variant (one chain, batched-means errors):
          // the scheduler-friendly spelling — converged tenants yield.
          opts.policy = api::ExecutionPolicy::Until(confidence, eps,
                                                    /*num_chains=*/1);
          t += 3;
        } else if (word == "SEED" && t + 1 < tokens.size()) {
          uint64_t seed = 0;
          if (!ParseU64(tokens[t + 1], &seed)) {
            return {Err(StatusCode::kInvalidArgument, "SEED needs an integer"),
                    false};
          }
          opts.evaluator = server_->options().evaluator;
          opts.evaluator.seed = seed;
          opts.has_evaluator = true;
          t += 2;
        } else {
          return {Err(StatusCode::kInvalidArgument,
                      "unknown TENANT NEW argument '" + tokens[t] + "'"),
                  false};
        }
      }
      TenantId id = 0;
      const Status status = server_->CreateTenant(&id, std::move(opts));
      if (!status.ok()) return {Err(status), false};
      return {"OK tenant=" + std::to_string(id) + "\n", false};
    }
    if (sub == "CLOSE") {
      uint64_t id = 0;
      if (tokens.size() != 3 || !ParseU64(tokens[2], &id)) {
        return {Err(StatusCode::kInvalidArgument, "TENANT CLOSE <id>"), false};
      }
      const Status status = server_->CloseTenant(id);
      if (!status.ok()) return {Err(status), false};
      return {"OK\n", false};
    }
    return {Err(StatusCode::kInvalidArgument, "TENANT NEW|CLOSE ..."), false};
  }

  if (cmd == "QUERY") {
    uint64_t id = 0;
    if (tokens.size() < 3 || !ParseU64(tokens[1], &id)) {
      return {Err(StatusCode::kInvalidArgument, "QUERY <tenant> <sql...>"),
              false};
    }
    const std::string sql = RestOfLine(line, 2);
    QueryId query = 0;
    const Status status = server_->RegisterQuery(id, sql, &query);
    if (!status.ok()) return {Err(status), false};
    return {"OK query=" + std::to_string(query) + "\n", false};
  }

  if (cmd == "RUN") {
    uint64_t id = 0, samples = 0;
    if (tokens.size() != 3 || !ParseU64(tokens[1], &id) ||
        !ParseU64(tokens[2], &samples)) {
      return {Err(StatusCode::kInvalidArgument, "RUN <tenant> <samples>"),
              false};
    }
    const Status status = server_->Submit(id, samples);
    if (!status.ok()) return {Err(status), false};
    return {"OK admitted=" + std::to_string(samples) + "\n", false};
  }

  if (cmd == "SNAPSHOT") {
    uint64_t id = 0, query = 0;
    uint64_t top = 0;  // 0 = all rows
    const bool has_top = tokens.size() == 5 && UpperCopy(tokens[3]) == "TOP";
    if (!(tokens.size() == 3 || has_top) || !ParseU64(tokens[1], &id) ||
        !ParseU64(tokens[2], &query) ||
        (has_top && !ParseU64(tokens[4], &top))) {
      return {Err(StatusCode::kInvalidArgument,
                  "SNAPSHOT <tenant> <query> [TOP <k>]"),
              false};
    }
    api::QueryProgress progress;
    const Status status = server_->Snapshot(id, query, &progress);
    if (!status.ok()) return {Err(status), false};
    auto rows = progress.answer.Sorted();
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (top > 0 && rows.size() > top) rows.resize(top);
    std::ostringstream out;
    out << "SNAPSHOT samples=" << progress.samples
        << " converged=" << (progress.converged ? 1 : 0)
        << " half_width=" << progress.max_half_width
        << " rows=" << rows.size() << "\n";
    for (const auto& [tuple, probability] : rows) {
      out << probability << " " << tuple.ToString() << "\n";
    }
    out << "END\n";
    return {out.str(), false};
  }

  if (cmd == "STATS") {
    const SchedulerMetrics metrics = server_->metrics();
    const api::PlanCache::Stats cache = server_->plan_cache_stats();
    std::ostringstream out;
    out << "STATS\n"
        << "tenants=" << server_->num_tenants() << "\n"
        << "quanta=" << metrics.quanta_executed << "\n"
        << "samples_drawn=" << metrics.samples_drawn << "\n"
        << "admitted=" << metrics.submissions_admitted << "\n"
        << "rejected=" << metrics.submissions_rejected << "\n"
        << "converged_yields=" << metrics.converged_yields << "\n"
        << "snapshots=" << metrics.snapshots_served << "\n"
        << "snapshot_p50_ns=" << metrics.snapshot_latency.P50Nanos() << "\n"
        << "snapshot_p95_ns=" << metrics.snapshot_latency.P95Nanos() << "\n"
        << "snapshot_p99_ns=" << metrics.snapshot_latency.P99Nanos() << "\n"
        << "plan_cache_hits=" << cache.hits << "\n"
        << "plan_cache_misses=" << cache.misses << "\n"
        << "plan_cache_evictions=" << cache.evictions << "\n"
        << "plan_cache_hit_rate=" << cache.HitRate() << "\n"
        << "END\n";
    return {out.str(), false};
  }

  return {Err(StatusCode::kInvalidArgument, "unknown command '" + tokens[0] + "'"),
          false};
}

}  // namespace serve
}  // namespace fgpdb
