#include "ra/plan.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace fgpdb {
namespace ra {
namespace {

std::vector<PlanPtr> One(PlanPtr child) {
  std::vector<PlanPtr> v;
  v.push_back(std::move(child));
  return v;
}

std::vector<PlanPtr> Two(PlanPtr a, PlanPtr b) {
  std::vector<PlanPtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}

Schema ConcatSchemas(const Schema& a, const Schema& b) {
  std::vector<Attribute> attrs;
  attrs.reserve(a.arity() + b.arity());
  for (const auto& attr : a.attributes()) attrs.push_back(attr);
  for (const auto& attr : b.attributes()) {
    Attribute renamed = attr;
    // Disambiguate duplicate names from self-joins: suffix with #<i>.
    std::string candidate = renamed.name;
    int suffix = 2;
    auto taken = [&](const std::string& name) {
      for (const auto& existing : attrs) {
        if (existing.name == name) return true;
      }
      return false;
    };
    while (taken(candidate)) {
      candidate = renamed.name + "#" + std::to_string(suffix++);
    }
    renamed.name = candidate;
    attrs.push_back(std::move(renamed));
  }
  return Schema(std::move(attrs));
}

}  // namespace

void PlanNode::CollectScannedTables(std::vector<std::string>* out) const {
  if (kind_ == PlanKind::kScan) {
    out->push_back(static_cast<const ScanNode&>(*this).table_name());
  }
  for (const auto& child : children_) child->CollectScannedTables(out);
}

std::vector<std::string> PlanNode::ScannedTables() const {
  std::vector<std::string> out;
  CollectScannedTables(&out);
  return out;
}

std::string PlanNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const auto& child : children_) out += child->ToString(indent + 1);
  return out;
}

SelectNode::SelectNode(PlanPtr child, ExprPtr predicate)
    : PlanNode(PlanKind::kSelect, One(std::move(child))),
      predicate_(std::move(predicate)) {
  FGPDB_CHECK(predicate_ != nullptr);
  set_output_schema(this->child(0).output_schema());
}

ProjectNode::ProjectNode(PlanPtr child, std::vector<ExprPtr> outputs,
                         std::vector<std::string> names)
    : PlanNode(PlanKind::kProject, One(std::move(child))),
      outputs_(std::move(outputs)) {
  FGPDB_CHECK_EQ(outputs_.size(), names.size());
  std::vector<Attribute> attrs;
  attrs.reserve(outputs_.size());
  for (size_t i = 0; i < outputs_.size(); ++i) {
    // Output types depend on the data; record as NULL (any).
    attrs.push_back(Attribute{names[i], ValueType::kNull});
  }
  set_output_schema(Schema(std::move(attrs)));
}

std::string ProjectNode::Describe() const {
  std::vector<std::string> parts;
  parts.reserve(outputs_.size());
  for (const auto& e : outputs_) parts.push_back(e->ToString());
  return "Project(" + Join(parts, ", ") + ")";
}

JoinNode::JoinNode(PlanPtr left, PlanPtr right, std::vector<size_t> left_keys,
                   std::vector<size_t> right_keys, ExprPtr residual)
    : PlanNode(PlanKind::kJoin, Two(std::move(left), std::move(right))),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  FGPDB_CHECK_EQ(left_keys_.size(), right_keys_.size());
  set_output_schema(
      ConcatSchemas(child(0).output_schema(), child(1).output_schema()));
}

JoinNode::JoinNode(PlanPtr left, PlanPtr right,
                   std::vector<JoinKeyAlternative> alternatives,
                   ExprPtr residual)
    : PlanNode(PlanKind::kJoin, Two(std::move(left), std::move(right))),
      alternatives_(std::move(alternatives)),
      residual_(std::move(residual)) {
  FGPDB_CHECK(!alternatives_.empty());
  for (const auto& alt : alternatives_) {
    FGPDB_CHECK(!alt.left_keys.empty());
    FGPDB_CHECK_EQ(alt.left_keys.size(), alt.right_keys.size());
  }
  set_output_schema(
      ConcatSchemas(child(0).output_schema(), child(1).output_schema()));
}

std::string JoinNode::Describe() const {
  auto render_pairs = [](const std::vector<size_t>& lk,
                         const std::vector<size_t>& rk) {
    std::vector<std::string> conds;
    for (size_t i = 0; i < lk.size(); ++i) {
      conds.push_back("L$" + std::to_string(lk[i]) + "=R$" +
                      std::to_string(rk[i]));
    }
    return Join(conds, " AND ");
  };
  if (!alternatives_.empty()) {
    std::vector<std::string> alts;
    for (const auto& alt : alternatives_) {
      alts.push_back("(" + render_pairs(alt.left_keys, alt.right_keys) + ")");
    }
    std::string out = "HashJoinAny(" + Join(alts, " OR ");
    if (residual_ != nullptr) out += " AND " + residual_->ToString();
    out += ")";
    return out;
  }
  std::string conds = render_pairs(left_keys_, right_keys_);
  std::string out = left_keys_.empty() ? "CrossProduct" : "HashJoin";
  out += "(" + conds;
  if (residual_ != nullptr) {
    if (!conds.empty()) out += " AND ";
    out += residual_->ToString();
  }
  out += ")";
  return out;
}

std::string AggregateSpec::ToString() const {
  const char* name = "?";
  switch (kind) {
    case Kind::kCount:
      name = "COUNT";
      break;
    case Kind::kCountIf:
      name = "COUNT_IF";
      break;
    case Kind::kCountDistinct:
      name = "COUNT_DISTINCT";
      break;
    case Kind::kSum:
      name = "SUM";
      break;
    case Kind::kMin:
      name = "MIN";
      break;
    case Kind::kMax:
      name = "MAX";
      break;
    case Kind::kAvg:
      name = "AVG";
      break;
  }
  std::string out = name;
  out += "(";
  out += argument ? argument->ToString() : "*";
  out += ")";
  return out;
}

AggregateNode::AggregateNode(PlanPtr child, std::vector<size_t> group_by,
                             std::vector<AggregateSpec> aggregates)
    : PlanNode(PlanKind::kAggregate, One(std::move(child))),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {
  std::vector<Attribute> attrs;
  for (size_t col : group_by_) {
    attrs.push_back(this->child(0).output_schema().attribute(col));
  }
  for (const auto& spec : aggregates_) {
    attrs.push_back(Attribute{
        spec.output_name.empty() ? spec.ToString() : spec.output_name,
        ValueType::kNull});
  }
  set_output_schema(Schema(std::move(attrs)));
}

std::string AggregateNode::Describe() const {
  std::vector<std::string> parts;
  for (size_t col : group_by_) parts.push_back("$" + std::to_string(col));
  for (const auto& spec : aggregates_) parts.push_back(spec.ToString());
  return "Aggregate(" + Join(parts, ", ") + ")";
}

DistinctNode::DistinctNode(PlanPtr child)
    : PlanNode(PlanKind::kDistinct, One(std::move(child))) {
  set_output_schema(this->child(0).output_schema());
}

OrderByNode::OrderByNode(PlanPtr child, std::vector<size_t> keys,
                         bool ascending)
    : PlanNode(PlanKind::kOrderBy, One(std::move(child))),
      keys_(std::move(keys)),
      ascending_(ascending) {
  set_output_schema(this->child(0).output_schema());
}

std::string OrderByNode::Describe() const {
  std::vector<std::string> parts;
  for (size_t k : keys_) parts.push_back("$" + std::to_string(k));
  return std::string("OrderBy(") + Join(parts, ", ") +
         (ascending_ ? " ASC" : " DESC") + ")";
}

LimitNode::LimitNode(PlanPtr child, size_t limit)
    : PlanNode(PlanKind::kLimit, One(std::move(child))), limit_(limit) {
  set_output_schema(this->child(0).output_schema());
}

}  // namespace ra
}  // namespace fgpdb
