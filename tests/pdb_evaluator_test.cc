// Algorithm 1 vs Algorithm 3: with the same chain (same seed/proposal),
// the materialized evaluator must produce byte-identical marginals to the
// naive evaluator — the paper's Fig. 4 premise ("the two approaches
// generate the same set of samples"). The Query 1–4 harness runs through
// api::Session, expressing the comparison as an execution-policy swap
// (serial = Alg. 1 views, naive = Alg. 3) on the unified front door.
#include <gtest/gtest.h>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "pdb/query_evaluator.h"
#include "sql/binder.h"

namespace fgpdb {
namespace {

struct NerFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit NerFixture(size_t num_tokens, uint64_t seed = 11) {
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 60, .seed = seed});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  pdb::ProposalFactory MakeFactory() {
    return [this](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
      return std::make_unique<ie::DocumentBatchProposal>(
          &tokens.docs, ie::NerProposalOptions{.proposals_per_batch = 400});
    };
  }
};

class EvaluatorEquivalenceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(EvaluatorEquivalenceTest, NaiveAndMaterializedAgreeExactly) {
  // Two sessions over the same base world, two policies, same seeds:
  // identical chains, so identical answers are required, not just close.
  NerFixture fixture(600);
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 500, .burn_in = 1000, .seed = 99};

  auto naive_session =
      api::Session::Open({.database = fixture.tokens.pdb.get(),
                          .proposal_factory = fixture.MakeFactory(),
                          .evaluator = options,
                          .policy = api::ExecutionPolicy::Naive()});
  auto serial_session =
      api::Session::Open({.database = fixture.tokens.pdb.get(),
                          .proposal_factory = fixture.MakeFactory(),
                          .evaluator = options,
                          .policy = api::ExecutionPolicy::Serial()});
  api::ResultHandle naive = naive_session->Register(GetParam());
  api::ResultHandle materialized = serial_session->Register(GetParam());
  naive_session->Run(40);
  serial_session->Run(40);

  const auto answer_naive = naive.Snapshot().answer.Sorted();
  const auto answer_materialized = materialized.Snapshot().answer.Sorted();
  ASSERT_EQ(answer_naive.size(), answer_materialized.size())
      << "different answer supports for query: " << GetParam();
  for (size_t i = 0; i < answer_naive.size(); ++i) {
    EXPECT_EQ(answer_naive[i].first, answer_materialized[i].first);
    EXPECT_DOUBLE_EQ(answer_naive[i].second, answer_materialized[i].second)
        << "marginal mismatch on tuple " << answer_naive[i].first.ToString();
  }
  EXPECT_EQ(naive.Snapshot().answer.SquaredError(materialized.Snapshot().answer),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, EvaluatorEquivalenceTest,
                         ::testing::Values(ie::kQuery1, ie::kQuery2,
                                           ie::kQuery3, ie::kQuery4));

TEST(QueryAnswerTest, MarginalsAreSampleAverages) {
  pdb::QueryAnswer answer;
  const Tuple a{Value::String("x")};
  const Tuple b{Value::String("y")};
  answer.ObserveSampleContaining({a, b});
  answer.ObserveSampleContaining({a});
  answer.ObserveSampleContaining({a});
  answer.ObserveSampleContaining({});
  EXPECT_DOUBLE_EQ(answer.Probability(a), 0.75);
  EXPECT_DOUBLE_EQ(answer.Probability(b), 0.25);
  EXPECT_DOUBLE_EQ(answer.Probability(Tuple{Value::String("z")}), 0.0);
  EXPECT_EQ(answer.num_samples(), 4u);
}

TEST(QueryAnswerTest, DeterministicTupleHasProbabilityOne) {
  // Paper §4: a tuple in the answer of every world is deterministic.
  pdb::QueryAnswer answer;
  const Tuple a{Value::Int(1)};
  for (int i = 0; i < 10; ++i) answer.ObserveSampleContaining({a});
  EXPECT_DOUBLE_EQ(answer.Probability(a), 1.0);
}

TEST(QueryAnswerTest, MergeAveragesAcrossChains) {
  pdb::QueryAnswer a, b;
  const Tuple t{Value::Int(7)};
  a.ObserveSampleContaining({t});
  a.ObserveSampleContaining({});
  b.ObserveSampleContaining({t});
  b.ObserveSampleContaining({t});
  a.Merge(b);
  EXPECT_EQ(a.num_samples(), 4u);
  EXPECT_DOUBLE_EQ(a.Probability(t), 0.75);
}

TEST(QueryAnswerTest, SquaredErrorCoversBothSupports) {
  pdb::QueryAnswer a, b;
  const Tuple x{Value::Int(1)};
  const Tuple y{Value::Int(2)};
  a.ObserveSampleContaining({x});        // P_a(x)=1
  b.ObserveSampleContaining({y});        // P_b(y)=1
  // Error = (1-0)^2 for x + (0-1)^2 for y.
  EXPECT_DOUBLE_EQ(a.SquaredError(b), 2.0);
  EXPECT_DOUBLE_EQ(b.SquaredError(a), 2.0);
}

TEST(EvaluatorTest, AnswersConvergeWithMoreSamples) {
  // The any-time property (paper §5.3): loss decreases with samples. We
  // check that a long run's marginal for a deterministic-ish tuple is more
  // extreme than a 1-sample estimate's coarse {0,1} support would suggest.
  NerFixture fixture(400);
  ra::PlanPtr plan = sql::PlanQuery(ie::kQuery1, fixture.tokens.pdb->db());
  ie::DocumentBatchProposal proposal(&fixture.tokens.docs,
                                     {.proposals_per_batch = 400});
  pdb::MaterializedQueryEvaluator evaluator(
      fixture.tokens.pdb.get(), &proposal, plan.get(),
      {.steps_per_sample = 200, .burn_in = 4000, .seed = 3});
  evaluator.Run(300);
  // At least one person-name string should be (nearly) always in the answer.
  double best = 0.0;
  for (const auto& [tuple, p] : evaluator.answer().Sorted()) {
    (void)tuple;
    best = std::max(best, p);
  }
  EXPECT_GE(best, 0.9);
}

TEST(EvaluatorTest, CurrentAnswerSetMatchesBetweenEvaluators) {
  NerFixture fixture(300);
  auto world_a = fixture.tokens.pdb->Clone();
  auto world_b = fixture.tokens.pdb->Clone();
  ra::PlanPtr plan_a = sql::PlanQuery(ie::kQuery1, world_a->db());
  ra::PlanPtr plan_b = sql::PlanQuery(ie::kQuery1, world_b->db());
  ie::DocumentBatchProposal pa(&fixture.tokens.docs);
  ie::DocumentBatchProposal pb(&fixture.tokens.docs);
  pdb::NaiveQueryEvaluator naive(world_a.get(), &pa, plan_a.get(),
                                 {.steps_per_sample = 100, .seed = 5});
  pdb::MaterializedQueryEvaluator mat(world_b.get(), &pb, plan_b.get(),
                                      {.steps_per_sample = 100, .seed = 5});
  naive.Run(5);
  mat.Run(5);
  auto sa = naive.CurrentAnswerSet();
  auto sb = mat.CurrentAnswerSet();
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

}  // namespace
}  // namespace fgpdb
