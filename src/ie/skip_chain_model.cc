#include "ie/skip_chain_model.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace fgpdb {
namespace ie {
namespace {

using factor::FeatureId;
using factor::MakeFeatureId;
using factor::VarId;

FeatureId EmissionFeature(uint32_t string_id, uint32_t label) {
  return MakeFeatureId("emission", string_id, label);
}
FeatureId TransitionFeature(uint32_t from, uint32_t to) {
  return MakeFeatureId("transition", from, to);
}
FeatureId BiasFeature(uint32_t label) { return MakeFeatureId("bias", label); }
// Skip features fire only when the two labels agree.
FeatureId SkipSameFeature() { return MakeFeatureId("skip_same"); }
FeatureId SkipSameLabelFeature(uint32_t label) {
  return MakeFeatureId("skip_same_label", label);
}

bool IsCapitalized(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

}  // namespace

SkipChainNerModel::SkipChainNerModel(const TokenPdb& tokens,
                                     SkipChainOptions options)
    : string_ids_(&tokens.string_ids), options_(options) {
  const size_t n = tokens.num_tokens();
  prev_.assign(n, kNoVar);
  next_.assign(n, kNoVar);
  skip_partners_.assign(n, {});

  for (const auto& doc : tokens.docs) {
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
      next_[doc[i]] = doc[i + 1];
      prev_[doc[i + 1]] = doc[i];
    }
    if (!options_.use_skip_edges) continue;
    // Group this document's capitalized tokens by string id.
    std::unordered_map<uint32_t, std::vector<VarId>> groups;
    for (VarId v : doc) {
      const uint32_t sid = (*string_ids_)[v];
      if (IsCapitalized(tokens.vocab.String(sid))) groups[sid].push_back(v);
    }
    for (const auto& [sid, group] : groups) {
      (void)sid;
      if (group.size() < 2) continue;
      if (group.size() <= options_.max_skip_group) {
        // All pairs, as in the paper's Figure 3.
        for (size_t i = 0; i < group.size(); ++i) {
          for (size_t j = i + 1; j < group.size(); ++j) {
            skip_partners_[group[i]].push_back(group[j]);
            skip_partners_[group[j]].push_back(group[i]);
            ++num_skip_edges_;
          }
        }
      } else {
        // Bounded fallback: consecutive occurrences only.
        for (size_t i = 0; i + 1 < group.size(); ++i) {
          skip_partners_[group[i]].push_back(group[i + 1]);
          skip_partners_[group[i + 1]].push_back(group[i]);
          ++num_skip_edges_;
        }
      }
    }
  }
}

template <typename GetLabel>
double SkipChainNerModel::NodeScore(VarId v, const GetLabel& get) const {
  const uint32_t y = get(v);
  return params_.Get(EmissionFeature((*string_ids_)[v], y)) +
         params_.Get(BiasFeature(y));
}

template <typename GetLabel>
double SkipChainNerModel::EdgeScore(VarId a, VarId b,
                                    const GetLabel& get) const {
  return params_.Get(TransitionFeature(get(a), get(b)));
}

template <typename GetLabel>
double SkipChainNerModel::SkipScore(VarId a, VarId b,
                                    const GetLabel& get) const {
  const uint32_t ya = get(a);
  if (ya != get(b)) return 0.0;
  return params_.Get(SkipSameFeature()) +
         params_.Get(SkipSameLabelFeature(ya));
}

SkipChainNerModel::TouchedFactors SkipChainNerModel::CollectTouched(
    const factor::Change& change) const {
  TouchedFactors touched;
  auto add_edge = [&](VarId a, VarId b) {
    if (a == kNoVar || b == kNoVar) return;
    touched.edges.emplace_back(a, b);
  };
  for (const auto& assignment : change.assignments) {
    const VarId v = assignment.var;
    touched.nodes.push_back(v);
    if (options_.use_transitions) {
      add_edge(prev_[v], v);
      add_edge(v, next_[v]);
    }
    for (VarId p : skip_partners_[v]) {
      touched.skips.emplace_back(std::min(v, p), std::max(v, p));
    }
  }
  // Deduplicate factors shared between changed variables (e.g. the edge
  // between two adjacent changed tokens) so they are scored exactly once.
  auto dedupe = [](auto& items) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
  };
  dedupe(touched.nodes);
  dedupe(touched.edges);
  dedupe(touched.skips);
  return touched;
}

double SkipChainNerModel::LogScoreDelta(const factor::World& world,
                                        const factor::Change& change) const {
  const TouchedFactors touched = CollectTouched(change);
  const factor::PatchedWorld patched(world, change);
  const auto old_label = [&](VarId v) { return world.Get(v); };
  const auto new_label = [&](VarId v) { return patched.Get(v); };
  double delta = 0.0;
  for (VarId v : touched.nodes) {
    delta += NodeScore(v, new_label) - NodeScore(v, old_label);
  }
  for (const auto& [a, b] : touched.edges) {
    delta += EdgeScore(a, b, new_label) - EdgeScore(a, b, old_label);
  }
  for (const auto& [a, b] : touched.skips) {
    delta += SkipScore(a, b, new_label) - SkipScore(a, b, old_label);
  }
  return delta;
}

double SkipChainNerModel::LogScore(const factor::World& world) const {
  const auto label = [&](VarId v) { return world.Get(v); };
  double total = 0.0;
  const size_t n = num_variables();
  for (size_t i = 0; i < n; ++i) {
    const VarId v = static_cast<VarId>(i);
    total += NodeScore(v, label);
    if (options_.use_transitions && next_[v] != kNoVar) {
      total += EdgeScore(v, next_[v], label);
    }
    for (VarId p : skip_partners_[v]) {
      if (p > v) total += SkipScore(v, p, label);  // Count each pair once.
    }
  }
  return total;
}

void SkipChainNerModel::FeatureDelta(const factor::World& world,
                                     const factor::Change& change,
                                     factor::SparseVector* out) const {
  const TouchedFactors touched = CollectTouched(change);
  const factor::PatchedWorld patched(world, change);
  const auto old_label = [&](VarId v) { return world.Get(v); };
  const auto new_label = [&](VarId v) { return patched.Get(v); };

  for (VarId v : touched.nodes) {
    const uint32_t sid = (*string_ids_)[v];
    const uint32_t y_new = new_label(v);
    const uint32_t y_old = old_label(v);
    if (y_new == y_old) continue;
    out->Add(EmissionFeature(sid, y_new), 1.0);
    out->Add(BiasFeature(y_new), 1.0);
    out->Add(EmissionFeature(sid, y_old), -1.0);
    out->Add(BiasFeature(y_old), -1.0);
  }
  for (const auto& [a, b] : touched.edges) {
    out->Add(TransitionFeature(new_label(a), new_label(b)), 1.0);
    out->Add(TransitionFeature(old_label(a), old_label(b)), -1.0);
  }
  for (const auto& [a, b] : touched.skips) {
    const uint32_t na = new_label(a);
    if (na == new_label(b)) {
      out->Add(SkipSameFeature(), 1.0);
      out->Add(SkipSameLabelFeature(na), 1.0);
    }
    const uint32_t oa = old_label(a);
    if (oa == old_label(b)) {
      out->Add(SkipSameFeature(), -1.0);
      out->Add(SkipSameLabelFeature(oa), -1.0);
    }
  }
  out->Consolidate();
}

void SkipChainNerModel::InitializeFromCorpusStatistics(const TokenPdb& tokens,
                                                       double skip_weight,
                                                       double emission_scale) {
  // Smoothed per-string label log-odds from the TRUTH column, plus label
  // frequency biases and BIO-consistent transition preferences. This mimics
  // what SampleRank converges to without spending bench time on training.
  const double kSmoothing = 0.5;
  std::unordered_map<uint64_t, double> counts;  // (string, label) -> count
  std::vector<double> label_counts(kNumLabels, kSmoothing);
  for (size_t i = 0; i < tokens.num_tokens(); ++i) {
    const uint64_t key =
        (static_cast<uint64_t>(tokens.string_ids[i]) << 8) | tokens.truth[i];
    counts[key] += 1.0;
    label_counts[tokens.truth[i]] += 1.0;
  }
  std::unordered_map<uint32_t, double> string_totals;
  for (size_t i = 0; i < tokens.num_tokens(); ++i) {
    string_totals[tokens.string_ids[i]] += 1.0;
  }
  for (const auto& [sid, total] : string_totals) {
    for (uint32_t y = 0; y < kNumLabels; ++y) {
      const auto it = counts.find((static_cast<uint64_t>(sid) << 8) | y);
      const double c = (it == counts.end() ? 0.0 : it->second) + kSmoothing;
      params_.Set(EmissionFeature(sid, y),
                  emission_scale *
                      (std::log(c / (total + kSmoothing * kNumLabels)) -
                       std::log(kSmoothing /
                                (total + kSmoothing * kNumLabels))));
    }
  }
  double total_tokens = 0.0;
  for (double c : label_counts) total_tokens += c;
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    params_.Set(BiasFeature(y), std::log(label_counts[y] / total_tokens));
  }
  for (uint32_t a = 0; a < kNumLabels; ++a) {
    for (uint32_t b = 0; b < kNumLabels; ++b) {
      params_.Set(TransitionFeature(a, b), ValidTransition(a, b) ? 0.0 : -4.0);
    }
  }
  params_.Set(SkipSameFeature(), skip_weight);
  for (uint32_t y = 0; y < kNumLabels; ++y) {
    params_.Set(SkipSameLabelFeature(y), y == kLabelO ? 0.0 : skip_weight);
  }
}

}  // namespace ie
}  // namespace fgpdb
