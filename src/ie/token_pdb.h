// Builds the paper's TOKEN relation and probabilistic database from a
// corpus (§5.1):
//
//   TOKEN(TOK_ID primary key, DOC_ID, STRING, LABEL, TRUTH)
//
// LABEL is the uncertain attribute: every LABEL field becomes a hidden
// random variable over the nine BIO labels, initialized to 'O' exactly as
// in the paper. STRING/DOC_ID/TRUTH are observed.
#ifndef FGPDB_IE_TOKEN_PDB_H_
#define FGPDB_IE_TOKEN_PDB_H_

#include <memory>
#include <vector>

#include "ie/corpus.h"
#include "ie/token_hot_block.h"
#include "ie/vocabulary.h"
#include "pdb/probabilistic_database.h"

namespace fgpdb {
namespace ie {

inline constexpr const char* kTokenTable = "TOKEN";
inline constexpr size_t kColTokId = 0;
inline constexpr size_t kColDocId = 1;
inline constexpr size_t kColString = 2;
inline constexpr size_t kColLabel = 3;
inline constexpr size_t kColTruth = 4;

struct TokenPdb {
  std::unique_ptr<pdb::ProbabilisticDatabase> pdb;

  /// Interned token strings; string_ids[v] is variable v's token string.
  Vocabulary vocab;
  std::vector<uint32_t> string_ids;

  /// Ground-truth label index per variable (the TRUTH column).
  std::vector<uint32_t> truth;

  /// Document structure: docs[d] lists the variable ids of document d's
  /// tokens in sequence order. Variable v == token index == TOK_ID.
  std::vector<std::vector<factor::VarId>> docs;

  /// The packed per-token working set of the step kernel, built with the
  /// default skip structure. Models whose skip options match share this
  /// block (see TokenHotBlock::MatchesStructure); owned here so the many
  /// models/chains a serving session spins up reuse one allocation.
  std::unique_ptr<TokenHotBlock> hot;

  size_t num_tokens() const { return string_ids.size(); }
};

/// Loads `corpus` into a fresh ProbabilisticDatabase. All LABEL fields are
/// bound as hidden variables initialized to "O" (the paper's
/// initialization); TRUTH holds the reference labels.
TokenPdb BuildTokenPdb(const SyntheticCorpus& corpus);

}  // namespace ie
}  // namespace fgpdb

#endif  // FGPDB_IE_TOKEN_PDB_H_
