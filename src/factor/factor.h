// Explicit factors (paper §3.1): non-negative scoring functions over small
// sets of variables, stored here in log space.
//
// Explicit factors are used where the graph is small enough to instantiate
// (entity resolution, unit tests, exact inference); large templated models
// score lazily through Model instead (see model.h).
#ifndef FGPDB_FACTOR_FACTOR_H_
#define FGPDB_FACTOR_FACTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "factor/domain.h"
#include "factor/world.h"

namespace fgpdb {
namespace factor {

class Factor {
 public:
  explicit Factor(std::vector<VarId> variables)
      : variables_(std::move(variables)) {}
  virtual ~Factor() = default;

  const std::vector<VarId>& variables() const { return variables_; }
  size_t arity() const { return variables_.size(); }

  /// log ψ(values), where values[i] is the assignment of variables()[i].
  /// May return -inf to veto a configuration (deterministic constraint
  /// factors, paper §3.2).
  virtual double LogScore(const std::vector<uint32_t>& values) const = 0;

 private:
  std::vector<VarId> variables_;
};

/// Dense log-score table over the joint assignment (mixed-radix indexed).
class TableFactor final : public Factor {
 public:
  /// `domain_sizes[i]` is the domain size of variables[i]; `log_scores` has
  /// prod(domain_sizes) entries in row-major order (last variable fastest).
  TableFactor(std::vector<VarId> variables, std::vector<size_t> domain_sizes,
              std::vector<double> log_scores);

  double LogScore(const std::vector<uint32_t>& values) const override;

  /// Mutable access for tests / hand-tuned models.
  void SetLogScore(const std::vector<uint32_t>& values, double log_score);

 private:
  size_t IndexOf(const std::vector<uint32_t>& values) const;

  std::vector<size_t> domain_sizes_;
  std::vector<double> log_scores_;
};

/// Factor scored by an arbitrary callable (closures may capture observed
/// data — the conditioning X of the paper's CRFs).
class LambdaFactor final : public Factor {
 public:
  using ScoreFn = std::function<double(const std::vector<uint32_t>&)>;

  LambdaFactor(std::vector<VarId> variables, ScoreFn fn)
      : Factor(std::move(variables)), fn_(std::move(fn)) {}

  double LogScore(const std::vector<uint32_t>& values) const override {
    return fn_(values);
  }

 private:
  ScoreFn fn_;
};

}  // namespace factor
}  // namespace fgpdb

#endif  // FGPDB_FACTOR_FACTOR_H_
