// Sharded execution correctness (document-sharded inference):
//
//   * the shard-step split and locality contract primitives,
//   * S = 1 bitwise-differential oracle — a single-shard plan must replay
//     the serial shared chain exactly on Queries 1–4,
//   * fixed S > 1 bitwise reproducibility: repeated threaded runs, and
//     threaded vs sequential stepping, must agree bitwise (the fixed-order
//     merge discipline),
//   * locality fallback — a cross-partition model (EntityResolutionModel)
//     refuses sharding and degrades to the exact single-shard plan,
//   * concurrent shard stepping under TSan (this suite runs in the
//     FGPDB_SANITIZE=thread CI leg via the ShardedInference name).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/session.h"
#include "ie/corpus.h"
#include "ie/entity_resolution.h"
#include "ie/ner_proposal.h"
#include "ie/queries.h"
#include "ie/shard_plan.h"
#include "ie/skip_chain_model.h"
#include "ie/token_pdb.h"
#include "infer/shard_runner.h"
#include "pdb/probabilistic_database.h"
#include "pdb/shard_plan.h"

namespace fgpdb {
namespace {

constexpr size_t kProposalsPerBatch = 300;

struct NerFixture {
  ie::TokenPdb tokens;
  std::unique_ptr<ie::SkipChainNerModel> model;

  explicit NerFixture(size_t num_tokens, uint64_t seed = 21) {
    ie::SyntheticCorpus corpus = ie::GenerateCorpus(
        {.num_tokens = num_tokens, .tokens_per_doc = 60, .seed = seed});
    tokens = ie::BuildTokenPdb(corpus);
    model = std::make_unique<ie::SkipChainNerModel>(tokens);
    model->InitializeFromCorpusStatistics(tokens);
    tokens.pdb->set_model(model.get());
  }

  pdb::ProposalFactory MakeFactory() {
    return [this](pdb::ProbabilisticDatabase&) -> std::unique_ptr<infer::Proposal> {
      return std::make_unique<ie::DocumentBatchProposal>(
          &tokens.docs,
          ie::NerProposalOptions{.proposals_per_batch = kProposalsPerBatch});
    };
  }

  pdb::ShardPlan MakePlan(size_t num_shards) {
    return ie::BuildDocumentShardPlan(
        tokens, *model,
        {.num_shards = num_shards,
         .proposal = {.proposals_per_batch = kProposalsPerBatch}});
  }
};

const std::vector<const char*>& PaperQueries() {
  static const std::vector<const char*> kQueries = {
      ie::kQuery1, ie::kQuery2, ie::kQuery3, ie::kQuery4};
  return kQueries;
}

void ExpectBitwiseEqual(const pdb::QueryAnswer& got,
                        const pdb::QueryAnswer& want, const char* label) {
  EXPECT_EQ(got.num_samples(), want.num_samples()) << label;
  const auto got_sorted = got.Sorted();
  const auto want_sorted = want.Sorted();
  ASSERT_EQ(got_sorted.size(), want_sorted.size()) << label;
  for (size_t i = 0; i < got_sorted.size(); ++i) {
    EXPECT_EQ(got_sorted[i].first, want_sorted[i].first) << label;
    EXPECT_EQ(got_sorted[i].second, want_sorted[i].second)
        << label << " tuple " << got_sorted[i].first.ToString();
  }
  EXPECT_EQ(got.SquaredError(want), 0.0) << label;
}

TEST(ShardedInferenceTest, ShardStepSplitCoversAllSteps) {
  // n/S plus one for the first n%S shards, exhaustively for small cases.
  for (size_t n : {0u, 1u, 9u, 10u, 4096u}) {
    for (size_t num_shards : {1u, 2u, 3u, 7u, 32u}) {
      size_t total = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        const size_t steps = infer::ShardRunner::ShardSteps(n, s, num_shards);
        EXPECT_LE(steps, n / num_shards + 1);
        total += steps;
      }
      EXPECT_EQ(total, n) << "n=" << n << " S=" << num_shards;
    }
  }
  EXPECT_EQ(infer::ShardRunner::ShardSteps(10, 0, 3), 4u);
  EXPECT_EQ(infer::ShardRunner::ShardSteps(10, 1, 3), 3u);
  EXPECT_EQ(infer::ShardRunner::ShardSteps(10, 2, 3), 3u);
}

TEST(ShardedInferenceTest, SkipChainCertifiesDocumentPartition) {
  NerFixture fixture(360);  // 6 documents of 60 tokens.
  ASSERT_GE(fixture.tokens.docs.size(), 2u);

  // Document-aligned partition: first half of the docs vs the rest.
  std::vector<uint32_t> by_doc(fixture.tokens.num_tokens(), 0);
  const size_t half = fixture.tokens.docs.size() / 2;
  for (size_t d = half; d < fixture.tokens.docs.size(); ++d) {
    for (const factor::VarId v : fixture.tokens.docs[d]) by_doc[v] = 1;
  }
  EXPECT_TRUE(fixture.model->FactorsRespectPartition(by_doc));

  // Splitting one document breaks a transition edge.
  std::vector<uint32_t> mid_doc(fixture.tokens.num_tokens(), 0);
  const auto& doc0 = fixture.tokens.docs[0];
  mid_doc[doc0[doc0.size() / 2]] = 1;
  EXPECT_FALSE(fixture.model->FactorsRespectPartition(mid_doc));

  // Wrong arity is never certified.
  EXPECT_FALSE(fixture.model->FactorsRespectPartition({0, 1}));

  // The builder degrades to one shard rather than shard a refused
  // partition: request more shards than documents exist for one doc.
  ie::SyntheticCorpus one_doc = ie::GenerateCorpus(
      {.num_tokens = 60, .tokens_per_doc = 60, .seed = 3});
  ie::TokenPdb tokens = ie::BuildTokenPdb(one_doc);
  ie::SkipChainNerModel model(tokens);
  const pdb::ShardPlan plan =
      ie::BuildDocumentShardPlan(tokens, model, {.num_shards = 8});
  EXPECT_EQ(plan.num_shards, 1u);
  EXPECT_TRUE(plan.partition.empty());
}

TEST(ShardedInferenceTest, SingleShardSessionBitwiseMatchesSerial) {
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 400, .burn_in = 800, .seed = 2024};

  NerFixture serial_fixture(500);
  auto serial = api::Session::Open(
      {.database = serial_fixture.tokens.pdb.get(),
       .proposal_factory = serial_fixture.MakeFactory(),
       .evaluator = options});
  std::vector<api::ResultHandle> serial_handles;
  for (const char* query : PaperQueries()) {
    serial_handles.push_back(serial->Register(query));
  }
  serial->Run(25);

  NerFixture sharded_fixture(500);
  auto sharded = api::Session::Open(
      {.database = sharded_fixture.tokens.pdb.get(),
       .shard_plan = sharded_fixture.MakePlan(1),
       .evaluator = options,
       .policy = api::ExecutionPolicy::Sharded(1)});
  EXPECT_EQ(sharded->num_shards(), 1u);
  std::vector<api::ResultHandle> sharded_handles;
  for (const char* query : PaperQueries()) {
    sharded_handles.push_back(sharded->Register(query));
  }
  sharded->Run(25);

  for (size_t q = 0; q < PaperQueries().size(); ++q) {
    const api::QueryProgress want = serial_handles[q].Snapshot();
    const api::QueryProgress got = sharded_handles[q].Snapshot();
    ExpectBitwiseEqual(got.answer, want.answer, PaperQueries()[q]);
    EXPECT_EQ(got.acceptance_rate, want.acceptance_rate);
  }
}

// One sharded run's per-query answers at a fixed seed (fresh world, fresh
// session). S > 1 and thread toggles vary; the answers must not.
std::vector<pdb::QueryAnswer> RunShardedBundle(size_t num_shards,
                                               bool use_threads,
                                               uint64_t corpus_seed,
                                               uint64_t chain_seed) {
  NerFixture fixture(480, corpus_seed);  // 8 documents.
  api::ExecutionPolicy policy = api::ExecutionPolicy::Sharded(num_shards);
  policy.use_threads = use_threads;
  auto session = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .shard_plan = fixture.MakePlan(num_shards),
       .evaluator = {.steps_per_sample = 400,
                     .burn_in = 800,
                     .seed = chain_seed},
       .policy = policy});
  EXPECT_EQ(session->num_shards(), num_shards);
  std::vector<api::ResultHandle> handles;
  for (const char* query : PaperQueries()) {
    handles.push_back(session->Register(query));
  }
  session->Run(20);
  std::vector<pdb::QueryAnswer> answers;
  for (const api::ResultHandle& handle : handles) {
    answers.push_back(handle.Snapshot().answer);
  }
  return answers;
}

TEST(ShardedInferenceTest, FixedShardCountReproducibleAcrossThreadedRuns) {
  const auto first = RunShardedBundle(4, /*use_threads=*/true, 21, 99);
  const auto second = RunShardedBundle(4, /*use_threads=*/true, 21, 99);
  const auto sequential = RunShardedBundle(4, /*use_threads=*/false, 21, 99);
  ASSERT_EQ(first.size(), PaperQueries().size());
  for (size_t q = 0; q < first.size(); ++q) {
    ExpectBitwiseEqual(second[q], first[q], "threaded re-run");
    ExpectBitwiseEqual(sequential[q], first[q], "sequential vs threaded");
  }
}

TEST(ShardedInferenceTest, ParallelReplicaChainsComposeWithShards) {
  // B replica chains × S shard chains: two fresh runs must agree bitwise
  // (per-chain seeds salt deterministically; shard streams derive from
  // them; merges are integer-count folds).
  auto run = [] {
    NerFixture fixture(480);
    auto session = api::Session::Open(
        {.database = fixture.tokens.pdb.get(),
         .shard_plan = fixture.MakePlan(2),
         .evaluator = {.steps_per_sample = 300, .burn_in = 600, .seed = 7},
         .policy = api::ExecutionPolicy::Parallel(3).WithShards(2)});
    api::ResultHandle handle = session->Register(ie::kQuery1);
    session->Run(10);
    return handle.Snapshot().answer;
  };
  const pdb::QueryAnswer first = run();
  const pdb::QueryAnswer second = run();
  ExpectBitwiseEqual(second, first, "parallel×sharded re-run");
}

TEST(ShardedInferenceTest, UntilPolicyComposesWithShards) {
  // Run-until-error-bound on one sharded logical chain: stopping decisions
  // are functions of the sample stream, so two fresh runs agree bitwise.
  auto run = [] {
    NerFixture fixture(480);
    auto session = api::Session::Open(
        {.database = fixture.tokens.pdb.get(),
         .shard_plan = fixture.MakePlan(4),
         .evaluator = {.steps_per_sample = 300, .burn_in = 600, .seed = 13},
         .policy = api::ExecutionPolicy::Until(0.9, 0.2, /*num_chains=*/1)
                       .WithShards(4)});
    api::ResultHandle handle = session->Register(ie::kQuery1);
    session->Run(200);
    return handle.Snapshot();
  };
  const api::QueryProgress first = run();
  const api::QueryProgress second = run();
  EXPECT_EQ(first.converged, second.converged);
  ExpectBitwiseEqual(second.answer, first.answer, "until×sharded re-run");
}

// Builds the example MENTION world: the cross-document pairwise-affinity
// model that must REFUSE document sharding.
struct ErFixture {
  std::vector<std::string> names = {"John Smith", "J. Smith", "Acme Corp",
                                    "Acme",       "Kunming",  "J. Simms"};
  ie::EntityResolutionModel model{names};
  pdb::ProbabilisticDatabase db;

  ErFixture() {
    Schema schema({Attribute{"ID", ValueType::kInt64},
                   Attribute{"NAME", ValueType::kString},
                   Attribute{"CLUSTER", ValueType::kInt64}},
                  0);
    Table* table = db.db().CreateTable("MENTION", std::move(schema));
    auto cluster_domain = std::make_shared<factor::Domain>(
        factor::Domain::OfRange(static_cast<int64_t>(names.size())));
    for (size_t i = 0; i < names.size(); ++i) {
      const RowId row = table->Insert(
          Tuple{Value::Int(static_cast<int64_t>(i)), Value::String(names[i]),
                Value::Int(static_cast<int64_t>(i))});
      db.binding().Bind("MENTION", row, 2, cluster_domain);
    }
    db.SyncWorldFromDatabase();
    db.set_model(&model);
  }

  pdb::ShardPlan::ProposalFactory MakeShardFactory() {
    return [this](pdb::ProbabilisticDatabase&,
                  size_t) -> std::unique_ptr<infer::Proposal> {
      return std::make_unique<ie::SplitMergeProposal>(model);
    };
  }
};

TEST(ShardedInferenceTest, EntityResolutionFallsBackToSingleShard) {
  ErFixture fixture;
  // Any split of the mentions crosses a pairwise affinity factor.
  std::vector<uint32_t> partition(fixture.names.size(), 0);
  for (size_t i = fixture.names.size() / 2; i < partition.size(); ++i) {
    partition[i] = 1;
  }
  EXPECT_FALSE(fixture.model.FactorsRespectPartition(partition));

  const pdb::ShardPlan plan = pdb::BuildShardPlan(
      fixture.model, partition, /*num_shards=*/2, fixture.MakeShardFactory());
  EXPECT_EQ(plan.num_shards, 1u);
  EXPECT_TRUE(plan.partition.empty());
  EXPECT_TRUE(plan.has_plan());

  const char* kCoreferenceQuery =
      "SELECT M1.NAME, M2.NAME FROM MENTION M1, MENTION M2 "
      "WHERE M1.CLUSTER = M2.CLUSTER AND M1.ID < M2.ID";
  const pdb::EvaluatorOptions options{
      .steps_per_sample = 50, .burn_in = 200, .seed = 5};

  // The fallback plan's answers are the serial chain's answers, bitwise.
  ErFixture serial_fixture;
  auto serial = api::Session::Open(
      {.database = &serial_fixture.db,
       .proposal_factory =
           [&serial_fixture](pdb::ProbabilisticDatabase&)
           -> std::unique_ptr<infer::Proposal> {
         return std::make_unique<ie::SplitMergeProposal>(serial_fixture.model);
       },
       .evaluator = options});
  api::ResultHandle serial_handle = serial->Register(kCoreferenceQuery);
  serial->Run(40);

  auto sharded = api::Session::Open({.database = &fixture.db,
                                     .shard_plan = plan,
                                     .evaluator = options,
                                     .policy = api::ExecutionPolicy::Sharded(2)});
  EXPECT_EQ(sharded->num_shards(), 1u);
  api::ResultHandle sharded_handle = sharded->Register(kCoreferenceQuery);
  sharded->Run(40);

  ExpectBitwiseEqual(sharded_handle.Snapshot().answer,
                     serial_handle.Snapshot().answer, "ER fallback");
}

// Hot-block layout under sharding (PR 10): S = 4 shard chains advancing a
// shadow-carrying world (the default BuildTokenPdb layout — write-through
// label lane + shared TokenHotBlock) must answer the paper queries bitwise
// like the same plan on a world with the shadow stripped, and like a fresh
// shadowed re-run. The shadow writes land on shard-disjoint bytes, so the
// threaded legs also exercise the race-freedom argument under TSan.
TEST(ShardedInferenceTest, ShardedHotBlockLayoutBitwiseParity) {
  auto run = [](bool strip_shadow) {
    NerFixture fixture(480, 21);  // 8 documents.
    if (strip_shadow) {
      fixture.tokens.pdb->world().DisableLabelShadow();
    }
    EXPECT_EQ(fixture.tokens.pdb->world().has_label_shadow(), !strip_shadow);
    auto session = api::Session::Open(
        {.database = fixture.tokens.pdb.get(),
         .shard_plan = fixture.MakePlan(4),
         .evaluator = {.steps_per_sample = 400, .burn_in = 800, .seed = 77},
         .policy = api::ExecutionPolicy::Sharded(4)});
    EXPECT_EQ(session->num_shards(), 4u);
    std::vector<api::ResultHandle> handles;
    for (const char* query : PaperQueries()) {
      handles.push_back(session->Register(query));
    }
    session->Run(20);
    EXPECT_TRUE(fixture.tokens.pdb->world().LabelShadowConsistent());
    std::vector<pdb::QueryAnswer> answers;
    for (const api::ResultHandle& handle : handles) {
      answers.push_back(handle.Snapshot().answer);
    }
    return answers;
  };
  const auto shadowed = run(/*strip_shadow=*/false);
  const auto plain = run(/*strip_shadow=*/true);
  const auto shadowed_again = run(/*strip_shadow=*/false);
  ASSERT_EQ(shadowed.size(), PaperQueries().size());
  for (size_t q = 0; q < shadowed.size(); ++q) {
    ExpectBitwiseEqual(plain[q], shadowed[q], "shadow-off vs shadow-on");
    ExpectBitwiseEqual(shadowed_again[q], shadowed[q], "shadowed re-run");
  }
}

TEST(ShardedInferenceTest, ConcurrentShardSteppingIsRaceFree) {
  // The TSan exercise: 4 shard chains advance one world on pool threads
  // while views, the mirror, and convergence stats consume the merged
  // stream. Run under FGPDB_SANITIZE=thread in CI; here also asserts the
  // chain made progress and the counters fold sanely.
  NerFixture fixture(480);
  auto session = api::Session::Open(
      {.database = fixture.tokens.pdb.get(),
       .shard_plan = fixture.MakePlan(4),
       .evaluator = {.steps_per_sample = 500, .burn_in = 1000, .seed = 31},
       .policy = api::ExecutionPolicy::Sharded(4)});
  ASSERT_EQ(session->num_shards(), 4u);
  api::ResultHandle q1 = session->Register(ie::kQuery1);
  api::ResultHandle q4 = session->Register(ie::kQuery4);
  session->Run(15);
  const api::QueryProgress progress = q1.Snapshot();
  EXPECT_EQ(progress.samples, 15u);
  EXPECT_GT(progress.acceptance_rate, 0.0);
  EXPECT_EQ(q4.Snapshot().samples, 15u);
}

}  // namespace
}  // namespace fgpdb
