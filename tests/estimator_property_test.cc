// Property tests pinning the until(confidence, eps) estimators against
// closed-form ground truth: Welford moments vs two-pass computation,
// batched-means coverage on i.i.d. AND correlated Bernoulli streams,
// cross-chain standard errors vs the hand-computed formula, and confidence
// intervals around MCMC marginals of a small factor graph whose exact
// marginals are enumerable. The statistical claims are calibration claims —
// "a nominal 95% interval covers the truth ~95% of the time" — checked over
// hundreds of seeded trials, not single runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "factor/factor_graph.h"
#include "infer/convergence.h"
#include "infer/exact.h"
#include "infer/metropolis_hastings.h"
#include "infer/proposal.h"
#include "pdb/convergence_stats.h"
#include "pdb/query_evaluator.h"
#include "storage/tuple.h"
#include "util/rng.h"

namespace fgpdb {
namespace {

using infer::BatchedMeansAccumulator;
using infer::WelfordAccumulator;
using infer::ZForConfidence;

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- ZForConfidence ---------------------------------------------------------

TEST(ZForConfidenceTest, MatchesKnownCriticalValues) {
  EXPECT_NEAR(ZForConfidence(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(ZForConfidence(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(ZForConfidence(0.90), 1.644854, 1e-4);
  EXPECT_NEAR(ZForConfidence(0.6827), 1.0, 1e-3);
}

TEST(ZForConfidenceTest, InvertsTheNormalCdf) {
  // P(|Z| <= z) = erf(z/sqrt(2)) must reproduce the confidence.
  for (double c : {0.5, 0.8, 0.9, 0.95, 0.975, 0.99, 0.999}) {
    const double z = ZForConfidence(c);
    EXPECT_NEAR(std::erf(z / std::sqrt(2.0)), c, 1e-6) << "confidence " << c;
  }
  EXPECT_LT(ZForConfidence(0.90), ZForConfidence(0.95));
  EXPECT_LT(ZForConfidence(0.95), ZForConfidence(0.99));
}

// --- Welford ----------------------------------------------------------------

TEST(WelfordTest, MatchesTwoPassMomentsOnRandomStreams) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const size_t n = 2 + rng.UniformInt(200u);
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.Gaussian(rng.Uniform(-5, 5), rng.Uniform(0.1, 3));
    WelfordAccumulator acc;
    for (double x : xs) acc.Add(x);

    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(n);
    double ss = 0.0;
    for (double x : xs) ss += (x - mean) * (x - mean);
    const double var = ss / static_cast<double>(n - 1);

    EXPECT_EQ(acc.count(), n);
    EXPECT_NEAR(acc.mean(), mean, 1e-9 * (1.0 + std::abs(mean)));
    EXPECT_NEAR(acc.variance(), var, 1e-9 * (1.0 + var));
    EXPECT_NEAR(acc.StandardError(),
                std::sqrt(var / static_cast<double>(n)), 1e-9);
  }
}

TEST(WelfordTest, AddZerosMatchesExplicitZeroObservations) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    WelfordAccumulator bulk, loop;
    const size_t lead = rng.UniformInt(30u);
    bulk.AddZeros(lead);
    for (size_t i = 0; i < lead; ++i) loop.Add(0.0);
    for (size_t i = 0; i < 40; ++i) {
      const double x = rng.Uniform();
      bulk.Add(x);
      loop.Add(x);
      const size_t gap = rng.UniformInt(5u);
      bulk.AddZeros(gap);
      for (size_t j = 0; j < gap; ++j) loop.Add(0.0);
    }
    EXPECT_EQ(bulk.count(), loop.count());
    EXPECT_NEAR(bulk.mean(), loop.mean(), 1e-12);
    EXPECT_NEAR(bulk.variance(), loop.variance(), 1e-10);
  }
}

TEST(WelfordTest, NoEstimateBeforeTwoObservations) {
  WelfordAccumulator acc;
  EXPECT_EQ(acc.StandardError(), kInf);
  acc.Add(1.0);
  EXPECT_EQ(acc.StandardError(), kInf);
  acc.Add(0.0);
  EXPECT_LT(acc.StandardError(), kInf);
}

// --- Batched means ----------------------------------------------------------

TEST(BatchedMeansTest, MeanIsExactAndCollapsePreservesTotals) {
  Rng rng(7);
  BatchedMeansAccumulator acc;
  double sum = 0.0;
  // Push through several collapses (64 → 32 batches, size doubling).
  const size_t n = 1000;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform();
    acc.Add(x);
    sum += x;
  }
  EXPECT_EQ(acc.count(), n);
  EXPECT_NEAR(acc.mean(), sum / static_cast<double>(n), 1e-12);
  EXPECT_GE(acc.batch_size(), 8u);  // 1000 observations forced collapses
  EXPECT_LE(acc.num_complete_batches(), BatchedMeansAccumulator::kMaxBatches);
}

TEST(BatchedMeansTest, AddZerosMatchesExplicitZeroObservations) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 11);
    BatchedMeansAccumulator bulk, loop;
    const size_t lead = rng.UniformInt(300u);
    bulk.AddZeros(lead);
    for (size_t i = 0; i < lead; ++i) loop.Add(0.0);
    for (size_t i = 0; i < 200; ++i) {
      const double x = rng.Bernoulli(0.3) ? 1.0 : 0.0;
      bulk.Add(x);
      loop.Add(x);
      const size_t gap = rng.UniformInt(4u);
      bulk.AddZeros(gap);
      for (size_t j = 0; j < gap; ++j) loop.Add(0.0);
    }
    EXPECT_EQ(bulk.count(), loop.count());
    EXPECT_EQ(bulk.batch_size(), loop.batch_size());
    EXPECT_EQ(bulk.num_complete_batches(), loop.num_complete_batches());
    EXPECT_NEAR(bulk.mean(), loop.mean(), 1e-12);
    if (loop.StandardError() < kInf) {
      EXPECT_NEAR(bulk.StandardError(), loop.StandardError(), 1e-12);
    } else {
      EXPECT_EQ(bulk.StandardError(), kInf);
    }
  }
}

TEST(BatchedMeansTest, NoEstimateBeforeMinimumBatches) {
  BatchedMeansAccumulator acc;
  for (size_t i = 0; i + 1 < BatchedMeansAccumulator::kMinBatchesForEstimate;
       ++i) {
    EXPECT_EQ(acc.StandardError(), kInf) << "after " << i << " batches";
    acc.Add(static_cast<double>(i % 2));
  }
  acc.Add(1.0);
  EXPECT_LT(acc.StandardError(), kInf);
}

// Coverage harness: fraction of `trials` seeded streams whose nominal
// 95% interval mean ± z·SE covers `truth`.
template <typename MakeStream>
double CoverageRate(size_t trials, double truth, const MakeStream& make) {
  const double z = ZForConfidence(0.95);
  size_t covered = 0;
  for (size_t trial = 0; trial < trials; ++trial) {
    BatchedMeansAccumulator acc;
    make(trial + 1, &acc);
    const double se = acc.StandardError();
    EXPECT_LT(se, kInf);
    if (std::abs(acc.mean() - truth) <= z * se) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(trials);
}

TEST(BatchedMeansTest, CoverageHitsNominalRateOnIidBernoulli) {
  // 500 seeded trials of 1024 i.i.d. Bernoulli(0.3) draws: the 95% interval
  // must cover p ≈ 95% of the time. Finite-sample tolerance: sd of the
  // coverage estimate is sqrt(.95*.05/500) ≈ 1%; allow ±3.5%.
  const double p = 0.3;
  const double rate =
      CoverageRate(500, p, [&](uint64_t seed, BatchedMeansAccumulator* acc) {
        Rng rng(seed * 2654435761u);
        for (size_t i = 0; i < 1024; ++i) acc->Add(rng.Bernoulli(p) ? 1 : 0);
      });
  EXPECT_GT(rate, 0.915);
  EXPECT_LT(rate, 0.985);
}

TEST(BatchedMeansTest, CoverageSurvivesMarkovCorrelation) {
  // A sticky two-state Markov chain (stay probability 0.9, symmetric) has
  // stationary mean 0.5 but strong positive autocorrelation: the naive
  // sqrt(p(1-p)/n) error would undercover badly. Batched means must stay
  // near nominal once batches outgrow the correlation length. 500 trials,
  // 4096 draws each (batch size reaches 64 ≈ 6.5 correlation times).
  const double stay = 0.9;
  const double z = ZForConfidence(0.95);
  size_t covered = 0, naive_covered = 0;
  const size_t trials = 500;
  for (uint64_t trial = 1; trial <= trials; ++trial) {
    Rng rng(trial * 0x9e3779b97f4a7c15ULL);
    BatchedMeansAccumulator acc;
    int state = rng.Bernoulli(0.5) ? 1 : 0;
    const size_t n = 4096;
    for (size_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(stay)) state = 1 - state;
      acc.Add(static_cast<double>(state));
    }
    const double mean = acc.mean();
    if (std::abs(mean - 0.5) <= z * acc.StandardError()) ++covered;
    const double naive_se =
        std::sqrt(std::max(mean * (1.0 - mean), 1e-12) / static_cast<double>(n));
    if (std::abs(mean - 0.5) <= z * naive_se) ++naive_covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  const double naive_rate = static_cast<double>(naive_covered) / trials;
  // Batched means: near nominal (batch length finite, so allow slack down
  // to 88%). The naive i.i.d. interval must undercover by a wide margin —
  // that gap is the reason the serial path needs batching at all.
  EXPECT_GT(rate, 0.88);
  EXPECT_LT(rate, 0.99);
  EXPECT_LT(naive_rate, rate - 0.15);
}

// --- MarginalErrorStats -----------------------------------------------------

Tuple T(int64_t v) { return Tuple{Value::Int(v)}; }

TEST(MarginalErrorStatsTest, TracksIndicatorStreamsWithBackfill) {
  pdb::MarginalErrorStats stats;
  BatchedMeansAccumulator direct_a, direct_b;
  Rng rng(99);
  // Tuple 1 appears from the start; tuple 2 first appears at sample 51 and
  // must backfill 50 zeros so its window matches the answer's.
  for (size_t i = 0; i < 200; ++i) {
    std::vector<Tuple> present;
    const bool a = rng.Bernoulli(0.6);
    const bool b = i >= 50 && rng.Bernoulli(0.4);
    if (a) present.push_back(T(1));
    if (b) present.push_back(T(2));
    stats.ObserveSample(present);
    direct_a.Add(a ? 1.0 : 0.0);
    if (i == 50) direct_b.AddZeros(50);
    if (i >= 50) direct_b.Add(b ? 1.0 : 0.0);
  }
  EXPECT_EQ(stats.num_samples(), 200u);
  EXPECT_EQ(stats.num_tracked(), 2u);
  EXPECT_NEAR(stats.Mean(T(1)), direct_a.mean(), 1e-12);
  EXPECT_NEAR(stats.StandardError(T(1)), direct_a.StandardError(), 1e-12);
  EXPECT_NEAR(stats.Mean(T(2)), direct_b.mean(), 1e-12);
  EXPECT_NEAR(stats.StandardError(T(2)), direct_b.StandardError(), 1e-12);
  EXPECT_EQ(stats.Mean(T(3)), 0.0);
  EXPECT_EQ(stats.StandardError(T(3)), 0.0);
  const double z = ZForConfidence(0.95);
  EXPECT_NEAR(stats.MaxHalfWidth(z),
              z * std::max(direct_a.StandardError(), direct_b.StandardError()),
              1e-12);
}

// --- CrossChainStats --------------------------------------------------------

pdb::QueryAnswer MakeChainAnswer(uint64_t samples,
                                 const std::vector<std::pair<int64_t, uint64_t>>&
                                     tuple_counts) {
  // Build an answer with exact per-tuple counts by replaying membership.
  pdb::QueryAnswer answer;
  for (uint64_t s = 0; s < samples; ++s) {
    std::vector<Tuple> present;
    for (const auto& [v, c] : tuple_counts) {
      if (s < c) present.push_back(T(v));
    }
    answer.ObserveSampleContaining(present);
  }
  return answer;
}

TEST(CrossChainStatsTest, MatchesHandComputedStandardError) {
  // Three chains of 10 samples; tuple 1 counts {2, 5, 8} → means .2/.5/.8.
  pdb::CrossChainStats stats;
  stats.ObserveChain(MakeChainAnswer(10, {{1, 2}}));
  stats.ObserveChain(MakeChainAnswer(10, {{1, 5}}));
  stats.ObserveChain(MakeChainAnswer(10, {{1, 8}}));
  ASSERT_EQ(stats.num_chains(), 3u);
  EXPECT_NEAR(stats.Mean(T(1)), 0.5, 1e-12);
  // sd({.2,.5,.8}) = .3, SE = .3/sqrt(3).
  EXPECT_NEAR(stats.StandardError(T(1)), 0.3 / std::sqrt(3.0), 1e-12);
}

TEST(CrossChainStatsTest, AbsentChainsCountAsZero) {
  // Tuple present in one of two chains with count 6/10: chain means {.6, 0},
  // mean .3, sd = .3/sqrt(2)... sd({.6,0}) = .4243; SE = .3.
  pdb::CrossChainStats stats;
  stats.ObserveChain(MakeChainAnswer(10, {{1, 6}}));
  stats.ObserveChain(MakeChainAnswer(10, {}));
  EXPECT_NEAR(stats.Mean(T(1)), 0.3, 1e-12);
  const double sd = std::sqrt((0.09 + 0.09) / 1.0);  // Σ(m-.3)² / (B-1)
  EXPECT_NEAR(stats.StandardError(T(1)), sd / std::sqrt(2.0), 1e-12);
}

TEST(CrossChainStatsTest, FoldOrderCannotChangeASingleBit) {
  // The streaming merge folds chains in completion order; the estimator
  // must be exactly order-independent or stopping decisions would be racy.
  std::vector<pdb::QueryAnswer> chains;
  Rng rng(5);
  for (int b = 0; b < 8; ++b) {
    chains.push_back(MakeChainAnswer(
        20, {{1, rng.UniformInt(21u)}, {2, rng.UniformInt(21u)},
             {3, rng.UniformInt(21u)}}));
  }
  pdb::CrossChainStats forward, reverse, shuffled;
  for (const auto& c : chains) forward.ObserveChain(c);
  for (auto it = chains.rbegin(); it != chains.rend(); ++it) {
    reverse.ObserveChain(*it);
  }
  std::vector<size_t> order = {3, 0, 7, 5, 1, 6, 2, 4};
  for (size_t i : order) shuffled.ObserveChain(chains[i]);
  for (int64_t v : {1, 2, 3}) {
    EXPECT_EQ(forward.StandardError(T(v)), reverse.StandardError(T(v)));
    EXPECT_EQ(forward.StandardError(T(v)), shuffled.StandardError(T(v)));
    EXPECT_EQ(forward.Mean(T(v)), reverse.Mean(T(v)));
    EXPECT_EQ(forward.Mean(T(v)), shuffled.Mean(T(v)));
  }
}

TEST(CrossChainStatsTest, MergePoolsRoundsLikeOneBigBatch) {
  std::vector<pdb::QueryAnswer> chains;
  Rng rng(17);
  for (int b = 0; b < 6; ++b) {
    chains.push_back(MakeChainAnswer(15, {{1, rng.UniformInt(16u)}}));
  }
  pdb::CrossChainStats all;
  for (const auto& c : chains) all.ObserveChain(c);
  pdb::CrossChainStats first, second;
  for (int b = 0; b < 2; ++b) first.ObserveChain(chains[b]);
  for (int b = 2; b < 6; ++b) second.ObserveChain(chains[b]);
  first.Merge(second);
  EXPECT_EQ(first.num_chains(), all.num_chains());
  EXPECT_EQ(first.Mean(T(1)), all.Mean(T(1)));
  EXPECT_EQ(first.StandardError(T(1)), all.StandardError(T(1)));
}

TEST(CrossChainStatsTest, NoEstimateWithOneChain) {
  pdb::CrossChainStats stats;
  stats.ObserveChain(MakeChainAnswer(10, {{1, 5}}));
  EXPECT_EQ(stats.StandardError(T(1)), kInf);
  EXPECT_EQ(stats.MaxHalfWidth(2.0), kInf);
}

TEST(CrossChainStatsTest, CoverageHitsNominalRateOnIidBernoulli) {
  // 500 trials × 8 chains × 64 i.i.d. Bernoulli(0.42) samples: the pooled
  // 95% interval covers p near-nominally. (t-vs-z with 7 dof costs some
  // coverage: true rate ≈ 92%; assert a band around that.)
  const double p = 0.42;
  const double z = ZForConfidence(0.95);
  size_t covered = 0;
  const size_t trials = 500;
  for (uint64_t trial = 1; trial <= trials; ++trial) {
    Rng rng(trial * 0x2545f4914f6cdd1dULL);
    pdb::CrossChainStats stats;
    for (int b = 0; b < 8; ++b) {
      uint64_t count = 0;
      for (int i = 0; i < 64; ++i) count += rng.Bernoulli(p) ? 1 : 0;
      stats.ObserveChain(MakeChainAnswer(64, {{1, count}}));
    }
    if (std::abs(stats.Mean(T(1)) - p) <= z * stats.StandardError(T(1))) {
      ++covered;
    }
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.87);
  EXPECT_LT(rate, 0.97);
}

// --- Cross-chain coverage against an exactly enumerable factor graph -------

TEST(CrossChainStatsTest, CoversExactMarginalOfSmallFactorGraph) {
  // A 4-variable, 2-label loopy graph small enough to enumerate exactly.
  // Run B independent MH chains per trial, estimate P(Y0 = 1) with its
  // cross-chain SE, and check the 95% interval covers the exact marginal
  // at a near-nominal rate over 120 trials. This is the end-to-end claim
  // the until() policy rests on: chain means behave like i.i.d. draws
  // around the true marginal.
  using factor::Domain;
  using factor::FactorGraph;
  using factor::TableFactor;
  using factor::VarId;

  FactorGraph graph;
  auto domain = std::make_shared<Domain>(Domain::OfRange(2));
  for (int i = 0; i < 4; ++i) graph.AddVariable(domain);
  Rng weights_rng(4242);
  for (VarId v = 0; v < 4; ++v) {
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{v}, std::vector<size_t>{2},
        std::vector<double>{weights_rng.Gaussian(), weights_rng.Gaussian()}));
  }
  const std::vector<std::pair<VarId, VarId>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}};
  for (const auto& [a, b] : edges) {
    std::vector<double> scores(4);
    for (auto& s : scores) s = weights_rng.Gaussian();
    graph.AddFactor(std::make_unique<TableFactor>(
        std::vector<VarId>{a, b}, std::vector<size_t>{2, 2},
        std::move(scores)));
  }
  const double exact = infer::ExactInference(graph).marginals[0][1];

  const double z = ZForConfidence(0.95);
  const size_t trials = 120;
  size_t covered = 0;
  for (uint64_t trial = 1; trial <= trials; ++trial) {
    pdb::CrossChainStats stats;
    const int chains = 6;
    const uint64_t samples = 150;
    for (int b = 0; b < chains; ++b) {
      factor::World world = graph.MakeWorld();
      infer::UniformSingleVariableProposal proposal(graph);
      infer::MetropolisHastings sampler(graph, &world, &proposal,
                                        trial * 1000 + b * 7 + 1);
      sampler.Run(500);  // burn-in
      uint64_t count = 0;
      for (uint64_t s = 0; s < samples; ++s) {
        sampler.Run(20);  // thinning
        count += world.Get(0) == 1 ? 1 : 0;
      }
      stats.ObserveChain(MakeChainAnswer(samples, {{1, count}}));
    }
    if (std::abs(stats.Mean(T(1)) - exact) <= z * stats.StandardError(T(1))) {
      ++covered;
    }
  }
  // Thinned-but-correlated within-chain samples make chain means slightly
  // heavy-tailed; accept 82–100% over 120 trials (sd of estimate ≈ 2%).
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.82);
}

}  // namespace
}  // namespace fgpdb
