// Tests for the extended SQL surface: BETWEEN, IN, IS [NOT] NULL, LIKE,
// and COUNT(DISTINCT …) — including its incremental maintenance.
#include <gtest/gtest.h>

#include "ra/executor.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_helpers.h"
#include "view/incremental.h"

namespace fgpdb {
namespace sql {
namespace {

using fgpdb::testing::MakeEmpTable;
using fgpdb::testing::ToMultiset;

class SqlExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override { MakeEmpTable(&db_); }

  std::vector<Tuple> Run(const std::string& query) {
    return ra::Execute(*PlanQuery(query, db_), db_);
  }

  Database db_;
};

TEST_F(SqlExtensionsTest, Between) {
  const auto rows =
      Run("SELECT NAME FROM EMP WHERE SALARY BETWEEN 80 AND 95");
  EXPECT_EQ(rows.size(), 3u);  // bob 90, cat 80, dan 80.
}

TEST_F(SqlExtensionsTest, NotBetween) {
  const auto rows =
      Run("SELECT NAME FROM EMP WHERE SALARY NOT BETWEEN 80 AND 95");
  EXPECT_EQ(rows.size(), 2u);  // ann 100, eve 70.
}

TEST_F(SqlExtensionsTest, InList) {
  const auto rows =
      Run("SELECT NAME FROM EMP WHERE DEPT IN ('eng', 'hr')");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlExtensionsTest, NotInList) {
  const auto rows = Run("SELECT NAME FROM EMP WHERE DEPT NOT IN ('eng')");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlExtensionsTest, InDesugarsToDisjunction) {
  const auto stmt = Parse("SELECT A FROM T WHERE A IN (1, 2)");
  EXPECT_EQ(stmt.where->ToString(), "((A = 1) OR (A = 2))");
}

TEST_F(SqlExtensionsTest, BetweenBindsTighterThanAnd) {
  const auto stmt =
      Parse("SELECT A FROM T WHERE A BETWEEN 1 AND 3 AND B = 2");
  EXPECT_EQ(stmt.where->ToString(),
            "(((A >= 1) AND (A <= 3)) AND (B = 2))");
}

TEST_F(SqlExtensionsTest, IsNullAndIsNotNull) {
  // Add a row with a NULL salary.
  Table* table = db_.GetTable("EMP");
  table->Insert(
      Tuple{Value::Int(6), Value::String("qa"), Value::String("fay"),
            Value::Null()});
  EXPECT_EQ(Run("SELECT NAME FROM EMP WHERE SALARY IS NULL").size(), 1u);
  EXPECT_EQ(Run("SELECT NAME FROM EMP WHERE SALARY IS NOT NULL").size(), 5u);
}

TEST_F(SqlExtensionsTest, LikePatterns) {
  EXPECT_EQ(Run("SELECT NAME FROM EMP WHERE NAME LIKE 'a%'").size(), 1u);
  EXPECT_EQ(Run("SELECT NAME FROM EMP WHERE NAME LIKE '%a%'").size(), 3u);
  EXPECT_EQ(Run("SELECT NAME FROM EMP WHERE NAME LIKE '_ob'").size(), 1u);
  EXPECT_EQ(Run("SELECT NAME FROM EMP WHERE NAME NOT LIKE '%a%'").size(), 2u);
}

TEST(LikeMatcherTest, WildcardSemantics) {
  EXPECT_TRUE(ra::Like::Matches("hello", "hello"));
  EXPECT_TRUE(ra::Like::Matches("hello", "h%"));
  EXPECT_TRUE(ra::Like::Matches("hello", "%llo"));
  EXPECT_TRUE(ra::Like::Matches("hello", "h_llo"));
  EXPECT_TRUE(ra::Like::Matches("hello", "%"));
  EXPECT_TRUE(ra::Like::Matches("", "%"));
  EXPECT_FALSE(ra::Like::Matches("", "_"));
  EXPECT_FALSE(ra::Like::Matches("hello", "h_llo_"));
  EXPECT_TRUE(ra::Like::Matches("abcbc", "a%bc"));  // Backtracking.
  EXPECT_FALSE(ra::Like::Matches("hello", "HELLO"));  // Case-sensitive.
}

TEST_F(SqlExtensionsTest, CountDistinct) {
  const auto rows = Run("SELECT COUNT(DISTINCT DEPT) FROM EMP");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0), Value::Int(3));
}

TEST_F(SqlExtensionsTest, CountDistinctPerGroup) {
  const auto rows =
      Run("SELECT DEPT, COUNT(DISTINCT SALARY) FROM EMP GROUP BY DEPT");
  const auto bag = ToMultiset(rows);
  EXPECT_EQ(bag.Count(Tuple{Value::String("eng"), Value::Int(2)}), 1);
  EXPECT_EQ(bag.Count(Tuple{Value::String("ops"), Value::Int(1)}), 1);  // 80, 80.
}

TEST_F(SqlExtensionsTest, CountDistinctMaintainsIncrementally) {
  ra::PlanPtr plan =
      PlanQuery("SELECT COUNT(DISTINCT DEPT) FROM EMP", db_);
  view::MaterializedView view(*plan);
  view.Initialize(db_);
  EXPECT_EQ(view.contents().Count(Tuple{Value::Int(3)}), 1);

  Table* table = db_.GetTable("EMP");
  // Move the only hr employee to eng: distinct count drops to 2.
  const Tuple old_tuple = table->Get(4);
  table->UpdateField(4, 1, Value::String("eng"));
  view::DeltaSet deltas;
  deltas.ForTable("EMP").Add(old_tuple, -1);
  deltas.ForTable("EMP").Add(table->Get(4), 1);
  view.Apply(deltas);
  EXPECT_EQ(view.contents().Count(Tuple{Value::Int(2)}), 1);
  EXPECT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db_)));

  // Move it back: count returns to 3 (deletion reversibility).
  const Tuple cur_tuple = table->Get(4);
  table->UpdateField(4, 1, Value::String("hr"));
  view::DeltaSet back;
  back.ForTable("EMP").Add(cur_tuple, -1);
  back.ForTable("EMP").Add(table->Get(4), 1);
  view.Apply(back);
  EXPECT_EQ(view.contents().Count(Tuple{Value::Int(3)}), 1);
}

TEST_F(SqlExtensionsTest, RandomDmlKeepsCountDistinctConsistent) {
  ra::PlanPtr plan = PlanQuery(
      "SELECT DEPT, COUNT(DISTINCT SALARY) FROM EMP GROUP BY DEPT", db_);
  view::MaterializedView view(*plan);
  view.Initialize(db_);
  Table* table = db_.GetTable("EMP");
  Rng rng(4242);
  for (int round = 0; round < 150; ++round) {
    view::DeltaSet deltas;
    const RowId row = rng.UniformInt(table->row_capacity());
    if (!table->IsLive(row)) continue;
    const Tuple old_tuple = table->Get(row);
    if (rng.Bernoulli(0.5)) {
      static const std::vector<std::string> kDepts = {"eng", "ops", "hr"};
      table->UpdateField(row, 1,
                         Value::String(kDepts[rng.UniformInt(kDepts.size())]));
    } else {
      table->UpdateField(row, 3,
                         Value::Int(60 + 10 * rng.UniformInt(6u)));
    }
    deltas.ForTable("EMP").Add(old_tuple, -1);
    deltas.ForTable("EMP").Add(table->Get(row), 1);
    view.Apply(deltas);
    ASSERT_EQ(view.contents(), ToMultiset(ra::Execute(*plan, db_)))
        << "round " << round;
  }
}

TEST_F(SqlExtensionsTest, LikeInsideHavingAndProjection) {
  const auto rows = Run(
      "SELECT DEPT, COUNT_IF(NAME LIKE '%a%') FROM EMP GROUP BY DEPT "
      "HAVING COUNT_IF(NAME LIKE '%a%') >= 1");
  const auto bag = ToMultiset(rows);
  // ann (eng), cat+dan (ops): hr's eve has no 'a'.
  EXPECT_EQ(bag.Count(Tuple{Value::String("eng"), Value::Int(1)}), 1);
  EXPECT_EQ(bag.Count(Tuple{Value::String("ops"), Value::Int(2)}), 1);
  EXPECT_EQ(rows.size(), 2u);
}

}  // namespace
}  // namespace sql
}  // namespace fgpdb
