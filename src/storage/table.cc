#include "storage/table.h"

#include <algorithm>

#include "util/logging.h"

namespace fgpdb {

const std::vector<RowId> Table::kEmptyRowList;

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pk_index_(std::make_shared<PkIndex>()) {}

Tuple& Table::MutableRow(RowId row) {
  std::shared_ptr<Page>& page = pages_[PageOf(row)];
  // use_count() == 1 means this table is the sole owner: no snapshot can
  // observe the mutation. Otherwise copy the page privately first.
  if (page.use_count() > 1) page = std::make_shared<Page>(*page);
  return (*page)[SlotOf(row)];
}

Table::Page& Table::MutableLastPage() {
  std::shared_ptr<Page>& page = pages_.back();
  if (page.use_count() > 1) {
    auto copy = std::make_shared<Page>();
    copy->reserve(kPageSize);
    *copy = *page;
    page = std::move(copy);
  }
  return *page;
}

Table::PkIndex& Table::MutablePkIndex() {
  if (pk_index_.use_count() > 1) {
    pk_index_ = std::make_shared<PkIndex>(*pk_index_);
  }
  return *pk_index_;
}

Table::ColumnIndex& Table::MutableColumnIndex(size_t column) {
  std::shared_ptr<ColumnIndex>& index = secondary_indexes_.at(column);
  if (index.use_count() > 1) {
    index = std::make_shared<ColumnIndex>(*index);
  }
  return *index;
}

RowId Table::Insert(Tuple tuple) {
  FGPDB_CHECK_EQ(tuple.arity(), schema_.arity())
      << "arity mismatch inserting into " << name_;
  const RowId row = deleted_.size();
  if (schema_.primary_key().has_value()) {
    const Value& key = tuple.at(*schema_.primary_key());
    const bool inserted = MutablePkIndex().emplace(key, row).second;
    FGPDB_CHECK(inserted) << "duplicate primary key " << key.ToString()
                          << " in " << name_;
  }
  for (const auto& [column, index] : secondary_indexes_) {
    (void)index;
    IndexInsert(column, tuple.at(column), row);
  }
  if (PageOf(row) == pages_.size()) {
    auto page = std::make_shared<Page>();
    page->reserve(kPageSize);
    pages_.push_back(std::move(page));
  }
  MutableLastPage().push_back(std::move(tuple));
  deleted_.push_back(false);
  ++live_rows_;
  return row;
}

void Table::Delete(RowId row) {
  FGPDB_CHECK(IsLive(row)) << "delete of dead row " << row << " in " << name_;
  const Tuple& tuple = RowRef(row);
  if (schema_.primary_key().has_value()) {
    MutablePkIndex().erase(tuple.at(*schema_.primary_key()));
  }
  for (const auto& [column, index] : secondary_indexes_) {
    (void)index;
    IndexErase(column, tuple.at(column), row);
  }
  deleted_[row] = true;
  --live_rows_;
}

const Tuple& Table::Get(RowId row) const {
  FGPDB_CHECK(IsLive(row)) << "get of dead row " << row << " in " << name_;
  return RowRef(row);
}

Value Table::UpdateField(RowId row, size_t column, Value value) {
  FGPDB_CHECK(IsLive(row)) << "update of dead row " << row << " in " << name_;
  FGPDB_CHECK_LT(column, schema_.arity());
  Value old = RowRef(row).at(column);
  if (old == value) return old;
  if (schema_.primary_key() == column) {
    PkIndex& pk = MutablePkIndex();
    pk.erase(old);
    const bool inserted = pk.emplace(value, row).second;
    FGPDB_CHECK(inserted) << "primary key collision updating " << name_;
  }
  if (secondary_indexes_.count(column) > 0) {
    IndexErase(column, old, row);
    IndexInsert(column, value, row);
  }
  MutableRow(row).at(column) = std::move(value);
  return old;
}

RowId Table::LookupByKey(const Value& key) const {
  const auto it = pk_index_->find(key);
  return it == pk_index_->end() ? kInvalidRowId : it->second;
}

void Table::CreateIndex(size_t column) {
  FGPDB_CHECK_LT(column, schema_.arity());
  // Built fresh into its own allocation, so no copy-up is needed and a
  // shared predecessor index (if any) is simply released.
  auto index = std::make_shared<ColumnIndex>();
  for (RowId row = 0; row < deleted_.size(); ++row) {
    if (!deleted_[row]) (*index)[RowRef(row).at(column)].push_back(row);
  }
  secondary_indexes_[column] = std::move(index);
}

const std::vector<RowId>& Table::IndexLookup(size_t column,
                                             const Value& value) const {
  const auto index_it = secondary_indexes_.find(column);
  FGPDB_CHECK(index_it != secondary_indexes_.end())
      << "no index on column " << column << " of " << name_;
  const ColumnIndex& index = *index_it->second;
  const auto it = index.find(value);
  return it == index.end() ? kEmptyRowList : it->second;
}

void Table::Scan(const std::function<void(RowId, const Tuple&)>& fn) const {
  RowId row = 0;
  for (const auto& page : pages_) {
    for (const Tuple& tuple : *page) {
      if (!deleted_[row]) fn(row, tuple);
      ++row;
    }
  }
}

std::vector<Tuple> Table::Rows() const {
  std::vector<Tuple> out;
  out.reserve(live_rows_);
  Scan([&](RowId, const Tuple& t) { out.push_back(t); });
  return out;
}

std::unique_ptr<Table> Table::Clone() const {
  auto copy = std::make_unique<Table>(name_, schema_);
  copy->pages_.reserve(pages_.size());
  for (const auto& page : pages_) {
    copy->pages_.push_back(std::make_shared<Page>(*page));
  }
  copy->deleted_ = deleted_;
  copy->live_rows_ = live_rows_;
  copy->pk_index_ = std::make_shared<PkIndex>(*pk_index_);
  for (const auto& [column, index] : secondary_indexes_) {
    copy->secondary_indexes_[column] = std::make_shared<ColumnIndex>(*index);
  }
  return copy;
}

std::unique_ptr<Table> Table::Snapshot() const {
  auto copy = std::make_unique<Table>(name_, schema_);
  copy->pages_ = pages_;
  copy->deleted_ = deleted_;
  copy->live_rows_ = live_rows_;
  copy->pk_index_ = pk_index_;
  copy->secondary_indexes_ = secondary_indexes_;
  return copy;
}

size_t Table::SharedPageCount() const {
  size_t shared = 0;
  for (const auto& page : pages_) {
    if (page.use_count() > 1) ++shared;
  }
  return shared;
}

void Table::IndexInsert(size_t column, const Value& value, RowId row) {
  MutableColumnIndex(column)[value].push_back(row);
}

void Table::IndexErase(size_t column, const Value& value, RowId row) {
  ColumnIndex& index = MutableColumnIndex(column);
  const auto it = index.find(value);
  FGPDB_CHECK(it != index.end());
  auto& rows = it->second;
  const auto pos = std::find(rows.begin(), rows.end(), row);
  FGPDB_CHECK(pos != rows.end());
  // Swap-and-pop: index postings are unordered.
  *pos = rows.back();
  rows.pop_back();
  if (rows.empty()) index.erase(it);
}

}  // namespace fgpdb
