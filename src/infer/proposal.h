// Proposal distributions q(·|w) for Metropolis–Hastings (paper §3.4).
//
// A proposal hypothesizes a Change to the current world. Constraint-
// preserving proposals (like split-merge for entity resolution) keep the
// chain inside the feasible region without deterministic constraint factors.
//
// Propose() writes into a caller-owned Change so the hot path allocates
// nothing: the sampler passes the same Change buffer every step and the
// assignment vector's capacity is reused forever. Proposers likewise keep
// their site-selection state (document batches, candidate-label buffers)
// in member storage — propose does zero hashing/allocation, exactly like
// the compiled scoring path it feeds.
#ifndef FGPDB_INFER_PROPOSAL_H_
#define FGPDB_INFER_PROPOSAL_H_

#include <memory>
#include <vector>

#include "factor/model.h"
#include "factor/world.h"
#include "util/rng.h"

namespace fgpdb {
namespace infer {

class Proposal {
 public:
  virtual ~Proposal() = default;

  /// Draws w' ~ q(·|w) into `*change` (cleared first; its buffer capacity is
  /// reused). `log_ratio` receives log q(w|w') − log q(w'|w) (0 for
  /// symmetric proposals). An empty Change is a self-transition.
  virtual void Propose(const factor::World& world, Rng& rng,
                       factor::Change* change, double* log_ratio) = 0;

  /// Convenience overload returning the Change by value (allocates; for
  /// tests and diagnostics, never the sampler's hot loop).
  factor::Change Propose(const factor::World& world, Rng& rng,
                         double* log_ratio) {
    factor::Change change;
    Propose(world, rng, &change, log_ratio);
    return change;
  }

  /// True when this proposal is EXACTLY the single-site Gibbs kernel:
  /// Propose() draws a site via DrawGibbsSite, then resamples it from its
  /// full conditional (one LogCategorical draw), with the proposal-ratio
  /// correction that makes MH acceptance ≈ 1. Declaring this lets the
  /// batched sampler fuse propose/score/accept into its row-driven kernel
  /// (MetropolisHastings::set_row_gibbs), which replicates the declared
  /// draw order and floating-point arithmetic bitwise.
  virtual bool IsSingleSiteGibbs() const { return false; }

  /// The Gibbs kernel's site-selection draw. Must be a pure function of
  /// (world, rng state) with no proposal-state side effects: the fused
  /// kernel also invokes it on *cloned* rngs to predict the next site for
  /// cache prefetching, and a side effect would fire once per prediction.
  virtual factor::VarId DrawGibbsSite(const factor::World& world, Rng& rng) {
    (void)world;
    (void)rng;
    FGPDB_CHECK(false) << "not a single-site Gibbs proposal";
    return 0;
  }
};

/// The generic symmetric kernel: pick a variable uniformly, pick a new value
/// uniformly from its domain (paper §5.1 uses exactly this over labels).
class UniformSingleVariableProposal final : public Proposal {
 public:
  explicit UniformSingleVariableProposal(const factor::Model& model)
      : model_(model) {}

  using Proposal::Propose;
  void Propose(const factor::World& /*world*/, Rng& rng,
               factor::Change* change, double* log_ratio) override {
    *log_ratio = 0.0;
    change->Clear();
    if (model_.num_variables() == 0) return;
    const auto var =
        static_cast<factor::VarId>(rng.UniformInt(model_.num_variables()));
    const uint32_t value =
        static_cast<uint32_t>(rng.UniformInt(model_.domain_size(var)));
    change->Set(var, value);
  }

 private:
  const factor::Model& model_;
};

/// Gibbs move expressed as an MH proposal: resamples one uniformly chosen
/// variable from its full conditional. The proposal-ratio correction makes
/// the MH acceptance probability exactly 1, so the chain never rejects.
///
/// The conditional over the label axis is computed through the model's
/// ConditionalRow fast path when available (one vectorized reduction over
/// the compiled weight tables); models without one fall back to one
/// LogScoreDelta per candidate value. Both paths produce bitwise-identical
/// weight rows, so the chain trajectory does not depend on which ran.
class GibbsProposal final : public Proposal {
 public:
  explicit GibbsProposal(const factor::Model& model)
      : model_(model), scratch_(model.MakeScratch()) {}

  using Proposal::Propose;
  void Propose(const factor::World& world, Rng& rng, factor::Change* change,
               double* log_ratio) override;

  bool IsSingleSiteGibbs() const override { return true; }
  factor::VarId DrawGibbsSite(const factor::World& /*world*/,
                              Rng& rng) override {
    return static_cast<factor::VarId>(rng.UniformInt(model_.num_variables()));
  }

 private:
  const factor::Model& model_;
  // Reused across Propose calls: the per-candidate Change, the conditional
  // log-weights, and the model's scoring scratch — a Gibbs move scores
  // every candidate value, so this loop is as hot as the sampler itself.
  std::unique_ptr<factor::ScoreScratch> scratch_;
  factor::Change candidate_;
  std::vector<double> log_weights_;
};

}  // namespace infer
}  // namespace fgpdb

#endif  // FGPDB_INFER_PROPOSAL_H_
